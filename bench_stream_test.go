package mevscope

import (
	"sync"
	"testing"

	"mevscope/internal/sim"
	"mevscope/internal/stream"
	"mevscope/internal/types"
)

// The streaming-vs-batch benchmark pair behind CI's BENCH_stream.json
// artifact: both measure the full pipeline (detect + profit + inference +
// report) over the same pre-simulated world, excluding simulation cost.
// Each reports a "blocks/op" metric so per-block costs (ns/block,
// allocs/block) are derivable from the standard ns/op and allocs/op.

var (
	benchStreamOnce sync.Once
	benchStreamSim  *sim.Sim
)

func benchWorld(b *testing.B) *sim.Sim {
	benchStreamOnce.Do(func() {
		cfg := sim.DefaultConfig(1234)
		cfg.BlocksPerMonth = 100
		s, err := sim.New(cfg)
		if err != nil {
			panic(err)
		}
		if err := s.Run(); err != nil {
			panic(err)
		}
		benchStreamSim = s
	})
	return benchStreamSim
}

// BenchmarkPipelineBatch is the collect-then-measure baseline: one batch
// analysis over the finished chain per iteration.
func BenchmarkPipelineBatch(b *testing.B) {
	s := benchWorld(b)
	blocks := float64(s.Chain.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeWith(s, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(blocks, "blocks/op")
}

// BenchmarkPipelineStream feeds the same world one block at a time
// through the follower and snapshots the final report — the incremental
// path's end-to-end cost.
func BenchmarkPipelineStream(b *testing.B) {
	s := benchWorld(b)
	blocks := float64(s.Chain.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := stream.ForSim(s, 1)
		if _, err := f.Sync(); err != nil {
			b.Fatal(err)
		}
		if f.Report() == nil {
			b.Fatal("nil report")
		}
	}
	b.ReportMetric(blocks, "blocks/op")
}

// BenchmarkPipelineStreamSnapshots additionally snapshots the live report
// at every month boundary — the cost of continuous visibility.
func BenchmarkPipelineStreamSnapshots(b *testing.B) {
	s := benchWorld(b)
	blocks := float64(s.Chain.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := stream.ForSim(s, 1)
		f.OnMonthEnd = func(_ types.Month, fl *stream.Follower) {
			if fl.Report() == nil {
				b.Fatal("nil snapshot")
			}
		}
		if _, err := f.Sync(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(blocks, "blocks/op")
}
