package mevscope

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"mevscope/internal/archive"
	"mevscope/internal/core/measure"
	"mevscope/internal/dataset"
	"mevscope/internal/sim"
	"mevscope/internal/stream"
	"mevscope/internal/types"
)

// renderReport is the byte-identity oracle: the full text rendering
// touches every artifact at full precision.
func renderReport(t *testing.T, rep *measure.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	measure.WriteReportText(&buf, rep)
	return buf.Bytes()
}

// analyzeRangePartials analyzes each month of [from, to] alone and
// merges the partials — the query layer's assembly path, minus the
// caches.
func analyzeRangePartials(t *testing.T, dir string, from, to types.Month, view string, roundTrip bool) *measure.Report {
	t.Helper()
	var parts []*measure.Partial
	for m := from; m <= to; m++ {
		ds, _, err := archive.ReadRange(dir, m, m)
		if err != nil {
			t.Fatalf("month %s: %v", m.Label(), err)
		}
		ds.View = view
		p, err := AnalyzeDatasetPartial(ds, 2, nil)
		if err != nil {
			t.Fatalf("month %s: %v", m.Label(), err)
		}
		if roundTrip {
			raw, err := json.Marshal(p)
			if err != nil {
				t.Fatalf("month %s: marshal partial: %v", m.Label(), err)
			}
			rt := &measure.Partial{}
			if err := json.Unmarshal(raw, rt); err != nil {
				t.Fatalf("month %s: unmarshal partial: %v", m.Label(), err)
			}
			p = rt
		}
		parts = append(parts, p)
	}
	rep, err := measure.MergePartials(parts, view, 2, nil)
	if err != nil {
		t.Fatalf("merge %s..%s: %v", from.Label(), to.Label(), err)
	}
	return rep
}

// TestPartialAssemblyByteIdentical is the correctness pin of the
// month-partial memoization: for every scenario × view × range, a
// report assembled from single-month partials must be byte-identical
// to the full-range analysis — including a JSON round trip of every
// partial, proving the serialized form loses nothing a merge reads.
func TestPartialAssemblyByteIdentical(t *testing.T) {
	cases := []struct {
		scenario string
		views    []string
	}{
		{"", []string{""}},
		{"degraded-observer", []string{""}},
		{"multi-vantage-union", []string{"", "union", "vantage:1", "quorum:2"}},
	}
	rng := rand.New(rand.NewSource(42))
	for _, tc := range cases {
		name := tc.scenario
		if name == "" {
			name = "baseline"
		}
		t.Run(name, func(t *testing.T) {
			st, err := Run(Options{Seed: 7, BlocksPerMonth: 50, Scenario: tc.scenario})
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			ds := dataset.FromSim(st.Sim)
			man, err := archive.WriteFormat(dir, ds, nil, archive.FormatV3)
			if err != nil {
				t.Fatal(err)
			}
			first, last := man.Window()

			type span struct{ from, to types.Month }
			ranges := []span{
				{first, last},                            // the whole study
				{last, last},                             // a single month
				{types.ObservationStartMonth - 1, last},  // straddles the window opening
				{first, types.ObservationStartMonth - 1}, // entirely before the window
			}
			for i := 0; i < 3; i++ {
				a := first + types.Month(rng.Intn(int(last-first+1)))
				b := first + types.Month(rng.Intn(int(last-first+1)))
				if a > b {
					a, b = b, a
				}
				ranges = append(ranges, span{a, b})
			}

			for _, view := range tc.views {
				for ri, r := range ranges {
					fds, _, err := archive.ReadRange(dir, r.from, r.to)
					if err != nil {
						t.Fatal(err)
					}
					fds.View = view
					fst, err := AnalyzeDataset(fds, 2)
					if err != nil {
						t.Fatal(err)
					}
					want := renderReport(t, fst.Report)
					// Round-trip every partial through JSON on the first
					// range of each view; merge in-memory partials on the
					// rest.
					got := renderReport(t, analyzeRangePartials(t, dir, r.from, r.to, view, ri == 0))
					if !bytes.Equal(got, want) {
						gotLines := bytes.Split(got, []byte("\n"))
						wantLines := bytes.Split(want, []byte("\n"))
						for j := 0; j < len(gotLines) || j < len(wantLines); j++ {
							g, w := []byte("<missing>"), []byte("<missing>")
							if j < len(gotLines) {
								g = gotLines[j]
							}
							if j < len(wantLines) {
								w = wantLines[j]
							}
							if !bytes.Equal(g, w) {
								t.Fatalf("view %q months %s..%s: assembled report drifted at line %d:\n got: %s\nwant: %s",
									view, r.from.Label(), r.to.Label(), j+1, g, w)
							}
						}
						t.Fatalf("view %q months %s..%s: assembled report drifted", view, r.from.Label(), r.to.Label())
					}
				}
			}
		})
	}
}

// TestLivePartialSnapshotByteIdentical pins the live serving path: a
// report assembled from sealed month partials plus a freshly analyzed
// open-month partial must be byte-identical to the streaming
// follower's full Report at the same height — mid-month, at month
// boundaries, and at the end of the study. This is exactly what
// `mevscope serve -live` does per snapshot.
func TestLivePartialSnapshotByteIdentical(t *testing.T) {
	opts := Options{Seed: 7, BlocksPerMonth: 50, Scenario: "multi-vantage-union"}
	cfg, err := opts.Config()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := stream.ForSim(s, 2)
	var sealed []*measure.Partial
	f.OnMonthEnd = func(m types.Month, f *stream.Follower) {
		ds, err := f.MonthDataset(m)
		if err != nil {
			t.Fatal(err)
		}
		p, err := AnalyzeDatasetPartial(ds, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		sealed = append(sealed, p)
	}

	tl := f.Timeline()
	end := s.EndBlock()
	checkAt := map[uint64]bool{
		tl.StartBlock + 25:                                    true, // mid first month
		tl.FirstBlockOfMonth(6) - 1:                           true, // a month boundary
		tl.FirstBlockOfMonth(types.ObservationStartMonth) + 7: true, // just after the window opens
		end: true, // study complete: merge of sealed months only
	}
	for s.Chain.NextNumber() <= end {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		head := s.Chain.Head().Header.Number
		if !checkAt[head] {
			continue
		}
		want := renderReport(t, f.Report())
		open := tl.MonthOfBlock(f.Next() - 1)
		parts := sealed
		if len(sealed) == 0 || sealed[len(sealed)-1].Month < open {
			ds, err := f.MonthDataset(open)
			if err != nil {
				t.Fatal(err)
			}
			p, err := AnalyzeDatasetPartial(ds, 2, nil)
			if err != nil {
				t.Fatal(err)
			}
			parts = append(sealed[:len(sealed):len(sealed)], p)
		}
		rep, err := measure.MergePartials(parts, "", 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderReport(t, rep); !bytes.Equal(got, want) {
			t.Fatalf("height %d: live partial snapshot drifted from the follower report", head)
		}
	}
	if len(sealed) != int(types.StudyMonths) {
		t.Fatalf("sealed %d months, want %d", len(sealed), types.StudyMonths)
	}
}

// TestPartialRejectsMultiMonthDataset pins NewPartial's contract: the
// memoization unit is exactly one month.
func TestPartialRejectsMultiMonthDataset(t *testing.T) {
	st, err := Run(Options{Seed: 7, BlocksPerMonth: 50})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.FromSim(st.Sim)
	if _, err := AnalyzeDatasetPartial(ds, 2, nil); err == nil {
		t.Fatal("AnalyzeDatasetPartial accepted a full-study dataset")
	}
}

// TestMergePartialsRejectsGaps pins the contiguity contract: merging
// month 0 with month 2 must fail, not silently mis-assemble.
func TestMergePartialsRejectsGaps(t *testing.T) {
	st, err := Run(Options{Seed: 7, BlocksPerMonth: 50})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := archive.WriteFormat(dir, dataset.FromSim(st.Sim), nil, archive.FormatV3); err != nil {
		t.Fatal(err)
	}
	var parts []*measure.Partial
	for _, m := range []types.Month{0, 2} {
		ds, _, err := archive.ReadRange(dir, m, m)
		if err != nil {
			t.Fatal(err)
		}
		p, err := AnalyzeDatasetPartial(ds, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	if _, err := measure.MergePartials(parts, "", 2, nil); err == nil {
		t.Fatal("MergePartials accepted non-contiguous months")
	}
	if _, err := measure.MergePartials(nil, "", 2, nil); err == nil {
		t.Fatal("MergePartials accepted zero partials")
	}
}
