// Package mevscope reproduces the measurement study "A Flash(bot) in the
// Pan: Measuring Maximal Extractable Value in Private Pools" (IMC 2022)
// over a synthetic Ethereum/DeFi world.
//
// The pipeline has the same three stages as the paper:
//
//  1. a world generates history — traders, MEV searchers, miners, the
//     Flashbots relay and other private pools (internal/sim);
//  2. collection — the chain plays archive node, an observer node records
//     public pending transactions, and the Flashbots relay publishes its
//     blocks API;
//  3. measurement — heuristic detectors, profit computation, private-
//     transaction inference and the monthly aggregations behind every
//     table and figure (internal/core).
//
// The measurement stage runs through a worker pool: blocks fan out across
// runtime.NumCPU() workers (or Options.Parallelism) and partial results
// merge deterministically by block number, so any worker count produces a
// byte-identical report.
//
// Quick start:
//
//	study, err := mevscope.Run(mevscope.Options{Seed: 1, BlocksPerMonth: 300})
//	if err != nil { ... }
//	study.Report.Table1.Format() // Table 1, the MEV dataset overview
//
// Beyond the single replay, named scenarios (internal/scenario) rewrite
// the world — no-flashbots, hashpower-skew, high-private, post-london —
// and RunEnsemble sweeps many seeds per scenario, merging the reports
// with mean/stddev per table cell:
//
//	ens, err := mevscope.RunEnsemble([]int64{1, 2, 3, 4, 5}, "no-flashbots", 4)
//	if err != nil { ... }
//	fmt.Print(ens.Format())
//
// The batch pipeline is one of two consumers of the measurement core:
// internal/stream follows a world block by block and keeps a live report
// incrementally (byte-identical to the batch one at every month
// boundary), and internal/archive persists the collected dataset as a
// segmented on-disk store so a world is simulated once and re-analyzed
// many times (AnalyzeDataset; `mevscope archive` / `mevscope analyze`).
package mevscope

import (
	"fmt"
	"io"

	"mevscope/internal/core/detect"
	"mevscope/internal/core/measure"
	"mevscope/internal/core/privinfer"
	"mevscope/internal/core/profit"
	"mevscope/internal/dataset"
	"mevscope/internal/parallel"
	"mevscope/internal/scenario"
	"mevscope/internal/sim"
	"mevscope/internal/types"
)

// Options configures a full study run.
type Options struct {
	// Seed drives every random choice; equal seeds give identical runs.
	Seed int64
	// BlocksPerMonth compresses each of the 23 study months (mainnet has
	// ≈190k). Zero selects the default scale.
	BlocksPerMonth uint64
	// Months limits the window for quick runs; zero runs all 23.
	Months int
	// NumMiners sizes the miner set; zero selects the default 55.
	NumMiners int
	// NumTraders sizes the ordinary-user population.
	NumTraders int
	// Scenario names the counterfactual world to simulate (see
	// internal/scenario: baseline, no-flashbots, hashpower-skew,
	// high-private, post-london). Empty selects the baseline.
	Scenario string
	// Parallelism sizes the measurement worker pool; zero or negative
	// selects runtime.NumCPU(), 1 forces the sequential path.
	Parallelism int
}

// Params converts the options into scenario scale parameters.
func (o Options) Params() scenario.Params {
	return scenario.Params{
		Seed:           o.Seed,
		BlocksPerMonth: o.BlocksPerMonth,
		Months:         o.Months,
		NumMiners:      o.NumMiners,
		NumTraders:     o.NumTraders,
	}
}

// Config resolves the options into the simulation config of the named
// scenario.
func (o Options) Config() (sim.Config, error) {
	sc, err := scenario.MustLookup(o.Scenario)
	if err != nil {
		return sim.Config{}, err
	}
	return sc.Config(o.Params()), nil
}

// Study is the outcome of a run: the simulated world plus every
// measurement artifact.
type Study struct {
	Sim *sim.Sim
	// Detected is the raw detector sweep (archive-node view only).
	Detected *detect.Result
	// Profits are the per-extraction economics.
	Profits []profit.Record
	// Inferrer is the §6 private-transaction classifier (nil when the run
	// ends before the observation window opens).
	Inferrer *privinfer.Inferrer
	// Report carries every table and figure.
	Report *measure.Report
}

// Run simulates the study window under the configured scenario and
// executes the full measurement pipeline over the result.
func Run(opts Options) (*Study, error) {
	cfg, err := opts.Config()
	if err != nil {
		return nil, err
	}
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	return AnalyzeWith(s, opts.Parallelism)
}

// Analyze runs the measurement pipeline over a completed simulation,
// fanning per-block work across runtime.NumCPU() workers.
func Analyze(s *sim.Sim) (*Study, error) {
	return AnalyzeWith(s, -1)
}

// AnalyzeWith runs the measurement pipeline with an explicit worker-pool
// size: detection fans blocks across workers, profit resolution fans
// extractions, inference fans classifications and the report builders run
// concurrently. Partial results merge deterministically (by block number,
// then detector order), so every worker count — including 1, the fully
// sequential path — produces a byte-identical report for the same
// simulation. workers < 1 selects runtime.NumCPU().
func AnalyzeWith(s *sim.Sim, workers int) (*Study, error) {
	st, err := AnalyzeDataset(dataset.FromSim(s), workers)
	if err != nil {
		return nil, err
	}
	st.Sim = s
	return st, nil
}

// AnalyzeDataset runs the measurement pipeline over a collected dataset —
// the sim-independent entry point behind AnalyzeWith, the streaming
// follower's snapshots and `mevscope analyze -from <dir>` (a dataset
// restored by internal/archive). Study.Sim is nil in the result.
func AnalyzeDataset(ds *dataset.Dataset, workers int) (*Study, error) {
	if ds.Chain == nil || ds.Chain.Head() == nil {
		return nil, fmt.Errorf("mevscope: dataset has no blocks")
	}
	workers = parallel.Workers(workers)
	c := ds.Chain

	res := detect.ScanParallel(c, ds.WETH, c.Timeline.StartBlock, c.Head().Header.Number, workers)
	comp := profit.New(c, ds.Prices, ds.WETH, ds.FBSet)
	profits := comp.ResolveAllParallel(res, workers)

	in := measure.Inputs{
		Chain:    c,
		FBBlocks: ds.FBBlocks,
		FBSet:    ds.FBSet,
		Detect:   res,
		Profits:  profits,
		WETH:     ds.WETH,
		Workers:  workers,
	}
	var inf *privinfer.Inferrer
	if ds.Observer != nil {
		in.Observer = ds.Observer
		winStart := c.Timeline.FirstBlockOfMonth(types.PrivateWindowStartMonth)
		inf = privinfer.New(c, ds.Observer, ds.FBSet, winStart, c.Head().Header.Number)
		inf.Workers = workers
	}
	report := measure.Build(in, inf)
	return &Study{Detected: res, Profits: profits, Inferrer: inf, Report: report}, nil
}

// WriteReport renders every reproduced artifact as text, in paper order.
func (st *Study) WriteReport(w io.Writer) {
	WriteReportTo(w, st.Report)
}

// WriteReportTo renders a report as text, in paper order. It is the
// shared renderer behind Study.WriteReport and the streaming follower's
// live snapshots, so batch and streaming output are comparable byte for
// byte.
func WriteReportTo(w io.Writer, r *measure.Report) {
	fmt.Fprintf(w, "=== Table 1: MEV dataset overview ===\n%s\n", r.Table1.Format())

	fmt.Fprintf(w, "=== Figure 3: Flashbots block ratio per month ===\n")
	for _, row := range r.Fig3 {
		fmt.Fprintf(w, "%8s  %5d / %5d  %6.1f%%  %s\n",
			row.Month, row.FlashbotsBlocks, row.TotalBlocks, 100*row.Ratio(), bar(row.Ratio(), 40))
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "=== Figure 4: estimated Flashbots hashrate per month ===\n")
	for _, mv := range r.Fig4 {
		fmt.Fprintf(w, "%8s  %6.1f%%  %s\n", mv.Month, 100*mv.Value, bar(mv.Value, 40))
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "=== Figure 5: miners with ≥ n Flashbots blocks (scaled thresholds %v) ===\n", r.Fig5.Thresholds)
	fmt.Fprintf(w, "%8s", "month")
	for _, th := range r.Fig5.Thresholds {
		fmt.Fprintf(w, " %6s", fmt.Sprintf("≥%d", th))
	}
	fmt.Fprintln(w)
	for i, m := range r.Fig5.Months {
		fmt.Fprintf(w, "%8s", m)
		for _, c := range r.Fig5.Counts[i] {
			fmt.Fprintf(w, " %6d", c)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "peak distinct Flashbots miners in a month: %d\n\n", r.Fig5.MaxMinersInAnyMonth())

	fmt.Fprintf(w, "=== Figure 6: sandwiches per month vs gas price ===\n")
	fmt.Fprintf(w, "%8s %10s %10s %12s\n", "month", "FB sand", "nonFB sand", "avg gas(gwei)")
	for _, row := range r.Fig6.Rows {
		marks := ""
		if row.Month == types.BerlinForkMonth {
			marks = "  <- Berlin fork"
		}
		if row.Month == types.LondonForkMonth {
			marks = "  <- London fork"
		}
		fmt.Fprintf(w, "%8s %10d %10d %12.1f%s\n", row.Month, row.FlashbotsSand, row.NonFlashbotsSand, row.AvgGasPriceGwei, marks)
	}
	fmt.Fprintf(w, "correlation(non-FB sandwiches, gas): %.3f; correlation(all sandwiches, gas): %.3f\n\n",
		r.Fig6.CorrNonFB, r.Fig6.CorrAll)

	fmt.Fprintf(w, "=== Figure 7: Flashbots searchers / transactions by MEV type per month ===\n")
	keys := []string{"sandwiches", "arbitrages", "liquidations", "other"}
	fmt.Fprintf(w, "%8s |", "month")
	for _, k := range keys {
		fmt.Fprintf(w, " %11s |", k+" S/T")
	}
	fmt.Fprintln(w)
	for _, row := range r.Fig7.Rows {
		fmt.Fprintf(w, "%8s |", row.Month)
		for _, k := range keys {
			fmt.Fprintf(w, " %5d/%-5d |", row.Searchers[k], row.Txs[k])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "=== Figure 8: sandwich profit (net ETH) by subpopulation ===\n")
	fmt.Fprintf(w, "%-22s %s\n", "miners, non-Flashbots:", r.Fig8.MinerNonFB)
	fmt.Fprintf(w, "%-22s %s\n", "miners, Flashbots:", r.Fig8.MinerFB)
	fmt.Fprintf(w, "%-22s %s\n", "searchers, non-FB:", r.Fig8.SearcherNonFB)
	fmt.Fprintf(w, "%-22s %s\n\n", "searchers, Flashbots:", r.Fig8.SearcherFB)

	if r.Fig9 != nil {
		sp := r.Fig9.Split
		fmt.Fprintf(w, "=== Figure 9: private vs public MEV extraction (window sandwiches) ===\n")
		fmt.Fprintf(w, "total %d | via Flashbots %.1f%% | private non-Flashbots %.1f%% | public %.1f%%\n",
			sp.Total, 100*sp.FlashbotsShare(), 100*sp.PrivateShare(), 100*sp.PublicShare())
		if r.MEVSplit != nil {
			for _, kind := range []string{"arbitrage", "liquidation"} {
				ks := r.MEVSplit.ByKind[kind]
				if ks == nil || ks.Total == 0 {
					continue
				}
				fmt.Fprintf(w, "%-12s total %d | FB %.1f%% | private %.1f%% | public %.1f%%\n",
					kind+":", ks.Total, 100*ks.FlashbotsShare(), 100*ks.PrivateShare(), 100*ks.PublicShare())
			}
		}
		fmt.Fprintln(w)
	}

	b := r.Bundles
	fmt.Fprintf(w, "=== §4.1 bundle statistics ===\n")
	fmt.Fprintf(w, "bundles=%d in %d Flashbots blocks; bundles/block mean=%.2f median=%.0f max=%.0f\n",
		b.Bundles, b.FlashbotsBlocks, b.BundlesPerBlock.Mean, b.BundlesPerBlock.Median, b.BundlesPerBlock.Max)
	fmt.Fprintf(w, "txs/bundle mean=%.2f median=%.0f max=%d; single-tx bundles %.1f%%\n",
		b.TxsPerBundle.Mean, b.TxsPerBundle.Median, b.MaxBundleTxs, 100*b.SingleTxShare())
	fmt.Fprintf(w, "by type: flashbots=%d rogue=%d miner-payout=%d\n\n",
		b.ByType["flashbots"], b.ByType["rogue"], b.ByType["miner-payout"])

	n := r.Negatives
	fmt.Fprintf(w, "=== §5.2 negative profits ===\n")
	fmt.Fprintf(w, "unprofitable Flashbots sandwiches: %d of %d (%.2f%%), total loss %.2f ETH\n\n",
		n.Unprofitable, n.FlashbotsSandwiches, 100*n.Share(), n.TotalLossETH)

	dm := r.Damage
	fmt.Fprintf(w, "=== extension: victim damage (sandwich slippage extracted) ===\n")
	fmt.Fprintf(w, "victims=%d total=%.2f ETH mean=%.4f median=%.4f\n\n",
		dm.Victims, dm.TotalETH, dm.Summary.Mean, dm.Summary.Median)

	fmt.Fprintf(w, "=== §4.4 mining concentration ===\n")
	fmt.Fprintf(w, "distinct Flashbots miners: %d; top-2 share of Flashbots blocks: %.1f%%\n\n",
		r.Concentration.Miners, 100*r.Concentration.Top2Share)

	if len(r.PrivateLinks) > 0 {
		fmt.Fprintf(w, "=== §6.3 private non-Flashbots sandwich accounts ===\n")
		single := 0
		for _, l := range r.PrivateLinks {
			if _, ok := l.SingleMiner(); ok {
				single++
			}
		}
		fmt.Fprintf(w, "accounts: %d; single-miner accounts: %d\n", len(r.PrivateLinks), single)
		for i, l := range r.PrivateLinks {
			if i >= 8 {
				break
			}
			m, ok := l.SingleMiner()
			tag := fmt.Sprintf("%d miners", len(l.Miners))
			if ok {
				tag = "single miner " + m.Short()
			}
			fmt.Fprintf(w, "  %s  %4d private sandwiches  (%s)\n", l.Account.Short(), l.Total, tag)
		}
	}
}

func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac * float64(width))
	out := make([]byte, width)
	for i := range out {
		if i < n {
			out[i] = '#'
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}
