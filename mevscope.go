// Package mevscope reproduces the measurement study "A Flash(bot) in the
// Pan: Measuring Maximal Extractable Value in Private Pools" (IMC 2022)
// over a synthetic Ethereum/DeFi world.
//
// The pipeline has the same three stages as the paper:
//
//  1. a world generates history — traders, MEV searchers, miners, the
//     Flashbots relay and other private pools (internal/sim);
//  2. collection — the chain plays archive node, an observer node records
//     public pending transactions, and the Flashbots relay publishes its
//     blocks API;
//  3. measurement — heuristic detectors, profit computation, private-
//     transaction inference and the monthly aggregations behind every
//     table and figure (internal/core).
//
// The measurement stage runs through a worker pool: blocks fan out across
// runtime.NumCPU() workers (or Options.Parallelism) and partial results
// merge deterministically by block number, so any worker count produces a
// byte-identical report.
//
// Quick start:
//
//	study, err := mevscope.Run(mevscope.Options{Seed: 1, BlocksPerMonth: 300})
//	if err != nil { ... }
//	study.Report.Table1.Format() // Table 1, the MEV dataset overview
//
// Beyond the single replay, named scenarios (internal/scenario) rewrite
// the world — no-flashbots, hashpower-skew, high-private, post-london —
// and RunEnsemble sweeps many seeds per scenario, merging the reports
// with mean/stddev per table cell:
//
//	ens, err := mevscope.RunEnsemble([]int64{1, 2, 3, 4, 5}, "no-flashbots", 4)
//	if err != nil { ... }
//	fmt.Print(ens.Format())
//
// The batch pipeline is one of two consumers of the measurement core:
// internal/stream follows a world block by block and keeps a live report
// incrementally (byte-identical to the batch one at every month
// boundary), and internal/archive persists the collected dataset as a
// segmented on-disk store so a world is simulated once and re-analyzed
// many times (AnalyzeDataset; `mevscope archive` / `mevscope analyze`).
//
// Every table and figure of a report is also exposed as a structured
// artifact (measure.Artifact: name, typed column schema, typed rows,
// scalar summary stats). The text renderer behind WriteReportTo, the CSV
// and JSON encoders, and the `mevscope serve` HTTP API (internal/query)
// all walk that one model, so every output format is an encoding of the
// same value; ensemble reports expose the same model with mean±stddev
// annotations per cell (Ensemble.Artifacts).
package mevscope

import (
	"fmt"
	"io"
	"strings"

	"mevscope/internal/core/detect"
	"mevscope/internal/core/measure"
	"mevscope/internal/core/privinfer"
	"mevscope/internal/core/profit"
	"mevscope/internal/dataset"
	"mevscope/internal/obs"
	"mevscope/internal/p2p"
	"mevscope/internal/parallel"
	"mevscope/internal/scenario"
	"mevscope/internal/sim"
	"mevscope/internal/types"
)

// Options configures a full study run.
type Options struct {
	// Seed drives every random choice; equal seeds give identical runs.
	Seed int64
	// BlocksPerMonth compresses each of the 23 study months (mainnet has
	// ≈190k). Zero selects the default scale.
	BlocksPerMonth uint64
	// Months limits the window for quick runs; zero runs all 23.
	Months int
	// NumMiners sizes the miner set; zero selects the default 55.
	NumMiners int
	// NumTraders sizes the ordinary-user population.
	NumTraders int
	// Scenario names the counterfactual world to simulate (see
	// internal/scenario: baseline, no-flashbots, hashpower-skew,
	// high-private, post-london, single-vantage, multi-vantage-union,
	// degraded-observer). Empty selects the baseline.
	Scenario string
	// Vantages places that many observation vantages evenly around the
	// gossip network (p2p.SpreadVantages); zero keeps the scenario's
	// layout (the paper's single node-0 observer by default).
	Vantages int
	// Topology selects the gossip graph shape (ring, ring-chords,
	// small-world); empty keeps the default ring-chords graph.
	Topology string
	// View selects the observation view the §6 inference classifies
	// against: "", "vantage:N", "union" or "quorum:K". Empty defers to
	// the scenario's view (the primary vantage for most).
	View string
	// Parallelism sizes the measurement worker pool; zero or negative
	// selects runtime.NumCPU(), 1 forces the sequential path.
	Parallelism int
	// Span, when non-nil, is the tracing parent the run records itself
	// under (internal/obs): simulation sealing as a "sim" span with
	// per-month children, then the measurement stages. Tracing never
	// perturbs the report; nil (the default) disables it at zero cost.
	Span *obs.Span
}

// Params converts the options into scenario scale parameters.
func (o Options) Params() scenario.Params {
	return scenario.Params{
		Seed:           o.Seed,
		BlocksPerMonth: o.BlocksPerMonth,
		Months:         o.Months,
		NumMiners:      o.NumMiners,
		NumTraders:     o.NumTraders,
	}
}

// Config resolves the options into the simulation config of the named
// scenario, applying the observation-network overrides (-vantages,
// -topology) on top of whatever the scenario chose.
func (o Options) Config() (sim.Config, error) {
	sc, err := scenario.MustLookup(o.Scenario)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sc.Config(o.Params())
	if o.Topology != "" {
		top, err := p2p.ParseTopology(o.Topology)
		if err != nil {
			return sim.Config{}, err
		}
		cfg.Net.Topology = top
	}
	if o.Vantages < 0 {
		return sim.Config{}, fmt.Errorf("mevscope: Vantages must be ≥ 0, got %d", o.Vantages)
	}
	if o.Vantages > 0 {
		cfg.Net.Vantages = p2p.SpreadVantages(cfg.Net.Nodes, o.Vantages, cfg.Net.ObserverMissRate)
	}
	// The vantage count is fully resolved here, so an out-of-range
	// vantage:N or quorum:K fails now — not after minutes of simulation.
	vantages := len(cfg.Net.Vantages)
	if vantages == 0 {
		vantages = 1
	}
	if err := dataset.CheckViewFor(o.resolvedView(), vantages); err != nil {
		return sim.Config{}, err
	}
	return cfg, nil
}

// resolvedView is the observation view a run classifies against: the
// explicit option, else the scenario's view.
func (o Options) resolvedView() string {
	if o.View != "" {
		return o.View
	}
	if sc, ok := scenario.Lookup(o.Scenario); ok {
		return sc.View
	}
	return ""
}

// Study is the outcome of a run: the simulated world plus every
// measurement artifact.
type Study struct {
	Sim *sim.Sim
	// Detected is the raw detector sweep (archive-node view only).
	Detected *detect.Result
	// Profits are the per-extraction economics.
	Profits []profit.Record
	// Inferrer is the §6 private-transaction classifier (nil when the run
	// ends before the observation window opens).
	Inferrer *privinfer.Inferrer
	// Report carries every table and figure.
	Report *measure.Report
}

// Run simulates the study window under the configured scenario and
// executes the full measurement pipeline over the result, classifying
// private transactions against the resolved observation view.
func Run(opts Options) (*Study, error) {
	cfg, err := opts.Config()
	if err != nil {
		return nil, err
	}
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	simSp := opts.Span.Child(obs.StageSim)
	s.SetSpan(simSp)
	if err := s.Run(); err != nil {
		simSp.End()
		return nil, err
	}
	simSp.SetBlocks(s.Chain.Len())
	simSp.End()
	ds := dataset.FromSim(s)
	ds.View = opts.resolvedView()
	st, err := AnalyzeDatasetTraced(ds, opts.Parallelism, opts.Span)
	if err != nil {
		return nil, err
	}
	st.Sim = s
	return st, nil
}

// Analyze runs the measurement pipeline over a completed simulation,
// fanning per-block work across runtime.NumCPU() workers.
func Analyze(s *sim.Sim) (*Study, error) {
	return AnalyzeWith(s, -1)
}

// AnalyzeWith runs the measurement pipeline with an explicit worker-pool
// size: detection fans blocks across workers, profit resolution fans
// extractions, inference fans classifications and the report builders run
// concurrently. Partial results merge deterministically (by block number,
// then detector order), so every worker count — including 1, the fully
// sequential path — produces a byte-identical report for the same
// simulation. workers < 1 selects runtime.NumCPU().
func AnalyzeWith(s *sim.Sim, workers int) (*Study, error) {
	st, err := AnalyzeDataset(dataset.FromSim(s), workers)
	if err != nil {
		return nil, err
	}
	st.Sim = s
	return st, nil
}

// AnalyzeDataset runs the measurement pipeline over a collected dataset —
// the sim-independent entry point behind AnalyzeWith, the streaming
// follower's snapshots and `mevscope analyze -from <dir>` (a dataset
// restored by internal/archive). Study.Sim is nil in the result.
func AnalyzeDataset(ds *dataset.Dataset, workers int) (*Study, error) {
	return AnalyzeDatasetTraced(ds, workers, nil)
}

// AnalyzeDatasetTraced is AnalyzeDataset with the pipeline's flight
// recorder attached: each measurement stage (detect, profit, aggregate,
// build, infer) records a span — with block/tx counts, pool size and
// per-worker busy time — under the given parent. A nil parent selects
// the exact untraced path; the report is byte-identical either way.
func AnalyzeDatasetTraced(ds *dataset.Dataset, workers int, sp *obs.Span) (*Study, error) {
	if ds.Chain == nil || ds.Chain.Head() == nil {
		return nil, fmt.Errorf("mevscope: dataset has no blocks")
	}
	if len(ds.Projection) > 0 {
		return nil, fmt.Errorf("mevscope: dataset is a column projection (%s); the full pipeline needs a complete restore",
			strings.Join(ds.Projection, ","))
	}
	workers = parallel.Workers(workers)
	c := ds.Chain

	res := detect.ScanParallelSpan(c, ds.WETH, c.Timeline.StartBlock, c.Head().Header.Number, workers, sp)
	comp := profit.New(c, ds.Prices, ds.WETH, ds.FBSet)
	profits := comp.ResolveAllParallelSpan(res, workers, sp)

	in := measure.Inputs{
		Chain:    c,
		FBBlocks: ds.FBBlocks,
		FBSet:    ds.FBSet,
		Detect:   res,
		Profits:  profits,
		WETH:     ds.WETH,
		Workers:  workers,
		Vantages: ds.VantageList(),
		View:     ds.View,
		Span:     sp,
	}
	view, err := ds.ResolveView()
	if err != nil {
		return nil, err
	}
	var inf *privinfer.Inferrer
	if view != nil {
		in.Observer = view
		winStart := c.Timeline.FirstBlockOfMonth(types.PrivateWindowStartMonth)
		inf = privinfer.New(c, view, ds.FBSet, winStart, c.Head().Header.Number)
		inf.Workers = workers
		inf.Span = sp
	}
	report := measure.Build(in, inf)
	return &Study{Detected: res, Profits: profits, Inferrer: inf, Report: report}, nil
}

// AnalyzeDatasetPartial runs the measurement pipeline over a
// single-month dataset and freezes the result as a measure.Partial —
// the memoization unit of the query layer's partial cache. The dataset
// must cover exactly one study month (an archive.ReadRange of [m, m]);
// per the PR 3 cross-boundary rule its observation logs cover every
// vantage up to the month's end, so the partial's inference verdicts
// and coverage stats are exactly what a full-range analysis would
// compute for that month. measure.MergePartials assembles contiguous
// partials into a report byte-identical to AnalyzeDataset over the
// same range.
func AnalyzeDatasetPartial(ds *dataset.Dataset, workers int, sp *obs.Span) (*measure.Partial, error) {
	if ds.Chain == nil || ds.Chain.Head() == nil {
		return nil, fmt.Errorf("mevscope: dataset has no blocks")
	}
	if len(ds.Projection) > 0 {
		return nil, fmt.Errorf("mevscope: dataset is a column projection (%s); the full pipeline needs a complete restore",
			strings.Join(ds.Projection, ","))
	}
	workers = parallel.Workers(workers)
	c := ds.Chain

	res := detect.ScanParallelSpan(c, ds.WETH, c.Timeline.StartBlock, c.Head().Header.Number, workers, sp)
	comp := profit.New(c, ds.Prices, ds.WETH, ds.FBSet)
	profits := comp.ResolveAllParallelSpan(res, workers, sp)

	in := measure.Inputs{
		Chain:    c,
		FBBlocks: ds.FBBlocks,
		FBSet:    ds.FBSet,
		Detect:   res,
		Profits:  profits,
		WETH:     ds.WETH,
		Workers:  workers,
		Vantages: ds.VantageList(),
		View:     ds.View,
		Span:     sp,
	}
	view, err := ds.ResolveView()
	if err != nil {
		return nil, err
	}
	var inf *privinfer.Inferrer
	if view != nil {
		in.Observer = view
		winStart := c.Timeline.FirstBlockOfMonth(types.PrivateWindowStartMonth)
		inf = privinfer.New(c, view, ds.FBSet, winStart, c.Head().Header.Number)
		inf.Workers = workers
		inf.Span = sp
	}
	return measure.NewPartial(in, inf)
}

// AnalyzeDatasetProjection builds only the named report artifacts from a
// dataset, skipping detection, profit resolution and inference entirely.
// Every artifact must be projectable (measure.ProjectionColumns non-nil),
// and when ds carries a column projection (restored via
// archive.ReadOptions.Columns) it must cover the columns the artifacts
// declare. The artifact values are identical to a full AnalyzeDataset's;
// the rest of the returned report is zero.
func AnalyzeDatasetProjection(ds *dataset.Dataset, workers int, artifacts []string, sp *obs.Span) (*measure.Report, error) {
	if ds.Chain == nil || ds.Chain.Head() == nil {
		return nil, fmt.Errorf("mevscope: dataset has no blocks")
	}
	if len(ds.Projection) > 0 {
		have := map[string]bool{}
		for _, c := range ds.Projection {
			have[c] = true
		}
		for _, a := range artifacts {
			cols := measure.ProjectionColumns(a)
			if cols == nil {
				return nil, fmt.Errorf("mevscope: artifact %q is not projectable", a)
			}
			for _, c := range cols {
				if !have[c] {
					return nil, fmt.Errorf("mevscope: artifact %q needs column %q, dataset projection has only %s",
						a, c, strings.Join(ds.Projection, ","))
				}
			}
		}
	}
	in := measure.Inputs{
		Chain:    ds.Chain,
		FBBlocks: ds.FBBlocks,
		FBSet:    ds.FBSet,
		WETH:     ds.WETH,
		Workers:  parallel.Workers(workers),
		Span:     sp,
	}
	return measure.BuildProjection(in, artifacts)
}

// WriteReport renders every reproduced artifact as text, in paper order.
func (st *Study) WriteReport(w io.Writer) {
	WriteReportTo(w, st.Report)
}

// WriteReportTo renders a report as text, in paper order. It is a thin
// walk over the report's structured artifact model (measure.Artifacts):
// the same artifacts back the CSV and JSON encoders and the `mevscope
// serve` HTTP API, so every format is an encoding of one value. It is the
// shared renderer behind Study.WriteReport and the streaming follower's
// live snapshots, so batch and streaming output are comparable byte for
// byte.
func WriteReportTo(w io.Writer, r *measure.Report) {
	measure.WriteReportText(w, r)
}
