module mevscope

go 1.21
