// Sandwich-hunt: the life of one Flashbots sandwich, end to end.
//
// It assembles the DeFi world, plants a large pending victim swap, plans a
// sandwich with the searcher toolkit, submits the [front, victim, back]
// bundle to the relay, lets a miner build the block MEV-geth style, and
// finally re-discovers the attack with the paper's detector and computes
// the profit split between searcher and miner.
//
//	go run ./examples/sandwich-hunt
package main

import (
	"fmt"
	"os"
	"time"

	"mevscope/internal/agents"
	"mevscope/internal/chain"
	"mevscope/internal/core/detect"
	"mevscope/internal/core/profit"
	"mevscope/internal/flashbots"
	"mevscope/internal/genesis"
	"mevscope/internal/mempool"
	"mevscope/internal/miner"
	"mevscope/internal/prices"
	"mevscope/internal/types"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	w, err := genesis.Build(genesis.DefaultConfig(1))
	if err != nil {
		fatal(err)
	}
	c := chain.New(types.DefaultTimeline(600))

	// 1. A victim's large buy sits in the public mempool: 90 WETH into
	// SUSHI on Bancor, the shallowest pool in the default world.
	bancor, _ := w.Venues.ByName("Bancor")
	sushi, _ := w.St.TokenBySymbol("SUSHI")
	victim := agents.NewTrader(1)
	w.St.Mint(victim.Addr, 10*types.Ether)
	w.St.MintToken(w.WETH, victim.Addr, 200*types.Ether)
	victimTx := &types.Transaction{
		Nonce: victim.NextNonce(), From: victim.Addr,
		GasPrice: 60 * types.Gwei, GasLimit: 200_000,
		Payload: types.Payload{
			Kind:     types.TxSwap,
			Hops:     []types.SwapHop{{Venue: bancor.Addr, TokenIn: w.WETH, TokenOut: sushi}},
			AmountIn: 90 * types.Ether,
		},
	}
	pool := mempool.New()
	pool.Add(victimTx)
	fmt.Printf("victim: %s buys 90 WETH of SUSHI on Bancor (tx %s)\n", victim.Addr.Short(), victimTx.Hash().Short())

	// 2. A searcher spots it and sizes the attack by simulation.
	searcher := agents.NewSearcher(1, 1.0)
	searcher.Fund(&w.World, 50*types.Ether, 2_000*types.Ether)
	plan, ok := searcher.PlanSandwich(&w.World, victimTx)
	if !ok {
		fatal(fmt.Errorf("victim not sandwichable"))
	}
	fmt.Printf("searcher: attack size %.2f WETH, expected gross %.4f ETH\n",
		plan.AttackIn.Ether(), plan.ExpectedGross.Ether())

	// 3. Bundle [front, victim, back] with an 85%% sealed-bid tip.
	tip := plan.ExpectedGross.MulDiv(85, 100)
	front, back := searcher.SandwichTxs(&w.World, plan, agents.GasPricing{Price: 2 * types.Gwei}, types.Gwei, tip)
	relay := flashbots.NewRelay()
	bundle := &flashbots.Bundle{
		Searcher: searcher.Addr, Type: flashbots.TypeFlashbots,
		Txs: []*types.Transaction{front, victimTx, back},
	}
	if _, err := relay.SubmitBundle(bundle); err != nil {
		fatal(err)
	}

	// 4. An authorized miner merges the bundle at the top of its block.
	coinbase := types.DeriveAddress("example-miner", 0)
	if err := relay.AuthorizeMiner(coinbase); err != nil {
		fatal(err)
	}
	offers, _ := relay.PendingFor(coinbase, c.NextNumber(), 0)
	res := miner.Build(w.Ex, miner.BuildInput{
		Number: c.NextNumber(), Time: time.Now(), GasLimit: 15_000_000,
		Coinbase: coinbase, Bundles: offers, MaxBundles: 3, Public: pool,
	})
	relay.RecordBlock(res.Block, res.Included)
	if err := c.Append(res.Block); err != nil {
		fatal(err)
	}
	fmt.Printf("miner: block %d sealed with %d txs, %d bundle(s)\n",
		res.Block.Header.Number, len(res.Block.Txs), len(res.Included))

	// 5. The measurement side: detect the sandwich from logs alone and
	// resolve its economics.
	found := detect.SandwichesInBlock(res.Block, w.WETH)
	if len(found) != 1 {
		fatal(fmt.Errorf("detector found %d sandwiches", len(found)))
	}
	s := found[0]
	comp := profit.New(c, prices.NewSeries(), w.WETH, relay.FlashbotsTxSet())
	rec, err := comp.Sandwich(s)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("detector: sandwich on pool %s, gross gain %.4f ETH\n", s.Pool.Short(), rec.GainETH.Ether())
	fmt.Printf("economics: searcher net %.4f ETH after %.4f ETH costs (tip to miner %.4f ETH)\n",
		rec.NetETH.Ether(), rec.CostETH.Ether(), tip.Ether())
	fmt.Printf("via Flashbots per public API: %v\n", rec.ViaFlashbots)
}
