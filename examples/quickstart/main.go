// Quickstart: run a small end-to-end study and print the headline
// artifacts — Table 1 and the Figure 9 private/public split.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"mevscope"
)

func main() {
	// 150 blocks per month keeps the run under a few seconds while still
	// producing every artifact; bump for smoother curves. Scenario ""
	// (baseline) replays the paper's world; Parallelism 0 fans the
	// measurement pipeline across all cores.
	study, err := mevscope.Run(mevscope.Options{Seed: 7, BlocksPerMonth: 150, Scenario: "baseline"})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("Table 1 — MEV dataset overview:")
	fmt.Println(study.Report.Table1.Format())

	if f9 := study.Report.Fig9; f9 != nil {
		sp := f9.Split
		fmt.Printf("Figure 9 — window sandwiches: %d total, %.1f%% Flashbots, %.1f%% other-private, %.1f%% public\n",
			sp.Total, 100*sp.FlashbotsShare(), 100*sp.PrivateShare(), 100*sp.PublicShare())
	}

	fmt.Printf("\nsimulated %d blocks, detected %d sandwiches / %d arbitrages / %d liquidations\n",
		study.Sim.Chain.Len(),
		len(study.Detected.Sandwiches), len(study.Detected.Arbitrages), len(study.Detected.Liquidations))
}
