// Hashpower-audit: reproduce the paper's §4.3-§4.4 miner analysis — the
// Flashbots hashrate estimate per month (Figure 4), the
// miners-with-n-blocks distribution (Figure 5), and a Gini coefficient of
// mining concentration (the paper's "mining is just as centralized as it
// was prior to Flashbots" takeaway).
//
//	go run ./examples/hashpower-audit
package main

import (
	"fmt"
	"os"
	"sort"

	"mevscope"
	"mevscope/internal/stats"
	"mevscope/internal/types"
)

func main() {
	study, err := mevscope.Run(mevscope.Options{Seed: 4, BlocksPerMonth: 250})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("Figure 4 — estimated Flashbots hashrate:")
	for _, mv := range study.Report.Fig4 {
		if mv.Month < types.FlashbotsLaunchMonth-1 {
			continue
		}
		fmt.Printf("  %8s %6.1f%%\n", mv.Month, 100*mv.Value)
	}

	f5 := study.Report.Fig5
	fmt.Printf("\nFigure 5 — miners with ≥ n Flashbots blocks (thresholds %v):\n", f5.Thresholds)
	for i, m := range f5.Months {
		if m < types.FlashbotsLaunchMonth {
			continue
		}
		fmt.Printf("  %8s %v\n", m, f5.Counts[i])
	}
	fmt.Printf("  peak distinct Flashbots miners: %d (paper: never above 55)\n", f5.MaxMinersInAnyMonth())

	// Concentration: Gini over per-miner Flashbots block counts in the
	// final month.
	last := f5.Months[len(f5.Months)-1]
	counts := map[types.Address]int{}
	for _, rec := range study.Sim.Relay.Blocks() {
		if study.Sim.Chain.Timeline.MonthOfBlock(rec.BlockNumber) == last {
			counts[rec.Miner]++
		}
	}
	var xs []float64
	top, total := 0, 0
	for _, n := range counts {
		xs = append(xs, float64(n))
		total += n
		if n > top {
			top = n
		}
	}
	sort.Float64s(xs) // Gini and topK are order-insensitive; pin the order anyway
	// Two biggest miners' share (paper: >90 % of Flashbots blocks from two
	// miners).
	top2 := topK(xs, 2)
	fmt.Printf("\n§4.4 — concentration in %s: gini=%.2f, top-2 miners mined %.0f%% of Flashbots blocks\n",
		last, stats.Gini(xs), 100*top2/float64(max(1, total)))

	// Counterfactual: the hashpower-skew scenario doubles the Zipf
	// exponent of the miner set — how much worse does concentration get?
	// Same seed and scale as the baseline run, so only the skew differs.
	skewed, err := mevscope.Run(mevscope.Options{Seed: 4, BlocksPerMonth: 250, Scenario: "hashpower-skew"})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nhashpower-skew scenario: top-2 share %.0f%% (baseline %.0f%%)\n",
		100*skewed.Report.Concentration.Top2Share, 100*study.Report.Concentration.Top2Share)
}

func topK(xs []float64, k int) float64 {
	sum := 0.0
	for i := 0; i < k; i++ {
		best := -1
		for j, x := range xs {
			if best < 0 || x > xs[best] {
				best = j
			}
			_ = x
		}
		if best < 0 {
			break
		}
		sum += xs[best]
		xs[best] = -1
	}
	return sum
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
