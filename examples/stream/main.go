// Stream: follow a world live instead of collect-then-measure. The paper
// needs the whole 23-month history on disk before computing a single
// number; the streaming follower consumes each block as the simulator
// seals it, keeps every measurement layer incrementally up to date, and
// can snapshot the full report at any month boundary — byte-identical to
// what the batch pipeline would compute over the same prefix.
//
//	go run ./examples/stream
package main

import (
	"bytes"
	"fmt"
	"os"

	"mevscope"
	"mevscope/internal/sim"
	"mevscope/internal/stream"
	"mevscope/internal/types"
)

func main() {
	cfg := sim.DefaultConfig(42)
	cfg.BlocksPerMonth = 60
	s, err := sim.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// A live ticker: after each completed month, read the running totals
	// off the follower — no rescan, the state is already current.
	f := stream.ForSim(s, 0)
	fmt.Println("month     blocks  extractions  FB-sandwiches  live")
	f.OnMonthEnd = func(m types.Month, fl *stream.Follower) {
		rep := fl.Report()
		fbSand := 0
		for _, row := range rep.Fig6.Rows {
			fbSand += row.FlashbotsSand
		}
		fmt.Printf("%7s %8d %12d %14d  %s\n",
			m, fl.Blocks(), rep.Table1.Total.Extractions, fbSand, bar(rep.Table1.Total.Extractions))
	}

	end := s.EndBlock()
	for s.Chain.NextNumber() <= end {
		if err := s.Step(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if _, err := f.Sync(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	// The final streamed report is byte-identical to the batch pipeline
	// over the finished world — the subsystem's core guarantee.
	batch, err := mevscope.Analyze(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var streamed, batched bytes.Buffer
	mevscope.WriteReportTo(&streamed, f.Report())
	batch.WriteReport(&batched)
	fmt.Printf("\nstreamed report: %d bytes; batch report: %d bytes; identical: %v\n",
		streamed.Len(), batched.Len(), bytes.Equal(streamed.Bytes(), batched.Bytes()))

	fmt.Println("\n=== final Table 1, computed incrementally ===")
	fmt.Print(f.Report().Table1.Format())
}

func bar(n int) string {
	w := n / 25
	if w > 40 {
		w = 40
	}
	out := make([]byte, w)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
