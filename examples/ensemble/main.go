// Ensemble: put error bars on the paper's headline numbers and run a
// counterfactual the paper could not. The paper replays one 23-month
// history; a multi-seed ensemble reruns it under independent seeds and
// reports mean ± stddev per table cell — then the same sweep under the
// no-Flashbots scenario shows what the ablated world measures.
//
//	go run ./examples/ensemble
package main

import (
	"fmt"
	"os"

	"mevscope"
)

func main() {
	seeds := []int64{1, 2, 3, 4}
	base := mevscope.Options{BlocksPerMonth: 60, Scenario: "baseline"}

	ens, err := mevscope.RunEnsembleWith(base, seeds, -1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ens.WriteSummary(os.Stdout)

	// The §8.2 ablation, same seeds: Flashbots never launches.
	base.Scenario = "no-flashbots"
	base.Months = 16 // through the pre-London PGA era, where the ablation bites
	noFB, err := mevscope.RunEnsembleWith(base, seeds, -1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()
	noFB.WriteSummary(os.Stdout)

	fmt.Printf("\nFlashbots extractions: baseline %s vs no-flashbots %s\n",
		ens.Table1[3].ViaFlashbots, noFB.Table1[3].ViaFlashbots)
}
