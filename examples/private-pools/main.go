// Private-pools: reproduce the paper's §6 analysis — infer which mined
// MEV was private, split it by channel (Figure 9), and attribute private
// non-Flashbots sandwiches to single-miner channels (§6.3).
//
//	go run ./examples/private-pools
package main

import (
	"fmt"
	"os"

	"mevscope"
)

func main() {
	// Swap Scenario for "high-private" to rerun the analysis in the
	// counterfactual where private pools adopt early and capture 2.5x MEV.
	study, err := mevscope.Run(mevscope.Options{Seed: 21, BlocksPerMonth: 250, Scenario: "baseline"})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if study.Report.Fig9 == nil {
		fmt.Fprintln(os.Stderr, "run too short: observation window never opened")
		os.Exit(1)
	}

	sp := study.Report.Fig9.Split
	fmt.Println("§6.2 — sandwich channels inside the observation window:")
	fmt.Printf("  total sandwiches:        %d\n", sp.Total)
	fmt.Printf("  via Flashbots:           %d (%.1f%%)\n", sp.Flashbots, 100*sp.FlashbotsShare())
	fmt.Printf("  private, non-Flashbots:  %d (%.1f%%)\n", sp.Private, 100*sp.PrivateShare())
	fmt.Printf("  public mempool:          %d (%.1f%%)\n", sp.Public, 100*sp.PublicShare())
	fmt.Printf("  (paper: 81.1%% / 13.2%% / 5.6%%)\n\n")

	fmt.Println("§6.3 — private non-Flashbots sandwich accounts and their miners:")
	single := 0
	for _, l := range study.Report.PrivateLinks {
		m, ok := l.SingleMiner()
		if ok {
			single++
			fmt.Printf("  %s  %3d sandwiches — ALL mined by %s (miner-owned channel?)\n",
				l.Account.Short(), l.Total, m.Short())
		} else {
			fmt.Printf("  %s  %3d sandwiches across %d miners (shared private pool)\n",
				l.Account.Short(), l.Total, len(l.Miners))
		}
	}
	fmt.Printf("\n%d of %d accounts used a single miner exclusively\n", single, len(study.Report.PrivateLinks))
	fmt.Println("(the paper found two such accounts, tied to F2Pool and Flexpool)")
}
