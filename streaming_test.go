package mevscope

import (
	"bytes"
	"fmt"
	"testing"

	"mevscope/internal/sim"
	"mevscope/internal/stream"
)

// TestStreamMatchesRun is the tentpole acceptance test: streaming a world
// block by block through the follower yields a final formatted report
// byte-identical to mevscope.Run — across multiple scenarios and seeds.
func TestStreamMatchesRun(t *testing.T) {
	scenarios := []string{"baseline", "post-london"}
	seeds := []int64{6, 31}
	for _, scen := range scenarios {
		for _, seed := range seeds {
			scen, seed := scen, seed
			t.Run(fmt.Sprintf("%s/seed%d", scen, seed), func(t *testing.T) {
				opts := Options{Seed: seed, BlocksPerMonth: 35, Scenario: scen, Parallelism: 2}

				// Batch: the paper's collect-then-measure pipeline.
				batch, err := Run(opts)
				if err != nil {
					t.Fatal(err)
				}
				var want bytes.Buffer
				batch.WriteReport(&want)

				// Streaming: an identical world consumed one block at a time.
				cfg, err := opts.Config()
				if err != nil {
					t.Fatal(err)
				}
				s, err := sim.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				f := stream.ForSim(s, 2)
				end := s.EndBlock()
				for s.Chain.NextNumber() <= end {
					if err := s.Step(); err != nil {
						t.Fatal(err)
					}
					if _, err := f.Sync(); err != nil {
						t.Fatal(err)
					}
				}
				var got bytes.Buffer
				WriteReportTo(&got, f.Report())

				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Errorf("scenario %s seed %d: streamed report differs from mevscope.Run", scen, seed)
				}
			})
		}
	}
}
