package mevscope

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"mevscope/internal/obs"
	"mevscope/internal/sim"
	"mevscope/internal/stream"
)

// TestTracedRunMatchesGolden is the tentpole determinism gate: running
// the golden world with the flight recorder attached produces a report
// byte-identical to the recorded golden. Spans only measure; they never
// reorder work or touch a measured value.
func TestTracedRunMatchesGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/report_seed1234_bpm100.golden")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New("golden")
	st, err := Run(Options{Seed: 1234, BlocksPerMonth: 100, Span: tr.Root()})
	if err != nil {
		t.Fatal(err)
	}
	tr.Root().End()
	var buf bytes.Buffer
	st.WriteReport(&buf)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("traced run's report differs from the golden (tracing perturbed the output)")
	}
	if len(tr.Spans()) < 10 {
		t.Fatalf("trace recorded only %d spans over a full run", len(tr.Spans()))
	}
}

// TestTracedStreamMatchesBatch: the batch≡stream identity holds with
// tracing enabled on both sides — the follower's rotation and snapshot
// spans, and the batch pipeline's stage spans, leave the reports
// byte-identical.
func TestTracedStreamMatchesBatch(t *testing.T) {
	opts := Options{Seed: 6, BlocksPerMonth: 35, Parallelism: 2}

	btr := obs.New("batch")
	batch, err := Run(Options{Seed: 6, BlocksPerMonth: 35, Parallelism: 2, Span: btr.Root()})
	if err != nil {
		t.Fatal(err)
	}
	btr.Root().End()
	var want bytes.Buffer
	batch.WriteReport(&want)

	cfg, err := opts.Config()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	str := obs.New("stream")
	f := stream.ForSim(s, 2)
	f.SetSpan(str.Root())
	end := s.EndBlock()
	for s.Chain.NextNumber() <= end {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	var got bytes.Buffer
	WriteReportTo(&got, f.Report())
	str.Root().End()

	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("traced streamed report differs from traced batch run")
	}
	for _, tr := range []*obs.Trace{btr, str} {
		if len(tr.Spans()) < 2 {
			t.Errorf("trace recorded only %d spans", len(tr.Spans()))
		}
	}
}

// TestTraceExportCoverage: a traced full run exports loadable Chrome
// JSON whose stage summary accounts for nearly all of the recorded
// wall time — the flight recorder sees the run, not slivers of it.
func TestTraceExportCoverage(t *testing.T) {
	tr := obs.New("study")
	st, err := Run(Options{Seed: 7, BlocksPerMonth: 40, Parallelism: 2, Span: tr.Root()})
	if err != nil {
		t.Fatal(err)
	}
	tr.Root().End()
	if st.Report == nil {
		t.Fatal("no report")
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range file.TraceEvents {
		if e.Ph == "X" {
			seen[e.Name] = true
		}
	}
	for _, stage := range []string{obs.StageSim, obs.StageSimMonth, obs.StageDetect,
		obs.StageProfit, obs.StageAggregate, obs.StageBuild, obs.StageInfer} {
		if !seen[stage] {
			t.Errorf("exported trace is missing stage %q", stage)
		}
	}
	if cov := tr.Coverage(); cov < 0.95 {
		t.Errorf("top-level stages cover %.1f%% of wall time, want ≥ 95%%", 100*cov)
	}
}
