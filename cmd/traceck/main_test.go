package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mevscope/internal/obs"
)

// record builds a small but realistic trace through the real recorder
// and exports it with the real Chrome writer, so the validator is
// tested against exactly what mevscope emits.
func record(tb testing.TB, stages []string) []byte {
	tb.Helper()
	tr := obs.New("test")
	for _, st := range stages {
		sp := tr.Root().Child(st)
		time.Sleep(2 * time.Millisecond)
		sp.End()
	}
	tr.Root().End()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckAcceptsRealTrace(t *testing.T) {
	stages := []string{"archive:restore", "detect", "profit", "aggregate", "build", "render"}
	data := record(t, stages)
	summary, err := check(data, 0.9, stages)
	if err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if !strings.Contains(summary, "7 spans") {
		t.Errorf("summary = %q, want 7 spans (root + 6 stages)", summary)
	}
}

func TestCheckRejects(t *testing.T) {
	good := record(t, []string{"detect"})
	cases := []struct {
		name     string
		data     []byte
		coverage float64
		stages   []string
		want     string
	}{
		{"garbage", []byte("not json"), 0, nil, "not valid trace JSON"},
		{"empty", []byte(`{"traceEvents":[]}`), 0, nil, "no complete"},
		{"missing stage", good, 0, []string{"detect", "profit"}, "required stages missing: profit"},
		{"orphan parent", []byte(`{"traceEvents":[
			{"name":"root","ph":"X","ts":0,"dur":100,"args":{"span":1}},
			{"name":"kid","ph":"X","ts":0,"dur":50,"args":{"span":2,"parent":9}}]}`),
			0, nil, "parent 9 does not exist"},
		{"escapes parent", []byte(`{"traceEvents":[
			{"name":"root","ph":"X","ts":0,"dur":100000,"args":{"span":1}},
			{"name":"kid","ph":"X","ts":50000,"dur":100000,"args":{"span":2,"parent":1}}]}`),
			0, nil, "escapes parent"},
		{"duplicate id", []byte(`{"traceEvents":[
			{"name":"root","ph":"X","ts":0,"dur":100,"args":{"span":1}},
			{"name":"again","ph":"X","ts":0,"dur":50,"args":{"span":1}}]}`),
			0, nil, "duplicate span id"},
		{"no root", []byte(`{"traceEvents":[
			{"name":"a","ph":"X","ts":0,"dur":100,"args":{"span":1,"parent":2}},
			{"name":"b","ph":"X","ts":0,"dur":100,"args":{"span":2,"parent":1}}]}`),
			0, nil, "no root span"},
		{"low coverage", []byte(`{"traceEvents":[
			{"name":"root","ph":"X","ts":0,"dur":100000,"args":{"span":1}},
			{"name":"kid","ph":"X","ts":0,"dur":1000,"args":{"span":2,"parent":1}}]}`),
			0.95, nil, "cover"},
	}
	for _, tc := range cases {
		if _, err := check(tc.data, tc.coverage, tc.stages); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestCoverageUnion: overlapping siblings count once — two children
// covering the same half of the root yield 50%, not 100%.
func TestCoverageUnion(t *testing.T) {
	data := []byte(`{"traceEvents":[
		{"name":"root","ph":"X","ts":0,"dur":100000,"args":{"span":1}},
		{"name":"a","ph":"X","ts":0,"dur":50000,"args":{"span":2,"parent":1}},
		{"name":"b","ph":"X","ts":10000,"dur":40000,"args":{"span":3,"parent":1}}]}`)
	if _, err := check(data, 0.6, nil); err == nil {
		t.Error("overlap double-counted: 50% of wall passed a 60% floor")
	}
	if _, err := check(data, 0.45, nil); err != nil {
		t.Errorf("union coverage rejected a 45%% floor: %v", err)
	}
}
