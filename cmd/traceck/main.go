// Command traceck validates a Chrome trace-event JSON file produced by
// `mevscope -trace` / `mevscope analyze -trace` — the CI gate behind
// the trace artifact. It checks that the file is well-formed (parses,
// every complete event carries a name, a span id and sane timestamps),
// that spans nest (every child's interval sits inside its parent's,
// within a small scheduling tolerance), that the expected pipeline
// stages all appear, and that the root's direct children cover at
// least -coverage of the recorded wall time — i.e. the recorder
// actually saw the run, not just slivers of it.
//
// Usage:
//
//	traceck [-coverage 0.95] [-stages detect,profit,...] trace.json
//
// Exit status 0 when every check passes; 1 with a diagnostic naming
// the first failed check otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// defaultStages is the stage set an analyze run must record: the
// archive restore with its per-segment decodes, the measurement core,
// and the final render.
const defaultStages = "archive:restore,archive:decode,detect,profit,aggregate,build,render"

// nestTolerance is the slack (in trace microseconds) allowed between a
// child's interval and its parent's: span ends are observed on
// different goroutines, so a child can outlive its parent's recorded
// end by a scheduling quantum without the tree being wrong.
const nestTolerance = 1000.0 // 1ms

// event is the subset of a trace event the checks need.
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
}

// span is one decoded complete ("X") event.
type span struct {
	name       string
	id, parent int
	start, end float64
}

func main() {
	var (
		coverage = flag.Float64("coverage", 0.95, "minimum fraction of root wall time the top-level stages must cover")
		stages   = flag.String("stages", defaultStages, "comma-separated stage names that must appear")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceck [-coverage F] [-stages a,b,...] trace.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceck:", err)
		os.Exit(1)
	}
	var required []string
	for _, st := range strings.Split(*stages, ",") {
		if st = strings.TrimSpace(st); st != "" {
			required = append(required, st)
		}
	}
	summary, err := check(data, *coverage, required)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceck:", err)
		os.Exit(1)
	}
	fmt.Println("traceck: OK —", summary)
}

// check runs every validation over one trace file and returns a
// one-line summary of what it saw.
func check(data []byte, minCoverage float64, required []string) (string, error) {
	var file struct {
		TraceEvents []event `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		return "", fmt.Errorf("not valid trace JSON: %w", err)
	}

	spans := make(map[int]*span)
	order := []*span{}
	for i, e := range file.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if e.Name == "" {
			return "", fmt.Errorf("event %d: complete event with no name", i)
		}
		if e.Ts < 0 || e.Dur < 0 {
			return "", fmt.Errorf("event %d (%s): negative ts/dur (%g, %g)", i, e.Name, e.Ts, e.Dur)
		}
		id := argInt(e.Args, "span")
		if id < 1 {
			return "", fmt.Errorf("event %d (%s): missing span id", i, e.Name)
		}
		if _, dup := spans[id]; dup {
			return "", fmt.Errorf("event %d (%s): duplicate span id %d", i, e.Name, id)
		}
		sp := &span{name: e.Name, id: id, parent: argInt(e.Args, "parent"), start: e.Ts, end: e.Ts + e.Dur}
		spans[id] = sp
		order = append(order, sp)
	}
	if len(order) == 0 {
		return "", fmt.Errorf("no complete (ph=X) events in trace")
	}

	var root *span
	for _, sp := range order {
		if sp.parent == 0 {
			if root != nil {
				return "", fmt.Errorf("two roots: %q (span %d) and %q (span %d)", root.name, root.id, sp.name, sp.id)
			}
			root = sp
			continue
		}
		par, ok := spans[sp.parent]
		if !ok {
			return "", fmt.Errorf("span %d (%s): parent %d does not exist", sp.id, sp.name, sp.parent)
		}
		if sp.start < par.start-nestTolerance || sp.end > par.end+nestTolerance {
			return "", fmt.Errorf("span %d (%s) [%.0f, %.0f] escapes parent %d (%s) [%.0f, %.0f]",
				sp.id, sp.name, sp.start, sp.end, par.id, par.name, par.start, par.end)
		}
	}
	if root == nil {
		return "", fmt.Errorf("no root span (every span has a parent)")
	}

	seen := make(map[string]bool, len(order))
	for _, sp := range order {
		seen[sp.name] = true
	}
	var missing []string
	for _, st := range required {
		if !seen[st] {
			missing = append(missing, st)
		}
	}
	if len(missing) > 0 {
		return "", fmt.Errorf("required stages missing: %s", strings.Join(missing, ", "))
	}

	cov := coverage(root, order)
	if cov < minCoverage {
		return "", fmt.Errorf("top-level stages cover %.1f%% of root wall time, want ≥ %.1f%%",
			100*cov, 100*minCoverage)
	}
	return fmt.Sprintf("%d spans, %d distinct stages, coverage %.1f%%", len(order), len(seen), 100*cov), nil
}

// coverage is the fraction of the root's wall time covered by the
// union of its direct children's intervals — overlapping children (the
// inference stages run concurrently with the build fan-out) count
// once.
func coverage(root *span, all []*span) float64 {
	if root.end <= root.start {
		return 1
	}
	type iv struct{ lo, hi float64 }
	var ivs []iv
	for _, sp := range all {
		if sp.parent == root.id {
			ivs = append(ivs, iv{sp.start, sp.end})
		}
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].lo != ivs[j].lo {
			return ivs[i].lo < ivs[j].lo
		}
		return ivs[i].hi < ivs[j].hi
	})
	var covered, hi float64
	for _, v := range ivs {
		if v.lo > hi {
			covered += v.hi - v.lo
			hi = v.hi
		} else if v.hi > hi {
			covered += v.hi - hi
			hi = v.hi
		}
	}
	return covered / (root.end - root.start)
}

// argInt reads an integer-valued arg (JSON numbers decode as float64).
func argInt(args map[string]any, key string) int {
	v, ok := args[key]
	if !ok {
		return 0
	}
	f, ok := v.(float64)
	if !ok {
		return 0
	}
	return int(f)
}
