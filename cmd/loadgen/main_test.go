package main

import (
	"strings"
	"testing"
	"time"

	"mevscope"
	"mevscope/internal/archive"
	"mevscope/internal/dataset"
	"mevscope/internal/sim"
)

// TestParseConfig: flag validation — exactly one target, sane levels,
// known mix kinds, bounded fractions.
func TestParseConfig(t *testing.T) {
	bad := []struct {
		from, url, clients, mix string
		inm                     float64
		dur                     time.Duration
		want                    string
	}{
		{"", "", "1", "report:1", 0, time.Second, "exactly one of"},
		{"dir", "http://x", "1", "report:1", 0, time.Second, "exactly one of"},
		{"dir", "", "0", "report:1", 0, time.Second, "bad client count"},
		{"dir", "", "1,x", "report:1", 0, time.Second, "bad client count"},
		{"dir", "", "", "report:1", 0, time.Second, "names no levels"},
		{"dir", "", "1", "nope:1", 0, time.Second, "unknown mix kind"},
		{"dir", "", "1", "report", 0, time.Second, "want kind:weight"},
		{"dir", "", "1", "report:0", 0, time.Second, "bad weight"},
		{"dir", "", "1", "", 0, time.Second, "names no queries"},
		{"dir", "", "1", "report:1", 1.5, time.Second, "-inm must be"},
		{"dir", "", "1", "report:1", 0, 0, "-duration must be"},
	}
	for _, c := range bad {
		_, err := parseConfig(c.from, c.url, c.clients, c.mix, c.inm, c.dur, 0, true)
		if err == nil {
			t.Errorf("parseConfig(%q,%q,%q,%q,%g,%v) accepted; want %q", c.from, c.url, c.clients, c.mix, c.inm, c.dur, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("parseConfig error %q does not mention %q", err, c.want)
		}
	}
	if _, err := parseConfig("dir", "", "1", "sliding-window:3,block:1,projected:2", 0, time.Second, 0, true); err != nil {
		t.Errorf("parseConfig rejected the dynamic kinds: %v", err)
	}
	cfg, err := parseConfig("dir", "", "1, 64 ,1024", "artifact:6,report:2", 0.5, time.Second, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.clients) != 3 || cfg.clients[2] != 1024 {
		t.Errorf("clients = %v", cfg.clients)
	}
	if len(cfg.mix) != 2 || cfg.mix[0].weight != 6 {
		t.Errorf("mix = %+v", cfg.mix)
	}
	if len(cfg.urls()) < 5 {
		t.Errorf("warmup URL set = %v, want the artifact rotation plus the report", cfg.urls())
	}
}

// TestRunAgainstArchive: an end-to-end in-process sweep over a small
// archive — every level completes, emits sane numbers, sees zero 5xx,
// and (with -inm 1) the conditional-GET path produces 304s.
func TestRunAgainstArchive(t *testing.T) {
	dir := t.TempDir()
	cfgSim, err := mevscope.Options{Seed: 5, BlocksPerMonth: 20, Months: 4}.Config()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(cfgSim)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := archive.Write(dir, dataset.FromSim(s), map[string]string{"scenario": "baseline"}); err != nil {
		t.Fatal(err)
	}

	cfg, err := parseConfig(dir, "", "1,2", "artifact:4,report:1,manifest:1", 1.0, 300*time.Millisecond, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	out, err := run(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(out.Levels))
	}
	for _, lvl := range out.Levels {
		if lvl.Requests == 0 || lvl.QPS <= 0 {
			t.Errorf("%d clients: %d requests at %.1f qps", lvl.Clients, lvl.Requests, lvl.QPS)
		}
		if lvl.P99Ms < lvl.P50Ms {
			t.Errorf("%d clients: p99 %.3fms < p50 %.3fms", lvl.Clients, lvl.P99Ms, lvl.P50Ms)
		}
		if lvl.Status["5xx"] != 0 || lvl.Errors != 0 {
			t.Errorf("%d clients: %d 5xx, %d errors under load", lvl.Clients, lvl.Status["5xx"], lvl.Errors)
		}
		if lvl.Status["2xx"]+lvl.Status["3xx"] != lvl.Requests {
			t.Errorf("%d clients: status classes %v do not sum to %d requests", lvl.Clients, lvl.Status, lvl.Requests)
		}
	}
	if out.serverFailures() != 0 {
		t.Errorf("serverFailures = %d", out.serverFailures())
	}
	// Every artifact and report request after warmup carried the captured
	// validator (-inm 1), so a healthy share of the run must be 304s —
	// and 304s carry no body, so bytes/request stays below a full-body
	// run's.
	last := out.Levels[len(out.Levels)-1]
	if last.NotModifiedRatio <= 0 {
		t.Errorf("not_modified_ratio = %g, want > 0 with -inm 1", last.NotModifiedRatio)
	}
	if last.NotModified == 0 {
		t.Error("no 304s despite warm validators on every request")
	}
}

// TestRunSlidingWindowMix drives the dynamic kinds end to end over a
// four-month archive: sliding-window resolves to overlapping month
// windows off the manifest, block resolves to archived point lookups,
// projected exercises the column-projected artifact path — and the
// overlap means the month-partial cache must record hits, which is
// exactly what CI's -require-partial-hits gate asserts.
func TestRunSlidingWindowMix(t *testing.T) {
	dir := t.TempDir()
	cfgSim, err := mevscope.Options{Seed: 5, BlocksPerMonth: 20, Months: 4}.Config()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(cfgSim)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := archive.Write(dir, dataset.FromSim(s), map[string]string{"scenario": "baseline"}); err != nil {
		t.Fatal(err)
	}

	cfg, err := parseConfig(dir, "", "2", "sliding-window:4,block:1,projected:1", 0, 300*time.Millisecond, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	out, err := run(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Four months at window width three → two overlapping windows.
	if got := len(cfg.kindURLs["sliding-window"]); got != 2 {
		t.Errorf("sliding-window resolved %d windows (%v), want 2", got, cfg.kindURLs["sliding-window"])
	}
	if got := len(cfg.kindURLs["block"]); got != 16 {
		t.Errorf("block resolved %d lookups, want 16", got)
	}
	if out.serverFailures() != 0 {
		t.Fatalf("server failures under the sliding-window mix: %+v", out.Levels)
	}
	if out.PartialCache == nil {
		t.Fatal("BENCH_load output carries no partial_cache block on a partial-wired server")
	}
	if out.PartialCache.Hits == 0 || out.PartialCache.HitRatio <= 0 {
		t.Errorf("partial cache recorded no reuse across overlapping windows: %+v", out.PartialCache)
	}
}
