// Command loadgen replays a configurable mix of mevscope serve queries
// at N concurrent clients and reports the serving tier's throughput and
// latency distribution — the measurement surface behind CI's
// BENCH_load.json artifact. It drives either an in-process query.Server
// over an archive (-from, no sockets, so the process's allocs/request
// reflect the server) or a remote `mevscope serve` instance (-url).
//
// Usage:
//
//	loadgen -from DIR [-clients 1,64,1024] [-duration 2s]
//	        [-mix artifact:6,report:2,artifacts:1,manifest:1] [-inm 0.5]
//	        [-parallel W] [-out BENCH_load.json] [-require-partial-hits]
//	loadgen -url http://127.0.0.1:8571 [...]
//
// Besides the fixed-URL kinds (artifact, projected, report, artifacts,
// manifest, cache), two kinds resolve their URL set against the target's
// /v1/manifest before the run: `sliding-window` walks overlapping
// month-range report windows across the archive — every URL a distinct
// report key, so the workload exercises the month-partial cache rather
// than the report LRU — and `block` rotates point lookups across the
// archived block range. The JSON output ends with the server's
// partial-cache counters (from /v1/cache) when that level exists;
// -require-partial-hits turns a zero hit count into a failing exit, CI's
// "the sliding-window mix actually reused month partials" gate.
//
// Each clients level runs for -duration: a warmup pass first fetches
// every URL the mix can produce (building the report once and capturing
// each response's ETag), then N clients issue the weighted mix
// back-to-back, attaching If-None-Match to the -inm fraction of
// requests so the 304 path is exercised at its production ratio. Per
// level the JSON output carries qps, p50/p90/p99 latency (via the same
// log-bucket histogram the server's /metrics uses), bytes per request,
// the 304 ratio, and the status-class breakdown. In-process runs also
// report process_allocs_per_req — the whole process's MemStats delta
// (client plumbing + server) per request; -url runs omit it, since a
// client-side alloc count says nothing about the server across a
// socket.
//
// Any 5xx or transport error fails the run (exit 1) after the JSON is
// written — CI uses that as its "no server errors under load" gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mevscope"
	"mevscope/internal/core/measure"
	"mevscope/internal/dataset"
	"mevscope/internal/obs"
	"mevscope/internal/query"
)

func main() {
	var (
		from     = flag.String("from", "", "archive directory to serve in-process")
		url      = flag.String("url", "", "base URL of a running `mevscope serve` to load instead")
		clients  = flag.String("clients", "1,64,1024", "comma-separated concurrency levels")
		duration = flag.Duration("duration", 2*time.Second, "run length per concurrency level")
		mix      = flag.String("mix", "artifact:6,report:2,artifacts:1,manifest:1", "weighted query mix (kind:weight,...); kinds: artifact, projected, report, artifacts, manifest, cache, sliding-window, block")
		inm      = flag.Float64("inm", 0.5, "fraction of requests sent with If-None-Match (conditional GETs)")
		parallel = flag.Int("parallel", 0, "in-process analysis worker-pool size (0 = all cores)")
		out      = flag.String("out", "", "JSON result file (default: stdout)")
		quiet    = flag.Bool("q", false, "suppress progress output")
		reqHits  = flag.Bool("require-partial-hits", false, "fail unless the server's partial cache recorded at least one hit")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected argument %q", flag.Arg(0)))
	}

	cfg, err := parseConfig(*from, *url, *clients, *mix, *inm, *duration, *parallel, *quiet)
	if err != nil {
		fatal(err)
	}
	result, err := run(&cfg)
	if err != nil {
		fatal(err)
	}
	raw, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		fatal(err)
	}
	raw = append(raw, '\n')
	if *out == "" {
		os.Stdout.Write(raw)
	} else if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fatal(err)
	}
	if bad := result.serverFailures(); bad > 0 {
		fatal(fmt.Errorf("%d requests failed with 5xx or transport errors under load", bad))
	}
	if *reqHits {
		if result.PartialCache == nil {
			fatal(fmt.Errorf("-require-partial-hits: the target reports no partial-cache level"))
		}
		if result.PartialCache.Hits == 0 {
			fatal(fmt.Errorf("-require-partial-hits: partial cache recorded zero hits (%d misses) — month partials were never reused", result.PartialCache.Misses))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}

// config is one parsed invocation.
type config struct {
	from, url string
	clients   []int
	duration  time.Duration
	mix       []mixEntry
	mixSpec   string
	inm       float64
	parallel  int
	quiet     bool
	// kindURLs is the per-run URL set behind each mix kind: the static
	// mixKinds rotations plus whatever the dynamic kinds resolved from
	// the target's manifest (see resolve).
	kindURLs map[string][]string
}

// mixEntry is one weighted request kind.
type mixEntry struct {
	kind   string
	weight int
}

// mixKinds maps each kind to the URLs it rotates through. Artifact
// queries spread over several artifacts so the mix touches differently
// sized bodies; everything shares one (full-window) report, so the
// server pays one analysis and the run measures serving, not the
// pipeline.
var mixKinds = map[string][]string{
	"artifact": {
		"/v1/artifact/table1?format=json",
		"/v1/artifact/fig3?format=json",
		"/v1/artifact/fig9?format=json",
		"/v1/artifact/bundles?format=csv",
	},
	// projected rotates the header-level artifacts a projection-wired
	// server builds from a column-projected restore — the cheap cold path.
	"projected": {
		"/v1/artifact/fig4?format=json",
		"/v1/artifact/fig5?format=json",
		"/v1/artifact/concentration?format=json",
	},
	"report":    {"/v1/report?format=text"},
	"artifacts": {"/v1/artifacts"},
	"manifest":  {"/v1/manifest"},
	"cache":     {"/v1/cache"},
}

// dynamicKinds name the mix kinds whose URL sets depend on the target's
// archive and are resolved from /v1/manifest at run start.
var dynamicKinds = map[string]bool{
	"sliding-window": true,
	"block":          true,
}

// parseConfig validates the flag combination.
func parseConfig(from, url, clients, mixSpec string, inm float64, duration time.Duration, parallel int, quiet bool) (config, error) {
	if (from == "") == (url == "") {
		return config{}, fmt.Errorf("need exactly one of -from DIR (in-process) or -url URL (remote)")
	}
	levels, err := parseClients(clients)
	if err != nil {
		return config{}, err
	}
	mix, err := parseMix(mixSpec)
	if err != nil {
		return config{}, err
	}
	if inm < 0 || inm > 1 {
		return config{}, fmt.Errorf("-inm must be in [0, 1] (got %g)", inm)
	}
	if duration <= 0 {
		return config{}, fmt.Errorf("-duration must be positive (got %v)", duration)
	}
	// The static kinds are usable immediately; resolve() fills in the
	// dynamic ones once a target exists to ask for the manifest.
	kindURLs := make(map[string][]string, len(mix))
	for _, e := range mix {
		if !dynamicKinds[e.kind] {
			kindURLs[e.kind] = mixKinds[e.kind]
		}
	}
	return config{
		from: from, url: strings.TrimRight(url, "/"), clients: levels,
		duration: duration, mix: mix, mixSpec: mixSpec, inm: inm,
		parallel: parallel, quiet: quiet, kindURLs: kindURLs,
	}, nil
}

// parseClients parses the comma-separated concurrency levels.
func parseClients(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		n, err := strconv.Atoi(p)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad client count %q in -clients", p)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-clients names no levels")
	}
	return out, nil
}

// parseMix parses "kind:weight,..." into weighted entries.
func parseMix(s string) ([]mixEntry, error) {
	var out []mixEntry
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		kind, weightStr, ok := strings.Cut(p, ":")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want kind:weight)", p)
		}
		if _, known := mixKinds[kind]; !known && !dynamicKinds[kind] {
			kinds := make([]string, 0, len(mixKinds)+len(dynamicKinds))
			for k := range mixKinds {
				kinds = append(kinds, k)
			}
			for k := range dynamicKinds {
				kinds = append(kinds, k)
			}
			sort.Strings(kinds)
			return nil, fmt.Errorf("unknown mix kind %q (valid: %s)", kind, strings.Join(kinds, ", "))
		}
		w, err := strconv.Atoi(weightStr)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad weight in mix entry %q", p)
		}
		out = append(out, mixEntry{kind, w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-mix names no queries")
	}
	return out, nil
}

// resolve materializes the mix's URL sets, consulting the target's
// manifest for the dynamic kinds: sliding-window becomes overlapping
// month-range report windows stepping one month at a time (window width
// one month short of the archive when the archive is small, capped at
// six — so even a four-month test archive overlaps), and block becomes
// sixteen point lookups spread across the archived block range.
func (c *config) resolve(tgt target) error {
	c.kindURLs = make(map[string][]string, len(c.mix))
	needManifest := false
	for _, e := range c.mix {
		if dynamicKinds[e.kind] {
			needManifest = true
		} else {
			c.kindURLs[e.kind] = mixKinds[e.kind]
		}
	}
	if !needManifest {
		return nil
	}
	raw, err := tgt.get("/v1/manifest")
	if err != nil {
		return fmt.Errorf("resolve mix: %w", err)
	}
	var man struct {
		Segments []struct {
			Label      string `json:"label"`
			FirstBlock uint64 `json:"first_block"`
			LastBlock  uint64 `json:"last_block"`
		} `json:"segments"`
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		return fmt.Errorf("resolve mix: decode manifest: %w", err)
	}
	if len(man.Segments) == 0 {
		return fmt.Errorf("resolve mix: the manifest names no segments")
	}
	for _, e := range c.mix {
		switch e.kind {
		case "sliding-window":
			n := len(man.Segments)
			win := n - 1
			if win > 6 {
				win = 6
			}
			if win < 1 {
				win = 1
			}
			var urls []string
			for i := 0; i+win <= n; i++ {
				urls = append(urls, fmt.Sprintf("/v1/report?format=text&months=%s..%s",
					man.Segments[i].Label, man.Segments[i+win-1].Label))
			}
			c.kindURLs[e.kind] = urls
		case "block":
			first := man.Segments[0].FirstBlock
			last := man.Segments[len(man.Segments)-1].LastBlock
			const points = 16
			var urls []string
			for i := 0; i < points; i++ {
				n := first + (last-first)*uint64(i)/(points-1)
				urls = append(urls, fmt.Sprintf("/v1/block?number=%d", n))
			}
			c.kindURLs[e.kind] = urls
		}
	}
	return nil
}

// urls returns every distinct URL the mix can produce (the warmup set).
func (c config) urls() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range c.mix {
		for _, u := range c.kindURLs[e.kind] {
			if !seen[u] {
				seen[u] = true
				out = append(out, u)
			}
		}
	}
	return out
}

// pick selects a request URL from the weighted mix.
func (c config) pick(rng *rand.Rand) string {
	total := 0
	for _, e := range c.mix {
		total += e.weight
	}
	n := rng.Intn(total)
	for _, e := range c.mix {
		if n < e.weight {
			urls := c.kindURLs[e.kind]
			return urls[rng.Intn(len(urls))]
		}
		n -= e.weight
	}
	return c.kindURLs[c.mix[0].kind][0]
}

// target issues one request and reports what came back.
type target interface {
	do(path, ifNoneMatch string) (status int, etag string, bytes int64, err error)
	// get fetches one path's body — the out-of-band channel for the
	// manifest (mix resolution) and the cache counters (reporting).
	get(path string) ([]byte, error)
}

// inprocTarget drives a query.Server directly — no sockets, no client
// allocations beyond the request plumbing, so allocs/request reflect
// the server.
type inprocTarget struct{ srv *query.Server }

// nullWriter is the in-process ResponseWriter: counts body bytes,
// captures status and headers, writes nothing.
type nullWriter struct {
	h      http.Header
	status int
	n      int64
}

func (w *nullWriter) Header() http.Header { return w.h }
func (w *nullWriter) WriteHeader(c int)   { w.status = c }
func (w *nullWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	w.n += int64(len(p))
	return len(p), nil
}

func (t *inprocTarget) do(path, inm string) (int, string, int64, error) {
	req, err := http.NewRequest(http.MethodGet, "http://loadgen"+path, nil)
	if err != nil {
		return 0, "", 0, err
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	w := &nullWriter{h: make(http.Header), status: http.StatusOK}
	t.srv.ServeHTTP(w, req)
	return w.status, w.h.Get("ETag"), w.n, nil
}

// bodyWriter is the in-process ResponseWriter that keeps the body —
// only the out-of-band get path uses it, never the hot loop.
type bodyWriter struct {
	h      http.Header
	status int
	buf    bytes.Buffer
}

func (w *bodyWriter) Header() http.Header { return w.h }
func (w *bodyWriter) WriteHeader(c int)   { w.status = c }
func (w *bodyWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.buf.Write(p)
}

func (t *inprocTarget) get(path string) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, "http://loadgen"+path, nil)
	if err != nil {
		return nil, err
	}
	w := &bodyWriter{h: make(http.Header), status: http.StatusOK}
	t.srv.ServeHTTP(w, req)
	if w.status != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d: %s", path, w.status, w.buf.String())
	}
	return w.buf.Bytes(), nil
}

// remoteTarget drives a running server over HTTP.
type remoteTarget struct {
	base   string
	client *http.Client
}

func (t *remoteTarget) do(path, inm string) (int, string, int64, error) {
	req, err := http.NewRequest(http.MethodGet, t.base+path, nil)
	if err != nil {
		return 0, "", 0, err
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return 0, "", 0, err
	}
	n, err := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("ETag"), n, err
}

func (t *remoteTarget) get(path string) ([]byte, error) {
	resp, err := t.client.Get(t.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d: %s", path, resp.StatusCode, raw)
	}
	return raw, nil
}

// Level is one concurrency level's results.
type Level struct {
	Clients     int     `json:"clients"`
	Requests    int64   `json:"requests"`
	DurationSec float64 `json:"duration_sec"`
	QPS         float64 `json:"qps"`
	P50Ms       float64 `json:"p50_ms"`
	P90Ms       float64 `json:"p90_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MeanMs      float64 `json:"mean_ms"`
	// ProcessAllocsPerReq is the process-wide allocation delta per
	// request, reported only for in-process (-from) runs where the
	// server runs inside this process; in -url mode the delta would
	// count just the client and is omitted.
	ProcessAllocsPerReq float64          `json:"process_allocs_per_req,omitempty"`
	BytesPerReq         float64          `json:"bytes_per_req"`
	NotModified         int64            `json:"not_modified"`
	NotModifiedRatio    float64          `json:"not_modified_ratio"`
	Status              map[string]int64 `json:"status"`
	Errors              int64            `json:"errors"`
}

// PartialCacheSummary is the server's month-partial cache tally over
// the whole run (warmup included — the sliding-window mix does most of
// its partial reuse while the warmup walks the window set, after which
// the report LRU absorbs repeats).
type PartialCacheSummary struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
}

// Output is the BENCH_load.json shape.
type Output struct {
	Target      string  `json:"target"`
	Mix         string  `json:"mix"`
	INMFraction float64 `json:"if_none_match_fraction"`
	Levels      []Level `json:"levels"`
	// PartialCache is present only when the target serves a
	// month-partial cache level (/v1/cache reports it).
	PartialCache *PartialCacheSummary `json:"partial_cache,omitempty"`
}

// serverFailures counts what should fail CI: 5xx responses and
// transport errors.
func (o *Output) serverFailures() int64 {
	var n int64
	for _, l := range o.Levels {
		n += l.Status["5xx"] + l.Errors
	}
	return n
}

// run executes the full sweep: build the target, resolve the mix
// against it, warm it, then one timed run per concurrency level.
func run(cfg *config) (*Output, error) {
	var tgt target
	name := cfg.url
	if cfg.from != "" {
		srv, err := query.New(query.Config{
			Archive: cfg.from,
			Workers: cfg.parallel,
			Analyze: func(ds *dataset.Dataset, workers int, sp *obs.Span) (*measure.Report, error) {
				st, err := mevscope.AnalyzeDatasetTraced(ds, workers, sp)
				if err != nil {
					return nil, err
				}
				return st.Report, nil
			},
			AnalyzeProjection: mevscope.AnalyzeDatasetProjection,
			AnalyzePartial:    mevscope.AnalyzeDatasetPartial,
		})
		if err != nil {
			return nil, err
		}
		tgt = &inprocTarget{srv: srv}
		name = "in-process:" + cfg.from
	} else {
		tgt = &remoteTarget{base: cfg.url, client: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        4096,
				MaxIdleConnsPerHost: 4096,
			},
		}}
	}

	if err := cfg.resolve(tgt); err != nil {
		return nil, err
	}

	// Warmup: one GET per distinct URL builds the report once and
	// captures each representation's validator for the conditional-GET
	// share of the run.
	etags := map[string]string{}
	for _, u := range cfg.urls() {
		status, etag, _, err := tgt.do(u, "")
		if err != nil {
			return nil, fmt.Errorf("warmup %s: %w", u, err)
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("warmup %s: status %d", u, status)
		}
		if etag != "" {
			etags[u] = etag
		}
	}

	out := &Output{Target: name, Mix: cfg.mixSpec, INMFraction: cfg.inm}
	for _, n := range cfg.clients {
		if !cfg.quiet {
			fmt.Fprintf(os.Stderr, "loadgen: %d clients for %v...\n", n, cfg.duration)
		}
		lvl := runLevel(*cfg, tgt, etags, n)
		if !cfg.quiet {
			fmt.Fprintf(os.Stderr, "loadgen: %d clients: %.0f qps, p50 %.2fms, p99 %.2fms, 304 ratio %.2f\n",
				n, lvl.QPS, lvl.P50Ms, lvl.P99Ms, lvl.NotModifiedRatio)
		}
		out.Levels = append(out.Levels, lvl)
	}
	out.PartialCache = partialCacheSummary(tgt)
	return out, nil
}

// partialCacheSummary reads the server's cumulative partial-cache
// counters off /v1/cache; nil when the endpoint is unreachable or the
// server has no partial level configured.
func partialCacheSummary(tgt target) *PartialCacheSummary {
	raw, err := tgt.get("/v1/cache")
	if err != nil {
		return nil
	}
	var view struct {
		Partials *query.PartialCacheStats `json:"partials"`
	}
	if err := json.Unmarshal(raw, &view); err != nil || view.Partials == nil {
		return nil
	}
	s := &PartialCacheSummary{Hits: view.Partials.Hits, Misses: view.Partials.Misses}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRatio = float64(s.Hits) / float64(total)
	}
	return s
}

// runLevel hammers the target with n concurrent clients for the
// configured duration.
func runLevel(cfg config, tgt target, etags map[string]string, n int) Level {
	var (
		hist     query.Histogram
		requests atomic.Int64
		bytes    atomic.Int64
		notMod   atomic.Int64
		errors   atomic.Int64
		classes  [5]atomic.Int64
	)
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	deadline := start.Add(cfg.duration)
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Per-client deterministic stream: the mix and the
			// conditional-GET schedule replay identically run to run.
			rng := rand.New(rand.NewSource(int64(id) + 1))
			for time.Now().Before(deadline) {
				u := cfg.pick(rng)
				inm := ""
				if etag, ok := etags[u]; ok && rng.Float64() < cfg.inm {
					inm = etag
				}
				t0 := time.Now()
				status, _, nbytes, err := tgt.do(u, inm)
				hist.Observe(time.Since(t0))
				requests.Add(1)
				bytes.Add(nbytes)
				if err != nil {
					errors.Add(1)
					continue
				}
				if cls := status/100 - 1; cls >= 0 && cls < len(classes) {
					classes[cls].Add(1)
				}
				if status == http.StatusNotModified {
					notMod.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	total := requests.Load()
	lvl := Level{
		Clients:     n,
		Requests:    total,
		DurationSec: elapsed.Seconds(),
		P50Ms:       ms(hist.Quantile(0.50)),
		P90Ms:       ms(hist.Quantile(0.90)),
		P99Ms:       ms(hist.Quantile(0.99)),
		MeanMs:      ms(hist.Mean()),
		NotModified: notMod.Load(),
		Status:      map[string]int64{},
		Errors:      errors.Load(),
	}
	if elapsed > 0 {
		lvl.QPS = float64(total) / elapsed.Seconds()
	}
	if total > 0 {
		if _, inproc := tgt.(*inprocTarget); inproc {
			lvl.ProcessAllocsPerReq = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(total)
		}
		lvl.BytesPerReq = float64(bytes.Load()) / float64(total)
		lvl.NotModifiedRatio = float64(notMod.Load()) / float64(total)
	}
	for c := range classes {
		if v := classes[c].Load(); v > 0 {
			lvl.Status[fmt.Sprintf("%dxx", c+1)] = v
		}
	}
	return lvl
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
