// Command loadgen replays a configurable mix of mevscope serve queries
// at N concurrent clients and reports the serving tier's throughput and
// latency distribution — the measurement surface behind CI's
// BENCH_load.json artifact. It drives either an in-process query.Server
// over an archive (-from, no sockets, so the process's allocs/request
// reflect the server) or a remote `mevscope serve` instance (-url).
//
// Usage:
//
//	loadgen -from DIR [-clients 1,64,1024] [-duration 2s]
//	        [-mix artifact:6,report:2,artifacts:1,manifest:1] [-inm 0.5]
//	        [-parallel W] [-out BENCH_load.json]
//	loadgen -url http://127.0.0.1:8571 [...]
//
// Each clients level runs for -duration: a warmup pass first fetches
// every URL the mix can produce (building the report once and capturing
// each response's ETag), then N clients issue the weighted mix
// back-to-back, attaching If-None-Match to the -inm fraction of
// requests so the 304 path is exercised at its production ratio. Per
// level the JSON output carries qps, p50/p90/p99 latency (via the same
// log-bucket histogram the server's /metrics uses), bytes per request,
// the 304 ratio, and the status-class breakdown. In-process runs also
// report process_allocs_per_req — the whole process's MemStats delta
// (client plumbing + server) per request; -url runs omit it, since a
// client-side alloc count says nothing about the server across a
// socket.
//
// Any 5xx or transport error fails the run (exit 1) after the JSON is
// written — CI uses that as its "no server errors under load" gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mevscope"
	"mevscope/internal/core/measure"
	"mevscope/internal/dataset"
	"mevscope/internal/obs"
	"mevscope/internal/query"
)

func main() {
	var (
		from     = flag.String("from", "", "archive directory to serve in-process")
		url      = flag.String("url", "", "base URL of a running `mevscope serve` to load instead")
		clients  = flag.String("clients", "1,64,1024", "comma-separated concurrency levels")
		duration = flag.Duration("duration", 2*time.Second, "run length per concurrency level")
		mix      = flag.String("mix", "artifact:6,report:2,artifacts:1,manifest:1", "weighted query mix (kind:weight,...); kinds: artifact, report, artifacts, manifest, cache")
		inm      = flag.Float64("inm", 0.5, "fraction of requests sent with If-None-Match (conditional GETs)")
		parallel = flag.Int("parallel", 0, "in-process analysis worker-pool size (0 = all cores)")
		out      = flag.String("out", "", "JSON result file (default: stdout)")
		quiet    = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected argument %q", flag.Arg(0)))
	}

	cfg, err := parseConfig(*from, *url, *clients, *mix, *inm, *duration, *parallel, *quiet)
	if err != nil {
		fatal(err)
	}
	result, err := run(cfg)
	if err != nil {
		fatal(err)
	}
	raw, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		fatal(err)
	}
	raw = append(raw, '\n')
	if *out == "" {
		os.Stdout.Write(raw)
	} else if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fatal(err)
	}
	if bad := result.serverFailures(); bad > 0 {
		fatal(fmt.Errorf("%d requests failed with 5xx or transport errors under load", bad))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}

// config is one parsed invocation.
type config struct {
	from, url string
	clients   []int
	duration  time.Duration
	mix       []mixEntry
	mixSpec   string
	inm       float64
	parallel  int
	quiet     bool
}

// mixEntry is one weighted request kind.
type mixEntry struct {
	kind   string
	weight int
}

// mixKinds maps each kind to the URLs it rotates through. Artifact
// queries spread over several artifacts so the mix touches differently
// sized bodies; everything shares one (full-window) report, so the
// server pays one analysis and the run measures serving, not the
// pipeline.
var mixKinds = map[string][]string{
	"artifact": {
		"/v1/artifact/table1?format=json",
		"/v1/artifact/fig3?format=json",
		"/v1/artifact/fig9?format=json",
		"/v1/artifact/bundles?format=csv",
	},
	"report":    {"/v1/report?format=text"},
	"artifacts": {"/v1/artifacts"},
	"manifest":  {"/v1/manifest"},
	"cache":     {"/v1/cache"},
}

// parseConfig validates the flag combination.
func parseConfig(from, url, clients, mixSpec string, inm float64, duration time.Duration, parallel int, quiet bool) (config, error) {
	if (from == "") == (url == "") {
		return config{}, fmt.Errorf("need exactly one of -from DIR (in-process) or -url URL (remote)")
	}
	levels, err := parseClients(clients)
	if err != nil {
		return config{}, err
	}
	mix, err := parseMix(mixSpec)
	if err != nil {
		return config{}, err
	}
	if inm < 0 || inm > 1 {
		return config{}, fmt.Errorf("-inm must be in [0, 1] (got %g)", inm)
	}
	if duration <= 0 {
		return config{}, fmt.Errorf("-duration must be positive (got %v)", duration)
	}
	return config{
		from: from, url: strings.TrimRight(url, "/"), clients: levels,
		duration: duration, mix: mix, mixSpec: mixSpec, inm: inm,
		parallel: parallel, quiet: quiet,
	}, nil
}

// parseClients parses the comma-separated concurrency levels.
func parseClients(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		n, err := strconv.Atoi(p)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad client count %q in -clients", p)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-clients names no levels")
	}
	return out, nil
}

// parseMix parses "kind:weight,..." into weighted entries.
func parseMix(s string) ([]mixEntry, error) {
	var out []mixEntry
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		kind, weightStr, ok := strings.Cut(p, ":")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want kind:weight)", p)
		}
		if _, known := mixKinds[kind]; !known {
			kinds := make([]string, 0, len(mixKinds))
			for k := range mixKinds {
				kinds = append(kinds, k)
			}
			return nil, fmt.Errorf("unknown mix kind %q (valid: %s)", kind, strings.Join(kinds, ", "))
		}
		w, err := strconv.Atoi(weightStr)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad weight in mix entry %q", p)
		}
		out = append(out, mixEntry{kind, w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-mix names no queries")
	}
	return out, nil
}

// urls returns every distinct URL the mix can produce (the warmup set).
func (c config) urls() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range c.mix {
		for _, u := range mixKinds[e.kind] {
			if !seen[u] {
				seen[u] = true
				out = append(out, u)
			}
		}
	}
	return out
}

// pick selects a request URL from the weighted mix.
func (c config) pick(rng *rand.Rand) string {
	total := 0
	for _, e := range c.mix {
		total += e.weight
	}
	n := rng.Intn(total)
	for _, e := range c.mix {
		if n < e.weight {
			urls := mixKinds[e.kind]
			return urls[rng.Intn(len(urls))]
		}
		n -= e.weight
	}
	return mixKinds[c.mix[0].kind][0]
}

// target issues one request and reports what came back.
type target interface {
	do(path, ifNoneMatch string) (status int, etag string, bytes int64, err error)
}

// inprocTarget drives a query.Server directly — no sockets, no client
// allocations beyond the request plumbing, so allocs/request reflect
// the server.
type inprocTarget struct{ srv *query.Server }

// nullWriter is the in-process ResponseWriter: counts body bytes,
// captures status and headers, writes nothing.
type nullWriter struct {
	h      http.Header
	status int
	n      int64
}

func (w *nullWriter) Header() http.Header { return w.h }
func (w *nullWriter) WriteHeader(c int)   { w.status = c }
func (w *nullWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	w.n += int64(len(p))
	return len(p), nil
}

func (t *inprocTarget) do(path, inm string) (int, string, int64, error) {
	req, err := http.NewRequest(http.MethodGet, "http://loadgen"+path, nil)
	if err != nil {
		return 0, "", 0, err
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	w := &nullWriter{h: make(http.Header), status: http.StatusOK}
	t.srv.ServeHTTP(w, req)
	return w.status, w.h.Get("ETag"), w.n, nil
}

// remoteTarget drives a running server over HTTP.
type remoteTarget struct {
	base   string
	client *http.Client
}

func (t *remoteTarget) do(path, inm string) (int, string, int64, error) {
	req, err := http.NewRequest(http.MethodGet, t.base+path, nil)
	if err != nil {
		return 0, "", 0, err
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return 0, "", 0, err
	}
	n, err := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("ETag"), n, err
}

// Level is one concurrency level's results.
type Level struct {
	Clients     int     `json:"clients"`
	Requests    int64   `json:"requests"`
	DurationSec float64 `json:"duration_sec"`
	QPS         float64 `json:"qps"`
	P50Ms       float64 `json:"p50_ms"`
	P90Ms       float64 `json:"p90_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MeanMs      float64 `json:"mean_ms"`
	// ProcessAllocsPerReq is the process-wide allocation delta per
	// request, reported only for in-process (-from) runs where the
	// server runs inside this process; in -url mode the delta would
	// count just the client and is omitted.
	ProcessAllocsPerReq float64          `json:"process_allocs_per_req,omitempty"`
	BytesPerReq         float64          `json:"bytes_per_req"`
	NotModified         int64            `json:"not_modified"`
	NotModifiedRatio    float64          `json:"not_modified_ratio"`
	Status              map[string]int64 `json:"status"`
	Errors              int64            `json:"errors"`
}

// Output is the BENCH_load.json shape.
type Output struct {
	Target      string  `json:"target"`
	Mix         string  `json:"mix"`
	INMFraction float64 `json:"if_none_match_fraction"`
	Levels      []Level `json:"levels"`
}

// serverFailures counts what should fail CI: 5xx responses and
// transport errors.
func (o *Output) serverFailures() int64 {
	var n int64
	for _, l := range o.Levels {
		n += l.Status["5xx"] + l.Errors
	}
	return n
}

// run executes the full sweep: build the target, warm it, then one
// timed run per concurrency level.
func run(cfg config) (*Output, error) {
	var tgt target
	name := cfg.url
	if cfg.from != "" {
		srv, err := query.New(query.Config{
			Archive: cfg.from,
			Workers: cfg.parallel,
			Analyze: func(ds *dataset.Dataset, workers int, sp *obs.Span) (*measure.Report, error) {
				st, err := mevscope.AnalyzeDatasetTraced(ds, workers, sp)
				if err != nil {
					return nil, err
				}
				return st.Report, nil
			},
		})
		if err != nil {
			return nil, err
		}
		tgt = &inprocTarget{srv: srv}
		name = "in-process:" + cfg.from
	} else {
		tgt = &remoteTarget{base: cfg.url, client: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        4096,
				MaxIdleConnsPerHost: 4096,
			},
		}}
	}

	// Warmup: one GET per distinct URL builds the report once and
	// captures each representation's validator for the conditional-GET
	// share of the run.
	etags := map[string]string{}
	for _, u := range cfg.urls() {
		status, etag, _, err := tgt.do(u, "")
		if err != nil {
			return nil, fmt.Errorf("warmup %s: %w", u, err)
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("warmup %s: status %d", u, status)
		}
		if etag != "" {
			etags[u] = etag
		}
	}

	out := &Output{Target: name, Mix: cfg.mixSpec, INMFraction: cfg.inm}
	for _, n := range cfg.clients {
		if !cfg.quiet {
			fmt.Fprintf(os.Stderr, "loadgen: %d clients for %v...\n", n, cfg.duration)
		}
		lvl := runLevel(cfg, tgt, etags, n)
		if !cfg.quiet {
			fmt.Fprintf(os.Stderr, "loadgen: %d clients: %.0f qps, p50 %.2fms, p99 %.2fms, 304 ratio %.2f\n",
				n, lvl.QPS, lvl.P50Ms, lvl.P99Ms, lvl.NotModifiedRatio)
		}
		out.Levels = append(out.Levels, lvl)
	}
	return out, nil
}

// runLevel hammers the target with n concurrent clients for the
// configured duration.
func runLevel(cfg config, tgt target, etags map[string]string, n int) Level {
	var (
		hist     query.Histogram
		requests atomic.Int64
		bytes    atomic.Int64
		notMod   atomic.Int64
		errors   atomic.Int64
		classes  [5]atomic.Int64
	)
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	deadline := start.Add(cfg.duration)
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Per-client deterministic stream: the mix and the
			// conditional-GET schedule replay identically run to run.
			rng := rand.New(rand.NewSource(int64(id) + 1))
			for time.Now().Before(deadline) {
				u := cfg.pick(rng)
				inm := ""
				if etag, ok := etags[u]; ok && rng.Float64() < cfg.inm {
					inm = etag
				}
				t0 := time.Now()
				status, _, nbytes, err := tgt.do(u, inm)
				hist.Observe(time.Since(t0))
				requests.Add(1)
				bytes.Add(nbytes)
				if err != nil {
					errors.Add(1)
					continue
				}
				if cls := status/100 - 1; cls >= 0 && cls < len(classes) {
					classes[cls].Add(1)
				}
				if status == http.StatusNotModified {
					notMod.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	total := requests.Load()
	lvl := Level{
		Clients:     n,
		Requests:    total,
		DurationSec: elapsed.Seconds(),
		P50Ms:       ms(hist.Quantile(0.50)),
		P90Ms:       ms(hist.Quantile(0.90)),
		P99Ms:       ms(hist.Quantile(0.99)),
		MeanMs:      ms(hist.Mean()),
		NotModified: notMod.Load(),
		Status:      map[string]int64{},
		Errors:      errors.Load(),
	}
	if elapsed > 0 {
		lvl.QPS = float64(total) / elapsed.Seconds()
	}
	if total > 0 {
		if _, inproc := tgt.(*inprocTarget); inproc {
			lvl.ProcessAllocsPerReq = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(total)
		}
		lvl.BytesPerReq = float64(bytes.Load()) / float64(total)
		lvl.NotModifiedRatio = float64(notMod.Load()) / float64(total)
	}
	for c := range classes {
		if v := classes[c].Load(); v > 0 {
			lvl.Status[fmt.Sprintf("%dxx", c+1)] = v
		}
	}
	return lvl
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
