package main

import (
	"strings"
	"testing"
)

// TestParseArgsRejectsBadInput: stray positionals and invalid flag
// combinations must error (main exits 2) before any simulation work.
func TestParseArgsRejectsBadInput(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"extra"}, "unexpected argument"},
		{[]string{"-seed", "1", "extra"}, "unexpected argument"},
		{[]string{"-bpm", "0"}, "-bpm must be positive"},
		{[]string{"-kind", "sandwhich"}, "unknown -kind"},
		{[]string{"-top", "-3"}, "-top must be"},
		{[]string{"-from", "10000100", "-to", "10000050"}, "below -from"},
		{[]string{"-nope"}, "flag provided but not defined"},
	}
	for _, c := range cases {
		_, err := parseArgs(c.args)
		if err == nil {
			t.Errorf("args %v accepted; want error containing %q", c.args, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("args %v: error %q does not contain %q", c.args, err, c.want)
		}
	}
}

// TestParseArgsAcceptsValidInput: the documented invocations parse and
// land in the options struct.
func TestParseArgsAcceptsValidInput(t *testing.T) {
	o, err := parseArgs([]string{"-seed", "7", "-bpm", "100", "-from", "10000010", "-to", "10000020", "-kind", "arbitrage", "-top", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if o.seed != 7 || o.bpm != 100 || o.from != 10000010 || o.to != 10000020 || o.kind != "arbitrage" || o.topN != 5 {
		t.Errorf("options = %+v", o)
	}
	if _, err := parseArgs(nil); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
	// -to below -from is fine when either is 0 (auto start/head).
	if _, err := parseArgs([]string{"-from", "10000100"}); err != nil {
		t.Errorf("-from alone rejected: %v", err)
	}
}
