// Command mevinspect is the repository's analogue of Flashbots'
// MEV-inspect (§2.5, Goal 1 "Illuminate the Dark Forest"): it inspects a
// block range of the simulated chain and prints every detected MEV
// extraction with its transactions, parties and economics — per block,
// the way mev-inspect-py reports mainnet blocks.
//
// Usage:
//
//	mevinspect [-seed N] [-bpm BLOCKS] [-from B] [-to B] [-kind sandwich|arbitrage|liquidation]
//
// Block numbers are absolute heights (the chain starts at 10,000,000,
// like the paper's study window).
package main

import (
	"flag"
	"fmt"
	"os"

	"mevscope"
	"mevscope/internal/core/detect"
	"mevscope/internal/core/profit"
)

func main() {
	var (
		seed = flag.Int64("seed", 42, "simulation seed")
		bpm  = flag.Uint64("bpm", 200, "blocks per simulated month")
		from = flag.Uint64("from", 0, "first block to inspect (0 = start of chain)")
		to   = flag.Uint64("to", 0, "last block to inspect (0 = chain head)")
		kind = flag.String("kind", "", "restrict to one MEV kind")
		topN = flag.Int("top", 0, "only print the N most profitable extractions (0 = all)")
	)
	flag.Parse()

	study, err := mevscope.Run(mevscope.Options{Seed: *seed, BlocksPerMonth: *bpm})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mevinspect:", err)
		os.Exit(1)
	}
	c := study.Sim.Chain
	lo, hi := *from, *to
	if lo == 0 {
		lo = c.Timeline.StartBlock
	}
	if hi == 0 {
		hi = c.Head().Header.Number
	}

	res := detect.Scan(c, study.Sim.World.WETH, lo, hi)
	comp := profit.New(c, study.Sim.Prices, study.Sim.World.WETH, study.Sim.Relay.FlashbotsTxSet())
	records := comp.ResolveAll(res)

	// Sort by net descending for the -top view.
	for i := 1; i < len(records); i++ {
		for j := i; j > 0 && records[j].NetETH > records[j-1].NetETH; j-- {
			records[j], records[j-1] = records[j-1], records[j]
		}
	}
	printed := 0
	for _, r := range records {
		if *kind != "" && r.Kind.String() != *kind {
			continue
		}
		if *topN > 0 && printed >= *topN {
			break
		}
		printed++
		channel := "public"
		if r.ViaFlashbots {
			channel = "flashbots/" + r.BundleType.String()
		}
		flash := ""
		if r.ViaFlashLoan {
			flash = " +flash-loan"
		}
		fmt.Printf("block %d  %-11s %-22s extractor=%s net=%+.4f ETH (gain %.4f, cost %.4f)%s\n",
			r.Block, r.Kind, channel, r.Extractor.Short(), r.NetETH.Ether(), r.GainETH.Ether(), r.CostETH.Ether(), flash)
		for _, h := range r.Txs {
			fmt.Printf("    tx %s\n", h)
		}
		if !r.VictimTx.IsZero() {
			fmt.Printf("    victim %s\n", r.VictimTx)
		}
	}
	fmt.Fprintf(os.Stderr, "mevinspect: %d extractions in blocks %d..%d (%d sandwiches, %d arbitrages, %d liquidations)\n",
		printed, lo, hi, len(res.Sandwiches), len(res.Arbitrages), len(res.Liquidations))
}
