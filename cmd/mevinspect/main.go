// Command mevinspect is the repository's analogue of Flashbots'
// MEV-inspect (§2.5, Goal 1 "Illuminate the Dark Forest"): it inspects a
// block range of the simulated chain and prints every detected MEV
// extraction with its transactions, parties and economics — per block,
// the way mev-inspect-py reports mainnet blocks.
//
// Usage:
//
//	mevinspect [-seed N] [-bpm BLOCKS] [-from B] [-to B] [-kind sandwich|arbitrage|liquidation]
//
// Block numbers are absolute heights (the chain starts at 10,000,000,
// like the paper's study window). Stray positional arguments and invalid
// flag combinations (an inverted -from/-to range, an unknown -kind, a
// negative -top, a zero -bpm) are rejected up front with exit status 2.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"mevscope"
	"mevscope/internal/core/detect"
	"mevscope/internal/core/profit"
)

// options is the validated flag set of one invocation.
type options struct {
	seed     int64
	bpm      uint64
	from, to uint64
	kind     string
	topN     int
}

// parseArgs parses and validates the command line; every reportable
// mistake comes back as an error so main can exit 2 before any work.
func parseArgs(args []string) (options, error) {
	fs := flag.NewFlagSet("mevinspect", flag.ContinueOnError)
	fs.SetOutput(io.Discard) // main reports the returned error once
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mevinspect [flags]")
		fs.SetOutput(os.Stderr)
		fs.PrintDefaults()
		fs.SetOutput(io.Discard)
	}
	var o options
	fs.Int64Var(&o.seed, "seed", 42, "simulation seed")
	fs.Uint64Var(&o.bpm, "bpm", 200, "blocks per simulated month")
	fs.Uint64Var(&o.from, "from", 0, "first block to inspect (0 = start of chain)")
	fs.Uint64Var(&o.to, "to", 0, "last block to inspect (0 = chain head)")
	fs.StringVar(&o.kind, "kind", "", "restrict to one MEV kind (sandwich, arbitrage, liquidation)")
	fs.IntVar(&o.topN, "top", 0, "only print the N most profitable extractions (0 = all)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() > 0 {
		return o, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if o.bpm == 0 {
		return o, fmt.Errorf("-bpm must be positive")
	}
	switch o.kind {
	case "", "sandwich", "arbitrage", "liquidation":
	default:
		return o, fmt.Errorf("unknown -kind %q (valid: sandwich, arbitrage, liquidation)", o.kind)
	}
	if o.topN < 0 {
		return o, fmt.Errorf("-top must be ≥ 0 (got %d)", o.topN)
	}
	if o.from != 0 && o.to != 0 && o.to < o.from {
		return o, fmt.Errorf("-to %d is below -from %d", o.to, o.from)
	}
	return o, nil
}

func main() {
	o, err := parseArgs(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "mevinspect:", err)
		os.Exit(2)
	}

	study, err := mevscope.Run(mevscope.Options{Seed: o.seed, BlocksPerMonth: o.bpm})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mevinspect:", err)
		os.Exit(1)
	}
	c := study.Sim.Chain
	lo, hi := o.from, o.to
	if lo == 0 {
		lo = c.Timeline.StartBlock
	}
	if hi == 0 {
		hi = c.Head().Header.Number
	}

	res := detect.Scan(c, study.Sim.World.WETH, lo, hi)
	comp := profit.New(c, study.Sim.Prices, study.Sim.World.WETH, study.Sim.Relay.FlashbotsTxSet())
	records := comp.ResolveAll(res)

	// Sort by net descending for the -top view.
	for i := 1; i < len(records); i++ {
		for j := i; j > 0 && records[j].NetETH > records[j-1].NetETH; j-- {
			records[j], records[j-1] = records[j-1], records[j]
		}
	}
	printed := 0
	for _, r := range records {
		if o.kind != "" && r.Kind.String() != o.kind {
			continue
		}
		if o.topN > 0 && printed >= o.topN {
			break
		}
		printed++
		channel := "public"
		if r.ViaFlashbots {
			channel = "flashbots/" + r.BundleType.String()
		}
		flash := ""
		if r.ViaFlashLoan {
			flash = " +flash-loan"
		}
		fmt.Printf("block %d  %-11s %-22s extractor=%s net=%+.4f ETH (gain %.4f, cost %.4f)%s\n",
			r.Block, r.Kind, channel, r.Extractor.Short(), r.NetETH.Ether(), r.GainETH.Ether(), r.CostETH.Ether(), flash)
		for _, h := range r.Txs {
			fmt.Printf("    tx %s\n", h)
		}
		if !r.VictimTx.IsZero() {
			fmt.Printf("    victim %s\n", r.VictimTx)
		}
	}
	fmt.Fprintf(os.Stderr, "mevinspect: %d extractions in blocks %d..%d (%d sandwiches, %d arbitrages, %d liquidations)\n",
		printed, lo, hi, len(res.Sandwiches), len(res.Arbitrages), len(res.Liquidations))
}
