// Command benchjson converts `go test -bench` output into a JSON
// artifact, deriving per-block costs from the pipeline benchmarks'
// "blocks/op" metric. CI runs it after the streaming benchmark pair and
// uploads the result (BENCH_stream.json) so batch-vs-streaming ns/block
// and allocs/block are tracked across PRs.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkPipeline' -benchmem . | \
//	    go run ./cmd/benchjson -out BENCH_stream.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line, parsed.
type Result struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics holds every "value unit" pair of the line, e.g. "ns/op",
	// "B/op", "allocs/op", "blocks/op".
	Metrics map[string]float64 `json:"metrics"`
	// Derived per-block costs, present when the benchmark reported a
	// blocks/op metric.
	NsPerBlock     *float64 `json:"ns_per_block,omitempty"`
	AllocsPerBlock *float64 `json:"allocs_per_block,omitempty"`
	BytesPerBlock  *float64 `json:"bytes_per_block,omitempty"`
}

// Output is the artifact shape.
type Output struct {
	Package string   `json:"package,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func main() {
	in := flag.String("in", "", "bench output file (default: stdin)")
	out := flag.String("out", "", "JSON artifact to write (default: stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	output, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(output.Results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}
	raw, err := json.MarshalIndent(output, "", "  ")
	if err != nil {
		fatal(err)
	}
	raw = append(raw, '\n')
	if *out == "" {
		os.Stdout.Write(raw)
		return
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse reads `go test -bench` output line by line.
func parse(r io.Reader) (*Output, error) {
	out := &Output{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			out.Package = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q", line)
		}
		res := Result{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value %q in %q", fields[i], line)
			}
			res.Metrics[fields[i+1]] = v
		}
		if blocks, ok := res.Metrics["blocks/op"]; ok && blocks > 0 {
			res.NsPerBlock = derive(res.Metrics, "ns/op", blocks)
			res.AllocsPerBlock = derive(res.Metrics, "allocs/op", blocks)
			res.BytesPerBlock = derive(res.Metrics, "B/op", blocks)
		}
		out.Results = append(out.Results, res)
	}
	return out, sc.Err()
}

// derive divides a per-op metric by the per-op block count.
func derive(metrics map[string]float64, key string, blocks float64) *float64 {
	v, ok := metrics[key]
	if !ok {
		return nil
	}
	d := v / blocks
	return &d
}
