// Command mevscope runs the full reproduction study: simulate the
// 23-month window, run the measurement pipeline and print every table and
// figure of the paper — or an ensemble of runs with confidence intervals.
//
// Usage:
//
//	mevscope [-seed N] [-bpm BLOCKS] [-months M] [-section NAME]
//	         [-scenario NAME] [-seeds N,N,...] [-parallel W]
//	         [-vantages N] [-topology NAME] [-view union|quorum:K|vantage:N]
//	mevscope archive -out DIR [-format v1|v2|v3] [-live] [-seed N]
//	         [-bpm BLOCKS] [-months M] [-scenario NAME]
//	         [-vantages N] [-topology NAME]
//	mevscope archive -recompress DIR -out DIR [-format v1|v2|v3]
//	mevscope analyze -from DIR [-range 2021-03..2021-06] [-section NAME]
//	         [-view union|quorum:K|vantage:N] [-parallel W] [-csv DIR]
//	         [-trace FILE] [-progress]
//	mevscope serve -from DIR [-addr HOST:PORT] [-cache N] [-parallel W]
//	         [-metrics=false] [-pprof]
//	         [-live [-seed N] [-scenario NAME] [-bpm BLOCKS]]
//
// The archive subcommand simulates a world once and persists the
// collected dataset as a segmented on-disk archive (one directory per
// study month: blocks, observed pending transactions, Flashbots API
// records, with a checksummed manifest). -format picks the encoding
// (default v3: per-column chunks with zone maps and projection-aware
// reads; v2 is gzip-compressed block-indexed frames, v1 the legacy
// JSON-lines layout) and -live streams each month to disk as it
// completes instead of serializing everything at the end. -recompress
// rewrites an existing archive into -out under -format — the migration
// path from v1/v2 archives to v3 — instead of simulating. The analyze
// subcommand restores such an archive — any format, auto-detected —
// and reruns the measurement pipeline over it without re-simulating;
// the report is byte-identical to the original run's. -range restores
// only a month slice, reading just those segments.
// The serve subcommand exposes an archive over HTTP (internal/query):
// per-artifact queries in JSON/CSV/text with month-range slicing and
// observation-view selection (?view=union|quorum:K|vantage:N on
// multi-vantage archives), backed by an LRU of analyzed reports so
// repeated queries skip the pipeline; with -live it also simulates a
// world in the background and serves the streaming follower's snapshot
// from the same endpoints (?source=live). Request metrics — per-endpoint
// counts, status classes, bytes, p50/p99 latency, per-stage cold-build
// histograms and Go runtime gauges — are exposed at /metrics
// (Prometheus text or ?format=json) unless -metrics=false; -pprof
// additionally mounts net/http/pprof under /debug/pprof/.
//
// The study and analyze paths carry a flight recorder: -trace FILE
// records every pipeline stage (with worker-pool utilization) as a
// hierarchical span tree and writes it as Chrome trace-event JSON —
// loadable at ui.perfetto.dev — plus a per-stage wall-time summary on
// stderr; -progress prints a live stage ticker instead (or as well).
// Tracing never changes the report: output is byte-identical with it
// on or off.
//
// -vantages/-topology reshape the observation network (see internal/p2p):
// N vantages spread around a ring, ring-chords or small-world gossip
// graph, each with its own first-seen log; -view picks which combination
// of them the §6 private-transaction inference classifies against.
//
// Sections: all (default), table1, fig3, fig4, fig5, fig6, fig7, fig8,
// fig9, bundles, negatives, private.
//
// Scenarios: baseline, no-flashbots, hashpower-skew, high-private,
// post-london, single-vantage, multi-vantage-union, degraded-observer.
// With -seeds, one study runs per seed under the scenario and the merged
// report carries mean ± stddev per table cell. An unknown scenario name
// is rejected up front with the valid names listed.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"mevscope"
	"mevscope/internal/archive"
	"mevscope/internal/core/measure"
	"mevscope/internal/dataset"
	"mevscope/internal/obs"
	"mevscope/internal/p2p"
	"mevscope/internal/query"
	"mevscope/internal/scenario"
	"mevscope/internal/sim"
	"mevscope/internal/stream"
	"mevscope/internal/types"
)

func main() {
	if len(os.Args) > 1 && !strings.HasPrefix(os.Args[1], "-") {
		switch os.Args[1] {
		case "archive":
			runArchive(os.Args[2:])
		case "analyze":
			runAnalyze(os.Args[2:])
		case "serve":
			runServe(os.Args[2:])
		default:
			// A mistyped subcommand must not silently fall through to the
			// default study (flag parsing would also drop every argument
			// after the first positional one).
			fail(2, fmt.Errorf("unknown subcommand %q (valid: archive, analyze, serve, or flags for a study run)", os.Args[1]))
		}
		return
	}
	runStudy(os.Args[1:])
}

// noPositional rejects leftover positional arguments after flag parsing:
// flag.Parse stops at the first non-flag token, so anything left over
// means part of the command line was silently ignored.
func noPositional(fs *flag.FlagSet) {
	if fs.NArg() > 0 {
		fail(2, fmt.Errorf("unexpected argument %q", fs.Arg(0)))
	}
}

// fail prints an error and exits with the given code.
func fail(code int, err error) {
	fmt.Fprintln(os.Stderr, "mevscope:", err)
	os.Exit(code)
}

// checkScenario validates a -scenario value before any work runs: an
// unknown name (e.g. a typo) must not fall back to a default world.
func checkScenario(name string) error {
	_, err := scenario.MustLookup(name)
	return err
}

// checkObservation validates the observation-network flags up front so a
// typo'd topology or view is a usage error, not a failed run.
func checkObservation(vantages int, topology, view string) error {
	if vantages < 0 {
		return fmt.Errorf("-vantages must be ≥ 0 (got %d)", vantages)
	}
	if _, err := p2p.ParseTopology(topology); err != nil {
		return err
	}
	return dataset.CheckView(view)
}

// runStudy is the classic single-run / ensemble path.
func runStudy(args []string) {
	fs := flag.NewFlagSet("mevscope", flag.ExitOnError)
	var (
		seed        = fs.Int64("seed", 42, "simulation seed (runs are deterministic per seed)")
		seeds       = fs.String("seeds", "", "comma-separated seed list; enables the multi-seed ensemble")
		scen        = fs.String("scenario", "baseline", "named scenario: "+strings.Join(scenario.Names(), ", "))
		parallelism = fs.Int("parallel", 0, "worker-pool size for analysis and ensemble fan-out (0 = all cores)")
		bpm         = fs.Uint64("bpm", 600, "blocks per simulated month (mainnet ≈ 190k)")
		months      = fs.Int("months", 0, "limit the window to the first N months (0 = all remaining)")
		miners      = fs.Int("miners", 0, "miner-set size (0 = default 55)")
		vantages    = fs.Int("vantages", 0, "observation vantages spread around the gossip network (0 = scenario default)")
		topology    = fs.String("topology", "", "gossip topology: ring-chords (default), ring, small-world")
		view        = fs.String("view", "", "observation view for §6 classification: vantage:N, union, quorum:K (default: scenario's)")
		section     = fs.String("section", "all", "which artifact to print")
		csvDir      = fs.String("csv", "", "also write every artifact as CSV into this directory")
		traceFile   = fs.String("trace", "", "record the run and write Chrome trace-event JSON to this file (view at ui.perfetto.dev)")
		progress    = fs.Bool("progress", false, "print a per-stage progress ticker to stderr")
		quiet       = fs.Bool("q", false, "suppress progress output")
	)
	fs.Parse(args)
	noPositional(fs)
	if err := checkScenario(*scen); err != nil {
		fail(2, err)
	}
	if err := checkObservation(*vantages, *topology, *view); err != nil {
		fail(2, err)
	}
	rec := newTracer("study", *traceFile, *progress)

	opts := mevscope.Options{
		Seed: *seed, BlocksPerMonth: *bpm, Months: *months, NumMiners: *miners,
		Scenario: *scen, Parallelism: *parallelism,
		Vantages: *vantages, Topology: *topology, View: *view,
		Span: rec.root(),
	}
	// Resolve the full config once up front: cross-flag mistakes (a view
	// the resolved vantage count cannot satisfy) are usage errors too.
	if _, err := opts.Config(); err != nil {
		fail(2, err)
	}

	if *seeds != "" {
		runEnsemble(opts, *seeds, *parallelism, *quiet)
		rec.finish()
		return
	}

	if !*quiet {
		fmt.Fprintf(os.Stderr, "mevscope: simulating %d months at %d blocks/month (seed %d, scenario %s)...\n",
			pick(*months, types.StudyMonths), *bpm, *seed, *scen)
	}
	t0 := time.Now()
	study, err := mevscope.Run(opts)
	if err != nil {
		fail(1, err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "mevscope: %d blocks, %d MEV extractions measured in %v\n",
			study.Sim.Chain.Len(), len(study.Profits), time.Since(t0).Round(time.Millisecond))
	}
	rsp := rec.root().Child(obs.StageRender)
	writeCSV(study, *csvDir, *quiet)
	printSection(study, *section)
	rsp.End()
	rec.finish()
}

// runArchive simulates a world and persists the collected dataset as a
// segmented archive — all at once after the run, or month by month while
// the world grows with -live.
func runArchive(args []string) {
	fs := flag.NewFlagSet("mevscope archive", flag.ExitOnError)
	var (
		out        = fs.String("out", "", "archive directory to create (required)")
		format     = fs.String("format", archive.DefaultFormat.String(), "archive format: "+archive.FormatHelp())
		recompress = fs.String("recompress", "", "rewrite an existing archive DIR into -out in -format instead of simulating")
		live       = fs.Bool("live", false, "stream: rotate each month to disk as it completes instead of serializing at the end")
		seed       = fs.Int64("seed", 42, "simulation seed")
		scen       = fs.String("scenario", "baseline", "named scenario: "+strings.Join(scenario.Names(), ", "))
		bpm        = fs.Uint64("bpm", 600, "blocks per simulated month")
		months     = fs.Int("months", 0, "limit the window to the first N months (0 = all remaining)")
		miners     = fs.Int("miners", 0, "miner-set size (0 = default 55)")
		vantages   = fs.Int("vantages", 0, "observation vantages spread around the gossip network (0 = scenario default)")
		topology   = fs.String("topology", "", "gossip topology: ring-chords (default), ring, small-world")
		quiet      = fs.Bool("q", false, "suppress progress output")
	)
	fs.Parse(args)
	noPositional(fs)
	if err := checkScenario(*scen); err != nil {
		fail(2, err)
	}
	if err := checkObservation(*vantages, *topology, ""); err != nil {
		fail(2, err)
	}
	if *out == "" {
		fail(2, fmt.Errorf("archive: -out DIR is required"))
	}
	af, err := archive.ParseFormat(*format)
	if err != nil {
		fail(2, err)
	}
	if *recompress != "" {
		if *live {
			fail(2, fmt.Errorf("archive: -recompress and -live are mutually exclusive"))
		}
		t0 := time.Now()
		man, err := archive.Recompress(*recompress, *out, af)
		if err != nil {
			fail(1, err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "mevscope: recompressed %d blocks (%d segments) from %s into %s as %s in %v\n",
				man.TotalBlocks, len(man.Segments), *recompress, *out, af, time.Since(t0).Round(time.Millisecond))
		}
		return
	}
	opts := mevscope.Options{
		Seed: *seed, BlocksPerMonth: *bpm, Months: *months, NumMiners: *miners, Scenario: *scen,
		Vantages: *vantages, Topology: *topology,
	}
	cfg, err := opts.Config()
	if err != nil {
		fail(2, err)
	}
	meta := map[string]string{
		"seed":     strconv.FormatInt(*seed, 10),
		"scenario": *scen,
		"bpm":      strconv.FormatUint(*bpm, 10),
		"months":   strconv.Itoa(pick(*months, types.StudyMonths)),
	}
	if *vantages > 0 {
		meta["vantages"] = strconv.Itoa(*vantages)
	}
	if *topology != "" {
		meta["topology"] = *topology
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "mevscope: simulating %d months at %d blocks/month (seed %d, scenario %s, format %s)...\n",
			pick(*months, types.StudyMonths), *bpm, *seed, *scen, af)
	}
	t0 := time.Now()
	s, err := sim.New(cfg)
	if err != nil {
		fail(1, err)
	}
	var man *archive.Manifest
	if *live {
		man, err = archiveLive(s, *out, af, meta, *quiet)
	} else {
		if err = s.Run(); err == nil {
			man, err = archive.WriteFormat(*out, dataset.FromSim(s), meta, af)
		}
	}
	if err != nil {
		fail(1, err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "mevscope: archived %d blocks into %d segments under %s in %v\n",
			man.TotalBlocks, len(man.Segments), *out, time.Since(t0).Round(time.Millisecond))
	}
}

// archiveLive grows the world through a streaming follower and rotates
// every finished month to disk the moment it completes; the final
// archive is file-identical to the batch path's.
func archiveLive(s *sim.Sim, out string, format archive.Format, meta map[string]string, quiet bool) (*archive.Manifest, error) {
	sw, err := archive.NewStreamWriter(out, s.Chain.Timeline, s.World.WETH, format, meta)
	if err != nil {
		return nil, err
	}
	f := stream.ForSim(s, 0)
	var rotErr error
	f.OnMonthEnd = func(m types.Month, f *stream.Follower) {
		if rotErr != nil {
			return
		}
		if rotErr = sw.WriteSegment(f.MonthSegment(m)); rotErr == nil && !quiet {
			fmt.Fprintf(os.Stderr, "mevscope: month %s rotated to disk (%d segments)\n", m.Label(), sw.Segments())
		}
	}
	end := s.EndBlock()
	for s.Chain.NextNumber() <= end {
		if err := s.Step(); err != nil {
			return nil, err
		}
		if _, err := f.Sync(); err != nil {
			return nil, err
		}
		if rotErr != nil {
			return nil, rotErr
		}
	}
	return sw.Finalize(f.Dataset())
}

// runAnalyze restores an archived dataset — optionally just a month
// slice of it — and reruns the measurement pipeline over it.
func runAnalyze(args []string) {
	fs := flag.NewFlagSet("mevscope analyze", flag.ExitOnError)
	var (
		from        = fs.String("from", "", "archive directory to analyze (required)")
		months      = fs.String("range", "", "month range to restore, e.g. 2021-03..2021-06 (default: the whole archive)")
		view        = fs.String("view", "", "observation view for §6 classification: vantage:N, union, quorum:K")
		section     = fs.String("section", "all", "which artifact to print")
		parallelism = fs.Int("parallel", 0, "analysis worker-pool size (0 = all cores)")
		csvDir      = fs.String("csv", "", "also write every artifact as CSV into this directory")
		traceFile   = fs.String("trace", "", "record the run and write Chrome trace-event JSON to this file (view at ui.perfetto.dev)")
		progress    = fs.Bool("progress", false, "print a per-stage progress ticker to stderr")
		quiet       = fs.Bool("q", false, "suppress progress output")
	)
	fs.Parse(args)
	noPositional(fs)
	if *from == "" {
		fail(2, fmt.Errorf("analyze: -from DIR is required"))
	}
	if err := dataset.CheckView(*view); err != nil {
		fail(2, err)
	}
	lo, hi, err := resolveRange(*from, *months)
	if err != nil {
		fail(2, err)
	}
	rec := newTracer("analyze", *traceFile, *progress)
	t0 := time.Now()
	ds, man, err := archive.ReadRangeWith(*from, lo, hi,
		archive.ReadOptions{Workers: *parallelism, Span: rec.root()})
	if err != nil {
		fail(1, err)
	}
	vantages := len(man.Vantages)
	if vantages == 0 {
		vantages = 1
	}
	// Bounds-check against the archive's real vantage list now that the
	// manifest is loaded: a view the archive cannot satisfy is a usage
	// error naming the valid range, like a bad -range.
	if err := dataset.CheckViewFor(*view, vantages); err != nil {
		fail(2, err)
	}
	ds.View = *view
	if !*quiet {
		// Report the months actually restored, not the requested range: an
		// empty -range means the whole archive, and partially-out-of-window
		// ranges are clamped to what exists on disk.
		first := ds.Chain.Timeline.FirstMonth
		last := ds.Chain.Timeline.MonthOfBlock(ds.Chain.Head().Header.Number)
		fmt.Fprintf(os.Stderr, "mevscope: restored %d blocks (months %s..%s of %d segments, head %d) from %s\n",
			ds.Chain.Len(), first.Label(), last.Label(), len(man.Segments), man.Head, *from)
	}
	study, err := mevscope.AnalyzeDatasetTraced(ds, *parallelism, rec.root())
	if err != nil {
		fail(1, err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "mevscope: %d MEV extractions measured in %v\n",
			len(study.Profits), time.Since(t0).Round(time.Millisecond))
	}
	rsp := rec.root().Child(obs.StageRender)
	writeCSV(study, *csvDir, *quiet)
	printSection(study, *section)
	rsp.End()
	rec.finish()
}

// resolveRange parses analyze's -range and validates it against the
// archive's segment window before any data file is read, so a bad range
// is a usage error (exit 2) that names the window actually on disk. An
// empty spec selects the whole archive.
func resolveRange(dir, spec string) (types.Month, types.Month, error) {
	lo, hi, err := types.ParseMonthRange(spec)
	if err != nil {
		return 0, 0, fmt.Errorf("analyze: %w", err)
	}
	if spec == "" {
		return lo, hi, nil
	}
	man, err := archive.ReadManifest(dir)
	if err != nil {
		return 0, 0, err
	}
	first, last := man.Window()
	if hi < first || lo > last {
		return 0, 0, fmt.Errorf("analyze: -range %s selects no archived months (the archive covers %s..%s)",
			spec, first.Label(), last.Label())
	}
	return lo, hi, nil
}

// checkServe validates the serve flag combination up front: the server
// needs at least one source, and a negative cache size is a
// misconfiguration, not a degraded mode. 0 is valid and selects
// query.Config's documented default (16 entries).
func checkServe(from string, live bool, cacheSize int) error {
	if from == "" && !live {
		return fmt.Errorf("serve: need -from DIR, -live, or both")
	}
	if cacheSize < 0 {
		return fmt.Errorf("serve: -cache must be ≥ 0 (got %d; 0 selects the default 16)", cacheSize)
	}
	return nil
}

// checkServeLiveFlags rejects simulation flags that were explicitly set
// without -live: they would be silently ignored, and a user asking for
// `-scenario no-flashbots` must not be served baseline archive data.
func checkServeLiveFlags(live bool, set []string) error {
	if live || len(set) == 0 {
		return nil
	}
	return fmt.Errorf("serve: %s only apply to the -live simulation", strings.Join(set, ", "))
}

// liveOnlyFlagNames are the serve flags that configure the -live world.
var liveOnlyFlagNames = map[string]bool{"seed": true, "scenario": true, "bpm": true, "months": true}

// runServe serves artifact queries over an archived dataset — and, with
// -live, over a world simulated in the background whose streaming
// snapshot is queryable while it grows.
func runServe(args []string) {
	fs := flag.NewFlagSet("mevscope serve", flag.ExitOnError)
	var (
		from        = fs.String("from", "", "archive directory to serve")
		addr        = fs.String("addr", "127.0.0.1:8571", "listen address")
		cacheSize   = fs.Int("cache", 16, "analyzed-report LRU capacity (0 = the default 16)")
		partialMiB  = fs.Int64("partial-cache-mib", 0, "month-partial cache budget in MiB (0 = the default 256)")
		metrics     = fs.Bool("metrics", true, "expose request metrics at /metrics (Prometheus text; ?format=json)")
		pprofFlag   = fs.Bool("pprof", false, "mount net/http/pprof profiling endpoints under /debug/pprof/")
		parallelism = fs.Int("parallel", 0, "analysis worker-pool size (0 = all cores)")
		live        = fs.Bool("live", false, "simulate a world in the background and serve its streaming snapshot (?source=live)")
		seed        = fs.Int64("seed", 42, "live simulation seed")
		scen        = fs.String("scenario", "baseline", "live scenario: "+strings.Join(scenario.Names(), ", "))
		bpm         = fs.Uint64("bpm", 600, "live blocks per simulated month")
		months      = fs.Int("months", 0, "limit the live window to the first N months (0 = all)")
		quiet       = fs.Bool("q", false, "suppress progress output")
	)
	fs.Parse(args)
	noPositional(fs)
	if err := checkServe(*from, *live, *cacheSize); err != nil {
		fail(2, err)
	}
	if *partialMiB < 0 {
		fail(2, fmt.Errorf("mevscope serve: -partial-cache-mib must be ≥ 0 (got %d)", *partialMiB))
	}
	var liveOnly []string
	fs.Visit(func(f *flag.Flag) {
		if liveOnlyFlagNames[f.Name] {
			liveOnly = append(liveOnly, "-"+f.Name)
		}
	})
	if err := checkServeLiveFlags(*live, liveOnly); err != nil {
		fail(2, err)
	}
	if err := checkScenario(*scen); err != nil {
		fail(2, err)
	}
	srv, err := query.New(query.Config{
		Archive: *from,
		Analyze: func(ds *dataset.Dataset, workers int, sp *obs.Span) (*measure.Report, error) {
			st, err := mevscope.AnalyzeDatasetTraced(ds, workers, sp)
			if err != nil {
				return nil, err
			}
			return st.Report, nil
		},
		AnalyzeProjection: mevscope.AnalyzeDatasetProjection,
		AnalyzePartial:    mevscope.AnalyzeDatasetPartial,
		Workers:           *parallelism,
		CacheSize:         *cacheSize,
		PartialCacheBytes: *partialMiB << 20,
		DisableMetrics:    !*metrics,
		EnablePprof:       *pprofFlag,
	})
	if err != nil {
		fail(1, err)
	}
	if *live {
		if err := startLive(srv, mevscope.Options{
			Seed: *seed, BlocksPerMonth: *bpm, Months: *months,
			Scenario: *scen, Parallelism: *parallelism,
		}, *quiet); err != nil {
			fail(1, err)
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "mevscope: serving on http://%s/v1/ (archive %q, cache %d)\n", *addr, *from, *cacheSize)
	}
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fail(1, err)
	}
}

// startLive wires a background simulation's streaming follower into the
// server: the follower advances block by block under a mutex and every
// ?source=live query snapshots the current report at the current height.
func startLive(srv *query.Server, opts mevscope.Options, quiet bool) error {
	cfg, err := opts.Config()
	if err != nil {
		return err
	}
	s, err := sim.New(cfg)
	if err != nil {
		return err
	}
	var mu sync.Mutex
	f := stream.ForSim(s, opts.Parallelism)
	// Each completed month seals into a frozen partial at the rotation
	// point, so a snapshot merges the sealed months and re-analyzes only
	// the open one — snapshot cost stays proportional to one month,
	// however long the history grows. Sealing runs under the stepping
	// mutex (OnMonthEnd fires inside Sync), so the list is consistent.
	var sealed []*measure.Partial
	sealing := true
	f.OnMonthEnd = func(m types.Month, f *stream.Follower) {
		if !sealing {
			return
		}
		p, err := sealMonth(f, m, opts.Parallelism)
		if err != nil {
			// A failed seal would leave a hole the merge cannot bridge:
			// fall back to full snapshots for the rest of the run.
			sealing = false
			sealed = nil
			fmt.Fprintln(os.Stderr, "mevscope: live month sealing disabled:", err)
			return
		}
		sealed = append(sealed, p)
	}
	srv.SetLive(query.Live{
		// Height keys the cache and runs per request; only a cache miss
		// at a new height pays a snapshot (and briefly pauses stepping).
		Height: func() uint64 {
			mu.Lock()
			defer mu.Unlock()
			return f.Blocks()
		},
		Snapshot: func() (*measure.Report, uint64) {
			mu.Lock()
			defer mu.Unlock()
			if sealing && f.Blocks() > 0 {
				rep, err := snapshotFromPartials(f, sealed, opts.Parallelism)
				if err == nil {
					return rep, f.Blocks()
				}
				sealing = false
				sealed = nil
				fmt.Fprintln(os.Stderr, "mevscope: live partial snapshots disabled:", err)
			}
			return f.Report(), f.Blocks()
		},
		// Lag is how many sealed blocks the follower has not yet consumed
		// — the serving tier's freshness gauge (mevscope_live_lag_blocks).
		// Stepping and syncing run under the same mutex, so it reads as a
		// consistent pair.
		Lag: func() uint64 {
			mu.Lock()
			defer mu.Unlock()
			return s.Chain.NextNumber() - f.Next()
		},
	})
	if !quiet {
		fmt.Fprintf(os.Stderr, "mevscope: live world growing to block %d (seed %d, scenario %s)\n",
			s.EndBlock(), opts.Seed, opts.Scenario)
	}
	go func() {
		end := s.EndBlock()
		for s.Chain.NextNumber() <= end {
			mu.Lock()
			err := s.Step()
			if err == nil {
				_, err = f.Sync()
			}
			mu.Unlock()
			if err != nil {
				fmt.Fprintln(os.Stderr, "mevscope: live simulation stopped:", err)
				return
			}
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "mevscope: live world complete at block %d\n", s.Chain.Head().Header.Number)
		}
	}()
	return nil
}

// sealMonth freezes one completed month of the live follower as an
// analyzed partial — the same memoization unit the archive-backed query
// path caches (measure.Partial).
func sealMonth(f *stream.Follower, m types.Month, workers int) (*measure.Partial, error) {
	ds, err := f.MonthDataset(m)
	if err != nil {
		return nil, err
	}
	return mevscope.AnalyzeDatasetPartial(ds, workers, nil)
}

// snapshotFromPartials assembles the live report from the sealed month
// partials plus a freshly analyzed partial of the open month. The
// result is byte-identical to Follower.Report at the same height; only
// the open month pays an analysis.
func snapshotFromPartials(f *stream.Follower, sealed []*measure.Partial, workers int) (*measure.Report, error) {
	open := f.Timeline().MonthOfBlock(f.Next() - 1)
	parts := sealed
	if len(sealed) == 0 || sealed[len(sealed)-1].Month < open {
		p, err := sealMonth(f, open, workers)
		if err != nil {
			return nil, err
		}
		// Three-index append: the open-month partial must never land in
		// the sealed slice's backing array.
		parts = append(sealed[:len(sealed):len(sealed)], p)
	}
	return measure.MergePartials(parts, "", workers, nil)
}

// writeCSV optionally writes the CSV artifact directory.
func writeCSV(study *mevscope.Study, dir string, quiet bool) {
	if dir == "" {
		return
	}
	if err := study.Report.WriteCSVDir(dir); err != nil {
		fail(1, fmt.Errorf("csv: %w", err))
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "mevscope: CSV artifacts written to %s/\n", dir)
	}
}

// printSection renders one artifact (or the whole report) to stdout.
func printSection(study *mevscope.Study, section string) {
	switch strings.ToLower(section) {
	case "all":
		study.WriteReport(os.Stdout)
	case "table1":
		fmt.Print(study.Report.Table1.Format())
	case "fig3":
		for _, row := range study.Report.Fig3 {
			fmt.Printf("%8s %5d/%5d %6.1f%%\n", row.Month, row.FlashbotsBlocks, row.TotalBlocks, 100*row.Ratio())
		}
	case "fig4":
		for _, mv := range study.Report.Fig4 {
			fmt.Printf("%8s %6.1f%%\n", mv.Month, 100*mv.Value)
		}
	case "fig5":
		f := study.Report.Fig5
		fmt.Printf("thresholds: %v\n", f.Thresholds)
		for i, m := range f.Months {
			fmt.Printf("%8s %v\n", m, f.Counts[i])
		}
	case "fig6":
		for _, row := range study.Report.Fig6.Rows {
			fmt.Printf("%8s fb=%d nonfb=%d gas=%.1f gwei\n", row.Month, row.FlashbotsSand, row.NonFlashbotsSand, row.AvgGasPriceGwei)
		}
		fmt.Printf("corr(nonFB sandwiches, gas) = %.3f\n", study.Report.Fig6.CorrNonFB)
	case "fig7":
		for _, row := range study.Report.Fig7.Rows {
			fmt.Printf("%8s searchers=%v txs=%v\n", row.Month, row.Searchers, row.Txs)
		}
	case "fig8":
		f := study.Report.Fig8
		fmt.Printf("miners    non-FB: %s\nminers    FB:     %s\nsearchers non-FB: %s\nsearchers FB:     %s\n",
			f.MinerNonFB, f.MinerFB, f.SearcherNonFB, f.SearcherFB)
	case "fig9":
		if study.Report.Fig9 == nil {
			fmt.Println("no observation window in this run")
			return
		}
		sp := study.Report.Fig9.Split
		fmt.Printf("total=%d flashbots=%.1f%% private=%.1f%% public=%.1f%%\n",
			sp.Total, 100*sp.FlashbotsShare(), 100*sp.PrivateShare(), 100*sp.PublicShare())
	case "bundles":
		b := study.Report.Bundles
		fmt.Printf("bundles=%d blocks=%d mean/block=%.2f median=%.0f single-tx=%.1f%% max-txs=%d types=%v\n",
			b.Bundles, b.FlashbotsBlocks, b.BundlesPerBlock.Mean, b.BundlesPerBlock.Median,
			100*b.SingleTxShare(), b.MaxBundleTxs, b.ByType)
	case "negatives":
		n := study.Report.Negatives
		fmt.Printf("unprofitable %d of %d FB sandwiches (%.2f%%), loss %.2f ETH\n",
			n.Unprofitable, n.FlashbotsSandwiches, 100*n.Share(), n.TotalLossETH)
	case "private":
		for _, l := range study.Report.PrivateLinks {
			m, single := l.SingleMiner()
			tag := fmt.Sprintf("%d miners", len(l.Miners))
			if single {
				tag = "single miner " + m.String()
			}
			fmt.Printf("%s %4d private sandwiches (%s)\n", l.Account, l.Total, tag)
		}
	default:
		fmt.Fprintf(os.Stderr, "mevscope: unknown section %q\n", section)
		os.Exit(2)
	}
}

func pick(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

// runEnsemble parses the seed list, fans the runs out and prints the
// merged mean ± stddev report.
func runEnsemble(base mevscope.Options, seedList string, parallelism int, quiet bool) {
	seeds, err := parseSeeds(seedList)
	if err != nil {
		fail(2, err)
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "mevscope: ensemble of %d seeds under scenario %s at %d blocks/month...\n",
			len(seeds), base.Scenario, base.BlocksPerMonth)
	}
	t0 := time.Now()
	ens, err := mevscope.RunEnsembleWith(base, seeds, parallelism)
	if err != nil {
		fail(1, err)
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "mevscope: %d runs merged in %v\n", len(ens.Seeds), time.Since(t0).Round(time.Millisecond))
	}
	rsp := base.Span.Child(obs.StageRender)
	ens.WriteSummary(os.Stdout)
	rsp.End()
}

// parseSeeds parses a comma-separated int64 list.
func parseSeeds(s string) ([]int64, error) {
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q in -seeds", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-seeds given but no seeds parsed")
	}
	return out, nil
}
