package main

import (
	"strings"
	"testing"

	"mevscope/internal/scenario"
)

// TestCheckScenarioRejectsTypos: a mistyped -scenario must error before
// any simulation work, and the error must list every valid name so the
// user can fix the typo without reading source.
func TestCheckScenarioRejectsTypos(t *testing.T) {
	for _, bad := range []string{"no-flashbot", "baselin", "hashpower", "POST_LONDON"} {
		err := checkScenario(bad)
		if err == nil {
			t.Errorf("scenario %q accepted; want rejection", bad)
			continue
		}
		for _, name := range scenario.Names() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("error for %q does not list valid scenario %q: %v", bad, name, err)
			}
		}
	}
}

// TestCheckScenarioAcceptsValidNames: every registered name (any case)
// and the empty default pass.
func TestCheckScenarioAcceptsValidNames(t *testing.T) {
	for _, good := range append(scenario.Names(), "", "BASELINE", "No-Flashbots") {
		if err := checkScenario(good); err != nil {
			t.Errorf("scenario %q rejected: %v", good, err)
		}
	}
}
