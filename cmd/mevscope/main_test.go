package main

import (
	"strings"
	"testing"

	"mevscope/internal/scenario"
)

// TestCheckScenarioRejectsTypos: a mistyped -scenario must error before
// any simulation work, and the error must list every valid name so the
// user can fix the typo without reading source.
func TestCheckScenarioRejectsTypos(t *testing.T) {
	for _, bad := range []string{"no-flashbot", "baselin", "hashpower", "POST_LONDON"} {
		err := checkScenario(bad)
		if err == nil {
			t.Errorf("scenario %q accepted; want rejection", bad)
			continue
		}
		for _, name := range scenario.Names() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("error for %q does not list valid scenario %q: %v", bad, name, err)
			}
		}
	}
}

// TestCheckScenarioAcceptsValidNames: every registered name (any case)
// and the empty default pass.
func TestCheckScenarioAcceptsValidNames(t *testing.T) {
	for _, good := range append(scenario.Names(), "", "BASELINE", "No-Flashbots") {
		if err := checkScenario(good); err != nil {
			t.Errorf("scenario %q rejected: %v", good, err)
		}
	}
}

// TestCheckServe: the serve subcommand must reject invalid flag
// combinations (exit 2) before binding a socket — no source at all, or a
// cache that cannot hold a single report.
func TestCheckServe(t *testing.T) {
	bad := []struct {
		from  string
		live  bool
		cache int
		want  string
	}{
		{"", false, 16, "-from DIR, -live"},
		{"dir", false, 0, "-cache must be"},
		{"", true, -1, "-cache must be"},
	}
	for _, c := range bad {
		err := checkServe(c.from, c.live, c.cache)
		if err == nil {
			t.Errorf("checkServe(%q, %v, %d) accepted; want error containing %q", c.from, c.live, c.cache, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("checkServe(%q, %v, %d) = %v; want mention of %q", c.from, c.live, c.cache, err, c.want)
		}
	}
	for _, c := range []struct {
		from string
		live bool
	}{{"dir", false}, {"", true}, {"dir", true}} {
		if err := checkServe(c.from, c.live, 16); err != nil {
			t.Errorf("checkServe(%q, %v, 16) rejected: %v", c.from, c.live, err)
		}
	}
}

// TestCheckServeLiveFlags: simulation flags set without -live must be
// rejected (exit 2), not silently ignored — `serve -from DIR -scenario
// no-flashbots` would otherwise serve baseline archive data.
func TestCheckServeLiveFlags(t *testing.T) {
	err := checkServeLiveFlags(false, []string{"-scenario", "-seed"})
	if err == nil {
		t.Fatal("live-only flags without -live accepted")
	}
	for _, name := range []string{"-scenario", "-seed"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not name %s: %v", name, err)
		}
	}
	if err := checkServeLiveFlags(true, []string{"-scenario"}); err != nil {
		t.Errorf("live-only flags with -live rejected: %v", err)
	}
	if err := checkServeLiveFlags(false, nil); err != nil {
		t.Errorf("no live-only flags rejected: %v", err)
	}
	for _, name := range []string{"seed", "scenario", "bpm", "months"} {
		if !liveOnlyFlagNames[name] {
			t.Errorf("flag %q missing from liveOnlyFlagNames", name)
		}
	}
}
