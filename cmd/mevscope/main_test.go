package main

import (
	"strings"
	"testing"

	"mevscope"
	"mevscope/internal/archive"
	"mevscope/internal/dataset"
	"mevscope/internal/scenario"
	"mevscope/internal/sim"
)

// TestCheckScenarioRejectsTypos: a mistyped -scenario must error before
// any simulation work, and the error must list every valid name so the
// user can fix the typo without reading source.
func TestCheckScenarioRejectsTypos(t *testing.T) {
	for _, bad := range []string{"no-flashbot", "baselin", "hashpower", "POST_LONDON"} {
		err := checkScenario(bad)
		if err == nil {
			t.Errorf("scenario %q accepted; want rejection", bad)
			continue
		}
		for _, name := range scenario.Names() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("error for %q does not list valid scenario %q: %v", bad, name, err)
			}
		}
	}
}

// TestCheckScenarioAcceptsValidNames: every registered name (any case)
// and the empty default pass.
func TestCheckScenarioAcceptsValidNames(t *testing.T) {
	for _, good := range append(scenario.Names(), "", "BASELINE", "No-Flashbots") {
		if err := checkScenario(good); err != nil {
			t.Errorf("scenario %q rejected: %v", good, err)
		}
	}
}

// TestCheckObservation: the observation-network flags are validated up
// front — a typo'd topology or view and a negative vantage count are
// usage errors, not failed runs.
func TestCheckObservation(t *testing.T) {
	good := []struct {
		vantages int
		topology string
		view     string
	}{
		{0, "", ""},
		{4, "small-world", "union"},
		{2, "ring", "quorum:2"},
		{1, "ring-chords", "vantage:0"},
	}
	for _, g := range good {
		if err := checkObservation(g.vantages, g.topology, g.view); err != nil {
			t.Errorf("checkObservation(%d, %q, %q) = %v", g.vantages, g.topology, g.view, err)
		}
	}
	bad := []struct {
		vantages int
		topology string
		view     string
	}{
		{-1, "", ""},
		{0, "torus", ""},
		{0, "", "all"},
		{0, "", "quorum:0"},
	}
	for _, b := range bad {
		if err := checkObservation(b.vantages, b.topology, b.view); err == nil {
			t.Errorf("checkObservation(%d, %q, %q) accepted", b.vantages, b.topology, b.view)
		}
	}
}

// TestCheckServe: the serve subcommand must reject invalid flag
// combinations (exit 2) before binding a socket — no source at all, or a
// negative cache size. -cache 0 is valid: query.Config documents 0 as
// "selects 16", and the CLI must agree with the library it fronts.
func TestCheckServe(t *testing.T) {
	bad := []struct {
		from  string
		live  bool
		cache int
		want  string
	}{
		{"", false, 16, "-from DIR, -live"},
		{"dir", false, -1, "-cache must be"},
		{"", true, -1, "-cache must be"},
	}
	for _, c := range bad {
		err := checkServe(c.from, c.live, c.cache)
		if err == nil {
			t.Errorf("checkServe(%q, %v, %d) accepted; want error containing %q", c.from, c.live, c.cache, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("checkServe(%q, %v, %d) = %v; want mention of %q", c.from, c.live, c.cache, err, c.want)
		}
	}
	for _, c := range []struct {
		from  string
		live  bool
		cache int
	}{{"dir", false, 16}, {"", true, 16}, {"dir", true, 16}, {"dir", false, 0}} {
		if err := checkServe(c.from, c.live, c.cache); err != nil {
			t.Errorf("checkServe(%q, %v, %d) rejected: %v", c.from, c.live, c.cache, err)
		}
	}
}

// TestCheckServeLiveFlags: simulation flags set without -live must be
// rejected (exit 2), not silently ignored — `serve -from DIR -scenario
// no-flashbots` would otherwise serve baseline archive data.
func TestCheckServeLiveFlags(t *testing.T) {
	err := checkServeLiveFlags(false, []string{"-scenario", "-seed"})
	if err == nil {
		t.Fatal("live-only flags without -live accepted")
	}
	for _, name := range []string{"-scenario", "-seed"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not name %s: %v", name, err)
		}
	}
	if err := checkServeLiveFlags(true, []string{"-scenario"}); err != nil {
		t.Errorf("live-only flags with -live rejected: %v", err)
	}
	if err := checkServeLiveFlags(false, nil); err != nil {
		t.Errorf("no live-only flags rejected: %v", err)
	}
	for _, name := range []string{"seed", "scenario", "bpm", "months"} {
		if !liveOnlyFlagNames[name] {
			t.Errorf("flag %q missing from liveOnlyFlagNames", name)
		}
	}
}

// testArchiveDir simulates a tiny 6-month world and archives it, so the
// -range validation sees a truncated window (2020-05..2020-10).
func testArchiveDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cfg, err := mevscope.Options{Seed: 5, BlocksPerMonth: 20, Months: 6}.Config()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := archive.Write(dir, dataset.FromSim(s), nil); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestResolveRange: `analyze -range` must reject malformed and
// out-of-archive ranges as usage errors that name the valid window, and
// must pass through slices the archive can actually serve.
func TestResolveRange(t *testing.T) {
	dir := testArchiveDir(t)
	if _, _, err := resolveRange(dir, ""); err != nil {
		t.Errorf("empty range rejected: %v", err)
	}
	lo, hi, err := resolveRange(dir, "2020-06..2020-08")
	if err != nil {
		t.Fatalf("in-window range rejected: %v", err)
	}
	if lo.Label() != "2020-06" || hi.Label() != "2020-08" {
		t.Errorf("range resolved to %s..%s", lo.Label(), hi.Label())
	}
	// Malformed: the month parser's error lists the study window.
	if _, _, err := resolveRange(dir, "bogus"); err == nil || !strings.Contains(err.Error(), "2020-05") {
		t.Errorf("malformed range error does not list the valid window: %v", err)
	}
	if _, _, err := resolveRange(dir, "2020-08..2020-06"); err == nil {
		t.Error("inverted range accepted")
	}
	// Valid months that the truncated archive does not hold: the error
	// must list the archive's actual window.
	_, _, err = resolveRange(dir, "2021-03..2021-06")
	if err == nil {
		t.Fatal("out-of-archive range accepted")
	}
	for _, want := range []string{"2020-05", "2020-10"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("out-of-archive error does not name the archive window bound %s: %v", want, err)
		}
	}
	if _, _, err := resolveRange(t.TempDir(), "2020-06"); err == nil {
		t.Error("range against a non-archive directory accepted")
	}
}

// TestParseFormatFlag: the archive subcommand's -format values come
// from the archive package's format registry, so a new format shows up
// in the flag (and its help text and error message) without CLI edits.
func TestParseFormatFlag(t *testing.T) {
	for spec, want := range map[string]archive.Format{
		"v1": archive.FormatV1, "v2": archive.FormatV2, "v3": archive.FormatV3,
	} {
		got, err := archive.ParseFormat(spec)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = (%v, %v), want %v", spec, got, err, want)
		}
	}
	for _, bad := range []string{"", "v4", "jsonl", "V2"} {
		if _, err := archive.ParseFormat(bad); err == nil {
			t.Errorf("ParseFormat(%q) accepted", bad)
		}
	}
	for _, name := range archive.FormatNames() {
		if !strings.Contains(archive.FormatHelp(), name) {
			t.Errorf("FormatHelp() %q does not mention %q", archive.FormatHelp(), name)
		}
	}
}

// TestArchiveLive drives the `archive -live` path directly: a small
// world streamed month by month must produce a complete, readable
// archive with one segment per month.
func TestArchiveLive(t *testing.T) {
	cfg, err := mevscope.Options{Seed: 9, BlocksPerMonth: 20, Months: 3}.Config()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	man, err := archiveLive(s, dir, archive.FormatV2, map[string]string{"seed": "9"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Segments) != 3 {
		t.Fatalf("live archive has %d segments, want 3", len(man.Segments))
	}
	ds, _, err := archive.Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Chain.Len() != s.Chain.Len() {
		t.Errorf("restored %d blocks, world has %d", ds.Chain.Len(), s.Chain.Len())
	}
}
