package main

// Flight-recorder wiring for the study and analyze subcommands: -trace
// records the run under an internal/obs trace and writes it as Chrome
// trace-event JSON (load it at ui.perfetto.dev or chrome://tracing)
// plus a per-stage summary on stderr; -progress prints a stage ticker
// to stderr as the pipeline moves, driven by the same span hooks.

import (
	"fmt"
	"os"
	"sync"
	"time"

	"mevscope/internal/obs"
)

// progressStages is the coarse stage set the -progress ticker reports;
// fine-grained children (per-segment decodes, per-artifact builders)
// stay in the trace file but would drown a terminal.
var progressStages = map[string]bool{
	obs.StageSim:       true,
	obs.StageSimMonth:  true,
	obs.StageRun:       true,
	obs.StageRestore:   true,
	obs.StageDetect:    true,
	obs.StageProfit:    true,
	obs.StageInfer:     true,
	obs.StageAggregate: true,
	obs.StageBuild:     true,
	obs.StageRender:    true,
}

// tracer owns one command's recording session: the trace, where the
// Chrome JSON lands, and whether the progress ticker is on. A nil
// tracer (neither flag set) is inert and hands out a nil root span, so
// the traced and untraced code paths are the same call sites.
type tracer struct {
	tr   *obs.Trace
	file string
}

// newTracer starts a recording session when -trace or -progress asks
// for one; otherwise it returns nil and the run pays nothing.
func newTracer(name, traceFile string, progress bool) *tracer {
	if traceFile == "" && !progress {
		return nil
	}
	tr := obs.New(name)
	if progress {
		attachProgress(tr)
	}
	return &tracer{tr: tr, file: traceFile}
}

// root is the span command code threads through the pipeline.
func (t *tracer) root() *obs.Span {
	if t == nil {
		return nil
	}
	return t.tr.Root()
}

// finish ends the root span, writes the trace file when -trace named
// one, and prints the per-stage summary to stderr. Called once, after
// the run's last traced work.
func (t *tracer) finish() {
	if t == nil {
		return
	}
	t.tr.Root().End()
	if t.file == "" {
		return
	}
	f, err := os.Create(t.file)
	if err != nil {
		fail(1, fmt.Errorf("trace: %w", err))
	}
	if err := t.tr.WriteChrome(f); err != nil {
		f.Close()
		fail(1, fmt.Errorf("trace: %w", err))
	}
	if err := f.Close(); err != nil {
		fail(1, fmt.Errorf("trace: %w", err))
	}
	t.tr.WriteSummary(os.Stderr)
	fmt.Fprintf(os.Stderr, "mevscope: trace written to %s (load at ui.perfetto.dev)\n", t.file)
}

// attachProgress hooks the trace so every coarse stage prints one line
// when it completes. Hooks fire from worker goroutines (the ensemble
// fan-out ends "run" spans concurrently), so writes serialize under a
// mutex.
func attachProgress(tr *obs.Trace) {
	var mu sync.Mutex
	tr.OnSpanEnd = func(sp *obs.Span) {
		if !progressStages[sp.Name()] {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		name := sp.Name()
		if l := sp.Label(); l != "" {
			name += " " + l
		}
		line := fmt.Sprintf("mevscope: %-22s %8v", name, sp.Duration().Round(time.Millisecond))
		if u := sp.Utilization(); u > 0 {
			line += fmt.Sprintf("  pool %d×%.0f%%", sp.Workers(), 100*u)
		}
		if b := sp.Blocks(); b > 0 {
			line += fmt.Sprintf("  %d blocks", b)
		}
		fmt.Fprintln(os.Stderr, line)
	}
}
