// Command mevlint runs the repo's determinism/correctness analyzer
// suite (internal/lint) over package patterns, multichecker-style:
//
//	go run ./cmd/mevlint ./...
//	go run ./cmd/mevlint -analyzers wallclock,seededrand ./internal/sim
//
// Exit status: 0 clean (suppressed findings allowed), 1 findings, 2
// usage or load failure. On success it prints the number of
// suppressions in use, so CI logs show waiver growth over time.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mevscope/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mevlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	names := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	showSuppressed := fs.Bool("suppressed", false, "also print suppressed findings with their justifications")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mevlint [-analyzers a,b] [-suppressed] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *names != "" {
		var err error
		analyzers, err = selectAnalyzers(analyzers, *names)
		if err != nil {
			fmt.Fprintf(stderr, "mevlint: %v\n", err)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	res, err := lint.Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "mevlint: %v\n", err)
		return 2
	}

	bad := res.Unsuppressed()
	for _, f := range bad {
		fmt.Fprintf(stdout, "%s:%d:%d: %s (%s)\n", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
	}
	if *showSuppressed {
		for _, f := range res.Findings {
			if f.Suppressed {
				fmt.Fprintf(stdout, "%s:%d:%d: suppressed [%s]: %s (%s)\n",
					f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.SuppressReason, f.Message, f.Analyzer)
			}
		}
	}
	if len(bad) > 0 {
		fmt.Fprintf(stderr, "mevlint: %d finding(s) across %d package(s), %d suppression(s) in use\n",
			len(bad), res.Packages, res.SuppressionsUsed())
		return 1
	}
	fmt.Fprintf(stderr, "mevlint: ok — %d analyzer(s) over %d package(s), %d suppression(s) in use\n",
		len(analyzers), res.Packages, res.SuppressionsUsed())
	return 0
}

func selectAnalyzers(all []*lint.Analyzer, names string) ([]*lint.Analyzer, error) {
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			valid := make([]string, 0, len(all))
			for _, a := range all {
				valid = append(valid, a.Name)
			}
			return nil, fmt.Errorf("unknown analyzer %q (valid: %s)", name, strings.Join(valid, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}
