package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mevscope/internal/lint"
)

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// TestRepoIsLintClean is the smoke test the issue asks for: the suite
// over ./... on this repository itself must exit clean, with every
// waiver justified. It is the same invocation CI runs as a blocking
// step.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module via go list -export")
	}
	res, err := lint.Run(moduleRoot(t), []string{"./..."}, lint.All())
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range res.Unsuppressed() {
		t.Errorf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
	}
	for _, f := range res.Findings {
		if f.Suppressed && f.SuppressReason == "" {
			t.Errorf("%s:%d: suppression without justification", f.Pos.Filename, f.Pos.Line)
		}
	}
}

func TestListFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %q", code, errOut.String())
	}
	for _, name := range []string{"mapiterorder", "wallclock", "seededrand", "codecerr", "unstablesort"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerExits2(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-analyzers", "nosuch", "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("run(-analyzers nosuch) = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") || !strings.Contains(errOut.String(), "mapiterorder") {
		t.Errorf("error should name the bad analyzer and list valid ones: %q", errOut.String())
	}
}
