package main

import (
	"strings"
	"testing"
)

// TestParseArgsRejectsBadInput: stray positionals and invalid flags must
// error (main exits 2) before any simulation work.
func TestParseArgsRejectsBadInput(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"extra"}, "unexpected argument"},
		{[]string{"-out", "d", "extra"}, "unexpected argument"},
		{[]string{"-bpm", "0"}, "-bpm must be positive"},
		{[]string{"-out", ""}, "-out DIR must not be empty"},
		{[]string{"-nope"}, "flag provided but not defined"},
	}
	for _, c := range cases {
		_, err := parseArgs(c.args)
		if err == nil {
			t.Errorf("args %v accepted; want error containing %q", c.args, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("args %v: error %q does not contain %q", c.args, err, c.want)
		}
	}
}

// TestParseArgsAcceptsValidInput: defaults and explicit flags parse.
func TestParseArgsAcceptsValidInput(t *testing.T) {
	o, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.seed != 42 || o.bpm != 400 || o.out != "dataset" {
		t.Errorf("defaults = %+v", o)
	}
	o, err = parseArgs([]string{"-seed", "9", "-bpm", "50", "-out", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if o.seed != 9 || o.bpm != 50 || o.out != "x" {
		t.Errorf("options = %+v", o)
	}
}
