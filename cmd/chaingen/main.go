// Command chaingen generates a synthetic study dataset and persists the
// collection-script outputs — MEV records, pending-transaction
// observations and the Flashbots blocks API dump — as JSON-lines files,
// mirroring the paper's MongoDB collections ("we make our datasets and
// collection code openly available").
//
// Usage:
//
//	chaingen [-seed N] [-bpm BLOCKS] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mevscope"
	"mevscope/internal/store"
	"mevscope/internal/types"
)

// mevDoc is one row of the mev collection.
type mevDoc struct {
	Kind         string  `json:"kind"`
	Block        uint64  `json:"block"`
	Month        string  `json:"month"`
	Extractor    string  `json:"extractor"`
	GainETH      float64 `json:"gain_eth"`
	CostETH      float64 `json:"cost_eth"`
	NetETH       float64 `json:"net_eth"`
	ViaFlashbots bool    `json:"via_flashbots"`
	ViaFlashLoan bool    `json:"via_flash_loan"`
}

// pendingDoc is one row of the pending-transactions collection.
type pendingDoc struct {
	Hash           string `json:"hash"`
	FirstSeenBlock uint64 `json:"first_seen_block"`
	Hops           int    `json:"hops"`
}

// fbBlockDoc is one row of the Flashbots blocks API dump.
type fbBlockDoc struct {
	BlockNumber uint64  `json:"block_number"`
	Miner       string  `json:"miner"`
	RewardETH   float64 `json:"miner_reward_eth"`
	Bundles     int     `json:"bundles"`
	Txs         int     `json:"txs"`
}

func main() {
	var (
		seed = flag.Int64("seed", 42, "simulation seed")
		bpm  = flag.Uint64("bpm", 400, "blocks per simulated month")
		out  = flag.String("out", "dataset", "output directory")
	)
	flag.Parse()

	t0 := time.Now()
	fmt.Fprintf(os.Stderr, "chaingen: simulating (seed %d, %d blocks/month)...\n", *seed, *bpm)
	study, err := mevscope.Run(mevscope.Options{Seed: *seed, BlocksPerMonth: *bpm})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaingen:", err)
		os.Exit(1)
	}

	mev := store.NewCollection[mevDoc]("mev")
	mev.AddIndex("month", func(d mevDoc) string { return d.Month })
	mev.AddIndex("kind", func(d mevDoc) string { return d.Kind })
	for _, r := range study.Profits {
		mev.Insert(mevDoc{
			Kind:         r.Kind.String(),
			Block:        r.Block,
			Month:        r.Month.String(),
			Extractor:    r.Extractor.String(),
			GainETH:      r.GainETH.Ether(),
			CostETH:      r.CostETH.Ether(),
			NetETH:       r.NetETH.Ether(),
			ViaFlashbots: r.ViaFlashbots,
			ViaFlashLoan: r.ViaFlashLoan,
		})
	}

	pending := store.NewCollection[pendingDoc]("pending_transactions")
	for _, rec := range study.Sim.Net.Observer().Records() {
		pending.Insert(pendingDoc{Hash: rec.Hash.String(), FirstSeenBlock: rec.FirstSeenBlock, Hops: rec.Hops})
	}

	fbBlocks := store.NewCollection[fbBlockDoc]("flashbots_blocks")
	for _, rec := range study.Sim.Relay.Blocks() {
		fbBlocks.Insert(fbBlockDoc{
			BlockNumber: rec.BlockNumber,
			Miner:       rec.Miner.String(),
			RewardETH:   types.Amount(rec.MinerReward).Ether(),
			Bundles:     rec.BundleCount(),
			Txs:         len(rec.Txs),
		})
	}

	for name, save := range map[string]func(string) error{
		"mev":                  mev.SaveFile,
		"pending_transactions": pending.SaveFile,
		"flashbots_blocks":     fbBlocks.SaveFile,
	} {
		if err := save(*out); err != nil {
			fmt.Fprintf(os.Stderr, "chaingen: save %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "chaingen: wrote %d MEV records, %d pending observations, %d Flashbots blocks to %s/ in %v\n",
		mev.Count(), pending.Count(), fbBlocks.Count(), *out, time.Since(t0).Round(time.Millisecond))
}
