// Command chaingen generates a synthetic study dataset and persists the
// collection-script outputs — MEV records, pending-transaction
// observations and the Flashbots blocks API dump — as JSON-lines files,
// mirroring the paper's MongoDB collections ("we make our datasets and
// collection code openly available").
//
// Usage:
//
//	chaingen [-seed N] [-bpm BLOCKS] [-out DIR] [-vantages N] [-topology NAME]
//
// With -vantages N the gossip network carries N observation vantages and
// the pending-transactions collection gains a per-record vantage column
// (the primary vantage is 0), mirroring mempool-dumpster's per-source
// first-seen logs; -topology selects the gossip graph shape
// (ring-chords, ring, small-world).
//
// Stray positional arguments, a zero -bpm, an empty -out, a negative
// -vantages and an unknown -topology are rejected up front with exit
// status 2.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"mevscope"
	"mevscope/internal/p2p"
	"mevscope/internal/store"
	"mevscope/internal/types"
)

// mevDoc is one row of the mev collection.
type mevDoc struct {
	Kind         string  `json:"kind"`
	Block        uint64  `json:"block"`
	Month        string  `json:"month"`
	Extractor    string  `json:"extractor"`
	GainETH      float64 `json:"gain_eth"`
	CostETH      float64 `json:"cost_eth"`
	NetETH       float64 `json:"net_eth"`
	ViaFlashbots bool    `json:"via_flashbots"`
	ViaFlashLoan bool    `json:"via_flash_loan"`
}

// pendingDoc is one row of the pending-transactions collection.
type pendingDoc struct {
	Hash           string `json:"hash"`
	FirstSeenBlock uint64 `json:"first_seen_block"`
	Hops           int    `json:"hops"`
	// Vantage is the observation vantage that recorded the row (0 is the
	// primary observer); Node its position in the gossip graph.
	Vantage int `json:"vantage"`
	Node    int `json:"node"`
}

// fbBlockDoc is one row of the Flashbots blocks API dump.
type fbBlockDoc struct {
	BlockNumber uint64  `json:"block_number"`
	Miner       string  `json:"miner"`
	RewardETH   float64 `json:"miner_reward_eth"`
	Bundles     int     `json:"bundles"`
	Txs         int     `json:"txs"`
}

// options is the validated flag set of one invocation.
type options struct {
	seed     int64
	bpm      uint64
	out      string
	vantages int
	topology string
}

// parseArgs parses and validates the command line; mistakes come back as
// errors so main can exit 2 before any simulation work.
func parseArgs(args []string) (options, error) {
	fs := flag.NewFlagSet("chaingen", flag.ContinueOnError)
	fs.SetOutput(io.Discard) // main reports the returned error once
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: chaingen [flags]")
		fs.SetOutput(os.Stderr)
		fs.PrintDefaults()
		fs.SetOutput(io.Discard)
	}
	var o options
	fs.Int64Var(&o.seed, "seed", 42, "simulation seed")
	fs.Uint64Var(&o.bpm, "bpm", 400, "blocks per simulated month")
	fs.StringVar(&o.out, "out", "dataset", "output directory")
	fs.IntVar(&o.vantages, "vantages", 0, "observation vantages spread around the gossip network (0 = single observer)")
	fs.StringVar(&o.topology, "topology", "", "gossip topology: ring-chords (default), ring, small-world")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() > 0 {
		return o, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if o.bpm == 0 {
		return o, fmt.Errorf("-bpm must be positive")
	}
	if o.out == "" {
		return o, fmt.Errorf("-out DIR must not be empty")
	}
	if o.vantages < 0 {
		return o, fmt.Errorf("-vantages must be ≥ 0 (got %d)", o.vantages)
	}
	if _, err := p2p.ParseTopology(o.topology); err != nil {
		return o, err
	}
	return o, nil
}

func main() {
	o, err := parseArgs(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "chaingen:", err)
		os.Exit(2)
	}

	t0 := time.Now()
	fmt.Fprintf(os.Stderr, "chaingen: simulating (seed %d, %d blocks/month)...\n", o.seed, o.bpm)
	study, err := mevscope.Run(mevscope.Options{
		Seed: o.seed, BlocksPerMonth: o.bpm,
		Vantages: o.vantages, Topology: o.topology,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaingen:", err)
		os.Exit(1)
	}

	mev := store.NewCollection[mevDoc]("mev")
	mev.AddIndex("month", func(d mevDoc) string { return d.Month })
	mev.AddIndex("kind", func(d mevDoc) string { return d.Kind })
	for _, r := range study.Profits {
		mev.Insert(mevDoc{
			Kind:         r.Kind.String(),
			Block:        r.Block,
			Month:        r.Month.String(),
			Extractor:    r.Extractor.String(),
			GainETH:      r.GainETH.Ether(),
			CostETH:      r.CostETH.Ether(),
			NetETH:       r.NetETH.Ether(),
			ViaFlashbots: r.ViaFlashbots,
			ViaFlashLoan: r.ViaFlashLoan,
		})
	}

	pending := store.NewCollection[pendingDoc]("pending_transactions")
	for vi, v := range study.Sim.Net.Vantages() {
		for _, rec := range v.Records() {
			pending.Insert(pendingDoc{
				Hash: rec.Hash.String(), FirstSeenBlock: rec.FirstSeenBlock, Hops: rec.Hops,
				Vantage: vi, Node: v.Node(),
			})
		}
	}

	fbBlocks := store.NewCollection[fbBlockDoc]("flashbots_blocks")
	for _, rec := range study.Sim.Relay.Blocks() {
		fbBlocks.Insert(fbBlockDoc{
			BlockNumber: rec.BlockNumber,
			Miner:       rec.Miner.String(),
			RewardETH:   types.Amount(rec.MinerReward).Ether(),
			Bundles:     rec.BundleCount(),
			Txs:         len(rec.Txs),
		})
	}

	saves := []struct {
		name string
		save func(string) error
	}{
		{"mev", mev.SaveFile},
		{"pending_transactions", pending.SaveFile},
		{"flashbots_blocks", fbBlocks.SaveFile},
	}
	for _, s := range saves {
		if err := s.save(o.out); err != nil {
			fmt.Fprintf(os.Stderr, "chaingen: save %s: %v\n", s.name, err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "chaingen: wrote %d MEV records, %d pending observations, %d Flashbots blocks to %s/ in %v\n",
		mev.Count(), pending.Count(), fbBlocks.Count(), o.out, time.Since(t0).Round(time.Millisecond))
}
