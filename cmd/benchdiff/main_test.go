package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeArtifact(t *testing.T, dir, name string, results []Result) string {
	t.Helper()
	raw, err := json.Marshal(Artifact{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompare: the pairing and threshold rules — a >25% slowdown on a
// named metric regresses, improvements and small wobbles do not, and
// benchmarks present on one side only are skipped, never failed.
func TestCompare(t *testing.T) {
	base := &Artifact{Results: []Result{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 100, "allocs/op": 10}},
		{Name: "BenchmarkB", Metrics: map[string]float64{"ns/op": 1000}},
		{Name: "BenchmarkRetired", Metrics: map[string]float64{"ns/op": 5}},
	}}
	cur := &Artifact{Results: []Result{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 130, "allocs/op": 10}}, // +30% → regression
		{Name: "BenchmarkB", Metrics: map[string]float64{"ns/op": 500}},                  // improvement
		{Name: "BenchmarkNew", Metrics: map[string]float64{"ns/op": 1}},                  // no baseline
	}}
	deltas, skipped := compare(base, cur, []string{"ns/op", "allocs/op"}, 25)

	if n := countRegressed(deltas); n != 1 {
		t.Fatalf("regressed = %d, want 1 (only BenchmarkA ns/op): %+v", n, deltas)
	}
	byKey := map[string]Delta{}
	for _, d := range deltas {
		byKey[d.Name+"/"+d.Metric] = d
	}
	if d := byKey["BenchmarkA/ns/op"]; !d.Regressed || d.Pct < 29 || d.Pct > 31 {
		t.Errorf("BenchmarkA ns/op = %+v, want ~+30%% regressed", d)
	}
	if d := byKey["BenchmarkA/allocs/op"]; d.Regressed {
		t.Errorf("flat allocs/op flagged as regression: %+v", d)
	}
	if d := byKey["BenchmarkB/ns/op"]; d.Regressed || d.Pct > -49 {
		t.Errorf("2x improvement misread: %+v", d)
	}
	// BenchmarkB has no allocs/op on either side → no delta row for it.
	if _, ok := byKey["BenchmarkB/allocs/op"]; ok {
		t.Error("compared a metric the benchmark never reported")
	}
	joined := strings.Join(skipped, "; ")
	if !strings.Contains(joined, "BenchmarkNew (no baseline)") || !strings.Contains(joined, "BenchmarkRetired (retired)") {
		t.Errorf("skipped = %v, want the new and retired benchmarks noted", skipped)
	}
}

// TestCompareBoundary pins the threshold edge: exactly at -max-regress
// passes, just over fails.
func TestCompareBoundary(t *testing.T) {
	base := &Artifact{Results: []Result{{Name: "BenchmarkEdge", Metrics: map[string]float64{"ns/op": 100}}}}
	at := &Artifact{Results: []Result{{Name: "BenchmarkEdge", Metrics: map[string]float64{"ns/op": 125}}}}
	over := &Artifact{Results: []Result{{Name: "BenchmarkEdge", Metrics: map[string]float64{"ns/op": 126}}}}
	if deltas, _ := compare(base, at, []string{"ns/op"}, 25); countRegressed(deltas) != 0 {
		t.Errorf("+25.0%% exactly should pass: %+v", deltas)
	}
	if deltas, _ := compare(base, over, []string{"ns/op"}, 25); countRegressed(deltas) != 1 {
		t.Errorf("+26%% should fail: %+v", deltas)
	}
}

// TestLoad: a real benchjson-shaped file round-trips; junk and empty
// files are refused.
func TestLoad(t *testing.T) {
	dir := t.TempDir()
	good := writeArtifact(t, dir, "good.json", []Result{
		{Name: "BenchmarkX", Metrics: map[string]float64{"ns/op": 42, "B/op": 7}},
	})
	a, err := load(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != 1 || a.Results[0].Metrics["ns/op"] != 42 {
		t.Errorf("loaded %+v", a)
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"results": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(empty); err == nil {
		t.Error("load accepted an artifact with no results")
	}
	junk := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(junk, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(junk); err == nil {
		t.Error("load accepted junk")
	}
}
