// Command benchdiff compares two benchjson artifacts (BENCH_*.json) and
// fails when a named metric regressed beyond the threshold — the gate
// that turns CI's benchmark artifacts from passive history into a
// ratchet. The baseline comes from the previous run's artifact (CI
// restores it via actions/cache); the current file is this run's.
//
// Usage:
//
//	benchdiff -baseline old/BENCH_serve.json -current BENCH_serve.json \
//	          [-metrics ns/op,allocs/op] [-max-regress 25]
//
// Every benchmark present in both files is compared on each named
// metric (all lower-is-better); a change above -max-regress percent is
// a regression and the exit status is 1 after the full table prints.
// Benchmarks present on only one side are noted and skipped — new
// benchmarks must not fail the gate, and retired ones must not block
// it. A missing baseline file is not an error: the first run of a
// trajectory has nothing to compare against, prints a note, and exits 0
// so the cache seeds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Result mirrors benchjson's per-benchmark shape (the fields benchdiff
// reads).
type Result struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

// Artifact mirrors benchjson's file shape.
type Artifact struct {
	Results []Result `json:"results"`
}

// Delta is one (benchmark, metric) comparison.
type Delta struct {
	Name, Metric   string
	Base, Cur, Pct float64
	Regressed      bool
}

func main() {
	var (
		baseline   = flag.String("baseline", "", "previous run's benchjson artifact")
		current    = flag.String("current", "", "this run's benchjson artifact")
		metrics    = flag.String("metrics", "ns/op,allocs/op", "comma-separated metric units to compare (lower is better)")
		maxRegress = flag.Float64("max-regress", 25, "failing regression threshold, percent")
	)
	flag.Parse()
	if *current == "" || *baseline == "" {
		fatal(fmt.Errorf("need -baseline FILE and -current FILE"))
	}
	if _, err := os.Stat(*baseline); os.IsNotExist(err) {
		fmt.Printf("benchdiff: no baseline at %s — first run of this trajectory, nothing to compare\n", *baseline)
		return
	}
	base, err := load(*baseline)
	if err != nil {
		fatal(err)
	}
	cur, err := load(*current)
	if err != nil {
		fatal(err)
	}
	deltas, skipped := compare(base, cur, splitMetrics(*metrics), *maxRegress)
	report(os.Stdout, deltas, skipped)
	for _, d := range deltas {
		if d.Regressed {
			fatal(fmt.Errorf("%d metric(s) regressed more than %g%%", countRegressed(deltas), *maxRegress))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}

func load(path string) (*Artifact, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a := &Artifact{}
	if err := json.Unmarshal(raw, a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(a.Results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return a, nil
}

func splitMetrics(s string) []string {
	var out []string
	for _, m := range strings.Split(s, ",") {
		if m = strings.TrimSpace(m); m != "" {
			out = append(out, m)
		}
	}
	return out
}

// compare pairs up benchmarks by name and measures each named metric.
// Benchmarks on only one side land in skipped; so does a metric a
// benchmark lacks on either side (not every bench reports allocs).
func compare(base, cur *Artifact, metrics []string, maxRegress float64) (deltas []Delta, skipped []string) {
	baseBy := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	curNames := make(map[string]bool, len(cur.Results))
	for _, r := range cur.Results {
		curNames[r.Name] = true
		b, ok := baseBy[r.Name]
		if !ok {
			skipped = append(skipped, r.Name+" (no baseline)")
			continue
		}
		for _, m := range metrics {
			bv, bok := b.Metrics[m]
			cv, cok := r.Metrics[m]
			if !bok || !cok || bv <= 0 {
				continue
			}
			pct := (cv - bv) / bv * 100
			deltas = append(deltas, Delta{
				Name: r.Name, Metric: m,
				Base: bv, Cur: cv, Pct: pct,
				Regressed: pct > maxRegress,
			})
		}
	}
	for name := range baseBy {
		if !curNames[name] {
			skipped = append(skipped, name+" (retired)")
		}
	}
	sort.Strings(skipped)
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].Name != deltas[j].Name {
			return deltas[i].Name < deltas[j].Name
		}
		return deltas[i].Metric < deltas[j].Metric
	})
	return deltas, skipped
}

func countRegressed(deltas []Delta) int {
	n := 0
	for _, d := range deltas {
		if d.Regressed {
			n++
		}
	}
	return n
}

func report(w *os.File, deltas []Delta, skipped []string) {
	for _, d := range deltas {
		mark := "  "
		if d.Regressed {
			mark = "✗ "
		}
		fmt.Fprintf(w, "%s%-50s %-10s %14.1f → %14.1f  %+7.1f%%\n",
			mark, d.Name, d.Metric, d.Base, d.Cur, d.Pct)
	}
	for _, s := range skipped {
		fmt.Fprintf(w, "  skipped: %s\n", s)
	}
}
