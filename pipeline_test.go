package mevscope

import (
	"bytes"
	"testing"

	"mevscope/internal/sim"
)

// TestAnalyzeParallelDeterminism is the pipeline's core guarantee: for a
// fixed simulation, AnalyzeWith produces a byte-identical report for every
// worker count, including the fully sequential path.
func TestAnalyzeParallelDeterminism(t *testing.T) {
	cfg := sim.DefaultConfig(99)
	cfg.BlocksPerMonth = 60
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	render := func(workers int) []byte {
		st, err := AnalyzeWith(s, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		st.WriteReport(&buf)
		return buf.Bytes()
	}

	sequential := render(1)
	if len(sequential) == 0 {
		t.Fatal("empty sequential report")
	}
	for _, workers := range []int{2, 4, 7, 16} {
		if got := render(workers); !bytes.Equal(got, sequential) {
			t.Errorf("report with %d workers differs from sequential", workers)
		}
	}
	// The default path (NumCPU) must match too.
	st, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	st.WriteReport(&buf)
	if !bytes.Equal(buf.Bytes(), sequential) {
		t.Error("Analyze (default workers) differs from sequential")
	}
}

// TestAnalyzeParallelStructuralEquality re-checks determinism at the
// artifact level (counts, not just rendering) on a second seed.
func TestAnalyzeParallelStructuralEquality(t *testing.T) {
	cfg := sim.DefaultConfig(1234)
	cfg.BlocksPerMonth = 40
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	seq, err := AnalyzeWith(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := AnalyzeWith(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Detected.Sandwiches) != len(par.Detected.Sandwiches) ||
		len(seq.Detected.Arbitrages) != len(par.Detected.Arbitrages) ||
		len(seq.Detected.Liquidations) != len(par.Detected.Liquidations) {
		t.Error("detector sweeps differ")
	}
	for i := range seq.Detected.Sandwiches {
		if seq.Detected.Sandwiches[i] != par.Detected.Sandwiches[i] {
			t.Fatalf("sandwich %d differs", i)
		}
	}
	if len(seq.Profits) != len(par.Profits) {
		t.Fatalf("profit counts differ: %d vs %d", len(seq.Profits), len(par.Profits))
	}
	for i := range seq.Profits {
		if seq.Profits[i].NetETH != par.Profits[i].NetETH || seq.Profits[i].Kind != par.Profits[i].Kind {
			t.Fatalf("profit record %d differs", i)
		}
	}
	if seq.Report.Table1.Total != par.Report.Table1.Total {
		t.Error("Table 1 totals differ")
	}
}

// TestRunEnsembleSeedOrderIndependence: the merged stats must not depend
// on the order seeds are passed in or on the fan-out parallelism.
func TestRunEnsembleSeedOrderIndependence(t *testing.T) {
	base := Options{BlocksPerMonth: 30, Scenario: "baseline"}
	a, err := RunEnsembleWith(base, []int64{5, 3, 9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEnsembleWith(base, []int64{9, 5, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := a.Format(), b.Format(); got != want {
		t.Errorf("ensemble reports differ across seed orderings:\n--- a ---\n%s\n--- b ---\n%s", got, want)
	}
	if len(a.Seeds) != 3 || a.Seeds[0] != 3 || a.Seeds[2] != 9 {
		t.Errorf("seeds not normalized ascending: %v", a.Seeds)
	}
}

// TestRunEnsembleStats sanity-checks the merged cells: means sit inside
// the per-seed range and a two-seed ensemble has nonzero spread somewhere.
func TestRunEnsembleStats(t *testing.T) {
	ens, err := RunEnsemble([]int64{1, 2}, "baseline", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ens.Table1) != 4 {
		t.Fatalf("Table1 rows = %d, want 4 (three strategies + total)", len(ens.Table1))
	}
	total := ens.Table1[3]
	if total.Strategy != "Total" {
		t.Errorf("last row = %q", total.Strategy)
	}
	if total.Extractions.N != 2 {
		t.Errorf("cell N = %d, want 2", total.Extractions.N)
	}
	if total.Extractions.Mean <= 0 {
		t.Error("no extractions measured")
	}
	if total.Extractions.Mean < total.Extractions.Min || total.Extractions.Mean > total.Extractions.Max {
		t.Error("mean outside min/max")
	}
	if len(ens.Fig3Ratio) == 0 || len(ens.Fig4Hashrate) == 0 {
		t.Error("monthly series missing")
	}
	if ens.Fig9Runs != 2 {
		t.Errorf("Fig9 runs = %d, want 2 (observer live at this scale)", ens.Fig9Runs)
	}
}

// TestRunEnsembleScenario runs the no-Flashbots ablation ensemble and
// checks the counterfactual actually bites: no Flashbots extractions.
func TestRunEnsembleScenario(t *testing.T) {
	ens, err := RunEnsembleWith(Options{BlocksPerMonth: 20, Months: 12, Scenario: "no-flashbots"}, []int64{4, 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ens.Scenario != "no-flashbots" {
		t.Errorf("scenario = %q", ens.Scenario)
	}
	total := ens.Table1[3]
	if total.ViaFlashbots.Mean != 0 || total.ViaFlashbots.Max != 0 {
		t.Errorf("no-flashbots world still shows Flashbots extractions: %+v", total.ViaFlashbots)
	}
	if total.Extractions.Mean == 0 {
		t.Error("MEV should persist in the public auction")
	}
}

func TestRunEnsembleRejectsBadInput(t *testing.T) {
	if _, err := RunEnsemble(nil, "baseline", 1); err == nil {
		t.Error("empty seed list should error")
	}
	if _, err := RunEnsemble([]int64{1}, "not-a-scenario", 1); err == nil {
		t.Error("unknown scenario should error")
	}
}
