package mevscope

import (
	"bytes"
	"strings"
	"testing"

	"mevscope/internal/core/measure"
	"mevscope/internal/types"
)

// runStudy runs a small full-window study once per test binary.
func runStudy(t *testing.T) *Study {
	t.Helper()
	study, err := Run(Options{Seed: 99, BlocksPerMonth: 60})
	if err != nil {
		t.Fatal(err)
	}
	return study
}

func TestRunProducesFullReport(t *testing.T) {
	st := runStudy(t)
	r := st.Report
	if r.Table1.Total.Extractions == 0 {
		t.Error("Table 1 empty")
	}
	if len(r.Fig3) != types.StudyMonths || len(r.Fig4) != types.StudyMonths {
		t.Error("monthly series incomplete")
	}
	if r.Fig9 == nil {
		t.Fatal("Fig9 missing (observer should be live)")
	}
	if r.Fig9.Split.Total == 0 {
		t.Error("no window sandwiches")
	}
	if r.Bundles.Bundles == 0 {
		t.Error("no bundles")
	}
	if st.Inferrer == nil {
		t.Error("inferrer missing")
	}
	if len(st.Profits) == 0 || len(st.Detected.Sandwiches) == 0 {
		t.Error("pipeline artifacts missing")
	}
}

func TestReportShapes(t *testing.T) {
	st := runStudy(t)
	r := st.Report

	// Figure 3: no Flashbots blocks pre-launch, majority-share later.
	for _, row := range r.Fig3 {
		if row.Month < types.FlashbotsLaunchMonth && row.FlashbotsBlocks != 0 {
			t.Fatalf("FB blocks before launch in %v", row.Month)
		}
	}
	var peak float64
	for _, row := range r.Fig3 {
		if row.Ratio() > peak {
			peak = row.Ratio()
		}
	}
	if peak < 0.4 || peak > 0.85 {
		t.Errorf("Fig3 peak ratio = %.2f, want near the paper's 0.6", peak)
	}

	// Figure 4: hashrate estimate is near-total by late 2021. The paper's
	// estimator (≥1 Flashbots block that month) undercounts at this
	// compressed 60-blocks/month scale, so the bound is looser than the
	// paper's 99.9 %.
	for _, mv := range r.Fig4 {
		if mv.Month >= 17 && mv.Value < 0.78 {
			t.Errorf("month %v hashrate estimate %.2f < 0.78", mv.Month, mv.Value)
		}
	}

	// Figure 5: no month has more miners than the configured set.
	if r.Fig5.MaxMinersInAnyMonth() > 55 {
		t.Error("more Flashbots miners than miners exist")
	}

	// Figure 8 orderings (the §5.1 findings):
	if r.Fig8.SearcherFB.Mean >= r.Fig8.SearcherNonFB.Mean {
		t.Error("searchers should earn less via Flashbots")
	}
	if r.Fig8.MinerFB.Mean <= r.Fig8.MinerNonFB.Mean {
		t.Error("miners should earn more via Flashbots")
	}

	// Figure 9: Flashbots dominates; public is a small minority.
	sp := r.Fig9.Split
	if sp.FlashbotsShare() < 0.6 {
		t.Errorf("FB share = %.2f", sp.FlashbotsShare())
	}
	if sp.PublicShare() > 0.25 {
		t.Errorf("public share = %.2f", sp.PublicShare())
	}

	// §5.2: some unprofitable Flashbots sandwiches exist, but a minority.
	if r.Negatives.Unprofitable == 0 {
		t.Error("expected some unprofitable FB sandwiches")
	}
	if r.Negatives.Share() > 0.25 {
		t.Errorf("negative share = %.2f", r.Negatives.Share())
	}

	// §4.1: bundles per block near the paper's 2.71, median small.
	if r.Bundles.BundlesPerBlock.Mean < 1.5 || r.Bundles.BundlesPerBlock.Mean > 4 {
		t.Errorf("bundles/block = %.2f", r.Bundles.BundlesPerBlock.Mean)
	}
}

func TestWriteReportRendersAllSections(t *testing.T) {
	st := runStudy(t)
	var buf bytes.Buffer
	st.WriteReport(&buf)
	out := buf.String()
	for _, section := range []string{
		"Table 1", "Figure 3", "Figure 4", "Figure 5", "Figure 6",
		"Figure 7", "Figure 8", "Figure 9", "bundle statistics",
		"negative profits", "private non-Flashbots sandwich accounts",
	} {
		if !strings.Contains(out, section) {
			t.Errorf("report missing section %q", section)
		}
	}
	if !strings.Contains(out, "London fork") {
		t.Error("fork markers missing")
	}
}

func TestOptionsPropagate(t *testing.T) {
	study, err := Run(Options{Seed: 3, BlocksPerMonth: 30, Months: 3, NumMiners: 12, NumTraders: 30})
	if err != nil {
		t.Fatal(err)
	}
	if study.Sim.Chain.Len() != 90 {
		t.Errorf("blocks = %d", study.Sim.Chain.Len())
	}
	if study.Sim.Mset.Len() != 12 {
		t.Error("miners")
	}
	// Short pre-launch run: no Flashbots artifacts, no inferrer.
	if study.Report.Fig9 != nil {
		t.Error("no observer window in a 3-month run")
	}
}

func TestBar(t *testing.T) {
	if got := measure.Bar(0.5, 10); got != "#####....." {
		t.Errorf("bar = %q", got)
	}
	if got := measure.Bar(-1, 4); got != "...." {
		t.Errorf("bar clamp low = %q", got)
	}
	if got := measure.Bar(2, 4); got != "####" {
		t.Errorf("bar clamp high = %q", got)
	}
}
