// Package genesis assembles the simulated DeFi world at block zero: the
// token set, the AMM venues the paper's detectors cover (Uniswap V2/V3,
// SushiSwap, Bancor, Curve), the lending protocols (Aave V1/V2, Compound),
// seeded liquidity, oracle prices and the executor wired over all of it.
package genesis

import (
	"fmt"
	"math/rand"

	"mevscope/internal/agents"
	"mevscope/internal/dex"
	"mevscope/internal/evmlite"
	"mevscope/internal/lending"
	"mevscope/internal/state"
	"mevscope/internal/types"
)

// TokenSpec seeds one trading token.
type TokenSpec struct {
	Symbol string
	// PriceETH is the initial price in ETH per whole token.
	PriceETH float64
	// DepthWETH is the WETH depth of each venue's TOKEN/WETH pool.
	DepthWETH types.Amount
}

// DefaultTokens mirrors the high-volume pairs of the study period.
func DefaultTokens() []TokenSpec {
	return []TokenSpec{
		{Symbol: "DAI", PriceETH: 1.0 / 2000, DepthWETH: 80_000 * types.Ether},
		{Symbol: "USDC", PriceETH: 1.0 / 2000, DepthWETH: 100_000 * types.Ether},
		{Symbol: "USDT", PriceETH: 1.0 / 2000, DepthWETH: 60_000 * types.Ether},
		{Symbol: "WBTC", PriceETH: 14.0, DepthWETH: 50_000 * types.Ether},
		{Symbol: "LINK", PriceETH: 0.012, DepthWETH: 25_000 * types.Ether},
		{Symbol: "UNI", PriceETH: 0.009, DepthWETH: 20_000 * types.Ether},
		{Symbol: "SUSHI", PriceETH: 0.005, DepthWETH: 12_000 * types.Ether},
		{Symbol: "AAVE", PriceETH: 0.12, DepthWETH: 10_000 * types.Ether},
	}
}

// VenueSpec seeds one exchange venue.
type VenueSpec struct {
	Name   string
	FeeBps int
	// DepthScale multiplies token depths for this venue (liquidity is not
	// uniform across exchanges).
	DepthScale float64
}

// DefaultVenues lists the exchanges the paper's detectors cover.
func DefaultVenues() []VenueSpec {
	return []VenueSpec{
		{Name: "UniswapV2", FeeBps: 30, DepthScale: 1.0},
		{Name: "UniswapV3", FeeBps: 30, DepthScale: 1.4},
		{Name: "SushiSwap", FeeBps: 30, DepthScale: 0.7},
		{Name: "Bancor", FeeBps: 20, DepthScale: 0.35},
		{Name: "Curve", FeeBps: 4, DepthScale: 0.5},
	}
}

// LendingSpec seeds one lending protocol.
type LendingSpec struct {
	Name     string
	Compound bool
	// FlashLoanFeeBps < 0 disables flash loans (Compound offers none).
	FlashLoanFeeBps int
}

// DefaultLending lists the platforms the paper crawls (§3.1.3): Aave V1,
// Aave V2 and Compound, plus dYdX as a flash-loan source (§3.4).
func DefaultLending() []LendingSpec {
	return []LendingSpec{
		{Name: "AaveV1", FlashLoanFeeBps: 9},
		{Name: "AaveV2", FlashLoanFeeBps: 9},
		{Name: "Compound", Compound: true, FlashLoanFeeBps: -1},
		{Name: "dYdX", FlashLoanFeeBps: 2},
	}
}

// Config controls world assembly.
type Config struct {
	Tokens  []TokenSpec
	Venues  []VenueSpec
	Lending []LendingSpec
	// Seed feeds deterministic jitter in pool seeding.
	Seed int64
}

// DefaultConfig returns the full default world.
func DefaultConfig(seed int64) Config {
	return Config{Tokens: DefaultTokens(), Venues: DefaultVenues(), Lending: DefaultLending(), Seed: seed}
}

// World is the assembled simulation world.
type World struct {
	agents.World
	Lending []*lending.Protocol
	// LiquidityOp owns the seeded pool liquidity.
	LiquidityOp types.Address
}

// Build assembles the world.
func Build(cfg Config) (*World, error) {
	if len(cfg.Tokens) == 0 || len(cfg.Venues) == 0 {
		return nil, fmt.Errorf("genesis: need at least one token and venue")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := state.New()
	weth := st.RegisterToken("WETH", 18)

	oracle := lending.NewOracle("chainlink")
	oracle.SetPrice(weth, types.Ether)

	tokens := make([]types.Address, len(cfg.Tokens))
	for i, ts := range cfg.Tokens {
		addr := st.RegisterToken(ts.Symbol, 18)
		tokens[i] = addr
		oracle.SetPrice(addr, types.FromEther(ts.PriceETH))
	}

	venues := dex.NewRegistry()
	lp := types.DeriveAddress("genesis:liquidity", 0)
	for _, vs := range cfg.Venues {
		v := dex.NewVenue(vs.Name, vs.FeeBps)
		venues.Add(v)
		for i, ts := range cfg.Tokens {
			depth := types.Amount(float64(ts.DepthWETH) * vs.DepthScale * (0.9 + 0.2*rng.Float64()))
			if depth <= 0 {
				continue
			}
			tokenDepth := types.Amount(float64(depth) / ts.PriceETH)
			pool := v.EnsurePool(weth, tokens[i])
			if err := st.MintToken(weth, lp, depth); err != nil {
				return nil, err
			}
			if err := st.MintToken(tokens[i], lp, tokenDepth); err != nil {
				return nil, err
			}
			var amtA, amtB types.Amount
			if pool.TokenA == weth {
				amtA, amtB = depth, tokenDepth
			} else {
				amtA, amtB = tokenDepth, depth
			}
			if err := pool.AddLiquidity(st, lp, amtA, amtB); err != nil {
				return nil, fmt.Errorf("genesis: seed %s %s: %w", vs.Name, ts.Symbol, err)
			}
		}
	}

	lreg := lending.NewRegistry()
	var prots []*lending.Protocol
	for _, ls := range cfg.Lending {
		p := lending.New(lending.Config{
			Name:            ls.Name,
			Compound:        ls.Compound,
			LiqThresholdBps: 8000,
			LiqBonusBps:     500,
			CloseFactorBps:  5000,
			FlashLoanFeeBps: ls.FlashLoanFeeBps,
		}, oracle)
		lreg.Add(p)
		prots = append(prots, p)
		// Treasury: deep reserves of every token plus WETH.
		if err := p.SeedReserves(st, weth, 200_000*types.Ether); err != nil {
			return nil, err
		}
		for i, ts := range cfg.Tokens {
			amt := types.Amount(float64(100_000*types.Ether) / ts.PriceETH)
			if err := p.SeedReserves(st, tokens[i], amt); err != nil {
				return nil, err
			}
		}
	}

	ex := evmlite.New(evmlite.Env{State: st, Venues: venues, Lending: lreg, Oracle: oracle, WETH: weth})
	return &World{
		World: agents.World{
			Ex: ex, St: st, Venues: venues, Lending: lreg,
			Oracle: oracle, WETH: weth, Tokens: tokens,
		},
		Lending:     prots,
		LiquidityOp: lp,
	}, nil
}
