package genesis

import (
	"testing"

	"mevscope/internal/types"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Config{}); err == nil {
		t.Error("empty config should fail")
	}
}

func TestBuildDefaultWorld(t *testing.T) {
	w, err := Build(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Tokens) != 8 {
		t.Errorf("tokens = %d", len(w.Tokens))
	}
	if len(w.Venues.Venues()) != 5 {
		t.Errorf("venues = %d", len(w.Venues.Venues()))
	}
	if len(w.Lending) != 4 {
		t.Errorf("lending = %d", len(w.Lending))
	}
	// Every venue quotes every TOKEN/WETH pool with both-sided liquidity.
	for _, v := range w.Venues.Venues() {
		for _, tok := range w.Tokens {
			p, ok := v.Pool(w.WETH, tok)
			if !ok {
				t.Fatalf("%s missing pool for token", v.Name)
			}
			ra, rb := p.Reserves(w.St)
			if ra <= 0 || rb <= 0 {
				t.Fatalf("%s pool empty", v.Name)
			}
		}
	}
	// Oracle prices every token.
	for _, tok := range w.Tokens {
		if _, ok := w.Oracle.Price(tok); !ok {
			t.Fatal("oracle missing token price")
		}
	}
	if p, _ := w.Oracle.Price(w.WETH); p != types.Ether {
		t.Error("WETH price should be 1 ETH")
	}
	// Pool prices are consistent with oracle prices (within jitter + fees).
	uni, _ := w.Venues.ByName("UniswapV2")
	dai, _ := w.St.TokenBySymbol("DAI")
	pool, _ := uni.Pool(w.WETH, dai)
	spot := pool.SpotPrice(w.St, w.WETH) // DAI per WETH
	if spot < 1500 || spot > 2500 {
		t.Errorf("DAI/WETH spot = %f", spot)
	}
	// Lending protocols hold reserves.
	for _, prot := range w.Lending {
		if w.St.TokenBalance(w.WETH, prot.Addr) <= 0 {
			t.Error("lending reserves missing")
		}
	}
	// Compound offers no flash loans; Aave does.
	if _, err := w.Lending[2].FlashFee(100); err == nil {
		t.Error("Compound should not offer flash loans")
	}
	if _, err := w.Lending[1].FlashFee(100); err != nil {
		t.Error("AaveV2 should offer flash loans")
	}
}

func TestBuildDeterministic(t *testing.T) {
	w1, err := Build(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Build(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	uni1, _ := w1.Venues.ByName("UniswapV2")
	uni2, _ := w2.Venues.ByName("UniswapV2")
	p1, _ := uni1.Pool(w1.WETH, w1.Tokens[0])
	p2, _ := uni2.Pool(w2.WETH, w2.Tokens[0])
	ra1, rb1 := p1.Reserves(w1.St)
	ra2, rb2 := p2.Reserves(w2.St)
	if ra1 != ra2 || rb1 != rb2 {
		t.Error("same seed should give identical reserves")
	}
}
