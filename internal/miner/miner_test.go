package miner

import (
	"math/rand"
	"testing"
	"time"

	"mevscope/internal/dex"
	"mevscope/internal/evmlite"
	"mevscope/internal/flashbots"
	"mevscope/internal/mempool"
	"mevscope/internal/privpool"
	"mevscope/internal/state"
	"mevscope/internal/types"
)

func TestUsesFlashbots(t *testing.T) {
	m := &Miner{AdoptsFlashbots: 9}
	if m.UsesFlashbots(8) || !m.UsesFlashbots(9) || !m.UsesFlashbots(20) {
		t.Error("adoption month logic")
	}
	never := &Miner{AdoptsFlashbots: NeverAdopts}
	if never.UsesFlashbots(types.StudyMonths - 1) {
		t.Error("never-adopter")
	}
}

func TestSetPickProportional(t *testing.T) {
	a := &Miner{Name: "big", Addr: types.DeriveAddress("m", 1), Hashpower: 0.9}
	b := &Miner{Name: "small", Addr: types.DeriveAddress("m", 2), Hashpower: 0.1}
	s := NewSet([]*Miner{a, b})
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	for i := 0; i < 10_000; i++ {
		counts[s.Pick(rng).Name]++
	}
	if counts["big"] < 8_500 || counts["big"] > 9_500 {
		t.Errorf("big picked %d of 10000, want ≈ 9000", counts["big"])
	}
	if got, ok := s.ByAddr(a.Addr); !ok || got != a {
		t.Error("ByAddr")
	}
	if _, ok := s.ByAddr(types.DeriveAddress("m", 99)); ok {
		t.Error("ByAddr miss")
	}
	if NewSet(nil).Pick(rng) != nil {
		t.Error("empty set pick")
	}
}

func TestFlashbotsHashpower(t *testing.T) {
	a := &Miner{Hashpower: 3, AdoptsFlashbots: 9}
	b := &Miner{Hashpower: 1, AdoptsFlashbots: NeverAdopts}
	s := NewSet([]*Miner{a, b})
	if got := s.FlashbotsHashpower(8); got != 0 {
		t.Errorf("pre-adoption = %f", got)
	}
	if got := s.FlashbotsHashpower(10); got != 0.75 {
		t.Errorf("post-adoption = %f", got)
	}
}

func TestMainnetLikeSetShape(t *testing.T) {
	s := NewMainnetLikeSet(55, 42)
	if s.Len() != 55 {
		t.Fatal("size")
	}
	ms := s.Miners()
	if ms[0].Name != "Ethermine" || ms[1].Name != "F2Pool" {
		t.Error("head names")
	}
	// Head-heavy: top-2 should dwarf the tail median.
	if ms[0].Hashpower < 5*ms[30].Hashpower {
		t.Errorf("distribution not skewed: %f vs %f", ms[0].Hashpower, ms[30].Hashpower)
	}
	if ms[0].PayoutEvery == 0 || ms[1].PayoutEvery == 0 {
		t.Error("big pools should batch payouts")
	}
	// Deterministic per seed.
	s2 := NewMainnetLikeSet(55, 42)
	for i := range ms {
		if ms[i].Hashpower != s2.Miners()[i].Hashpower {
			t.Fatal("not deterministic")
		}
	}
}

// buildWorld wires a tiny executor world for block-building tests.
func buildWorld(t *testing.T) (*evmlite.Executor, *dex.Venue, types.Address, types.Address) {
	t.Helper()
	st := state.New()
	weth := st.RegisterToken("WETH", 18)
	dai := st.RegisterToken("DAI", 18)
	venues := dex.NewRegistry()
	uni := dex.NewVenue("Uni", 30)
	venues.Add(uni)
	lp := types.DeriveAddress("lp", 0)
	st.MintToken(weth, lp, 1_000*types.Ether)
	st.MintToken(dai, lp, 2_000_000*types.Ether)
	if err := uni.EnsurePool(weth, dai).AddLiquidity(st, lp, 1_000*types.Ether, 2_000_000*types.Ether); err != nil {
		t.Fatal(err)
	}
	ex := evmlite.New(evmlite.Env{State: st, Venues: venues, WETH: weth})
	return ex, uni, weth, dai
}

func fundTx(ex *evmlite.Executor, who types.Address, nonce uint64, price types.Amount) *types.Transaction {
	ex.Env.State.Mint(who, 10*types.Ether)
	return &types.Transaction{
		Nonce: nonce, From: who, To: who, Value: 0,
		GasLimit: evmlite.GasTransfer, GasPrice: price,
		Payload: types.Payload{Kind: types.TxTransfer, Amount: 1},
	}
}

func TestBuildOrdersBundlesFirst(t *testing.T) {
	ex, _, _, _ := buildWorld(t)
	coinbase := types.DeriveAddress("cb", 0)
	pool := mempool.New()

	alice := types.DeriveAddress("alice", 0)
	pub := fundTx(ex, alice, 1, 500*types.Gwei) // very high gas price
	pool.Add(pub)

	searcher := types.DeriveAddress("searcher", 0)
	bTx := fundTx(ex, searcher, 1, types.Gwei)
	bTx.CoinbaseTip = types.Ether
	bundle := &flashbots.Bundle{ID: 1, Searcher: searcher, Type: flashbots.TypeFlashbots, Txs: []*types.Transaction{bTx}}

	res := Build(ex, BuildInput{
		Number: 100, Time: time.Unix(0, 0), GasLimit: 15_000_000, Coinbase: coinbase,
		Bundles: []*flashbots.Bundle{bundle}, MaxBundles: 3, Public: pool,
	})
	blk := res.Block
	if len(blk.Txs) != 2 {
		t.Fatalf("txs = %d", len(blk.Txs))
	}
	if blk.Txs[0] != bTx {
		t.Error("bundle tx must lead the block despite lower gas price")
	}
	if blk.Txs[1] != pub {
		t.Error("public tx should follow")
	}
	if len(res.Included) != 1 || res.Included[0].Bundle != bundle {
		t.Error("included bundles")
	}
	if res.Included[0].Receipts[0].CoinbaseTransfer != types.Ether {
		t.Error("coinbase tip should be recorded")
	}
	if pool.Len() != 0 {
		t.Error("included public tx should leave the pool")
	}
	if ex.Env.State.Balance(coinbase) < BlockReward+types.Ether {
		t.Error("coinbase should earn reward + tip")
	}
	if blk.Hash().IsZero() {
		t.Error("block must be sealed")
	}
}

func TestBuildSkipsRevertingBundle(t *testing.T) {
	ex, uni, weth, dai := buildWorld(t)
	coinbase := types.DeriveAddress("cb", 0)
	searcher := types.DeriveAddress("searcher", 0)
	ex.Env.State.Mint(searcher, 10*types.Ether)
	// Impossible MinOut → revert → whole bundle dropped.
	ex.Env.State.MintToken(weth, searcher, 5*types.Ether)
	bad := &types.Transaction{
		From: searcher, GasLimit: evmlite.GasSwapBase + evmlite.GasSwapPerHop, GasPrice: types.Gwei,
		Payload: types.Payload{
			Kind:     types.TxSwap,
			Hops:     []types.SwapHop{{Venue: uni.Addr, TokenIn: weth, TokenOut: dai}},
			AmountIn: types.Ether, MinOut: 1 << 55,
		},
	}
	bundle := &flashbots.Bundle{ID: 1, Searcher: searcher, Txs: []*types.Transaction{bad}}
	balBefore := ex.Env.State.Balance(searcher)
	res := Build(ex, BuildInput{
		Number: 100, Time: time.Unix(0, 0), GasLimit: 15_000_000, Coinbase: coinbase,
		Bundles: []*flashbots.Bundle{bundle}, MaxBundles: 3,
	})
	if len(res.Block.Txs) != 0 || len(res.Included) != 0 {
		t.Error("reverting bundle must be dropped entirely")
	}
	if ex.Env.State.Balance(searcher) != balBefore {
		t.Error("dropped bundle must cost the searcher nothing")
	}
}

func TestBuildRespectsMaxBundles(t *testing.T) {
	ex, _, _, _ := buildWorld(t)
	coinbase := types.DeriveAddress("cb", 0)
	var bundles []*flashbots.Bundle
	for i := 0; i < 5; i++ {
		s := types.DeriveAddress("s", uint64(i))
		tx := fundTx(ex, s, 1, types.Gwei)
		bundles = append(bundles, &flashbots.Bundle{ID: uint64(i + 1), Searcher: s, Txs: []*types.Transaction{tx}})
	}
	res := Build(ex, BuildInput{
		Number: 100, Time: time.Unix(0, 0), GasLimit: 15_000_000, Coinbase: coinbase,
		Bundles: bundles, MaxBundles: 2,
	})
	if len(res.Included) != 2 {
		t.Errorf("included = %d, want 2", len(res.Included))
	}
}

func TestBuildRespectsGasLimit(t *testing.T) {
	ex, _, _, _ := buildWorld(t)
	coinbase := types.DeriveAddress("cb", 0)
	pool := mempool.New()
	for i := 0; i < 10; i++ {
		pool.Add(fundTx(ex, types.DeriveAddress("u", uint64(i)), 1, types.Gwei))
	}
	res := Build(ex, BuildInput{
		Number: 100, Time: time.Unix(0, 0), GasLimit: evmlite.GasTransfer * 3, Coinbase: coinbase,
		Public: pool,
	})
	if len(res.Block.Txs) != 3 {
		t.Errorf("txs = %d, want 3 (gas limit)", len(res.Block.Txs))
	}
	if res.Block.Header.GasUsed != evmlite.GasTransfer*3 {
		t.Error("header gas used")
	}
	if pool.Len() != 7 {
		t.Errorf("pool should keep overflow: %d", pool.Len())
	}
}

func TestBuildDirectPrivateTxs(t *testing.T) {
	ex, _, _, _ := buildWorld(t)
	coinbase := types.DeriveAddress("cb", 0)
	who := types.DeriveAddress("private", 0)
	ptx := fundTx(ex, who, 1, types.Gwei)
	res := Build(ex, BuildInput{
		Number: 100, Time: time.Unix(0, 0), GasLimit: 15_000_000, Coinbase: coinbase,
		Private: []privpool.Entry{{Txs: []*types.Transaction{ptx}}},
	})
	if len(res.Block.Txs) != 1 || res.Block.Txs[0] != ptx {
		t.Error("private tx should be included")
	}
	// Invalid private txs are dropped silently.
	broke := &types.Transaction{From: types.DeriveAddress("broke", 0), GasLimit: evmlite.GasTransfer, GasPrice: types.Gwei, Payload: types.Payload{Kind: types.TxTransfer, Amount: 1}}
	res2 := Build(ex, BuildInput{
		Number: 101, Time: time.Unix(0, 0), GasLimit: 15_000_000, Coinbase: coinbase,
		Private: []privpool.Entry{{Txs: []*types.Transaction{broke}}},
	})
	if len(res2.Block.Txs) != 0 {
		t.Error("unpayable private tx should be dropped")
	}
}

func TestBuildSeenFilter(t *testing.T) {
	ex, _, _, _ := buildWorld(t)
	coinbase := types.DeriveAddress("cb", 0)
	pool := mempool.New()
	dup := fundTx(ex, types.DeriveAddress("dup", 0), 1, types.Gwei)
	fresh := fundTx(ex, types.DeriveAddress("fresh", 0), 1, types.Gwei)
	pool.Add(dup)
	pool.Add(fresh)
	res := Build(ex, BuildInput{
		Number: 100, Time: time.Unix(0, 0), GasLimit: 15_000_000, Coinbase: coinbase,
		Public: pool,
		Seen:   func(h types.Hash) bool { return h == dup.Hash() },
	})
	if len(res.Block.Txs) != 1 || res.Block.Txs[0] != fresh {
		t.Error("seen tx must be excluded")
	}
	if pool.Contains(dup.Hash()) {
		t.Error("seen tx should be evicted from the pool")
	}
}
