// Package miner models Ethereum block producers: identities with skewed
// hashpower, proof-of-work proposer selection (weighted by hashpower), and
// block building — both the default fee-ordered strategy and the MEV-geth
// strategy that places Flashbots bundles at the top of the block.
package miner

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"mevscope/internal/evmlite"
	"mevscope/internal/flashbots"
	"mevscope/internal/mempool"
	"mevscope/internal/privpool"
	"mevscope/internal/types"
)

// NeverAdopts marks a miner that never joins Flashbots.
const NeverAdopts types.Month = 1 << 20

// BlockReward is the static coinbase subsidy minted per block (the 2 ETH
// post-Constantinople reward).
const BlockReward = 2 * types.Ether

// Miner is one block producer (a solo miner or a mining pool).
type Miner struct {
	Name string
	// Addr is the coinbase address blocks credit.
	Addr types.Address
	// Hashpower is the relative share of network hashrate.
	Hashpower float64
	// AdoptsFlashbots is the first month the miner runs MEV-geth;
	// NeverAdopts if it stays vanilla.
	AdoptsFlashbots types.Month
	// MaxBundles caps bundles merged per block once on MEV-geth
	// (MEV-geth v0.2+ allowed multiple bundles).
	MaxBundles int
	// PayoutEvery schedules mining-pool payout batches every n blocks the
	// miner produces; zero disables payouts.
	PayoutEvery int
	// PayoutWorkers is the size of the pool's payout batch.
	PayoutWorkers int

	// Produced counts blocks mined so far (set by the simulation driver).
	Produced uint64
}

// UsesFlashbots reports whether the miner runs MEV-geth in the given month.
func (m *Miner) UsesFlashbots(month types.Month) bool {
	return month >= m.AdoptsFlashbots
}

// Set is a weighted collection of miners supporting hashpower-proportional
// proposer selection.
type Set struct {
	miners []*Miner
	cum    []float64
	total  float64
}

// NewSet builds a selection set; miner order is preserved.
func NewSet(miners []*Miner) *Set {
	s := &Set{miners: miners, cum: make([]float64, len(miners))}
	for i, m := range miners {
		s.total += m.Hashpower
		s.cum[i] = s.total
	}
	return s
}

// Miners returns the underlying miner list.
func (s *Set) Miners() []*Miner { return s.miners }

// Len is the number of miners.
func (s *Set) Len() int { return len(s.miners) }

// Pick selects the next block proposer with probability proportional to
// hashpower — the estimator the paper inverts in §4.3.
func (s *Set) Pick(rng *rand.Rand) *Miner {
	if len(s.miners) == 0 {
		return nil
	}
	x := rng.Float64() * s.total
	i := sort.SearchFloat64s(s.cum, x)
	if i >= len(s.miners) {
		i = len(s.miners) - 1
	}
	return s.miners[i]
}

// FlashbotsHashpower sums the hashpower share of miners enrolled in
// Flashbots during the month.
func (s *Set) FlashbotsHashpower(month types.Month) float64 {
	if s.total == 0 {
		return 0
	}
	var fb float64
	for _, m := range s.miners {
		if m.UsesFlashbots(month) {
			fb += m.Hashpower
		}
	}
	return fb / s.total
}

// ByAddr finds a miner by coinbase address.
func (s *Set) ByAddr(a types.Address) (*Miner, bool) {
	for _, m := range s.miners {
		if m.Addr == a {
			return m, true
		}
	}
	return nil, false
}

// MainnetLikeNames are the large mining pools of the study period, used to
// label the head of the hashpower distribution.
var MainnetLikeNames = []string{
	"Ethermine", "F2Pool", "SparkPool", "Hiveon", "Flexpool",
	"2Miners", "Nanopool", "MiningPoolHub", "BeePool", "UUPool",
}

// NewMainnetLikeSet generates n miners with a long-tailed hashpower
// distribution resembling mainnet's (two pools dominating, consistent
// with the paper's §4.4 finding that >90% of Flashbots blocks come from a
// handful of miners).
func NewMainnetLikeSet(n int, seed int64) *Set {
	return NewSkewedSet(n, seed, 1.0)
}

// NewSkewedSet generates a miner set whose hashpower concentration is
// scaled relative to the mainnet-like baseline: skew 1.0 reproduces
// NewMainnetLikeSet, skew > 1 concentrates hashpower into the head of the
// distribution (the scenario-ensemble centralization counterfactual) and
// skew in (0, 1) flattens it. Non-positive skew falls back to 1.0.
func NewSkewedSet(n int, seed int64, skew float64) *Set {
	if skew <= 0 {
		skew = 1.0
	}
	rng := rand.New(rand.NewSource(seed))
	miners := make([]*Miner, n)
	for i := 0; i < n; i++ {
		name := ""
		if i < len(MainnetLikeNames) {
			name = MainnetLikeNames[i]
		} else {
			name = fmt.Sprintf("miner-%d", i)
		}
		// Zipf-ish decay with mild noise: share_i ∝ 1/(i+1)^(1.1*skew).
		w := 1.0 / math.Pow(float64(i+1), 1.1*skew)
		w *= 0.9 + 0.2*rng.Float64()
		miners[i] = &Miner{
			Name:            name,
			Addr:            types.DeriveAddress("miner:"+name, uint64(i)),
			Hashpower:       w,
			AdoptsFlashbots: NeverAdopts,
			MaxBundles:      6,
		}
	}
	// The biggest pools batch payouts like F2Pool in the paper's
	// 700-transaction bundle anecdote.
	miners[0].PayoutEvery, miners[0].PayoutWorkers = 25, 120
	miners[1].PayoutEvery, miners[1].PayoutWorkers = 22, 150
	for i := 2; i < 8 && i < n; i++ {
		miners[i].PayoutEvery = 25 + rng.Intn(20)
		miners[i].PayoutWorkers = 40 + rng.Intn(80)
	}
	return NewSet(miners)
}

// BuildInput carries everything a miner needs to assemble one block.
type BuildInput struct {
	Number   uint64
	Time     time.Time
	BaseFee  types.Amount
	GasLimit uint64
	Coinbase types.Address
	// Bundles are the relay's offers (already authorization-filtered),
	// best first; nil for vanilla miners.
	Bundles []*flashbots.Bundle
	// MaxBundles caps merged bundles; zero means no bundles.
	MaxBundles int
	// Private are direct private-pool entries for this miner; multi-
	// transaction entries are applied atomically like bundles.
	Private []privpool.Entry
	// Public is the public mempool; included transactions are removed.
	Public *mempool.Pool
	// PublicCap bounds how many public candidates are considered (the
	// mempool can be much larger than a block).
	PublicCap int
	// Seen filters out transactions already on chain (replay guard); nil
	// disables the check.
	Seen func(types.Hash) bool
}

// BuildResult is a sealed block plus the bundles that made it in.
type BuildResult struct {
	Block    *types.Block
	Included []flashbots.IncludedBundle
}

// Build assembles, executes and seals one block:
//
//  1. Flashbots bundles go first (atomic, skipped entirely if any
//     transaction fails — MEV-geth semantics),
//  2. then direct private transactions,
//  3. then public mempool transactions in descending bid order,
//
// all subject to the gas limit. The coinbase also receives the static
// block reward. Included public transactions are removed from the pool.
func Build(ex *evmlite.Executor, in BuildInput) BuildResult {
	ctx := evmlite.BlockCtx{Number: in.Number, BaseFee: in.BaseFee, Miner: in.Coinbase}
	blk := &types.Block{Header: types.Header{
		Number:  in.Number,
		Time:    in.Time,
		Miner:   in.Coinbase,
		BaseFee: in.BaseFee,
	}}
	var gasUsed uint64
	var included []flashbots.IncludedBundle

	inBlock := make(map[types.Hash]bool)
	seen := func(h types.Hash) bool {
		if inBlock[h] {
			return true
		}
		return in.Seen != nil && in.Seen(h)
	}
	anySeen := func(txs []*types.Transaction) bool {
		for _, tx := range txs {
			if seen(tx.Hash()) {
				return true
			}
		}
		return false
	}

	appendTx := func(tx *types.Transaction, rcpt *types.Receipt) {
		inBlock[tx.Hash()] = true
		rcpt.TxIndex = len(blk.Txs)
		blk.Txs = append(blk.Txs, tx)
		blk.Receipts = append(blk.Receipts, rcpt)
		gasUsed += rcpt.GasUsed
		if in.Public != nil {
			in.Public.Remove(tx.Hash())
		}
	}

	// 1. Bundles, best score first, one atomic simulation each.
	taken := 0
	for _, b := range in.Bundles {
		if taken >= in.MaxBundles {
			break
		}
		if gasUsed+b.GasTotal() > in.GasLimit || anySeen(b.Txs) {
			continue
		}
		receipts, ok := ex.ApplyBundle(ctx, b.Txs, len(blk.Txs))
		if !ok {
			continue
		}
		for i, tx := range b.Txs {
			appendTx(tx, receipts[i])
		}
		included = append(included, flashbots.IncludedBundle{Bundle: b, Receipts: receipts})
		taken++
	}

	// 2. Direct private entries (atomic when multi-transaction).
	for _, e := range in.Private {
		var total uint64
		for _, tx := range e.Txs {
			total += tx.GasLimit
		}
		if gasUsed+total > in.GasLimit || anySeen(e.Txs) {
			continue
		}
		receipts, ok := ex.ApplyBundle(ctx, e.Txs, len(blk.Txs))
		if !ok {
			continue // invalid or reverting: silently dropped
		}
		for i, tx := range e.Txs {
			appendTx(tx, receipts[i])
		}
	}

	// 3. Public transactions by descending bid.
	if in.Public != nil {
		limit := in.PublicCap
		if limit <= 0 {
			limit = 4096
		}
		for _, tx := range in.Public.Best(limit) {
			if gasUsed+tx.GasLimit > in.GasLimit {
				continue
			}
			if seen(tx.Hash()) {
				in.Public.Remove(tx.Hash())
				continue
			}
			rcpt, err := ex.Apply(ctx, tx, len(blk.Txs))
			if err != nil {
				in.Public.Remove(tx.Hash()) // unpayable: evict
				continue
			}
			appendTx(tx, rcpt)
		}
	}

	ex.Env.State.Mint(in.Coinbase, BlockReward)
	blk.Header.GasUsed = gasUsed
	blk.Header.GasLimit = in.GasLimit
	blk.Seal()
	return BuildResult{Block: blk, Included: included}
}
