// Package agents implements the behavioural actors of the simulation:
// ordinary traders whose swaps create MEV opportunities, and the three
// searcher species the paper measures — sandwichers, arbitrageurs and
// liquidators — each with passive and proactive strategies (§2.2.2) and a
// choice of submission channel (public gas auction, Flashbots bundle, or
// another private pool).
//
// Plans are sized by exact forward simulation against a state snapshot:
// the same "simulate against your node, then submit" loop real MEV bots
// run.
package agents

import (
	"math/rand"

	"mevscope/internal/dex"
	"mevscope/internal/evmlite"
	"mevscope/internal/lending"
	"mevscope/internal/state"
	"mevscope/internal/types"
)

// Channel is a transaction submission path.
type Channel uint8

// Submission channels.
const (
	// ChannelPublic gossips through the p2p network (and competes in
	// priority gas auctions).
	ChannelPublic Channel = iota
	// ChannelFlashbots submits a bundle to the Flashbots relay.
	ChannelFlashbots
	// ChannelPrivate submits directly to a non-Flashbots private pool.
	ChannelPrivate
)

// String names the channel.
func (c Channel) String() string {
	switch c {
	case ChannelPublic:
		return "public"
	case ChannelFlashbots:
		return "flashbots"
	case ChannelPrivate:
		return "private"
	default:
		return "unknown"
	}
}

// World bundles the handles agents need to observe and act on the chain
// state.
type World struct {
	Ex      *evmlite.Executor
	St      *state.State
	Venues  *dex.Registry
	Lending *lending.Registry
	Oracle  *lending.Oracle
	WETH    types.Address
	// Tokens are the non-WETH trading tokens; every venue quotes
	// TOKEN/WETH pools.
	Tokens []types.Address
}

// Account is a transacting identity with a nonce counter.
type Account struct {
	Addr  types.Address
	nonce uint64
}

// NewAccount derives a deterministic account.
func NewAccount(namespace string, index uint64) *Account {
	return &Account{Addr: types.DeriveAddress(namespace, index)}
}

// NextNonce returns and consumes the next nonce.
func (a *Account) NextNonce() uint64 {
	n := a.nonce
	a.nonce++
	return n
}

// SkipNonces advances the counter by n, carving out a disjoint nonce range
// when two planners share one address.
func (a *Account) SkipNonces(n uint64) { a.nonce += n }

// GasPricing carries the fee fields appropriate to the current fork.
type GasPricing struct {
	// London switches from GasPrice to FeeCap/TipCap.
	London  bool
	BaseFee types.Amount
	// Price is the legacy gas price, or the priority fee post-London.
	Price types.Amount
}

// Apply writes the fee fields onto a transaction.
func (g GasPricing) Apply(tx *types.Transaction) {
	if g.London {
		tx.TipCap = g.Price
		tx.FeeCap = g.BaseFee*2 + g.Price
	} else {
		tx.GasPrice = g.Price
	}
}

// Trader is a regular user producing exchange traffic.
type Trader struct {
	Account
}

// NewTrader creates trader number i.
func NewTrader(i uint64) *Trader {
	return &Trader{Account: *NewAccount("trader", i)}
}

// SwapTx builds a single-hop swap of sizeWETH into (or out of) a random
// token on a random venue. Buys and sells are balanced so aggregate pool
// flow stays neutral; only WETH→token buys are sandwichable.
func (t *Trader) SwapTx(w *World, rng *rand.Rand, sizeWETH types.Amount, slippageBps int, gas GasPricing) *types.Transaction {
	venues := w.Venues.Venues()
	v := venues[rng.Intn(len(venues))]
	token := w.Tokens[rng.Intn(len(w.Tokens))]
	buy := rng.Intn(2) == 0

	pool0, ok0 := v.Pool(w.WETH, token)
	if ok0 {
		// Traders size orders to the venue's depth: single swaps beyond
		// ~0.4 % of the reserve get routed elsewhere in reality.
		if maxSize := pool0.Reserve(w.St, w.WETH) / 260; sizeWETH > maxSize && maxSize > 0 {
			sizeWETH = maxSize
		}
	}
	var hop types.SwapHop
	var amountIn types.Amount
	if buy {
		hop = types.SwapHop{Venue: v.Addr, TokenIn: w.WETH, TokenOut: token}
		amountIn = sizeWETH
	} else {
		hop = types.SwapHop{Venue: v.Addr, TokenIn: token, TokenOut: w.WETH}
		// Convert the WETH-denominated size into token units at spot.
		pool, ok := v.Pool(w.WETH, token)
		if !ok {
			return nil
		}
		price := pool.SpotPrice(w.St, w.WETH) // token per WETH
		if price <= 0 {
			return nil
		}
		amountIn = types.Amount(float64(sizeWETH) * price)
	}
	if amountIn <= 0 {
		return nil
	}
	var minOut types.Amount
	if slippageBps > 0 {
		if quote, err := w.Ex.QuotePath([]types.SwapHop{hop}, amountIn); err == nil {
			minOut = quote.MulDiv(types.Amount(10000-slippageBps), 10000)
		}
	}
	tx := &types.Transaction{
		Nonce: t.NextNonce(), From: t.Addr,
		GasLimit: evmlite.GasSwapBase + evmlite.GasSwapPerHop,
		Payload: types.Payload{
			Kind: types.TxSwap, Hops: []types.SwapHop{hop},
			AmountIn: amountIn, MinOut: minOut,
		},
	}
	gas.Apply(tx)
	return tx
}

// Searcher is an MEV extractor identity with trading capital.
type Searcher struct {
	Account
	// Skill scales how well the searcher sizes attacks (0..1].
	Skill float64
}

// NewSearcher creates searcher number i.
func NewSearcher(i uint64, skill float64) *Searcher {
	return &Searcher{Account: *NewAccount("searcher", i), Skill: skill}
}

// NewSearcherAt creates a searcher bound to an existing address — how the
// simulation models miners extracting MEV from their own coinbase account.
func NewSearcherAt(addr types.Address, skill float64) *Searcher {
	return &Searcher{Account: Account{Addr: addr}, Skill: skill}
}

// Fund seeds the searcher with gas ether, WETH capital and token floats.
func (s *Searcher) Fund(w *World, gasEth, capitalWETH types.Amount) {
	w.St.Mint(s.Addr, gasEth)
	if capitalWETH > 0 {
		mustMintToken(w.St, w.WETH, s.Addr, capitalWETH)
	}
	for _, tok := range w.Tokens {
		mustMintToken(w.St, tok, s.Addr, 200_000*types.Ether)
	}
}

func mustMintToken(st *state.State, token, holder types.Address, amt types.Amount) {
	if err := st.MintToken(token, holder, amt); err != nil {
		panic("agents: " + err.Error())
	}
}

// SandwichPlan is a sized sandwich attack against one pending victim swap.
type SandwichPlan struct {
	Victim *types.Transaction
	// Venue and tokens of the victim's swap.
	Venue    types.Address
	TokenIn  types.Address // WETH
	TokenOut types.Address
	// AttackIn is the WETH the attacker commits in the frontrun.
	AttackIn types.Amount
	// ExpectedGross is the simulated WETH profit before fees and tips.
	ExpectedGross types.Amount
}

// VictimSwap extracts the sandwichable shape from a pending transaction:
// a single-hop WETH→token buy. Returns ok=false otherwise.
func VictimSwap(w *World, tx *types.Transaction) (types.SwapHop, types.Amount, bool) {
	p := &tx.Payload
	if p.Kind != types.TxSwap || len(p.Hops) != 1 {
		return types.SwapHop{}, 0, false
	}
	hop := p.Hops[0]
	if hop.TokenIn != w.WETH {
		return types.SwapHop{}, 0, false
	}
	return hop, p.AmountIn, true
}

// PlanSandwich sizes a sandwich against the victim by simulating
// front-victim-back against a snapshot, trying several attack sizes and
// keeping the best. ok is false when no profitable size exists or the
// victim is not sandwichable.
func (s *Searcher) PlanSandwich(w *World, victim *types.Transaction) (SandwichPlan, bool) {
	hop, victimIn, ok := VictimSwap(w, victim)
	if !ok {
		return SandwichPlan{}, false
	}
	venue, ok := w.Venues.ByAddr(hop.Venue)
	if !ok {
		return SandwichPlan{}, false
	}
	pool, ok := venue.Pool(hop.TokenIn, hop.TokenOut)
	if !ok {
		return SandwichPlan{}, false
	}
	capital := w.St.TokenBalance(w.WETH, s.Addr)

	candidates := []types.Amount{victimIn / 4, victimIn / 2, victimIn, victimIn * 2}
	best := SandwichPlan{
		Victim: victim, Venue: hop.Venue,
		TokenIn: hop.TokenIn, TokenOut: hop.TokenOut,
	}
	found := false
	for _, x := range candidates {
		x = types.Amount(float64(x) * s.Skill)
		if x <= 0 || x > capital {
			continue
		}
		gross, ok := simulateSandwich(w, pool, s.Addr, victim, x)
		if !ok {
			continue
		}
		if gross > best.ExpectedGross {
			best.AttackIn = x
			best.ExpectedGross = gross
			found = true
		}
	}
	return best, found
}

// simulateSandwich plays front(x) → victim → back on a snapshot and
// returns the attacker's WETH delta. The victim's own slippage guard is
// honoured: if the victim swap would revert the sandwich is infeasible.
func simulateSandwich(w *World, pool *dex.Pool, attacker types.Address, victim *types.Transaction, x types.Amount) (types.Amount, bool) {
	st := w.St
	st.Snapshot()
	defer st.Revert()

	front, err := pool.Swap(st, attacker, w.WETH, x, 0)
	if err != nil {
		return 0, false
	}
	vp := &victim.Payload
	if _, err := pool.Swap(st, victim.From, w.WETH, vp.AmountIn, vp.MinOut); err != nil {
		return 0, false
	}
	back, err := pool.Swap(st, attacker, front.TokenOut, front.AmountOut, 0)
	if err != nil {
		return 0, false
	}
	return back.AmountOut - x, true
}

// SandwichTxs materializes the plan into front and back transactions.
// The front outbids the victim's effective price by margin; the back
// undercuts it so default fee ordering places it after the victim —
// exactly the Torres et al. heuristic detectors look for. tipTotal (paid
// via coinbase transfer, Flashbots-style) is attached to the back
// transaction.
func (s *Searcher) SandwichTxs(w *World, plan SandwichPlan, gas GasPricing, margin types.Amount, tipTotal types.Amount) (front, back *types.Transaction) {
	victimPrice := plan.Victim.EffectiveGasPrice(gas.BaseFee)
	frontGas := gas
	frontGas.Price = victimPrice + margin - gas.BaseFee
	if !gas.London {
		frontGas.Price = victimPrice + margin
	}
	backGas := gas
	backGas.Price = victimPrice - margin - gas.BaseFee
	if !gas.London {
		backGas.Price = victimPrice - margin
	}
	if backGas.Price < 1 {
		backGas.Price = 1
	}
	front = &types.Transaction{
		Nonce: s.NextNonce(), From: s.Addr,
		GasLimit: evmlite.GasSwapBase + evmlite.GasSwapPerHop,
		Payload: types.Payload{
			Kind:     types.TxSwap,
			Hops:     []types.SwapHop{{Venue: plan.Venue, TokenIn: plan.TokenIn, TokenOut: plan.TokenOut}},
			AmountIn: plan.AttackIn,
		},
	}
	frontGas.Apply(front)
	back = &types.Transaction{
		Nonce: s.NextNonce(), From: s.Addr,
		GasLimit:    evmlite.GasSwapBase + evmlite.GasSwapPerHop,
		CoinbaseTip: tipTotal,
		Payload: types.Payload{
			Kind: types.TxSwap,
			Hops: []types.SwapHop{{Venue: plan.Venue, TokenIn: plan.TokenOut, TokenOut: plan.TokenIn}},
			// Sell-everything marker: the executor swaps AmountIn exactly,
			// so the planner precomputes the holding via simulation.
			AmountIn: s.frontOutput(w, plan),
		},
	}
	backGas.Apply(back)
	return front, back
}

// frontOutput simulates just the frontrun to learn how many tokens the
// back transaction must sell.
func (s *Searcher) frontOutput(w *World, plan SandwichPlan) types.Amount {
	venue, _ := w.Venues.ByAddr(plan.Venue)
	pool, _ := venue.Pool(plan.TokenIn, plan.TokenOut)
	out, err := pool.AmountOut(w.St, plan.TokenIn, plan.AttackIn)
	if err != nil {
		return 0
	}
	return out
}

// ArbPlan is a sized cross-venue arbitrage loop starting and ending in
// WETH.
type ArbPlan struct {
	Hops          []types.SwapHop
	AmountIn      types.Amount
	ExpectedGross types.Amount
}

// FindArbPlans scans every token across venue pairs for closed-loop price
// gaps and returns profitable plans, best first, at most maxPlans. This is
// the passive strategy; the proactive "copy a pending arb with a higher
// fee" strategy is CopyArb.
func FindArbPlans(w *World, maxPlans int, capital types.Amount) []ArbPlan {
	var plans []ArbPlan
	venues := w.Venues.Venues()
	for _, token := range w.Tokens {
		for i, va := range venues {
			pa, ok := va.Pool(w.WETH, token)
			if !ok {
				continue
			}
			for j, vb := range venues {
				if i == j {
					continue
				}
				pb, ok := vb.Pool(w.WETH, token)
				if !ok {
					continue
				}
				// Cheap pre-filter on spot prices before exact sizing.
				buyPrice := pa.SpotPrice(w.St, w.WETH) // token per WETH on A
				sellPrice := pb.SpotPrice(w.St, token) // WETH per token on B
				if buyPrice <= 0 || sellPrice <= 0 || buyPrice*sellPrice <= 1.008 {
					continue
				}
				plan, ok := sizeArb(w, va.Addr, vb.Addr, token, capital)
				if ok {
					plans = append(plans, plan)
				}
			}
		}
	}
	// Insertion sort by gross (plans lists are tiny).
	for i := 1; i < len(plans); i++ {
		for j := i; j > 0 && plans[j].ExpectedGross > plans[j-1].ExpectedGross; j-- {
			plans[j], plans[j-1] = plans[j-1], plans[j]
		}
	}
	if len(plans) > maxPlans {
		plans = plans[:maxPlans]
	}
	return plans
}

func sizeArb(w *World, venueA, venueB types.Address, token types.Address, capital types.Amount) (ArbPlan, bool) {
	hops := []types.SwapHop{
		{Venue: venueA, TokenIn: w.WETH, TokenOut: token},
		{Venue: venueB, TokenIn: token, TokenOut: w.WETH},
	}
	best := ArbPlan{Hops: hops}
	found := false
	for _, x := range []types.Amount{types.Ether, 4 * types.Ether, 12 * types.Ether, 30 * types.Ether} {
		if x > capital {
			break
		}
		out, err := w.Ex.QuotePath(hops, x)
		if err != nil {
			continue
		}
		gross := out - x
		if gross > best.ExpectedGross {
			best.AmountIn, best.ExpectedGross = x, gross
			found = true
		}
	}
	return best, found
}

// ArbTx materializes an arbitrage plan. With useFlashLoan the capital is
// borrowed from protocol inside the same transaction (Wang et al.'s
// flash-loan pattern), so only gas money is needed.
func (s *Searcher) ArbTx(w *World, plan ArbPlan, gas GasPricing, tip types.Amount, useFlashLoan bool, protocol types.Address) *types.Transaction {
	tx := &types.Transaction{
		Nonce: s.NextNonce(), From: s.Addr,
		CoinbaseTip: tip,
	}
	inner := types.Payload{
		Kind: types.TxMultiSwap, Hops: plan.Hops,
		AmountIn: plan.AmountIn, MinOut: plan.AmountIn, // revert if unprofitable
	}
	if useFlashLoan {
		tx.Payload = types.Payload{
			Kind:        types.TxFlashLoan,
			Protocol:    protocol,
			FlashToken:  plan.Hops[0].TokenIn,
			FlashAmount: plan.AmountIn,
			Inner:       &inner,
		}
	} else {
		tx.Payload = inner
	}
	tx.GasLimit = evmlite.GasFor(&tx.Payload)
	gas.Apply(tx)
	return tx
}

// CopyArb implements the proactive strategy of §2.2.2: duplicate a pending
// arbitrage transaction and outbid its fee so the copy frontruns the
// original.
func (s *Searcher) CopyArb(pending *types.Transaction, gas GasPricing, margin types.Amount) (*types.Transaction, bool) {
	p := pending.Payload
	if p.Kind != types.TxMultiSwap || len(p.Hops) < 2 {
		return nil, false
	}
	gas.Price = pending.EffectiveGasPrice(gas.BaseFee) + margin - gas.BaseFee
	if !gas.London {
		gas.Price = pending.EffectiveGasPrice(0) + margin
	}
	tx := &types.Transaction{
		Nonce: s.NextNonce(), From: s.Addr,
		GasLimit: pending.GasLimit,
		Payload:  p, // identical action, different submitter
	}
	gas.Apply(tx)
	return tx, true
}

// LiqPlan is a sized liquidation opportunity.
type LiqPlan struct {
	Protocol      types.Address
	LoanID        uint64
	Repay         types.Amount
	DebtToken     types.Address
	ExpectedGross types.Amount // ETH value of spread at oracle prices
}

// FindLiquidations scans all lending protocols for unhealthy loans — the
// passive strategy of §2.2.2 — returning sized plans, best first.
func FindLiquidations(w *World) []LiqPlan {
	var plans []LiqPlan
	for _, prot := range w.Lending.Protocols() {
		for _, id := range prot.LiquidatableLoans() {
			loan, ok := prot.Loan(id)
			if !ok {
				continue
			}
			repay, err := prot.MaxRepay(id)
			if err != nil || repay <= 0 {
				continue
			}
			repayVal, err := w.Oracle.Value(loan.DebtToken, repay)
			if err != nil {
				continue
			}
			gross := repayVal.MulDiv(types.Amount(prot.LiqBonusBps), 10000)
			plans = append(plans, LiqPlan{
				Protocol: prot.Addr, LoanID: id, Repay: repay,
				DebtToken: loan.DebtToken, ExpectedGross: gross,
			})
		}
	}
	for i := 1; i < len(plans); i++ {
		for j := i; j > 0 && plans[j].ExpectedGross > plans[j-1].ExpectedGross; j-- {
			plans[j], plans[j-1] = plans[j-1], plans[j]
		}
	}
	return plans
}

// LiqTx materializes a liquidation plan, optionally flash-borrowing the
// repay amount.
func (s *Searcher) LiqTx(plan LiqPlan, gas GasPricing, tip types.Amount, useFlashLoan bool, flashProtocol types.Address) *types.Transaction {
	tx := &types.Transaction{
		Nonce: s.NextNonce(), From: s.Addr,
		CoinbaseTip: tip,
	}
	inner := types.Payload{
		Kind: types.TxLiquidate, Protocol: plan.Protocol,
		LoanID: plan.LoanID, Repay: plan.Repay,
	}
	if useFlashLoan {
		tx.Payload = types.Payload{
			Kind:        types.TxFlashLoan,
			Protocol:    flashProtocol,
			FlashToken:  plan.DebtToken,
			FlashAmount: plan.Repay,
			Inner:       &inner,
		}
	} else {
		tx.Payload = inner
	}
	tx.GasLimit = evmlite.GasFor(&tx.Payload)
	gas.Apply(tx)
	return tx
}

// Borrower opens loans that later become liquidation fodder.
type Borrower struct {
	Account
}

// NewBorrower creates borrower number i.
func NewBorrower(i uint64) *Borrower {
	return &Borrower{Account: *NewAccount("borrower", i)}
}

// OpenRiskyLoan opens a loan close to the liquidation threshold so modest
// oracle moves make it unhealthy. Collateral is WETH, debt a random token.
func (b *Borrower) OpenRiskyLoan(w *World, rng *rand.Rand, prot *lending.Protocol, collWETH types.Amount) (*lending.Loan, error) {
	token := w.Tokens[rng.Intn(len(w.Tokens))]
	mustMintToken(w.St, w.WETH, b.Addr, collWETH)
	collVal, err := w.Oracle.Value(w.WETH, collWETH)
	if err != nil {
		return nil, err
	}
	// Borrow at ~92% of the liquidation threshold.
	debtVal := collVal.MulDiv(types.Amount(prot.LiqThresholdBps), 10000).MulDiv(92, 100)
	price, ok := w.Oracle.Price(token)
	if !ok || price == 0 {
		return nil, lending.ErrNoPrice
	}
	debtAmt := debtVal.MulDiv(types.Ether, price)
	return prot.OpenLoan(w.St, b.Addr, w.WETH, collWETH, token, debtAmt)
}
