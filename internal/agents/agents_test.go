package agents_test

import (
	"math/rand"
	"testing"

	"mevscope/internal/agents"
	"mevscope/internal/evmlite"
	"mevscope/internal/genesis"
	"mevscope/internal/types"
)

func newWorld(t *testing.T) *genesis.World {
	t.Helper()
	w, err := genesis.Build(genesis.DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestChannelString(t *testing.T) {
	if agents.ChannelPublic.String() != "public" || agents.ChannelFlashbots.String() != "flashbots" || agents.ChannelPrivate.String() != "private" {
		t.Error("names")
	}
	if agents.Channel(9).String() != "unknown" {
		t.Error("unknown")
	}
}

func TestAccountNonces(t *testing.T) {
	a := agents.NewAccount("x", 1)
	if a.NextNonce() != 0 || a.NextNonce() != 1 || a.NextNonce() != 2 {
		t.Error("nonce sequence")
	}
}

func TestTraderSwapTx(t *testing.T) {
	w := newWorld(t)
	rng := rand.New(rand.NewSource(1))
	tr := agents.NewTrader(1)
	w.St.Mint(tr.Addr, 100*types.Ether)
	w.St.MintToken(w.WETH, tr.Addr, 100*types.Ether)
	gas := agents.GasPricing{Price: 50 * types.Gwei}
	for i := 0; i < 20; i++ {
		tx := tr.SwapTx(&w.World, rng, 2*types.Ether, 100, gas)
		if tx == nil {
			t.Fatal("nil swap")
		}
		if tx.Payload.Kind != types.TxSwap || len(tx.Payload.Hops) != 1 {
			t.Fatal("shape")
		}
		if tx.GasPrice != 50*types.Gwei {
			t.Fatal("legacy pricing")
		}
		if tx.Payload.MinOut <= 0 {
			t.Fatal("slippage guard should be set")
		}
	}
	// Post-London pricing.
	lTx := tr.SwapTx(&w.World, rng, types.Ether, 0, agents.GasPricing{London: true, BaseFee: 30 * types.Gwei, Price: 2 * types.Gwei})
	if lTx.TipCap != 2*types.Gwei || lTx.FeeCap != 62*types.Gwei || lTx.GasPrice != 0 {
		t.Errorf("london pricing: tip=%v cap=%v", lTx.TipCap, lTx.FeeCap)
	}
}

func TestPlanSandwichProfitable(t *testing.T) {
	w := newWorld(t)
	s := agents.NewSearcher(1, 1.0)
	s.Fund(&w.World, 10*types.Ether, 500*types.Ether)

	victimAddr := types.DeriveAddress("victim", 7)
	w.St.MintToken(w.WETH, victimAddr, 1000*types.Ether)
	w.St.Mint(victimAddr, 10*types.Ether)

	// A large buy on a thin pool is sandwichable: Bancor carries the
	// shallowest SUSHI liquidity in the default world.
	bancor, _ := w.Venues.ByName("Bancor")
	sushi, _ := w.St.TokenBySymbol("SUSHI")
	victim := &types.Transaction{
		From: victimAddr, GasPrice: 60 * types.Gwei,
		GasLimit: 200_000,
		Payload: types.Payload{
			Kind:     types.TxSwap,
			Hops:     []types.SwapHop{{Venue: bancor.Addr, TokenIn: w.WETH, TokenOut: sushi}},
			AmountIn: 100 * types.Ether,
		},
	}
	plan, ok := s.PlanSandwich(&w.World, victim)
	if !ok {
		t.Fatal("large buy should be sandwichable")
	}
	if plan.ExpectedGross <= 0 {
		t.Fatalf("gross = %v", plan.ExpectedGross)
	}
	if plan.AttackIn <= 0 || plan.AttackIn > 500*types.Ether {
		t.Fatalf("attack size = %v", plan.AttackIn)
	}

	// Execute front → victim → back for real and verify realized ≈ planned.
	front, back := s.SandwichTxs(&w.World, plan, agents.GasPricing{Price: 60 * types.Gwei}, types.Gwei, 0)
	if front.GasPrice <= victim.GasPrice {
		t.Error("front must outbid the victim")
	}
	if back.GasPrice >= victim.GasPrice {
		t.Error("back must underbid the victim")
	}
	before := w.St.TokenBalance(w.WETH, s.Addr)
	ctx := evmlite.BlockCtx{Number: 1, Miner: types.DeriveAddress("m", 0)}
	for i, tx := range []*types.Transaction{front, victim, back} {
		rcpt, err := w.Ex.Apply(ctx, tx, i)
		if err != nil || rcpt.Status != types.StatusSuccess {
			t.Fatalf("tx %d: %+v %v", i, rcpt, err)
		}
	}
	realized := w.St.TokenBalance(w.WETH, s.Addr) - before
	if realized <= 0 {
		t.Fatalf("realized = %v", realized)
	}
	diff := (realized - plan.ExpectedGross).Abs()
	if diff > plan.ExpectedGross/10 {
		t.Errorf("plan %v vs realized %v", plan.ExpectedGross, realized)
	}
}

func TestPlanSandwichRejectsNonVictims(t *testing.T) {
	w := newWorld(t)
	s := agents.NewSearcher(1, 1.0)
	s.Fund(&w.World, types.Ether, 100*types.Ether)
	// Token→WETH sells are not the heuristic's victim shape.
	sell := &types.Transaction{Payload: types.Payload{
		Kind: types.TxSwap, AmountIn: types.Ether,
		Hops: []types.SwapHop{{Venue: w.Venues.Venues()[0].Addr, TokenIn: w.Tokens[0], TokenOut: w.WETH}},
	}}
	if _, ok := s.PlanSandwich(&w.World, sell); ok {
		t.Error("sells should not be sandwichable")
	}
	transfer := &types.Transaction{Payload: types.Payload{Kind: types.TxTransfer}}
	if _, ok := s.PlanSandwich(&w.World, transfer); ok {
		t.Error("transfers should not be sandwichable")
	}
	// Tiny victim: not profitable.
	tiny := &types.Transaction{Payload: types.Payload{
		Kind: types.TxSwap, AmountIn: types.Gwei,
		Hops: []types.SwapHop{{Venue: w.Venues.Venues()[0].Addr, TokenIn: w.WETH, TokenOut: w.Tokens[0]}},
	}}
	if _, ok := s.PlanSandwich(&w.World, tiny); ok {
		t.Error("dust should not be profitable")
	}
}

func TestVictimSlippageGuardBlocksSandwich(t *testing.T) {
	w := newWorld(t)
	s := agents.NewSearcher(1, 1.0)
	s.Fund(&w.World, types.Ether, 1000*types.Ether)
	venue := w.Venues.Venues()[0]
	hop := types.SwapHop{Venue: venue.Addr, TokenIn: w.WETH, TokenOut: w.Tokens[0]}
	quote, err := w.Ex.QuotePath([]types.SwapHop{hop}, 50*types.Ether)
	if err != nil {
		t.Fatal(err)
	}
	// Victim demands ≥ 99.9% of current quote: any meaningful frontrun
	// pushes it below MinOut.
	victim := &types.Transaction{
		From: types.DeriveAddress("victim", 1),
		Payload: types.Payload{
			Kind: types.TxSwap, Hops: []types.SwapHop{hop},
			AmountIn: 50 * types.Ether, MinOut: quote.MulDiv(9990, 10000),
		},
	}
	w.St.MintToken(w.WETH, victim.From, 100*types.Ether)
	if _, ok := s.PlanSandwich(&w.World, victim); ok {
		t.Error("tight slippage should block the sandwich")
	}
}

func TestFindArbPlans(t *testing.T) {
	w := newWorld(t)
	// No gap initially (within fee threshold) on fresh pools.
	if plans := agents.FindArbPlans(&w.World, 5, 1000*types.Ether); len(plans) != 0 {
		t.Errorf("fresh world should have no arb: %d", len(plans))
	}
	// Whale trade skews one venue.
	whale := types.DeriveAddress("whale", 0)
	w.St.MintToken(w.WETH, whale, 3_000*types.Ether)
	uni, _ := w.Venues.ByName("UniswapV2")
	pool, _ := uni.Pool(w.WETH, w.Tokens[0])
	if _, err := pool.Swap(w.St, whale, w.WETH, 2_000*types.Ether, 0); err != nil {
		t.Fatal(err)
	}
	plans := agents.FindArbPlans(&w.World, 5, 1000*types.Ether)
	if len(plans) == 0 {
		t.Fatal("whale trade should open an arb")
	}
	if plans[0].ExpectedGross <= 0 {
		t.Error("plan gross")
	}
	// Best first.
	for i := 1; i < len(plans); i++ {
		if plans[i].ExpectedGross > plans[i-1].ExpectedGross {
			t.Error("plans not sorted")
		}
	}
	// Execute the best plan.
	s := agents.NewSearcher(2, 1.0)
	s.Fund(&w.World, 10*types.Ether, 1000*types.Ether)
	tx := s.ArbTx(&w.World, plans[0], agents.GasPricing{Price: 30 * types.Gwei}, 0, false, types.Address{})
	before := w.St.TokenBalance(w.WETH, s.Addr)
	rcpt, err := w.Ex.Apply(evmlite.BlockCtx{Number: 1, Miner: types.DeriveAddress("m", 0)}, tx, 0)
	if err != nil || rcpt.Status != types.StatusSuccess {
		t.Fatalf("arb apply: %+v %v", rcpt, err)
	}
	if w.St.TokenBalance(w.WETH, s.Addr) <= before {
		t.Error("arb should profit")
	}
}

func TestArbTxFlashLoan(t *testing.T) {
	w := newWorld(t)
	whale := types.DeriveAddress("whale", 0)
	w.St.MintToken(w.WETH, whale, 3_000*types.Ether)
	uni, _ := w.Venues.ByName("UniswapV2")
	pool, _ := uni.Pool(w.WETH, w.Tokens[0])
	if _, err := pool.Swap(w.St, whale, w.WETH, 2_000*types.Ether, 0); err != nil {
		t.Fatal(err)
	}
	plans := agents.FindArbPlans(&w.World, 1, 1000*types.Ether)
	if len(plans) == 0 {
		t.Fatal("no arb")
	}
	s := agents.NewSearcher(3, 1.0)
	w.St.Mint(s.Addr, 10*types.Ether) // gas only, no capital
	aave := w.Lending[1]
	tx := s.ArbTx(&w.World, plans[0], agents.GasPricing{Price: 30 * types.Gwei}, 0, true, aave.Addr)
	if tx.Payload.Kind != types.TxFlashLoan {
		t.Fatal("should wrap in flash loan")
	}
	rcpt, err := w.Ex.Apply(evmlite.BlockCtx{Number: 1, Miner: types.DeriveAddress("m", 0)}, tx, 0)
	if err != nil || rcpt.Status != types.StatusSuccess {
		t.Fatalf("flash arb: %+v %v", rcpt, err)
	}
	if w.St.TokenBalance(w.WETH, s.Addr) <= 0 {
		t.Error("flash arb should leave profit")
	}
}

func TestCopyArb(t *testing.T) {
	w := newWorld(t)
	orig := &types.Transaction{
		From: types.DeriveAddress("orig", 0), GasPrice: 40 * types.Gwei, GasLimit: 300_000,
		Payload: types.Payload{Kind: types.TxMultiSwap, AmountIn: types.Ether, Hops: []types.SwapHop{
			{Venue: w.Venues.Venues()[0].Addr, TokenIn: w.WETH, TokenOut: w.Tokens[0]},
			{Venue: w.Venues.Venues()[1].Addr, TokenIn: w.Tokens[0], TokenOut: w.WETH},
		}},
	}
	s := agents.NewSearcher(4, 1.0)
	cp, ok := s.CopyArb(orig, agents.GasPricing{}, 5*types.Gwei)
	if !ok {
		t.Fatal("copy should work")
	}
	if cp.GasPrice != 45*types.Gwei {
		t.Errorf("copy price = %v", cp.GasPrice)
	}
	if cp.From != s.Addr || cp.Payload.AmountIn != orig.Payload.AmountIn {
		t.Error("copy contents")
	}
	if _, ok := s.CopyArb(&types.Transaction{Payload: types.Payload{Kind: types.TxTransfer}}, agents.GasPricing{}, 1); ok {
		t.Error("non-arb should not be copyable")
	}
}

func TestFindLiquidationsAndExecute(t *testing.T) {
	w := newWorld(t)
	rng := rand.New(rand.NewSource(3))
	if plans := agents.FindLiquidations(&w.World); len(plans) != 0 {
		t.Error("no loans yet")
	}
	b := agents.NewBorrower(1)
	w.St.Mint(b.Addr, types.Ether)
	prot := w.Lending[0]
	loan, err := b.OpenRiskyLoan(&w.World, rng, prot, 100*types.Ether)
	if err != nil {
		t.Fatal(err)
	}
	if plans := agents.FindLiquidations(&w.World); len(plans) != 0 {
		t.Error("healthy loan should not be listed")
	}
	// Collateral price drop makes it unhealthy.
	w.Oracle.SetPrice(w.WETH, types.FromEther(0.85))
	plans := agents.FindLiquidations(&w.World)
	if len(plans) != 1 || plans[0].LoanID != loan.ID {
		t.Fatalf("plans = %+v", plans)
	}
	if plans[0].ExpectedGross <= 0 {
		t.Error("liq gross")
	}
	s := agents.NewSearcher(5, 1.0)
	s.Fund(&w.World, 10*types.Ether, 100*types.Ether)
	tx := s.LiqTx(plans[0], agents.GasPricing{Price: 40 * types.Gwei}, 0, false, types.Address{})
	rcpt, err := w.Ex.Apply(evmlite.BlockCtx{Number: 1, Miner: types.DeriveAddress("m", 0)}, tx, 0)
	if err != nil || rcpt.Status != types.StatusSuccess {
		t.Fatalf("liq apply: %+v %v", rcpt, err)
	}
	// Flash-loan variant for a second loan.
	b2 := agents.NewBorrower(2)
	w.St.Mint(b2.Addr, types.Ether)
	if _, err := b2.OpenRiskyLoan(&w.World, rng, prot, 50*types.Ether); err != nil {
		t.Fatal(err)
	}
	w.Oracle.SetPrice(w.WETH, types.FromEther(0.7))
	plans = agents.FindLiquidations(&w.World)
	if len(plans) == 0 {
		t.Fatal("second loan should be liquidatable")
	}
	// A float-less bot cannot cover the flash fee: the tx reverts cleanly.
	broke := agents.NewSearcher(7, 1.0)
	w.St.Mint(broke.Addr, 10*types.Ether)
	failTx := broke.LiqTx(plans[0], agents.GasPricing{Price: 40 * types.Gwei}, 0, true, w.Lending[1].Addr)
	rcpt, err = w.Ex.Apply(evmlite.BlockCtx{Number: 2, Miner: types.DeriveAddress("m", 0)}, failTx, 0)
	if err != nil || rcpt.Status != types.StatusFailed {
		t.Fatalf("flash liq without fee float should revert: %+v %v", rcpt, err)
	}
	// With a working float for the 9 bps fee (as real bots hold), it lands.
	s2 := agents.NewSearcher(6, 1.0)
	s2.Fund(&w.World, 10*types.Ether, 0)
	fltx := s2.LiqTx(plans[0], agents.GasPricing{Price: 40 * types.Gwei}, 0, true, w.Lending[1].Addr)
	rcpt, err = w.Ex.Apply(evmlite.BlockCtx{Number: 3, Miner: types.DeriveAddress("m", 0)}, fltx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.Status != types.StatusSuccess {
		t.Error("flash liq should succeed (spread covers fee)")
	}
}
