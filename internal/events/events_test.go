package events

import (
	"testing"
	"testing/quick"

	"mevscope/internal/types"
)

func a(i uint64) types.Address { return types.DeriveAddress("evt", i) }

func TestTransferRoundtrip(t *testing.T) {
	e := Transfer{Token: a(1), From: a(2), To: a(3), Amount: 12345}
	got, ok := DecodeTransfer(e.Log())
	if !ok || got != e {
		t.Errorf("roundtrip: got %+v ok=%v", got, ok)
	}
}

func TestSwapRoundtrip(t *testing.T) {
	e := Swap{Pool: a(1), Sender: a(2), Recipient: a(2), TokenIn: a(4), TokenOut: a(5), AmountIn: 100, AmountOut: 97}
	got, ok := DecodeSwap(e.Log())
	if !ok || got != e {
		t.Errorf("roundtrip: got %+v ok=%v", got, ok)
	}
}

func TestSyncRoundtrip(t *testing.T) {
	e := Sync{Pool: a(1), ReserveA: 11, ReserveB: 22}
	got, ok := DecodeSync(e.Log())
	if !ok || got != e {
		t.Errorf("roundtrip: got %+v ok=%v", got, ok)
	}
}

func TestLiquidationRoundtrip(t *testing.T) {
	for _, compound := range []bool{false, true} {
		e := Liquidation{
			Protocol: a(1), Liquidator: a(2), Borrower: a(3),
			DebtToken: a(4), CollateralToken: a(5),
			DebtRepaid: 1000, CollateralOut: 1100, Compound: compound,
		}
		got, ok := DecodeLiquidation(e.Log())
		if !ok || got != e {
			t.Errorf("compound=%v roundtrip: got %+v ok=%v", compound, got, ok)
		}
	}
}

func TestFlashLoanRoundtrip(t *testing.T) {
	e := FlashLoan{Protocol: a(1), Initiator: a(2), Token: a(3), Amount: 500, Fee: 2}
	got, ok := DecodeFlashLoan(e.Log())
	if !ok || got != e {
		t.Errorf("roundtrip: got %+v ok=%v", got, ok)
	}
}

func TestOracleUpdateRoundtrip(t *testing.T) {
	e := OracleUpdate{Oracle: a(1), Token: a(2), Price: types.Ether / 2}
	got, ok := DecodeOracleUpdate(e.Log())
	if !ok || got != e {
		t.Errorf("roundtrip: got %+v ok=%v", got, ok)
	}
}

func TestCrossDecodeRejects(t *testing.T) {
	logs := []types.Log{
		Transfer{Token: a(1), From: a(2), To: a(3), Amount: 1}.Log(),
		Swap{Pool: a(1), Sender: a(2), Recipient: a(2), TokenIn: a(3), TokenOut: a(4), AmountIn: 1, AmountOut: 1}.Log(),
		Sync{Pool: a(1)}.Log(),
		Liquidation{Protocol: a(1), Liquidator: a(2), Borrower: a(3)}.Log(),
		FlashLoan{Protocol: a(1), Initiator: a(2), Token: a(3)}.Log(),
		OracleUpdate{Oracle: a(1), Token: a(2)}.Log(),
	}
	for i, l := range logs {
		n := 0
		if _, ok := DecodeTransfer(l); ok {
			n++
		}
		if _, ok := DecodeSwap(l); ok {
			n++
		}
		if _, ok := DecodeSync(l); ok {
			n++
		}
		if _, ok := DecodeLiquidation(l); ok {
			n++
		}
		if _, ok := DecodeFlashLoan(l); ok {
			n++
		}
		if _, ok := DecodeOracleUpdate(l); ok {
			n++
		}
		if n != 1 {
			t.Errorf("log %d decoded by %d decoders, want exactly 1", i, n)
		}
	}
}

func TestDecodeRejectsTruncatedData(t *testing.T) {
	l := Swap{Pool: a(1), Sender: a(2), Recipient: a(2), TokenIn: a(3), TokenOut: a(4), AmountIn: 1, AmountOut: 1}.Log()
	l.Data = l.Data[:10]
	if _, ok := DecodeSwap(l); ok {
		t.Error("truncated swap should not decode")
	}
	l2 := Liquidation{Protocol: a(1), Liquidator: a(2), Borrower: a(3)}.Log()
	l2.Data = nil
	if _, ok := DecodeLiquidation(l2); ok {
		t.Error("truncated liquidation should not decode")
	}
}

// Property: Swap encode/decode is the identity over arbitrary field values.
func TestSwapRoundtripProperty(t *testing.T) {
	f := func(p, s, ti, to uint64, in, out int64) bool {
		e := Swap{
			Pool: a(p), Sender: a(s), Recipient: a(s),
			TokenIn: a(ti), TokenOut: a(to),
			AmountIn: types.Amount(in & 0x7fffffffffffffff), AmountOut: types.Amount(out & 0x7fffffffffffffff),
		}
		got, ok := DecodeSwap(e.Log())
		return ok && got == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
