// Package events defines the typed event-log vocabulary of the simulated
// protocols and the encode/decode helpers for each event.
//
// The layout imitates Solidity event logs: topic 0 is the event signature,
// indexed parameters occupy the remaining topics, and value parameters are
// packed into Data. Detection code decodes logs with these helpers exactly
// the way mev-inspect-style tools decode archive-node logs; nothing else
// about the simulation is visible to it.
package events

import (
	"encoding/binary"

	"mevscope/internal/types"
)

// Event signatures (topic 0 values).
var (
	SigTransfer = types.EventSignature("Transfer(address,address,uint256)")
	// SigSwap covers all AMM venues (the paper's detectors treat swap
	// events from every exchange uniformly).
	SigSwap = types.EventSignature("Swap(address,address,address,address,uint256,uint256)")
	SigSync = types.EventSignature("Sync(uint112,uint112)")
	// SigLiquidationCall is Aave's liquidation event.
	SigLiquidationCall = types.EventSignature("LiquidationCall(address,address,address,uint256,uint256)")
	// SigLiquidateBorrow is Compound's liquidation event.
	SigLiquidateBorrow = types.EventSignature("LiquidateBorrow(address,address,uint256,address,uint256)")
	SigFlashLoan       = types.EventSignature("FlashLoan(address,address,uint256,uint256)")
	SigOracleUpdate    = types.EventSignature("AnswerUpdated(int256,uint256,uint256)")
)

func amt(b []byte, off int) types.Amount {
	if off+8 > len(b) {
		return 0
	}
	return types.Amount(binary.BigEndian.Uint64(b[off : off+8]))
}

func putAmt(b []byte, off int, a types.Amount) {
	binary.BigEndian.PutUint64(b[off:off+8], uint64(a))
}

// Transfer is an ERC-20 transfer event emitted by the token contract.
type Transfer struct {
	Token    types.Address // emitting contract
	From, To types.Address
	Amount   types.Amount
}

// Log encodes the event.
func (e Transfer) Log() types.Log {
	data := make([]byte, 8)
	putAmt(data, 0, e.Amount)
	return types.Log{
		Address: e.Token,
		Topics:  []types.Hash{SigTransfer, e.From.Hash(), e.To.Hash()},
		Data:    data,
	}
}

// DecodeTransfer parses a Transfer event; ok is false for other logs.
func DecodeTransfer(l types.Log) (Transfer, bool) {
	if len(l.Topics) != 3 || l.Topics[0] != SigTransfer {
		return Transfer{}, false
	}
	return Transfer{
		Token:  l.Address,
		From:   types.AddressFromHash(l.Topics[1]),
		To:     types.AddressFromHash(l.Topics[2]),
		Amount: amt(l.Data, 0),
	}, true
}

// Swap is a DEX trade event emitted by the pool contract.
type Swap struct {
	Pool      types.Address // emitting pool contract
	Sender    types.Address // account that initiated the swap
	Recipient types.Address
	TokenIn   types.Address
	TokenOut  types.Address
	AmountIn  types.Amount
	AmountOut types.Amount
}

// Log encodes the event.
func (e Swap) Log() types.Log {
	data := make([]byte, 20+20+8+8)
	copy(data[0:], e.TokenIn[:])
	copy(data[20:], e.TokenOut[:])
	putAmt(data, 40, e.AmountIn)
	putAmt(data, 48, e.AmountOut)
	return types.Log{
		Address: e.Pool,
		Topics:  []types.Hash{SigSwap, e.Sender.Hash(), e.Recipient.Hash()},
		Data:    data,
	}
}

// DecodeSwap parses a Swap event; ok is false for other logs.
func DecodeSwap(l types.Log) (Swap, bool) {
	if len(l.Topics) != 3 || l.Topics[0] != SigSwap || len(l.Data) < 56 {
		return Swap{}, false
	}
	return Swap{
		Pool:      l.Address,
		Sender:    types.AddressFromHash(l.Topics[1]),
		Recipient: types.AddressFromHash(l.Topics[2]),
		TokenIn:   types.BytesToAddress(l.Data[0:20]),
		TokenOut:  types.BytesToAddress(l.Data[20:40]),
		AmountIn:  amt(l.Data, 40),
		AmountOut: amt(l.Data, 48),
	}, true
}

// Sync reports pool reserves after a swap or liquidity change.
type Sync struct {
	Pool               types.Address
	ReserveA, ReserveB types.Amount
}

// Log encodes the event.
func (e Sync) Log() types.Log {
	data := make([]byte, 16)
	putAmt(data, 0, e.ReserveA)
	putAmt(data, 8, e.ReserveB)
	return types.Log{Address: e.Pool, Topics: []types.Hash{SigSync}, Data: data}
}

// DecodeSync parses a Sync event; ok is false for other logs.
func DecodeSync(l types.Log) (Sync, bool) {
	if len(l.Topics) != 1 || l.Topics[0] != SigSync || len(l.Data) < 16 {
		return Sync{}, false
	}
	return Sync{Pool: l.Address, ReserveA: amt(l.Data, 0), ReserveB: amt(l.Data, 8)}, true
}

// Liquidation is a lending-protocol liquidation event. Aave emits it as
// LiquidationCall, Compound as LiquidateBorrow; Compound reports its own
// signature via the Compound flag.
type Liquidation struct {
	Protocol        types.Address // emitting lending pool
	Liquidator      types.Address
	Borrower        types.Address
	DebtToken       types.Address
	CollateralToken types.Address
	DebtRepaid      types.Amount
	CollateralOut   types.Amount
	Compound        bool
}

// Log encodes the event with the protocol-appropriate signature.
func (e Liquidation) Log() types.Log {
	sig := SigLiquidationCall
	if e.Compound {
		sig = SigLiquidateBorrow
	}
	data := make([]byte, 20+20+8+8)
	copy(data[0:], e.DebtToken[:])
	copy(data[20:], e.CollateralToken[:])
	putAmt(data, 40, e.DebtRepaid)
	putAmt(data, 48, e.CollateralOut)
	return types.Log{
		Address: e.Protocol,
		Topics:  []types.Hash{sig, e.Liquidator.Hash(), e.Borrower.Hash()},
		Data:    data,
	}
}

// DecodeLiquidation parses either liquidation event; ok is false otherwise.
func DecodeLiquidation(l types.Log) (Liquidation, bool) {
	if len(l.Topics) != 3 || len(l.Data) < 56 {
		return Liquidation{}, false
	}
	var compound bool
	switch l.Topics[0] {
	case SigLiquidationCall:
	case SigLiquidateBorrow:
		compound = true
	default:
		return Liquidation{}, false
	}
	return Liquidation{
		Protocol:        l.Address,
		Liquidator:      types.AddressFromHash(l.Topics[1]),
		Borrower:        types.AddressFromHash(l.Topics[2]),
		DebtToken:       types.BytesToAddress(l.Data[0:20]),
		CollateralToken: types.BytesToAddress(l.Data[20:40]),
		DebtRepaid:      amt(l.Data, 40),
		CollateralOut:   amt(l.Data, 48),
		Compound:        compound,
	}, true
}

// FlashLoan is emitted by a lending protocol when a flash loan completes
// successfully (the detection technique of Wang et al.).
type FlashLoan struct {
	Protocol  types.Address
	Initiator types.Address
	Token     types.Address
	Amount    types.Amount
	Fee       types.Amount
}

// Log encodes the event.
func (e FlashLoan) Log() types.Log {
	data := make([]byte, 20+8+8)
	copy(data[0:], e.Token[:])
	putAmt(data, 20, e.Amount)
	putAmt(data, 28, e.Fee)
	return types.Log{
		Address: e.Protocol,
		Topics:  []types.Hash{SigFlashLoan, e.Initiator.Hash()},
		Data:    data,
	}
}

// DecodeFlashLoan parses a FlashLoan event; ok is false for other logs.
func DecodeFlashLoan(l types.Log) (FlashLoan, bool) {
	if len(l.Topics) != 2 || l.Topics[0] != SigFlashLoan || len(l.Data) < 36 {
		return FlashLoan{}, false
	}
	return FlashLoan{
		Protocol:  l.Address,
		Initiator: types.AddressFromHash(l.Topics[1]),
		Token:     types.BytesToAddress(l.Data[0:20]),
		Amount:    amt(l.Data, 20),
		Fee:       amt(l.Data, 28),
	}, true
}

// OracleUpdate is a price-feed answer update.
type OracleUpdate struct {
	Oracle types.Address
	Token  types.Address
	// Price is ETH per whole token in Amount base units.
	Price types.Amount
}

// Log encodes the event.
func (e OracleUpdate) Log() types.Log {
	data := make([]byte, 20+8)
	copy(data[0:], e.Token[:])
	putAmt(data, 20, e.Price)
	return types.Log{Address: e.Oracle, Topics: []types.Hash{SigOracleUpdate}, Data: data}
}

// DecodeOracleUpdate parses an oracle update; ok is false for other logs.
func DecodeOracleUpdate(l types.Log) (OracleUpdate, bool) {
	if len(l.Topics) != 1 || l.Topics[0] != SigOracleUpdate || len(l.Data) < 28 {
		return OracleUpdate{}, false
	}
	return OracleUpdate{
		Oracle: l.Address,
		Token:  types.BytesToAddress(l.Data[0:20]),
		Price:  amt(l.Data, 20),
	}, true
}
