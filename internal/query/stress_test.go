package query_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"mevscope/internal/core/measure"
	"mevscope/internal/dataset"
	"mevscope/internal/obs"
	"mevscope/internal/query"
)

// TestConcurrentStressLRUDedup hammers the report LRU and the in-flight
// dedup from many goroutines across evictions, under -race. The cache
// holds 2 reports while 8 distinct keys are requested by 25 goroutines
// each, so builds evict each other while they publish — and the
// in-flight dedup must still collapse every key to exactly one Analyze.
//
// Determinism: the stub Analyze blocks every build on a gate, and the
// gate opens only once all 200 requests have registered a report-cache
// lookup (CacheStats misses — nothing can be cached while builds are
// gated, so every lookup is a miss). At that point each goroutine is
// either its key's builder or a waiter on the builder's in-flight call;
// none can arrive after an eviction and rebuild, so "exactly one per
// key" is an invariant, not a scheduling accident.
func TestConcurrentStressLRUDedup(t *testing.T) {
	const (
		keys       = 8
		perKey     = 25
		totalBurst = keys * perKey
	)
	release := make(chan struct{})
	perKeyCalls := make(map[string]*int, keys)
	var callsMu sync.Mutex
	srv, err := query.New(query.Config{
		Archive:   testArchive(t),
		CacheSize: 2,
		Workers:   1,
		Analyze: func(ds *dataset.Dataset, workers int, sp *obs.Span) (*measure.Report, error) {
			// The restored slice starts at the requested month, which
			// identifies the key this build is for.
			id := ds.Chain.Timeline.FirstMonth.Label()
			callsMu.Lock()
			if perKeyCalls[id] == nil {
				perKeyCalls[id] = new(int)
			}
			*perKeyCalls[id]++
			callsMu.Unlock()
			<-release
			return &measure.Report{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	urlFor := func(k int) string {
		return fmt.Sprintf("/v1/artifact/table1?format=json&months=2021-%02d..2021-%02d", k+1, k+1)
	}

	var wg sync.WaitGroup
	errs := make(chan string, totalBurst)
	for k := 0; k < keys; k++ {
		for i := 0; i < perKey; i++ {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				if code, body := get(t, srv, url); code != http.StatusOK {
					errs <- fmt.Sprintf("%s → %d: %s", url, code, body)
				}
			}(urlFor(k))
		}
	}

	// Open the gate once every request has registered its lookup.
	deadline := time.Now().Add(30 * time.Second)
	for srv.CacheStats().Hits+srv.CacheStats().Misses < totalBurst {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d lookups registered before the deadline",
				srv.CacheStats().Misses, totalBurst)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	callsMu.Lock()
	totalAnalyzes := 0
	for id, n := range perKeyCalls {
		totalAnalyzes += *n
		if *n != 1 {
			t.Errorf("key %s analyzed %d times, want exactly 1 (in-flight dedup)", id, *n)
		}
	}
	callsMu.Unlock()
	if len(perKeyCalls) != keys {
		t.Errorf("%d distinct keys analyzed, want %d", len(perKeyCalls), keys)
	}

	burst := srv.CacheStats()
	if burst.Hits+burst.Misses != totalBurst {
		t.Errorf("burst lookups = %d hits + %d misses, want %d total",
			burst.Hits, burst.Misses, totalBurst)
	}
	if burst.Evictions < keys-2 {
		t.Errorf("evictions = %d, want ≥ %d (8 builds through a 2-entry LRU)", burst.Evictions, keys-2)
	}

	// A sequential re-pass over every key: evicted keys rebuild, cached
	// ones hit — either way every request is exactly one lookup, so the
	// /v1/cache and /metrics counters must reconcile:
	// hits + misses == lookups == artifact-endpoint requests.
	for k := 0; k < keys; k++ {
		if code, body := get(t, srv, urlFor(k)); code != http.StatusOK {
			t.Fatalf("re-pass %s → %d: %s", urlFor(k), code, body)
		}
	}
	totalRequests := int64(totalBurst + keys)

	code, body := get(t, srv, "/v1/cache")
	if code != http.StatusOK {
		t.Fatal("cache endpoint failed")
	}
	var cacheView struct {
		Reports query.CacheStats `json:"reports"`
	}
	if err := json.Unmarshal([]byte(body), &cacheView); err != nil {
		t.Fatal(err)
	}
	if got := cacheView.Reports.Hits + cacheView.Reports.Misses; got != totalRequests {
		t.Errorf("report-cache lookups = %d, want %d (one per request)", got, totalRequests)
	}

	snap, ok := srv.MetricsSnapshot()
	if !ok {
		t.Fatal("metrics disabled")
	}
	art := snap.Endpoints["/v1/artifact"]
	if art.Requests != totalRequests {
		t.Errorf("metrics artifact requests = %d, want %d", art.Requests, totalRequests)
	}
	if art.Requests != cacheView.Reports.Hits+cacheView.Reports.Misses {
		t.Errorf("metrics (%d requests) and cache counters (%d lookups) do not reconcile",
			art.Requests, cacheView.Reports.Hits+cacheView.Reports.Misses)
	}
	if art.Status["2xx"] != totalRequests {
		t.Errorf("status classes = %v, want %d clean 2xx", art.Status, totalRequests)
	}
	if art.Latency.Count != totalRequests {
		t.Errorf("latency observations = %d, want %d", art.Latency.Count, totalRequests)
	}
}
