package query_test

// Serving-side flight-recorder surfaces: per-stage build histograms fed
// by the cold path's trace, Go runtime gauges, the opt-in pprof mount
// and the live follower's lag gauge.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"mevscope/internal/core/measure"
	"mevscope/internal/query"
)

// TestStageMetrics: one cold artifact build records every pipeline
// stage — restore and decode on the archive side, detect/profit/
// aggregate/build in the measurement core — plus the whole-build
// "total", in both expositions; a cache hit adds nothing.
func TestStageMetrics(t *testing.T) {
	srv := newServer(t, 4, nil)

	if rec := getWith(t, srv, http.MethodGet, "/v1/artifact/fig3?format=json", nil); rec.Code != http.StatusOK {
		t.Fatalf("seed request failed: %d: %s", rec.Code, rec.Body.String())
	}
	snap, ok := srv.MetricsSnapshot()
	if !ok {
		t.Fatal("metrics disabled on a default server")
	}
	for _, st := range []string{"total", "archive:restore", "archive:decode", "detect", "profit", "aggregate", "build"} {
		sm, present := snap.Stages[st]
		if !present || sm.Count == 0 {
			t.Errorf("stage %q missing from snapshot after a cold build: %+v", st, snap.Stages)
		}
	}
	if tot := snap.Stages["total"]; tot.Count != 1 {
		t.Errorf("total builds = %d, want 1", tot.Count)
	}
	if snap.Runtime.Goroutines <= 0 || snap.Runtime.HeapAllocBytes == 0 {
		t.Errorf("runtime gauges look unset: %+v", snap.Runtime)
	}
	if snap.LiveLag != nil {
		t.Errorf("live lag = %v with no live source attached", *snap.LiveLag)
	}

	prom := getWith(t, srv, http.MethodGet, "/metrics", nil)
	body := prom.Body.String()
	for _, want := range []string{
		`# TYPE mevscope_stage_seconds histogram`,
		`mevscope_stage_seconds_count{stage="total"} 1`,
		`mevscope_stage_seconds_bucket{stage="detect",le="+Inf"} 1`,
		`mevscope_stage_seconds_sum{stage="build"}`,
		`mevscope_go_goroutines`,
		`mevscope_go_heap_alloc_bytes`,
		`mevscope_go_gc_cycles_total`,
		`mevscope_go_gc_pause_seconds_total`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
	if strings.Contains(body, "mevscope_live_lag_blocks") {
		t.Error("live lag gauge exposed with no live source attached")
	}

	// A warm repeat is served from the report cache: no build, no new
	// stage observations.
	if rec := getWith(t, srv, http.MethodGet, "/v1/artifact/fig3?format=json", nil); rec.Code != http.StatusOK {
		t.Fatalf("warm request failed: %d", rec.Code)
	}
	snap, _ = srv.MetricsSnapshot()
	if tot := snap.Stages["total"]; tot.Count != 1 {
		t.Errorf("cache hit grew the build histogram: total count = %d, want 1", tot.Count)
	}
}

// TestLiveLagGauge: a live source with a Lag probe surfaces the blocks-
// behind gauge in both formats.
func TestLiveLagGauge(t *testing.T) {
	srv := newServer(t, 4, nil)
	srv.SetLive(query.Live{
		Height: func() uint64 { return 10 },
		Snapshot: func() (*measure.Report, uint64) {
			return &measure.Report{}, 10
		},
		Lag: func() uint64 { return 3 },
	})

	rec := getWith(t, srv, http.MethodGet, "/metrics?format=json", nil)
	var snap query.MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if snap.LiveLag == nil || *snap.LiveLag != 3 {
		t.Errorf("live_lag_blocks = %v, want 3", snap.LiveLag)
	}

	prom := getWith(t, srv, http.MethodGet, "/metrics", nil)
	if !strings.Contains(prom.Body.String(), "mevscope_live_lag_blocks 3") {
		t.Error("prometheus exposition missing the live lag gauge")
	}
}

// TestPprofOptIn: the profiling surface is absent by default and mounts
// under /debug/pprof/ with Config.EnablePprof; its requests land in a
// single bounded endpoint label.
func TestPprofOptIn(t *testing.T) {
	off := newServer(t, 4, nil)
	if rec := getWith(t, off, http.MethodGet, "/debug/pprof/", nil); rec.Code != http.StatusNotFound {
		t.Errorf("/debug/pprof/ without EnablePprof → %d, want 404", rec.Code)
	}

	on, err := query.New(query.Config{
		Archive:     testArchive(t),
		Analyze:     analyzeReal,
		Workers:     1,
		EnablePprof: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := getWith(t, on, http.MethodGet, "/debug/pprof/", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/ with EnablePprof → %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "profile") {
		t.Error("pprof index does not list profiles")
	}
	if rec := getWith(t, on, http.MethodGet, "/debug/pprof/cmdline", nil); rec.Code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline → %d", rec.Code)
	}
	snap, _ := on.MetricsSnapshot()
	if ep := snap.Endpoints["/debug/pprof"]; ep.Requests != 2 {
		t.Errorf("pprof endpoint label saw %d requests, want 2", ep.Requests)
	}
}
