// Package query is the archive-backed report-serving subsystem behind
// `mevscope serve`: an HTTP API that answers per-artifact requests from a
// segmented archive (internal/archive) without re-simulating — and
// without re-analyzing, once a (archive, month range, scenario) slice is
// warm in the cache.
//
// Request flow: the month range of the URL selects archive segments
// (archive.ReadRange — a four-month query reads four segment
// directories, not the whole dataset), the measurement pipeline analyzes
// the restored slice once, and the resulting report is cached in a
// concurrency-safe LRU keyed by (archive, month range, scenario).
// Repeated queries for any artifact of the same slice — any format —
// skip the pipeline entirely and re-encode the cached report's
// structured artifact model (measure.Artifact). Beneath the report LRU
// sits a second, segment-granular LRU of decoded archive months: a
// report miss re-runs the pipeline, but the months its range shares with
// earlier queries come out of memory instead of the disk, so overlapping
// ranges never re-read or re-decode a segment.
//
// Endpoints:
//
//	GET /v1/artifacts?months=2021-03..2021-06
//	GET /v1/artifact/{name}?format=json|csv|text&months=2021-03..2021-06&view=union|quorum:K|vantage:N
//	GET /v1/report?format=text|json&months=…&view=…
//	GET /v1/manifest
//	GET /v1/block?number=N
//	GET /v1/cache
//	GET /metrics?format=prometheus|json
//
// The view parameter selects which observation view of a multi-vantage
// archive the §6 inference classifies against (default: the primary
// vantage); each view is analyzed and cached independently.
//
// Every response body is encoded fully before the first byte is sent:
// Content-Length is always set, a mid-encode failure is a real 500 (not
// a 200 with a truncated body), and HEAD answers with the same headers
// and status as GET at no extra cost. /v1/artifact/* and /v1/report
// responses carry a strong ETag — reports are immutable per (archive,
// month range, view, scenario), so the cache key plus the encoding
// hashes to one for free — and a matching If-None-Match comes back 304
// without re-encoding, and without rebuilding the report even when the
// LRU has evicted it. GET /metrics exposes per-endpoint request counts,
// status classes, bytes sent, 304 counts and a log-bucket latency
// histogram (p50/p90/p99), in Prometheus text exposition format by
// default or as JSON (which also embeds both cache levels' counters).
//
// A live source (a streaming follower's snapshot function, see
// Server.SetLive) is served from the same endpoints with ?source=live;
// its cache key carries the snapshot height, so a growing world
// invalidates naturally while repeated queries at one height stay
// cached.
package query

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"mevscope/internal/archive"
	"mevscope/internal/core/measure"
	"mevscope/internal/dataset"
	"mevscope/internal/obs"
	"mevscope/internal/types"
)

// AnalyzeFunc runs the measurement pipeline over a restored dataset with
// the given worker-pool size, recording its stages under sp when non-nil
// (internal/obs). `mevscope serve` wires it to
// mevscope.AnalyzeDatasetTraced; tests substitute counters and stubs.
type AnalyzeFunc func(ds *dataset.Dataset, workers int, sp *obs.Span) (*measure.Report, error)

// ProjectionFunc builds only the named projectable artifacts from a
// column-projected dataset restore (archive.ReadOptions.Columns).
// `mevscope serve` wires it to mevscope.AnalyzeDatasetProjection; when
// set, single-artifact queries for projectable artifacts decode only the
// columns the artifact declares instead of restoring the full slice.
type ProjectionFunc func(ds *dataset.Dataset, workers int, artifacts []string, sp *obs.Span) (*measure.Report, error)

// PartialFunc analyzes one restored single-month dataset into a frozen,
// mergeable month partial. `mevscope serve` wires it to
// mevscope.AnalyzeDatasetPartial; when set, a report-cache miss is
// served by merging per-month partials (computing only the uncached
// months) instead of re-analyzing the whole range.
type PartialFunc func(ds *dataset.Dataset, workers int, sp *obs.Span) (*measure.Partial, error)

// Live describes a live source (a streaming follower). Height keys the
// cache and runs on every live request, so it must be cheap; Snapshot
// builds the full report and runs only on a cache miss, returning the
// report together with the height it actually covers (read under the
// same lock, so the pair cannot disagree even while the source grows).
// Both must be safe to call from concurrent requests.
type Live struct {
	Height   func() uint64
	Snapshot func() (*measure.Report, uint64)
	// Lag, when set, reports how many blocks the live source trails the
	// world's tip (0 = fully caught up). Exposed as the
	// mevscope_live_lag_blocks gauge; must be cheap and concurrency-safe.
	Lag func() uint64
}

// Config configures a Server.
type Config struct {
	// Archive is the segmented archive directory to serve; empty when the
	// server only fronts a live source.
	Archive string
	// Analyze runs the measurement pipeline over a restored dataset.
	Analyze AnalyzeFunc
	// AnalyzeProjection, when set, builds projectable artifacts from a
	// column-projected restore. Optional: without it every artifact query
	// restores and analyzes the full month slice.
	AnalyzeProjection ProjectionFunc
	// AnalyzePartial, when set, turns on the month-partial cache level:
	// report-cache misses assemble their report from per-month partials,
	// analyzing only the months no earlier range already analyzed.
	// Optional: without it every report-cache miss re-analyzes its whole
	// range.
	AnalyzePartial PartialFunc
	// PartialCacheBytes bounds the resident size of the partial LRU;
	// 0 selects 256 MiB. Ignored without AnalyzePartial.
	PartialCacheBytes int64
	// Workers sizes the analysis worker pool (passed through to Analyze
	// and to the parallel segment decode).
	Workers int
	// CacheSize bounds the report LRU; 0 selects 16 entries.
	CacheSize int
	// SegmentCacheSize bounds the second-level LRU of decoded archive
	// data; 0 selects 256 entries. The unit is one decoded month segment
	// for v1/v2 archives and one decoded column chunk for v3 (several
	// entries per month — hence the larger default). Overlapping month
	// ranges share the decodes they both touch through this cache, so a
	// cold report build re-reads only what no earlier query decoded.
	SegmentCacheSize int
	// DisableMetrics turns off request accounting and the /metrics
	// endpoint (which then 404s). Metrics are on by default: recording is
	// a handful of atomic adds per request.
	DisableMetrics bool
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — CPU and
	// heap profiles, goroutine dumps, execution traces. Off by default:
	// profiling endpoints are a diagnostic surface, opted into with
	// `mevscope serve -pprof`.
	EnablePprof bool
}

// Server answers artifact queries over one archive (and optionally one
// live source). It is an http.Handler; all state is concurrency-safe.
type Server struct {
	cfg      Config
	cache    *reportCache
	segs     *segmentCache
	partials *partialCache // nil without Config.AnalyzePartial
	mux      *http.ServeMux
	metrics  *metrics // nil when Config.DisableMetrics

	mu        sync.Mutex
	man       *archive.Manifest // lazily loaded
	live      *Live
	inflight  map[Key]*call
	pinflight map[partialKey]*pcall
}

// call deduplicates concurrent cache misses for one key: the first
// request analyzes, the rest wait for its result.
type call struct {
	done chan struct{}
	rep  *measure.Report
	err  error
}

// pcall deduplicates concurrent partial-cache misses for one month: the
// first request analyzes the month, the rest wait for its partial.
type pcall struct {
	done chan struct{}
	p    *measure.Partial
	err  error
}

// New creates a server over the configured archive.
func New(cfg Config) (*Server, error) {
	if cfg.Analyze == nil {
		return nil, fmt.Errorf("query: Config.Analyze is required")
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 16
	}
	if cfg.SegmentCacheSize == 0 {
		cfg.SegmentCacheSize = 256
	}
	s := &Server{
		cfg:      cfg,
		cache:    newReportCache(cfg.CacheSize),
		segs:     newSegmentCache(cfg.SegmentCacheSize),
		inflight: make(map[Key]*call),
	}
	if cfg.AnalyzePartial != nil {
		if s.cfg.PartialCacheBytes == 0 {
			s.cfg.PartialCacheBytes = 256 << 20
		}
		s.partials = newPartialCache(s.cfg.PartialCacheBytes)
		s.pinflight = make(map[partialKey]*pcall)
	}
	if !cfg.DisableMetrics {
		s.metrics = newMetrics()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/artifacts", s.handleArtifacts)
	mux.HandleFunc("/v1/artifact/", s.handleArtifact)
	mux.HandleFunc("/v1/report", s.handleReport)
	mux.HandleFunc("/v1/manifest", s.handleManifest)
	mux.HandleFunc("/v1/block", s.handleBlock)
	mux.HandleFunc("/v1/cache", s.handleCache)
	mux.HandleFunc("/metrics", s.handleMetrics)
	if cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	return s, nil
}

// SetLive registers a live snapshot source, served with ?source=live.
func (s *Server) SetLive(src Live) {
	s.mu.Lock()
	s.live = &src
	s.mu.Unlock()
}

// CacheStats reports the report cache's hit/miss/eviction counters.
func (s *Server) CacheStats() CacheStats { return s.cache.stats() }

// SegmentCacheStats reports the second-level segment cache's counters.
func (s *Server) SegmentCacheStats() SegmentCacheStats { return s.segs.stats() }

// PartialCacheStats reports the month-partial cache's counters. Zero
// when the server was configured without AnalyzePartial.
func (s *Server) PartialCacheStats() PartialCacheStats {
	if s.partials == nil {
		return PartialCacheStats{}
	}
	return s.partials.stats()
}

// ServeHTTP dispatches to the /v1 API (and /metrics). GET and HEAD are
// the only methods — bodies are buffered, so HEAD is the same handler
// with the body stripped — and a 405 names them in Allow (RFC 9110
// requires the header on every 405). Every request is timed and
// recorded into the metrics registry with the status and body bytes it
// actually sent.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.metrics != nil {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		defer func() {
			s.metrics.record(r.URL.Path, rec.status, rec.bytes, time.Since(start))
		}()
		w = rec
	}
	switch r.Method {
	case http.MethodGet:
	case http.MethodHead:
		w = &headWriter{w}
	default:
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// statusRecorder captures the status and body byte count a handler
// actually produced, for the metrics registry. It sits inside the HEAD
// body-stripper, so a HEAD response records zero body bytes — what went
// on the wire, not what the handler encoded.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// headWriter strips the body from a HEAD response: headers and status
// pass through, body writes are swallowed (reported as consumed so
// handlers run unchanged), and the explicit Content-Length the buffered
// write path sets still tells the client how big the GET body would be.
type headWriter struct{ http.ResponseWriter }

func (h *headWriter) Write(p []byte) (int, error) { return len(p), nil }

// httpError is an error with a status code.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func errBadRequest(format string, args ...any) error {
	return &httpError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

// fail writes an error response, mapping httpError codes.
func fail(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if he, ok := err.(*httpError); ok {
		code = he.code
	}
	http.Error(w, err.Error(), code)
}

// manifest lazily loads (and then reuses) the archive manifest.
func (s *Server) manifest() (*archive.Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.man != nil {
		return s.man, nil
	}
	if s.cfg.Archive == "" {
		return nil, &httpError{http.StatusNotFound, "query: no archive configured (live source only)"}
	}
	man, err := archive.ReadManifest(s.cfg.Archive)
	if err != nil {
		return nil, err
	}
	s.man = man
	return man, nil
}

// resolveKey turns request parameters into a cache key. Every
// user-input parse failure — malformed or backwards months, an unknown
// view, an out-of-range vantage — comes back as a 400 naming the
// archive's real month window (mirroring the CLI's -range behaviour),
// never as a raw 500 from deeper in the stack.
func (s *Server) resolveKey(r *http.Request) (Key, error) {
	q := r.URL.Query()
	view := strings.ToLower(strings.TrimSpace(q.Get("view")))
	if src := q.Get("source"); src == "live" {
		if q.Get("months") != "" {
			return Key{}, errBadRequest("query: months slicing is not supported for the live source")
		}
		if view != "" {
			return Key{}, errBadRequest("query: view selection is not supported for the live source")
		}
		s.mu.Lock()
		live := s.live
		s.mu.Unlock()
		if live == nil {
			return Key{}, &httpError{http.StatusNotFound, "query: no live source configured"}
		}
		return Key{Live: true, From: 0, To: types.StudyMonths - 1}, nil
	} else if src != "" && src != "archive" {
		return Key{}, errBadRequest("query: unknown source %q (want archive or live)", src)
	}
	man, err := s.manifest()
	if err != nil {
		return Key{}, err
	}
	first, last := man.Window()
	from, to, err := types.ParseMonthRange(q.Get("months"))
	if err != nil {
		return Key{}, errBadRequest("%v (the archive covers months %s..%s)", err, first.Label(), last.Label())
	}
	// A range that misses the archive entirely is a client mistake, not a
	// server failure: reject it here with the archive's actual window. A
	// partial overlap is clamped to the window so every spelling of the
	// same slice shares one cache key (and one cold analysis).
	if len(man.Segments) > 0 {
		if to < first || from > last {
			return Key{}, errBadRequest("query: months %s..%s outside the archive's window %s..%s",
				from.Label(), to.Label(), first.Label(), last.Label())
		}
		if from < first {
			from = first
		}
		if to > last {
			to = last
		}
		// An archive with month gaps (a limited -months run) can overlap
		// the window yet select nothing; catch that here too, before the
		// restore path turns it into a 500.
		any := false
		for _, seg := range man.Segments {
			if seg.Month >= from && seg.Month <= to {
				any = true
				break
			}
		}
		if !any {
			return Key{}, errBadRequest("query: months %s..%s select no archived segments (the archive covers %s..%s)",
				from.Label(), to.Label(), first.Label(), last.Label())
		}
	}
	vantages := len(man.Vantages)
	if vantages == 0 {
		vantages = 1
	}
	if err := dataset.CheckViewFor(view, vantages); err != nil {
		return Key{}, errBadRequest("%v", err)
	}
	return Key{
		Archive:  s.cfg.Archive,
		From:     from,
		To:       to,
		View:     view,
		Scenario: man.Meta["scenario"],
	}, nil
}

// report resolves a key to an analyzed report: cache hit, wait on an
// in-flight build of the same key, or build (then cache). Live keys read
// the source's height first — cheap by contract — and snapshot only on a
// miss at that height; archive keys restore-and-analyze.
func (s *Server) report(key Key) (rep *measure.Report, err error) {
	build := s.analyze
	if key.Live {
		s.mu.Lock()
		live := s.live
		s.mu.Unlock()
		if live == nil {
			return nil, &httpError{http.StatusNotFound, "query: no live source configured"}
		}
		key.Height = live.Height()
		// The snapshot is cached under the height it actually covers (the
		// source may have grown past the probed height); the probed key is
		// only used to collapse a concurrent burst into one snapshot.
		build = func(Key) (*measure.Report, error) {
			rep, height := live.Snapshot()
			s.cache.add(Key{Live: true, From: key.From, To: key.To, Height: height}, rep)
			return rep, nil
		}
	}
	return s.runBuild(key, build)
}

// reportProjected resolves one projectable artifact of an archive key:
// the already-cached full report when the LRU has it (free and complete),
// else a column-projected build cached under its own projection key — so
// a sparse report never masquerades as a full one.
func (s *Server) reportProjected(key Key, artifact string) (*measure.Report, error) {
	if rep, ok := s.cache.peek(key); ok {
		return rep, nil
	}
	pkey := key
	pkey.Projection = artifact
	return s.runBuild(pkey, func(Key) (*measure.Report, error) {
		return s.analyzeProjection(key, artifact)
	})
}

// runBuild resolves a key through the cache and the in-flight dedup:
// cache hit, wait on a concurrent build of the same key, or build (then
// cache).
func (s *Server) runBuild(key Key, build func(Key) (*measure.Report, error)) (rep *measure.Report, err error) {
	if rep, ok := s.cache.get(key); ok {
		return rep, nil
	}
	s.mu.Lock()
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-c.done
		return c.rep, c.err
	}
	// Re-check the cache under the lock: a builder publishes (cache.add)
	// and retires its in-flight entry between our miss above and here, and
	// without this second look we would rebuild an already-cached report.
	if rep, ok := s.cache.peek(key); ok {
		s.mu.Unlock()
		return rep, nil
	}
	c := &call{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()

	// Publish and retire in a defer so a panicking build (net/http
	// recovers handler panics) still releases the waiters — otherwise
	// every later request for this key would block forever. The cache add
	// happens before the in-flight delete: a request arriving in between
	// must find one or the other, never neither.
	defer func() {
		if r := recover(); r != nil {
			c.rep, c.err = nil, fmt.Errorf("query: building report: panic: %v", r)
			rep, err = c.rep, c.err
		}
		if c.err == nil && c.rep != nil && !key.Live {
			s.cache.add(key, c.rep)
		}
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
		close(c.done)
	}()
	c.rep, c.err = build(key)
	return c.rep, c.err
}

// analyze is the cold path: restore the month slice — months another
// range already decoded come from the segment cache, the rest from disk
// in parallel — select the requested observation view, and run the
// measurement pipeline over it. With AnalyzePartial configured, the
// range is assembled from per-month partials instead: each month comes
// out of the partial cache when an earlier range already analyzed it,
// is analyzed once otherwise, and the partials merge into a report
// byte-identical to the full-range analysis. When metrics are on, the
// build runs under a flight-recorder trace whose stage durations feed
// the mevscope_stage_seconds histograms.
func (s *Server) analyze(key Key) (*measure.Report, error) {
	var tr *obs.Trace
	if s.metrics != nil {
		tr = obs.New("build")
	}
	sp := tr.Root()
	var rep *measure.Report
	var err error
	if s.partials != nil {
		rep, err = s.assembleFromPartials(key, sp)
	} else {
		var ds *dataset.Dataset
		ds, _, err = archive.ReadRangeWith(key.Archive, key.From, key.To,
			archive.ReadOptions{Workers: s.cfg.Workers, Cache: s.segs, Span: sp})
		if err != nil {
			return nil, err
		}
		ds.View = key.View
		rep, err = s.cfg.Analyze(ds, s.cfg.Workers, sp)
	}
	if err == nil {
		sp.End()
		s.metrics.observeTrace(tr)
	}
	return rep, err
}

// assembleFromPartials builds a range report by merging the month
// partials of every month the key covers, computing only the months the
// partial cache does not hold. Months the archive has no segment for
// are skipped (matching the month gaps a full-range restore would
// surface as a restore error — MergePartials rejects the resulting
// discontinuity the same way).
func (s *Server) assembleFromPartials(key Key, sp *obs.Span) (*measure.Report, error) {
	man, err := s.manifest()
	if err != nil {
		return nil, err
	}
	archived := make(map[types.Month]bool, len(man.Segments))
	for _, seg := range man.Segments {
		archived[seg.Month] = true
	}
	parts := make([]*measure.Partial, 0, int(key.To-key.From)+1)
	for m := key.From; m <= key.To; m++ {
		if !archived[m] {
			continue
		}
		p, err := s.partial(key, m, sp)
		if err != nil {
			return nil, err
		}
		parts = append(parts, p)
	}
	return measure.MergePartials(parts, key.View, s.cfg.Workers, sp)
}

// partial resolves one month's partial: cache hit, wait on an in-flight
// analysis of the same month, or analyze (then cache). Each month gets
// an analyze:partial span labeled cached or computed, so a trace of an
// assembled build shows exactly which months were memoized.
func (s *Server) partial(key Key, m types.Month, sp *obs.Span) (p *measure.Partial, err error) {
	pk := partialKey{archive: key.Archive, month: m, view: key.View, scenario: key.Scenario}
	if p, ok := s.partials.get(pk); ok {
		psp := sp.Child(obs.StagePartial)
		psp.SetLabel(m.Label() + ":cached")
		psp.End()
		return p, nil
	}
	s.mu.Lock()
	if c, ok := s.pinflight[pk]; ok {
		s.mu.Unlock()
		<-c.done
		return c.p, c.err
	}
	// Re-check under the lock, mirroring runBuild: a concurrent builder
	// publishes and retires between our miss above and here.
	if p, ok := s.partials.peek(pk); ok {
		s.mu.Unlock()
		return p, nil
	}
	c := &pcall{done: make(chan struct{})}
	s.pinflight[pk] = c
	s.mu.Unlock()

	// Publish before retiring, in a defer, so a panicking analysis still
	// releases the waiters (see runBuild).
	defer func() {
		if r := recover(); r != nil {
			c.p, c.err = nil, fmt.Errorf("query: building month partial: panic: %v", r)
			p, err = c.p, c.err
		}
		if c.err == nil && c.p != nil {
			s.partials.add(pk, c.p)
		}
		s.mu.Lock()
		delete(s.pinflight, pk)
		s.mu.Unlock()
		close(c.done)
	}()
	c.p, c.err = s.buildPartial(pk, sp)
	return c.p, c.err
}

// buildPartial is the partial cold path: a single-month restore (warmed
// by and warming the shared segment cache) analyzed under the key's
// view.
func (s *Server) buildPartial(pk partialKey, sp *obs.Span) (*measure.Partial, error) {
	psp := sp.Child(obs.StagePartial)
	psp.SetLabel(pk.month.Label() + ":computed")
	defer psp.End()
	ds, _, err := archive.ReadRangeWith(pk.archive, pk.month, pk.month,
		archive.ReadOptions{Workers: s.cfg.Workers, Cache: s.segs, Span: psp})
	if err != nil {
		return nil, err
	}
	ds.View = pk.view
	return s.cfg.AnalyzePartial(ds, s.cfg.Workers, psp)
}

// analyzeProjection is the projected cold path: restore only the columns
// the artifact declares (on a v3 archive the other column chunks are
// never read, let alone decoded) and build just that artifact. The
// column chunks it decodes warm the same cache full restores use.
func (s *Server) analyzeProjection(key Key, artifact string) (*measure.Report, error) {
	var tr *obs.Trace
	if s.metrics != nil {
		tr = obs.New("build")
	}
	sp := tr.Root()
	ds, _, err := archive.ReadRangeWith(key.Archive, key.From, key.To,
		archive.ReadOptions{
			Workers: s.cfg.Workers,
			Cache:   s.segs,
			Span:    sp,
			Columns: measure.ProjectionColumns(artifact),
		})
	if err != nil {
		return nil, err
	}
	rep, err := s.cfg.AnalyzeProjection(ds, s.cfg.Workers, []string{artifact}, sp)
	if err == nil {
		sp.End()
		s.metrics.observeTrace(tr)
	}
	return rep, err
}

// respond writes one fully-buffered response: encode runs to completion
// into memory before any byte reaches the client, so a mid-encode
// failure is a real 500 (nothing of the partial body leaks into a 200)
// and Content-Length is always exact. A non-empty etag is set on the
// response. Bodies here are small — one artifact or one rendered report
// — so the buffer is cheap insurance, not a streaming bottleneck.
func respond(w http.ResponseWriter, contentType, etag string, encode func(io.Writer) error) {
	var buf bytes.Buffer
	if err := encode(&buf); err != nil {
		fail(w, fmt.Errorf("query: encoding response: %w", err))
		return
	}
	if etag != "" {
		w.Header().Set("ETag", etag)
	}
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	// A short write here means the client hung up; the status line is
	// already on the wire, so there is nothing left to report.
	_, _ = w.Write(buf.Bytes())
}

// writeJSON writes v as indented JSON, buffered like every other body.
func writeJSON(w http.ResponseWriter, v any) {
	respond(w, "application/json; charset=utf-8", "", func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	})
}

// etagFor hashes a response body's immutable identity — the cache key
// plus the encoding — into a strong ETag. Reports are immutable per
// (archive, month range, view, scenario), and resolveKey canonicalizes
// every spelling of a slice to one key, so the hash is a free validator:
// no body bytes are touched to compute it. Live sources are mutable and
// get no ETag.
func etagFor(key Key, format, name string) string {
	if key.Live {
		return ""
	}
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%d|%d|%s|%s|%s|%s",
		key.Archive, key.From, key.To, key.View, key.Scenario, format, name)))
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

// etagMatch reports whether an If-None-Match header matches etag, using
// the weak comparison RFC 9110 prescribes for If-None-Match.
func etagMatch(header, etag string) bool {
	if header == "" || etag == "" {
		return false
	}
	for _, tok := range strings.Split(header, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "*" || tok == etag || strings.TrimPrefix(tok, "W/") == etag {
			return true
		}
	}
	return false
}

// notModified answers a conditional GET whose validator still matches:
// 304, the ETag, no body. Callers check it before building the report —
// the match is decided by the request's identity alone, so a 304 skips
// not just the encoding but the analysis a cold LRU would otherwise pay.
func notModified(w http.ResponseWriter, r *http.Request, etag string) bool {
	if !etagMatch(r.Header.Get("If-None-Match"), etag) {
		return false
	}
	w.Header().Set("ETag", etag)
	w.WriteHeader(http.StatusNotModified)
	return true
}

// artifactInfo describes one artifact in the /v1/artifacts listing.
type artifactInfo struct {
	Name    string           `json:"name"`
	Title   string           `json:"title"`
	Columns []measure.Column `json:"columns,omitempty"`
	Rows    int              `json:"rows"`
	Scalars []string         `json:"scalars,omitempty"`
}

// handleArtifacts lists the slice's artifacts: names, schemas, row
// counts — the index a consumer walks before fetching bodies.
func (s *Server) handleArtifacts(w http.ResponseWriter, r *http.Request) {
	key, err := s.resolveKey(r)
	if err != nil {
		fail(w, err)
		return
	}
	rep, err := s.report(key)
	if err != nil {
		fail(w, err)
		return
	}
	out := struct {
		Archive   string         `json:"archive"`
		Scenario  string         `json:"scenario,omitempty"`
		Months    string         `json:"months"`
		View      string         `json:"view,omitempty"`
		Artifacts []artifactInfo `json:"artifacts"`
	}{
		Archive:  key.Archive,
		Scenario: key.Scenario,
		Months:   key.From.Label() + ".." + key.To.Label(),
		View:     key.View,
	}
	for _, a := range rep.Artifacts() {
		info := artifactInfo{Name: a.Name, Title: a.Title, Columns: a.Columns, Rows: len(a.Rows)}
		for _, sc := range a.Scalars {
			info.Scalars = append(info.Scalars, sc.Name)
		}
		out.Artifacts = append(out.Artifacts, info)
	}
	writeJSON(w, out)
}

// handleArtifact serves one artifact in the requested format. The
// artifact name is validated against the model's static name list
// before the conditional-GET check, so a fabricated If-None-Match for a
// name that never had a representation cannot turn a 404 into a 304.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/artifact/")
	if name == "" || strings.Contains(name, "/") {
		fail(w, errBadRequest("query: bad artifact path %q", r.URL.Path))
		return
	}
	if !knownArtifact(name) {
		fail(w, &httpError{http.StatusNotFound,
			fmt.Sprintf("query: no artifact %q (valid: %s)", name, strings.Join(measure.ArtifactNames(), ", "))})
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	switch format {
	case "json", "csv", "text":
	default:
		fail(w, errBadRequest("query: unknown format %q (want json, csv or text)", format))
		return
	}
	key, err := s.resolveKey(r)
	if err != nil {
		fail(w, err)
		return
	}
	etag := etagFor(key, format, name)
	if notModified(w, r, etag) {
		return
	}
	var rep *measure.Report
	if s.cfg.AnalyzeProjection != nil && !key.Live && measure.ProjectionColumns(name) != nil {
		rep, err = s.reportProjected(key, name)
	} else {
		rep, err = s.report(key)
	}
	if err != nil {
		fail(w, err)
		return
	}
	a, ok := rep.Artifact(name)
	if !ok {
		fail(w, &httpError{http.StatusNotFound,
			fmt.Sprintf("query: no artifact %q (valid: %s)", name, strings.Join(measure.ArtifactNames(), ", "))})
		return
	}
	switch format {
	case "csv":
		respond(w, "text/csv; charset=utf-8", etag, a.WriteCSV)
	case "text":
		respond(w, "text/plain; charset=utf-8", etag, func(w io.Writer) error {
			measure.WriteText(w, a)
			return nil
		})
	default:
		respond(w, "application/json; charset=utf-8", etag, a.WriteJSON)
	}
}

// knownArtifact reports whether name is in the artifact model.
func knownArtifact(name string) bool {
	for _, n := range measure.ArtifactNames() {
		if n == name {
			return true
		}
	}
	return false
}

// handleReport serves the full report: the text rendering (the classic
// study output) or every artifact as one JSON document.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "text"
	}
	if format != "text" && format != "json" {
		fail(w, errBadRequest("query: unknown format %q (want text or json)", format))
		return
	}
	key, err := s.resolveKey(r)
	if err != nil {
		fail(w, err)
		return
	}
	etag := etagFor(key, format, "report")
	if notModified(w, r, etag) {
		return
	}
	rep, err := s.report(key)
	if err != nil {
		fail(w, err)
		return
	}
	if format == "json" {
		respond(w, "application/json; charset=utf-8", etag, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(rep.Artifacts())
		})
		return
	}
	respond(w, "text/plain; charset=utf-8", etag, func(w io.Writer) error {
		measure.WriteReportText(w, rep)
		return nil
	})
}

// handleManifest serves the archive manifest (no data files touched).
func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	man, err := s.manifest()
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, man)
}

// handleBlock serves one block by number as JSON — a point lookup that
// reuses the server's cached manifest (archive.ReadBlockFrom), so a hot
// loop of block queries parses the manifest once, not once per request.
// On a v3 archive the lookup decodes only the column chunks whose zone
// maps contain the block.
func (s *Server) handleBlock(w http.ResponseWriter, r *http.Request) {
	man, err := s.manifest()
	if err != nil {
		fail(w, err)
		return
	}
	numStr := r.URL.Query().Get("number")
	if numStr == "" {
		fail(w, errBadRequest("query: missing number parameter"))
		return
	}
	n, err := strconv.ParseUint(numStr, 10, 64)
	if err != nil {
		fail(w, errBadRequest("query: bad block number %q", numStr))
		return
	}
	held := false
	for i := range man.Segments {
		if seg := &man.Segments[i]; seg.FirstBlock <= n && n <= seg.LastBlock {
			held = true
			break
		}
	}
	if !held {
		fail(w, &httpError{http.StatusNotFound,
			fmt.Sprintf("query: no archived segment holds block %d", n)})
		return
	}
	b, err := archive.ReadBlockFrom(s.cfg.Archive, man, n)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, b)
}

// handleCache serves every cache level's hit/miss counters: the report
// LRU, the month-partial LRU (when configured) and the decoded-segment
// LRU beneath them.
func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Reports  CacheStats         `json:"reports"`
		Partials *PartialCacheStats `json:"partials,omitempty"`
		Segments SegmentCacheStats  `json:"segments"`
	}{s.cache.stats(), s.partialStatsPtr(), s.segs.stats()})
}

// partialStatsPtr returns the partial cache's stats, or nil when the
// level is not configured — /v1/cache then omits the field instead of
// reporting an all-zero level that does not exist.
func (s *Server) partialStatsPtr() *PartialCacheStats {
	if s.partials == nil {
		return nil
	}
	st := s.partials.stats()
	return &st
}
