package query

import (
	"container/list"
	"sync"

	"mevscope/internal/core/measure"
	"mevscope/internal/dataset"
	"mevscope/internal/types"
)

// Key identifies one analyzed report in the cache: which archive, which
// month slice of it, which observation view it classified against,
// which scenario produced it — or, for live follower snapshots (Live
// true, Archive empty), the height the snapshot covers, so a repeated
// live query at the same height is a hit and any new block is a natural
// invalidation.
type Key struct {
	Archive  string
	From, To types.Month
	// View is the observation view ("", "union", "quorum:K",
	// "vantage:N"); each view is its own analysis and cache entry.
	View     string
	Scenario string
	Live     bool
	Height   uint64
	// Projection names the single artifact a column-projected build
	// covers ("" = a full report). A projected report is sparse, so it
	// must never be cached under — or served from — the full-report key.
	Projection string
}

// CacheStats is a point-in-time view of the cache's effectiveness.
type CacheStats struct {
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// reportCache is a concurrency-safe LRU of analyzed reports. Reports are
// immutable once built, so a cached *measure.Report is served to any
// number of concurrent readers without copying.
type reportCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List
	items     map[Key]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

// cacheEntry is one LRU element.
type cacheEntry struct {
	key Key
	rep *measure.Report
}

// newReportCache creates an LRU holding up to capacity reports
// (minimum 1).
func newReportCache(capacity int) *reportCache {
	if capacity < 1 {
		capacity = 1
	}
	return &reportCache{cap: capacity, ll: list.New(), items: make(map[Key]*list.Element)}
}

// get returns the cached report and promotes it to most-recently-used.
func (c *reportCache) get(k Key) (*measure.Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).rep, true
}

// peek is get without the hit/miss accounting — the in-flight dedup's
// re-check under the server lock, which should not skew the stats a
// client reads off /v1/cache.
func (c *reportCache) peek(k Key) (*measure.Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).rep, true
}

// add inserts (or refreshes) a report, evicting the least-recently-used
// entry beyond capacity.
func (c *reportCache) add(k Key, rep *measure.Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*cacheEntry).rep = rep
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, rep: rep})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// stats snapshots the counters.
func (c *reportCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size: c.ll.Len(), Capacity: c.cap,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}

// partialKey identifies one analyzed month partial: which archive,
// which single month of it, which observation view the inference
// classified against, which scenario produced it. It is the mid-level
// cache key — finer than a report (one month, not a range), coarser
// than a decoded chunk (analysis output, not storage).
type partialKey struct {
	archive  string
	month    types.Month
	view     string
	scenario string
}

// PartialCacheStats is a point-in-time view of the partial LRU: entry
// count, the byte budget and its current use, and the hit counters.
type PartialCacheStats struct {
	Size          int   `json:"size"`
	CapacityBytes int64 `json:"capacity_bytes"`
	Bytes         int64 `json:"bytes"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
}

// partialCache is the third cache level, between the report LRU and the
// decoded-segment LRU: a concurrency-safe, byte-accounted LRU of
// analyzed month partials (measure.Partial). A range request that
// misses the report LRU assembles its report from the partials of its
// months, computing only the months not cached here — so overlapping,
// sliding and adjacent ranges re-pay decoding at most (segment cache)
// and analysis never, for the months they share. Partials are immutable
// once sealed, so one entry feeds any number of concurrent merges
// without copying. Eviction is by resident bytes (Partial.SizeBytes),
// never below one entry.
type partialCache struct {
	mu        sync.Mutex
	capBytes  int64
	ll        *list.List
	items     map[partialKey]*list.Element
	bytes     int64
	hits      int64
	misses    int64
	evictions int64
}

// partialEntry is one LRU element.
type partialEntry struct {
	key   partialKey
	p     *measure.Partial
	bytes int64
}

// newPartialCache creates a byte-bounded LRU (minimum one entry is
// always retained, whatever its size).
func newPartialCache(capBytes int64) *partialCache {
	if capBytes < 1 {
		capBytes = 1
	}
	return &partialCache{capBytes: capBytes, ll: list.New(), items: make(map[partialKey]*list.Element)}
}

// get returns the cached partial and promotes it to most-recently-used.
func (c *partialCache) get(k partialKey) (*measure.Partial, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*partialEntry).p, true
}

// peek is get without the hit/miss accounting — the in-flight dedup's
// re-check under the server lock.
func (c *partialCache) peek(k partialKey) (*measure.Partial, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*partialEntry).p, true
}

// add inserts (or refreshes) a partial, evicting least-recently-used
// entries until the byte budget holds (keeping at least one entry).
func (c *partialCache) add(k partialKey, p *measure.Partial) {
	size := p.SizeBytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		e := el.Value.(*partialEntry)
		c.bytes += size - e.bytes
		e.p, e.bytes = p, size
		c.ll.MoveToFront(el)
	} else {
		c.items[k] = c.ll.PushFront(&partialEntry{key: k, p: p, bytes: size})
		c.bytes += size
	}
	for c.bytes > c.capBytes && c.ll.Len() > 1 {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		e := oldest.Value.(*partialEntry)
		delete(c.items, e.key)
		c.bytes -= e.bytes
		c.evictions++
	}
}

// stats snapshots the counters.
func (c *partialCache) stats() PartialCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PartialCacheStats{
		Size: c.ll.Len(), CapacityBytes: c.capBytes, Bytes: c.bytes,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}

// segKey identifies one cached decode of one archive: a whole decoded
// month segment (column "", the v1/v2 granularity) or a single v3 column
// chunk.
type segKey struct {
	archive string
	month   types.Month
	column  string
}

// SegmentCacheStats is a point-in-time view of the segment LRU: entry
// counters plus the on-disk bytes the cached decodes stand in for.
type SegmentCacheStats struct {
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// segmentCache is the second cache level, under the report LRU: a
// concurrency-safe LRU of decoded archive data keyed by (archive, month,
// column). For v1/v2 archives the unit is a whole decoded month segment
// (column ""); for v3 archives it is a single decoded column chunk, so a
// projected read warms exactly the chunks it touched and a later full
// read (or a different projection) reuses them. A report-cache miss
// re-runs the measurement pipeline, but overlapping month ranges of the
// same archive hit here for the decodes they share. Cached values are
// immutable (blocks sealed, hashes cached, column data never mutated
// after decode), so one entry is assembled into any number of concurrent
// datasets without copying. Every entry carries the on-disk bytes it
// stands in for, surfaced in the stats.
//
// It implements archive.SegmentCache and archive.ChunkCache.
type segmentCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List
	items     map[segKey]*list.Element
	bytes     int64
	hits      int64
	misses    int64
	evictions int64
}

// segEntry is one LRU element. val is a *dataset.Segment for column ""
// and the archive decoder's opaque column representation otherwise.
type segEntry struct {
	key   segKey
	val   any
	bytes int64
}

// newSegmentCache creates an LRU holding up to capacity decoded entries
// (minimum 1).
func newSegmentCache(capacity int) *segmentCache {
	if capacity < 1 {
		capacity = 1
	}
	return &segmentCache{cap: capacity, ll: list.New(), items: make(map[segKey]*list.Element)}
}

// get returns the cached value and promotes it to most-recently-used.
func (c *segmentCache) get(k segKey) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*segEntry).val, true
}

// put inserts (or refreshes) a decoded value, evicting the
// least-recently-used entries beyond capacity.
func (c *segmentCache) put(k segKey, val any, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		e := el.Value.(*segEntry)
		c.bytes += bytes - e.bytes
		e.val, e.bytes = val, bytes
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&segEntry{key: k, val: val, bytes: bytes})
	c.bytes += bytes
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		e := oldest.Value.(*segEntry)
		delete(c.items, e.key)
		c.bytes -= e.bytes
		c.evictions++
	}
}

// Get returns the cached month segment (archive.SegmentCache).
func (c *segmentCache) Get(dir string, m types.Month) (*dataset.Segment, bool) {
	v, ok := c.get(segKey{dir, m, ""})
	if !ok {
		return nil, false
	}
	return v.(*dataset.Segment), true
}

// Add caches a decoded month segment (archive.SegmentCache).
func (c *segmentCache) Add(dir string, m types.Month, seg *dataset.Segment, bytes int64) {
	c.put(segKey{dir, m, ""}, seg, bytes)
}

// GetChunk returns the cached decode of one v3 column chunk
// (archive.ChunkCache).
func (c *segmentCache) GetChunk(dir string, m types.Month, col string) (any, bool) {
	return c.get(segKey{dir, m, col})
}

// AddChunk caches a decoded v3 column chunk (archive.ChunkCache).
func (c *segmentCache) AddChunk(dir string, m types.Month, col string, v any, bytes int64) {
	c.put(segKey{dir, m, col}, v, bytes)
}

// stats snapshots the counters.
func (c *segmentCache) stats() SegmentCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return SegmentCacheStats{
		Size: c.ll.Len(), Capacity: c.cap, Bytes: c.bytes,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}
