package query

import (
	"container/list"
	"sync"

	"mevscope/internal/core/measure"
	"mevscope/internal/dataset"
	"mevscope/internal/types"
)

// Key identifies one analyzed report in the cache: which archive, which
// month slice of it, which observation view it classified against,
// which scenario produced it — or, for live follower snapshots (Live
// true, Archive empty), the height the snapshot covers, so a repeated
// live query at the same height is a hit and any new block is a natural
// invalidation.
type Key struct {
	Archive  string
	From, To types.Month
	// View is the observation view ("", "union", "quorum:K",
	// "vantage:N"); each view is its own analysis and cache entry.
	View     string
	Scenario string
	Live     bool
	Height   uint64
}

// CacheStats is a point-in-time view of the cache's effectiveness.
type CacheStats struct {
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// reportCache is a concurrency-safe LRU of analyzed reports. Reports are
// immutable once built, so a cached *measure.Report is served to any
// number of concurrent readers without copying.
type reportCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List
	items     map[Key]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

// cacheEntry is one LRU element.
type cacheEntry struct {
	key Key
	rep *measure.Report
}

// newReportCache creates an LRU holding up to capacity reports
// (minimum 1).
func newReportCache(capacity int) *reportCache {
	if capacity < 1 {
		capacity = 1
	}
	return &reportCache{cap: capacity, ll: list.New(), items: make(map[Key]*list.Element)}
}

// get returns the cached report and promotes it to most-recently-used.
func (c *reportCache) get(k Key) (*measure.Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).rep, true
}

// peek is get without the hit/miss accounting — the in-flight dedup's
// re-check under the server lock, which should not skew the stats a
// client reads off /v1/cache.
func (c *reportCache) peek(k Key) (*measure.Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).rep, true
}

// add inserts (or refreshes) a report, evicting the least-recently-used
// entry beyond capacity.
func (c *reportCache) add(k Key, rep *measure.Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*cacheEntry).rep = rep
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, rep: rep})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// stats snapshots the counters.
func (c *reportCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size: c.ll.Len(), Capacity: c.cap,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}

// segKey identifies one decoded month segment of one archive.
type segKey struct {
	archive string
	month   types.Month
}

// SegmentCacheStats is a point-in-time view of the segment LRU: entry
// counters plus the on-disk bytes the cached decodes stand in for.
type SegmentCacheStats struct {
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// segmentCache is the second cache level, under the report LRU: a
// concurrency-safe LRU of decoded archive segments keyed by (archive,
// month). A report-cache miss re-runs the measurement pipeline, but
// overlapping month ranges of the same archive hit here for the months
// they share, so the disk is read and the JSON decoded at most once per
// month however the query ranges slice the window. Decoded segments are
// immutable (blocks sealed, hashes cached), so one entry is assembled
// into any number of concurrent datasets without copying.
//
// It implements archive.SegmentCache.
type segmentCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List
	items     map[segKey]*list.Element
	bytes     int64
	hits      int64
	misses    int64
	evictions int64
}

// segEntry is one LRU element.
type segEntry struct {
	key   segKey
	seg   *dataset.Segment
	bytes int64
}

// newSegmentCache creates an LRU holding up to capacity decoded segments
// (minimum 1).
func newSegmentCache(capacity int) *segmentCache {
	if capacity < 1 {
		capacity = 1
	}
	return &segmentCache{cap: capacity, ll: list.New(), items: make(map[segKey]*list.Element)}
}

// Get returns the cached segment and promotes it to most-recently-used.
func (c *segmentCache) Get(dir string, m types.Month) (*dataset.Segment, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[segKey{dir, m}]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*segEntry).seg, true
}

// Add inserts (or refreshes) a decoded segment, evicting the
// least-recently-used entries beyond capacity.
func (c *segmentCache) Add(dir string, m types.Month, seg *dataset.Segment, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := segKey{dir, m}
	if el, ok := c.items[k]; ok {
		e := el.Value.(*segEntry)
		c.bytes += bytes - e.bytes
		e.seg, e.bytes = seg, bytes
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&segEntry{key: k, seg: seg, bytes: bytes})
	c.bytes += bytes
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		e := oldest.Value.(*segEntry)
		delete(c.items, e.key)
		c.bytes -= e.bytes
		c.evictions++
	}
}

// stats snapshots the counters.
func (c *segmentCache) stats() SegmentCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return SegmentCacheStats{
		Size: c.ll.Len(), Capacity: c.cap, Bytes: c.bytes,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}
