package query_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"mevscope"
	"mevscope/internal/query"
	"mevscope/internal/types"
)

// The serve benchmarks behind CI's BENCH_serve.json artifact: cold
// (restore + analyze per request) vs cached (LRU hit per request)
// latency and allocations for a full-report query, plus a parallel
// client benchmark over the cached path. The acceptance bar is cached ≥
// 10× faster than cold for the repeated full-report request.

// benchGet drives one request through the handler, failing on non-200.
func benchGet(b *testing.B, srv *query.Server, url string) {
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	if rec.Code != http.StatusOK {
		b.Fatalf("%s → %d: %s", url, rec.Code, rec.Body.String())
	}
}

// benchColdReport measures the cold query path over one archive: every
// request misses both cache levels (fresh server), so it pays the full
// archive restore plus the measurement pipeline.
func benchColdReport(b *testing.B, dir string) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srv, err := query.New(query.Config{Archive: dir, Analyze: analyzeReal, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		benchGet(b, srv, "/v1/report?format=text")
	}
}

// BenchmarkServeColdReport is the cold query benchmark against a v2
// archive — the month-granular frame encoding.
func BenchmarkServeColdReport(b *testing.B) {
	dir, _, _ := testArchives(b)
	benchColdReport(b, dir)
}

// BenchmarkServeColdReportV1 is the same cold query against the same
// world in the legacy v1 encoding: the regression baseline for the v2
// restore path.
func BenchmarkServeColdReportV1(b *testing.B) {
	_, dir, _ := testArchives(b)
	benchColdReport(b, dir)
}

// BenchmarkServeColdReportV3 is the same cold query against the same
// world as column chunks — the default a new `mevscope archive`
// produces.
func BenchmarkServeColdReportV3(b *testing.B) {
	_, _, dir := testArchives(b)
	benchColdReport(b, dir)
}

// BenchmarkServeColdArtifactProjected measures the projected cold serve:
// a header-level artifact against a v3 archive decodes only the headers
// and flashbots chunks, so this is the number the projection path is
// judged by against BenchmarkServeColdReportV3.
func BenchmarkServeColdArtifactProjected(b *testing.B) {
	_, _, dir := testArchives(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srv, err := query.New(query.Config{
			Archive: dir, Analyze: analyzeReal,
			AnalyzeProjection: mevscope.AnalyzeDatasetProjection, Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		benchGet(b, srv, "/v1/artifact/fig3?format=json")
	}
}

// overlappingRangeURLs is the sliding-window query mix: 6-month report
// windows stepping one month at a time across the whole archive. Every
// URL is a distinct report key, so the report LRU never helps — the
// workload is decided by how often each month is re-analyzed.
func overlappingRangeURLs() []string {
	const win = 6
	var urls []string
	for m := types.Month(0); m+win <= types.StudyMonths; m++ {
		urls = append(urls, fmt.Sprintf("/v1/report?format=text&months=%s..%s", m.Label(), (m+win-1).Label()))
	}
	return urls
}

// benchColdOverlapping drives the sliding-window mix through a fresh
// server per iteration. Each iteration first issues one full-range
// warming request under a stopped timer — steady-state serving has the
// segment LRU hot from prior traffic, and the warming request models
// exactly that (on the partial path it also seals every month, the
// analyze-each-month-once half of the memoization). The timed region
// is the 18 sliding windows, every one a report key the server has
// never seen: with the partial cache each window assembles cached
// month partials; without it each window re-analyzes its whole range.
func benchColdOverlapping(b *testing.B, partials bool) {
	_, _, dir := testArchives(b)
	urls := overlappingRangeURLs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := query.Config{Archive: dir, Analyze: analyzeReal, Workers: 1}
		if partials {
			cfg.AnalyzePartial = mevscope.AnalyzeDatasetPartial
		}
		srv, err := query.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		benchGet(b, srv, "/v1/report?format=text")
		b.StartTimer()
		for _, u := range urls {
			benchGet(b, srv, u)
		}
	}
}

// BenchmarkServeColdOverlappingRanges is the month-partial memoization
// headline number: the sliding-window mix over a cold server with the
// partial cache on. The acceptance bar is ≥ 5× faster than the
// ...Full baseline below.
func BenchmarkServeColdOverlappingRanges(b *testing.B) { benchColdOverlapping(b, true) }

// BenchmarkServeColdOverlappingRangesFull is the same mix on the legacy
// path: every window re-analyzes its full range from scratch.
func BenchmarkServeColdOverlappingRangesFull(b *testing.B) { benchColdOverlapping(b, false) }

// BenchmarkServePartialAssemblyWarm measures pure assembly: every month
// partial of a 12-month window is cached, and the report LRU is sized
// to one entry while two windows alternate — so each request misses
// the report cache and rebuilds the report from warm partials. This is
// the steady-state cost of a never-seen range over a hot month set.
func BenchmarkServePartialAssemblyWarm(b *testing.B) {
	_, _, dir := testArchives(b)
	srv, err := query.New(query.Config{
		Archive: dir, Analyze: analyzeReal,
		AnalyzePartial: mevscope.AnalyzeDatasetPartial,
		Workers:        1, CacheSize: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	windows := []string{
		fmt.Sprintf("/v1/report?format=text&months=%s..%s", types.Month(0).Label(), types.Month(11).Label()),
		fmt.Sprintf("/v1/report?format=text&months=%s..%s", types.Month(1).Label(), types.Month(12).Label()),
	}
	for _, u := range windows {
		benchGet(b, srv, u) // warm the partial cache for months 0..12
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, srv, windows[i%2])
	}
	b.StopTimer()
	if st := srv.PartialCacheStats(); st.Misses != 13 {
		b.Fatalf("warm assembly benchmark rebuilt partials: %+v", st)
	}
}

// BenchmarkServeCachedReport measures the repeated full-report request:
// after one warming query, every request is an LRU hit that re-encodes
// the cached report.
func BenchmarkServeCachedReport(b *testing.B) {
	srv := newServer(b, 4, nil)
	benchGet(b, srv, "/v1/report?format=text")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, srv, "/v1/report?format=text")
	}
	if st := srv.CacheStats(); st.Misses != 1 {
		b.Fatalf("cached benchmark missed the cache: %+v", st)
	}
}

// BenchmarkServeCachedParallel hammers the warm cache from parallel
// clients — the serving subsystem's steady state under heavy traffic.
func BenchmarkServeCachedParallel(b *testing.B) {
	srv := newServer(b, 4, nil)
	benchGet(b, srv, "/v1/artifact/fig3?format=json")
	var failures atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/artifact/fig3?format=json", nil))
			if rec.Code != http.StatusOK {
				failures.Add(1)
			}
		}
	})
	if failures.Load() > 0 {
		b.Fatalf("%d parallel requests failed", failures.Load())
	}
}
