package query_test

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"mevscope"
	"mevscope/internal/query"
)

// The serve benchmarks behind CI's BENCH_serve.json artifact: cold
// (restore + analyze per request) vs cached (LRU hit per request)
// latency and allocations for a full-report query, plus a parallel
// client benchmark over the cached path. The acceptance bar is cached ≥
// 10× faster than cold for the repeated full-report request.

// benchGet drives one request through the handler, failing on non-200.
func benchGet(b *testing.B, srv *query.Server, url string) {
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	if rec.Code != http.StatusOK {
		b.Fatalf("%s → %d: %s", url, rec.Code, rec.Body.String())
	}
}

// benchColdReport measures the cold query path over one archive: every
// request misses both cache levels (fresh server), so it pays the full
// archive restore plus the measurement pipeline.
func benchColdReport(b *testing.B, dir string) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srv, err := query.New(query.Config{Archive: dir, Analyze: analyzeReal, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		benchGet(b, srv, "/v1/report?format=text")
	}
}

// BenchmarkServeColdReport is the cold query benchmark against a v2
// archive — the month-granular frame encoding.
func BenchmarkServeColdReport(b *testing.B) {
	dir, _, _ := testArchives(b)
	benchColdReport(b, dir)
}

// BenchmarkServeColdReportV1 is the same cold query against the same
// world in the legacy v1 encoding: the regression baseline for the v2
// restore path.
func BenchmarkServeColdReportV1(b *testing.B) {
	_, dir, _ := testArchives(b)
	benchColdReport(b, dir)
}

// BenchmarkServeColdReportV3 is the same cold query against the same
// world as column chunks — the default a new `mevscope archive`
// produces.
func BenchmarkServeColdReportV3(b *testing.B) {
	_, _, dir := testArchives(b)
	benchColdReport(b, dir)
}

// BenchmarkServeColdArtifactProjected measures the projected cold serve:
// a header-level artifact against a v3 archive decodes only the headers
// and flashbots chunks, so this is the number the projection path is
// judged by against BenchmarkServeColdReportV3.
func BenchmarkServeColdArtifactProjected(b *testing.B) {
	_, _, dir := testArchives(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srv, err := query.New(query.Config{
			Archive: dir, Analyze: analyzeReal,
			AnalyzeProjection: mevscope.AnalyzeDatasetProjection, Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		benchGet(b, srv, "/v1/artifact/fig3?format=json")
	}
}

// BenchmarkServeCachedReport measures the repeated full-report request:
// after one warming query, every request is an LRU hit that re-encodes
// the cached report.
func BenchmarkServeCachedReport(b *testing.B) {
	srv := newServer(b, 4, nil)
	benchGet(b, srv, "/v1/report?format=text")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, srv, "/v1/report?format=text")
	}
	if st := srv.CacheStats(); st.Misses != 1 {
		b.Fatalf("cached benchmark missed the cache: %+v", st)
	}
}

// BenchmarkServeCachedParallel hammers the warm cache from parallel
// clients — the serving subsystem's steady state under heavy traffic.
func BenchmarkServeCachedParallel(b *testing.B) {
	srv := newServer(b, 4, nil)
	benchGet(b, srv, "/v1/artifact/fig3?format=json")
	var failures atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/artifact/fig3?format=json", nil))
			if rec.Code != http.StatusOK {
				failures.Add(1)
			}
		}
	})
	if failures.Load() > 0 {
		b.Fatalf("%d parallel requests failed", failures.Load())
	}
}
