package query_test

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mevscope"
	"mevscope/internal/archive"
	"mevscope/internal/core/measure"
	"mevscope/internal/dataset"
	"mevscope/internal/obs"
	"mevscope/internal/query"
	"mevscope/internal/sim"
)

// Shared test archive: one world simulated once per test process.
var (
	archOnce sync.Once
	archDir  string
	archErr  error
)

func TestMain(m *testing.M) {
	code := m.Run()
	if archDir != "" {
		os.RemoveAll(archDir)
	}
	if mvArchDir != "" {
		os.RemoveAll(mvArchDir)
	}
	os.Exit(code)
}

// testArchive simulates a small full-window world (the observation
// window opens, so every artifact has rows) and archives it in every
// format: v2 (the month-granular baseline most tests front — its cache
// counts are exact months), v1 (the legacy baseline the cold-query
// benchmark compares against) and v3 (column chunks, the projection and
// chunk-cache tests).
func testArchive(tb testing.TB) string {
	dir, _, _ := testArchives(tb)
	return dir
}

func testArchives(tb testing.TB) (v2, v1, v3 string) {
	tb.Helper()
	archOnce.Do(func() {
		dir, err := os.MkdirTemp("", "mevscope-query-*")
		if err != nil {
			archErr = err
			return
		}
		cfg, err := mevscope.Options{Seed: 7, BlocksPerMonth: 50}.Config()
		if err != nil {
			archErr = err
			return
		}
		s, err := sim.New(cfg)
		if err != nil {
			archErr = err
			return
		}
		if err := s.Run(); err != nil {
			archErr = err
			return
		}
		meta := map[string]string{"scenario": "baseline", "seed": "7"}
		ds := dataset.FromSim(s)
		if _, err := archive.WriteFormat(dir+"/v2", ds, meta, archive.FormatV2); err != nil {
			archErr = err
			return
		}
		if _, err := archive.WriteFormat(dir+"/v1", ds, meta, archive.FormatV1); err != nil {
			archErr = err
			return
		}
		if _, err := archive.WriteFormat(dir+"/v3", ds, meta, archive.FormatV3); err != nil {
			archErr = err
			return
		}
		archDir = dir
	})
	if archErr != nil {
		tb.Fatal(archErr)
	}
	return archDir + "/v2", archDir + "/v1", archDir + "/v3"
}

// analyzeReal adapts the full measurement pipeline to query.AnalyzeFunc.
func analyzeReal(ds *dataset.Dataset, workers int, sp *obs.Span) (*measure.Report, error) {
	st, err := mevscope.AnalyzeDatasetTraced(ds, workers, sp)
	if err != nil {
		return nil, err
	}
	return st.Report, nil
}

// newServer builds a server over the shared archive with a call-counting
// analyze wrapper.
func newServer(tb testing.TB, cacheSize int, calls *atomic.Int64) *query.Server {
	tb.Helper()
	srv, err := query.New(query.Config{
		Archive: testArchive(tb),
		Analyze: func(ds *dataset.Dataset, workers int, sp *obs.Span) (*measure.Report, error) {
			if calls != nil {
				calls.Add(1)
			}
			return analyzeReal(ds, workers, sp)
		},
		Workers:   1,
		CacheSize: cacheSize,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return srv
}

// get performs a GET and returns status and body.
func get(tb testing.TB, h http.Handler, url string) (int, string) {
	tb.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	return rec.Code, rec.Body.String()
}

// TestArtifactFormatsConsistent: the same artifact fetched as JSON, CSV
// and text carries the same values — the acceptance criterion of the
// artifact model (one value, three encodings).
func TestArtifactFormatsConsistent(t *testing.T) {
	srv := newServer(t, 4, nil)

	code, jsonBody := get(t, srv, "/v1/artifact/fig3?format=json")
	if code != http.StatusOK {
		t.Fatalf("json status %d: %s", code, jsonBody)
	}
	var art struct {
		Name    string `json:"name"`
		Columns []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"columns"`
		Rows [][]any `json:"rows"`
	}
	if err := json.Unmarshal([]byte(jsonBody), &art); err != nil {
		t.Fatal(err)
	}
	if art.Name != "fig3" || len(art.Rows) == 0 {
		t.Fatalf("bad artifact: name=%q rows=%d", art.Name, len(art.Rows))
	}
	if art.Columns[0].Kind != "month" || art.Columns[1].Kind != "int" {
		t.Errorf("schema kinds = %v", art.Columns)
	}

	code, csvBody := get(t, srv, "/v1/artifact/fig3?format=csv")
	if code != http.StatusOK {
		t.Fatalf("csv status %d", code)
	}
	records, err := csv.NewReader(strings.NewReader(csvBody)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records)-1 != len(art.Rows) {
		t.Fatalf("csv rows = %d, json rows = %d", len(records)-1, len(art.Rows))
	}
	for i, row := range art.Rows {
		rec := records[i+1]
		if rec[0] != row[0].(string) {
			t.Errorf("row %d month: csv %q json %v", i, rec[0], row[0])
		}
		if want := fmt.Sprintf("%d", int64(row[1].(float64))); rec[1] != want {
			t.Errorf("row %d flashbots_blocks: csv %q json %v", i, rec[1], want)
		}
	}

	code, textBody := get(t, srv, "/v1/artifact/fig3?format=text")
	if code != http.StatusOK {
		t.Fatalf("text status %d", code)
	}
	for _, row := range art.Rows {
		if !strings.Contains(textBody, row[0].(string)) {
			t.Errorf("text missing month %v", row[0])
		}
	}
}

// TestMonthRangeSlicing: a months= query restores only those segments
// and the per-month values match the full-archive analysis.
func TestMonthRangeSlicing(t *testing.T) {
	srv := newServer(t, 4, nil)
	fetch := func(url string) [][]any {
		code, body := get(t, srv, url)
		if code != http.StatusOK {
			t.Fatalf("%s → %d: %s", url, code, body)
		}
		var art struct {
			Rows [][]any `json:"rows"`
		}
		if err := json.Unmarshal([]byte(body), &art); err != nil {
			t.Fatal(err)
		}
		return art.Rows
	}
	full := fetch("/v1/artifact/fig3?format=json")
	sliced := fetch("/v1/artifact/fig3?format=json&months=2021-03..2021-06")
	if len(sliced) != 4 {
		t.Fatalf("sliced rows = %d, want 4", len(sliced))
	}
	if sliced[0][0] != "3/2021" || sliced[3][0] != "6/2021" {
		t.Fatalf("sliced months = %v..%v", sliced[0][0], sliced[3][0])
	}
	byMonth := map[string][]any{}
	for _, row := range full {
		byMonth[row[0].(string)] = row
	}
	for _, row := range sliced {
		want := byMonth[row[0].(string)]
		if want == nil {
			t.Fatalf("month %v missing from full report", row[0])
		}
		if row[1] != want[1] || row[2] != want[2] {
			t.Errorf("month %v: sliced %v/%v, full %v/%v", row[0], row[1], row[2], want[1], want[2])
		}
	}
}

// TestCacheHitsSkipAnalyze: repeated queries for one slice analyze once;
// a different slice is a new key; the listing and report endpoints share
// the same cached report.
func TestCacheHitsSkipAnalyze(t *testing.T) {
	var calls atomic.Int64
	srv := newServer(t, 4, &calls)

	for i := 0; i < 3; i++ {
		if code, body := get(t, srv, "/v1/report?format=text"); code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("analyze calls after 3 identical queries = %d, want 1", got)
	}
	get(t, srv, "/v1/artifact/table1?format=json")
	get(t, srv, "/v1/artifacts")
	if got := calls.Load(); got != 1 {
		t.Fatalf("analyze calls after artifact+listing = %d, want 1 (shared cache)", got)
	}
	get(t, srv, "/v1/artifact/fig3?months=2021-03..2021-06")
	if got := calls.Load(); got != 2 {
		t.Fatalf("analyze calls after new slice = %d, want 2", got)
	}
	st := srv.CacheStats()
	if st.Hits < 4 || st.Misses != 2 {
		t.Errorf("cache stats = %+v", st)
	}
}

// TestLRUEviction: with capacity 1, alternating slices evict each other
// and re-analyze.
func TestLRUEviction(t *testing.T) {
	var calls atomic.Int64
	srv := newServer(t, 1, &calls)
	a := "/v1/artifact/fig3?months=2021-03..2021-04"
	b := "/v1/artifact/fig3?months=2021-05..2021-06"
	get(t, srv, a)
	get(t, srv, b)
	get(t, srv, a)
	if got := calls.Load(); got != 3 {
		t.Fatalf("analyze calls = %d, want 3 (capacity-1 LRU thrashes)", got)
	}
	if st := srv.CacheStats(); st.Evictions < 2 {
		t.Errorf("evictions = %d, want ≥ 2", st.Evictions)
	}
}

// TestConcurrentMissesAnalyzeOnce: a burst of concurrent requests for a
// cold key runs one analysis; the rest wait for it (in-flight dedup).
func TestConcurrentMissesAnalyzeOnce(t *testing.T) {
	var calls atomic.Int64
	srv := newServer(t, 4, &calls)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/artifact/table1", nil))
			if rec.Code != http.StatusOK {
				errs <- fmt.Sprintf("status %d", rec.Code)
			}
			if _, err := io.Copy(io.Discard, rec.Body); err != nil {
				errs <- err.Error()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("analyze calls under concurrent burst = %d, want 1", got)
	}
}

// TestLiveSource: a registered live snapshot serves through the same
// endpoints; the cache key carries the height, so one height is cached
// (Snapshot runs once per height) and a new height re-snapshots.
func TestLiveSource(t *testing.T) {
	srv := newServer(t, 4, nil)
	var height atomic.Uint64
	var snapshots atomic.Int64
	height.Store(10)
	srv.SetLive(query.Live{
		Height: func() uint64 { return height.Load() },
		Snapshot: func() (*measure.Report, uint64) {
			snapshots.Add(1)
			r := &measure.Report{}
			r.Table1.Total.Strategy = "Total"
			return r, height.Load()
		},
	})
	code, body := get(t, srv, "/v1/artifact/table1?source=live&format=json")
	if code != http.StatusOK {
		t.Fatalf("live status %d: %s", code, body)
	}
	if !strings.Contains(body, "Total") {
		t.Errorf("live artifact body: %s", body)
	}
	get(t, srv, "/v1/artifact/table1?source=live&format=json")
	st := srv.CacheStats()
	if st.Hits < 1 {
		t.Errorf("repeated live query at one height should hit the cache: %+v", st)
	}
	if got := snapshots.Load(); got != 1 {
		t.Errorf("snapshots at one height = %d, want 1 (cache must absorb repeats)", got)
	}
	height.Store(11)
	if code, _ := get(t, srv, "/v1/artifact/table1?source=live&format=json"); code != http.StatusOK {
		t.Fatal("live query after height change failed")
	}
	if got := snapshots.Load(); got != 2 {
		t.Errorf("new height should re-snapshot: snapshots = %d", got)
	}
	if code, _ := get(t, srv, "/v1/artifact/table1?source=live&months=2021-03"); code != http.StatusBadRequest {
		t.Error("months + live should be rejected")
	}
}

// TestErrors: the API's failure modes map to the right status codes.
func TestErrors(t *testing.T) {
	srv := newServer(t, 4, nil)
	cases := []struct {
		url  string
		code int
	}{
		{"/v1/artifact/nope", http.StatusNotFound},
		{"/v1/artifact/fig3?format=yaml", http.StatusBadRequest},
		{"/v1/artifact/fig3?months=2019-01..2021-06", http.StatusBadRequest},
		{"/v1/artifact/fig3?months=2021-06..2021-03", http.StatusBadRequest},
		{"/v1/artifact/fig3?source=ftp", http.StatusBadRequest},
		{"/v1/artifact/table1?source=live", http.StatusNotFound}, // no live source set
		{"/v1/report?format=pdf", http.StatusBadRequest},
	}
	for _, c := range cases {
		if code, body := get(t, srv, c.url); code != c.code {
			t.Errorf("%s → %d (want %d): %s", c.url, code, c.code, strings.TrimSpace(body))
		}
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/report", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST → %d, want 405", rec.Code)
	}
	if code, _ := get(t, srv, "/v1/manifest"); code != http.StatusOK {
		t.Error("manifest endpoint failed")
	}
	if code, _ := get(t, srv, "/v1/cache"); code != http.StatusOK {
		t.Error("cache endpoint failed")
	}
}

// TestNoArchiveLiveOnly: a server with no archive still serves its live
// source, and archive queries 404.
func TestNoArchiveLiveOnly(t *testing.T) {
	srv, err := query.New(query.Config{Analyze: analyzeReal})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, srv, "/v1/artifact/table1"); code != http.StatusNotFound {
		t.Error("archive query without archive should 404")
	}
	srv.SetLive(query.Live{
		Height:   func() uint64 { return 1 },
		Snapshot: func() (*measure.Report, uint64) { return &measure.Report{}, 1 },
	})
	if code, _ := get(t, srv, "/v1/artifact/table1?source=live"); code != http.StatusOK {
		t.Error("live query without archive should work")
	}
}

// TestMonthsOutsideArchive: a range that is valid for the study window
// but entirely absent from a truncated archive is a 400, not a 500.
func TestMonthsOutsideArchive(t *testing.T) {
	dir := t.TempDir()
	cfg, err := mevscope.Options{Seed: 3, BlocksPerMonth: 20, Months: 6}.Config()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := archive.Write(dir, dataset.FromSim(s), nil); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	srv, err := query.New(query.Config{
		Archive: dir,
		Analyze: func(ds *dataset.Dataset, workers int, sp *obs.Span) (*measure.Report, error) {
			calls.Add(1)
			return analyzeReal(ds, workers, sp)
		},
		Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	code, body := get(t, srv, "/v1/artifact/fig3?months=2021-08..2021-10")
	if code != http.StatusBadRequest {
		t.Errorf("out-of-archive months → %d, want 400: %s", code, strings.TrimSpace(body))
	}
	if !strings.Contains(body, "archive's window") {
		t.Errorf("error does not name the archive window: %s", body)
	}
	// A partially overlapping range restores the intersection, and every
	// spelling of the same slice shares one cache key (clamping).
	if code, _ := get(t, srv, "/v1/artifact/fig3?months=2020-09..2021-08"); code != http.StatusOK {
		t.Error("overlapping range should serve the intersection")
	}
	if code, _ := get(t, srv, "/v1/artifact/fig3?months=2020-09..2020-10"); code != http.StatusOK {
		t.Error("clamped spelling failed")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("analyze calls = %d, want 1 (clamped ranges should share one key)", got)
	}
}

// TestSegmentCacheSharesOverlap: overlapping month ranges are distinct
// report-cache keys (both analyze), but the months they share decode
// once — the second query's cold build reads only the months the first
// one never touched, and /v1/cache exposes both levels.
func TestSegmentCacheSharesOverlap(t *testing.T) {
	var calls atomic.Int64
	srv := newServer(t, 8, &calls)
	if code, body := get(t, srv, "/v1/artifact/fig3?months=2021-01..2021-06"); code != http.StatusOK {
		t.Fatalf("first range failed: %s", body)
	}
	first := srv.SegmentCacheStats()
	if first.Size != 6 || first.Hits != 0 {
		t.Fatalf("first cold range: segment cache %+v, want 6 decoded months, 0 hits", first)
	}
	if first.Bytes <= 0 {
		t.Errorf("segment cache accounts %d bytes, want > 0", first.Bytes)
	}
	if code, body := get(t, srv, "/v1/artifact/fig3?months=2021-04..2021-09"); code != http.StatusOK {
		t.Fatalf("overlapping range failed: %s", body)
	}
	second := srv.SegmentCacheStats()
	if got := calls.Load(); got != 2 {
		t.Fatalf("analyze calls = %d, want 2 (distinct ranges are distinct reports)", got)
	}
	if second.Size != 9 {
		t.Errorf("after overlap: %d cached months, want 9 (2021-01..2021-09)", second.Size)
	}
	if second.Hits < 3 {
		t.Errorf("overlap hit %d cached segments, want ≥ 3 (2021-04..2021-06 shared)", second.Hits)
	}
	// The exact same range again: pure report-cache hit, segment cache
	// untouched.
	if code, _ := get(t, srv, "/v1/artifact/fig3?months=2021-04..2021-09"); code != http.StatusOK {
		t.Fatal("repeat range failed")
	}
	if after := srv.SegmentCacheStats(); after.Hits != second.Hits || after.Misses != second.Misses {
		t.Errorf("report-cache hit touched the segment cache: %+v vs %+v", after, second)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("analyze calls after repeat = %d, want 2", got)
	}
	// Both cache levels are visible on the wire.
	code, body := get(t, srv, "/v1/cache")
	if code != http.StatusOK {
		t.Fatal("cache endpoint failed")
	}
	var stats struct {
		Reports  query.CacheStats        `json:"reports"`
		Segments query.SegmentCacheStats `json:"segments"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("cache endpoint is not the two-level shape: %v\n%s", err, body)
	}
	if stats.Segments.Size == 0 || stats.Reports.Misses == 0 {
		t.Errorf("cache endpoint stats look empty: %s", body)
	}
}

// TestSegmentCacheEviction: a tiny segment cache keeps serving correct
// reports while evicting, it just re-reads more.
func TestSegmentCacheEviction(t *testing.T) {
	srv, err := query.New(query.Config{
		Archive:          testArchive(t),
		Analyze:          analyzeReal,
		Workers:          1,
		SegmentCacheSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, want := get(t, srv, "/v1/artifact/fig3?months=2021-01..2021-06")
	if code, _ := get(t, srv, "/v1/artifact/fig4?months=2021-07..2021-12"); code != http.StatusOK {
		t.Fatal("second range failed")
	}
	st := srv.SegmentCacheStats()
	if st.Size != 2 || st.Evictions == 0 {
		t.Errorf("tiny cache stats %+v, want size 2 with evictions", st)
	}
	// Evicted months re-decode correctly: same body as the first query
	// (report cache is large enough to hold both, so force a fresh server).
	srv2, err := query.New(query.Config{
		Archive:          testArchive(t),
		Analyze:          analyzeReal,
		Workers:          1,
		SegmentCacheSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, got := get(t, srv2, "/v1/artifact/fig3?months=2021-01..2021-06"); got != want {
		t.Error("report over a thrashing segment cache differs")
	}
}

// TestBlockEndpoint: /v1/block serves single blocks straight off the
// manifest's block index — no report build, no full restore — against
// both the frame (v2) and column-chunk (v3) encodings, and turns
// out-of-range or malformed numbers into 404/400, not 500.
func TestBlockEndpoint(t *testing.T) {
	v2Dir, _, v3Dir := testArchives(t)
	for _, dir := range []string{v2Dir, v3Dir} {
		man, err := archive.ReadManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		var calls atomic.Int64
		srv, err := query.New(query.Config{
			Archive: dir,
			Analyze: func(ds *dataset.Dataset, workers int, sp *obs.Span) (*measure.Report, error) {
				calls.Add(1)
				return analyzeReal(ds, workers, sp)
			},
			Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := man.Segments[len(man.Segments)/2].FirstBlock
		status, body := get(t, srv, fmt.Sprintf("/v1/block?number=%d", want))
		if status != http.StatusOK {
			t.Fatalf("block %d → %d: %s", want, status, body)
		}
		var got struct {
			Header struct{ Number uint64 }
		}
		if err := json.Unmarshal([]byte(body), &got); err != nil {
			t.Fatal(err)
		}
		if got.Header.Number != want {
			t.Errorf("asked for block %d, got %d", want, got.Header.Number)
		}
		if calls.Load() != 0 {
			t.Errorf("block lookup ran the analysis pipeline %d times", calls.Load())
		}
		if status, _ := get(t, srv, fmt.Sprintf("/v1/block?number=%d", man.Head+1)); status != http.StatusNotFound {
			t.Errorf("past-head block → %d, want 404", status)
		}
		if status, _ := get(t, srv, "/v1/block?number=bogus"); status != http.StatusBadRequest {
			t.Errorf("malformed block number → %d, want 400", status)
		}
		if status, _ := get(t, srv, "/v1/block"); status != http.StatusBadRequest {
			t.Errorf("missing block number → %d, want 400", status)
		}
	}
}

// TestProjectedArtifactMatchesFull: with the projection hook installed,
// a projectable artifact over a v3 archive is built from a column
// projection — the full pipeline never runs — and its response body is
// byte-identical to the same artifact served off a full report build.
func TestProjectedArtifactMatchesFull(t *testing.T) {
	_, _, v3Dir := testArchives(t)
	var fullCalls, projCalls atomic.Int64
	full, err := query.New(query.Config{Archive: v3Dir, Analyze: analyzeReal, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	proj, err := query.New(query.Config{
		Archive: v3Dir,
		Analyze: func(ds *dataset.Dataset, workers int, sp *obs.Span) (*measure.Report, error) {
			fullCalls.Add(1)
			return analyzeReal(ds, workers, sp)
		},
		AnalyzeProjection: func(ds *dataset.Dataset, workers int, artifacts []string, sp *obs.Span) (*measure.Report, error) {
			projCalls.Add(1)
			if len(ds.Projection) == 0 {
				t.Error("projection build got a non-projected dataset")
			}
			return mevscope.AnalyzeDatasetProjection(ds, workers, artifacts, sp)
		},
		Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, url := range []string{
		"/v1/artifact/fig3?format=json",
		"/v1/artifact/bundles?format=csv",
		"/v1/artifact/concentration?format=text&from=2021-01&to=2021-06",
	} {
		fullStatus, fullBody := get(t, full, url)
		projStatus, projBody := get(t, proj, url)
		if fullStatus != http.StatusOK || projStatus != http.StatusOK {
			t.Fatalf("%s → full %d, projected %d", url, fullStatus, projStatus)
		}
		if fullBody != projBody {
			t.Errorf("%s: projected body differs from full build", url)
		}
	}
	if fullCalls.Load() != 0 {
		t.Errorf("projected server ran the full pipeline %d times", fullCalls.Load())
	}
	if projCalls.Load() == 0 {
		t.Error("projection hook never ran")
	}
	// A non-projectable artifact falls back to the full pipeline.
	if status, _ := get(t, proj, "/v1/artifact/fig6?format=json"); status != http.StatusOK {
		t.Fatalf("non-projectable artifact → %d", status)
	}
	if fullCalls.Load() != 1 {
		t.Errorf("non-projectable artifact ran the full pipeline %d times, want 1", fullCalls.Load())
	}
	// Repeats are report-cache hits, not rebuilds.
	before := projCalls.Load()
	get(t, proj, "/v1/artifact/fig3?format=json")
	if projCalls.Load() != before {
		t.Error("repeated projected artifact rebuilt instead of hitting the cache")
	}
}

// TestChunkCacheGranularV3: fronting a v3 archive, the decode cache
// holds individual column chunks — more entries than the archive has
// months — so a projected read and a later full read share the chunks
// they overlap on.
func TestChunkCacheGranularV3(t *testing.T) {
	_, _, v3Dir := testArchives(t)
	srv, err := query.New(query.Config{Archive: v3Dir, Analyze: analyzeReal, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if status, body := get(t, srv, "/v1/report?format=text"); status != http.StatusOK {
		t.Fatalf("report → %d: %s", status, body)
	}
	man, err := archive.ReadManifest(v3Dir)
	if err != nil {
		t.Fatal(err)
	}
	st := srv.SegmentCacheStats()
	if st.Size <= len(man.Segments) {
		t.Errorf("v3 decode cache holds %d entries for %d segments; want chunk granularity", st.Size, len(man.Segments))
	}
	if st.Bytes <= 0 {
		t.Errorf("chunk cache accounts %d bytes", st.Bytes)
	}
}
