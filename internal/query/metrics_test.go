package query_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"mevscope/internal/core/measure"
	"mevscope/internal/query"
)

// getWith performs a GET with extra headers and returns the recorder.
func getWith(tb testing.TB, h http.Handler, method, url string, headers map[string]string) *httptest.ResponseRecorder {
	tb.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(method, url, nil)
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	h.ServeHTTP(rec, req)
	return rec
}

// TestConditionalGet: the first artifact query returns a strong ETag; a
// repeat with If-None-Match comes back 304 with no body and without
// re-encoding — and, on a cold server whose LRU has never held the
// report, without analyzing at all (the validator is derived from the
// request identity, not the body).
func TestConditionalGet(t *testing.T) {
	var calls atomic.Int64
	srv := newServer(t, 4, &calls)

	first := getWith(t, srv, http.MethodGet, "/v1/artifact/fig3?format=json", nil)
	if first.Code != http.StatusOK {
		t.Fatalf("status %d: %s", first.Code, first.Body.String())
	}
	etag := first.Header().Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("ETag = %q, want a quoted strong validator", etag)
	}
	if cl := first.Header().Get("Content-Length"); cl == "" {
		t.Error("200 response has no Content-Length")
	}
	warm := calls.Load()

	second := getWith(t, srv, http.MethodGet, "/v1/artifact/fig3?format=json",
		map[string]string{"If-None-Match": etag})
	if second.Code != http.StatusNotModified {
		t.Fatalf("conditional repeat → %d, want 304", second.Code)
	}
	if second.Body.Len() != 0 {
		t.Errorf("304 carries a %d-byte body", second.Body.Len())
	}
	if got := second.Header().Get("ETag"); got != etag {
		t.Errorf("304 ETag = %q, want %q", got, etag)
	}
	if calls.Load() != warm {
		t.Errorf("304 re-analyzed: calls %d → %d", warm, calls.Load())
	}

	// A cold server over the same archive: the same validator matches and
	// must short-circuit before the report is ever built.
	var coldCalls atomic.Int64
	cold := newServer(t, 4, &coldCalls)
	rec := getWith(t, cold, http.MethodGet, "/v1/artifact/fig3?format=json",
		map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusNotModified {
		t.Fatalf("cold conditional → %d, want 304", rec.Code)
	}
	if got := coldCalls.Load(); got != 0 {
		t.Errorf("cold 304 ran %d analyses, want 0 (evicted reports must not rebuild for a 304)", got)
	}

	// A stale validator (different format ⇒ different identity) misses
	// and serves the full body.
	stale := getWith(t, srv, http.MethodGet, "/v1/artifact/fig3?format=csv",
		map[string]string{"If-None-Match": etag})
	if stale.Code != http.StatusOK || stale.Body.Len() == 0 {
		t.Errorf("stale validator → %d with %d bytes, want a full 200", stale.Code, stale.Body.Len())
	}
	if csvTag := stale.Header().Get("ETag"); csvTag == etag || csvTag == "" {
		t.Errorf("csv ETag = %q, must differ from json's %q", csvTag, etag)
	}

	// The report endpoint gets the same treatment.
	rep := getWith(t, srv, http.MethodGet, "/v1/report?format=text", nil)
	if rep.Code != http.StatusOK || rep.Header().Get("ETag") == "" {
		t.Fatalf("report → %d, ETag %q", rep.Code, rep.Header().Get("ETag"))
	}
	rep304 := getWith(t, srv, http.MethodGet, "/v1/report?format=text",
		map[string]string{"If-None-Match": rep.Header().Get("ETag")})
	if rep304.Code != http.StatusNotModified {
		t.Errorf("conditional report → %d, want 304", rep304.Code)
	}

	// An unknown artifact can never 304, even with a guessed validator:
	// it has no representation to validate against.
	if rec := getWith(t, srv, http.MethodGet, "/v1/artifact/nope",
		map[string]string{"If-None-Match": "*"}); rec.Code != http.StatusNotFound {
		t.Errorf("unknown artifact with wildcard validator → %d, want 404", rec.Code)
	}

	// Live snapshots are mutable and must not carry a validator.
	srv.SetLive(liveStub())
	live := getWith(t, srv, http.MethodGet, "/v1/artifact/table1?source=live", nil)
	if live.Code != http.StatusOK {
		t.Fatalf("live → %d", live.Code)
	}
	if tag := live.Header().Get("ETag"); tag != "" {
		t.Errorf("live response has ETag %q, want none", tag)
	}
}

// liveStub is a minimal live source for ETag/HEAD tests.
func liveStub() query.Live {
	return query.Live{
		Height:   func() uint64 { return 1 },
		Snapshot: func() (*measure.Report, uint64) { return &measure.Report{}, 1 },
	}
}

// TestHeadRequests: HEAD answers with GET's headers — including the
// exact Content-Length of the body it is not sending — status and ETag,
// and an empty body. Free once bodies are buffered.
func TestHeadRequests(t *testing.T) {
	srv := newServer(t, 4, nil)
	get := getWith(t, srv, http.MethodGet, "/v1/artifact/fig3?format=csv", nil)
	if get.Code != http.StatusOK {
		t.Fatalf("GET → %d", get.Code)
	}
	head := getWith(t, srv, http.MethodHead, "/v1/artifact/fig3?format=csv", nil)
	if head.Code != http.StatusOK {
		t.Fatalf("HEAD → %d", head.Code)
	}
	if head.Body.Len() != 0 {
		t.Errorf("HEAD carries a %d-byte body", head.Body.Len())
	}
	for _, h := range []string{"Content-Length", "Content-Type", "ETag"} {
		if head.Header().Get(h) != get.Header().Get(h) {
			t.Errorf("HEAD %s = %q, GET says %q", h, head.Header().Get(h), get.Header().Get(h))
		}
	}
	// HEAD on an error path: status matches GET's, still no body.
	if rec := getWith(t, srv, http.MethodHead, "/v1/artifact/nope", nil); rec.Code != http.StatusNotFound || rec.Body.Len() != 0 {
		t.Errorf("HEAD on 404 → %d with %d bytes", rec.Code, rec.Body.Len())
	}
}

// TestMethodNotAllowedSetsAllow: RFC 9110 requires a 405 to name the
// methods that would have worked.
func TestMethodNotAllowedSetsAllow(t *testing.T) {
	srv := newServer(t, 4, nil)
	for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
		rec := getWith(t, srv, method, "/v1/report", nil)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s → %d, want 405", method, rec.Code)
		}
		if allow := rec.Header().Get("Allow"); allow != "GET, HEAD" {
			t.Errorf("%s 405 Allow = %q, want \"GET, HEAD\"", method, allow)
		}
	}
}

// TestMetricsEndpoint: drive a known request mix, then read it back in
// both formats — JSON for structured fields (per-endpoint counts, status
// classes, bytes, latency, embedded cache counters) and Prometheus text
// exposition for the scrape surface.
func TestMetricsEndpoint(t *testing.T) {
	srv := newServer(t, 4, nil)

	ok := getWith(t, srv, http.MethodGet, "/v1/artifact/fig3?format=json", nil)
	if ok.Code != http.StatusOK {
		t.Fatalf("seed request failed: %d", ok.Code)
	}
	etag := ok.Header().Get("ETag")
	getWith(t, srv, http.MethodGet, "/v1/artifact/fig3?format=json", map[string]string{"If-None-Match": etag})
	getWith(t, srv, http.MethodGet, "/v1/artifact/nope", nil)
	getWith(t, srv, http.MethodGet, "/v1/manifest", nil)

	rec := getWith(t, srv, http.MethodGet, "/metrics?format=json", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics?format=json → %d: %s", rec.Code, rec.Body.String())
	}
	var snap query.MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, rec.Body.String())
	}
	art := snap.Endpoints["/v1/artifact"]
	if art.Requests != 3 {
		t.Errorf("artifact requests = %d, want 3 (200 + 304 + 404)", art.Requests)
	}
	if art.Status["2xx"] != 1 || art.Status["3xx"] != 1 || art.Status["4xx"] != 1 {
		t.Errorf("status classes = %v, want one each of 2xx/3xx/4xx", art.Status)
	}
	if art.NotModified != 1 {
		t.Errorf("not_modified = %d, want 1", art.NotModified)
	}
	if art.Bytes == 0 {
		t.Error("artifact endpoint served 0 bytes")
	}
	if art.Latency.Count != 3 || art.Latency.P99 <= 0 {
		t.Errorf("latency summary = %+v", art.Latency)
	}
	if man := snap.Endpoints["/v1/manifest"]; man.Requests != 1 {
		t.Errorf("manifest requests = %d, want 1", man.Requests)
	}
	if snap.Caches.Reports.Misses == 0 {
		t.Errorf("embedded report-cache stats look empty: %+v", snap.Caches.Reports)
	}

	prom := getWith(t, srv, http.MethodGet, "/metrics", nil)
	if prom.Code != http.StatusOK {
		t.Fatalf("/metrics → %d", prom.Code)
	}
	if ct := prom.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prometheus content type = %q", ct)
	}
	body := prom.Body.String()
	for _, want := range []string{
		`mevscope_http_requests_total{endpoint="/v1/artifact",class="2xx"} 1`,
		`mevscope_http_requests_total{endpoint="/v1/artifact",class="3xx"} 1`,
		`mevscope_http_not_modified_total{endpoint="/v1/artifact"} 1`,
		`# TYPE mevscope_http_request_seconds histogram`,
		`mevscope_http_request_seconds_count{endpoint="/v1/artifact"} 3`,
		`mevscope_http_request_seconds_bucket{endpoint="/v1/artifact",le="+Inf"} 3`,
		`mevscope_cache_hits_total{cache="reports"}`,
		`mevscope_cache_bytes{cache="segments"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
	if rec := getWith(t, srv, http.MethodGet, "/metrics?format=xml", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("/metrics?format=xml → %d, want 400", rec.Code)
	}
}

// TestMetricsDisabled: Config.DisableMetrics removes the surface — the
// endpoint 404s, the snapshot reports absence, requests pay nothing.
func TestMetricsDisabled(t *testing.T) {
	srv, err := query.New(query.Config{
		Archive:        testArchive(t),
		Analyze:        analyzeReal,
		Workers:        1,
		DisableMetrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec := getWith(t, srv, http.MethodGet, "/metrics", nil); rec.Code != http.StatusNotFound {
		t.Errorf("/metrics with metrics disabled → %d, want 404", rec.Code)
	}
	if _, ok := srv.MetricsSnapshot(); ok {
		t.Error("MetricsSnapshot reports metrics present while disabled")
	}
	// The API itself still serves.
	if code, _ := get(t, srv, "/v1/manifest"); code != http.StatusOK {
		t.Error("manifest endpoint broken with metrics disabled")
	}
}
