package query_test

import (
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mevscope"
	"mevscope/internal/archive"
	"mevscope/internal/core/measure"
	"mevscope/internal/dataset"
	"mevscope/internal/obs"
	"mevscope/internal/query"
	"mevscope/internal/sim"
)

// Shared multi-vantage test archive, simulated once per test process.
var (
	mvArchOnce sync.Once
	mvArchDir  string
	mvArchErr  error
)

func multiVantageArchive(tb testing.TB) string {
	tb.Helper()
	mvArchOnce.Do(func() {
		dir, err := os.MkdirTemp("", "mevscope-query-mv-*")
		if err != nil {
			mvArchErr = err
			return
		}
		cfg, err := mevscope.Options{Seed: 9, BlocksPerMonth: 40, Scenario: "multi-vantage-union"}.Config()
		if err != nil {
			mvArchErr = err
			return
		}
		s, err := sim.New(cfg)
		if err != nil {
			mvArchErr = err
			return
		}
		if err := s.Run(); err != nil {
			mvArchErr = err
			return
		}
		meta := map[string]string{"scenario": "multi-vantage-union", "seed": "9"}
		if _, err := archive.Write(dir, dataset.FromSim(s), meta); err != nil {
			mvArchErr = err
			return
		}
		mvArchDir = dir
	})
	if mvArchErr != nil {
		tb.Fatal(mvArchErr)
	}
	return mvArchDir
}

func newMultiVantageServer(tb testing.TB, calls *atomic.Int64) *query.Server {
	tb.Helper()
	srv, err := query.New(query.Config{
		Archive: multiVantageArchive(tb),
		Analyze: func(ds *dataset.Dataset, workers int, sp *obs.Span) (*measure.Report, error) {
			if calls != nil {
				calls.Add(1)
			}
			return analyzeReal(ds, workers, sp)
		},
		Workers:   1,
		CacheSize: 8,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return srv
}

// TestMonthsParseFailuresAre400: every malformed months= spelling is a
// 400 naming the archive's real month window — never a raw 500.
func TestMonthsParseFailuresAre400(t *testing.T) {
	srv := newServer(t, 4, nil)
	for _, months := range []string{"banana", "2021-13", "2021-06..2021-03", "2019-01..2019-02", "2021-03..", "1/2021..bogus"} {
		for _, path := range []string{"/v1/artifact/fig3", "/v1/artifacts", "/v1/report"} {
			code, body := get(t, srv, path+"?months="+months)
			if code != http.StatusBadRequest {
				t.Errorf("%s?months=%s → %d (%s), want 400", path, months, code, strings.TrimSpace(body))
				continue
			}
			if !strings.Contains(body, "2020-05") || !strings.Contains(body, "2022-03") {
				t.Errorf("%s?months=%s body %q does not name the archive window", path, months, strings.TrimSpace(body))
			}
		}
	}
}

// TestViewParamValidation: unknown views and out-of-range selections are
// 400s with the valid range; the live source rejects view selection.
func TestViewParamValidation(t *testing.T) {
	srv := newMultiVantageServer(t, nil)
	for _, bad := range []string{"bogus", "quorum:0", "quorum:9", "vantage:4", "vantage:-1"} {
		code, body := get(t, srv, "/v1/artifact/fig9?view="+bad)
		if code != http.StatusBadRequest {
			t.Errorf("view=%s → %d (%s), want 400", bad, code, strings.TrimSpace(body))
		}
	}
	// The single-vantage archive accepts only vantage:0.
	single := newServer(t, 4, nil)
	if code, _ := get(t, single, "/v1/artifact/fig9?view=vantage:1"); code != http.StatusBadRequest {
		t.Errorf("vantage:1 on a single-vantage archive should be 400, got %d", code)
	}
	if code, _ := get(t, single, "/v1/artifact/fig9?view=vantage:0"); code != http.StatusOK {
		t.Errorf("vantage:0 on a single-vantage archive should be 200, got %d", code)
	}
}

// TestViewSelection: the union view observes at least as much as any
// single vantage, so it classifies no more sandwiches as private; each
// view is its own cache entry.
func TestViewSelection(t *testing.T) {
	var calls atomic.Int64
	srv := newMultiVantageServer(t, &calls)
	fig9 := func(view string) (total, private int64) {
		url := "/v1/artifact/fig9?format=json"
		if view != "" {
			url += "&view=" + view
		}
		code, body := get(t, srv, url)
		if code != http.StatusOK {
			t.Fatalf("view %q → %d: %s", view, code, body)
		}
		var art struct {
			Rows    [][]any          `json:"rows"`
			Scalars map[string]int64 `json:"scalars"`
		}
		if err := json.Unmarshal([]byte(body), &art); err != nil {
			t.Fatal(err)
		}
		for _, row := range art.Rows {
			if row[0] == "private_non_flashbots" {
				private = int64(row[1].(float64))
			}
		}
		return art.Scalars["total"], private
	}
	totalV0, privateV0 := fig9("vantage:0")
	totalU, privateU := fig9("union")
	if totalV0 != totalU {
		t.Errorf("window sandwich totals differ across views: %d vs %d", totalV0, totalU)
	}
	if privateU > privateV0 {
		t.Errorf("union view classifies more private (%d) than vantage 0 (%d)", privateU, privateV0)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("analyze calls = %d, want 2 (one per view)", got)
	}
	// Re-querying either view hits the cache.
	fig9("union")
	fig9("vantage:0")
	if got := calls.Load(); got != 2 {
		t.Errorf("analyze calls after re-query = %d, want 2", got)
	}
}

// TestVantageSensitivityServed: the new artifact is served in all three
// formats with real rows for a multi-vantage archive.
func TestVantageSensitivityServed(t *testing.T) {
	srv := newMultiVantageServer(t, nil)
	code, body := get(t, srv, "/v1/artifact/vantage_sensitivity?format=json")
	if code != http.StatusOK {
		t.Fatalf("json → %d: %s", code, body)
	}
	var art struct {
		Name    string           `json:"name"`
		Rows    [][]any          `json:"rows"`
		Scalars map[string]any   `json:"scalars"`
		Columns []map[string]any `json:"columns"`
	}
	if err := json.Unmarshal([]byte(body), &art); err != nil {
		t.Fatal(err)
	}
	if art.Name != "vantage_sensitivity" || len(art.Rows) == 0 {
		t.Fatalf("artifact name=%q rows=%d", art.Name, len(art.Rows))
	}
	if v, ok := art.Scalars["vantages"].(float64); !ok || int(v) != 4 {
		t.Errorf("vantages scalar = %v, want 4", art.Scalars["vantages"])
	}
	if _, ok := art.Scalars["union_private_sandwiches"]; !ok {
		t.Error("union_private_sandwiches scalar missing")
	}
	code, csvBody := get(t, srv, "/v1/artifact/vantage_sensitivity?format=csv")
	if code != http.StatusOK || !strings.Contains(csvBody, "union_observed") {
		t.Errorf("csv → %d, header missing: %s", code, firstLine(csvBody))
	}
	code, textBody := get(t, srv, "/v1/artifact/vantage_sensitivity?format=text")
	if code != http.StatusOK || !strings.Contains(textBody, "vantage") {
		t.Errorf("text → %d: %s", code, firstLine(textBody))
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
