package query

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestRespondEncodeFailureIsReal500 is the regression test for the
// truncated-200 bug: the old handlers streamed WriteCSV/WriteJSON/Encode
// straight into the ResponseWriter, so an encoder failing after its
// first byte had already committed a 200 status and shipped a silently
// truncated body. respond buffers the whole encoding first — a failing
// writer must now produce a clean 500 carrying none of the partial body.
func TestRespondEncodeFailureIsReal500(t *testing.T) {
	rec := httptest.NewRecorder()
	respond(rec, "text/csv; charset=utf-8", `"deadbeef"`, func(w io.Writer) error {
		io.WriteString(w, "month,flashbots_blocks\n2021-01,")
		return errors.New("writer failed mid-row")
	})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if body := rec.Body.String(); strings.Contains(body, "month,") {
		t.Errorf("partial body leaked into the error response: %q", body)
	}
	if !strings.Contains(rec.Body.String(), "writer failed mid-row") {
		t.Errorf("error body does not name the failure: %q", rec.Body.String())
	}
	if rec.Header().Get("ETag") != "" {
		t.Error("failed response must not carry a validator")
	}
}

// TestRespondSetsExactContentLength: the success path declares the
// buffered body's exact length, the content type and the validator.
func TestRespondSetsExactContentLength(t *testing.T) {
	rec := httptest.NewRecorder()
	respond(rec, "text/plain; charset=utf-8", `"abc"`, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello, operator\n")
		return err
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if got := rec.Header().Get("Content-Length"); got != strconv.Itoa(rec.Body.Len()) {
		t.Errorf("Content-Length = %q, body is %d bytes", got, rec.Body.Len())
	}
	if got := rec.Header().Get("ETag"); got != `"abc"` {
		t.Errorf("ETag = %q", got)
	}
}

// TestEtagMatch: RFC 9110 If-None-Match semantics — lists, the wildcard,
// weak-prefixed validators, and non-matches.
func TestEtagMatch(t *testing.T) {
	cases := []struct {
		header, etag string
		want         bool
	}{
		{`"a"`, `"a"`, true},
		{`"a", "b"`, `"b"`, true},
		{`*`, `"b"`, true},
		{`W/"a"`, `"a"`, true},
		{`"a"`, `"b"`, false},
		{``, `"a"`, false},
		{`"a"`, ``, false},
	}
	for _, c := range cases {
		if got := etagMatch(c.header, c.etag); got != c.want {
			t.Errorf("etagMatch(%q, %q) = %v, want %v", c.header, c.etag, got, c.want)
		}
	}
}

// TestEtagForIdentity: the validator varies with every component of the
// response identity (range, view, format, artifact) and is absent for
// mutable live sources.
func TestEtagForIdentity(t *testing.T) {
	base := Key{Archive: "/a", From: 1, To: 4, Scenario: "baseline"}
	seen := map[string]string{}
	variants := map[string]string{
		"base":   etagFor(base, "json", "fig3"),
		"format": etagFor(base, "csv", "fig3"),
		"name":   etagFor(base, "json", "table1"),
		"range":  etagFor(Key{Archive: "/a", From: 1, To: 5, Scenario: "baseline"}, "json", "fig3"),
		"view":   etagFor(Key{Archive: "/a", From: 1, To: 4, View: "union", Scenario: "baseline"}, "json", "fig3"),
	}
	for label, tag := range variants {
		if tag == "" || !strings.HasPrefix(tag, `"`) || !strings.HasSuffix(tag, `"`) {
			t.Errorf("%s: %q is not a quoted strong validator", label, tag)
		}
		if prev, dup := seen[tag]; dup {
			t.Errorf("%s and %s share validator %q", label, prev, tag)
		}
		seen[tag] = label
	}
	if again := etagFor(base, "json", "fig3"); again != variants["base"] {
		t.Errorf("validator is not deterministic: %q vs %q", again, variants["base"])
	}
	if live := etagFor(Key{Live: true, Height: 9}, "json", "fig3"); live != "" {
		t.Errorf("live key got validator %q, want none (snapshots are mutable)", live)
	}
}

// TestHistogramQuantiles: observations land in log-scale buckets and the
// interpolated quantiles come back in the right bucket's range.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	// 90 fast observations, 10 slow ones: p50 must sit near the fast
	// cluster, p99 near the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(300 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(900 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 100*time.Microsecond || p50 > 1*time.Millisecond {
		t.Errorf("p50 = %v, want within the fast bucket's factor-2 range", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 300*time.Millisecond || p99 > 2*time.Second {
		t.Errorf("p99 = %v, want within the slow bucket's factor-2 range", p99)
	}
	if m := h.Mean(); m < 80*time.Millisecond || m > 100*time.Millisecond {
		t.Errorf("mean = %v, want ≈ 90ms", m)
	}
	// An absurd observation overflows to the last finite bound instead of
	// panicking or vanishing.
	h.Observe(48 * time.Hour)
	if q := h.Quantile(1.0); q <= 0 {
		t.Errorf("overflowed max quantile = %v", q)
	}
}

// TestEndpointLabel: path classification is bounded — unknown paths all
// collapse into one label so clients probing random URLs cannot grow the
// metric set.
func TestEndpointLabel(t *testing.T) {
	cases := map[string]string{
		"/v1/artifact/fig3":   "/v1/artifact",
		"/v1/artifact/table1": "/v1/artifact",
		"/v1/artifacts":       "/v1/artifacts",
		"/v1/report":          "/v1/report",
		"/v1/manifest":        "/v1/manifest",
		"/v1/cache":           "/v1/cache",
		"/metrics":            "/metrics",
		"/v1/unknown":         "other",
		"/":                   "other",
		"/admin":              "other",
	}
	for path, want := range cases {
		if got := endpointLabel(path); got != want {
			t.Errorf("endpointLabel(%q) = %q, want %q", path, got, want)
		}
	}
}
