package query_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"mevscope"
	"mevscope/internal/archive"
	"mevscope/internal/core/measure"
	"mevscope/internal/dataset"
	"mevscope/internal/obs"
	"mevscope/internal/query"
	"mevscope/internal/types"
)

// realPartials precomputes real single-month partials of the shared
// test archive, keyed by month label — stub AnalyzePartial functions
// return these so merged reports render like the real thing while the
// test controls exactly when each "analysis" completes.
func realPartials(t *testing.T, months []types.Month) map[string]*measure.Partial {
	t.Helper()
	dir := testArchive(t)
	out := make(map[string]*measure.Partial, len(months))
	for _, m := range months {
		ds, _, err := archive.ReadRange(dir, m, m)
		if err != nil {
			t.Fatal(err)
		}
		p, err := mevscope.AnalyzeDatasetPartial(ds, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		out[m.Label()] = p
	}
	return out
}

// TestConcurrentStressPartialLRUDedup is the partial-cache mirror of
// TestConcurrentStressLRUDedup: a byte-capped partial LRU holding one
// entry while 8 distinct single-month report keys are requested by 25
// goroutines each, under -race. Report-level in-flight dedup collapses
// each key to one build; each build's partial lookup registers before
// the gate opens, so every month is analyzed exactly once even though
// the published partials evict each other immediately.
//
// Determinism: the stub AnalyzePartial blocks every month build on a
// gate, and the gate opens only once all 200 requests have registered
// a report-cache lookup and all 8 builds a partial-cache lookup —
// nothing can publish while the gate is shut, so no goroutine can
// arrive after an eviction and trigger a second analysis.
func TestConcurrentStressPartialLRUDedup(t *testing.T) {
	const (
		keys       = 8
		perKey     = 25
		totalBurst = keys * perKey
	)
	// Months 2021-01..2021-08 — the same keys the report-LRU stress uses.
	var months []types.Month
	for k := 0; k < keys; k++ {
		m, err := types.ParseMonth(fmt.Sprintf("2021-%02d", k+1))
		if err != nil {
			t.Fatal(err)
		}
		months = append(months, m)
	}
	pre := realPartials(t, months)

	release := make(chan struct{})
	perMonthCalls := make(map[string]*int, keys)
	var callsMu sync.Mutex
	srv, err := query.New(query.Config{
		Archive:           testArchive(t),
		CacheSize:         keys * 2,
		PartialCacheBytes: 1, // holds exactly one partial: every publish evicts
		Workers:           1,
		Analyze: func(ds *dataset.Dataset, workers int, sp *obs.Span) (*measure.Report, error) {
			return nil, fmt.Errorf("full analysis must not run when AnalyzePartial is set")
		},
		AnalyzePartial: func(ds *dataset.Dataset, workers int, sp *obs.Span) (*measure.Partial, error) {
			id := ds.Chain.Timeline.FirstMonth.Label()
			callsMu.Lock()
			if perMonthCalls[id] == nil {
				perMonthCalls[id] = new(int)
			}
			*perMonthCalls[id]++
			callsMu.Unlock()
			<-release
			return pre[id], nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	urlFor := func(k int) string {
		return fmt.Sprintf("/v1/artifact/table1?format=json&months=2021-%02d..2021-%02d", k+1, k+1)
	}

	var wg sync.WaitGroup
	errs := make(chan string, totalBurst)
	for k := 0; k < keys; k++ {
		for i := 0; i < perKey; i++ {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				if code, body := get(t, srv, url); code != http.StatusOK {
					errs <- fmt.Sprintf("%s → %d: %s", url, code, body)
				}
			}(urlFor(k))
		}
	}

	// Open the gate once every request registered its report lookup and
	// every build its partial lookup.
	deadline := time.Now().Add(30 * time.Second)
	for {
		rs, ps := srv.CacheStats(), srv.PartialCacheStats()
		if rs.Hits+rs.Misses >= totalBurst && ps.Hits+ps.Misses >= keys {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lookups stalled before the deadline: reports %+v, partials %+v", rs, ps)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	callsMu.Lock()
	for id, n := range perMonthCalls {
		if *n != 1 {
			t.Errorf("month %s analyzed %d times, want exactly 1 (partial in-flight dedup)", id, *n)
		}
	}
	monthsAnalyzed := len(perMonthCalls)
	callsMu.Unlock()
	if monthsAnalyzed != keys {
		t.Errorf("%d distinct months analyzed, want %d", monthsAnalyzed, keys)
	}

	burst := srv.PartialCacheStats()
	if burst.Misses != keys || burst.Hits != 0 {
		t.Errorf("burst partial lookups = %d hits + %d misses, want 0 + %d", burst.Hits, burst.Misses, keys)
	}
	if burst.Evictions < keys-1 {
		t.Errorf("partial evictions = %d, want ≥ %d (%d publishes through a one-entry LRU)",
			burst.Evictions, keys-1, keys)
	}
	if burst.Size != 1 {
		t.Errorf("partial cache holds %d entries, want 1 (byte cap keeps the newest)", burst.Size)
	}

	// An assembly across the evicted months: only the newest partial can
	// still be resident, so the 8-month range re-analyzes at least 7
	// months sequentially — every response stays correct, and the
	// /v1/cache counters reconcile with the server's own stats.
	rangeURL := fmt.Sprintf("/v1/artifact/table1?format=json&months=2021-01..2021-%02d", keys)
	if code, body := get(t, srv, rangeURL); code != http.StatusOK {
		t.Fatalf("%s → %d: %s", rangeURL, code, body)
	}
	after := srv.PartialCacheStats()
	if got := after.Hits + after.Misses - keys; got != keys {
		t.Errorf("assembly registered %d partial lookups, want %d (one per month)", got, keys)
	}
	if after.Misses < 2*keys-1 {
		t.Errorf("assembly re-analyzed too few months: %+v (want ≥ %d total misses)", after, 2*keys-1)
	}

	code, body := get(t, srv, "/v1/cache")
	if code != http.StatusOK {
		t.Fatal("cache endpoint failed")
	}
	var cacheView struct {
		Reports  query.CacheStats         `json:"reports"`
		Partials *query.PartialCacheStats `json:"partials"`
	}
	if err := json.Unmarshal([]byte(body), &cacheView); err != nil {
		t.Fatal(err)
	}
	if cacheView.Partials == nil {
		t.Fatal("/v1/cache omits the partials level on a partial-configured server")
	}
	if *cacheView.Partials != after {
		t.Errorf("/v1/cache partials %+v disagree with PartialCacheStats %+v", *cacheView.Partials, after)
	}
	if got := cacheView.Reports.Hits + cacheView.Reports.Misses; got != totalBurst+1 {
		t.Errorf("report-cache lookups = %d, want %d (one per artifact request)", got, totalBurst+1)
	}
}

// TestPartialCacheViewScoping pins cache invalidation across
// observation views: the partial key carries the view, so the same
// month range requested under different views analyzes each month once
// per view — never reusing another view's verdicts — while a shifted
// range under an already-seen view reuses its cached months.
func TestPartialCacheViewScoping(t *testing.T) {
	srv, err := query.New(query.Config{
		Archive:        multiVantageArchive(t),
		Analyze:        analyzeReal,
		AnalyzePartial: mevscope.AnalyzeDatasetPartial,
		Workers:        1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Three observation-window months, where views genuinely disagree.
	views := []string{"", "union", "vantage:1", "quorum:2"}
	bodies := make(map[string]string, len(views))
	for _, v := range views {
		url := "/v1/artifact/vantage_sensitivity?format=json&months=2021-11..2022-01&view=" + v
		code, body := get(t, srv, url)
		if code != http.StatusOK {
			t.Fatalf("%s → %d: %s", url, code, body)
		}
		bodies[v] = body
	}
	st := srv.PartialCacheStats()
	if st.Misses != int64(3*len(views)) || st.Hits != 0 {
		t.Errorf("per-view partial lookups = %d hits + %d misses, want 0 + %d (3 months × %d views, no cross-view reuse)",
			st.Hits, st.Misses, 3*len(views), len(views))
	}
	if bodies["union"] == bodies["vantage:1"] {
		t.Error("union and vantage:1 served identical private-artifact bodies — view leaked across partial keys")
	}

	// A shifted range under each view: two of its three months are
	// already cached for that view, one is new.
	for i, v := range views {
		url := "/v1/artifact/vantage_sensitivity?format=json&months=2021-12..2022-02&view=" + v
		if code, body := get(t, srv, url); code != http.StatusOK {
			t.Fatalf("%s → %d: %s", url, code, body)
		}
		st := srv.PartialCacheStats()
		wantHits, wantMisses := int64(2*(i+1)), int64(3*len(views)+i+1)
		if st.Hits != wantHits || st.Misses != wantMisses {
			t.Errorf("view %q shifted range: partials %d hits %d misses, want %d hits %d misses",
				v, st.Hits, st.Misses, wantHits, wantMisses)
		}
	}
}
