package query

// Request metrics: the operational surface of the serving tier. Every
// request through Server.ServeHTTP is classified by endpoint and
// recorded — request count, status class, bytes sent, 304s, and a
// latency observation in a fixed log-scale histogram — then exposed at
// GET /metrics in Prometheus text exposition format (the default, so a
// stock scraper works unconfigured) or as JSON (?format=json, which
// also embeds both cache levels' counters so one scrape reconciles
// request counts against cache lookups). Everything is plain atomics
// over a fixed endpoint set: no locks on the hot path, no dependencies.
//
// Beyond per-request accounting, the registry carries the flight
// recorder's serving view: every cold report build runs under an
// internal/obs trace, and each stage's wall time lands in a per-stage
// histogram (mevscope_stage_seconds{stage=...}) keyed by the fixed
// obs.MetricStages set plus "total" — the label set is bounded no
// matter what the pipeline does. Go runtime gauges (goroutines, heap
// bytes, GC cycles and pause total) and the live follower's lag in
// blocks round out the exposition, in both formats.

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"mevscope/internal/obs"
)

// Histogram bucket layout: factor-2 upper bounds from 10µs up, plus one
// overflow bucket. 10µs·2^23 ≈ 84s, wide enough for a cold archive
// restore and fine enough that a ~0.3ms cached hit and a ~1s cold build
// land many buckets apart.
const (
	histBase    = 10 * time.Microsecond
	histBuckets = 24
)

// Histogram is a concurrency-safe streaming latency histogram over
// fixed log-scale buckets. The zero value is ready to use; Observe is
// lock-free (atomics only), so it sits on the request hot path and in
// cmd/loadgen's per-request accounting without serializing clients.
type Histogram struct {
	counts [histBuckets + 1]atomic.Int64
	sum    atomic.Int64 // nanoseconds
	n      atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)].Add(1)
	h.sum.Add(int64(d))
	h.n.Add(1)
}

// bucketOf maps a duration to its bucket index (the first bucket whose
// upper bound is ≥ d; durations beyond the last bound overflow).
func bucketOf(d time.Duration) int {
	ub := histBase
	for i := 0; i < histBuckets; i++ {
		if d <= ub {
			return i
		}
		ub *= 2
	}
	return histBuckets
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Mean returns the mean observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns the q-th quantile (0 < q ≤ 1), linearly interpolated
// within the bucket the rank falls in; observations past the last bound
// report that bound. With factor-2 buckets the answer is exact to within
// 2× — the right fidelity for p50/p99 trend lines at zero allocation.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	lo, ub := time.Duration(0), histBase
	for i := 0; i <= histBuckets; i++ {
		n := h.counts[i].Load()
		if cum+n >= rank {
			if i == histBuckets {
				return lo // overflow: report the last finite bound
			}
			frac := float64(rank-cum) / float64(n)
			return lo + time.Duration(frac*float64(ub-lo))
		}
		cum += n
		lo, ub = ub, ub*2
	}
	return lo
}

// buckets snapshots the per-bucket counts (not cumulative).
func (h *Histogram) buckets() [histBuckets + 1]int64 {
	var out [histBuckets + 1]int64
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// endpointLabels is the fixed classification of request paths; every
// path outside the API maps to "other" so the metric label set is
// bounded no matter what clients probe.
var endpointLabels = []string{
	"/v1/artifacts", "/v1/artifact", "/v1/report", "/v1/manifest", "/v1/block", "/v1/cache", "/metrics", "/debug/pprof", "other",
}

// endpointLabel classifies one request path.
func endpointLabel(path string) string {
	if strings.HasPrefix(path, "/v1/artifact/") {
		return "/v1/artifact"
	}
	if strings.HasPrefix(path, "/debug/pprof") {
		return "/debug/pprof"
	}
	switch path {
	case "/v1/artifacts", "/v1/report", "/v1/manifest", "/v1/block", "/v1/cache", "/metrics":
		return path
	}
	return "other"
}

// endpointMetrics is one endpoint's counters.
type endpointMetrics struct {
	requests    atomic.Int64
	classes     [5]atomic.Int64 // status/100 - 1: 1xx..5xx
	notModified atomic.Int64
	bytes       atomic.Int64
	latency     Histogram
}

// stageTotal is the pseudo-stage recording whole cold builds (the
// trace's root span), alongside the per-stage entries.
const stageTotal = "total"

// stageLabels is the fixed, bounded label set of the per-stage build
// histograms: the pipeline stages that feed serving builds, plus the
// whole-build total.
func stageLabels() []string { return append(obs.MetricStages(), stageTotal) }

// metrics is the server-wide registry: read-only maps over fixed
// endpoint and stage sets, so recording never takes a lock.
type metrics struct {
	endpoints map[string]*endpointMetrics
	stages    map[string]*Histogram
}

func newMetrics() *metrics {
	m := &metrics{
		endpoints: make(map[string]*endpointMetrics, len(endpointLabels)),
		stages:    make(map[string]*Histogram),
	}
	for _, l := range endpointLabels {
		m.endpoints[l] = &endpointMetrics{}
	}
	for _, st := range stageLabels() {
		m.stages[st] = &Histogram{}
	}
	return m
}

// observeTrace folds one finished cold-build trace into the per-stage
// histograms: every span whose stage is in the bounded label set
// contributes its wall time, and the root span lands in "total". Spans
// outside the set (per-artifact children, sim stages) are skipped, so
// the label set never grows. Nil-safe on both sides.
func (m *metrics) observeTrace(tr *obs.Trace) {
	if m == nil || tr == nil {
		return
	}
	root := tr.Root()
	for _, sp := range tr.Spans() {
		if sp == root {
			m.stages[stageTotal].Observe(sp.Duration())
			continue
		}
		if h, ok := m.stages[sp.Name()]; ok {
			h.Observe(sp.Duration())
		}
	}
}

// record accounts one finished request.
func (m *metrics) record(path string, status int, bytes int64, d time.Duration) {
	e := m.endpoints[endpointLabel(path)]
	e.requests.Add(1)
	if c := status/100 - 1; c >= 0 && c < len(e.classes) {
		e.classes[c].Add(1)
	}
	if status == http.StatusNotModified {
		e.notModified.Add(1)
	}
	e.bytes.Add(bytes)
	e.latency.Observe(d)
}

// LatencySummary is the histogram's JSON rendering: count, mean and the
// headline quantiles, in milliseconds.
type LatencySummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean_ms"`
	P50   float64 `json:"p50_ms"`
	P90   float64 `json:"p90_ms"`
	P99   float64 `json:"p99_ms"`
}

// EndpointMetrics is one endpoint's counters, snapshotted for JSON.
type EndpointMetrics struct {
	Requests    int64            `json:"requests"`
	Status      map[string]int64 `json:"status,omitempty"`
	NotModified int64            `json:"not_modified,omitempty"`
	Bytes       int64            `json:"bytes"`
	Latency     LatencySummary   `json:"latency"`
}

// StageMetrics is one pipeline stage's build-time summary for JSON:
// how many cold builds touched the stage and how its wall time
// distributes, in seconds (stage builds live on a much coarser scale
// than request latencies).
type StageMetrics struct {
	Count  int64   `json:"count"`
	MeanS  float64 `json:"mean_s"`
	P50S   float64 `json:"p50_s"`
	P99S   float64 `json:"p99_s"`
	TotalS float64 `json:"total_s"`
}

// RuntimeMetrics is the Go runtime's health snapshot: live goroutines,
// heap in use, and the garbage collector's cycle and cumulative pause
// counters.
type RuntimeMetrics struct {
	Goroutines     int     `json:"goroutines"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	GCCycles       uint32  `json:"gc_cycles"`
	GCPauseSeconds float64 `json:"gc_pause_seconds"`
}

// runtimeMetrics samples the runtime. ReadMemStats costs a brief
// stop-the-world, which is fine at scrape frequency.
func runtimeMetrics() RuntimeMetrics {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeMetrics{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		GCCycles:       ms.NumGC,
		GCPauseSeconds: time.Duration(ms.PauseTotalNs).Seconds(),
	}
}

// MetricsSnapshot is the /metrics?format=json document: per-endpoint
// request metrics, per-stage cold-build histograms, the Go runtime
// gauges, the live follower's lag when one is attached, and both cache
// levels, so hit/miss counters can be reconciled against request
// counts in one read.
type MetricsSnapshot struct {
	Endpoints map[string]EndpointMetrics `json:"endpoints"`
	Stages    map[string]StageMetrics    `json:"stages,omitempty"`
	Runtime   RuntimeMetrics             `json:"runtime"`
	LiveLag   *uint64                    `json:"live_lag_blocks,omitempty"`
	Caches    struct {
		Reports  CacheStats         `json:"reports"`
		Partials *PartialCacheStats `json:"partials,omitempty"`
		Segments SegmentCacheStats  `json:"segments"`
	} `json:"caches"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// MetricsSnapshot builds the JSON view of the registry; endpoints that
// saw no traffic are omitted. The second return is false when metrics
// are disabled (Config.DisableMetrics).
func (s *Server) MetricsSnapshot() (MetricsSnapshot, bool) {
	if s.metrics == nil {
		return MetricsSnapshot{}, false
	}
	out := MetricsSnapshot{Endpoints: make(map[string]EndpointMetrics)}
	for _, label := range endpointLabels {
		e := s.metrics.endpoints[label]
		n := e.requests.Load()
		if n == 0 {
			continue
		}
		em := EndpointMetrics{
			Requests:    n,
			NotModified: e.notModified.Load(),
			Bytes:       e.bytes.Load(),
			Status:      make(map[string]int64),
			Latency: LatencySummary{
				Count: e.latency.Count(),
				Mean:  ms(e.latency.Mean()),
				P50:   ms(e.latency.Quantile(0.50)),
				P90:   ms(e.latency.Quantile(0.90)),
				P99:   ms(e.latency.Quantile(0.99)),
			},
		}
		for c := range e.classes {
			if v := e.classes[c].Load(); v > 0 {
				em.Status[fmt.Sprintf("%dxx", c+1)] = v
			}
		}
		out.Endpoints[label] = em
	}
	for _, st := range stageLabels() {
		h := s.metrics.stages[st]
		n := h.Count()
		if n == 0 {
			continue
		}
		if out.Stages == nil {
			out.Stages = make(map[string]StageMetrics)
		}
		out.Stages[st] = StageMetrics{
			Count:  n,
			MeanS:  h.Mean().Seconds(),
			P50S:   h.Quantile(0.50).Seconds(),
			P99S:   h.Quantile(0.99).Seconds(),
			TotalS: time.Duration(h.sum.Load()).Seconds(),
		}
	}
	out.Runtime = runtimeMetrics()
	if lag, ok := s.liveLag(); ok {
		out.LiveLag = &lag
	}
	out.Caches.Reports = s.cache.stats()
	out.Caches.Partials = s.partialStatsPtr()
	out.Caches.Segments = s.segs.stats()
	return out, true
}

// liveLag reads the registered live source's lag; false when no live
// source (or no lag probe) is attached.
func (s *Server) liveLag() (uint64, bool) {
	s.mu.Lock()
	live := s.live
	s.mu.Unlock()
	if live == nil || live.Lag == nil {
		return 0, false
	}
	return live.Lag(), true
}

// handleMetrics serves the registry: Prometheus text exposition by
// default (a stock scraper needs no configuration), JSON with
// ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.metrics == nil {
		fail(w, &httpError{http.StatusNotFound, "query: metrics disabled"})
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "prometheus", "prom":
		respond(w, "text/plain; version=0.0.4; charset=utf-8", "", func(w io.Writer) error {
			return s.writePrometheus(w)
		})
	case "json":
		snap, _ := s.MetricsSnapshot()
		writeJSON(w, snap)
	default:
		fail(w, errBadRequest("query: unknown format %q (want prometheus or json)", r.URL.Query().Get("format")))
	}
}

// writePrometheus renders the registry in the text exposition format:
// request/byte/304 counters by endpoint and status class, the latency
// histogram with cumulative le-labelled buckets, per-stage cold-build
// histograms, the Go runtime gauges, the live lag gauge when a live
// source is attached, and both cache levels.
func (s *Server) writePrometheus(w io.Writer) error {
	active := make([]string, 0, len(endpointLabels))
	for _, l := range endpointLabels {
		if s.metrics.endpoints[l].requests.Load() > 0 {
			active = append(active, l)
		}
	}
	sort.Strings(active)

	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("# HELP mevscope_http_requests_total Requests by endpoint and status class.\n# TYPE mevscope_http_requests_total counter\n"); err != nil {
		return err
	}
	for _, l := range active {
		e := s.metrics.endpoints[l]
		for c := range e.classes {
			if v := e.classes[c].Load(); v > 0 {
				if err := p("mevscope_http_requests_total{endpoint=%q,class=\"%dxx\"} %d\n", l, c+1, v); err != nil {
					return err
				}
			}
		}
	}
	if err := p("# HELP mevscope_http_response_bytes_total Body bytes sent by endpoint.\n# TYPE mevscope_http_response_bytes_total counter\n"); err != nil {
		return err
	}
	for _, l := range active {
		if err := p("mevscope_http_response_bytes_total{endpoint=%q} %d\n", l, s.metrics.endpoints[l].bytes.Load()); err != nil {
			return err
		}
	}
	if err := p("# HELP mevscope_http_not_modified_total Conditional GETs answered 304 without re-encoding.\n# TYPE mevscope_http_not_modified_total counter\n"); err != nil {
		return err
	}
	for _, l := range active {
		if err := p("mevscope_http_not_modified_total{endpoint=%q} %d\n", l, s.metrics.endpoints[l].notModified.Load()); err != nil {
			return err
		}
	}
	if err := p("# HELP mevscope_http_request_seconds Request latency by endpoint.\n# TYPE mevscope_http_request_seconds histogram\n"); err != nil {
		return err
	}
	for _, l := range active {
		e := s.metrics.endpoints[l]
		counts := e.latency.buckets()
		var cum int64
		ub := histBase
		for i := 0; i < histBuckets; i++ {
			cum += counts[i]
			le := strconv.FormatFloat(ub.Seconds(), 'g', -1, 64)
			if err := p("mevscope_http_request_seconds_bucket{endpoint=%q,le=%q} %d\n", l, le, cum); err != nil {
				return err
			}
			ub *= 2
		}
		cum += counts[histBuckets]
		if err := p("mevscope_http_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", l, cum); err != nil {
			return err
		}
		if err := p("mevscope_http_request_seconds_sum{endpoint=%q} %g\n", l, time.Duration(e.latency.sum.Load()).Seconds()); err != nil {
			return err
		}
		if err := p("mevscope_http_request_seconds_count{endpoint=%q} %d\n", l, e.latency.Count()); err != nil {
			return err
		}
	}
	if err := p("# HELP mevscope_stage_seconds Cold report build wall time by pipeline stage.\n# TYPE mevscope_stage_seconds histogram\n"); err != nil {
		return err
	}
	for _, st := range stageLabels() {
		h := s.metrics.stages[st]
		counts := h.buckets()
		var cum int64
		if h.Count() == 0 {
			continue
		}
		ub := histBase
		for i := 0; i < histBuckets; i++ {
			cum += counts[i]
			le := strconv.FormatFloat(ub.Seconds(), 'g', -1, 64)
			if err := p("mevscope_stage_seconds_bucket{stage=%q,le=%q} %d\n", st, le, cum); err != nil {
				return err
			}
			ub *= 2
		}
		cum += counts[histBuckets]
		if err := p("mevscope_stage_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", st, cum); err != nil {
			return err
		}
		if err := p("mevscope_stage_seconds_sum{stage=%q} %g\n", st, time.Duration(h.sum.Load()).Seconds()); err != nil {
			return err
		}
		if err := p("mevscope_stage_seconds_count{stage=%q} %d\n", st, h.Count()); err != nil {
			return err
		}
	}
	rt := runtimeMetrics()
	if err := p("# HELP mevscope_go_goroutines Live goroutines.\n# TYPE mevscope_go_goroutines gauge\nmevscope_go_goroutines %d\n", rt.Goroutines); err != nil {
		return err
	}
	if err := p("# HELP mevscope_go_heap_alloc_bytes Heap bytes in use.\n# TYPE mevscope_go_heap_alloc_bytes gauge\nmevscope_go_heap_alloc_bytes %d\n", rt.HeapAllocBytes); err != nil {
		return err
	}
	if err := p("# HELP mevscope_go_gc_cycles_total Completed GC cycles.\n# TYPE mevscope_go_gc_cycles_total counter\nmevscope_go_gc_cycles_total %d\n", rt.GCCycles); err != nil {
		return err
	}
	if err := p("# HELP mevscope_go_gc_pause_seconds_total Cumulative GC stop-the-world pause.\n# TYPE mevscope_go_gc_pause_seconds_total counter\nmevscope_go_gc_pause_seconds_total %g\n", rt.GCPauseSeconds); err != nil {
		return err
	}
	if lag, ok := s.liveLag(); ok {
		if err := p("# HELP mevscope_live_lag_blocks Blocks the live follower trails the world tip.\n# TYPE mevscope_live_lag_blocks gauge\nmevscope_live_lag_blocks %d\n", lag); err != nil {
			return err
		}
	}
	type cacheRow struct {
		name                    string
		hits, misses, evictions int64
		size                    int
	}
	rs := s.cache.stats()
	ss := s.segs.stats()
	var ps PartialCacheStats
	caches := []cacheRow{{"reports", rs.Hits, rs.Misses, rs.Evictions, rs.Size}}
	if s.partials != nil {
		ps = s.partials.stats()
		caches = append(caches, cacheRow{"partials", ps.Hits, ps.Misses, ps.Evictions, ps.Size})
	}
	caches = append(caches, cacheRow{"segments", ss.Hits, ss.Misses, ss.Evictions, ss.Size})
	if err := p("# HELP mevscope_cache_hits_total Cache hits by level.\n# TYPE mevscope_cache_hits_total counter\n"); err != nil {
		return err
	}
	for _, c := range caches {
		if err := p("mevscope_cache_hits_total{cache=%q} %d\n", c.name, c.hits); err != nil {
			return err
		}
	}
	if err := p("# HELP mevscope_cache_misses_total Cache misses by level.\n# TYPE mevscope_cache_misses_total counter\n"); err != nil {
		return err
	}
	for _, c := range caches {
		if err := p("mevscope_cache_misses_total{cache=%q} %d\n", c.name, c.misses); err != nil {
			return err
		}
	}
	if err := p("# HELP mevscope_cache_evictions_total Cache evictions by level.\n# TYPE mevscope_cache_evictions_total counter\n"); err != nil {
		return err
	}
	for _, c := range caches {
		if err := p("mevscope_cache_evictions_total{cache=%q} %d\n", c.name, c.evictions); err != nil {
			return err
		}
	}
	if err := p("# HELP mevscope_cache_size Entries held by cache level.\n# TYPE mevscope_cache_size gauge\n"); err != nil {
		return err
	}
	for _, c := range caches {
		if err := p("mevscope_cache_size{cache=%q} %d\n", c.name, c.size); err != nil {
			return err
		}
	}
	if err := p("# HELP mevscope_cache_bytes Resident bytes held by the byte-accounted cache levels.\n# TYPE mevscope_cache_bytes gauge\n"); err != nil {
		return err
	}
	if s.partials != nil {
		if err := p("mevscope_cache_bytes{cache=\"partials\"} %d\n", ps.Bytes); err != nil {
			return err
		}
	}
	return p("mevscope_cache_bytes{cache=\"segments\"} %d\n", ss.Bytes)
}
