package state

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mevscope/internal/types"
)

func addr(i uint64) types.Address { return types.DeriveAddress("statetest", i) }

func TestRegisterTokenIdempotent(t *testing.T) {
	s := New()
	a1 := s.RegisterToken("WETH", 18)
	a2 := s.RegisterToken("WETH", 18)
	if a1 != a2 {
		t.Error("re-registration should return same address")
	}
	if got, ok := s.TokenBySymbol("WETH"); !ok || got != a1 {
		t.Error("TokenBySymbol")
	}
	info, ok := s.TokenInfo(a1)
	if !ok || info.Symbol != "WETH" || info.Decimals != 18 {
		t.Errorf("TokenInfo = %+v", info)
	}
	if _, ok := s.TokenInfo(addr(1)); ok {
		t.Error("unregistered token should not resolve")
	}
}

func TestTokensSorted(t *testing.T) {
	s := New()
	s.RegisterToken("ZRX", 18)
	s.RegisterToken("AAVE", 18)
	s.RegisterToken("DAI", 18)
	toks := s.Tokens()
	if len(toks) != 3 || toks[0].Symbol != "AAVE" || toks[2].Symbol != "ZRX" {
		t.Errorf("tokens = %v", toks)
	}
}

func TestEtherTransfer(t *testing.T) {
	s := New()
	s.Mint(addr(1), 10*types.Ether)
	if err := s.Transfer(addr(1), addr(2), 4*types.Ether); err != nil {
		t.Fatal(err)
	}
	if s.Balance(addr(1)) != 6*types.Ether || s.Balance(addr(2)) != 4*types.Ether {
		t.Error("balances wrong after transfer")
	}
	if err := s.Transfer(addr(1), addr(2), 100*types.Ether); err == nil {
		t.Error("overdraft should fail")
	}
	if err := s.Transfer(addr(1), addr(2), -1); err == nil {
		t.Error("negative transfer should fail")
	}
}

func TestBurn(t *testing.T) {
	s := New()
	s.Mint(addr(1), types.Ether)
	if err := s.Burn(addr(1), types.Ether/2); err != nil {
		t.Fatal(err)
	}
	if s.Balance(addr(1)) != types.Ether/2 {
		t.Error("burn balance")
	}
	if err := s.Burn(addr(1), types.Ether); err == nil {
		t.Error("over-burn should fail")
	}
}

func TestTokenTransfer(t *testing.T) {
	s := New()
	tok := s.RegisterToken("DAI", 18)
	if err := s.MintToken(tok, addr(1), 100); err != nil {
		t.Fatal(err)
	}
	if err := s.TransferToken(tok, addr(1), addr(2), 30); err != nil {
		t.Fatal(err)
	}
	if s.TokenBalance(tok, addr(1)) != 70 || s.TokenBalance(tok, addr(2)) != 30 {
		t.Error("token balances wrong")
	}
	if err := s.TransferToken(tok, addr(1), addr(2), 1000); err == nil {
		t.Error("token overdraft should fail")
	}
	if err := s.TransferToken(addr(9), addr(1), addr(2), 1); err == nil {
		t.Error("unregistered token transfer should fail")
	}
	if err := s.BurnToken(tok, addr(2), 30); err != nil {
		t.Fatal(err)
	}
	if s.TokenBalance(tok, addr(2)) != 0 {
		t.Error("burned balance should be zero")
	}
}

func TestSnapshotRevert(t *testing.T) {
	s := New()
	tok := s.RegisterToken("DAI", 18)
	s.Mint(addr(1), 10*types.Ether)
	s.MintToken(tok, addr(1), 100)

	s.Snapshot()
	s.Transfer(addr(1), addr(2), types.Ether)
	s.TransferToken(tok, addr(1), addr(3), 50)
	s.Mint(addr(4), types.Ether)
	s.Revert()

	if s.Balance(addr(1)) != 10*types.Ether {
		t.Error("eth not reverted")
	}
	if s.Balance(addr(2)) != 0 || s.Balance(addr(4)) != 0 {
		t.Error("credited accounts not reverted")
	}
	if s.TokenBalance(tok, addr(1)) != 100 || s.TokenBalance(tok, addr(3)) != 0 {
		t.Error("token not reverted")
	}
}

func TestNestedSnapshots(t *testing.T) {
	s := New()
	s.Mint(addr(1), 10*types.Ether)

	s.Snapshot() // outer
	s.Transfer(addr(1), addr(2), types.Ether)
	s.Snapshot() // inner
	s.Transfer(addr(1), addr(3), types.Ether)
	s.Revert() // inner undone
	if s.Balance(addr(3)) != 0 {
		t.Error("inner transfer should be undone")
	}
	if s.Balance(addr(2)) != types.Ether {
		t.Error("outer transfer should survive inner revert")
	}
	s.Revert() // outer undone
	if s.Balance(addr(1)) != 10*types.Ether || s.Balance(addr(2)) != 0 {
		t.Error("outer revert incomplete")
	}
}

func TestCommitInnerThenRevertOuter(t *testing.T) {
	s := New()
	s.Mint(addr(1), 10*types.Ether)
	s.Snapshot() // outer
	s.Snapshot() // inner
	s.Transfer(addr(1), addr(2), types.Ether)
	s.Commit() // inner kept
	if s.Balance(addr(2)) != types.Ether {
		t.Error("committed inner change missing")
	}
	s.Revert() // outer revert must still undo inner's committed entries
	if s.Balance(addr(2)) != 0 {
		t.Error("outer revert should undo inner committed changes")
	}
}

func TestRevertWithoutSnapshotPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New().Revert()
}

func TestCommitWithoutSnapshotPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New().Commit()
}

func TestTotals(t *testing.T) {
	s := New()
	tok := s.RegisterToken("DAI", 18)
	s.Mint(addr(1), 3*types.Ether)
	s.Mint(addr(2), 4*types.Ether)
	s.MintToken(tok, addr(1), 11)
	s.MintToken(tok, addr(2), 22)
	if s.TotalEther() != 7*types.Ether {
		t.Error("TotalEther")
	}
	if s.TotalToken(tok) != 33 {
		t.Error("TotalToken")
	}
}

// Property: ether conservation — transfers never change the total supply,
// and a revert restores the exact pre-snapshot balance vector.
func TestTransferConservationProperty(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		accounts := make([]types.Address, 8)
		for i := range accounts {
			accounts[i] = addr(uint64(i))
			s.Mint(accounts[i], types.Amount(rng.Int63n(int64(types.Ether))))
		}
		total := s.TotalEther()
		for i := 0; i < int(ops); i++ {
			from := accounts[rng.Intn(len(accounts))]
			to := accounts[rng.Intn(len(accounts))]
			amt := types.Amount(rng.Int63n(int64(types.Ether)))
			_ = s.Transfer(from, to, amt) // overdrafts fail atomically
		}
		return s.TotalEther() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotRestoreProperty(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		tok := s.RegisterToken("T", 18)
		accounts := make([]types.Address, 5)
		for i := range accounts {
			accounts[i] = addr(uint64(i))
			s.Mint(accounts[i], types.Amount(rng.Int63n(int64(types.Ether)))+1)
			s.MintToken(tok, accounts[i], types.Amount(rng.Int63n(1000)))
		}
		before := make(map[types.Address][2]types.Amount)
		for _, a := range accounts {
			before[a] = [2]types.Amount{s.Balance(a), s.TokenBalance(tok, a)}
		}
		s.Snapshot()
		for i := 0; i < int(ops); i++ {
			from := accounts[rng.Intn(len(accounts))]
			to := accounts[rng.Intn(len(accounts))]
			switch rng.Intn(4) {
			case 0:
				_ = s.Transfer(from, to, types.Amount(rng.Int63n(int64(types.Ether))))
			case 1:
				_ = s.TransferToken(tok, from, to, types.Amount(rng.Int63n(500)))
			case 2:
				s.Mint(from, types.Amount(rng.Int63n(100)))
			case 3:
				_ = s.BurnToken(tok, from, types.Amount(rng.Int63n(100)))
			}
		}
		s.Revert()
		for _, a := range accounts {
			want := before[a]
			if s.Balance(a) != want[0] || s.TokenBalance(tok, a) != want[1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
