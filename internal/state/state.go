// Package state holds the mutable world state of the simulated chain:
// ether balances, ERC-20 style token balances and the token registry.
//
// State supports nested snapshots so the executor can revert failed
// transactions (and failed flash-loan inner calls) atomically, exactly as
// the EVM does.
package state

import (
	"bytes"
	"fmt"
	"sort"

	"mevscope/internal/types"
)

// Token describes a registered ERC-20 style token.
type Token struct {
	Addr   types.Address
	Symbol string
	// Decimals is informational; all amounts use types.Amount base units.
	Decimals int
}

// State is the account/token ledger. The zero value is not usable; call New.
type State struct {
	eth    map[types.Address]types.Amount
	tokens map[types.Address]map[types.Address]types.Amount // token → holder → balance
	reg    map[types.Address]Token
	symbol map[string]types.Address

	journal []journalEntry
	snaps   []int // journal lengths at snapshot points
}

type journalEntry struct {
	token  types.Address // zero for ETH
	holder types.Address
	prev   types.Amount
	had    bool
}

// New creates an empty ledger.
func New() *State {
	return &State{
		eth:    make(map[types.Address]types.Amount),
		tokens: make(map[types.Address]map[types.Address]types.Amount),
		reg:    make(map[types.Address]Token),
		symbol: make(map[string]types.Address),
	}
}

// RegisterToken adds a token to the registry and returns its address,
// derived from the symbol so registrations are deterministic.
func (s *State) RegisterToken(symbol string, decimals int) types.Address {
	if a, ok := s.symbol[symbol]; ok {
		return a
	}
	addr := types.DeriveAddress("token:"+symbol, 0)
	s.reg[addr] = Token{Addr: addr, Symbol: symbol, Decimals: decimals}
	s.symbol[symbol] = addr
	s.tokens[addr] = make(map[types.Address]types.Amount)
	return addr
}

// TokenBySymbol looks up a registered token address.
func (s *State) TokenBySymbol(symbol string) (types.Address, bool) {
	a, ok := s.symbol[symbol]
	return a, ok
}

// TokenInfo returns registry metadata for a token address.
func (s *State) TokenInfo(addr types.Address) (Token, bool) {
	t, ok := s.reg[addr]
	return t, ok
}

// Tokens lists all registered tokens in deterministic (symbol) order.
func (s *State) Tokens() []Token {
	out := make([]Token, 0, len(s.reg))
	for _, t := range s.reg {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Symbol != out[j].Symbol {
			return out[i].Symbol < out[j].Symbol
		}
		return bytes.Compare(out[i].Addr[:], out[j].Addr[:]) < 0
	})
	return out
}

// Balance returns the ether balance of an account.
func (s *State) Balance(a types.Address) types.Amount { return s.eth[a] }

// TokenBalance returns the balance of token held by holder.
func (s *State) TokenBalance(token, holder types.Address) types.Amount {
	m := s.tokens[token]
	if m == nil {
		return 0
	}
	return m[holder]
}

func (s *State) record(token, holder types.Address) {
	if len(s.snaps) == 0 {
		return // no open snapshot: no need to journal
	}
	var prev types.Amount
	var had bool
	if token.IsZero() {
		prev, had = s.eth[holder]
	} else if m := s.tokens[token]; m != nil {
		prev, had = m[holder]
	}
	s.journal = append(s.journal, journalEntry{token: token, holder: holder, prev: prev, had: had})
}

// Mint credits ether to an account out of thin air (genesis funding and
// block rewards).
func (s *State) Mint(a types.Address, amt types.Amount) {
	s.record(types.ZeroAddress, a)
	s.eth[a] += amt
}

// Burn destroys ether from an account (EIP-1559 base-fee burn). It fails
// if the balance is insufficient.
func (s *State) Burn(a types.Address, amt types.Amount) error {
	if s.eth[a] < amt {
		return fmt.Errorf("state: burn %v from %v: insufficient balance %v", amt, a.Short(), s.eth[a])
	}
	s.record(types.ZeroAddress, a)
	s.eth[a] -= amt
	return nil
}

// Transfer moves ether between accounts, failing on insufficient funds.
func (s *State) Transfer(from, to types.Address, amt types.Amount) error {
	if amt < 0 {
		return fmt.Errorf("state: negative transfer %v", amt)
	}
	if s.eth[from] < amt {
		return fmt.Errorf("state: transfer %v from %v: insufficient balance %v", amt, from.Short(), s.eth[from])
	}
	s.record(types.ZeroAddress, from)
	s.record(types.ZeroAddress, to)
	s.eth[from] -= amt
	s.eth[to] += amt
	return nil
}

// MintToken credits token units to a holder (pool seeding, loan drawdown).
func (s *State) MintToken(token, holder types.Address, amt types.Amount) error {
	m := s.tokens[token]
	if m == nil {
		return fmt.Errorf("state: mint of unregistered token %v", token.Short())
	}
	s.record(token, holder)
	m[holder] += amt
	return nil
}

// BurnToken destroys token units held by holder.
func (s *State) BurnToken(token, holder types.Address, amt types.Amount) error {
	m := s.tokens[token]
	if m == nil {
		return fmt.Errorf("state: burn of unregistered token %v", token.Short())
	}
	if m[holder] < amt {
		return fmt.Errorf("state: burn %v of %v from %v: balance %v", amt, token.Short(), holder.Short(), m[holder])
	}
	s.record(token, holder)
	m[holder] -= amt
	return nil
}

// TransferToken moves token units between holders, failing on insufficient
// balance.
func (s *State) TransferToken(token, from, to types.Address, amt types.Amount) error {
	if amt < 0 {
		return fmt.Errorf("state: negative token transfer %v", amt)
	}
	m := s.tokens[token]
	if m == nil {
		return fmt.Errorf("state: transfer of unregistered token %v", token.Short())
	}
	if m[from] < amt {
		return fmt.Errorf("state: transfer %v of %v from %v: balance %v", amt, token.Short(), from.Short(), m[from])
	}
	s.record(token, from)
	s.record(token, to)
	m[from] -= amt
	m[to] += amt
	return nil
}

// Snapshot opens a revert point. Snapshots nest; each Revert or Commit
// closes the most recent one.
func (s *State) Snapshot() {
	s.snaps = append(s.snaps, len(s.journal))
}

// Revert undoes every balance change since the most recent Snapshot and
// closes it. It panics if no snapshot is open (a programming error in the
// executor).
func (s *State) Revert() {
	if len(s.snaps) == 0 {
		panic("state: Revert without Snapshot")
	}
	mark := s.snaps[len(s.snaps)-1]
	s.snaps = s.snaps[:len(s.snaps)-1]
	for i := len(s.journal) - 1; i >= mark; i-- {
		e := s.journal[i]
		if e.token.IsZero() {
			if e.had {
				s.eth[e.holder] = e.prev
			} else {
				delete(s.eth, e.holder)
			}
		} else if m := s.tokens[e.token]; m != nil {
			if e.had {
				m[e.holder] = e.prev
			} else {
				delete(m, e.holder)
			}
		}
	}
	s.journal = s.journal[:mark]
}

// Commit closes the most recent snapshot, keeping all changes. If an outer
// snapshot remains open the journal entries are retained so the outer
// revert still covers them.
func (s *State) Commit() {
	if len(s.snaps) == 0 {
		panic("state: Commit without Snapshot")
	}
	s.snaps = s.snaps[:len(s.snaps)-1]
	if len(s.snaps) == 0 {
		s.journal = s.journal[:0]
	}
}

// TotalEther sums all ether balances; conservation checks use it.
func (s *State) TotalEther() types.Amount {
	var sum types.Amount
	for _, v := range s.eth {
		sum += v
	}
	return sum
}

// TotalToken sums all balances of one token.
func (s *State) TotalToken(token types.Address) types.Amount {
	var sum types.Amount
	for _, v := range s.tokens[token] {
		sum += v
	}
	return sum
}
