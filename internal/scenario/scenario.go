// Package scenario names the counterfactual worlds the ensemble runner
// sweeps. A scenario is a reproducible transformation of the baseline
// sim.Config — the paper replays one 23-month history; scenarios plus
// multi-seed ensembles put error bars on its headline numbers and probe
// the §8 "what if" discussion (no Flashbots, more mining centralization,
// broader private-pool adoption, the post-London fee regime) as well as
// the measurement side itself: the observation-network scenarios
// (single-vantage, multi-vantage-union, degraded-observer) vary where —
// and how well — the §6 mempool observer listens.
package scenario

import (
	"fmt"
	"sort"
	"strings"

	"mevscope/internal/p2p"
	"mevscope/internal/sim"
	"mevscope/internal/types"
)

// Params are the scale knobs shared by every scenario; zero values select
// the sim defaults.
type Params struct {
	Seed           int64
	BlocksPerMonth uint64
	Months         int
	NumMiners      int
	NumTraders     int
}

// apply copies the non-zero knobs onto a config.
func (p Params) apply(cfg *sim.Config) {
	if p.BlocksPerMonth > 0 {
		cfg.BlocksPerMonth = p.BlocksPerMonth
	}
	if p.Months > 0 {
		cfg.Months = p.Months
	}
	if p.NumMiners > 0 {
		cfg.NumMiners = p.NumMiners
	}
	if p.NumTraders > 0 {
		cfg.NumTraders = p.NumTraders
	}
}

// Scenario is one named counterfactual.
type Scenario struct {
	Name string
	// Description is a one-line summary for CLI listings.
	Description string
	// View names the observation view the scenario classifies private
	// transactions against ("" = the primary vantage; "union",
	// "quorum:K", "vantage:N" — see internal/dataset).
	View string
	// mutate rewrites the baseline config into the counterfactual.
	mutate func(*sim.Config)
}

// Config materializes the scenario at the given scale. The result is a
// valid sim.Config: it passes sim.New for any positive BlocksPerMonth.
func (sc Scenario) Config(p Params) sim.Config {
	cfg := sim.DefaultConfig(p.Seed)
	p.apply(&cfg)
	if sc.mutate != nil {
		sc.mutate(&cfg)
	}
	return cfg
}

// The scenario registry. Names are what `mevscope -scenario` accepts.
const (
	// Baseline replays the paper's world unmodified.
	Baseline = "baseline"
	// NoFlashbots is the §8.2 ablation: Flashbots never launches and
	// priority gas auctions persist at pre-2021 intensity.
	NoFlashbots = "no-flashbots"
	// HashpowerSkew doubles the Zipf exponent of the miner set: the two
	// top pools control an even larger hashpower share (§4.4 stress test).
	HashpowerSkew = "hashpower-skew"
	// HighPrivate scales non-Flashbots private-pool adoption 2.5× and
	// starts it at the Flashbots launch instead of late 2021 — the §6
	// "dark pool" growth counterfactual.
	HighPrivate = "high-private"
	// PostLondon truncates the window to August 2021 onward, so every
	// block prices gas under EIP-1559.
	PostLondon = "post-london"
	// SingleVantage is the paper's measurement setup made explicit: one
	// observer at node 0 of the default topology. Identical world and
	// report to the baseline — the golden pin for the observation
	// network refactor.
	SingleVantage = "single-vantage"
	// MultiVantageUnion spreads four observation vantages around the
	// gossip network and classifies §6 against their union view — the
	// "what if the study had listened from several places" robustness
	// check.
	MultiVantageUnion = "multi-vantage-union"
	// DegradedObserver runs the paper's single vantage through a bad
	// month: a 15 % miss rate plus two mid-window outages — how fragile
	// the private/public split is to one flaky collector.
	DegradedObserver = "degraded-observer"
)

// multiVantageCount is how many vantages the multi-vantage-union
// scenario spreads around the network.
const multiVantageCount = 4

var registry = map[string]Scenario{
	Baseline: {
		Name:        Baseline,
		Description: "the paper's world, unmodified",
	},
	NoFlashbots: {
		Name:        NoFlashbots,
		Description: "Flashbots never launches; PGAs persist (§8.2 ablation)",
		mutate: func(cfg *sim.Config) {
			cfg.DisableFlashbots = true
		},
	},
	HashpowerSkew: {
		Name:        HashpowerSkew,
		Description: "mining hashpower concentrated 2x harder into the top pools",
		mutate: func(cfg *sim.Config) {
			cfg.HashpowerSkew = 2.0
		},
	},
	HighPrivate: {
		Name:        HighPrivate,
		Description: "non-Flashbots private pools adopt early and capture 2.5x MEV",
		mutate: func(cfg *sim.Config) {
			cfg.PrivatePoolScale = 2.5
		},
	},
	PostLondon: {
		Name:        PostLondon,
		Description: "window truncated to Aug 2021+; every block is EIP-1559",
		mutate: func(cfg *sim.Config) {
			cfg.StartMonth = types.LondonForkMonth
			// A full-window month count would overflow the truncated
			// window; let sim.New re-derive the maximum.
			cfg.Months = 0
		},
	},
	SingleVantage: {
		Name:        SingleVantage,
		Description: "the paper's single node-0 observer, explicit (byte-identical to baseline)",
	},
	MultiVantageUnion: {
		Name:        MultiVantageUnion,
		Description: "4 observation vantages spread around the network, classified against their union",
		View:        "union",
		mutate: func(cfg *sim.Config) {
			cfg.Net.Vantages = p2p.SpreadVantages(cfg.Net.Nodes, multiVantageCount, cfg.Net.ObserverMissRate)
		},
	},
	DegradedObserver: {
		Name:        DegradedObserver,
		Description: "one flaky vantage: 15% miss rate plus two mid-window outages",
		mutate: func(cfg *sim.Config) {
			// Outage windows are block ranges, so they depend on the run's
			// scale: half of the second observation month and a quarter of
			// the fourth go dark.
			tl := types.TimelineFrom(cfg.BlocksPerMonth, cfg.StartMonth)
			bpm := cfg.BlocksPerMonth
			m19 := tl.FirstBlockOfMonth(types.ObservationStartMonth + 1)
			m21 := tl.FirstBlockOfMonth(types.ObservationStartMonth + 3)
			cfg.Net.Vantages = []p2p.VantageConfig{{
				Node:     0,
				MissRate: 0.15,
				Outages: []p2p.OutageWindow{
					{Start: m19, Stop: m19 + bpm/2 - 1},
					{Start: m21, Stop: m21 + bpm/4 - 1},
				},
			}}
		},
	},
}

// Names lists every registered scenario, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup finds a scenario by name (case-insensitive). The empty string
// resolves to the baseline.
func Lookup(name string) (Scenario, bool) {
	if name == "" {
		name = Baseline
	}
	sc, ok := registry[strings.ToLower(name)]
	return sc, ok
}

// MustLookup is Lookup that errors with the valid names, for CLI surfaces.
func MustLookup(name string) (Scenario, error) {
	sc, ok := Lookup(name)
	if !ok {
		return Scenario{}, fmt.Errorf("scenario: unknown %q (valid: %s)", name, strings.Join(Names(), ", "))
	}
	return sc, nil
}
