package scenario

import (
	"testing"

	"mevscope/internal/sim"
	"mevscope/internal/types"
)

// smallParams keeps per-scenario validation runs cheap.
var smallParams = Params{Seed: 7, BlocksPerMonth: 20, Months: 2, NumMiners: 12, NumTraders: 25}

func TestEveryScenarioYieldsValidConfig(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("expected at least 5 scenarios, have %v", names)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, ok := Lookup(name)
			if !ok {
				t.Fatalf("Lookup(%q) failed", name)
			}
			if sc.Description == "" {
				t.Error("missing description")
			}
			cfg := sc.Config(smallParams)
			if cfg.Seed != smallParams.Seed {
				t.Errorf("seed not propagated: %d", cfg.Seed)
			}
			s, err := sim.New(cfg)
			if err != nil {
				t.Fatalf("sim.New rejected %s config: %v", name, err)
			}
			if err := s.Run(); err != nil {
				t.Fatalf("sim.Run failed for %s: %v", name, err)
			}
		})
	}
}

func TestAblationsDifferFromBaseline(t *testing.T) {
	base, _ := Lookup(Baseline)
	baseCfg := base.Config(smallParams)
	if baseCfg.DisableFlashbots || baseCfg.StartMonth != 0 ||
		baseCfg.HashpowerSkew != 0 || baseCfg.PrivatePoolScale != 0 {
		t.Fatalf("baseline config carries ablation knobs: %+v", baseCfg)
	}

	nofb, _ := Lookup(NoFlashbots)
	if !nofb.Config(smallParams).DisableFlashbots {
		t.Error("no-flashbots should disable Flashbots")
	}

	skew, _ := Lookup(HashpowerSkew)
	if got := skew.Config(smallParams).HashpowerSkew; got <= 1 {
		t.Errorf("hashpower-skew should concentrate (>1), got %v", got)
	}

	priv, _ := Lookup(HighPrivate)
	if got := priv.Config(smallParams).PrivatePoolScale; got <= 1 {
		t.Errorf("high-private should scale adoption up (>1), got %v", got)
	}

	pl, _ := Lookup(PostLondon)
	if got := pl.Config(smallParams).StartMonth; got != types.LondonForkMonth {
		t.Errorf("post-london StartMonth = %v, want %v", got, types.LondonForkMonth)
	}
}

// TestHashpowerSkewConcentrates verifies the skew knob changes the world,
// not just the config: the top miner's hashpower share must grow.
func TestHashpowerSkewConcentrates(t *testing.T) {
	share := func(skew float64) float64 {
		cfg := sim.DefaultConfig(3)
		cfg.BlocksPerMonth = 20
		cfg.Months = 1
		cfg.HashpowerSkew = skew
		s, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		miners := s.Mset.Miners()
		var top, total float64
		for _, m := range miners {
			total += m.Hashpower
			if m.Hashpower > top {
				top = m.Hashpower
			}
		}
		return top / total
	}
	if base, skewed := share(0), share(2.0); skewed <= base {
		t.Errorf("skew 2.0 top share %.3f not above baseline %.3f", skewed, base)
	}
}

// TestPostLondonEveryBlockPricedUnder1559 runs the truncated window and
// checks the chain starts at the London fork with a live base fee.
func TestPostLondonEveryBlockPricedUnder1559(t *testing.T) {
	pl, _ := Lookup(PostLondon)
	cfg := pl.Config(Params{Seed: 11, BlocksPerMonth: 15, NumMiners: 10, NumTraders: 20})
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	wantBlocks := 15 * int(types.StudyMonths-types.LondonForkMonth)
	if got := s.Chain.Len(); got != wantBlocks {
		t.Errorf("chain length %d, want %d", got, wantBlocks)
	}
	for _, b := range s.Chain.Blocks() {
		if b.Header.BaseFee == 0 {
			t.Fatalf("block %d has no base fee in a post-London run", b.Header.Number)
		}
		if m := s.Chain.Timeline.MonthOfBlock(b.Header.Number); m < types.LondonForkMonth {
			t.Fatalf("block %d maps to pre-London month %v", b.Header.Number, m)
		}
	}
}

// TestHighPrivateScalesCalibration checks the private-channel scaling is
// visible in sim world behaviour knobs rather than silently dropped.
func TestHighPrivateScalesCalibration(t *testing.T) {
	mk := func(scale float64) *sim.Sim {
		cfg := sim.DefaultConfig(5)
		cfg.BlocksPerMonth = 15
		cfg.Months = 1
		cfg.PrivatePoolScale = scale
		s, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	base, high := mk(0), mk(2.5)
	// Month 16 has nonzero baseline private adoption; month 10 only gains
	// it in the high-adoption counterfactual.
	if high.Cal[16].SandwichPriv <= base.Cal[16].SandwichPriv {
		t.Errorf("month 16 SandwichPriv not scaled: %v vs %v", high.Cal[16].SandwichPriv, base.Cal[16].SandwichPriv)
	}
	if base.Cal[10].SandwichPriv != 0 {
		t.Fatalf("baseline month 10 unexpectedly has private adoption")
	}
	if high.Cal[10].SandwichPriv == 0 {
		t.Error("high-private should start private adoption at the Flashbots launch")
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("not-a-scenario"); ok {
		t.Error("unknown name resolved")
	}
	if _, err := MustLookup("not-a-scenario"); err == nil {
		t.Error("MustLookup should error")
	}
	if sc, ok := Lookup(""); !ok || sc.Name != Baseline {
		t.Error("empty name should resolve to baseline")
	}
	if sc, ok := Lookup("BASELINE"); !ok || sc.Name != Baseline {
		t.Error("lookup should be case-insensitive")
	}
}
