// Package p2p simulates Ethereum's transaction gossip network and the
// study's measurement side: an observation network of one or more
// vantage points listening to the public mempool.
//
// A Network is a connected graph of nodes under a pluggable topology
// (ring, ring+random chords, small-world rewiring — the same cheap
// relay-topology modelling minesim uses for Bitcoin block propagation).
// Publicly submitted transactions enter at a random origin node and
// flood-fill to all peers. N configurable vantage points — the
// multi-source collector architecture of mempool-dumpster, where every
// source keeps its own first-seen log — record the pending transactions
// they see:
//
//   - each vantage sits at a configurable node position and sees a
//     transaction after a per-hop propagation delay (HopLatency × its BFS
//     distance from the origin);
//   - each vantage misses an independent, configurable fraction of the
//     public traffic entirely (mempool churn, races with inclusion),
//     matching the paper's assumption that their node saw "the vast
//     majority" but not all of it;
//   - each vantage can carry outage windows — block ranges during which
//     it records nothing (node crash, disk full, resync), the failure
//     mode that makes single-vantage studies fragile.
//
// Every vantage keeps a deterministic, seeded record log that depends
// only on the configuration: per-vantage miss draws come from dedicated
// rng streams, and the gossip origin of each transaction comes from its
// own split stream, so changing one vantage's miss rate, adding a
// vantage, or toggling an outage window never perturbs what any other
// vantage observes or where transactions originate. Vantage records can
// be combined into union and quorum-k views (views.go) — the robustness
// axis behind the "how sensitive is the §6 private/public split to where
// you listen" question.
//
// Private transactions never touch the network: Flashbots bundles and
// other private-pool submissions go directly to miners, which is exactly
// what makes them invisible to every vantage and detectable only by the
// set-difference inference in internal/core/privinfer.
package p2p

import (
	"fmt"
	"math/rand"
	"time"

	"mevscope/internal/mempool"
	"mevscope/internal/types"
)

// Topology names a gossip graph shape.
type Topology string

// Supported topologies.
const (
	// TopologyRingChords is the default: a ring for connectivity plus
	// random chords up to the target degree (the historical graph).
	TopologyRingChords Topology = "ring-chords"
	// TopologyRing is a plain ring lattice: every node links to its
	// Degree/2 nearest neighbours on each side. High diameter, no
	// shortcuts — the worst case for propagation delay.
	TopologyRing Topology = "ring"
	// TopologySmallWorld is Watts-Strogatz rewiring: the ring lattice
	// with each forward edge rewired to a random node with probability
	// 0.1. Short paths with high clustering — closest to measured p2p
	// overlays.
	TopologySmallWorld Topology = "small-world"
)

// smallWorldBeta is the Watts-Strogatz rewiring probability.
const smallWorldBeta = 0.1

// ParseTopology parses a CLI-style topology name. The empty string
// selects the default ring-chords graph.
func ParseTopology(s string) (Topology, error) {
	switch Topology(s) {
	case "", TopologyRingChords:
		return TopologyRingChords, nil
	case TopologyRing:
		return TopologyRing, nil
	case TopologySmallWorld:
		return TopologySmallWorld, nil
	}
	return "", fmt.Errorf("p2p: unknown topology %q (want %s, %s or %s)",
		s, TopologyRingChords, TopologyRing, TopologySmallWorld)
}

// OutageWindow is a block range (inclusive) during which a vantage
// records nothing.
type OutageWindow struct {
	Start uint64 `json:"start"`
	Stop  uint64 `json:"stop"`
}

// contains reports whether the block falls inside the window.
func (w OutageWindow) contains(block uint64) bool {
	return block >= w.Start && block <= w.Stop
}

// VantageConfig places one observation vantage on the network.
type VantageConfig struct {
	// Node is the graph position the vantage listens at.
	Node int
	// MissRate is the probability this vantage never sees a given public
	// transaction.
	MissRate float64
	// Outages are block ranges during which the vantage records nothing.
	Outages []OutageWindow
}

// SpreadVantages places count vantages evenly around an nodes-node
// graph, all with the same miss rate — the standard multi-vantage
// layout behind `-vantages N` and the multi-vantage-union scenario.
func SpreadVantages(nodes, count int, missRate float64) []VantageConfig {
	if count < 1 {
		count = 1
	}
	out := make([]VantageConfig, count)
	for i := range out {
		out[i] = VantageConfig{Node: i * nodes / count, MissRate: missRate}
	}
	return out
}

// Config describes the gossip network and its observation vantages.
type Config struct {
	// Nodes is the network size (vantages included). Minimum 2.
	Nodes int
	// Degree is the target peer count per node.
	Degree int
	// Topology selects the graph shape; empty selects ring-chords.
	Topology Topology
	// HopLatency is the per-hop propagation delay.
	HopLatency time.Duration
	// ObserverMissRate is the miss rate of the default single vantage,
	// used when Vantages is empty.
	ObserverMissRate float64
	// Vantages places the observation vantages. Empty means one vantage
	// at node 0 with ObserverMissRate — the paper's single-observer
	// setup.
	Vantages []VantageConfig
	// Seed feeds the network's private RNG streams.
	Seed int64
}

// DefaultConfig is a small but structurally realistic network.
func DefaultConfig(seed int64) Config {
	return Config{Nodes: 200, Degree: 8, HopLatency: 80 * time.Millisecond, ObserverMissRate: 0.01, Seed: seed}
}

// vantageConfigs resolves the configured vantage list, defaulting to the
// single node-0 observer.
func (cfg Config) vantageConfigs() []VantageConfig {
	if len(cfg.Vantages) > 0 {
		return cfg.Vantages
	}
	return []VantageConfig{{Node: 0, MissRate: cfg.ObserverMissRate}}
}

// ObservedTx is one pending-transaction record captured by a vantage —
// the record shape the paper stored in MongoDB, one log per source like
// mempool-dumpster's per-collector first-seen files.
type ObservedTx struct {
	Hash types.Hash
	// FirstSeenBlock is the chain height at which the vantage first saw
	// the transaction.
	FirstSeenBlock uint64
	// FirstSeen is the wall-clock observation moment.
	FirstSeen time.Time
	// Hops is the gossip distance from the origin node to the vantage.
	Hops int
}

// Observer records pending transactions during its observation window —
// one vantage of the observation network.
type Observer struct {
	node     int
	missRate float64
	outages  []OutageWindow

	// legacy marks the primary vantage, whose miss stream reproduces the
	// original single-observer implementation draw for draw (see observe).
	legacy bool
	// rng is this vantage's private miss stream. Each vantage owns one,
	// so per-vantage miss rates are independent knobs.
	rng *rand.Rand
	// dist is the BFS hop distance from every node to this vantage.
	dist       []int
	hopLatency time.Duration

	active    bool
	startedAt uint64
	stoppedAt uint64
	records   map[types.Hash]ObservedTx
	order     []types.Hash
}

// Node returns the graph position the vantage listens at.
func (o *Observer) Node() int { return o.node }

// MissRate returns the vantage's configured miss probability.
func (o *Observer) MissRate() float64 { return o.missRate }

// Active reports whether the observer is currently recording.
func (o *Observer) Active() bool { return o.active }

// Seen reports whether the observer recorded the transaction.
func (o *Observer) Seen(h types.Hash) bool {
	_, ok := o.records[h]
	return ok
}

// Record returns the observation record for a transaction.
func (o *Observer) Record(h types.Hash) (ObservedTx, bool) {
	r, ok := o.records[h]
	return r, ok
}

// Records returns all observations in capture order.
func (o *Observer) Records() []ObservedTx {
	out := make([]ObservedTx, len(o.order))
	for i, h := range o.order {
		out[i] = o.records[h]
	}
	return out
}

// Count is the number of recorded pending transactions.
func (o *Observer) Count() int { return len(o.records) }

// Window returns the observation start and stop heights (stop is zero
// while still active).
func (o *Observer) Window() (start, stop uint64) { return o.startedAt, o.stoppedAt }

// inOutage reports whether the vantage is dark at the given height.
func (o *Observer) inOutage(block uint64) bool {
	for _, w := range o.outages {
		if w.contains(block) {
			return true
		}
	}
	return false
}

// observe runs one vantage's capture decision for a broadcast. The miss
// draw is consumed whenever the vantage is active — outages gate only
// the recording — so toggling an outage window changes what is recorded
// during it, never the record stream after it.
func (o *Observer) observe(tx *types.Transaction, origin int, block uint64, at time.Time) bool {
	if !o.active {
		return false
	}
	if o.rng.Float64() < o.missRate {
		return false
	}
	if o.legacy {
		// Historical stream position: the original single-observer
		// implementation drew the gossip origin from this stream after a
		// passed miss check. Origins now come from the network's dedicated
		// origin stream (shared by every vantage, independent of miss
		// rates), but the draw is kept so existing seeds reproduce the
		// same *set* of observed transactions — the miss outcomes, which
		// the §6 inference and the golden report pin. Per-record Hops and
		// FirstSeen derive from the new origin stream and do differ from
		// pre-refactor runs.
		_ = o.rng.Intn(len(o.dist))
	}
	if o.inOutage(block) {
		return false
	}
	hops := o.dist[origin]
	if hops < 0 {
		return false // unreachable (cannot happen with a ring base graph)
	}
	h := tx.Hash()
	if _, dup := o.records[h]; dup {
		return false
	}
	o.records[h] = ObservedTx{
		Hash:           h,
		FirstSeenBlock: block,
		FirstSeen:      at.Add(time.Duration(hops) * o.hopLatency),
		Hops:           hops,
	}
	o.order = append(o.order, h)
	return true
}

// RestoreObserver rebuilds a node-0 observer from persisted records and
// window bounds — how internal/archive resurrects the pending-transaction
// capture so a re-analysis classifies private transactions exactly like
// the original run.
func RestoreObserver(records []ObservedTx, start, stop uint64) *Observer {
	return RestoreVantage(0, records, start, stop)
}

// RestoreVantage rebuilds one vantage of the observation network from
// its persisted record log, window bounds and node position. Restored
// vantages never record; they only answer Seen/Record queries.
func RestoreVantage(node int, records []ObservedTx, start, stop uint64) *Observer {
	o := &Observer{
		node:      node,
		startedAt: start,
		stoppedAt: stop,
		records:   make(map[types.Hash]ObservedTx, len(records)),
		order:     make([]types.Hash, 0, len(records)),
	}
	for _, r := range records {
		if _, dup := o.records[r.Hash]; dup {
			continue
		}
		o.records[r.Hash] = r
		o.order = append(o.order, r.Hash)
	}
	return o
}

// Network is the gossip graph plus the public mempool it feeds and the
// observation vantages listening to it.
type Network struct {
	cfg   Config
	rng   *rand.Rand // graph build + the primary vantage's legacy miss stream
	peers [][]int    // adjacency lists
	pool  *mempool.Pool

	// originRng is the dedicated stream for gossip-origin draws: one draw
	// per admitted broadcast, unconditionally, so origins depend only on
	// the broadcast sequence — never on miss rates, outages, vantage
	// count or the observation window.
	originRng *rand.Rand

	vantages []*Observer
}

// New builds the network graph, its public mempool and the configured
// observation vantages.
func New(cfg Config) (*Network, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("p2p: need at least 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Degree < 1 {
		return nil, fmt.Errorf("p2p: need degree >= 1, got %d", cfg.Degree)
	}
	top, err := ParseTopology(string(cfg.Topology))
	if err != nil {
		return nil, err
	}
	vcs := cfg.vantageConfigs()
	for i, vc := range vcs {
		if vc.Node < 0 || vc.Node >= cfg.Nodes {
			return nil, fmt.Errorf("p2p: vantage %d at node %d outside the %d-node network", i, vc.Node, cfg.Nodes)
		}
		if vc.MissRate < 0 || vc.MissRate >= 1 {
			return nil, fmt.Errorf("p2p: vantage %d miss rate %v outside [0, 1)", i, vc.MissRate)
		}
	}
	n := &Network{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		pool:      mempool.New(),
		originRng: rand.New(rand.NewSource(cfg.Seed ^ originStreamSalt)),
	}
	n.buildGraph(top)
	for i, vc := range vcs {
		v := &Observer{
			node:       vc.Node,
			missRate:   vc.MissRate,
			outages:    append([]OutageWindow(nil), vc.Outages...),
			hopLatency: cfg.HopLatency,
			dist:       n.bfsFrom(vc.Node),
			records:    make(map[types.Hash]ObservedTx),
		}
		if i == 0 {
			// The primary vantage shares the network's main rng with the
			// historical draw pattern, so single-vantage runs reproduce the
			// original observer's record log seed for seed.
			v.legacy = true
			v.rng = n.rng
		} else {
			v.rng = rand.New(rand.NewSource(vantageStreamSeed(cfg.Seed, i)))
		}
		n.vantages = append(n.vantages, v)
	}
	return n, nil
}

// Stream salts: each rng stream of the network is derived from the
// configured seed so streams never alias each other.
const originStreamSalt = 0x6f72_6967_696e // "origin"

// vantageStreamSeed derives the private miss-stream seed of vantage i
// (i ≥ 1; vantage 0 uses the network's main rng).
func vantageStreamSeed(seed int64, i int) int64 {
	const golden = int64(-0x61C8_8646_80B5_83EB) // 2^64 / φ, as a signed word
	return seed + int64(i+1)*golden
}

// buildGraph wires the configured topology. Every topology keeps the
// base ring, so the graph is always connected.
func (n *Network) buildGraph(top Topology) {
	nodes := n.cfg.Nodes
	n.peers = make([][]int, nodes)
	addEdge := func(a, b int) {
		if a == b {
			return
		}
		for _, p := range n.peers[a] {
			if p == b {
				return
			}
		}
		n.peers[a] = append(n.peers[a], b)
		n.peers[b] = append(n.peers[b], a)
	}
	switch top {
	case TopologyRing, TopologySmallWorld:
		// Ring lattice: Degree/2 nearest neighbours on each side.
		side := n.cfg.Degree / 2
		if side < 1 {
			side = 1
		}
		for i := 0; i < nodes; i++ {
			for d := 1; d <= side; d++ {
				addEdge(i, (i+d)%nodes)
			}
		}
		if top == TopologySmallWorld {
			// Watts-Strogatz: rewire each forward lattice edge beyond the
			// base ring with probability beta. The d=1 ring edges stay, so
			// connectivity is preserved.
			for i := 0; i < nodes; i++ {
				for d := 2; d <= side; d++ {
					if n.rng.Float64() >= smallWorldBeta {
						continue
					}
					target := n.rng.Intn(nodes)
					n.dropEdge(i, (i+d)%nodes)
					addEdge(i, target)
				}
			}
		}
	default: // ring-chords
		for i := 0; i < nodes; i++ {
			addEdge(i, (i+1)%nodes)
		}
		for i := 0; i < nodes; i++ {
			for len(n.peers[i]) < n.cfg.Degree {
				addEdge(i, n.rng.Intn(nodes))
			}
		}
	}
}

// dropEdge removes an undirected edge if present.
func (n *Network) dropEdge(a, b int) {
	drop := func(from, to int) {
		for i, p := range n.peers[from] {
			if p == to {
				n.peers[from] = append(n.peers[from][:i], n.peers[from][i+1:]...)
				return
			}
		}
	}
	drop(a, b)
	drop(b, a)
}

// bfsFrom computes hop distances from every node to the given root.
func (n *Network) bfsFrom(root int) []int {
	dist := make([]int, n.cfg.Nodes)
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range n.peers[v] {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Pool returns the canonical public mempool fed by this network.
func (n *Network) Pool() *mempool.Pool { return n.pool }

// Observer returns the primary measurement vantage (the paper's single
// observer).
func (n *Network) Observer() *Observer { return n.vantages[0] }

// Vantages returns every observation vantage in configuration order.
// Callers must not mutate the slice.
func (n *Network) Vantages() []*Observer { return n.vantages }

// StartObservation begins recording pending transactions at the given
// chain height (the paper's Nov 8th, 2021 moment) on every vantage.
func (n *Network) StartObservation(block uint64) {
	for _, v := range n.vantages {
		v.active = true
		v.startedAt = block
	}
}

// StopObservation ends the recording window on every vantage.
func (n *Network) StopObservation(block uint64) {
	for _, v := range n.vantages {
		v.active = false
		v.stoppedAt = block
	}
}

// Broadcast gossips a transaction from a random origin node at the given
// height. It reports whether the transaction was admitted to the public
// mempool (false for duplicates) and whether at least one vantage
// captured it — distinct outcomes: an admitted transaction can still go
// unobserved (window closed, miss draw, outage), and callers that used
// to conflate the two now see each.
func (n *Network) Broadcast(tx *types.Transaction, block uint64, at time.Time) (admitted, observed bool) {
	if !n.pool.Add(tx) {
		return false, false
	}
	origin := n.originRng.Intn(n.cfg.Nodes)
	for _, v := range n.vantages {
		if v.observe(tx, origin, block, at) {
			observed = true
		}
	}
	return true, observed
}

// Diameter returns the maximum hop distance to the primary vantage, a
// sanity metric for the generated topology.
func (n *Network) Diameter() int {
	d := 0
	for _, v := range n.vantages[0].dist {
		if v > d {
			d = v
		}
	}
	return d
}

// PeerCount returns the degree of one node.
func (n *Network) PeerCount(node int) int {
	if node < 0 || node >= len(n.peers) {
		return 0
	}
	return len(n.peers[node])
}

// Nodes returns the network size.
func (n *Network) Nodes() int { return n.cfg.Nodes }
