// Package p2p simulates Ethereum's transaction gossip network and the
// paper's measurement vantage point.
//
// A Network is a random regular-ish graph of nodes. Publicly submitted
// transactions enter at a random origin node and flood-fill to all peers;
// one designated node is the measurement observer, standing in for the
// paper's archive node subscribed to pendingTransactions events. The
// observer sees a transaction after a hop-latency delay and — matching the
// paper's assumption that their node saw "the vast majority" but not all
// of the public traffic — misses a small configurable fraction entirely.
//
// Private transactions never touch the network: Flashbots bundles and
// other private-pool submissions go directly to miners, which is exactly
// what makes them invisible to the observer and detectable only by the
// set-difference inference in internal/core/privinfer.
package p2p

import (
	"fmt"
	"math/rand"
	"time"

	"mevscope/internal/mempool"
	"mevscope/internal/types"
)

// Config describes the gossip network.
type Config struct {
	// Nodes is the network size (observer included). Minimum 2.
	Nodes int
	// Degree is the target peer count per node.
	Degree int
	// HopLatency is the per-hop propagation delay.
	HopLatency time.Duration
	// ObserverMissRate is the probability the observer never sees a given
	// public transaction (mempool churn, race with inclusion, ...).
	ObserverMissRate float64
	// Seed feeds the network's private RNG.
	Seed int64
}

// DefaultConfig is a small but structurally realistic network.
func DefaultConfig(seed int64) Config {
	return Config{Nodes: 200, Degree: 8, HopLatency: 80 * time.Millisecond, ObserverMissRate: 0.01, Seed: seed}
}

// ObservedTx is one pending-transaction record captured by the observer —
// the record shape the paper stored in MongoDB.
type ObservedTx struct {
	Hash types.Hash
	// FirstSeenBlock is the chain height at which the observer first saw
	// the transaction.
	FirstSeenBlock uint64
	// FirstSeen is the wall-clock observation moment.
	FirstSeen time.Time
	// Hops is the gossip distance from the origin node to the observer.
	Hops int
}

// Observer records pending transactions during its observation window.
type Observer struct {
	active    bool
	startedAt uint64
	stoppedAt uint64
	records   map[types.Hash]ObservedTx
	order     []types.Hash
}

// Active reports whether the observer is currently recording.
func (o *Observer) Active() bool { return o.active }

// Seen reports whether the observer recorded the transaction.
func (o *Observer) Seen(h types.Hash) bool {
	_, ok := o.records[h]
	return ok
}

// Record returns the observation record for a transaction.
func (o *Observer) Record(h types.Hash) (ObservedTx, bool) {
	r, ok := o.records[h]
	return r, ok
}

// Records returns all observations in capture order.
func (o *Observer) Records() []ObservedTx {
	out := make([]ObservedTx, len(o.order))
	for i, h := range o.order {
		out[i] = o.records[h]
	}
	return out
}

// Count is the number of recorded pending transactions.
func (o *Observer) Count() int { return len(o.records) }

// RestoreObserver rebuilds an observer from persisted records and window
// bounds — how internal/archive resurrects the pending-transaction
// capture so a re-analysis classifies private transactions exactly like
// the original run.
func RestoreObserver(records []ObservedTx, start, stop uint64) *Observer {
	o := &Observer{
		startedAt: start,
		stoppedAt: stop,
		records:   make(map[types.Hash]ObservedTx, len(records)),
		order:     make([]types.Hash, 0, len(records)),
	}
	for _, r := range records {
		if _, dup := o.records[r.Hash]; dup {
			continue
		}
		o.records[r.Hash] = r
		o.order = append(o.order, r.Hash)
	}
	return o
}

// Window returns the observation start and stop heights (stop is zero
// while still active).
func (o *Observer) Window() (start, stop uint64) { return o.startedAt, o.stoppedAt }

// Network is the gossip graph plus the public mempool it feeds.
type Network struct {
	cfg      Config
	rng      *rand.Rand
	peers    [][]int // adjacency lists
	distObs  []int   // hop distance from each node to the observer (node 0)
	pool     *mempool.Pool
	observer Observer
}

// New builds the network graph and its public mempool.
func New(cfg Config) (*Network, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("p2p: need at least 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Degree < 1 {
		return nil, fmt.Errorf("p2p: need degree >= 1, got %d", cfg.Degree)
	}
	n := &Network{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		pool: mempool.New(),
	}
	n.buildGraph()
	n.computeDistances()
	n.observer.records = make(map[types.Hash]ObservedTx)
	return n, nil
}

// buildGraph wires a connected random graph: a ring for connectivity plus
// random chords up to the target degree.
func (n *Network) buildGraph() {
	nodes := n.cfg.Nodes
	n.peers = make([][]int, nodes)
	addEdge := func(a, b int) {
		if a == b {
			return
		}
		for _, p := range n.peers[a] {
			if p == b {
				return
			}
		}
		n.peers[a] = append(n.peers[a], b)
		n.peers[b] = append(n.peers[b], a)
	}
	for i := 0; i < nodes; i++ {
		addEdge(i, (i+1)%nodes)
	}
	for i := 0; i < nodes; i++ {
		for len(n.peers[i]) < n.cfg.Degree {
			addEdge(i, n.rng.Intn(nodes))
		}
	}
}

// computeDistances runs BFS from the observer (node 0).
func (n *Network) computeDistances() {
	dist := make([]int, n.cfg.Nodes)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	queue := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range n.peers[v] {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	n.distObs = dist
}

// Pool returns the canonical public mempool fed by this network.
func (n *Network) Pool() *mempool.Pool { return n.pool }

// Observer returns the measurement observer.
func (n *Network) Observer() *Observer { return &n.observer }

// StartObservation begins recording pending transactions at the given
// chain height (the paper's Nov 8th, 2021 moment).
func (n *Network) StartObservation(block uint64) {
	n.observer.active = true
	n.observer.startedAt = block
}

// StopObservation ends the recording window.
func (n *Network) StopObservation(block uint64) {
	n.observer.active = false
	n.observer.stoppedAt = block
}

// Broadcast gossips a transaction from a random origin node at the given
// height, admitting it to the public mempool and possibly recording it at
// the observer. It returns whether the observer captured it.
func (n *Network) Broadcast(tx *types.Transaction, block uint64, at time.Time) bool {
	if !n.pool.Add(tx) {
		return false // duplicate
	}
	if !n.observer.active {
		return false
	}
	if n.rng.Float64() < n.cfg.ObserverMissRate {
		return false
	}
	origin := n.rng.Intn(n.cfg.Nodes)
	hops := n.distObs[origin]
	if hops < 0 {
		return false // unreachable (cannot happen with ring base graph)
	}
	h := tx.Hash()
	n.observer.records[h] = ObservedTx{
		Hash:           h,
		FirstSeenBlock: block,
		FirstSeen:      at.Add(time.Duration(hops) * n.cfg.HopLatency),
		Hops:           hops,
	}
	n.observer.order = append(n.observer.order, h)
	return true
}

// Diameter returns the maximum observer distance, a sanity metric for the
// generated topology.
func (n *Network) Diameter() int {
	d := 0
	for _, v := range n.distObs {
		if v > d {
			d = v
		}
	}
	return d
}

// PeerCount returns the degree of one node.
func (n *Network) PeerCount(node int) int {
	if node < 0 || node >= len(n.peers) {
		return 0
	}
	return len(n.peers[node])
}

// Nodes returns the network size.
func (n *Network) Nodes() int { return n.cfg.Nodes }
