package p2p

import (
	"fmt"
	"testing"
	"time"

	"mevscope/internal/types"
)

// benchTxs pre-builds (and pre-hashes) transactions so the broadcast
// benchmarks measure the network, not transaction construction.
func benchTxs(n int) []*types.Transaction {
	txs := make([]*types.Transaction, n)
	for i := range txs {
		txs[i] = &types.Transaction{Nonce: uint64(i), From: types.DeriveAddress("bench", 1), GasPrice: types.Gwei}
		txs[i].Hash()
	}
	return txs
}

// BenchmarkBroadcast measures the per-transaction gossip + observation
// cost as the vantage count grows — the new hot path of the observation
// network (ns/tx and allocs/tx land in CI's BENCH_p2p.json).
func BenchmarkBroadcast(b *testing.B) {
	for _, vantages := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("vantages=%d", vantages), func(b *testing.B) {
			cfg := DefaultConfig(1)
			cfg.Vantages = SpreadVantages(cfg.Nodes, vantages, cfg.ObserverMissRate)
			n, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			n.StartObservation(0)
			txs := benchTxs(b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Broadcast(txs[i], uint64(i), time.Unix(int64(i), 0))
			}
		})
	}
}

// BenchmarkUnionViewMaterialize measures flattening a 4-vantage union
// into one merged record log over a 10k-tx capture.
func BenchmarkUnionViewMaterialize(b *testing.B) {
	cfg := DefaultConfig(1)
	cfg.Vantages = SpreadVantages(cfg.Nodes, 4, 0.05)
	n, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	n.StartObservation(0)
	for i, tx := range benchTxs(10_000) {
		n.Broadcast(tx, uint64(i), time.Unix(int64(i), 0))
	}
	union := Union(n.Vantages()...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := union.Materialize(); m.Count() == 0 {
			b.Fatal("empty union")
		}
	}
}
