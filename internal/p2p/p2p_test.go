package p2p

import (
	"testing"
	"time"

	"mevscope/internal/types"
)

func mkTx(i uint64) *types.Transaction {
	return &types.Transaction{Nonce: i, From: types.DeriveAddress("p2p", 1), GasPrice: types.Gwei}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 1, Degree: 2}); err == nil {
		t.Error("1 node should be rejected")
	}
	if _, err := New(Config{Nodes: 10, Degree: 0}); err == nil {
		t.Error("degree 0 should be rejected")
	}
	if _, err := New(DefaultConfig(1)); err != nil {
		t.Errorf("default config: %v", err)
	}
	if _, err := New(Config{Nodes: 10, Degree: 2, Topology: "torus"}); err == nil {
		t.Error("unknown topology should be rejected")
	}
	if _, err := New(Config{Nodes: 10, Degree: 2, Vantages: []VantageConfig{{Node: 10}}}); err == nil {
		t.Error("out-of-range vantage node should be rejected")
	}
	if _, err := New(Config{Nodes: 10, Degree: 2, Vantages: []VantageConfig{{Node: 0, MissRate: 1.0}}}); err == nil {
		t.Error("miss rate 1.0 should be rejected")
	}
}

func TestGraphConnectivity(t *testing.T) {
	for _, top := range []Topology{TopologyRingChords, TopologyRing, TopologySmallWorld} {
		n, err := New(Config{Nodes: 100, Degree: 6, Seed: 42, Topology: top})
		if err != nil {
			t.Fatal(err)
		}
		// BFS distances must all be reachable under every topology.
		for i := 0; i < n.Nodes(); i++ {
			if n.vantages[0].dist[i] < 0 {
				t.Fatalf("%s: node %d unreachable", top, i)
			}
		}
		if n.Diameter() <= 0 || n.Diameter() > 60 {
			t.Errorf("%s: diameter = %d", top, n.Diameter())
		}
	}
	// The default chord graph honors the degree target.
	n, _ := New(Config{Nodes: 100, Degree: 6, Seed: 42})
	for i := 0; i < n.Nodes(); i++ {
		if n.PeerCount(i) < 6 {
			t.Errorf("node %d degree %d < 6", i, n.PeerCount(i))
		}
	}
	if n.PeerCount(-1) != 0 || n.PeerCount(10_000) != 0 {
		t.Error("out-of-range PeerCount should be 0")
	}
	// The plain ring has a much larger diameter than the chord graph —
	// the topology knob is real.
	ring, _ := New(Config{Nodes: 100, Degree: 2, Seed: 42, Topology: TopologyRing})
	if ring.Diameter() <= n.Diameter() {
		t.Errorf("ring diameter %d should exceed chords diameter %d", ring.Diameter(), n.Diameter())
	}
}

func TestBroadcastReturns(t *testing.T) {
	n, _ := New(Config{Nodes: 20, Degree: 4, Seed: 1})
	tx := mkTx(1)
	// Admitted but unobserved: the observation window has not opened.
	admitted, observed := n.Broadcast(tx, 100, time.Unix(0, 0))
	if !admitted || observed {
		t.Errorf("pre-window broadcast = (%v, %v), want (true, false)", admitted, observed)
	}
	if !n.Pool().Contains(tx.Hash()) {
		t.Error("broadcast should admit to mempool")
	}
	// Duplicate: rejected by the pool, distinct from mere non-observation.
	admitted, observed = n.Broadcast(tx, 101, time.Unix(1, 0))
	if admitted || observed {
		t.Errorf("duplicate broadcast = (%v, %v), want (false, false)", admitted, observed)
	}
	if n.Pool().Len() != 1 {
		t.Error("pool should hold one tx")
	}
	// Admitted and observed once the window opens (miss rate zero).
	n2, _ := New(Config{Nodes: 20, Degree: 4, Seed: 1, ObserverMissRate: 0})
	n2.StartObservation(100)
	admitted, observed = n2.Broadcast(mkTx(2), 120, time.Unix(0, 0))
	if !admitted || !observed {
		t.Errorf("in-window broadcast = (%v, %v), want (true, true)", admitted, observed)
	}
}

func TestObserverWindow(t *testing.T) {
	n, _ := New(Config{Nodes: 20, Degree: 4, Seed: 1, ObserverMissRate: 0})
	obs := n.Observer()
	if obs.Active() {
		t.Error("observer should start inactive")
	}

	before := mkTx(1)
	n.Broadcast(before, 50, time.Unix(0, 0))
	if obs.Seen(before.Hash()) {
		t.Error("tx before window should be unseen")
	}

	n.StartObservation(100)
	during := mkTx(2)
	if _, ok := n.Broadcast(during, 120, time.Unix(10, 0)); !ok {
		t.Error("tx during window should be captured")
	}
	if !obs.Seen(during.Hash()) {
		t.Error("Seen during window")
	}
	rec, ok := obs.Record(during.Hash())
	if !ok || rec.FirstSeenBlock != 120 {
		t.Errorf("record = %+v", rec)
	}
	if rec.FirstSeen.Before(time.Unix(10, 0)) {
		t.Error("first seen should include hop latency")
	}

	n.StopObservation(200)
	after := mkTx(3)
	n.Broadcast(after, 220, time.Unix(20, 0))
	if obs.Seen(after.Hash()) {
		t.Error("tx after window should be unseen")
	}

	start, stop := obs.Window()
	if start != 100 || stop != 200 {
		t.Errorf("window = %d..%d", start, stop)
	}
	if obs.Count() != 1 {
		t.Errorf("count = %d", obs.Count())
	}
	if len(obs.Records()) != 1 {
		t.Error("records len")
	}
}

func TestObserverMissRate(t *testing.T) {
	n, _ := New(Config{Nodes: 50, Degree: 4, Seed: 7, ObserverMissRate: 0.2})
	n.StartObservation(0)
	const total = 2000
	for i := 0; i < total; i++ {
		n.Broadcast(mkTx(uint64(i)), uint64(i), time.Unix(int64(i), 0))
	}
	missed := total - n.Observer().Count()
	// Expect ~20% misses; allow generous slack.
	if missed < total*10/100 || missed > total*30/100 {
		t.Errorf("missed %d of %d, want ≈ 20%%", missed, total)
	}
	// Everything still reached the mempool.
	if n.Pool().Len() != total {
		t.Error("all txs should be pending regardless of observer")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		n, _ := New(Config{Nodes: 60, Degree: 5, Seed: 99, ObserverMissRate: 0.1})
		n.StartObservation(0)
		var hops []int
		for i := 0; i < 100; i++ {
			tx := mkTx(uint64(i))
			n.Broadcast(tx, uint64(i), time.Unix(int64(i), 0))
			if r, ok := n.Observer().Record(tx.Hash()); ok {
				hops = append(hops, r.Hops)
			} else {
				hops = append(hops, -1)
			}
		}
		return hops
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// broadcastHops drives count broadcasts through a network and returns,
// per tx, the recorded hop distance at the primary vantage (-1 when
// unobserved).
func broadcastHops(cfg Config, count int) []int {
	n, _ := New(cfg)
	n.StartObservation(0)
	out := make([]int, count)
	for i := 0; i < count; i++ {
		tx := mkTx(uint64(i))
		n.Broadcast(tx, uint64(i), time.Unix(int64(i), 0))
		if r, ok := n.Observer().Record(tx.Hash()); ok {
			out[i] = r.Hops
		} else {
			out[i] = -1
		}
	}
	return out
}

// TestOriginIndependentOfMissRate pins the origin/miss-rate untangling:
// the gossip origin of a transaction comes from its own rng stream, so
// changing ObserverMissRate changes which txs are observed but never
// where the commonly-observed ones originated (their hop distances
// agree). Under the old entangled stream the first miss desynchronized
// every later origin draw.
func TestOriginIndependentOfMissRate(t *testing.T) {
	cfg := Config{Nodes: 60, Degree: 5, Seed: 99}
	cfg.ObserverMissRate = 0
	a := broadcastHops(cfg, 500)
	cfg.ObserverMissRate = 0.3
	b := broadcastHops(cfg, 500)
	missed, compared := 0, 0
	for i := range a {
		if b[i] == -1 {
			missed++
			continue
		}
		compared++
		if a[i] != b[i] {
			t.Fatalf("tx %d hops %d with miss rate 0.3, %d with 0 — origins entangled with the miss stream", i, b[i], a[i])
		}
	}
	if missed == 0 || compared == 0 {
		t.Fatalf("degenerate test: %d missed, %d compared", missed, compared)
	}
}

// TestVantageCountDoesNotPerturbPrimary: adding vantages must not change
// what the primary vantage observes — each vantage draws misses from its
// own stream.
func TestVantageCountDoesNotPerturbPrimary(t *testing.T) {
	record := func(extra int) []ObservedTx {
		cfg := Config{Nodes: 60, Degree: 5, Seed: 7, ObserverMissRate: 0.1}
		if extra > 0 {
			cfg.Vantages = SpreadVantages(cfg.Nodes, extra+1, cfg.ObserverMissRate)
		}
		n, _ := New(cfg)
		n.StartObservation(0)
		for i := 0; i < 400; i++ {
			n.Broadcast(mkTx(uint64(i)), uint64(i), time.Unix(int64(i), 0))
		}
		return n.Observer().Records()
	}
	solo, multi := record(0), record(3)
	if len(solo) != len(multi) {
		t.Fatalf("primary vantage records: %d solo vs %d with 3 extra vantages", len(solo), len(multi))
	}
	for i := range solo {
		if solo[i] != multi[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, solo[i], multi[i])
		}
	}
}

// TestPerVantageMissIndependence: changing one vantage's miss rate must
// not change what any other vantage records.
func TestPerVantageMissIndependence(t *testing.T) {
	record := func(rate1 float64) [][]ObservedTx {
		cfg := Config{Nodes: 60, Degree: 5, Seed: 7}
		cfg.Vantages = []VantageConfig{
			{Node: 0, MissRate: 0.05},
			{Node: 20, MissRate: rate1},
			{Node: 40, MissRate: 0.05},
		}
		n, _ := New(cfg)
		n.StartObservation(0)
		for i := 0; i < 300; i++ {
			n.Broadcast(mkTx(uint64(i)), uint64(i), time.Unix(int64(i), 0))
		}
		out := make([][]ObservedTx, 3)
		for vi, v := range n.Vantages() {
			out[vi] = v.Records()
		}
		return out
	}
	a, b := record(0.0), record(0.5)
	for _, vi := range []int{0, 2} {
		if len(a[vi]) != len(b[vi]) {
			t.Fatalf("vantage %d records changed with vantage 1's miss rate: %d vs %d", vi, len(a[vi]), len(b[vi]))
		}
		for i := range a[vi] {
			if a[vi][i] != b[vi][i] {
				t.Fatalf("vantage %d record %d changed with vantage 1's miss rate", vi, i)
			}
		}
	}
	if len(b[1]) >= len(a[1]) {
		t.Errorf("vantage 1 at 50%% miss should record fewer than at 0%%: %d vs %d", len(b[1]), len(a[1]))
	}
}

// TestOutageWindowSemantics: an outage suppresses recording inside its
// block range only, and the records outside it are identical with and
// without the outage (the miss stream keeps its position through the
// gap).
func TestOutageWindowSemantics(t *testing.T) {
	record := func(outages []OutageWindow) []ObservedTx {
		cfg := Config{Nodes: 40, Degree: 4, Seed: 11}
		cfg.Vantages = []VantageConfig{{Node: 0, MissRate: 0.1, Outages: outages}}
		n, _ := New(cfg)
		n.StartObservation(0)
		for i := 0; i < 300; i++ {
			n.Broadcast(mkTx(uint64(i)), uint64(i), time.Unix(int64(i), 0))
		}
		return n.Observer().Records()
	}
	clean := record(nil)
	dark := record([]OutageWindow{{Start: 100, Stop: 149}})
	for _, r := range dark {
		if r.FirstSeenBlock >= 100 && r.FirstSeenBlock <= 149 {
			t.Fatalf("record %v falls inside the outage window", r)
		}
	}
	// Outside the outage the two runs agree record for record.
	i := 0
	for _, r := range clean {
		if r.FirstSeenBlock >= 100 && r.FirstSeenBlock <= 149 {
			continue
		}
		if i >= len(dark) || dark[i] != r {
			t.Fatalf("outage perturbed records outside its window at %d", i)
		}
		i++
	}
	if i != len(dark) {
		t.Fatalf("dark run has %d extra records", len(dark)-i)
	}
	if len(dark) >= len(clean) {
		t.Errorf("outage should lose records: %d vs %d", len(dark), len(clean))
	}
}

// TestLegacyOutageToggle: Stop/Start still works as a crude outage and
// the §6.1 consequence holds — the gap is blind.
func TestLegacyOutageToggle(t *testing.T) {
	n, _ := New(Config{Nodes: 30, Degree: 4, Seed: 5, ObserverMissRate: 0})
	n.StartObservation(100)
	during := mkTx(1)
	n.Broadcast(during, 110, time.Unix(0, 0))

	n.StopObservation(150) // outage begins
	gap := mkTx(2)
	n.Broadcast(gap, 160, time.Unix(1, 0))

	n.StartObservation(200) // node recovers
	after := mkTx(3)
	n.Broadcast(after, 210, time.Unix(2, 0))

	obs := n.Observer()
	if !obs.Seen(during.Hash()) || obs.Seen(gap.Hash()) || !obs.Seen(after.Hash()) {
		t.Error("outage gap should be blind, bracketing windows visible")
	}
	if obs.Count() != 2 {
		t.Errorf("count = %d", obs.Count())
	}
}

// mkObserver builds a restored vantage over the given hashes for view
// algebra tests.
func mkObserver(node int, start, stop uint64, hashes ...types.Hash) *Observer {
	recs := make([]ObservedTx, len(hashes))
	for i, h := range hashes {
		recs[i] = ObservedTx{Hash: h, FirstSeenBlock: start + uint64(i)}
	}
	return RestoreVantage(node, recs, start, stop)
}

func TestUnionQuorumAlgebra(t *testing.T) {
	h := func(i byte) types.Hash { return types.Hash{i} }
	a := mkObserver(0, 100, 200, h(1), h(2))
	b := mkObserver(10, 120, 220, h(2), h(3))
	c := mkObserver(20, 90, 0, h(2), h(4)) // still recording

	union := Union(a, b, c)
	for _, want := range []types.Hash{h(1), h(2), h(3), h(4)} {
		if !union.Seen(want) {
			t.Errorf("union should see %v", want)
		}
	}
	if union.Seen(h(9)) {
		t.Error("union sees a hash nobody recorded")
	}
	if union.Count() != 4 {
		t.Errorf("union count = %d, want 4", union.Count())
	}
	if start, stop := union.Window(); start != 90 || stop != 0 {
		t.Errorf("union window = %d..%d, want 90..0 (still open)", start, stop)
	}

	q2 := Quorum(2, a, b, c)
	if !q2.Seen(h(2)) || q2.Seen(h(1)) || q2.Seen(h(3)) {
		t.Error("quorum-2 should see exactly the hash two vantages share")
	}
	if q2.Count() != 1 {
		t.Errorf("quorum-2 count = %d, want 1", q2.Count())
	}
	// Quorum-1 is the union; an unreachable quorum sees nothing.
	if Quorum(1, a, b, c).Count() != union.Count() {
		t.Error("quorum-1 != union")
	}
	if q4 := Quorum(4, a, b, c); q4.Count() != 0 || q4.Seen(h(2)) {
		t.Error("quorum above the vantage count should see nothing")
	}

	// Materialize preserves quorum membership and picks the earliest
	// observation of each hash.
	m := union.Materialize()
	if m.Count() != 4 {
		t.Errorf("materialized count = %d", m.Count())
	}
	rec, ok := m.Record(h(2))
	if !ok || rec.FirstSeenBlock != 90 {
		t.Errorf("materialized h2 = %+v, want earliest first-seen 90", rec)
	}
	recs := m.Records()
	for i := 1; i < len(recs); i++ {
		if recs[i-1].FirstSeenBlock > recs[i].FirstSeenBlock {
			t.Error("materialized records not in first-seen order")
		}
	}

	// Window of fully-closed views takes the latest stop.
	if _, stop := Union(a, b).Window(); stop != 220 {
		t.Errorf("closed union stop = %d, want 220", stop)
	}
}
