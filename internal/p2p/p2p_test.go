package p2p

import (
	"testing"
	"time"

	"mevscope/internal/types"
)

func mkTx(i uint64) *types.Transaction {
	return &types.Transaction{Nonce: i, From: types.DeriveAddress("p2p", 1), GasPrice: types.Gwei}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 1, Degree: 2}); err == nil {
		t.Error("1 node should be rejected")
	}
	if _, err := New(Config{Nodes: 10, Degree: 0}); err == nil {
		t.Error("degree 0 should be rejected")
	}
	if _, err := New(DefaultConfig(1)); err != nil {
		t.Errorf("default config: %v", err)
	}
}

func TestGraphConnectivity(t *testing.T) {
	n, err := New(Config{Nodes: 100, Degree: 6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// BFS distances must all be reachable and the ring bound the diameter.
	for i := 0; i < n.Nodes(); i++ {
		if n.distObs[i] < 0 {
			t.Fatalf("node %d unreachable", i)
		}
	}
	if n.Diameter() <= 0 || n.Diameter() > 50 {
		t.Errorf("diameter = %d", n.Diameter())
	}
	for i := 0; i < n.Nodes(); i++ {
		if n.PeerCount(i) < 6 {
			t.Errorf("node %d degree %d < 6", i, n.PeerCount(i))
		}
	}
	if n.PeerCount(-1) != 0 || n.PeerCount(10_000) != 0 {
		t.Error("out-of-range PeerCount should be 0")
	}
}

func TestBroadcastFeedsPool(t *testing.T) {
	n, _ := New(Config{Nodes: 20, Degree: 4, Seed: 1})
	tx := mkTx(1)
	n.Broadcast(tx, 100, time.Unix(0, 0))
	if !n.Pool().Contains(tx.Hash()) {
		t.Error("broadcast should admit to mempool")
	}
	// Duplicate broadcast is a no-op.
	if n.Broadcast(tx, 101, time.Unix(1, 0)) {
		t.Error("duplicate broadcast should return false")
	}
	if n.Pool().Len() != 1 {
		t.Error("pool should hold one tx")
	}
}

func TestObserverWindow(t *testing.T) {
	n, _ := New(Config{Nodes: 20, Degree: 4, Seed: 1, ObserverMissRate: 0})
	obs := n.Observer()
	if obs.Active() {
		t.Error("observer should start inactive")
	}

	before := mkTx(1)
	n.Broadcast(before, 50, time.Unix(0, 0))
	if obs.Seen(before.Hash()) {
		t.Error("tx before window should be unseen")
	}

	n.StartObservation(100)
	during := mkTx(2)
	if !n.Broadcast(during, 120, time.Unix(10, 0)) {
		t.Error("tx during window should be captured")
	}
	if !obs.Seen(during.Hash()) {
		t.Error("Seen during window")
	}
	rec, ok := obs.Record(during.Hash())
	if !ok || rec.FirstSeenBlock != 120 {
		t.Errorf("record = %+v", rec)
	}
	if rec.FirstSeen.Before(time.Unix(10, 0)) {
		t.Error("first seen should include hop latency")
	}

	n.StopObservation(200)
	after := mkTx(3)
	n.Broadcast(after, 220, time.Unix(20, 0))
	if obs.Seen(after.Hash()) {
		t.Error("tx after window should be unseen")
	}

	start, stop := obs.Window()
	if start != 100 || stop != 200 {
		t.Errorf("window = %d..%d", start, stop)
	}
	if obs.Count() != 1 {
		t.Errorf("count = %d", obs.Count())
	}
	if len(obs.Records()) != 1 {
		t.Error("records len")
	}
}

func TestObserverMissRate(t *testing.T) {
	n, _ := New(Config{Nodes: 50, Degree: 4, Seed: 7, ObserverMissRate: 0.2})
	n.StartObservation(0)
	const total = 2000
	for i := 0; i < total; i++ {
		n.Broadcast(mkTx(uint64(i)), uint64(i), time.Unix(int64(i), 0))
	}
	missed := total - n.Observer().Count()
	// Expect ~20% misses; allow generous slack.
	if missed < total*10/100 || missed > total*30/100 {
		t.Errorf("missed %d of %d, want ≈ 20%%", missed, total)
	}
	// Everything still reached the mempool.
	if n.Pool().Len() != total {
		t.Error("all txs should be pending regardless of observer")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		n, _ := New(Config{Nodes: 60, Degree: 5, Seed: 99, ObserverMissRate: 0.1})
		n.StartObservation(0)
		var hops []int
		for i := 0; i < 100; i++ {
			tx := mkTx(uint64(i))
			n.Broadcast(tx, uint64(i), time.Unix(int64(i), 0))
			if r, ok := n.Observer().Record(tx.Hash()); ok {
				hops = append(hops, r.Hops)
			} else {
				hops = append(hops, -1)
			}
		}
		return hops
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestObserverOutageWindow(t *testing.T) {
	// Failure injection: the observer goes dark mid-study (node outage);
	// transactions broadcast during the gap must be classified private by
	// the §6.1 inference — a known limitation the paper's window bounds
	// protect against.
	n, _ := New(Config{Nodes: 30, Degree: 4, Seed: 5, ObserverMissRate: 0})
	n.StartObservation(100)
	during := mkTx(1)
	n.Broadcast(during, 110, time.Unix(0, 0))

	n.StopObservation(150) // outage begins
	gap := mkTx(2)
	n.Broadcast(gap, 160, time.Unix(1, 0))

	n.StartObservation(200) // node recovers
	after := mkTx(3)
	n.Broadcast(after, 210, time.Unix(2, 0))

	obs := n.Observer()
	if !obs.Seen(during.Hash()) || obs.Seen(gap.Hash()) || !obs.Seen(after.Hash()) {
		t.Error("outage gap should be blind, bracketing windows visible")
	}
	if obs.Count() != 2 {
		t.Errorf("count = %d", obs.Count())
	}
}
