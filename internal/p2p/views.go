package p2p

// Views combine the per-vantage record logs of an observation network
// into composite observers. The §6 private-transaction inference runs
// against any RecordView, so the same world can be classified from one
// vantage, from the union of all of them, or from a quorum — the
// sensitivity axis the vantage_sensitivity artifact measures.

import (
	"bytes"
	"sort"

	"mevscope/internal/types"
)

// RecordView is the read contract every observation view satisfies: a
// single vantage (*Observer) or a composite (*View). It is a superset of
// the privinfer.Observer interface, so any view can drive the §6
// inference.
type RecordView interface {
	// Seen reports whether the view observed the transaction pending.
	Seen(h types.Hash) bool
	// Window returns the observation start and stop heights.
	Window() (start, stop uint64)
	// Count is the number of distinct transactions the view observed.
	Count() int
}

// View is a composite over vantage record logs: a transaction is seen
// when at least k vantages recorded it. k = 1 is the union view; k =
// len(vantages) is full agreement.
type View struct {
	k  int
	vs []*Observer
}

// Union builds the k=1 composite: seen by any vantage.
func Union(vs ...*Observer) *View { return Quorum(1, vs...) }

// Quorum builds the quorum-k composite: seen by at least k vantages.
// k is clamped to at least 1; a k above len(vs) is legal and sees
// nothing.
func Quorum(k int, vs ...*Observer) *View {
	if k < 1 {
		k = 1
	}
	return &View{k: k, vs: vs}
}

// K returns the quorum threshold.
func (v *View) K() int { return v.k }

// Vantages returns the underlying vantage list.
func (v *View) Vantages() []*Observer { return v.vs }

// Seen reports whether at least k vantages recorded the transaction.
func (v *View) Seen(h types.Hash) bool {
	seen := 0
	for _, o := range v.vs {
		if o.Seen(h) {
			seen++
			if seen >= v.k {
				return true
			}
		}
	}
	return false
}

// Window returns the composite observation window: the earliest start
// among started vantages and the latest stop — zero while any started
// vantage is still recording, mirroring the single-observer contract.
func (v *View) Window() (start, stop uint64) {
	open := false
	for _, o := range v.vs {
		s, e := o.Window()
		if s == 0 && o.Count() == 0 {
			continue // never started
		}
		if start == 0 || s < start {
			start = s
		}
		if e == 0 {
			open = true
		} else if e > stop {
			stop = e
		}
	}
	if open {
		return start, 0
	}
	return start, stop
}

// Count is the number of distinct transactions meeting the quorum.
func (v *View) Count() int {
	counts := map[types.Hash]int{}
	n := 0
	for _, o := range v.vs {
		for _, h := range o.order {
			counts[h]++
			if counts[h] == v.k {
				n++
			}
		}
	}
	return n
}

// Materialize flattens the composite into a standalone Observer holding
// one merged record log: every transaction meeting the quorum, carrying
// its earliest observation across vantages, ordered by first-seen block
// (ties broken by hash bytes) so the result is deterministic regardless
// of vantage count or order.
func (v *View) Materialize() *Observer {
	counts := map[types.Hash]int{}
	best := map[types.Hash]ObservedTx{}
	for _, o := range v.vs {
		for _, h := range o.order {
			r := o.records[h]
			counts[h]++
			cur, ok := best[h]
			if !ok || r.FirstSeenBlock < cur.FirstSeenBlock ||
				(r.FirstSeenBlock == cur.FirstSeenBlock && r.FirstSeen.Before(cur.FirstSeen)) {
				best[h] = r
			}
		}
	}
	records := make([]ObservedTx, 0, len(best))
	for h, c := range counts {
		if c >= v.k {
			records = append(records, best[h])
		}
	}
	sort.Slice(records, func(i, j int) bool {
		if records[i].FirstSeenBlock != records[j].FirstSeenBlock {
			return records[i].FirstSeenBlock < records[j].FirstSeenBlock
		}
		return bytes.Compare(records[i].Hash[:], records[j].Hash[:]) < 0
	})
	start, stop := v.Window()
	return RestoreVantage(0, records, start, stop)
}
