package sim

import (
	"testing"

	"mevscope/internal/agents"
	"mevscope/internal/types"
)

func TestTruthKindString(t *testing.T) {
	kinds := map[TruthKind]string{
		TruthSandwich: "sandwich", TruthArbitrage: "arbitrage",
		TruthLiquidation: "liquidation", TruthProtected: "protected",
		TruthPayout: "payout", TruthKind(99): "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d = %q want %q", k, k.String(), want)
		}
	}
}

func TestTruthLogResolve(t *testing.T) {
	var l TruthLog
	h1, h2, h3 := types.Hash{1}, types.Hash{2}, types.Hash{3}
	l.Add(TruthRecord{Kind: TruthSandwich, Channel: agents.ChannelPublic, Hashes: []types.Hash{h1, h2}})
	l.Add(TruthRecord{Kind: TruthArbitrage, Channel: agents.ChannelFlashbots, Hashes: []types.Hash{h3}})
	l.Add(TruthRecord{Kind: TruthArbitrage}) // no hashes: never lands

	onChain := map[types.Hash]bool{h1: true, h2: true} // h3 missing
	l.Resolve(func(h types.Hash) bool { return onChain[h] })

	landed := l.Landed()
	if len(landed) != 1 || landed[0].Kind != TruthSandwich {
		t.Fatalf("landed = %+v", landed)
	}
	counts := l.CountBy()
	if counts[TruthSandwich] != 1 || counts[TruthArbitrage] != 0 {
		t.Errorf("counts = %v", counts)
	}
	// Resolve clears pending: later Resolve with h3 present does not
	// retroactively flip already-resolved records.
	onChain[h3] = true
	l.Resolve(func(h types.Hash) bool { return onChain[h] })
	if len(l.Landed()) != 1 {
		t.Error("resolution should be one-shot per record")
	}
	if len(l.Records()) != 3 {
		t.Error("records retained")
	}
}
