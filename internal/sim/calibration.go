package sim

import "mevscope/internal/types"

// MonthCal is the per-calendar-month calibration row driving agent
// behaviour. The values are chosen so the *measured* outputs of the
// pipeline land near the shapes the paper reports (adoption and hashrate
// curves, the April-2021 gas dip, the profit-distribution shift, the
// private/public split); EXPERIMENTS.md records measured-vs-paper.
type MonthCal struct {
	// Trader behaviour.
	TraderTxPerBlock float64 // mean public swaps per block
	TradeSizeETH     float64 // median swap size
	BigTradeProb     float64 // probability a swap is sandwich-sized
	GasBaseGwei      float64 // typical non-MEV gas price level

	// MEV searcher activity.
	SandwichTakeRate float64 // probability a sandwichable victim is attacked
	ArbAttempts      float64 // mean arbitrage executions per block
	LiqScan          bool    // liquidators active at all
	// RogueMiscProb emits a non-MEV rogue bundle (miner-internal
	// transactions never broadcast) per Flashbots block.
	RogueMiscProb float64

	// Channel mix per MEV type: probability of Flashbots and of another
	// private pool; the remainder goes public. Forced public before the
	// Flashbots launch and when no private pool is live.
	SandwichFB, SandwichPriv float64
	ArbFB, ArbPriv           float64
	LiqFB, LiqPriv           float64

	// Flash-loan usage probabilities (Table 1: 0.29 % of arbitrages,
	// 5.09 % of liquidations).
	ArbFlashLoanProb float64
	LiqFlashLoanProb float64

	// Flashbots-specific behaviour. Protected (non-MEV) bundle traffic is
	// bursty: with probability ProtectedBurstProb a block carries
	// 1+Poisson(ProtectedBurstSize) protection bundles — this burstiness
	// is what keeps the Flashbots block ratio near the paper's ~50-60 %
	// even at ~100 % miner adoption.
	ProtectedBurstProb float64
	ProtectedBurstSize float64
	TipFrac            float64 // sealed-bid tip as fraction of gross
	FaultyProb         float64 // probability a bundle's tip exceeds gross (§5.2)
	RogueProb          float64 // miner self-MEV as a rogue bundle, per own block

	// Pre/non-Flashbots behaviour.
	MinerSelfProb  float64 // miner inserts its own sandwich, per own block
	PGACompetition float64 // probability a public sandwich triggers a bidding war
	PGARounds      int     // escalation rounds in the bidding war

	// Credit-market activity.
	NewLoanProb     float64 // new risky loan per block
	OracleShockProb float64 // debt-token price jump creating liquidations

	// Population sizes (distinct active identities, for Figure 7a).
	ActiveSandwichers int
	ActiveArbers      int
	ActiveLiquidators int
	ActiveProtected   int
}

// ramp eases a value across months [a,b].
func ramp(m, a, b types.Month, from, to float64) float64 {
	if m <= a {
		return from
	}
	if m >= b {
		return to
	}
	f := float64(m-a) / float64(b-a)
	return from + (to-from)*f
}

// DefaultCalibration builds the 23-month table. Month indexes: 0 = May
// 2020 … 9 = Feb 2021 (Flashbots launch) … 15 = Aug 2021 (London) … 22 =
// Mar 2022.
func DefaultCalibration() [types.StudyMonths]MonthCal {
	var cal [types.StudyMonths]MonthCal
	for i := range cal {
		m := types.Month(i)
		c := MonthCal{
			TraderTxPerBlock: 7 + ramp(m, 0, 12, 0, 2),
			TradeSizeETH:     3,
			BigTradeProb:     0.045,
			LiqScan:          true,
			NewLoanProb:      0.012,
			OracleShockProb:  0.006,
			ArbFlashLoanProb: 0.004,
			LiqFlashLoanProb: 0.06,
			TipFrac:          0.85,
			FaultyProb:       0.012,
		}

		// Gas base: modest organic growth through 2020-21, easing after
		// London, slight climb into 2022. The dramatic pre-April-2021 peak
		// comes endogenously from priority gas auctions, not this base.
		switch {
		case m < 6: // May-Oct 2020
			c.GasBaseGwei = ramp(m, 0, 6, 35, 60)
		case m < 11: // Nov 2020 - Mar 2021
			c.GasBaseGwei = ramp(m, 6, 11, 60, 75)
		case m < 16: // Apr - Aug 2021
			c.GasBaseGwei = ramp(m, 11, 16, 55, 45)
		default: // Sep 2021 - Mar 2022: the §4.5 uptick
			c.GasBaseGwei = ramp(m, 16, 22, 55, 95)
		}

		// MEV volume: arbitrage ≈ 3.4× sandwiches overall (Table 1),
		// liquidations rare; activity grows through 2021.
		c.SandwichTakeRate = 0.9 - ramp(m, 8, 14, 0, 0.15) - ramp(m, 17, 22, 0, 0.1)
		c.ArbAttempts = 0.75 + ramp(m, 0, 14, 0, 0.3) - ramp(m, 17, 22, 0, 0.15)

		// Channel mix. Everything is public before the launch month.
		if m >= types.FlashbotsLaunchMonth {
			// Flashbots share of sandwiches ramps steeply: 47.6 % of all
			// sandwiches across the whole window end up via Flashbots and
			// ≈81 % within Nov-21..Mar-22.
			c.SandwichFB = ramp(m, 9, 13, 0.30, 0.80)
			c.SandwichPriv = 0
			c.ArbFB = ramp(m, 9, 13, 0.20, 0.45)
			c.LiqFB = ramp(m, 9, 13, 0.20, 0.45)
			c.TipFrac = 0.80 + ramp(m, 9, 16, 0, 0.10) // sealed-bid overbidding grows
			c.RogueProb = 0.08
			c.RogueMiscProb = 0.11
			// Protected-bundle bursts follow the adoption curve, peak in
			// July 2021 (Fig. 3's 60.6 %), then decline below half.
			switch {
			case m <= 14:
				c.ProtectedBurstProb = ramp(m, 9, 14, 0.15, 0.45)
			default:
				c.ProtectedBurstProb = ramp(m, 14, 22, 0.45, 0.26)
			}
			c.ProtectedBurstSize = 2.1
		}
		// Other private pools rise from Sep 2021 (§6).
		if m >= 16 {
			c.SandwichPriv = ramp(m, 16, 19, 0.05, 0.135)
			c.ArbPriv = ramp(m, 16, 19, 0.03, 0.10)
			c.LiqPriv = ramp(m, 16, 19, 0.03, 0.08)
		}

		// Priority gas auctions dominate public MEV until Flashbots
		// absorbs it: intensity collapses over Feb-Apr 2021 — this is
		// what produces the Figure 6 gas-price dip.
		c.PGACompetition = ramp(m, 0, 8, 0.55, 0.8)
		if m >= 9 {
			c.PGACompetition = ramp(m, 9, 12, 0.6, 0.10)
		}
		c.PGARounds = 3
		if m >= 11 {
			c.PGARounds = 2
		}

		// Miner self-extraction exists throughout (pre-FB: direct
		// insertion; post-FB single-miner private channels keep going).
		c.MinerSelfProb = 0.05

		// Populations (Figure 7a): grow to an August-2021 peak, then
		// decline and level out.
		peak := types.Month(15)
		c.ActiveSandwichers = int(ramp(m, 9, peak, 4, 26) - ramp(m, peak, 22, 0, 10))
		c.ActiveArbers = int(ramp(m, 9, peak, 6, 34) - ramp(m, peak, 22, 0, 12))
		c.ActiveLiquidators = int(ramp(m, 9, peak, 2, 8) - ramp(m, peak, 22, 0, 3))
		c.ActiveProtected = int(ramp(m, 9, peak, 150, 1400) - ramp(m, peak, 22, 0, 500))
		if m < types.FlashbotsLaunchMonth {
			c.ActiveProtected = 0
		}
		if c.ActiveSandwichers < 1 {
			c.ActiveSandwichers = 1
		}
		if c.ActiveArbers < 1 {
			c.ActiveArbers = 1
		}
		if c.ActiveLiquidators < 1 {
			c.ActiveLiquidators = 1
		}

		cal[i] = c
	}
	return cal
}

// disableFlashbots rewrites a calibration table into the counterfactual
// where Flashbots never launches: all MEV stays in the public gas auction
// at pre-2021 intensity, no protected bundles, no miner bundles.
func disableFlashbots(cal *[types.StudyMonths]MonthCal) {
	for i := range cal {
		c := &cal[i]
		c.SandwichFB, c.SandwichPriv = 0, 0
		c.ArbFB, c.ArbPriv = 0, 0
		c.LiqFB, c.LiqPriv = 0, 0
		c.ProtectedBurstProb = 0
		c.RogueProb, c.RogueMiscProb = 0, 0
		c.PGACompetition = 0.8
		c.PGARounds = 3
	}
}

// scalePrivateAdoption multiplies the non-Flashbots private-pool channel
// probabilities by scale (0 and 1 keep the calibrated baseline). Scaled-up
// adoption starts at the Flashbots launch — in the high-adoption
// counterfactual private channels never wait for the §6 late-2021 rise —
// seeded from the month-16 calibration. Each probability caps at 0.45 so
// pickChannel's public remainder stays meaningful.
func scalePrivateAdoption(cal *[types.StudyMonths]MonthCal, scale float64) {
	if scale <= 0 || scale == 1 {
		return
	}
	const maxPriv = 0.45
	clamp := func(p float64) float64 {
		if p > maxPriv {
			return maxPriv
		}
		return p
	}
	// Baselines for months that have zero private adoption in the default
	// calibration (16 is the first month with nonzero Priv values).
	base := cal[16]
	for i := range cal {
		c := &cal[i]
		m := types.Month(i)
		if scale > 1 && m >= types.FlashbotsLaunchMonth && c.SandwichPriv == 0 && c.SandwichFB > 0 {
			c.SandwichPriv, c.ArbPriv, c.LiqPriv = base.SandwichPriv, base.ArbPriv, base.LiqPriv
		}
		c.SandwichPriv = clamp(c.SandwichPriv * scale)
		c.ArbPriv = clamp(c.ArbPriv * scale)
		c.LiqPriv = clamp(c.LiqPriv * scale)
	}
}

// AdoptionTargets is the cumulative Flashbots hashpower share the miner
// set should reach by each month (§4.3: 61.7 % by March 2021, 97.6 % by
// May, ~99.9 % from autumn on).
func AdoptionTargets() map[types.Month]float64 {
	return map[types.Month]float64{
		9:  0.32, // Feb 2021 (launch)
		10: 0.62, // Mar
		11: 0.80, // Apr
		12: 0.976,
		13: 0.985,
		14: 0.992,
		15: 0.995,
		16: 0.997,
		17: 0.999,
	}
}
