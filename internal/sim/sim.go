// Package sim is the simulation driver: it assembles the world (chain,
// gossip network with its observation vantages, Flashbots relay, private
// pools, miners, agents), runs the 23-month study window block by block
// following the per-month calibration table, and retains ground truth
// for validation.
//
// Everything downstream — detection, private-transaction inference, the
// tables and figures — consumes only the artifacts a real measurement
// would have: the chain, the observation network's per-vantage
// pending-transaction records and the Flashbots public API. The
// observation network is configured through Config.Net (p2p.Config):
// vantage placement, gossip topology, per-vantage miss rates and outage
// windows all ride that one knob, so scenarios reshape how the world is
// measured without touching how it behaves.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"mevscope/internal/agents"
	"mevscope/internal/chain"
	"mevscope/internal/evmlite"
	"mevscope/internal/flashbots"
	"mevscope/internal/genesis"
	"mevscope/internal/miner"
	"mevscope/internal/obs"
	"mevscope/internal/p2p"
	"mevscope/internal/prices"
	"mevscope/internal/privpool"
	"mevscope/internal/types"
)

// Config controls a simulation run.
type Config struct {
	Seed           int64
	BlocksPerMonth uint64
	// Months limits the run (≤ the months remaining after StartMonth);
	// zero runs the full window.
	Months    int
	NumMiners int
	// NumTraders is the ordinary-user population.
	NumTraders int
	// DisableFlashbots runs the counterfactual world where Flashbots never
	// launches: no relay, no bundles, priority gas auctions persist at
	// pre-2021 intensity. Used by the §8.2 gas-price ablation.
	DisableFlashbots bool
	// StartMonth truncates the front of the study window: the chain's
	// first block falls in this calendar month (e.g. LondonForkMonth for a
	// post-London-only run). Zero starts at May 2020 like the paper.
	StartMonth types.Month
	// HashpowerSkew scales mining concentration: 0 or 1 is the
	// mainnet-like baseline, >1 concentrates hashpower into the top pools,
	// (0,1) flattens the distribution (see miner.NewSkewedSet).
	HashpowerSkew float64
	// PrivatePoolScale multiplies the calibrated non-Flashbots private-
	// pool adoption (the §6 channel probabilities). 0 or 1 keeps the
	// baseline; >1 models a world where private pools capture more MEV.
	PrivatePoolScale float64
	Genesis          genesis.Config
	Net              p2p.Config
}

// DefaultConfig is a full-window run at a laptop-friendly scale.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:           seed,
		BlocksPerMonth: 600,
		NumMiners:      55,
		NumTraders:     400,
		Genesis:        genesis.DefaultConfig(seed + 1),
		Net:            p2p.DefaultConfig(seed + 2),
	}
}

// Sim is a running simulation.
type Sim struct {
	Cfg   Config
	Cal   [types.StudyMonths]MonthCal
	World *genesis.World
	Chain *chain.Chain
	Net   *p2p.Network
	Relay *flashbots.Relay
	Priv  *privpool.Registry
	Mset  *miner.Set
	Truth *TruthLog
	// Prices is the CoinGecko-substitute series recorded during the run.
	Prices *prices.Series

	rng  *rand.Rand
	span *obs.Span

	traders     []*agents.Trader
	protected   []*agents.Trader
	sandwichers []*agents.Searcher
	arbers      []*agents.Searcher
	liquidators []*agents.Searcher
	minerBots   map[types.Address]*agents.Searcher
	rogueBots   map[types.Address]*agents.Searcher

	// §6.3 dedicated accounts: each submits private MEV exclusively
	// through one single-miner pool.
	DedicatedF2   *agents.Searcher
	DedicatedFlex *agents.Searcher
	Eden          *privpool.Pool
	F2Priv        *privpool.Pool
	FlexPriv      *privpool.Pool

	oracleAdmin *agents.Account
	borrowerSeq uint64
	borrowers   []*agents.Borrower

	authorizedThrough types.Month
	emitted700        bool
	obsStarted        bool
	obsStopped        bool

	// liqAttempted throttles repeat liquidation submissions per loan.
	liqAttempted map[liqKey]uint64
	// botAddrs marks searcher/miner-bot accounts: their pending
	// transactions are never treated as sandwich victims (real PGA
	// competitors bid on the same victim, not on each other's frontruns).
	botAddrs map[types.Address]bool
}

type liqKey struct {
	protocol types.Address
	loanID   uint64
}

// New assembles a simulation.
func New(cfg Config) (*Sim, error) {
	if cfg.BlocksPerMonth == 0 {
		return nil, fmt.Errorf("sim: BlocksPerMonth must be positive")
	}
	if cfg.StartMonth < 0 || cfg.StartMonth >= types.StudyMonths {
		return nil, fmt.Errorf("sim: StartMonth %d outside the study window", cfg.StartMonth)
	}
	maxMonths := int(types.StudyMonths - cfg.StartMonth)
	if cfg.Months <= 0 || cfg.Months > maxMonths {
		cfg.Months = maxMonths
	}
	if cfg.NumMiners < 10 {
		cfg.NumMiners = 10
	}
	if cfg.NumTraders < 20 {
		cfg.NumTraders = 20
	}
	w, err := genesis.Build(cfg.Genesis)
	if err != nil {
		return nil, err
	}
	net, err := p2p.New(cfg.Net)
	if err != nil {
		return nil, err
	}
	s := &Sim{
		Cfg:               cfg,
		Cal:               DefaultCalibration(),
		World:             w,
		Chain:             chain.New(types.TimelineFrom(cfg.BlocksPerMonth, cfg.StartMonth)),
		Net:               net,
		Relay:             flashbots.NewRelay(),
		Priv:              privpool.NewRegistry(),
		Mset:              miner.NewSkewedSet(cfg.NumMiners, cfg.Seed+3, cfg.HashpowerSkew),
		Truth:             &TruthLog{},
		Prices:            prices.NewSeries(),
		rng:               rand.New(rand.NewSource(cfg.Seed)),
		minerBots:         make(map[types.Address]*agents.Searcher),
		rogueBots:         make(map[types.Address]*agents.Searcher),
		oracleAdmin:       agents.NewAccount("oracle-admin", 0),
		authorizedThrough: -1,
		liqAttempted:      make(map[liqKey]uint64),
		botAddrs:          make(map[types.Address]bool),
	}
	if cfg.DisableFlashbots {
		disableFlashbots(&s.Cal)
	} else {
		s.assignAdoption()
	}
	scalePrivateAdoption(&s.Cal, cfg.PrivatePoolScale)
	s.setupAgents()
	s.setupPrivatePools()
	s.World.St.Mint(s.oracleAdmin.Addr, 10_000*types.Ether)
	s.recordPrices(s.Chain.Timeline.StartBlock)
	return s, nil
}

// assignAdoption gives each miner a Flashbots adoption month so cumulative
// hashpower tracks the paper's §4.3 curve: biggest miners first.
func (s *Sim) assignAdoption() {
	targets := AdoptionTargets()
	miners := append([]*miner.Miner(nil), s.Mset.Miners()...)
	// Sort by hashpower descending (stable insertion; the set is small).
	for i := 1; i < len(miners); i++ {
		for j := i; j > 0 && miners[j].Hashpower > miners[j-1].Hashpower; j-- {
			miners[j], miners[j-1] = miners[j-1], miners[j]
		}
	}
	var total float64
	for _, m := range miners {
		total += m.Hashpower
	}
	cum := 0.0
	idx := 0
	for m := types.FlashbotsLaunchMonth; m <= 17; m++ {
		target := targets[m]
		for idx < len(miners) && cum/total < target {
			miners[idx].AdoptsFlashbots = m
			cum += miners[idx].Hashpower
			idx++
		}
	}
	// The remaining tail (≈0.1 % of hashpower) never adopts.
}

func (s *Sim) setupAgents() {
	for i := 0; i < s.Cfg.NumTraders; i++ {
		s.traders = append(s.traders, agents.NewTrader(uint64(i)))
	}
	for i := 0; i < 2000; i++ {
		s.protected = append(s.protected, agents.NewTrader(uint64(100_000+i)))
	}
	for i := 0; i < 60; i++ {
		sw := agents.NewSearcher(uint64(1000+i), 0.85+0.15*s.rng.Float64())
		sw.Fund(&s.World.World, 200*types.Ether, 3_000*types.Ether)
		s.sandwichers = append(s.sandwichers, sw)
		s.botAddrs[sw.Addr] = true
	}
	for i := 0; i < 80; i++ {
		ar := agents.NewSearcher(uint64(2000+i), 0.8+0.2*s.rng.Float64())
		ar.Fund(&s.World.World, 200*types.Ether, 2_000*types.Ether)
		s.arbers = append(s.arbers, ar)
		s.botAddrs[ar.Addr] = true
	}
	for i := 0; i < 20; i++ {
		lq := agents.NewSearcher(uint64(3000+i), 1.0)
		lq.Fund(&s.World.World, 200*types.Ether, 1_000*types.Ether)
		s.liquidators = append(s.liquidators, lq)
		s.botAddrs[lq.Addr] = true
	}
	// Miner self-extraction bots trade from the coinbase account. Before
	// MEV-geth, miners size attacks naively (lower skill); rogue bundles
	// post-adoption are planned with full tooling.
	for _, m := range s.Mset.Miners() {
		bot := agents.NewSearcherAt(m.Addr, 0.4)
		bot.Fund(&s.World.World, 500*types.Ether, 3_000*types.Ether)
		s.minerBots[m.Addr] = bot
		s.botAddrs[m.Addr] = true
		rogue := agents.NewSearcherAt(m.Addr, 1.0)
		// Disjoint nonce space from the payout/self bot so the two
		// planners never produce colliding transactions.
		rogue.SkipNonces(1 << 40)
		s.rogueBots[m.Addr] = rogue
	}
}

func (s *Sim) setupPrivatePools() {
	miners := s.Mset.Miners()
	// Eden-like pool: a handful of mid-size miners (plus the two big pools,
	// which the paper found participate in broader private pools too).
	members := []types.Address{}
	for _, i := range []int{0, 1, 3, 5, 6, 8, 11, 14} {
		if i < len(miners) {
			members = append(members, miners[i].Addr)
		}
	}
	s.Eden = privpool.New("eden-like", members...)
	s.Priv.Add(s.Eden)

	// §6.3 single-miner channels with dedicated extractor accounts.
	if len(miners) > 1 {
		s.F2Priv = privpool.NewSingleMiner("f2pool-private", miners[1].Addr)
		s.Priv.Add(s.F2Priv)
		s.DedicatedF2 = agents.NewSearcherAt(types.HexToAddress("0xDD28D64E40e00aF54a0B5147539A515C4A0bC1c5"), 1.0)
		s.DedicatedF2.Fund(&s.World.World, 200*types.Ether, 2_000*types.Ether)
	}
	if len(miners) > 4 {
		s.FlexPriv = privpool.NewSingleMiner("flexpool-private", miners[4].Addr)
		s.Priv.Add(s.FlexPriv)
		s.DedicatedFlex = agents.NewSearcherAt(types.HexToAddress("0x42B2C65dB7F9e3b6c26Bc6151CCf30CcE0fb99EA"), 1.0)
		s.DedicatedFlex.Fund(&s.World.World, 200*types.Ether, 2_000*types.Ether)
	}
}

// EndBlock returns the last block of the configured run.
func (s *Sim) EndBlock() uint64 {
	return s.Chain.Timeline.StartBlock + uint64(s.Cfg.Months)*s.Cfg.BlocksPerMonth - 1
}

// SetSpan attaches a tracing parent: Run records each study month of
// sealing as a "sim:month" span under it (internal/obs). A nil span —
// the default — disables recording at zero cost.
func (s *Sim) SetSpan(sp *obs.Span) { s.span = sp }

// Run simulates the configured window to completion.
func (s *Sim) Run() error {
	end := s.EndBlock()
	var (
		msp    *obs.Span
		cur    types.Month
		sealed int
	)
	for s.Chain.NextNumber() <= end {
		if s.span != nil {
			if m := s.Chain.Timeline.MonthOfBlock(s.Chain.NextNumber()); msp == nil || m != cur {
				msp.SetBlocks(sealed)
				msp.End()
				msp = s.span.Child(obs.StageSimMonth)
				msp.SetLabel(m.Label())
				cur, sealed = m, 0
			}
		}
		if err := s.Step(); err != nil {
			msp.End()
			return err
		}
		sealed++
	}
	msp.SetBlocks(sealed)
	msp.End()
	return nil
}

// Step simulates one block.
func (s *Sim) Step() error {
	n := s.Chain.NextNumber()
	month := s.Chain.Timeline.MonthOfBlock(n)
	cal := &s.Cal[month]
	baseFee := s.Chain.NextBaseFee()
	now := s.Chain.Timeline.TimeOfBlock(n)
	london := baseFee > 0
	fbLive := month >= types.FlashbotsLaunchMonth && !s.Cfg.DisableFlashbots

	s.toggleObservation(n, month)
	s.authorizeMiners(month)

	// The proposer for this height is drawn up front: private-pool
	// searchers act on slot knowledge (Eden-style slot tenancy).
	proposer := s.Mset.Pick(s.rng)
	proposerFB := fbLive && proposer.UsesFlashbots(month)

	// 1. Credit market: drift, new risky loans, oracle shocks.
	s.driftOracle()
	if s.rng.Float64() < cal.NewLoanProb {
		s.openLoan()
	}
	var shockTx *types.Transaction
	if s.rng.Float64() < cal.OracleShockProb {
		shockTx = s.broadcastOracleShock(n, now, cal, london, baseFee)
	}

	// 2. Ordinary traders. Post-London, demand is price-elastic: traffic
	// grows while the base fee sits below the organic gas level and backs
	// off above it, so the EIP-1559 base fee equilibrates near the
	// calibrated level.
	rate := cal.TraderTxPerBlock
	if london {
		mult := cal.GasBaseGwei / (float64(baseFee) / float64(types.Gwei))
		if mult > 6.0 {
			mult = 6.0
		}
		if mult < 0.35 {
			mult = 0.35
		}
		rate *= mult
	}
	bigScale := cal.TraderTxPerBlock / rate
	nTrades := s.poisson(rate)
	for i := 0; i < nTrades; i++ {
		s.broadcastTraderSwap(n, now, cal, london, baseFee, bigScale)
	}

	// 3. MEV-protected users: bursty bundle traffic (order-dependent
	// trades and MEV-protected swaps).
	if fbLive && s.rng.Float64() < cal.ProtectedBurstProb {
		k := 1 + s.poisson(cal.ProtectedBurstSize)
		if s.rng.Float64() < 0.012 {
			k += 10 + s.rng.Intn(33) // occasional very busy block (max 42 in the paper)
		}
		for i := 0; i < k; i++ {
			s.submitProtectedTrade(n, month, cal, london, baseFee)
		}
	}

	// 4. Proposer-side MEV and payouts. The proposer picks victims before
	// outside searchers: it controls the block.
	targeted := make(map[types.Hash]bool)
	poolsUsed := make(map[types.Address]bool)
	var ownBundles []*flashbots.Bundle
	var ownEntries []privpool.Entry
	if proposerFB {
		if b := s.maybePayoutBundle(proposer, n); b != nil {
			ownBundles = append(ownBundles, b)
		}
		if s.rng.Float64() < cal.RogueProb {
			if b := s.rogueSandwich(n, month, proposer, targeted, poolsUsed); b != nil {
				ownBundles = append(ownBundles, b)
			}
		}
		if s.rng.Float64() < cal.RogueMiscProb {
			if b := s.rogueMiscBundle(proposer, n, baseFee); b != nil {
				ownBundles = append(ownBundles, b)
			}
		}
	} else if s.rng.Float64() < cal.MinerSelfProb {
		if e, ok := s.minerSelfSandwich(n, month, proposer, targeted, poolsUsed); ok {
			ownEntries = append(ownEntries, e)
		}
	}

	// 5. Searchers. Every sandwichable victim pending this block is
	// attacked with probability SandwichTakeRate.
	for s.rng.Float64() < cal.SandwichTakeRate {
		if !s.attemptSandwich(n, month, cal, london, baseFee, fbLive, proposer, targeted, poolsUsed) {
			break
		}
	}
	s.attemptArbs(n, month, cal, london, baseFee, fbLive, proposer, poolsUsed)
	if cal.LiqScan {
		s.attemptLiquidations(n, month, cal, london, baseFee, fbLive, proposer, shockTx)
	}

	// 6. Build the block.
	var relayBundles []*flashbots.Bundle
	if proposerFB {
		relayBundles, _ = s.Relay.PendingFor(proposer.Addr, n, baseFee)
	}
	bundles := append(ownBundles, relayBundles...)
	private := append(ownEntries, s.Priv.PendingFor(proposer.Addr, n, baseFee)...)
	res := miner.Build(s.World.Ex, miner.BuildInput{
		Number:     n,
		Time:       now,
		BaseFee:    baseFee,
		GasLimit:   s.Chain.GasLimit,
		Coinbase:   proposer.Addr,
		Bundles:    bundles,
		MaxBundles: len(ownBundles) + proposer.MaxBundles,
		Private:    private,
		Public:     s.Net.Pool(),
		Seen:       s.Chain.HasTx,
	})
	s.Relay.RecordBlock(res.Block, res.Included)
	if len(res.Block.Txs) > 0 {
		hashes := make([]types.Hash, len(res.Block.Txs))
		for i, tx := range res.Block.Txs {
			hashes[i] = tx.Hash()
		}
		s.Priv.MarkIncluded(hashes...)
	}
	s.Priv.Prune(n)
	if err := s.Chain.Append(res.Block); err != nil {
		return err
	}
	proposer.Produced++

	s.Truth.Resolve(s.landedOK)
	if n%25 == 0 {
		s.recordPrices(n)
	}
	return nil
}

// victimPriceOf is the victim's effective gas price at the given base fee.
func victimPriceOf(v *types.Transaction, baseFee types.Amount) types.Amount {
	return v.EffectiveGasPrice(baseFee)
}

// landedOK reports whether a transaction is on chain and succeeded.
func (s *Sim) landedOK(h types.Hash) bool {
	rcpt, err := s.Chain.Receipt(h)
	return err == nil && rcpt.Status == types.StatusSuccess
}

func (s *Sim) toggleObservation(n uint64, month types.Month) {
	if !s.obsStarted && month >= types.ObservationStartMonth {
		s.Net.StartObservation(n)
		s.obsStarted = true
	}
}

func (s *Sim) authorizeMiners(month types.Month) {
	if month <= s.authorizedThrough {
		return
	}
	for _, m := range s.Mset.Miners() {
		if m.UsesFlashbots(month) {
			_ = s.Relay.AuthorizeMiner(m.Addr)
		}
	}
	s.authorizedThrough = month
}

func (s *Sim) gasPricing(cal *MonthCal, london bool, baseFee types.Amount) agents.GasPricing {
	price := types.Amount(cal.GasBaseGwei * math.Exp(s.rng.NormFloat64()*0.35) * float64(types.Gwei))
	if price < types.Gwei {
		price = types.Gwei
	}
	if london {
		// Post-London users bid priority fees on top of the base fee.
		tip := types.Amount(2+s.rng.Float64()*4) * types.Gwei
		return agents.GasPricing{London: true, BaseFee: baseFee, Price: tip}
	}
	return agents.GasPricing{Price: price}
}

// bundleGas is the minimal pricing searchers give bundle transactions
// (payment rides the coinbase transfer instead).
func bundleGas(london bool, baseFee types.Amount) agents.GasPricing {
	if london {
		return agents.GasPricing{London: true, BaseFee: baseFee, Price: types.Gwei}
	}
	return agents.GasPricing{Price: 2 * types.Gwei}
}

func (s *Sim) broadcastTraderSwap(n uint64, now time.Time, cal *MonthCal, london bool, baseFee types.Amount, bigScale float64) {
	tr := s.traders[s.rng.Intn(len(s.traders))]
	size := types.Amount(cal.TradeSizeETH * math.Exp(s.rng.NormFloat64()*0.8) * float64(types.Ether))
	if s.rng.Float64() < cal.BigTradeProb*bigScale {
		size *= types.Amount(8 + s.rng.Intn(14))
	}
	if limit := 130 * types.Ether; size > limit {
		// Whales split orders; single swaps above ~130 WETH are rare.
		size = limit.MulDiv(types.Amount(80+s.rng.Intn(40)), 100)
	}
	if size < types.Milliether {
		size = types.Milliether
	}
	s.topUp(tr.Addr, size*3)
	tx := tr.SwapTx(&s.World.World, s.rng, size, 200+s.rng.Intn(400), s.gasPricing(cal, london, baseFee))
	if tx == nil {
		return
	}
	s.Net.Broadcast(tx, n, now)
}

func (s *Sim) submitProtectedTrade(n uint64, month types.Month, cal *MonthCal, london bool, baseFee types.Amount) {
	idx := s.rng.Intn(maxInt(cal.ActiveProtected, 1))
	if idx >= len(s.protected) {
		idx = s.rng.Intn(len(s.protected))
	}
	user := s.protected[idx]
	size := types.Amount(cal.TradeSizeETH * math.Exp(s.rng.NormFloat64()*0.7) * float64(types.Ether))
	if size < types.Milliether {
		size = types.Milliether
	}
	s.topUp(user.Addr, size*12)
	// Most protection bundles carry one trade; about a third are
	// order-dependent multi-transaction sequences (§4.1: 61.4 % of
	// bundles contain a single transaction).
	count := 1
	if s.rng.Float64() < 0.35 {
		count = 2 + s.rng.Intn(3)
	}
	var txs []*types.Transaction
	for i := 0; i < count; i++ {
		tx := user.SwapTx(&s.World.World, s.rng, size, 300, bundleGas(london, baseFee))
		if tx == nil {
			continue
		}
		txs = append(txs, tx)
	}
	if len(txs) == 0 {
		return
	}
	// Set the tip before any hash is computed: the cached hash is the
	// transaction's identity everywhere (chain index, relay records,
	// observer captures), so it must be derivable from the final fields —
	// persisted archives recompute it on restore.
	txs[len(txs)-1].CoinbaseTip = types.Amount(2+s.rng.Intn(9)) * types.Milliether
	hashes := make([]types.Hash, len(txs))
	for i, tx := range txs {
		hashes[i] = tx.Hash()
	}
	bundle := &flashbots.Bundle{
		Searcher: user.Addr, Type: flashbots.TypeFlashbots,
		Txs: txs, TargetBlock: n,
	}
	if _, err := s.Relay.SubmitBundle(bundle); err != nil {
		return
	}
	s.Truth.Add(TruthRecord{
		Kind: TruthProtected, Channel: agents.ChannelFlashbots, Month: month, Block: n,
		Extractor: user.Addr, Hashes: hashes, Tip: txs[len(txs)-1].CoinbaseTip,
	})
}

// bestVictim picks the largest pending sandwichable swap not yet targeted,
// skipping pools another sandwich already claimed this block (a second
// sandwich there would execute on shifted reserves and miss its plan).
func (s *Sim) bestVictim(targeted map[types.Hash]bool, poolsUsed map[types.Address]bool, minSize types.Amount) *types.Transaction {
	var best *types.Transaction
	var bestIn types.Amount
	for _, tx := range s.Net.Pool().All() {
		if targeted[tx.Hash()] || s.botAddrs[tx.From] {
			continue
		}
		hop, in, ok := agents.VictimSwap(&s.World.World, tx)
		if !ok || in < minSize || in <= bestIn {
			continue
		}
		if poolsUsed[s.poolAddr(hop)] {
			continue
		}
		best, bestIn = tx, in
	}
	return best
}

// poolAddr resolves the pool a swap hop trades on.
func (s *Sim) poolAddr(hop types.SwapHop) types.Address {
	v, ok := s.World.Venues.ByAddr(hop.Venue)
	if !ok {
		return types.Address{}
	}
	p, ok := v.Pool(hop.TokenIn, hop.TokenOut)
	if !ok {
		return types.Address{}
	}
	return p.Addr
}

// attemptSandwich targets the best untargeted pending victim; it reports
// whether a victim existed at all (profitable or not).
func (s *Sim) attemptSandwich(n uint64, month types.Month, cal *MonthCal, london bool, baseFee types.Amount, fbLive bool, proposer *miner.Miner, targeted map[types.Hash]bool, poolsUsed map[types.Address]bool) bool {
	victim := s.bestVictim(targeted, poolsUsed, 10*types.Ether)
	if victim == nil {
		return false
	}
	active := maxInt(1, minInt(cal.ActiveSandwichers, len(s.sandwichers)))
	sw := s.sandwichers[s.rng.Intn(active)]
	s.topUp(sw.Addr, 3_000*types.Ether)
	plan, ok := sw.PlanSandwich(&s.World.World, victim)
	targeted[victim.Hash()] = true
	if !ok || plan.ExpectedGross < 5*types.Milliether {
		return true
	}
	poolsUsed[s.poolAddr(victim.Payload.Hops[0])] = true

	channel := s.pickChannel(cal.SandwichFB, cal.SandwichPriv, fbLive, proposer, month)

	// §6.3 dedicated accounts hijack the private slot when their miner
	// proposes.
	if channel == agents.ChannelPrivate {
		if ded, pool := s.dedicatedFor(proposer); ded != nil {
			s.topUp(ded.Addr, 3_000*types.Ether)
			if plan2, ok2 := ded.PlanSandwich(&s.World.World, victim); ok2 {
				s.submitPrivateSandwich(ded, plan2, victim, pool, n, month, london, baseFee)
				return true
			}
		}
		s.submitPrivateSandwich(sw, plan, victim, s.Eden, n, month, london, baseFee)
		return true
	}

	if channel == agents.ChannelFlashbots {
		gross := plan.ExpectedGross
		estFee := types.Amount(2*(evmlite.GasSwapBase+evmlite.GasSwapPerHop)) * (baseFee + types.Gwei)
		if gross < estFee+8*types.Milliether {
			return true // not worth a bundle after fees
		}
		tip := gross.MulDiv(types.Amount(cal.TipFrac*1000), 1000)
		// Rational searchers leave themselves a margin over gas costs and
		// same-block pool drift.
		margin := estFee + 6*types.Milliether + gross/8
		if floor := gross - margin; tip > floor {
			tip = floor
		}
		if tip < 0 {
			tip = 0
		}
		if s.rng.Float64() < cal.FaultyProb {
			// Faulty bundle arithmetic (§5.2): the tip overshoots the
			// realized gross, leaving the searcher at a loss.
			tip = gross.MulDiv(125+types.Amount(s.rng.Intn(40)), 100)
		}
		front, back := sw.SandwichTxs(&s.World.World, plan, bundleGas(london, baseFee), types.Gwei, tip)
		bundle := &flashbots.Bundle{
			Searcher: sw.Addr, Type: flashbots.TypeFlashbots,
			Txs: []*types.Transaction{front, victim, back}, TargetBlock: n,
		}
		if _, err := s.Relay.SubmitBundle(bundle); err != nil {
			return true
		}
		s.Truth.Add(TruthRecord{
			Kind: TruthSandwich, Channel: agents.ChannelFlashbots, Month: month, Block: n,
			Extractor: sw.Addr, Hashes: []types.Hash{front.Hash(), back.Hash()},
			Victim: victim.Hash(), ExpectedGross: plan.ExpectedGross, Tip: tip,
		})
		return true
	}

	// Public: a priority gas auction around the victim. Only worthwhile
	// when the gross clears the two transactions' gas at auction prices.
	gas := s.gasPricing(cal, london, baseFee)
	pubFee := types.Amount(2*(evmlite.GasSwapBase+evmlite.GasSwapPerHop)) * (victimPriceOf(victim, baseFee) + 2*types.Gwei)
	if plan.ExpectedGross < pubFee.MulDiv(12, 10) {
		return true
	}
	margin := types.Amount(1+s.rng.Intn(3)) * types.Gwei
	front, back := sw.SandwichTxs(&s.World.World, plan, gas, margin, 0)
	if s.rng.Float64() < cal.PGACompetition {
		// Bidding war: the winner escalates; a loser's stale frontrun
		// lands behind and reverts on its slippage guard. A rational
		// bidder never spends more than ~90 % of the expected gross on
		// gas, which bounds the auction.
		esc := types.Amount(float64(front.BidPrice()) * (1 + 0.8*float64(cal.PGARounds)))
		maxSpend := plan.ExpectedGross.MulDiv(9, 10)
		if maxPrice := maxSpend / types.Amount(front.GasLimit+back.GasLimit); esc > maxPrice && maxPrice > 0 {
			esc = maxPrice
		}
		if esc < front.BidPrice() {
			esc = front.BidPrice()
		}
		if london {
			front.TipCap = esc - baseFee
			front.FeeCap = esc + baseFee
		} else {
			front.GasPrice = esc
		}
		front.ResetHash()
		loser := s.sandwichers[s.rng.Intn(active)]
		if loser != sw {
			s.topUp(loser.Addr, 1_000*types.Ether)
			if lplan, ok := loser.PlanSandwich(&s.World.World, victim); ok {
				lfront, _ := loser.SandwichTxs(&s.World.World, lplan, gas, margin/2, 0)
				lfront.Payload.MinOut = lplan.AttackIn * 1000 // reverts after the winner moves the price
				lfront.ResetHash()
				s.Net.Broadcast(lfront, n, s.Chain.Timeline.TimeOfBlock(n))
			}
		}
	}
	s.Net.Broadcast(front, n, s.Chain.Timeline.TimeOfBlock(n))
	s.Net.Broadcast(back, n, s.Chain.Timeline.TimeOfBlock(n))
	s.Truth.Add(TruthRecord{
		Kind: TruthSandwich, Channel: agents.ChannelPublic, Month: month, Block: n,
		Extractor: sw.Addr, Hashes: []types.Hash{front.Hash(), back.Hash()},
		Victim: victim.Hash(), ExpectedGross: plan.ExpectedGross,
	})
	return true
}

func (s *Sim) submitPrivateSandwich(sw *agents.Searcher, plan agents.SandwichPlan, victim *types.Transaction, pool *privpool.Pool, n uint64, month types.Month, london bool, baseFee types.Amount) {
	if pool == nil {
		return
	}
	front, back := sw.SandwichTxs(&s.World.World, plan, bundleGas(london, baseFee), types.Gwei, 0)
	entry := privpool.Entry{Txs: []*types.Transaction{front, victim, back}, Expires: n}
	if !pool.Submit(entry) {
		return
	}
	s.Truth.Add(TruthRecord{
		Kind: TruthSandwich, Channel: agents.ChannelPrivate, Month: month, Block: n,
		Extractor: sw.Addr, Hashes: []types.Hash{front.Hash(), back.Hash()},
		Victim: victim.Hash(), ExpectedGross: plan.ExpectedGross,
	})
}

// dedicatedFor returns the §6.3 dedicated account and pool when the
// proposer runs one of the single-miner channels.
func (s *Sim) dedicatedFor(proposer *miner.Miner) (*agents.Searcher, *privpool.Pool) {
	if s.F2Priv != nil && s.F2Priv.IsMember(proposer.Addr) && s.rng.Float64() < 0.5 {
		return s.DedicatedF2, s.F2Priv
	}
	if s.FlexPriv != nil && s.FlexPriv.IsMember(proposer.Addr) && s.rng.Float64() < 0.5 {
		return s.DedicatedFlex, s.FlexPriv
	}
	return nil, nil
}

func (s *Sim) pickChannel(pFB, pPriv float64, fbLive bool, proposer *miner.Miner, month types.Month) agents.Channel {
	// Private-pool submission is only worthwhile when the upcoming
	// proposer belongs to a pool (slot tenancy).
	privOK := len(s.Priv.PoolsFor(proposer.Addr)) > 0
	if privOK && s.rng.Float64() < pPriv*1.9 {
		// pPriv is the target *landed* share; the 1.9 factor compensates
		// for the pools' combined hashpower (≈0.5 of proposer slots).
		return agents.ChannelPrivate
	}
	if fbLive {
		pPub := 1 - pFB - pPriv
		if pPub < 0 {
			pPub = 0
		}
		if pFB+pPub == 0 || s.rng.Float64() < pFB/(pFB+pPub) {
			return agents.ChannelFlashbots
		}
	}
	return agents.ChannelPublic
}

func (s *Sim) attemptArbs(n uint64, month types.Month, cal *MonthCal, london bool, baseFee types.Amount, fbLive bool, proposer *miner.Miner, poolsUsed map[types.Address]bool) {
	attempts := s.poisson(cal.ArbAttempts)
	if attempts == 0 {
		return
	}
	plans := agents.FindArbPlans(&s.World.World, attempts+2, 2_000*types.Ether)
	active := maxInt(1, minInt(cal.ActiveArbers, len(s.arbers)))
	taken := 0
	for _, plan := range plans {
		if taken >= attempts {
			break
		}
		// Skip plans that would trade through a pool a sandwich bundle
		// already claimed this block.
		conflict := false
		for _, hop := range plan.Hops {
			if poolsUsed[s.poolAddr(hop)] {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		taken++
		minProfit := 5 * types.Milliether
		if plan.ExpectedGross < minProfit {
			continue
		}
		ar := s.arbers[s.rng.Intn(active)]
		s.topUp(ar.Addr, 2_000*types.Ether)
		useFlash := s.rng.Float64() < cal.ArbFlashLoanProb
		flashProt := s.World.Lending[1].Addr // AaveV2
		channel := s.pickChannel(cal.ArbFB, cal.ArbPriv, fbLive, proposer, month)
		switch channel {
		case agents.ChannelFlashbots:
			tip := plan.ExpectedGross.MulDiv(types.Amount(cal.TipFrac*1000), 1000)
			estFee := types.Amount(evmlite.GasSwapBase+2*evmlite.GasSwapPerHop) * (baseFee + types.Gwei)
			if floor := plan.ExpectedGross - estFee - 3*types.Milliether; tip > floor {
				tip = floor
			}
			if tip < 0 {
				tip = 0
			}
			tx := ar.ArbTx(&s.World.World, plan, bundleGas(london, baseFee), tip, useFlash, flashProt)
			bundle := &flashbots.Bundle{Searcher: ar.Addr, Type: flashbots.TypeFlashbots, Txs: []*types.Transaction{tx}, TargetBlock: n}
			if _, err := s.Relay.SubmitBundle(bundle); err != nil {
				continue
			}
			s.Truth.Add(TruthRecord{
				Kind: TruthArbitrage, Channel: agents.ChannelFlashbots, Month: month, Block: n,
				Extractor: ar.Addr, Hashes: []types.Hash{tx.Hash()},
				ExpectedGross: plan.ExpectedGross, Tip: tip, UsedFlashLoan: useFlash,
			})
		case agents.ChannelPrivate:
			tx := ar.ArbTx(&s.World.World, plan, bundleGas(london, baseFee), plan.ExpectedGross/10, useFlash, flashProt)
			if !s.Eden.Submit(privpool.Entry{Txs: []*types.Transaction{tx}, Expires: n}) {
				continue
			}
			s.Truth.Add(TruthRecord{
				Kind: TruthArbitrage, Channel: agents.ChannelPrivate, Month: month, Block: n,
				Extractor: ar.Addr, Hashes: []types.Hash{tx.Hash()},
				ExpectedGross: plan.ExpectedGross, UsedFlashLoan: useFlash,
			})
		default:
			gas := s.gasPricing(cal, london, baseFee)
			tx := ar.ArbTx(&s.World.World, plan, gas, 0, useFlash, flashProt)
			s.Net.Broadcast(tx, n, s.Chain.Timeline.TimeOfBlock(n))
			// Proactive competitor copies and outbids (§2.2.2); the
			// original reverts when the gap is already taken.
			if s.rng.Float64() < cal.PGACompetition/2 {
				rival := s.arbers[s.rng.Intn(active)]
				if rival != ar {
					s.topUp(rival.Addr, 2_000*types.Ether)
					if cp, ok := rival.CopyArb(tx, gas, 2*types.Gwei); ok {
						s.Net.Broadcast(cp, n, s.Chain.Timeline.TimeOfBlock(n))
						s.Truth.Add(TruthRecord{
							Kind: TruthArbitrage, Channel: agents.ChannelPublic, Month: month, Block: n,
							Extractor: rival.Addr, Hashes: []types.Hash{cp.Hash()},
							ExpectedGross: plan.ExpectedGross,
						})
					}
				}
			}
			s.Truth.Add(TruthRecord{
				Kind: TruthArbitrage, Channel: agents.ChannelPublic, Month: month, Block: n,
				Extractor: ar.Addr, Hashes: []types.Hash{tx.Hash()},
				ExpectedGross: plan.ExpectedGross, UsedFlashLoan: useFlash,
			})
		}
	}
}

func (s *Sim) attemptLiquidations(n uint64, month types.Month, cal *MonthCal, london bool, baseFee types.Amount, fbLive bool, proposer *miner.Miner, shockTx *types.Transaction) {
	// Passive: loans already unhealthy, excluding recently attempted ones
	// (a close-factor liquidation can leave the loan unhealthy; real bots
	// wait for their pending transaction to land before re-firing).
	plans := agents.FindLiquidations(&s.World.World)
	fresh := plans[:0]
	for _, p := range plans {
		k := liqKey{protocol: p.Protocol, loanID: p.LoanID}
		if last, ok := s.liqAttempted[k]; ok && n-last < 5 {
			continue
		}
		s.liqAttempted[k] = n
		fresh = append(fresh, p)
	}
	plans = fresh
	if len(plans) > 3 {
		plans = plans[:3]
	}

	// Proactive: simulate the pending oracle shock and backrun it.
	var proactive []agents.LiqPlan
	if shockTx != nil {
		s.World.Oracle.Snapshot()
		s.World.Oracle.SetPrice(shockTx.Payload.OracleToken, shockTx.Payload.OraclePrice)
		for _, p := range agents.FindLiquidations(&s.World.World) {
			k := liqKey{protocol: p.Protocol, loanID: p.LoanID}
			if last, ok := s.liqAttempted[k]; ok && n-last < 5 {
				continue
			}
			s.liqAttempted[k] = n
			proactive = append(proactive, p)
			if len(proactive) >= 3 {
				break
			}
		}
		s.World.Oracle.Revert()
	}

	active := maxInt(1, minInt(cal.ActiveLiquidators, len(s.liquidators)))
	submit := func(plan agents.LiqPlan, backrun *types.Transaction) {
		if plan.ExpectedGross < 5*types.Milliether {
			return
		}
		lq := s.liquidators[s.rng.Intn(active)]
		s.topUp(lq.Addr, 1_000*types.Ether)
		useFlash := s.rng.Float64() < cal.LiqFlashLoanProb
		flashProt := s.World.Lending[1].Addr
		channel := s.pickChannel(cal.LiqFB, cal.LiqPriv, fbLive, proposer, month)
		switch channel {
		case agents.ChannelFlashbots:
			tip := plan.ExpectedGross.MulDiv(types.Amount(cal.TipFrac*1000), 1000)
			estFee := types.Amount(evmlite.GasLiquidate) * (baseFee + types.Gwei)
			if floor := plan.ExpectedGross - estFee - 3*types.Milliether; tip > floor {
				tip = floor
			}
			if tip < 0 {
				tip = 0
			}
			tx := lq.LiqTx(plan, bundleGas(london, baseFee), tip, useFlash, flashProt)
			txs := []*types.Transaction{tx}
			if backrun != nil {
				txs = []*types.Transaction{backrun, tx}
			}
			bundle := &flashbots.Bundle{Searcher: lq.Addr, Type: flashbots.TypeFlashbots, Txs: txs, TargetBlock: n}
			if _, err := s.Relay.SubmitBundle(bundle); err != nil {
				return
			}
			s.Truth.Add(TruthRecord{
				Kind: TruthLiquidation, Channel: agents.ChannelFlashbots, Month: month, Block: n,
				Extractor: lq.Addr, Hashes: []types.Hash{tx.Hash()},
				ExpectedGross: plan.ExpectedGross, Tip: tip, UsedFlashLoan: useFlash,
			})
		case agents.ChannelPrivate:
			tx := lq.LiqTx(plan, bundleGas(london, baseFee), plan.ExpectedGross/10, useFlash, flashProt)
			txs := []*types.Transaction{tx}
			if backrun != nil {
				txs = []*types.Transaction{backrun, tx}
			}
			if !s.Eden.Submit(privpool.Entry{Txs: txs, Expires: n}) {
				return
			}
			s.Truth.Add(TruthRecord{
				Kind: TruthLiquidation, Channel: agents.ChannelPrivate, Month: month, Block: n,
				Extractor: lq.Addr, Hashes: []types.Hash{tx.Hash()},
				ExpectedGross: plan.ExpectedGross, UsedFlashLoan: useFlash,
			})
		default:
			gas := s.gasPricing(cal, london, baseFee)
			if backrun != nil {
				// Order just below the shock so it lands right after.
				gas.Price = backrun.EffectiveGasPrice(baseFee) - types.Gwei - baseFee
				if !london {
					gas.Price = backrun.EffectiveGasPrice(0) - types.Gwei
				}
				if gas.Price < 1 {
					gas.Price = 1
				}
			}
			tx := lq.LiqTx(plan, gas, 0, useFlash, flashProt)
			s.Net.Broadcast(tx, n, s.Chain.Timeline.TimeOfBlock(n))
			s.Truth.Add(TruthRecord{
				Kind: TruthLiquidation, Channel: agents.ChannelPublic, Month: month, Block: n,
				Extractor: lq.Addr, Hashes: []types.Hash{tx.Hash()},
				ExpectedGross: plan.ExpectedGross, UsedFlashLoan: useFlash,
			})
		}
	}
	for _, p := range plans {
		submit(p, nil)
	}
	for _, p := range proactive {
		submit(p, shockTx)
	}
}

// rogueSandwich is the miner extracting for itself through a rogue bundle.
func (s *Sim) rogueSandwich(n uint64, month types.Month, proposer *miner.Miner, targeted map[types.Hash]bool, poolsUsed map[types.Address]bool) *flashbots.Bundle {
	victim := s.bestVictim(targeted, poolsUsed, 15*types.Ether)
	if victim == nil {
		return nil
	}
	bot := s.rogueBots[proposer.Addr]
	s.topUp(bot.Addr, 3_000*types.Ether)
	plan, ok := bot.PlanSandwich(&s.World.World, victim)
	if !ok || plan.ExpectedGross < 5*types.Milliether {
		return nil
	}
	targeted[victim.Hash()] = true
	poolsUsed[s.poolAddr(victim.Payload.Hops[0])] = true
	baseFee := s.Chain.NextBaseFee()
	front, back := bot.SandwichTxs(&s.World.World, plan, bundleGas(baseFee > 0, baseFee), types.Gwei, 0)
	bundle := &flashbots.Bundle{
		Searcher: proposer.Addr, Type: flashbots.TypeRogue,
		Txs: []*types.Transaction{front, victim, back}, TargetBlock: n,
	}
	if _, err := s.Relay.SubmitBundle(bundle); err != nil {
		return nil
	}
	s.Truth.Add(TruthRecord{
		Kind: TruthSandwich, Channel: agents.ChannelFlashbots, Month: month, Block: n,
		Extractor: proposer.Addr, MinerExtractor: true,
		Hashes: []types.Hash{front.Hash(), back.Hash()}, Victim: victim.Hash(),
		ExpectedGross: plan.ExpectedGross,
	})
	return bundle
}

// rogueMiscBundle wraps miner-internal housekeeping transactions (never
// broadcast publicly) as a rogue bundle — the §4.1 rogue category beyond
// self-MEV.
func (s *Sim) rogueMiscBundle(proposer *miner.Miner, n uint64, baseFee types.Amount) *flashbots.Bundle {
	bot := s.minerBots[proposer.Addr]
	s.topUp(bot.Addr, types.Ether)
	count := 1 + s.rng.Intn(2)
	gas := bundleGas(baseFee > 0, baseFee)
	txs := make([]*types.Transaction, count)
	for i := range txs {
		tx := &types.Transaction{
			Nonce: bot.NextNonce(), From: proposer.Addr,
			To:       types.DeriveAddress("miner-internal:"+proposer.Name, uint64(s.rng.Intn(8))),
			GasLimit: evmlite.GasTransfer,
			Payload:  types.Payload{Kind: types.TxTransfer, Amount: types.Milliether},
		}
		gas.Apply(tx)
		txs[i] = tx
	}
	b := &flashbots.Bundle{Searcher: proposer.Addr, Type: flashbots.TypeRogue, Txs: txs, TargetBlock: n}
	if _, err := s.Relay.SubmitBundle(b); err != nil {
		return nil
	}
	return b
}

// minerSelfSandwich is pre-Flashbots direct insertion by the proposer.
func (s *Sim) minerSelfSandwich(n uint64, month types.Month, proposer *miner.Miner, targeted map[types.Hash]bool, poolsUsed map[types.Address]bool) (privpool.Entry, bool) {
	victim := s.bestVictim(targeted, poolsUsed, 8*types.Ether)
	if victim == nil {
		return privpool.Entry{}, false
	}
	bot := s.minerBots[proposer.Addr]
	s.topUp(bot.Addr, 3_000*types.Ether)
	plan, ok := bot.PlanSandwich(&s.World.World, victim)
	if !ok || plan.ExpectedGross < 3*types.Milliether {
		return privpool.Entry{}, false
	}
	targeted[victim.Hash()] = true
	poolsUsed[s.poolAddr(victim.Payload.Hops[0])] = true
	baseFee := s.Chain.NextBaseFee()
	front, back := bot.SandwichTxs(&s.World.World, plan, bundleGas(baseFee > 0, baseFee), types.Gwei, 0)
	s.Truth.Add(TruthRecord{
		Kind: TruthSandwich, Channel: agents.ChannelPrivate, Month: month, Block: n,
		Extractor: proposer.Addr, MinerExtractor: true,
		Hashes: []types.Hash{front.Hash(), back.Hash()}, Victim: victim.Hash(),
		ExpectedGross: plan.ExpectedGross,
	})
	return privpool.Entry{Txs: []*types.Transaction{front, victim, back}, Expires: n}, true
}

// maybePayoutBundle emits the mining pool's periodic payout batch as a
// miner-payout bundle, including one month-13 F2Pool batch of 700
// transactions (the paper's block 12,481,590 anecdote).
func (s *Sim) maybePayoutBundle(proposer *miner.Miner, n uint64) *flashbots.Bundle {
	if proposer.PayoutEvery == 0 || proposer.Produced == 0 || proposer.Produced%uint64(proposer.PayoutEvery) != 0 {
		return nil
	}
	workers := proposer.PayoutWorkers
	month := s.Chain.Timeline.MonthOfBlock(n)
	if !s.emitted700 && month >= 13 && proposer.Name == "F2Pool" {
		workers = 700
		s.emitted700 = true
	}
	perWorker := types.Amount(float64(miner.BlockReward) * float64(proposer.PayoutEvery) * 0.9 / float64(workers))
	total := perWorker * types.Amount(workers)
	s.World.St.Mint(proposer.Addr, total+types.Amount(workers)*types.Amount(evmlite.GasTransfer)*50*types.Gwei+types.Ether)

	bot := s.minerBots[proposer.Addr]
	txs := make([]*types.Transaction, workers)
	baseFee := s.Chain.NextBaseFee()
	gas := bundleGas(baseFee > 0, baseFee)
	hashes := make([]types.Hash, workers)
	for i := 0; i < workers; i++ {
		tx := &types.Transaction{
			Nonce: bot.NextNonce(), From: proposer.Addr,
			To:       types.DeriveAddress("worker:"+proposer.Name, uint64(i)),
			GasLimit: evmlite.GasTransfer,
			Payload:  types.Payload{Kind: types.TxTransfer, Amount: perWorker},
		}
		gas.Apply(tx)
		txs[i] = tx
		hashes[i] = tx.Hash()
	}
	bundle := &flashbots.Bundle{
		Searcher: proposer.Addr, Type: flashbots.TypeMinerPayout,
		Txs: txs, TargetBlock: n,
	}
	if _, err := s.Relay.SubmitBundle(bundle); err != nil {
		return nil
	}
	s.Truth.Add(TruthRecord{
		Kind: TruthPayout, Channel: agents.ChannelFlashbots,
		Month: month, Block: n, Extractor: proposer.Addr, MinerExtractor: true,
		Hashes: hashes,
	})
	return bundle
}

func (s *Sim) driftOracle() {
	for _, tok := range s.World.Tokens {
		p, ok := s.World.Oracle.Price(tok)
		if !ok {
			continue
		}
		drift := 1 + s.rng.NormFloat64()*0.002
		np := types.Amount(float64(p) * drift)
		if np < 1 {
			np = 1
		}
		s.World.Oracle.SetPrice(tok, np)
	}
}

func (s *Sim) openLoan() {
	b := agents.NewBorrower(s.borrowerSeq)
	s.borrowerSeq++
	s.borrowers = append(s.borrowers, b)
	s.World.St.Mint(b.Addr, types.Ether)
	prot := s.World.Lending[s.rng.Intn(3)] // AaveV1, AaveV2 or Compound
	coll := types.Amount(20+s.rng.Intn(180)) * types.Ether
	_, _ = b.OpenRiskyLoan(&s.World.World, s.rng, prot, coll)
}

func (s *Sim) broadcastOracleShock(n uint64, now time.Time, cal *MonthCal, london bool, baseFee types.Amount) *types.Transaction {
	tok := s.World.Tokens[s.rng.Intn(len(s.World.Tokens))]
	p, ok := s.World.Oracle.Price(tok)
	if !ok {
		return nil
	}
	newPrice := types.Amount(float64(p) * (1.04 + s.rng.Float64()*0.08))
	gas := s.gasPricing(cal, london, baseFee)
	gas.Price *= 2 // oracle updates pay to land fast
	tx := &types.Transaction{
		Nonce: s.oracleAdmin.NextNonce(), From: s.oracleAdmin.Addr,
		GasLimit: evmlite.GasOracleUpdate,
		Payload:  types.Payload{Kind: types.TxOracleUpdate, OracleToken: tok, OraclePrice: newPrice},
	}
	gas.Apply(tx)
	s.Net.Broadcast(tx, n, now)
	return tx
}

// topUp keeps an account liquid in gas ether, WETH and tokens.
func (s *Sim) topUp(a types.Address, wethFloor types.Amount) {
	st := s.World.St
	if st.Balance(a) < 50*types.Ether {
		st.Mint(a, 500*types.Ether)
	}
	if st.TokenBalance(s.World.WETH, a) < wethFloor {
		if err := st.MintToken(s.World.WETH, a, wethFloor*2); err == nil {
			// Keep token floats alive too so sells and repayments work.
			for _, tok := range s.World.Tokens {
				if st.TokenBalance(tok, a) < 10_000*types.Ether {
					_ = st.MintToken(tok, a, 100_000*types.Ether)
				}
			}
		}
	}
}

func (s *Sim) recordPrices(n uint64) {
	s.Prices.Record(s.World.WETH, n, types.Ether)
	for _, tok := range s.World.Tokens {
		if p, ok := s.World.Oracle.Price(tok); ok {
			s.Prices.Record(tok, n, p)
		}
	}
}

func (s *Sim) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= s.rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
