package sim

import (
	"testing"

	"mevscope/internal/agents"
	"mevscope/internal/core/detect"
	"mevscope/internal/types"
)

// testConfig is a fast full-window configuration shared by the tests.
func testConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.BlocksPerMonth = 60
	return cfg
}

// runSim runs one simulation to completion.
func runSim(t *testing.T, cfg Config) *Sim {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero BlocksPerMonth should fail")
	}
	cfg := testConfig(1)
	cfg.Months = 99 // clamped
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cfg.Months != types.StudyMonths {
		t.Error("months clamp")
	}
	cfg.NumMiners = 1 // raised to floor
	s, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mset.Len() < 10 {
		t.Error("miner floor")
	}
}

func TestAdoptionCurveMatchesTargets(t *testing.T) {
	s, err := New(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	targets := AdoptionTargets()
	for m, want := range targets {
		got := s.Mset.FlashbotsHashpower(m)
		if got < want-0.02 {
			t.Errorf("month %v hashpower %f below target %f", m, got, want)
		}
	}
	if hp := s.Mset.FlashbotsHashpower(types.FlashbotsLaunchMonth - 1); hp != 0 {
		t.Errorf("pre-launch hashpower = %f", hp)
	}
	// Adoption never decreases.
	prev := 0.0
	for m := types.Month(0); m < types.StudyMonths; m++ {
		hp := s.Mset.FlashbotsHashpower(m)
		if hp < prev {
			t.Fatalf("hashpower decreased at month %v", m)
		}
		prev = hp
	}
}

func TestShortRunProducesAllArtifacts(t *testing.T) {
	cfg := testConfig(7)
	s := runSim(t, cfg)

	if got := s.Chain.Len(); got != int(cfg.BlocksPerMonth)*types.StudyMonths {
		t.Fatalf("chain length = %d", got)
	}
	counts := s.Truth.CountBy()
	for _, kind := range []TruthKind{TruthSandwich, TruthArbitrage, TruthProtected, TruthPayout} {
		if counts[kind] == 0 {
			t.Errorf("no landed %v events", kind)
		}
	}
	if len(s.Relay.Blocks()) == 0 {
		t.Error("no Flashbots blocks")
	}
	if s.Net.Observer().Count() == 0 {
		t.Error("observer captured nothing")
	}
	if len(s.Prices.Tokens()) < 8 {
		t.Error("price series incomplete")
	}
	// No Flashbots block before the launch month.
	launch := s.Chain.Timeline.FlashbotsLaunchBlock()
	for _, rec := range s.Relay.Blocks() {
		if rec.BlockNumber < launch {
			t.Fatalf("Flashbots block %d before launch %d", rec.BlockNumber, launch)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runSim(t, testConfig(11))
	b := runSim(t, testConfig(11))
	if a.Chain.Len() != b.Chain.Len() {
		t.Fatal("lengths differ")
	}
	ha := a.Chain.Head().Hash()
	hb := b.Chain.Head().Hash()
	if ha != hb {
		t.Error("same seed must give identical chains")
	}
	if len(a.Truth.Records()) != len(b.Truth.Records()) {
		t.Error("truth logs differ")
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	a := runSim(t, testConfig(1))
	b := runSim(t, testConfig(2))
	if a.Chain.Head().Hash() == b.Chain.Head().Hash() {
		t.Error("different seeds should diverge")
	}
}

// TestDetectorRecallAgainstTruth scores the §3.1 sandwich detector against
// the simulator's ground truth — validation the paper could not run.
func TestDetectorRecallAgainstTruth(t *testing.T) {
	s := runSim(t, testConfig(5))
	res := detect.ScanAll(s.Chain, s.World.WETH)

	detected := map[types.Hash]bool{}
	for _, d := range res.Sandwiches {
		detected[d.FrontTx] = true
	}
	var truthSand, hit int
	for _, r := range s.Truth.Landed() {
		if r.Kind != TruthSandwich {
			continue
		}
		truthSand++
		if detected[r.Hashes[0]] {
			hit++
		}
	}
	if truthSand == 0 {
		t.Fatal("no landed sandwiches in truth")
	}
	recall := float64(hit) / float64(truthSand)
	if recall < 0.9 {
		t.Errorf("sandwich recall = %.2f (%d/%d)", recall, hit, truthSand)
	}

	// Precision: every detected sandwich matches some truth record.
	truthFronts := map[types.Hash]bool{}
	for _, r := range s.Truth.Records() {
		if r.Kind == TruthSandwich {
			truthFronts[r.Hashes[0]] = true
		}
	}
	var fp int
	for _, d := range res.Sandwiches {
		if !truthFronts[d.FrontTx] {
			fp++
		}
	}
	if prec := 1 - float64(fp)/float64(len(res.Sandwiches)); prec < 0.95 {
		t.Errorf("sandwich precision = %.2f (%d false of %d)", prec, fp, len(res.Sandwiches))
	}
}

func TestArbDetectorRecallAgainstTruth(t *testing.T) {
	s := runSim(t, testConfig(5))
	res := detect.ScanAll(s.Chain, s.World.WETH)
	detected := map[types.Hash]bool{}
	for _, a := range res.Arbitrages {
		detected[a.Tx] = true
	}
	var truthArb, hit int
	for _, r := range s.Truth.Landed() {
		if r.Kind != TruthArbitrage {
			continue
		}
		truthArb++
		if detected[r.Hashes[0]] {
			hit++
		}
	}
	if truthArb == 0 {
		t.Fatal("no landed arbs")
	}
	if recall := float64(hit) / float64(truthArb); recall < 0.9 {
		t.Errorf("arb recall = %.2f (%d/%d)", recall, hit, truthArb)
	}
}

func TestChannelMixShapes(t *testing.T) {
	s := runSim(t, testConfig(9))
	// Within the observation window, most landed sandwiches go via
	// Flashbots (the §6.2 shape).
	var fb, priv, pub int
	for _, r := range s.Truth.Landed() {
		if r.Kind != TruthSandwich || r.Month < types.PrivateWindowStartMonth {
			continue
		}
		switch r.Channel {
		case agents.ChannelFlashbots:
			fb++
		case agents.ChannelPrivate:
			priv++
		default:
			pub++
		}
	}
	total := fb + priv + pub
	if total == 0 {
		t.Fatal("no window sandwiches")
	}
	if share := float64(fb) / float64(total); share < 0.6 {
		t.Errorf("window FB share = %.2f, want dominant", share)
	}
	if priv == 0 {
		t.Error("no private sandwiches in window")
	}
}

func TestPayout700Emitted(t *testing.T) {
	s := runSim(t, testConfig(13))
	maxTxs := 0
	for _, rec := range s.Relay.Blocks() {
		perBundle := map[uint64]int{}
		for _, tx := range rec.Txs {
			perBundle[tx.BundleID]++
		}
		for _, n := range perBundle {
			if n > maxTxs {
				maxTxs = n
			}
		}
	}
	if maxTxs != 700 {
		t.Errorf("largest bundle = %d txs, want the 700-tx payout", maxTxs)
	}
}

func TestLondonChangesBaseFee(t *testing.T) {
	s := runSim(t, testConfig(17))
	fork := s.Chain.Timeline.LondonForkBlock()
	pre, _ := s.Chain.ByNumber(fork - 1)
	post, _ := s.Chain.ByNumber(fork)
	if pre.Header.BaseFee != 0 {
		t.Error("base fee before London should be zero")
	}
	if post.Header.BaseFee == 0 {
		t.Error("base fee after London should be positive")
	}
	// Base fee stays sane (demand elasticity holds it near the calibrated
	// organic gas level).
	last := s.Chain.Head().Header.BaseFee
	if last <= 0 || last > 1000*types.Gwei {
		t.Errorf("final base fee = %v", last)
	}
}

func TestTruthResolveMarksFailures(t *testing.T) {
	s := runSim(t, testConfig(19))
	landed := len(s.Truth.Landed())
	all := len(s.Truth.Records())
	if landed == 0 || landed >= all {
		t.Errorf("landed=%d all=%d: expect some submissions to miss", landed, all)
	}
}

func TestObservationWindowOpens(t *testing.T) {
	s := runSim(t, testConfig(23))
	start, _ := s.Net.Observer().Window()
	wantStart := s.Chain.Timeline.FirstBlockOfMonth(types.ObservationStartMonth)
	if start != wantStart {
		t.Errorf("observation start = %d want %d", start, wantStart)
	}
}

func TestDedicatedAccountsUseSingleMiner(t *testing.T) {
	s := runSim(t, testConfig(29))
	// Every landed private sandwich from the dedicated F2 account must be
	// in a block mined by the F2 pool's single member.
	f2 := s.F2Priv.Miners()[0]
	for _, r := range s.Truth.Landed() {
		if r.Kind != TruthSandwich || r.Extractor != s.DedicatedF2.Addr {
			continue
		}
		loc, ok := s.Chain.TxLocation(r.Hashes[0])
		if !ok {
			continue
		}
		b, _ := s.Chain.ByNumber(loc.BlockNumber)
		if b.Header.Miner != f2 {
			t.Fatalf("dedicated F2 sandwich mined by %v", b.Header.Miner.Short())
		}
	}
}

func TestDisableFlashbotsCounterfactual(t *testing.T) {
	cfg := testConfig(31)
	cfg.Months = 12
	cfg.DisableFlashbots = true
	s := runSim(t, cfg)
	if len(s.Relay.Blocks()) != 0 {
		t.Error("counterfactual world must have no Flashbots blocks")
	}
	for _, r := range s.Truth.Records() {
		if r.Channel == agents.ChannelFlashbots {
			t.Fatal("no truth record should use the Flashbots channel")
		}
	}
	// PGA competition persists: public sandwiches keep landing post-Feb-21.
	post := 0
	for _, r := range s.Truth.Landed() {
		if r.Kind == TruthSandwich && r.Month >= types.FlashbotsLaunchMonth {
			post++
		}
	}
	if post == 0 {
		t.Error("public sandwiches should continue in the counterfactual")
	}
}
