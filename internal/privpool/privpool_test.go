package privpool

import (
	"testing"

	"mevscope/internal/types"
)

func addr(i uint64) types.Address { return types.DeriveAddress("pp", i) }

func mkTx(n uint64, tip types.Amount) *types.Transaction {
	return &types.Transaction{Nonce: n, From: addr(50), GasLimit: 100_000, GasPrice: types.Gwei, CoinbaseTip: tip}
}

func one(tx *types.Transaction) Entry { return Entry{Txs: []*types.Transaction{tx}} }

func TestMembership(t *testing.T) {
	p := New("Eden", addr(1), addr(2))
	if !p.IsMember(addr(1)) || !p.IsMember(addr(2)) || p.IsMember(addr(3)) {
		t.Error("membership")
	}
	p.AddMiner(addr(1)) // duplicate
	if len(p.Miners()) != 2 {
		t.Error("duplicate AddMiner")
	}
	if p.SingleMiner() {
		t.Error("two-miner pool is not single")
	}
	sm := NewSingleMiner("F2Pool-private", addr(9))
	if !sm.SingleMiner() {
		t.Error("single-miner pool")
	}
}

func TestSubmitAndVisibility(t *testing.T) {
	p := New("Eden", addr(1))
	tx := mkTx(1, types.Ether)
	if !p.SubmitTx(tx) {
		t.Error("submit")
	}
	if p.SubmitTx(tx) {
		t.Error("duplicate submit should be rejected")
	}
	if !p.Submit(Entry{}) == false {
		t.Error("empty entry should be rejected")
	}
	if p.Len() != 1 {
		t.Error("len")
	}
	got, err := p.PendingFor(addr(1), 10, 0)
	if err != nil || len(got) != 1 || got[0].Txs[0] != tx {
		t.Errorf("member view: %v %v", got, err)
	}
	if _, err := p.PendingFor(addr(2), 10, 0); err != ErrNotMember {
		t.Errorf("non-member must see nothing: %v", err)
	}
}

func TestEntryValueOrdering(t *testing.T) {
	p := New("Eden", addr(1))
	lo, hi := mkTx(1, types.Milliether), mkTx(2, types.Ether)
	p.SubmitTx(lo)
	p.SubmitTx(hi)
	got, _ := p.PendingFor(addr(1), 10, 0)
	if got[0].Txs[0] != hi || got[1].Txs[0] != lo {
		t.Error("ordering")
	}
}

func TestMultiTxEntryAtomicity(t *testing.T) {
	p := New("solo", addr(1))
	front, back := mkTx(1, 0), mkTx(2, types.Ether)
	p.Submit(Entry{Txs: []*types.Transaction{front, back}})
	if p.Len() != 1 {
		t.Error("one entry")
	}
	// Including either tx drops the whole entry.
	p.MarkIncluded(back.Hash())
	if p.Len() != 0 {
		t.Error("entry should drop when any tx lands")
	}
}

func TestExpiry(t *testing.T) {
	p := New("Eden", addr(1))
	p.Submit(Entry{Txs: []*types.Transaction{mkTx(1, 0)}, Expires: 100})
	p.Submit(Entry{Txs: []*types.Transaction{mkTx(2, 0)}}) // never expires
	got, _ := p.PendingFor(addr(1), 100, 0)
	if len(got) != 2 {
		t.Errorf("at expiry boundary = %d", len(got))
	}
	got, _ = p.PendingFor(addr(1), 101, 0)
	if len(got) != 1 {
		t.Errorf("past expiry = %d", len(got))
	}
	p.Prune(101)
	if p.Len() != 1 {
		t.Errorf("prune should drop expired: %d", p.Len())
	}
}

func TestShutdown(t *testing.T) {
	p := New("Taichi", addr(1))
	p.Shutdown()
	if !p.Defunct() {
		t.Error("defunct flag")
	}
	if p.SubmitTx(mkTx(1, 0)) {
		t.Error("defunct pool must reject submissions")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	eden := New("Eden", addr(1), addr(2))
	taichi := New("Taichi", addr(1))
	solo := NewSingleMiner("solo", addr(3))
	r.Add(eden)
	r.Add(taichi)
	r.Add(solo)

	if n := len(r.PoolsFor(addr(1))); n != 2 {
		t.Errorf("miner1 pools = %d", n)
	}
	taichi.Shutdown()
	if n := len(r.PoolsFor(addr(1))); n != 1 {
		t.Errorf("miner1 pools after shutdown = %d", n)
	}
	if n := len(r.Pools()); n != 3 {
		t.Errorf("all pools = %d", n)
	}
}

func TestRegistryAggregationDedupes(t *testing.T) {
	r := NewRegistry()
	p1 := New("A", addr(1))
	p2 := New("B", addr(1))
	r.Add(p1)
	r.Add(p2)
	shared := mkTx(1, types.Ether)
	only1 := mkTx(2, types.Milliether)
	p1.SubmitTx(shared)
	p2.SubmitTx(shared) // same tx via both pools
	p1.SubmitTx(only1)

	got := r.PendingFor(addr(1), 10, 0)
	if len(got) != 2 {
		t.Fatalf("want dedup to 2, got %d", len(got))
	}
	if got[0].Txs[0] != shared { // higher value first
		t.Error("value ordering")
	}
	r.MarkIncluded(shared.Hash(), only1.Hash())
	if p1.Len() != 0 || p2.Len() != 0 {
		t.Error("MarkIncluded should clear all pools")
	}
	// Registry prune drops expired everywhere.
	p1.Submit(Entry{Txs: []*types.Transaction{mkTx(3, 0)}, Expires: 5})
	r.Prune(10)
	if p1.Len() != 0 {
		t.Error("registry prune")
	}
}
