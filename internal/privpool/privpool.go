// Package privpool models non-Flashbots private transaction pools — the
// Eden-Network/Taichi style RPC endpoints of the paper's §6, plus the
// single-miner private channels inferred in §6.3.
//
// Unlike Flashbots, these pools publish nothing: there is no public API,
// no bundle records, no mined-block disclosure. Transactions submitted
// here bypass the gossip network and appear on chain "out of nowhere",
// which is precisely the signal the private-transaction inference keys on.
//
// Submissions are atomic entries: an ordered transaction sequence the
// miner must include together (a private sandwich interleaves with its
// public victim exactly like a Flashbots bundle does).
package privpool

import (
	"errors"
	"sort"

	"mevscope/internal/types"
)

// ErrNotMember is returned when a non-member miner asks for transactions.
var ErrNotMember = errors.New("privpool: miner is not a member of this pool")

// Entry is one atomic private submission: either a single transaction or
// an ordered sequence the miner honours as a unit.
type Entry struct {
	Txs []*types.Transaction
	// Expires drops the entry after this block height (0 = never).
	Expires uint64
}

// Value is the miner-visible worth of the entry (coinbase tips plus priced
// gas) used for ordering.
func (e Entry) Value(baseFee types.Amount) types.Amount {
	var v types.Amount
	for _, tx := range e.Txs {
		v += tx.CoinbaseTip + types.Amount(tx.GasLimit)*tx.EffectiveTip(baseFee)
	}
	return v
}

// Pool is one private transaction pool with a fixed miner membership.
type Pool struct {
	Name    string
	defunct bool

	members map[types.Address]bool
	order   []types.Address

	queue []Entry
	seen  map[types.Hash]bool
}

// New creates a private pool with the given participating miners.
func New(name string, miners ...types.Address) *Pool {
	p := &Pool{
		Name:    name,
		members: make(map[types.Address]bool),
		seen:    make(map[types.Hash]bool),
	}
	for _, m := range miners {
		p.AddMiner(m)
	}
	return p
}

// NewSingleMiner creates the degenerate one-miner pool of §6.3 — a miner
// extracting MEV through its own private channel.
func NewSingleMiner(name string, miner types.Address) *Pool {
	return New(name, miner)
}

// AddMiner admits a miner to the pool.
func (p *Pool) AddMiner(m types.Address) {
	if p.members[m] {
		return
	}
	p.members[m] = true
	p.order = append(p.order, m)
}

// IsMember reports whether the miner participates in this pool.
func (p *Pool) IsMember(m types.Address) bool { return p.members[m] }

// Miners lists the member miners in admission order.
func (p *Pool) Miners() []types.Address {
	out := make([]types.Address, len(p.order))
	copy(out, p.order)
	return out
}

// SingleMiner reports whether the pool has exactly one member.
func (p *Pool) SingleMiner() bool { return len(p.order) == 1 }

// Shutdown marks the pool defunct (the Taichi Network went dark on
// October 15th, 2021); further submissions are dropped.
func (p *Pool) Shutdown() { p.defunct = true }

// Defunct reports whether the pool has shut down.
func (p *Pool) Defunct() bool { return p.defunct }

// Submit queues an atomic private entry. Entries with no transactions,
// duplicate leading hashes, or submitted to a defunct pool are ignored;
// returns whether the entry was queued.
func (p *Pool) Submit(e Entry) bool {
	if p.defunct || len(e.Txs) == 0 {
		return false
	}
	h := e.Txs[0].Hash()
	if p.seen[h] {
		return false
	}
	p.seen[h] = true
	p.queue = append(p.queue, e)
	return true
}

// SubmitTx queues a single-transaction entry.
func (p *Pool) SubmitTx(tx *types.Transaction) bool {
	return p.Submit(Entry{Txs: []*types.Transaction{tx}})
}

// PendingFor returns queued entries visible to a member miner at a height,
// best value first. Non-members get ErrNotMember — the pool is dark to
// them.
func (p *Pool) PendingFor(miner types.Address, block uint64, baseFee types.Amount) ([]Entry, error) {
	if !p.members[miner] {
		return nil, ErrNotMember
	}
	var out []Entry
	for _, e := range p.queue {
		if e.Expires != 0 && block > e.Expires {
			continue
		}
		out = append(out, e)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Value(baseFee) > out[j].Value(baseFee) })
	return out, nil
}

// Prune drops expired entries as of the given height.
func (p *Pool) Prune(block uint64) {
	kept := p.queue[:0]
	for _, e := range p.queue {
		if e.Expires != 0 && block > e.Expires {
			continue
		}
		kept = append(kept, e)
	}
	p.queue = kept
}

// MarkIncluded removes entries whose transactions made it on chain (an
// entry is dropped when any of its transactions is in the given set).
func (p *Pool) MarkIncluded(hashes ...types.Hash) {
	drop := make(map[types.Hash]bool, len(hashes))
	for _, h := range hashes {
		drop[h] = true
	}
	kept := p.queue[:0]
	for _, e := range p.queue {
		hit := false
		for _, tx := range e.Txs {
			if drop[tx.Hash()] {
				hit = true
				break
			}
		}
		if !hit {
			kept = append(kept, e)
		}
	}
	p.queue = kept
}

// Len is the number of queued entries.
func (p *Pool) Len() int { return len(p.queue) }

// Registry tracks every private pool in the world so miners can poll the
// ones they belong to.
type Registry struct {
	pools []*Pool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Add registers a pool.
func (r *Registry) Add(p *Pool) { r.pools = append(r.pools, p) }

// Pools lists every pool.
func (r *Registry) Pools() []*Pool { return r.pools }

// PoolsFor lists the live pools a miner belongs to.
func (r *Registry) PoolsFor(miner types.Address) []*Pool {
	var out []*Pool
	for _, p := range r.pools {
		if !p.Defunct() && p.IsMember(miner) {
			out = append(out, p)
		}
	}
	return out
}

// PendingFor aggregates the private entries a miner can draw from across
// all its pools, de-duplicated by leading transaction, best value first.
func (r *Registry) PendingFor(miner types.Address, block uint64, baseFee types.Amount) []Entry {
	seen := map[types.Hash]bool{}
	var out []Entry
	for _, p := range r.PoolsFor(miner) {
		entries, err := p.PendingFor(miner, block, baseFee)
		if err != nil {
			continue
		}
		for _, e := range entries {
			h := e.Txs[0].Hash()
			if !seen[h] {
				seen[h] = true
				out = append(out, e)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Value(baseFee) > out[j].Value(baseFee) })
	return out
}

// MarkIncluded removes the given transactions from every pool.
func (r *Registry) MarkIncluded(hashes ...types.Hash) {
	for _, p := range r.pools {
		p.MarkIncluded(hashes...)
	}
}

// Prune drops expired entries from every pool.
func (r *Registry) Prune(block uint64) {
	for _, p := range r.pools {
		p.Prune(block)
	}
}
