package lint

import "testing"

func TestInScope(t *testing.T) {
	prefixes := []string{"mevscope/internal/sim", "mevscope/internal/core"}
	cases := []struct {
		path string
		want bool
	}{
		{"mevscope/internal/sim", true},
		{"mevscope/internal/sim/fixture", true},
		{"mevscope/internal/core/measure", true},
		{"mevscope/internal/simulator", false}, // prefix must end at a path boundary
		{"mevscope/internal/query", false},
		{"mevscope", false},
	}
	for _, tc := range cases {
		if got := inScope(tc.path, prefixes); got != tc.want {
			t.Errorf("inScope(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text     string
		analyzer string
		reason   string
		nil_     bool
	}{
		{"//lint:timing span for the flight recorder", "wallclock", "span for the flight recorder", false},
		{"//lint:timing", "wallclock", "", false},
		{"//lint:ignore unstablesort keys are unique", "unstablesort", "keys are unique", false},
		{"//lint:ignore unstablesort", "unstablesort", "", false},
		{"// ordinary comment", "", "", true},
		{"//lint:unknown x", "", "", true},
	}
	for _, tc := range cases {
		d := parseDirective(tc.text)
		if tc.nil_ {
			if d != nil {
				t.Errorf("parseDirective(%q) = %+v, want nil", tc.text, d)
			}
			continue
		}
		if d == nil {
			t.Fatalf("parseDirective(%q) = nil", tc.text)
		}
		if d.analyzer != tc.analyzer || d.reason != tc.reason {
			t.Errorf("parseDirective(%q) = {%q %q}, want {%q %q}",
				tc.text, d.analyzer, d.reason, tc.analyzer, tc.reason)
		}
	}
}

func TestAllAnalyzersHaveDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if seen["lintdirective"] {
		t.Error("\"lintdirective\" is reserved for driver-level directive hygiene findings")
	}
}
