package lint

import "strings"

// WallclockCriticalPrefixes lists the package subtrees where reading
// the wall clock is forbidden: any time.Now that leaks into sealing,
// measurement, encoding or streaming makes two runs of the same seed
// diverge. internal/parallel and internal/obs are deliberately absent
// — pool-utilization and flight-recorder timing is observability, not
// data — and cmd/, examples/ and the serving tier in internal/query
// measure real latency on purpose.
var WallclockCriticalPrefixes = []string{
	"mevscope/internal/sim",
	"mevscope/internal/chain",
	"mevscope/internal/core",
	"mevscope/internal/dataset",
	"mevscope/internal/archive",
	"mevscope/internal/stream",
}

// CodecErrPrefixes lists the write paths where a dropped error on a
// Write/Flush/Close silently corrupts a checksummed segment or an
// encoded response: the archive codecs, the measure encoders, and the
// query response writers.
var CodecErrPrefixes = []string{
	"mevscope/internal/archive",
	"mevscope/internal/core/measure",
	"mevscope/internal/query",
}

// inScope reports whether pkgPath is inside one of the prefixes.
func inScope(pkgPath string, prefixes []string) bool {
	for _, p := range prefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}
