package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed and type-checked target package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Incomplete bool
}

// goList shells out to the go command in dir and decodes the JSON
// package stream. With -deps -export it compiles every dependency so
// each one carries fresh export data in the build cache; the go
// command is the only process that touches the network-free module
// graph, exactly as `go vet` drives unitchecker-based tools.
func goList(dir string, patterns []string) ([]listEntry, error) {
	args := []string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Incomplete",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportImporter resolves imports from the export data files `go list
// -export` left in the build cache. The stdlib gc importer reads them
// directly, so the loader needs neither a network connection nor
// golang.org/x/tools.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// Load lists patterns from dir, then parses and type-checks every
// matched (non-dependency) package from source, resolving imports via
// export data. Test files are intentionally out of scope: `go list`'s
// GoFiles excludes them, which is also what gives seededrand its
// "outside tests" scope for free.
func Load(dir string, patterns []string) (*token.FileSet, []*Package, error) {
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)

	var pkgs []*Package
	for _, e := range entries {
		if e.DepOnly || len(e.GoFiles) == 0 {
			continue
		}
		if e.Incomplete {
			return nil, nil, fmt.Errorf("lint: package %s does not compile; fix the build before linting", e.ImportPath)
		}
		pkg, err := checkPackage(fset, imp, e.ImportPath, e.Dir, e.GoFiles)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	//lint:ignore unstablesort import paths are unique within one go list invocation
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return fset, pkgs, nil
}

// checkPackage parses files and type-checks them as package pkgPath.
func checkPackage(fset *token.FileSet, imp types.Importer, pkgPath, dir string, goFiles []string) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	pkg, info, err := TypeCheck(fset, imp, pkgPath, files)
	if err != nil {
		return nil, err
	}
	return &Package{Path: pkgPath, Dir: dir, Files: files, Types: pkg, Info: info}, nil
}

// CheckFixture type-checks an already-parsed fixture package as
// pkgPath, resolving the given imports via fresh export data from the
// go command. It exists for the lintest harness: fixture directories
// live under testdata/ (invisible to the go tool) but still need real
// types for std imports like time, sort and math/rand.
func CheckFixture(fset *token.FileSet, pkgPath string, files []*ast.File, imports []string) (*Package, error) {
	exports := make(map[string]string)
	if len(imports) > 0 {
		entries, err := goList(".", imports)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.Export != "" {
				exports[e.ImportPath] = e.Export
			}
		}
	}
	pkg, info, err := TypeCheck(fset, exportImporter(fset, exports), pkgPath, files)
	if err != nil {
		return nil, err
	}
	return &Package{Path: pkgPath, Files: files, Types: pkg, Info: info}, nil
}

// TypeCheck runs go/types over already-parsed files. Exported for the
// lintest fixture harness, which parses fixture directories itself.
func TypeCheck(fset *token.FileSet, imp types.Importer, pkgPath string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-check %s: %v", pkgPath, err)
	}
	return pkg, info, nil
}
