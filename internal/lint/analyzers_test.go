package lint_test

import (
	"testing"

	"mevscope/internal/lint"
	"mevscope/internal/lint/lintest"
)

// TestAnalyzerFixtures runs every analyzer over its flagged and clean
// fixture packages. The flagged fixtures carry // want comments on
// each line a diagnostic is expected; the clean fixtures carry none,
// so any diagnostic at all fails the run. Scoped analyzers (wallclock,
// codecerr) get a PkgPath inside their critical prefixes for the
// flagged case — the clean wallclock fixture deliberately uses the
// default out-of-scope path to prove the scoping works.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		name     string
		analyzer *lint.Analyzer
		dir      string
		pkgPath  string
	}{
		{"mapiterorder/flagged", lint.MapIterOrder, "testdata/mapiterorder/flagged", ""},
		{"mapiterorder/clean", lint.MapIterOrder, "testdata/mapiterorder/clean", ""},
		{"wallclock/flagged", lint.Wallclock, "testdata/wallclock/flagged", "mevscope/internal/sim/fixture"},
		{"wallclock/clean", lint.Wallclock, "testdata/wallclock/clean", ""},
		{"seededrand/flagged", lint.SeededRand, "testdata/seededrand/flagged", ""},
		{"seededrand/clean", lint.SeededRand, "testdata/seededrand/clean", ""},
		{"codecerr/flagged", lint.CodecErr, "testdata/codecerr/flagged", "mevscope/internal/archive/fixture"},
		{"codecerr/clean", lint.CodecErr, "testdata/codecerr/clean", "mevscope/internal/archive/fixture"},
		{"unstablesort/flagged", lint.UnstableSort, "testdata/unstablesort/flagged", ""},
		{"unstablesort/clean", lint.UnstableSort, "testdata/unstablesort/clean", ""},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			lintest.Run(t, lintest.Config{Dir: tc.dir, PkgPath: tc.pkgPath, Analyzer: tc.analyzer})
		})
	}
}

// TestScopedAnalyzersIgnoreForeignPackages proves the package scoping
// directly: the flagged wallclock fixture produces no findings when
// type-checked outside the determinism-critical prefixes, and the
// flagged codecerr fixture produces none outside the codec write
// paths. (The // want comments are irrelevant here because the
// analyzer is run through RunOnPackage, not the lintest comparison.)
func TestScopedAnalyzersIgnoreForeignPackages(t *testing.T) {
	for _, tc := range []struct {
		analyzer *lint.Analyzer
		dir      string
	}{
		{lint.Wallclock, "testdata/wallclock/flagged"},
		{lint.CodecErr, "testdata/codecerr/flagged"},
	} {
		findings := lintest.Analyze(t, lintest.Config{
			Dir:      tc.dir,
			PkgPath:  "mevscope/cmd/outofscope",
			Analyzer: tc.analyzer,
		})
		for _, f := range findings {
			if f.Analyzer == tc.analyzer.Name {
				t.Errorf("%s: finding outside scoped prefixes: %s:%d: %s",
					tc.analyzer.Name, f.Pos.Filename, f.Pos.Line, f.Message)
			}
		}
	}
}
