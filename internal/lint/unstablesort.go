package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UnstableSort flags sort.Slice calls whose comparator orders a
// multi-field struct by exactly one field. sort.Slice is not stable:
// elements equal under the comparator keep an unspecified relative
// order, so if the slice was assembled from a map range (or from a
// parallel merge) the tie region is nondeterministic and the bytes of
// anything rendered from it can differ run to run. The fix is a
// deterministic tie-break on a second field — a total order — or
// sort.SliceStable over input whose order is already pinned.
//
// Single-field structs, non-struct elements, multi-clause comparators
// and sort.SliceStable are all clean. The analyzer cannot prove a
// single sort key is unique; where it genuinely is, waive the finding
// with //lint:ignore unstablesort <why the key is unique>.
var UnstableSort = &Analyzer{
	Name: "unstablesort",
	Doc:  "single-field sort.Slice comparator over a multi-field struct",
	Run:  runUnstableSort,
}

func runUnstableSort(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			if fn := calleeFunc(pass, call); fn == nil || fn.Pkg() == nil ||
				fn.Pkg().Path() != "sort" || fn.Name() != "Slice" {
				return true
			}
			checkComparator(pass, call)
			return true
		})
	}
	return nil
}

func checkComparator(pass *Pass, call *ast.CallExpr) {
	elem := sliceElemStruct(pass, call.Args[0])
	if elem == nil || elem.NumFields() < 2 {
		return
	}
	cmp, ok := call.Args[1].(*ast.FuncLit)
	if !ok || len(cmp.Body.List) != 1 {
		return
	}
	ret, ok := cmp.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return
	}
	bin, ok := ret.Results[0].(*ast.BinaryExpr)
	if !ok || (bin.Op != token.LSS && bin.Op != token.GTR) {
		return
	}
	params := comparatorParams(cmp)
	if params == nil {
		return
	}
	fieldX, idxX := indexedField(bin.X, params)
	fieldY, idxY := indexedField(bin.Y, params)
	if fieldX == "" || fieldX != fieldY || idxX == idxY {
		return // not a one-field i-vs-j comparison
	}
	pass.Reportf(call.Args[1].Pos(),
		"sort.Slice comparator orders %s only by %s; equal values keep nondeterministic pre-sort order — add a tie-break field for a total order (or //lint:ignore unstablesort if the key is provably unique)",
		elemName(pass, call.Args[0]), fieldX)
}

// sliceElemStruct returns the struct type of the slice's elements
// (through one pointer level), or nil.
func sliceElemStruct(pass *Pass, arg ast.Expr) *types.Struct {
	t := pass.TypesInfo.TypeOf(arg)
	if t == nil {
		return nil
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	e := sl.Elem()
	if ptr, ok := e.Underlying().(*types.Pointer); ok {
		e = ptr.Elem()
	}
	st, _ := e.Underlying().(*types.Struct)
	return st
}

func elemName(pass *Pass, arg ast.Expr) string {
	t := pass.TypesInfo.TypeOf(arg)
	if t == nil {
		return types.ExprString(arg)
	}
	return t.String()
}

// comparatorParams maps the two int parameter names of func(i, j int).
func comparatorParams(cmp *ast.FuncLit) map[string]int {
	names := map[string]int{}
	n := 0
	for _, field := range cmp.Type.Params.List {
		for _, id := range field.Names {
			names[id.Name] = n
			n++
		}
	}
	if n != 2 {
		return nil
	}
	return names
}

// indexedField matches expressions of the form <slice>[i].Field
// (through chains like s[i].A.B, which count as field path "A.B") and
// returns the field path plus which comparator parameter indexed it.
func indexedField(e ast.Expr, params map[string]int) (string, int) {
	path := ""
	for {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			break
		}
		if path == "" {
			path = sel.Sel.Name
		} else {
			path = sel.Sel.Name + "." + path
		}
		e = sel.X
	}
	idx, ok := e.(*ast.IndexExpr)
	if !ok || path == "" {
		return "", -1
	}
	id, ok := idx.Index.(*ast.Ident)
	if !ok {
		return "", -1
	}
	which, ok := params[id.Name]
	if !ok {
		return "", -1
	}
	return path, which
}
