package fixture

import "sort"

type record struct {
	Block uint64
	Hash  string
}

// One-field comparator over a two-field struct: equal blocks keep
// whatever order the slice arrived in.
func byBlock(rs []record) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Block < rs[j].Block }) // want "only by Block"
}

// Pointer elements are looked through.
func byBlockPtr(rs []*record) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Block > rs[j].Block }) // want "only by Block"
}

type nested struct {
	Key  struct{ ID uint64 }
	Name string
}

// Field paths through nested structs count as one field.
func byNestedID(ns []nested) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].Key.ID < ns[j].Key.ID }) // want "only by Key.ID"
}
