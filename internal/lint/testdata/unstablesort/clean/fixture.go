package fixture

import "sort"

type record struct {
	Block uint64
	Hash  string
}

// A tie-break makes the order total.
func tieBreak(rs []record) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Block != rs[j].Block {
			return rs[i].Block < rs[j].Block
		}
		return rs[i].Hash < rs[j].Hash
	})
}

// SliceStable preserves a deterministic input order for equal keys.
func stable(rs []record) {
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].Block < rs[j].Block })
}

type wrapped struct{ id uint64 }

// Single-field structs have nothing to tie-break on.
func singleField(xs []wrapped) {
	sort.Slice(xs, func(i, j int) bool { return xs[i].id < xs[j].id })
}

// Scalar elements are totally ordered already.
func scalars(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// A justified waiver when the single key is provably unique.
func uniqueKey(rs []record) {
	//lint:ignore unstablesort Block is unique here: one record per sealed block
	sort.Slice(rs, func(i, j int) bool { return rs[i].Block < rs[j].Block })
}
