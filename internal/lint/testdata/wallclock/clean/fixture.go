package fixture

import "time"

// Type-checked under the default "fixture" path, outside the
// determinism-critical prefixes: serving-tier latency measurement is
// legitimate there.
func latency(start time.Time) time.Duration {
	return time.Since(start)
}

func stamp() time.Time {
	return time.Now()
}

// Simulated time threaded as a value is always fine.
func monthOf(t time.Time) time.Month {
	return t.Month()
}
