package fixture

import "time"

// Type-checked as a package under mevscope/internal/sim, where the
// wall clock is forbidden: block time comes from the simulated chain.
func sealTime() time.Time {
	return time.Now() // want "determinism-critical"
}

func lag(t time.Time) time.Duration {
	return time.Since(t) // want "determinism-critical"
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want "determinism-critical"
}

// A justified //lint:timing directive waives observability timing.
func span() time.Duration {
	t0 := time.Now()      //lint:timing pool-utilization span, never enters results
	return time.Since(t0) //lint:timing pool-utilization span, never enters results
}
