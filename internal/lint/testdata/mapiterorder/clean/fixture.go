package fixture

import "sort"

// The canonical clean spelling: collect, then sort.
func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sort through wrappers still counts.
func sortedDescending(m map[string]int) []int {
	var all []int
	for _, v := range m {
		all = append(all, v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	return all
}

// Commutative reads are not order-sensitive.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

type box struct{ items []int }

// Appending through the range value mutates per-entry state, which is
// commutative across iterations.
func perEntry(m map[string]*box) {
	for _, b := range m {
		b.items = append(b.items, 1)
	}
}

// Loop-local scratch is rebuilt every iteration.
func loopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
