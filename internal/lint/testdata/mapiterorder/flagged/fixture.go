package fixture

import (
	"fmt"
	"io"
)

// Unsorted key collection: the PR-1 bug class in miniature.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "bakes map iteration order"
	}
	return keys
}

// Writing during iteration: no later sort can fix emitted bytes.
func emit(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "emits in map iteration order"
	}
}

type accumulator struct{ log []int }

func (a *accumulator) Feed(x int) { a.log = append(a.log, x) }

// Feeding an append-only seam in map order corrupts the merge.
func feeds(a *accumulator, m map[string]int) {
	for _, v := range m {
		a.Feed(v) // want "feeds a merge in map iteration order"
	}
}

// Sorting a different slice does not clear the finding.
func wrongSort(m map[string]int) ([]string, []string) {
	var ks, other []string
	for k := range m {
		ks = append(ks, k) // want "bakes map iteration order"
	}
	sortStrings(other)
	return ks, other
}

func sortStrings(xs []string) {}
