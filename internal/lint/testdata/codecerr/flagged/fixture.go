package fixture

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"io"
	"os"
)

// Type-checked as a package under mevscope/internal/archive: every
// byte on the way to disk must be confirmed written.
func drops(f *os.File, bw *bufio.Writer, enc *json.Encoder, v any) {
	bw.Write([]byte("x")) // want "error from bw.Write is dropped"
	bw.Flush()            // want "error from bw.Flush is dropped"
	enc.Encode(v)         // want "error from enc.Encode is dropped"
	f.Close()             // want "error from f.Close is dropped"
}

func deferredFlush(bw *bufio.Writer) {
	defer bw.Flush() // want "deferred bw.Flush discards its error"
}

func csvUnchecked(w io.Writer, rows [][]string) {
	cw := csv.NewWriter(w)
	for _, r := range rows {
		_ = cw.Write(r)
	}
	cw.Flush() // want "csv.Writer.Flush returns no error"
}
