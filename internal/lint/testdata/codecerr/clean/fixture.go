package fixture

import (
	"bufio"
	"encoding/csv"
	"io"
	"os"
)

// Every write-path error is either propagated or explicitly discarded.
func checked(f *os.File, bw *bufio.Writer) error {
	if _, err := bw.Write([]byte("x")); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

// An explicit discard is a visible decision, typically on a path that
// is already returning a better error.
func errorPath(f *os.File, cause error) error {
	_ = f.Close()
	return cause
}

// Deferred Close is conventional cleanup and exempt; the success path
// still closes explicitly.
func deferClose(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err != nil {
		return err
	}
	return f.Close()
}

// csv.Writer.Flush followed by Error() on the same writer.
func csvChecked(w io.Writer, rows [][]string) error {
	cw := csv.NewWriter(w)
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
