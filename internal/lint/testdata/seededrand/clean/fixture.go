package fixture

import "math/rand"

// The split-stream discipline: every knob owns a seeded *rand.Rand.
func owned(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func draw(r *rand.Rand) int {
	return r.Intn(100)
}

func split(parent *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(parent.Int63()))
}
