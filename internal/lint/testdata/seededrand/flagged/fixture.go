package fixture

import (
	"math/rand"
	"time"
)

// Global draws share one process-wide source: any two features
// drawing from it perturb each other (the PR-5 bug class).
func jitter() int {
	return rand.Intn(100) // want "process-wide source"
}

func weight() float64 {
	return rand.Float64() // want "process-wide source"
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "process-wide source"
}

// A wallclock seed is a different world every run.
func clockSource() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // want "wall clock"
}
