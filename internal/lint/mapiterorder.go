package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapIterOrder flags `range` over a map whose body accumulates into
// an order-sensitive sink — appending to a slice declared outside the
// loop, writing to a writer/encoder, or feeding a Merge*/Feed* seam —
// unless the accumulated slice is sorted later in the same function.
//
// This is the PR-1 bug class: privinfer.LinkPrivateSandwiches ranked
// candidates straight out of a map range, so the report depended on
// Go's randomized map iteration order. Commutative uses (sums, max,
// set membership, deletes) read cleanly and are not flagged; channel
// sends are not flagged either, because fan-out order is immaterial
// when the downstream merge is deterministic.
var MapIterOrder = &Analyzer{
	Name: "mapiterorder",
	Doc:  "map iteration feeding an order-sensitive sink without a subsequent sort",
	Run:  runMapIterOrder,
}

// writerMethodNames are callee names that emit bytes or records in
// call order; invoking one per map-range iteration bakes map order
// into the output and no later sort can undo it.
var writerMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runMapIterOrder(pass *Pass) error {
	for _, file := range pass.Files {
		for _, body := range functionBodies(file) {
			checkBodyMapRanges(pass, body)
		}
	}
	return nil
}

// functionBodies returns every function body in the file: top-level
// declarations and function literals alike.
func functionBodies(file *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, fn.Body)
			}
		case *ast.FuncLit:
			out = append(out, fn.Body)
		}
		return true
	})
	return out
}

// checkBodyMapRanges inspects the map-range loops whose innermost
// enclosing function is body (nested function literals are analyzed
// against their own body, so "sorted later in the same function"
// means the function the loop actually runs in).
func checkBodyMapRanges(pass *Pass, body *ast.BlockStmt) {
	inspectShallow(body, func(n ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		if t := pass.TypesInfo.TypeOf(rng.X); t == nil || !isMapType(t) {
			return
		}
		checkMapRange(pass, body, rng)
	})
}

// inspectShallow walks n but does not descend into nested function
// literals: their statements belong to a different function body.
func inspectShallow(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, isLit := c.(*ast.FuncLit); isLit && c != n {
			return false
		}
		if c != nil {
			fn(c)
		}
		return true
	})
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange reports order-sensitive sinks inside one map range.
func checkMapRange(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range stmt.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(stmt.Lhs) {
					continue
				}
				target := stmt.Lhs[i]
				if declaredWithin(pass, target, rng) {
					continue // loop-local scratch or per-entry state via the range vars
				}
				if sortedAfter(pass, fnBody, rng, target) {
					continue
				}
				pass.Reportf(call.Pos(),
					"append to %s inside range over map %s bakes map iteration order into the slice; sort it afterwards with a total comparator or iterate sorted keys",
					types.ExprString(target), types.ExprString(rng.X))
			}
		case *ast.CallExpr:
			sel, ok := stmt.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch {
			case writerMethodNames[name]:
				pass.Reportf(stmt.Pos(),
					"%s called inside range over map %s emits in map iteration order; collect and sort before writing",
					name, types.ExprString(rng.X))
			case strings.HasPrefix(name, "Merge"), strings.HasPrefix(name, "Feed"):
				pass.Reportf(stmt.Pos(),
					"%s called inside range over map %s feeds a merge in map iteration order; iterate a sorted key slice instead",
					name, types.ExprString(rng.X))
			}
		}
		return true
	})
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// declaredWithin reports whether expr's root identifier resolves to
// an object declared inside the given node's source range. The root
// of a chain like ix.entries[k] is ix: appending through the range
// loop's own key/value variable mutates per-entry state, which is
// commutative across iterations and therefore order-insensitive.
func declaredWithin(pass *Pass, expr ast.Expr, within ast.Node) bool {
	id := rootIdent(expr)
	if id == nil {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= within.Pos() && obj.Pos() < within.End()
}

// rootIdent unwraps selector/index/star chains to the base identifier.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// sortFuncs are the callees accepted as establishing a total order
// over an accumulated slice. Whether the comparator is actually total
// is unstablesort's job, so any sort call clears mapiterorder here.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether target is passed to a recognised sort
// function at some point after the range loop in the same function.
// The target may sit behind wrappers — sort.Sort(sort.Reverse(
// sort.IntSlice(all))), sort.Sort(&byGas{txs}) — so any appearance of
// it inside the sort call's argument subtree counts.
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, target ast.Expr) bool {
	want := types.ExprString(target)
	found := false
	inspectShallow(fnBody, func(n ast.Node) {
		if found {
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return
		}
		pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return
		}
		fns := sortFuncs[pkgName.Imported().Path()]
		if fns == nil || !fns[sel.Sel.Name] {
			return
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(sub ast.Node) bool {
				if e, isExpr := sub.(ast.Expr); isExpr && types.ExprString(e) == want {
					found = true
				}
				return !found
			})
		}
	})
	return found
}
