package lint

import (
	"go/ast"
	"go/types"
)

// Wallclock forbids reading the wall clock inside determinism-critical
// packages (WallclockCriticalPrefixes). Simulated time comes from the
// chain's own clock; a time.Now that reaches sealing, measurement,
// encoding or streaming makes two runs of the same seed diverge, which
// breaks every golden-report and batch≡stream pin in the suite.
//
// Observability timing inside a critical package — a span around a
// worker pool, a progress line — is waived with a justified
// //lint:timing directive on (or immediately above) the call line:
//
//	t0 := time.Now() //lint:timing pool-utilization span, not data
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "wall-clock reads inside determinism-critical packages",
	Run:  runWallclock,
}

var wallclockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallclock(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), WallclockCriticalPrefixes) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(pass, call); fn != nil &&
				fn.Pkg() != nil && fn.Pkg().Path() == "time" && wallclockFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"time.%s in determinism-critical package %s; derive time from the simulated chain, or waive observability timing with //lint:timing <reason>",
					fn.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}

// calleeFunc resolves the called function object, if it is a named
// function or method (as opposed to a builtin or a function value).
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
