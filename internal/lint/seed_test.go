package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mevscope/internal/lint"
)

// TestSeededBadPatternFailsTheGate is the acceptance pin for the CI
// gate: planting the PR-1 bug class — a map-range append feeding a
// merge without a sort — in a scratch module makes lint.Run (and
// therefore the blocking `mevlint ./...` CI step) report it.
func TestSeededBadPatternFailsTheGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.21\n")
	write("merge.go", `package scratch

// A measure-style merge assembled straight out of a map range: the
// known-bad pattern the determinism gate exists to catch.
func mergeCounts(perMonth map[string]int) []int {
	var merged []int
	for _, n := range perMonth {
		merged = append(merged, n)
	}
	return merged
}
`)

	res, err := lint.Run(dir, []string{"./..."}, lint.All())
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	bad := res.Unsuppressed()
	if len(bad) != 1 {
		t.Fatalf("findings = %+v, want exactly one", bad)
	}
	f := bad[0]
	if f.Analyzer != "mapiterorder" || !strings.Contains(f.Message, "map iteration order") {
		t.Errorf("finding = %+v, want a mapiterorder diagnostic", f)
	}

	// Sorting the merge clears the gate again.
	write("merge.go", `package scratch

import "sort"

func mergeCounts(perMonth map[string]int) []int {
	var merged []int
	for _, n := range perMonth {
		merged = append(merged, n)
	}
	sort.Ints(merged)
	return merged
}
`)
	res, err = lint.Run(dir, []string{"./..."}, lint.All())
	if err != nil {
		t.Fatalf("lint.Run (fixed): %v", err)
	}
	if bad := res.Unsuppressed(); len(bad) != 0 {
		t.Errorf("fixed module still has findings: %+v", bad)
	}
}
