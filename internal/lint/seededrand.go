package lint

import (
	"go/ast"
	"go/types"
)

// SeededRand enforces the PR-5 split-stream rng discipline everywhere
// outside tests: every source of randomness must be a component-owned,
// explicitly seeded *rand.Rand. Two patterns are flagged:
//
//   - package-level draw functions on the shared global source
//     (rand.Intn, rand.Float64, rand.Shuffle, …, in math/rand and
//     math/rand/v2): the global source is process-wide state, so any
//     two features drawing from it perturb each other — exactly the
//     cross-contamination fixed in PR 5, where the observer miss rate
//     shifted which node later transactions originated from;
//   - wallclock-seeded sources (rand.NewSource(time.Now().UnixNano())
//     and friends): a seed taken from the clock is a different world
//     every run, so nothing downstream can be reproduced.
//
// Constructors (rand.New, rand.NewSource with a deterministic seed,
// rand.NewZipf, …) and methods on a *rand.Rand value are clean.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "global or wallclock-seeded math/rand use outside tests",
	Run:  runSeededRand,
}

var randPkgs = map[string]bool{"math/rand": true, "math/rand/v2": true}

// randConstructors are the package-level functions in math/rand[/v2]
// that build a source or generator rather than draw from the global
// one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runSeededRand(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || !randPkgs[fn.Pkg().Path()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // method on an owned *rand.Rand: the discipline itself
			}
			switch {
			case !randConstructors[fn.Name()]:
				pass.Reportf(call.Pos(),
					"rand.%s draws from the process-wide source; give this component its own seeded *rand.Rand (PR-5 split-stream discipline)",
					fn.Name())
			case callsWallclock(pass, call):
				pass.Reportf(call.Pos(),
					"rand.%s seeded from the wall clock is a different world every run; thread an explicit seed instead",
					fn.Name())
			}
			return true
		})
	}
	return nil
}

// callsWallclock reports whether any argument subtree reads the wall
// clock (time.Now and derivatives).
func callsWallclock(pass *Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(pass, inner); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "time" && wallclockFuncs[fn.Name()] {
				found = true
			}
			return !found
		})
	}
	return found
}
