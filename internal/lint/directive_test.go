package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"mevscope/internal/lint"
)

// runOnSource type-checks one in-memory file and runs the analyzers
// through the same driver path as cmd/mevlint.
func runOnSource(t *testing.T, src string, analyzers []*lint.Analyzer) []lint.Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var imports []string
	for _, imp := range f.Imports {
		imports = append(imports, strings.Trim(imp.Path.Value, `"`))
	}
	pkg, err := lint.CheckFixture(fset, "fixture", []*ast.File{f}, imports)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	findings, err := lint.RunOnPackage(fset, pkg, analyzers)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return findings
}

const directiveSrc = `package fixture

import "sort"

type rec struct {
	A, B int
}

func suppressed(rs []rec) {
	//lint:ignore unstablesort A is unique by construction in this test
	sort.Slice(rs, func(i, j int) bool { return rs[i].A < rs[j].A })
}

func reasonless(rs []rec) {
	//lint:ignore unstablesort
	sort.Slice(rs, func(i, j int) bool { return rs[i].A < rs[j].A })
}

func stale(rs []rec) {
	//lint:ignore unstablesort this suppresses nothing: the comparator below is total
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].A != rs[j].A {
			return rs[i].A < rs[j].A
		}
		return rs[i].B < rs[j].B
	})
}
`

// TestDirectiveHygiene pins the suppression contract: a justified
// directive waives the finding; a reasonless directive still waives
// it but is reported itself; a stale directive is reported as dead.
func TestDirectiveHygiene(t *testing.T) {
	findings := runOnSource(t, directiveSrc, []*lint.Analyzer{lint.UnstableSort})

	var suppressed, noReason, stale int
	for _, f := range findings {
		switch {
		case f.Analyzer == "unstablesort" && f.Suppressed:
			suppressed++
			if f.SuppressReason == "" && !strings.Contains(directiveSrc, "//lint:ignore unstablesort\n") {
				t.Errorf("suppressed finding lost its reason: %+v", f)
			}
		case f.Analyzer == "unstablesort":
			t.Errorf("unsuppressed unstablesort finding should have been waived: %+v", f)
		case f.Analyzer == "lintdirective" && strings.Contains(f.Message, "no justification"):
			noReason++
		case f.Analyzer == "lintdirective" && strings.Contains(f.Message, "suppresses nothing"):
			stale++
		}
	}
	if suppressed != 2 {
		t.Errorf("suppressed unstablesort findings = %d, want 2 (justified + reasonless)", suppressed)
	}
	if noReason != 1 {
		t.Errorf("reasonless-directive findings = %d, want 1", noReason)
	}
	if stale != 1 {
		t.Errorf("stale-directive findings = %d, want 1", stale)
	}
}
