package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer so that, should the x/tools
// dependency ever become available to this module, each Run function
// ports mechanically; the build environment for this repo is offline,
// so the driver in load.go and run.go stands in for the multichecker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description: the invariant the analyzer
	// guards and why violating it breaks the repo's determinism or
	// correctness contract.
	Doc string

	// Run performs the check over one type-checked package and
	// reports findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records a finding. Safe to call any number of times.
	Report func(Diagnostic)
}

// Reportf is a convenience wrapper formatting a Diagnostic message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is a single finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic as surfaced to callers of Run: the
// position is materialized and suppression state is attached.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string

	// Suppressed is true when a //lint: directive covers the finding;
	// SuppressReason carries the directive's justification text.
	Suppressed     bool
	SuppressReason string
}
