package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Result is the outcome of running a set of analyzers over a set of
// packages.
type Result struct {
	// Findings holds every diagnostic, suppressed or not, ordered by
	// file, line, column, analyzer.
	Findings []Finding

	// Packages is the number of packages analyzed.
	Packages int
}

// Unsuppressed returns the findings that stand after directives.
func (r *Result) Unsuppressed() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// SuppressionsUsed counts findings waived by a //lint: directive.
func (r *Result) SuppressionsUsed() int {
	n := 0
	for _, f := range r.Findings {
		if f.Suppressed {
			n++
		}
	}
	return n
}

// Run loads patterns from dir and applies every analyzer to every
// matched package. Directive handling happens here, in the driver:
// analyzers report every violation they see and never consult
// comments, so a suppression can never hide a bug from a different
// analyzer. Stale (unused) directives and directives without a
// justification are themselves findings, reported under the
// "lintdirective" name, so waivers cannot rot silently.
func Run(dir string, patterns []string, analyzers []*Analyzer) (*Result, error) {
	fset, pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	res := &Result{Packages: len(pkgs)}
	for _, pkg := range pkgs {
		findings, err := runPackage(fset, pkg, analyzers)
		if err != nil {
			return nil, err
		}
		res.Findings = append(res.Findings, findings...)
	}
	sortFindings(res.Findings)
	return res, nil
}

// RunOnPackage applies analyzers to one already-loaded package,
// resolving //lint: directives exactly as Run does. It is the seam
// the lintest fixture harness drives, so fixtures exercise the same
// suppression semantics as the real gate.
func RunOnPackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	findings, err := runPackage(fset, pkg, analyzers)
	if err != nil {
		return nil, err
	}
	sortFindings(findings)
	return findings, nil
}

// runPackage applies analyzers to one package and resolves directives.
func runPackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var dirs []*directive
	for _, f := range pkg.Files {
		dirs = append(dirs, parseDirectives(fset, f)...)
	}
	idx := indexDirectives(dirs)

	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d Diagnostic) {
			pos := fset.Position(d.Pos)
			f := Finding{Analyzer: a.Name, Pos: pos, Message: d.Message}
			if cov := idx.cover(a.Name, pos.Filename, pos.Line); cov != nil {
				f.Suppressed = true
				f.SuppressReason = cov.reason
			}
			findings = append(findings, f)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.Path, err)
		}
	}
	findings = append(findings, directiveFindings(fset, idx)...)
	return findings, nil
}

// directiveFindings reports directive hygiene: every directive must
// carry a justification, and must actually suppress something.
func directiveFindings(fset *token.FileSet, idx *suppressionIndex) []Finding {
	var out []Finding
	for _, d := range idx.all {
		pos := fset.Position(d.pos)
		if d.reason == "" {
			out = append(out, Finding{
				Analyzer: "lintdirective",
				Pos:      pos,
				Message:  fmt.Sprintf("//lint: directive for %q has no justification; say why the invariant is waived", d.analyzer),
			})
		}
		if !d.used {
			out = append(out, Finding{
				Analyzer: "lintdirective",
				Pos:      pos,
				Message:  fmt.Sprintf("//lint: directive for %q suppresses nothing; delete it", d.analyzer),
			})
		}
	}
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
