package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// A directive is one //lint: suppression comment.
//
// Two forms are recognised:
//
//	//lint:timing <justification>            (wallclock only)
//	//lint:ignore <analyzer> <justification>
//
// A directive covers findings by the matching analyzer on its own
// line (end-of-line comment) and on the line immediately below it
// (comment-above style). The justification is mandatory: determinism
// waivers must say why, and CI prints the count of directives in use
// so growth is visible in logs.
type directive struct {
	analyzer string // analyzer the directive suppresses
	reason   string // justification text (may be empty; flagged if so)
	file     string
	line     int
	pos      token.Pos
	used     bool
}

const (
	timingPrefix = "//lint:timing"
	ignorePrefix = "//lint:ignore"
)

// parseDirectives extracts //lint: directives from one parsed file.
func parseDirectives(fset *token.FileSet, f *ast.File) []*directive {
	var out []*directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d := parseDirective(c.Text)
			if d == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			d.file = pos.Filename
			d.line = pos.Line
			d.pos = c.Pos()
			out = append(out, d)
		}
	}
	return out
}

func parseDirective(text string) *directive {
	switch {
	case strings.HasPrefix(text, timingPrefix):
		rest := strings.TrimSpace(strings.TrimPrefix(text, timingPrefix))
		return &directive{analyzer: "wallclock", reason: rest}
	case strings.HasPrefix(text, ignorePrefix):
		rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
		name, reason, _ := strings.Cut(rest, " ")
		return &directive{analyzer: name, reason: strings.TrimSpace(reason)}
	}
	return nil
}

// suppressionIndex answers "is this finding covered?" lookups.
type suppressionIndex struct {
	// byFileLine[file][line] holds directives covering that line.
	byFileLine map[string]map[int][]*directive
	all        []*directive
}

func indexDirectives(ds []*directive) *suppressionIndex {
	idx := &suppressionIndex{byFileLine: make(map[string]map[int][]*directive), all: ds}
	for _, d := range ds {
		lines := idx.byFileLine[d.file]
		if lines == nil {
			lines = make(map[int][]*directive)
			idx.byFileLine[d.file] = lines
		}
		// A directive covers its own line and the next one.
		lines[d.line] = append(lines[d.line], d)
		lines[d.line+1] = append(lines[d.line+1], d)
	}
	return idx
}

// cover returns the directive suppressing a finding by analyzer at
// file:line, marking it used, or nil if the finding stands. A
// directive on the finding's own line wins over one on the line
// above, so adjacent end-of-line directives each cover their own
// statement.
func (idx *suppressionIndex) cover(analyzer, file string, line int) *directive {
	var above *directive
	for _, d := range idx.byFileLine[file][line] {
		if d.analyzer != analyzer {
			continue
		}
		if d.line == line {
			d.used = true
			return d
		}
		if above == nil {
			above = d
		}
	}
	if above != nil {
		above.used = true
	}
	return above
}
