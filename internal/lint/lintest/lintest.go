// Package lintest is the fixture harness for mevlint analyzers, in
// the spirit of golang.org/x/tools/go/analysis/analysistest: a
// fixture directory is one package of Go files annotated with
//
//	// want "substring"
//
// comments on the lines where a diagnostic is expected (several
// quoted substrings mean several diagnostics on that line). The
// harness type-checks the fixture, runs one analyzer, applies the
// same //lint: suppression rules as the real driver, and fails the
// test on any mismatch in either direction — so every fixture proves
// both that the bad pattern is flagged and that the clean spelling is
// not.
package lintest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"mevscope/internal/lint"
)

// Config describes one fixture run.
type Config struct {
	// Dir is the fixture directory (all .go files in it are one package).
	Dir string

	// PkgPath is the package path the fixture is type-checked as.
	// Scoped analyzers (wallclock, codecerr) consult it; fixtures for
	// them use a path under the scoped prefixes, e.g.
	// "mevscope/internal/sim/fixture". Defaults to "fixture".
	PkgPath string

	// Analyzer under test.
	Analyzer *lint.Analyzer
}

// Analyze loads the fixture and returns every finding (suppressed
// included) without comparing // want expectations. Tests that probe
// scoping or directive hygiene inspect the findings directly.
func Analyze(t *testing.T, cfg Config) []lint.Finding {
	t.Helper()
	if cfg.PkgPath == "" {
		cfg.PkgPath = "fixture"
	}
	findings, _, _, err := analyze(cfg)
	if err != nil {
		t.Fatalf("lintest: %v", err)
	}
	return findings
}

// Run executes one fixture and reports mismatches on t.
func Run(t *testing.T, cfg Config) {
	t.Helper()
	if cfg.PkgPath == "" {
		cfg.PkgPath = "fixture"
	}
	findings, fset, files, err := analyze(cfg)
	if err != nil {
		t.Fatalf("lintest: %v", err)
	}

	got := map[string][]string{} // "file:line" -> messages
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
		got[key] = append(got[key], f.Message)
	}
	want := wantComments(t, fset, files)

	keys := map[string]bool{}
	for k := range got {
		keys[k] = true
	}
	for k := range want {
		keys[k] = true
	}
	ordered := make([]string, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)

	for _, k := range ordered {
		g, w := got[k], want[k]
		if len(g) != len(w) {
			t.Errorf("%s: got %d diagnostic(s) %q, want %d matching %q", k, len(g), g, len(w), w)
			continue
		}
		for i, substr := range w {
			if !strings.Contains(g[i], substr) {
				t.Errorf("%s: diagnostic %q does not contain %q", k, g[i], substr)
			}
		}
	}
}

// analyze loads the fixture package and runs the analyzer through the
// real driver path (including suppression directives).
func analyze(cfg Config) ([]lint.Finding, *token.FileSet, []*ast.File, error) {
	names, err := fixtureFiles(cfg.Dir)
	if err != nil {
		return nil, nil, nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	pkg, err := lint.CheckFixture(fset, cfg.PkgPath, files, sortedKeys(imports))
	if err != nil {
		return nil, nil, nil, err
	}
	findings, err := lint.RunOnPackage(fset, pkg, []*lint.Analyzer{cfg.Analyzer})
	if err != nil {
		return nil, nil, nil, err
	}
	return findings, fset, files, nil
}

func fixtureFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(names)
	return names, nil
}

var wantRE = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var wantStrRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// wantComments collects // want expectations keyed by "file:line".
func wantComments(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]string {
	t.Helper()
	want := map[string][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, s := range wantStrRE.FindAllStringSubmatch(m[1], -1) {
					want[key] = append(want[key], s[1])
				}
			}
		}
	}
	return want
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
