// Package lint is mevlint: a suite of static analyzers that enforce
// this repository's determinism and correctness invariants at build
// time instead of leaving them to after-the-fact golden tests.
//
// Every measurement claim the reproduction makes — golden reports,
// batch≡stream equality, worker-count-independent merges, the
// month-partial memoization — rests on byte-identical determinism.
// Two shipped bugs motivated turning that contract into a compile
// gate: the map-order-dependent sandwich ranking fixed in PR 1, and
// the rng cross-contamination between observer miss rate and gossip
// origin fixed in PR 5. The analyzers encode those bug classes:
//
//	mapiterorder  map range feeding an append/writer/merge, unsorted
//	wallclock     time.Now/Since/Until in determinism-critical packages
//	seededrand    global or wallclock-seeded math/rand outside tests
//	codecerr      dropped Write/Flush/Close errors in codec write paths
//	unstablesort  single-field sort.Slice comparators (no tie-break)
//
// Findings are waived with a justified directive on or immediately
// above the flagged line — //lint:timing <reason> for observability
// timing under wallclock, //lint:ignore <analyzer> <reason> for
// everything else. The driver reports reasonless and stale directives
// as findings of their own, and cmd/mevlint prints the number of
// suppressions in use so growth is visible in CI logs.
//
// The Analyzer/Pass/Diagnostic API deliberately mirrors
// golang.org/x/tools/go/analysis, but the driver is built on the
// standard library alone (go list -export + the gc importer), because
// this module is developed offline; if the x/tools dependency ever
// lands, each analyzer's Run ports mechanically and the loader
// retires in favor of the multichecker.
//
// Run it locally with:
//
//	go run ./cmd/mevlint ./...
package lint

// All returns every analyzer in the suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{CodecErr, MapIterOrder, SeededRand, UnstableSort, Wallclock}
}
