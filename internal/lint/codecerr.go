package lint

import (
	"go/ast"
	"go/types"
)

// CodecErr flags dropped error returns on write-path calls inside the
// codec and encoder packages (CodecErrPrefixes). A Write or Flush
// whose error vanishes turns a short write into a silently truncated
// — but still checksummed-looking — segment or response; the archive
// formats are only trustworthy because every byte on the way to disk
// is either confirmed written or surfaces as an error.
//
// Flagged:
//   - a statement-level call discarding an error from Write,
//     WriteString, WriteByte, WriteRune, Flush, Encode or Close;
//   - `defer w.Flush()` / `defer enc.Encode(..)`: the deferred error
//     is unrecoverable by the time it happens;
//   - encoding/csv's errorless Flush with no subsequent Error() check
//     on the same writer in the same block.
//
// Not flagged: explicit discards (`_ = f.Close()`) — the decision is
// visible in the code — and `defer f.Close()`, the conventional
// cleanup for error paths (write paths must still Close explicitly on
// success, which the statement-level rule keeps honest).
var CodecErr = &Analyzer{
	Name: "codecerr",
	Doc:  "dropped write-path errors in archive/codec/encoder packages",
	Run:  runCodecErr,
}

var codecErrMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Flush": true, "Encode": true, "Close": true,
}

// codecErrDeferred are the callees whose *deferred* error loss is
// always a bug (Close is exempt; see the analyzer doc).
var codecErrDeferred = map[string]bool{
	"Write": true, "WriteString": true, "Flush": true, "Encode": true,
}

func runCodecErr(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), CodecErrPrefixes) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				checkDroppedErr(pass, stmt.X)
			case *ast.DeferStmt:
				checkDeferredWrite(pass, stmt)
			case *ast.BlockStmt:
				checkCSVFlush(pass, stmt)
			}
			return true
		})
	}
	return nil
}

// checkDroppedErr flags a statement-level write-path call whose
// trailing error result is discarded.
func checkDroppedErr(pass *Pass, x ast.Expr) {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !codecErrMethods[sel.Sel.Name] {
		return
	}
	if !returnsTrailingError(pass, call) {
		return
	}
	pass.Reportf(call.Pos(),
		"error from %s.%s is dropped; a swallowed short write corrupts the stream — check it, or assign to _ to make the discard explicit",
		types.ExprString(sel.X), sel.Sel.Name)
}

func checkDeferredWrite(pass *Pass, stmt *ast.DeferStmt) {
	sel, ok := stmt.Call.Fun.(*ast.SelectorExpr)
	if !ok || !codecErrDeferred[sel.Sel.Name] {
		return
	}
	if !returnsTrailingError(pass, stmt.Call) {
		return
	}
	pass.Reportf(stmt.Pos(),
		"deferred %s.%s discards its error after the function has already returned; call it on the success path and return its error",
		types.ExprString(sel.X), sel.Sel.Name)
}

// returnsTrailingError reports whether the call's last result is error.
func returnsTrailingError(pass *Pass, call *ast.CallExpr) bool {
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// checkCSVFlush handles encoding/csv.Writer.Flush, which returns
// nothing: the sticky error must be read via Error() afterwards.
func checkCSVFlush(pass *Pass, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Flush" || !isCSVWriter(pass, sel.X) {
			continue
		}
		if !errorCheckedAfter(pass, block.List[i+1:], types.ExprString(sel.X)) {
			pass.Reportf(call.Pos(),
				"csv.Writer.Flush returns no error; follow it with %s.Error() or the last short write is silent",
				types.ExprString(sel.X))
		}
	}
}

func isCSVWriter(pass *Pass, recv ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(recv)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "encoding/csv" && named.Obj().Name() == "Writer"
}

// errorCheckedAfter scans the remaining statements of the block for a
// call to <recv>.Error().
func errorCheckedAfter(pass *Pass, stmts []ast.Stmt, recv string) bool {
	for _, s := range stmts {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if ok && sel.Sel.Name == "Error" && types.ExprString(sel.X) == recv {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
