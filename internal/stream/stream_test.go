package stream_test

import (
	"bytes"
	"testing"

	"mevscope"
	"mevscope/internal/archive"
	"mevscope/internal/core/measure"
	"mevscope/internal/dataset"
	"mevscope/internal/sim"
	"mevscope/internal/stream"
	"mevscope/internal/types"
)

// render formats a report with the shared renderer, so streaming
// snapshots compare byte for byte with batch output.
func render(r *measure.Report) []byte {
	var buf bytes.Buffer
	mevscope.WriteReportTo(&buf, r)
	return buf.Bytes()
}

// streamWorld simulates cfg to completion, feeding every block through a
// follower as it is produced.
func streamWorld(t *testing.T, cfg sim.Config, workers int, onMonth func(types.Month, *stream.Follower)) (*sim.Sim, *stream.Follower) {
	t.Helper()
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := stream.ForSim(s, workers)
	f.OnMonthEnd = onMonth
	end := s.EndBlock()
	for s.Chain.NextNumber() <= end {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	return s, f
}

// TestFollowerMatchesBatchFinal is the tentpole guarantee: streaming a
// full world block by block yields a final report byte-identical to the
// batch pipeline over the finished simulation.
func TestFollowerMatchesBatchFinal(t *testing.T) {
	cfg := sim.DefaultConfig(11)
	cfg.BlocksPerMonth = 40
	s, f := streamWorld(t, cfg, 3, nil)

	if got, want := f.Blocks(), uint64(s.Chain.Len()); got != want {
		t.Fatalf("follower consumed %d blocks, chain has %d", got, want)
	}
	batch, err := mevscope.AnalyzeWith(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(render(f.Report()), render(batch.Report)) {
		t.Error("streamed report differs from batch report")
	}
	if f.Inferrer() == nil {
		t.Error("observer window opened but follower has no inferrer")
	}
}

// TestFollowerMonthBoundarySnapshots checks the live report at month
// boundaries: the follower's snapshot after month m must equal the batch
// pipeline run over the same world truncated at m (a fresh sim with the
// same seed and Months = m+1 — block production is prefix-deterministic).
func TestFollowerMonthBoundarySnapshots(t *testing.T) {
	check := map[types.Month][]byte{}
	want := map[types.Month]bool{5: true, 15: true, 18: true, 22: true}
	cfg := sim.DefaultConfig(7)
	cfg.BlocksPerMonth = 30
	streamWorld(t, cfg, 2, func(m types.Month, f *stream.Follower) {
		if want[m] {
			check[m] = render(f.Report())
		}
	})
	if len(check) != len(want) {
		t.Fatalf("captured %d snapshots, want %d", len(check), len(want))
	}
	for m, snap := range check {
		tcfg := sim.DefaultConfig(7)
		tcfg.BlocksPerMonth = 30
		tcfg.Months = int(m) + 1
		s, err := sim.New(tcfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		batch, err := mevscope.AnalyzeWith(s, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snap, render(batch.Report)) {
			t.Errorf("month %s: streamed snapshot differs from batch over the truncated world", m)
		}
	}
}

// TestFollowerFeedValidation: blocks must arrive in order and on the
// follower's chain.
func TestFollowerFeedValidation(t *testing.T) {
	cfg := sim.DefaultConfig(3)
	cfg.BlocksPerMonth = 20
	cfg.Months = 2
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	f := stream.ForSim(s, 1)
	head := s.Chain.Head()
	if err := f.Feed(head, nil); err == nil {
		t.Error("feeding the head out of order should error")
	}
	n, err := f.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if n != s.Chain.Len() {
		t.Fatalf("sync consumed %d blocks, want %d", n, s.Chain.Len())
	}
	// A second sync is a no-op.
	if n, err := f.Sync(); err != nil || n != 0 {
		t.Fatalf("idle sync = (%d, %v), want (0, nil)", n, err)
	}
}

// TestStreamedArchiveMatchesBatch: rotating every month to disk through
// OnMonthEnd (the `mevscope archive -live` path) must produce an archive
// file-for-file identical to batch-archiving the finished dataset — same
// checksums, same manifest shape — and restoring it must reproduce the
// batch report byte for byte. Runs per format: the column encoders must
// be as deterministic segment-at-a-time as the frame encoder is.
func TestStreamedArchiveMatchesBatch(t *testing.T) {
	for _, format := range []archive.Format{archive.FormatV2, archive.FormatV3} {
		t.Run(format.String(), func(t *testing.T) { streamedMatchesBatch(t, format) })
	}
}

// segmentFiles flattens one segment's data-file records: the legacy
// trio for v1/v2 manifests, the column chunks for v3.
func segmentFiles(si archive.SegmentInfo) []archive.FileInfo {
	if len(si.Columns) > 0 {
		files := make([]archive.FileInfo, 0, len(si.Columns))
		for _, ci := range si.Columns {
			files = append(files, ci.File)
		}
		return files
	}
	files := []archive.FileInfo{si.Blocks, si.Flashbots, si.Observed}
	return append(files, si.ObservedV...)
}

func streamedMatchesBatch(t *testing.T, format archive.Format) {
	cfg := sim.DefaultConfig(23)
	cfg.BlocksPerMonth = 25
	liveDir, batchDir := t.TempDir(), t.TempDir()

	var sw *archive.StreamWriter
	var rotErr error
	var rotations int
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw, err = archive.NewStreamWriter(liveDir, s.Chain.Timeline, s.World.WETH, format, map[string]string{"seed": "23"})
	if err != nil {
		t.Fatal(err)
	}
	f := stream.ForSim(s, 2)
	f.OnMonthEnd = func(m types.Month, f *stream.Follower) {
		if rotErr == nil {
			rotErr = sw.WriteSegment(f.MonthSegment(m))
			rotations++
		}
	}
	end := s.EndBlock()
	for s.Chain.NextNumber() <= end {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if rotErr != nil {
		t.Fatal(rotErr)
	}
	if rotations != types.StudyMonths {
		t.Fatalf("rotated %d months, want %d", rotations, types.StudyMonths)
	}
	liveMan, err := sw.Finalize(f.Dataset())
	if err != nil {
		t.Fatal(err)
	}

	batchMan, err := archive.WriteFormat(batchDir, dataset.FromSim(s), map[string]string{"seed": "23"}, format)
	if err != nil {
		t.Fatal(err)
	}
	if len(liveMan.Segments) != len(batchMan.Segments) {
		t.Fatalf("streamed archive has %d segments, batch has %d", len(liveMan.Segments), len(batchMan.Segments))
	}
	for i, live := range liveMan.Segments {
		liveFiles, batchFiles := segmentFiles(live), segmentFiles(batchMan.Segments[i])
		if len(liveFiles) != len(batchFiles) {
			t.Fatalf("segment %s: streamed %d data files, batch %d", live.Label, len(liveFiles), len(batchFiles))
		}
		for j, lf := range liveFiles {
			if bf := batchFiles[j]; lf.SHA256 != bf.SHA256 || lf.Count != bf.Count {
				t.Errorf("segment %s: streamed %s differs from batch (%d vs %d docs)",
					live.Label, lf.Name, lf.Count, bf.Count)
			}
		}
	}
	if liveMan.Prices.SHA256 != batchMan.Prices.SHA256 {
		t.Error("streamed prices file differs from batch")
	}

	restored, _, err := archive.Read(liveDir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := mevscope.AnalyzeDataset(restored, 2)
	if err != nil {
		t.Fatal(err)
	}
	batchStudy, err := mevscope.AnalyzeWith(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(render(st.Report), render(batchStudy.Report)) {
		t.Error("report over the streamed archive differs from the batch pipeline's")
	}
}

// TestStreamWriterValidation: months must ascend, a finalized writer is
// closed, and Finalize refuses a dataset whose months were only partly
// rotated under a stale manifest view.
func TestStreamWriterValidation(t *testing.T) {
	cfg := sim.DefaultConfig(5)
	cfg.BlocksPerMonth = 20
	cfg.Months = 3
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	ds := dataset.FromSim(s)
	segs := dataset.Partition(ds)
	if len(segs) != 3 {
		t.Fatalf("partitioned %d months, want 3", len(segs))
	}
	sw, err := archive.NewStreamWriter(t.TempDir(), s.Chain.Timeline, s.World.WETH, archive.FormatV2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteSegment(segs[1]); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteSegment(segs[0]); err == nil {
		t.Error("out-of-order month accepted")
	}
	if err := sw.WriteSegment(segs[1]); err == nil {
		t.Error("repeated month accepted")
	}
	if _, err := sw.Finalize(ds); err == nil {
		t.Error("Finalize accepted a dataset with unrotated months below the last written segment")
	}
}
