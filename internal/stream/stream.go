// Package stream is the streaming block-follower: it consumes the world
// one block at a time — as the simulator produces it, or replayed from an
// archive — and keeps every measurement layer incrementally up to date,
// so a full report is available at any height without re-scanning
// history.
//
// The follower is built entirely on the incremental seams of the
// measurement core (detect.Scanner, profit.Tracker, privinfer.Feed,
// measure.Accumulator), the same seams the batch pipeline runs on. That
// shared seam is what makes the equivalence guarantee hold: after feeding
// blocks [start, n], Report() is byte-identical to the batch
// mevscope.AnalyzeDataset over the same world truncated at n — proved by
// test at every month boundary.
//
//	f := stream.ForSim(s, 0)
//	for s.Chain.NextNumber() <= end {
//	    s.Step()
//	    f.Sync()            // feed the block(s) just produced
//	}
//	report := f.Report()    // == the batch pipeline's report
package stream

import (
	"fmt"
	"sort"

	"mevscope/internal/chain"
	"mevscope/internal/core/detect"
	"mevscope/internal/core/measure"
	"mevscope/internal/core/privinfer"
	"mevscope/internal/core/profit"
	"mevscope/internal/dataset"
	"mevscope/internal/flashbots"
	obspkg "mevscope/internal/obs"
	"mevscope/internal/p2p"
	"mevscope/internal/parallel"
	"mevscope/internal/prices"
	"mevscope/internal/sim"
	"mevscope/internal/types"
)

// FBLookup resolves a block height to its Flashbots public-API record,
// reporting false for non-Flashbots blocks. Live runs wire it to
// Relay.BlockByNumber; archive replays wire it to the restored record
// list.
type FBLookup func(number uint64) (flashbots.BlockRecord, bool)

// Follower consumes blocks in ascending height order and maintains the
// full measurement state incrementally.
type Follower struct {
	// OnMonthEnd, when set, fires after the last block of each completed
	// study month — the natural checkpoint for live reporting, archive
	// segment rotation or progress display. The follower's state at that
	// moment covers exactly the completed months.
	OnMonthEnd func(m types.Month, f *Follower)

	chain    *chain.Chain
	weth     types.Address
	obs      *p2p.Observer
	vantages []*p2p.Observer
	prices   *prices.Series
	fbByNum  FBLookup
	workers  int

	scanner *detect.Scanner
	tracker *profit.Tracker
	inf     *privinfer.Inferrer
	acc     *measure.Accumulator
	fbset   map[types.Hash]flashbots.BundleType

	next uint64 // height the next fed block must carry
	fed  uint64 // blocks consumed so far

	span *obspkg.Span
}

// SetSpan attaches a tracing parent (internal/obs): each month rotation
// records a "stream:rotate" span and each Report snapshot a
// "stream:snapshot" span under it. A nil span — the default — disables
// recording at zero cost.
func (f *Follower) SetSpan(sp *obspkg.Span) { f.span = sp }

// New creates a follower over a (possibly still empty) chain. obs may be
// nil when no pending-transaction capture exists; fbByNum may be nil when
// the world has no Flashbots relay. workers sizes the snapshot worker
// pool exactly like mevscope.AnalyzeWith (< 1 selects runtime.NumCPU()).
func New(c *chain.Chain, weth types.Address, pr *prices.Series, obs *p2p.Observer, fbByNum FBLookup, workers int) *Follower {
	fbset := make(map[types.Hash]flashbots.BundleType)
	f := &Follower{
		chain:   c,
		weth:    weth,
		obs:     obs,
		prices:  pr,
		fbByNum: fbByNum,
		workers: parallel.Workers(workers),
		scanner: detect.NewScanner(weth),
		tracker: profit.NewTracker(profit.New(c, pr, weth, fbset)),
		acc:     measure.NewAccumulator(c.Timeline, weth),
		fbset:   fbset,
		next:    c.Timeline.StartBlock,
	}
	if obs != nil {
		f.vantages = []*p2p.Observer{obs}
	}
	return f
}

// SetVantages registers the full observation-network vantage list (the
// primary observer plus any additional vantages) so month rotation and
// snapshots carry every per-vantage log. ForSim wires it automatically.
func (f *Follower) SetVantages(vs []*p2p.Observer) { f.vantages = vs }

// ForSim wires a follower to a live simulation: its chain, price series,
// observation vantages and relay. Call Sync after each sim.Step (or
// after any number of steps) to catch up.
func ForSim(s *sim.Sim, workers int) *Follower {
	f := New(s.Chain, s.World.WETH, s.Prices, s.Net.Observer(), s.Relay.BlockByNumber, workers)
	f.SetVantages(s.Net.Vantages())
	return f
}

// Next returns the height the next fed block must carry.
func (f *Follower) Next() uint64 { return f.next }

// Blocks returns the number of blocks consumed so far.
func (f *Follower) Blocks() uint64 { return f.fed }

// Feed consumes one block. The block must already be appended to the
// follower's chain (profit resolution reads receipts through it) and
// must carry the next expected height. fbRec is the block's Flashbots
// public-API record, nil for non-Flashbots blocks.
func (f *Follower) Feed(b *types.Block, fbRec *flashbots.BlockRecord) error {
	if b.Header.Number != f.next {
		return fmt.Errorf("stream: fed block %d, want %d", b.Header.Number, f.next)
	}
	if len(b.Txs) > 0 && !f.chain.HasTx(b.Txs[0].Hash()) {
		return fmt.Errorf("stream: block %d is not on the follower's chain", b.Header.Number)
	}
	// Flashbots membership first: profit resolution and inference both
	// read the transaction→bundle set.
	if fbRec != nil {
		for _, tx := range fbRec.Txs {
			f.fbset[tx.Hash] = tx.BundleType
		}
	}
	f.scanner.Feed(b)
	f.tracker.Sync(f.scanner.Result())
	f.acc.FeedBlock(b, fbRec)
	f.syncInferrer()
	f.next = b.Header.Number + 1
	f.fed++

	if f.OnMonthEnd != nil {
		tl := f.chain.Timeline
		m := tl.MonthOfBlock(b.Header.Number)
		if b.Header.Number == tl.EndBlock() || tl.MonthOfBlock(b.Header.Number+1) != m {
			rsp := f.span.Child(obspkg.StageRotate)
			rsp.SetLabel(m.Label())
			f.OnMonthEnd(m, f)
			rsp.End()
		}
	}
	return nil
}

// syncInferrer opens the §6 inference once the observer goes live and
// feeds it the detections accumulated so far. The analysis window starts
// at the paper's fixed month; the end is unbounded because the follower's
// head only grows (batch runs bound it by the final head, which every
// detection is under — the verdicts agree either way).
func (f *Follower) syncInferrer() {
	if f.inf == nil {
		if f.obs == nil {
			return
		}
		if start, _ := f.obs.Window(); start == 0 && f.obs.Count() == 0 {
			return
		}
		winStart := f.chain.Timeline.FirstBlockOfMonth(types.PrivateWindowStartMonth)
		f.inf = privinfer.New(f.chain, f.obs, f.fbset, winStart, ^uint64(0))
		f.inf.Workers = f.workers
	}
	f.inf.Feed(f.scanner.Result())
}

// Sync feeds every chain block at or above the follower's cursor,
// resolving Flashbots records through the configured lookup. It returns
// the number of blocks consumed. Drive it after each simulation step —
// or once after many — the resulting state is identical.
func (f *Follower) Sync() (int, error) {
	head := f.chain.Head()
	if head == nil {
		return 0, nil
	}
	n := 0
	for f.next <= head.Header.Number {
		b, err := f.chain.ByNumber(f.next)
		if err != nil {
			return n, fmt.Errorf("stream: sync at %d: %w", f.next, err)
		}
		var fbRec *flashbots.BlockRecord
		if f.fbByNum != nil {
			if rec, ok := f.fbByNum(b.Header.Number); ok {
				fbRec = &rec
			}
		}
		if err := f.Feed(b, fbRec); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Detected returns the live detector sweep over the fed range.
func (f *Follower) Detected() *detect.Result { return f.scanner.Result() }

// Profits returns the resolved profit records so far, in batch order.
func (f *Follower) Profits() []profit.Record { return f.tracker.Records() }

// Inferrer returns the live §6 inference, nil before the observation
// window opens.
func (f *Follower) Inferrer() *privinfer.Inferrer { return f.inf }

// MonthSegment extracts one completed month's partition of the fed
// world: its blocks, Flashbots API records and the pending transactions
// first observed during it — exactly what dataset.Partition would
// produce for that month over the final dataset. Called from OnMonthEnd
// it is the live feed of archive.StreamWriter: every record of month m
// exists by the time m's last block is fed (a transaction's first-seen
// block cannot precede its broadcast), so `mevscope archive -live` can
// rotate the month to disk immediately and the result is file-identical
// to archiving everything at the end.
func (f *Follower) MonthSegment(m types.Month) *dataset.Segment {
	tl := f.chain.Timeline
	seg := &dataset.Segment{Month: m, Blocks: f.chain.BlocksInMonth(m)}
	// Every record log is in ascending block order (records append as
	// blocks are fed / transactions are first seen), so the month's span
	// is a binary-searched slice, not a scan of the whole run — rotation
	// cost stays proportional to the month, not to the history.
	fb := f.acc.FBBlocks()
	lo := sort.Search(len(fb), func(i int) bool { return tl.MonthOfBlock(fb[i].BlockNumber) >= m })
	hi := sort.Search(len(fb), func(i int) bool { return tl.MonthOfBlock(fb[i].BlockNumber) > m })
	seg.FBBlocks = append(seg.FBBlocks, fb[lo:hi]...)
	monthSlice := func(v *p2p.Observer) []p2p.ObservedTx {
		recs := v.Records()
		lo := sort.Search(len(recs), func(i int) bool { return tl.MonthOfBlock(recs[i].FirstSeenBlock) >= m })
		hi := sort.Search(len(recs), func(i int) bool { return tl.MonthOfBlock(recs[i].FirstSeenBlock) > m })
		return append([]p2p.ObservedTx(nil), recs[lo:hi]...)
	}
	if len(f.vantages) > 0 {
		seg.Observed = monthSlice(f.vantages[0])
		seg.ObservedV = make([][]p2p.ObservedTx, len(f.vantages)-1)
		for i, v := range f.vantages[1:] {
			seg.ObservedV[i] = monthSlice(v)
		}
	} else if f.obs != nil {
		seg.Observed = monthSlice(f.obs)
	}
	return seg
}

// Timeline returns the follower's study timeline.
func (f *Follower) Timeline() types.Timeline { return f.chain.Timeline }

// MonthDataset extracts one month of the fed world as a standalone
// dataset — exactly what archive.ReadRange(dir, m, m) would restore
// from an archive of this world: the month's blocks on a timeline
// re-anchored at the month, its Flashbots records (with a month-local
// FBSet), and every vantage's observation log up to the month's end
// (the cross-boundary rule: a transaction first seen near a month
// boundary can be mined in the next month, so the logs are never
// sliced from below). It is the live feed of the query layer's partial
// cache: `mevscope serve -live` seals each completed month into a
// measure.Partial at OnMonthEnd and re-analyzes only the open month
// per snapshot, so snapshot cost stays proportional to one month
// however long the history grows.
func (f *Follower) MonthDataset(m types.Month) (*dataset.Dataset, error) {
	tl := f.chain.Timeline
	blocks := f.chain.BlocksInMonth(m)
	if len(blocks) == 0 {
		return nil, fmt.Errorf("stream: no blocks fed for month %s", m.Label())
	}
	mtl := tl
	mtl.StartBlock = tl.FirstBlockOfMonth(m)
	mtl.FirstMonth = m
	c := chain.New(mtl)
	for _, b := range blocks {
		if err := c.Append(b); err != nil {
			return nil, fmt.Errorf("stream: month %s: %w", m.Label(), err)
		}
	}
	fb := f.acc.FBBlocks()
	lo := sort.Search(len(fb), func(i int) bool { return tl.MonthOfBlock(fb[i].BlockNumber) >= m })
	hi := sort.Search(len(fb), func(i int) bool { return tl.MonthOfBlock(fb[i].BlockNumber) > m })
	monthFB := append([]flashbots.BlockRecord(nil), fb[lo:hi]...)
	ds := &dataset.Dataset{
		Chain:    c,
		FBBlocks: monthFB,
		FBSet:    dataset.FBSetOf(monthFB),
		Prices:   f.prices,
		WETH:     f.weth,
	}
	if f.obs != nil {
		start, stop := f.obs.Window()
		head := c.Head().Header.Number
		if (start > 0 || f.obs.Count() > 0) && start <= head {
			vs := f.vantages
			if len(vs) == 0 {
				vs = []*p2p.Observer{f.obs}
			}
			for _, v := range vs {
				recs := v.Records()
				end := sort.Search(len(recs), func(i int) bool { return tl.MonthOfBlock(recs[i].FirstSeenBlock) > m })
				ds.Vantages = append(ds.Vantages,
					p2p.RestoreVantage(v.Node(), append([]p2p.ObservedTx(nil), recs[:end]...), start, stop))
			}
			ds.Observer = ds.Vantages[0]
		}
	}
	return ds, nil
}

// Dataset returns the collected-measurement view of the fed world — the
// input `mevscope archive` persists. It shares the follower's live
// structures.
func (f *Follower) Dataset() *dataset.Dataset {
	ds := &dataset.Dataset{
		Chain:    f.chain,
		FBBlocks: f.acc.FBBlocks(),
		FBSet:    f.fbset,
		Prices:   f.prices,
		WETH:     f.weth,
	}
	if f.inf != nil {
		ds.Observer = f.obs
		ds.Vantages = f.vantages
	}
	return ds
}

// Report snapshots the full report for the fed range. After feeding
// blocks [start, n] it is byte-identical to the batch pipeline run over
// the same world truncated at n; the aggregates are already up to date,
// so only the final builder fan-out runs.
func (f *Follower) Report() *measure.Report {
	sp := f.span.Child(obspkg.StageSnapshot)
	defer sp.End()
	in := measure.Inputs{
		Chain:   f.chain,
		FBSet:   f.fbset,
		Detect:  f.scanner.Result(),
		Profits: f.tracker.Records(),
		WETH:    f.weth,
		Workers: f.workers,
		Span:    sp,
	}
	if f.inf != nil {
		in.Observer = f.obs
		in.Vantages = f.vantages
	}
	return f.acc.Report(in, f.inf)
}
