// Package stats provides the summary statistics, histograms and
// correlation measures the paper's figures are built from.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample: the moments and quantiles used in the
// paper's profit-distribution analysis (Figure 8 reports means, medians
// and standard deviations).
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Std    float64
	Min    float64
	Max    float64
	P25    float64
	P75    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(len(sorted))
	var ss float64
	for _, x := range sorted {
		d := x - s.Mean
		ss += d * d
	}
	if len(sorted) > 1 {
		s.Std = math.Sqrt(ss / float64(len(sorted)-1))
	}
	s.Median = Quantile(sorted, 0.5)
	s.P25 = Quantile(sorted, 0.25)
	s.P75 = Quantile(sorted, 0.75)
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f med=%.4f std=%.4f min=%.4f max=%.4f", s.N, s.Mean, s.Median, s.Std, s.Min, s.Max)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted
// sample using linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Pearson computes the Pearson correlation coefficient of two equal-length
// series; it returns 0 for degenerate inputs. The paper uses the
// correlation between daily sandwich counts and gas prices (Figure 6).
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Histogram is a fixed-width bucketed count of a sample.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	// Under and Over count out-of-range samples.
	Under, Over int
}

// NewHistogram creates a histogram over [lo, hi) with n buckets.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	if x < h.Lo {
		h.Under++
		return
	}
	if x >= h.Hi {
		h.Over++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
}

// Total is the number of in-range observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Buckets {
		t += c
	}
	return t
}

// Render draws an ASCII bar chart of the histogram, width chars wide.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	maxC := 1
	for _, c := range h.Buckets {
		if c > maxC {
			maxC = c
		}
	}
	out := ""
	step := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		bar := ""
		for j := 0; j < c*width/maxC; j++ {
			bar += "█"
		}
		out += fmt.Sprintf("%10.3f |%-*s| %d\n", h.Lo+float64(i)*step, width, bar, c)
	}
	return out
}

// CDF returns the empirical distribution value at x for a sorted sample.
func CDF(sorted []float64, x float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(sorted, x)
	// advance over equal elements so CDF is right-continuous
	for i < len(sorted) && sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(sorted))
}

// Gini computes the Gini coefficient of a non-negative sample — used to
// quantify mining (de)centralization in the §4.4 analysis.
func Gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum, total float64
	for _, x := range sorted {
		total += x
	}
	if total == 0 {
		return 0
	}
	var lorenz float64
	for _, x := range sorted {
		cum += x
		lorenz += cum
	}
	n := float64(len(sorted))
	return (n + 1 - 2*lorenz/total) / n
}
