package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almost(s.Mean, 3) || !almost(s.Median, 3) || !almost(s.Min, 1) || !almost(s.Max, 5) {
		t.Errorf("summary = %+v", s)
	}
	if !almost(s.Std, math.Sqrt(2.5)) {
		t.Errorf("std = %f", s.Std)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary")
	}
	one := Summarize([]float64{7})
	if one.Std != 0 || one.Mean != 7 || one.Median != 7 {
		t.Errorf("singleton = %+v", one)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if !almost(Quantile(xs, 0), 10) || !almost(Quantile(xs, 1), 40) {
		t.Error("extremes")
	}
	if !almost(Quantile(xs, 0.5), 25) {
		t.Errorf("median = %f", Quantile(xs, 0.5))
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if !almost(Pearson(xs, ys), 1) {
		t.Errorf("perfect corr = %f", Pearson(xs, ys))
	}
	inv := []float64{10, 8, 6, 4, 2}
	if !almost(Pearson(xs, inv), -1) {
		t.Errorf("perfect anticorr = %f", Pearson(xs, inv))
	}
	flat := []float64{3, 3, 3, 3, 3}
	if Pearson(xs, flat) != 0 {
		t.Error("degenerate should be 0")
	}
	if Pearson(xs, ys[:3]) != 0 {
		t.Error("length mismatch should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1, 2.5, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Total() != 5 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Buckets[0] != 2 { // 0 and 1
		t.Errorf("bucket0 = %d", h.Buckets[0])
	}
	if h.Buckets[4] != 1 { // 9.99
		t.Errorf("bucket4 = %d", h.Buckets[4])
	}
	if out := h.Render(20); len(out) == 0 {
		t.Error("render")
	}
	// Degenerate constructor args are clamped.
	bad := NewHistogram(5, 5, 0)
	bad.Add(5)
	if bad.Total() != 1 {
		t.Error("clamped histogram should accept")
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	if !almost(CDF(xs, 0), 0) {
		t.Error("below")
	}
	if !almost(CDF(xs, 2), 0.75) {
		t.Errorf("at 2 = %f", CDF(xs, 2))
	}
	if !almost(CDF(xs, 5), 1) {
		t.Error("above")
	}
	if CDF(nil, 1) != 0 {
		t.Error("empty")
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]float64{1, 1, 1, 1}); !almost(g, 0) {
		t.Errorf("equal gini = %f", g)
	}
	// One holder of everything among many: approaches 1.
	xs := make([]float64, 100)
	xs[0] = 1000
	if g := Gini(xs); g < 0.95 {
		t.Errorf("concentrated gini = %f", g)
	}
	if Gini(nil) != 0 || Gini([]float64{0, 0}) != 0 {
		t.Error("degenerate gini")
	}
}

// Property: quantile is monotonic in q and bounded by min/max.
func TestQuantileMonotonicProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		a, b := Quantile(sorted, q1), Quantile(sorted, q2)
		return a <= b && a >= sorted[0] && b <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Gini is within [0, 1] for non-negative samples.
func TestGiniBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		g := Gini(xs)
		return g >= -1e-9 && g <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	out := s.String()
	if len(out) == 0 || out[0] != 'n' {
		t.Errorf("summary string = %q", out)
	}
}
