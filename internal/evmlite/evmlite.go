// Package evmlite executes transactions against the simulated world state.
//
// It is a drastically simplified EVM: instead of bytecode, transactions
// carry typed payloads (swap, liquidate, flash loan, …) that the executor
// interprets. What it preserves faithfully is everything the measurement
// pipeline depends on:
//
//   - gas accounting with legacy and EIP-1559 (London) pricing, including
//     base-fee burn and miner tips,
//   - atomic execution with full revert of state, loan bookkeeping and
//     oracle prices on failure — which is what makes flash loans possible,
//   - event-log emission using the vocabulary in internal/events,
//   - direct-to-coinbase payments (how Flashbots searchers pay miners),
//     surfaced in receipts.
package evmlite

import (
	"errors"
	"fmt"

	"mevscope/internal/dex"
	"mevscope/internal/events"
	"mevscope/internal/lending"
	"mevscope/internal/state"
	"mevscope/internal/types"
)

// Errors surfaced by transaction validation (the block builder rejects
// such transactions; they never make it into a block).
var (
	ErrCannotPayFee = errors.New("evmlite: sender cannot cover gas fee")
	ErrFeeCapTooLow = errors.New("evmlite: fee cap below base fee")
	ErrGasTooLow    = errors.New("evmlite: gas limit below intrinsic cost")
)

// Gas schedule: flat per-action costs in the spirit of mainnet magnitudes.
const (
	GasTransfer      = 21_000
	GasTokenTransfer = 52_000
	GasSwapBase      = 100_000
	GasSwapPerHop    = 62_000
	GasLiquidate     = 420_000
	GasFlashLoanBase = 210_000
	GasOracleUpdate  = 55_000
	GasPayoutPer     = 21_000
	GasAddLiquidity  = 130_000
	GasNoop          = 40_000
)

// GasFor returns the gas an action consumes when executed.
func GasFor(p *types.Payload) uint64 {
	switch p.Kind {
	case types.TxTransfer:
		return GasTransfer
	case types.TxTokenTransfer:
		return GasTokenTransfer
	case types.TxSwap:
		return GasSwapBase + GasSwapPerHop
	case types.TxMultiSwap:
		return GasSwapBase + GasSwapPerHop*uint64(len(p.Hops))
	case types.TxLiquidate:
		return GasLiquidate
	case types.TxFlashLoan:
		g := uint64(GasFlashLoanBase)
		if p.Inner != nil {
			g += GasFor(p.Inner)
		}
		return g
	case types.TxOracleUpdate:
		return GasOracleUpdate
	case types.TxMinerPayout:
		return GasPayoutPer * uint64(max(1, len(p.Payouts)))
	case types.TxAddLiquidity:
		return GasAddLiquidity
	default:
		return GasNoop
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Env is the world the executor mutates.
type Env struct {
	State   *state.State
	Venues  *dex.Registry
	Lending *lending.Registry
	Oracle  *lending.Oracle
	// WETH is the ether-equivalent trading token; profit analysis treats
	// it 1:1 with ETH, as the paper does.
	WETH types.Address
}

// BlockCtx is the per-block execution context.
type BlockCtx struct {
	Number  uint64
	BaseFee types.Amount // zero pre-London
	Miner   types.Address
}

// Executor applies transactions to an Env.
type Executor struct {
	Env Env
}

// New creates an executor over the environment.
func New(env Env) *Executor { return &Executor{Env: env} }

// Validate checks that a transaction can be included in a block with the
// given base fee: intrinsic gas fits the limit, the fee cap clears the base
// fee and the sender can pay the worst-case fee plus value and tip.
func (ex *Executor) Validate(tx *types.Transaction, baseFee types.Amount) error {
	need := GasFor(&tx.Payload)
	if tx.GasLimit < need {
		return fmt.Errorf("%w: need %d have %d", ErrGasTooLow, need, tx.GasLimit)
	}
	if baseFee > 0 && tx.BidPrice() < baseFee {
		return fmt.Errorf("%w: cap %v base %v", ErrFeeCapTooLow, tx.BidPrice(), baseFee)
	}
	price := tx.EffectiveGasPrice(baseFee)
	worst := types.Amount(need)*price + tx.Value + tx.CoinbaseTip
	if ex.Env.State.Balance(tx.From) < worst {
		return fmt.Errorf("%w: need %v have %v", ErrCannotPayFee, worst, ex.Env.State.Balance(tx.From))
	}
	return nil
}

// Apply executes a transaction and returns its receipt. The caller must
// have validated the transaction first; Apply returns an error only for
// invalid transactions (which consensus would never include), while
// in-protocol failures produce a StatusFailed receipt with fees charged.
func (ex *Executor) Apply(ctx BlockCtx, tx *types.Transaction, txIndex int) (*types.Receipt, error) {
	if err := ex.Validate(tx, ctx.BaseFee); err != nil {
		return nil, err
	}
	st := ex.Env.State
	gasUsed := GasFor(&tx.Payload)
	price := tx.EffectiveGasPrice(ctx.BaseFee)
	fee := types.Amount(gasUsed) * price
	tipPart := types.Amount(gasUsed) * tx.EffectiveTip(ctx.BaseFee)
	burnPart := fee - tipPart

	// Fees are charged unconditionally, success or failure.
	if burnPart > 0 {
		if err := st.Burn(tx.From, burnPart); err != nil {
			return nil, err
		}
	}
	if tipPart > 0 {
		if err := st.Transfer(tx.From, ctx.Miner, tipPart); err != nil {
			return nil, err
		}
	}

	rcpt := &types.Receipt{
		TxHash:            tx.Hash(),
		TxIndex:           txIndex,
		GasUsed:           gasUsed,
		EffectiveGasPrice: price,
	}

	// The action itself runs under a snapshot of every journaled store.
	revs := ex.reverters()
	for _, r := range revs {
		r.Snapshot()
	}
	logs, err := ex.run(ctx, tx)
	if err == nil && tx.CoinbaseTip > 0 {
		// Flashbots-style conditional payment: only lands if the action
		// succeeded (it is inside the snapshot).
		err = st.Transfer(tx.From, ctx.Miner, tx.CoinbaseTip)
	}
	if err != nil {
		for i := len(revs) - 1; i >= 0; i-- {
			revs[i].Revert()
		}
		rcpt.Status = types.StatusFailed
		return rcpt, nil
	}
	for i := len(revs) - 1; i >= 0; i-- {
		revs[i].Commit()
	}
	rcpt.Status = types.StatusSuccess
	rcpt.Logs = logs
	if tx.CoinbaseTip > 0 {
		rcpt.CoinbaseTransfer = tx.CoinbaseTip
	}
	return rcpt, nil
}

// ApplyBundle executes an atomic transaction sequence: if any transaction
// is invalid or reverts, every effect of the whole sequence is rolled back
// and ok is false. This is MEV-geth's bundle semantics — miners simulate a
// bundle and discard it unless every transaction succeeds.
func (ex *Executor) ApplyBundle(ctx BlockCtx, txs []*types.Transaction, startIndex int) (receipts []*types.Receipt, ok bool) {
	revs := ex.reverters()
	for _, r := range revs {
		r.Snapshot()
	}
	for i, tx := range txs {
		rcpt, err := ex.Apply(ctx, tx, startIndex+i)
		if err != nil || rcpt.Status != types.StatusSuccess {
			for j := len(revs) - 1; j >= 0; j-- {
				revs[j].Revert()
			}
			return nil, false
		}
		receipts = append(receipts, rcpt)
	}
	for j := len(revs) - 1; j >= 0; j-- {
		revs[j].Commit()
	}
	return receipts, true
}

// reverter is anything with snapshot/revert/commit semantics.
type reverter interface {
	Snapshot()
	Revert()
	Commit()
}

func (ex *Executor) reverters() []reverter {
	revs := []reverter{ex.Env.State}
	if ex.Env.Oracle != nil {
		revs = append(revs, ex.Env.Oracle)
	}
	if ex.Env.Lending != nil {
		for _, p := range ex.Env.Lending.Protocols() {
			revs = append(revs, p)
		}
	}
	return revs
}

// run dispatches the payload. It returns the logs emitted on success.
func (ex *Executor) run(ctx BlockCtx, tx *types.Transaction) ([]types.Log, error) {
	var logs []types.Log
	err := ex.runPayload(ctx, tx.From, &tx.Payload, tx.Value, tx.To, &logs)
	if err != nil {
		return nil, err
	}
	return logs, nil
}

func (ex *Executor) runPayload(ctx BlockCtx, from types.Address, p *types.Payload, value types.Amount, to types.Address, logs *[]types.Log) error {
	st := ex.Env.State
	switch p.Kind {
	case types.TxTransfer:
		amt := p.Amount
		if amt == 0 {
			amt = value
		}
		return st.Transfer(from, to, amt)

	case types.TxTokenTransfer:
		if err := st.TransferToken(p.Token, from, p.Recipient, p.Amount); err != nil {
			return err
		}
		*logs = append(*logs, events.Transfer{Token: p.Token, From: from, To: p.Recipient, Amount: p.Amount}.Log())
		return nil

	case types.TxSwap, types.TxMultiSwap:
		_, err := ex.runSwapPath(from, p, logs)
		return err

	case types.TxLiquidate:
		return ex.runLiquidate(from, p, logs)

	case types.TxFlashLoan:
		return ex.runFlashLoan(ctx, from, p, logs)

	case types.TxOracleUpdate:
		if ex.Env.Oracle == nil {
			return errors.New("evmlite: no oracle configured")
		}
		ex.Env.Oracle.SetPrice(p.OracleToken, p.OraclePrice)
		*logs = append(*logs, events.OracleUpdate{Oracle: ex.Env.Oracle.Addr, Token: p.OracleToken, Price: p.OraclePrice}.Log())
		return nil

	case types.TxMinerPayout:
		for _, e := range p.Payouts {
			if err := st.Transfer(from, e.To, e.Amount); err != nil {
				return err
			}
		}
		return nil

	case types.TxAddLiquidity:
		v, ok := ex.Env.Venues.ByAddr(p.Venue)
		if !ok {
			return fmt.Errorf("evmlite: unknown venue %v", p.Venue.Short())
		}
		pool := v.EnsurePool(p.TokenA, p.TokenB)
		amtA, amtB := p.AmountA, p.AmountB
		if p.TokenA != pool.TokenA { // caller order may differ from sorted order
			amtA, amtB = amtB, amtA
		}
		if err := pool.AddLiquidity(st, from, amtA, amtB); err != nil {
			return err
		}
		ra, rb := pool.Reserves(st)
		*logs = append(*logs, events.Sync{Pool: pool.Addr, ReserveA: ra, ReserveB: rb}.Log())
		return nil

	case types.TxNoop:
		return nil

	default:
		return fmt.Errorf("evmlite: unknown payload kind %v", p.Kind)
	}
}

// runSwapPath executes a (multi-hop) exact-input swap path and returns the
// final output amount.
func (ex *Executor) runSwapPath(from types.Address, p *types.Payload, logs *[]types.Log) (types.Amount, error) {
	if len(p.Hops) == 0 {
		return 0, errors.New("evmlite: swap with no hops")
	}
	st := ex.Env.State
	amt := p.AmountIn
	for i, hop := range p.Hops {
		v, ok := ex.Env.Venues.ByAddr(hop.Venue)
		if !ok {
			return 0, fmt.Errorf("evmlite: unknown venue %v", hop.Venue.Short())
		}
		pool, ok := v.Pool(hop.TokenIn, hop.TokenOut)
		if !ok {
			return 0, dex.ErrNoPool
		}
		res, err := pool.Swap(st, from, hop.TokenIn, amt, 0)
		if err != nil {
			return 0, fmt.Errorf("evmlite: hop %d: %w", i, err)
		}
		*logs = append(*logs,
			events.Transfer{Token: res.TokenIn, From: from, To: pool.Addr, Amount: res.AmountIn}.Log(),
			events.Transfer{Token: res.TokenOut, From: pool.Addr, To: from, Amount: res.AmountOut}.Log(),
			events.Swap{
				Pool: pool.Addr, Sender: from, Recipient: from,
				TokenIn: res.TokenIn, TokenOut: res.TokenOut,
				AmountIn: res.AmountIn, AmountOut: res.AmountOut,
			}.Log(),
		)
		ra, rb := pool.Reserves(st)
		*logs = append(*logs, events.Sync{Pool: pool.Addr, ReserveA: ra, ReserveB: rb}.Log())
		amt = res.AmountOut
	}
	if p.MinOut > 0 && amt < p.MinOut {
		return 0, dex.ErrSlippage
	}
	return amt, nil
}

func (ex *Executor) runLiquidate(from types.Address, p *types.Payload, logs *[]types.Log) error {
	if ex.Env.Lending == nil {
		return errors.New("evmlite: no lending registry configured")
	}
	prot, ok := ex.Env.Lending.ByAddr(p.Protocol)
	if !ok {
		return fmt.Errorf("evmlite: unknown lending protocol %v", p.Protocol.Short())
	}
	res, err := prot.Liquidate(ex.Env.State, from, p.LoanID, p.Repay)
	if err != nil {
		return err
	}
	*logs = append(*logs,
		events.Transfer{Token: res.DebtToken, From: from, To: prot.Addr, Amount: res.DebtRepaid}.Log(),
		events.Transfer{Token: res.CollateralToken, From: prot.Addr, To: from, Amount: res.CollateralOut}.Log(),
		events.Liquidation{
			Protocol: res.Protocol, Liquidator: res.Liquidator, Borrower: res.Borrower,
			DebtToken: res.DebtToken, CollateralToken: res.CollateralToken,
			DebtRepaid: res.DebtRepaid, CollateralOut: res.CollateralOut,
			Compound: res.Compound,
		}.Log(),
	)
	return nil
}

func (ex *Executor) runFlashLoan(ctx BlockCtx, from types.Address, p *types.Payload, logs *[]types.Log) error {
	if ex.Env.Lending == nil {
		return errors.New("evmlite: no lending registry configured")
	}
	prot, ok := ex.Env.Lending.ByAddr(p.Protocol)
	if !ok {
		return fmt.Errorf("evmlite: unknown lending protocol %v", p.Protocol.Short())
	}
	fee, err := prot.FlashFee(p.FlashAmount)
	if err != nil {
		return err
	}
	st := ex.Env.State
	if err := prot.FlashBorrow(st, from, p.FlashToken, p.FlashAmount); err != nil {
		return err
	}
	*logs = append(*logs, events.Transfer{Token: p.FlashToken, From: prot.Addr, To: from, Amount: p.FlashAmount}.Log())
	if p.Inner != nil {
		if err := ex.runPayload(ctx, from, p.Inner, 0, types.ZeroAddress, logs); err != nil {
			return fmt.Errorf("evmlite: flash-loan inner: %w", err)
		}
	}
	if err := prot.FlashRepay(st, from, p.FlashToken, p.FlashAmount, fee); err != nil {
		return fmt.Errorf("evmlite: flash-loan repay: %w", err)
	}
	*logs = append(*logs,
		events.Transfer{Token: p.FlashToken, From: from, To: prot.Addr, Amount: p.FlashAmount + fee}.Log(),
		events.FlashLoan{Protocol: prot.Addr, Initiator: from, Token: p.FlashToken, Amount: p.FlashAmount, Fee: fee}.Log(),
	)
	return nil
}

// QuotePath simulates a swap path against current reserves without mutating
// state, returning the final output. Searcher agents use it to size MEV
// opportunities the way real bots simulate against their local node.
func (ex *Executor) QuotePath(hops []types.SwapHop, amountIn types.Amount) (types.Amount, error) {
	st := ex.Env.State
	st.Snapshot()
	defer st.Revert()
	amt := amountIn
	// Quoting must account for hop-by-hop reserve movement, so execute the
	// transfers against a scratch holder under the snapshot.
	holder := types.DeriveAddress("evmlite:quote", 0)
	if len(hops) == 0 {
		return 0, errors.New("evmlite: empty path")
	}
	if err := st.MintToken(hops[0].TokenIn, holder, amt); err != nil {
		return 0, err
	}
	for i, hop := range hops {
		v, ok := ex.Env.Venues.ByAddr(hop.Venue)
		if !ok {
			return 0, fmt.Errorf("evmlite: unknown venue %v", hop.Venue.Short())
		}
		pool, ok := v.Pool(hop.TokenIn, hop.TokenOut)
		if !ok {
			return 0, dex.ErrNoPool
		}
		res, err := pool.Swap(st, holder, hop.TokenIn, amt, 0)
		if err != nil {
			return 0, fmt.Errorf("evmlite: quote hop %d: %w", i, err)
		}
		amt = res.AmountOut
	}
	return amt, nil
}
