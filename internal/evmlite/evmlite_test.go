package evmlite

import (
	"strings"
	"testing"

	"mevscope/internal/dex"
	"mevscope/internal/events"
	"mevscope/internal/lending"
	"mevscope/internal/state"
	"mevscope/internal/types"
)

type world struct {
	ex    *Executor
	st    *state.State
	uni   *dex.Venue
	sushi *dex.Venue
	aave  *lending.Protocol
	weth  types.Address
	dai   types.Address
	miner types.Address
}

func newWorld(t *testing.T) *world {
	t.Helper()
	st := state.New()
	weth := st.RegisterToken("WETH", 18)
	dai := st.RegisterToken("DAI", 18)

	venues := dex.NewRegistry()
	uni := dex.NewVenue("UniswapV2", 30)
	sushi := dex.NewVenue("SushiSwap", 30)
	venues.Add(uni)
	venues.Add(sushi)

	lp := types.DeriveAddress("lp", 0)
	st.MintToken(weth, lp, 4_000*types.Ether)
	st.MintToken(dai, lp, 8_000_000*types.Ether)
	if err := uni.EnsurePool(weth, dai).AddLiquidity(st, lp, 2_000*types.Ether, 4_000_000*types.Ether); err != nil {
		t.Fatal(err)
	}
	if err := sushi.EnsurePool(weth, dai).AddLiquidity(st, lp, 2_000*types.Ether, 4_000_000*types.Ether); err != nil {
		t.Fatal(err)
	}

	oracle := lending.NewOracle("feed")
	oracle.SetPrice(weth, types.Ether)
	oracle.SetPrice(dai, types.Ether/2000)
	lreg := lending.NewRegistry()
	aave := lending.New(lending.Config{Name: "AaveV2", LiqThresholdBps: 8000, LiqBonusBps: 500, CloseFactorBps: 5000, FlashLoanFeeBps: 9}, oracle)
	lreg.Add(aave)
	if err := aave.SeedReserves(st, dai, 50_000_000*types.Ether); err != nil {
		t.Fatal(err)
	}
	if err := aave.SeedReserves(st, weth, 10_000*types.Ether); err != nil {
		t.Fatal(err)
	}

	ex := New(Env{State: st, Venues: venues, Lending: lreg, Oracle: oracle, WETH: weth})
	return &world{ex: ex, st: st, uni: uni, sushi: sushi, aave: aave, weth: weth, dai: dai, miner: types.DeriveAddress("miner", 0)}
}

func (w *world) ctx() BlockCtx { return BlockCtx{Number: 1, Miner: w.miner} }

func (w *world) fund(a types.Address, eth types.Amount) {
	w.st.Mint(a, eth)
}

func countLogs(logs []types.Log, sig types.Hash) int {
	n := 0
	for _, l := range logs {
		if len(l.Topics) > 0 && l.Topics[0] == sig {
			n++
		}
	}
	return n
}

func TestPlainTransfer(t *testing.T) {
	w := newWorld(t)
	alice := types.DeriveAddress("alice", 0)
	bob := types.DeriveAddress("bob", 0)
	w.fund(alice, 10*types.Ether)
	tx := &types.Transaction{
		From: alice, To: bob, Value: types.Ether,
		GasLimit: GasTransfer, GasPrice: 50 * types.Gwei,
		Payload: types.Payload{Kind: types.TxTransfer},
	}
	rcpt, err := w.ex.Apply(w.ctx(), tx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.Status != types.StatusSuccess {
		t.Fatal("transfer failed")
	}
	if w.st.Balance(bob) != types.Ether {
		t.Error("value not delivered")
	}
	wantFee := types.Amount(GasTransfer) * 50 * types.Gwei
	if w.st.Balance(alice) != 10*types.Ether-types.Ether-wantFee {
		t.Errorf("sender balance = %v", w.st.Balance(alice))
	}
	if w.st.Balance(w.miner) != wantFee {
		t.Error("miner should earn the whole legacy fee")
	}
}

func TestValidateRejections(t *testing.T) {
	w := newWorld(t)
	alice := types.DeriveAddress("alice", 0)
	w.fund(alice, types.Ether)
	base := &types.Transaction{
		From: alice, To: alice, GasLimit: GasTransfer, GasPrice: 50 * types.Gwei,
		Payload: types.Payload{Kind: types.TxTransfer, Amount: 1},
	}
	// gas limit too low
	lowGas := *base
	lowGas.GasLimit = 1000
	if err := w.ex.Validate(&lowGas, 0); err == nil || !strings.Contains(err.Error(), "gas limit") {
		t.Errorf("lowGas: %v", err)
	}
	// fee cap below base fee (post-London)
	lowCap := *base
	lowCap.GasPrice = 0
	lowCap.FeeCap, lowCap.TipCap = 10*types.Gwei, types.Gwei
	if err := w.ex.Validate(&lowCap, 30*types.Gwei); err == nil || !strings.Contains(err.Error(), "fee cap") {
		t.Errorf("lowCap: %v", err)
	}
	// cannot pay
	broke := *base
	broke.From = types.DeriveAddress("broke", 0)
	if err := w.ex.Validate(&broke, 0); err == nil || !strings.Contains(err.Error(), "cover gas fee") {
		t.Errorf("broke: %v", err)
	}
	// Apply refuses invalid txs outright.
	if _, err := w.ex.Apply(w.ctx(), &broke, 0); err == nil {
		t.Error("Apply should reject invalid tx")
	}
}

func TestLondonBurnsBaseFee(t *testing.T) {
	w := newWorld(t)
	alice := types.DeriveAddress("alice", 0)
	w.fund(alice, 10*types.Ether)
	tx := &types.Transaction{
		From: alice, To: alice, GasLimit: GasTransfer,
		FeeCap: 100 * types.Gwei, TipCap: 2 * types.Gwei,
		Payload: types.Payload{Kind: types.TxTransfer, Amount: 1},
	}
	ctx := BlockCtx{Number: 1, BaseFee: 30 * types.Gwei, Miner: w.miner}
	total := w.st.TotalEther()
	rcpt, err := w.ex.Apply(ctx, tx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.EffectiveGasPrice != 32*types.Gwei {
		t.Errorf("effective price = %v", rcpt.EffectiveGasPrice)
	}
	wantTip := types.Amount(GasTransfer) * 2 * types.Gwei
	if w.st.Balance(w.miner) != wantTip {
		t.Errorf("miner tip = %v want %v", w.st.Balance(w.miner), wantTip)
	}
	wantBurn := types.Amount(GasTransfer) * 30 * types.Gwei
	if got := total - w.st.TotalEther(); got != wantBurn {
		t.Errorf("burned = %v want %v", got, wantBurn)
	}
}

func TestTokenTransferEmitsLog(t *testing.T) {
	w := newWorld(t)
	alice := types.DeriveAddress("alice", 0)
	bob := types.DeriveAddress("bob", 0)
	w.fund(alice, types.Ether)
	w.st.MintToken(w.dai, alice, 500)
	tx := &types.Transaction{
		From: alice, GasLimit: GasTokenTransfer, GasPrice: types.Gwei,
		Payload: types.Payload{Kind: types.TxTokenTransfer, Token: w.dai, Recipient: bob, Amount: 500},
	}
	rcpt, err := w.ex.Apply(w.ctx(), tx, 0)
	if err != nil || rcpt.Status != types.StatusSuccess {
		t.Fatalf("apply: %v %v", rcpt, err)
	}
	if countLogs(rcpt.Logs, events.SigTransfer) != 1 {
		t.Error("want one Transfer log")
	}
	tr, ok := events.DecodeTransfer(rcpt.Logs[0])
	if !ok || tr.Amount != 500 || tr.To != bob {
		t.Errorf("decoded = %+v", tr)
	}
}

func TestSwapEmitsFullEventSet(t *testing.T) {
	w := newWorld(t)
	alice := types.DeriveAddress("alice", 0)
	w.fund(alice, types.Ether)
	w.st.MintToken(w.weth, alice, 10*types.Ether)
	tx := &types.Transaction{
		From: alice, GasLimit: GasSwapBase + GasSwapPerHop, GasPrice: types.Gwei,
		Payload: types.Payload{
			Kind:     types.TxSwap,
			Hops:     []types.SwapHop{{Venue: w.uni.Addr, TokenIn: w.weth, TokenOut: w.dai}},
			AmountIn: types.Ether,
		},
	}
	rcpt, err := w.ex.Apply(w.ctx(), tx, 0)
	if err != nil || rcpt.Status != types.StatusSuccess {
		t.Fatalf("apply: %+v %v", rcpt, err)
	}
	if countLogs(rcpt.Logs, events.SigSwap) != 1 || countLogs(rcpt.Logs, events.SigTransfer) != 2 || countLogs(rcpt.Logs, events.SigSync) != 1 {
		t.Errorf("log mix wrong: %d logs", len(rcpt.Logs))
	}
	if w.st.TokenBalance(w.dai, alice) == 0 {
		t.Error("swap output missing")
	}
}

func TestSwapSlippageRevertsEverything(t *testing.T) {
	w := newWorld(t)
	alice := types.DeriveAddress("alice", 0)
	w.fund(alice, types.Ether)
	w.st.MintToken(w.weth, alice, 10*types.Ether)
	tx := &types.Transaction{
		From: alice, GasLimit: GasSwapBase + GasSwapPerHop, GasPrice: types.Gwei,
		CoinbaseTip: types.Milliether,
		Payload: types.Payload{
			Kind:     types.TxSwap,
			Hops:     []types.SwapHop{{Venue: w.uni.Addr, TokenIn: w.weth, TokenOut: w.dai}},
			AmountIn: types.Ether,
			MinOut:   1_000_000 * types.Ether, // impossible
		},
	}
	minerBefore := w.st.Balance(w.miner)
	rcpt, err := w.ex.Apply(w.ctx(), tx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.Status != types.StatusFailed {
		t.Fatal("should fail on slippage")
	}
	if len(rcpt.Logs) != 0 {
		t.Error("failed tx must emit no logs")
	}
	if w.st.TokenBalance(w.weth, alice) != 10*types.Ether {
		t.Error("tokens must be restored")
	}
	if rcpt.CoinbaseTransfer != 0 {
		t.Error("coinbase tip must not land on failure")
	}
	// Miner still collects the gas fee but not the tip.
	wantFee := types.Amount(GasSwapBase+GasSwapPerHop) * types.Gwei
	if w.st.Balance(w.miner)-minerBefore != wantFee {
		t.Errorf("miner delta = %v want %v", w.st.Balance(w.miner)-minerBefore, wantFee)
	}
}

func TestMultiSwapArbitrageLoop(t *testing.T) {
	w := newWorld(t)
	// Skew sushi so WETH is cheap there: sell lots of DAI into sushi first.
	whale := types.DeriveAddress("whale", 0)
	w.st.MintToken(w.dai, whale, 400_000*types.Ether)
	pool, _ := w.sushi.Pool(w.weth, w.dai)
	if _, err := pool.Swap(w.st, whale, w.dai, 400_000*types.Ether, 0); err != nil {
		t.Fatal(err)
	}

	arb := types.DeriveAddress("arb", 0)
	w.fund(arb, types.Ether)
	w.st.MintToken(w.weth, arb, 10*types.Ether)
	hops := []types.SwapHop{
		{Venue: w.sushi.Addr, TokenIn: w.weth, TokenOut: w.dai}, // sell WETH where expensive
		{Venue: w.uni.Addr, TokenIn: w.dai, TokenOut: w.weth},   // buy back where cheap
	}
	quote, err := w.ex.QuotePath(hops, 5*types.Ether)
	if err != nil {
		t.Fatal(err)
	}
	if quote <= 5*types.Ether {
		t.Fatalf("arb should quote profitable: %v", quote)
	}
	tx := &types.Transaction{
		From: arb, GasLimit: GasSwapBase + 2*GasSwapPerHop, GasPrice: types.Gwei,
		Payload: types.Payload{Kind: types.TxMultiSwap, Hops: hops, AmountIn: 5 * types.Ether},
	}
	rcpt, err := w.ex.Apply(w.ctx(), tx, 0)
	if err != nil || rcpt.Status != types.StatusSuccess {
		t.Fatalf("apply: %+v %v", rcpt, err)
	}
	if got := w.st.TokenBalance(w.weth, arb); got <= 10*types.Ether {
		t.Errorf("arb balance after = %v", got)
	}
	if countLogs(rcpt.Logs, events.SigSwap) != 2 {
		t.Error("want two Swap logs")
	}
}

func TestLiquidateViaExecutor(t *testing.T) {
	w := newWorld(t)
	borrower := types.DeriveAddress("borrower", 0)
	w.st.MintToken(w.weth, borrower, 10*types.Ether)
	loan, err := w.aave.OpenLoan(w.st, borrower, w.weth, 10*types.Ether, w.dai, 14_000*types.Ether)
	if err != nil {
		t.Fatal(err)
	}
	w.ex.Env.Oracle.SetPrice(w.weth, types.FromEther(0.8))

	liq := types.DeriveAddress("liq", 0)
	w.fund(liq, types.Ether)
	w.st.MintToken(w.dai, liq, 7_000*types.Ether)
	tx := &types.Transaction{
		From: liq, GasLimit: GasLiquidate, GasPrice: types.Gwei,
		Payload: types.Payload{Kind: types.TxLiquidate, Protocol: w.aave.Addr, LoanID: loan.ID, Repay: 7_000 * types.Ether},
	}
	rcpt, err := w.ex.Apply(w.ctx(), tx, 0)
	if err != nil || rcpt.Status != types.StatusSuccess {
		t.Fatalf("apply: %+v %v", rcpt, err)
	}
	if countLogs(rcpt.Logs, events.SigLiquidationCall) != 1 {
		t.Error("want LiquidationCall log")
	}
	if w.st.TokenBalance(w.weth, liq) == 0 {
		t.Error("collateral not received")
	}
}

func TestFlashLoanArbitrage(t *testing.T) {
	w := newWorld(t)
	// Create price gap as before.
	whale := types.DeriveAddress("whale", 0)
	w.st.MintToken(w.dai, whale, 400_000*types.Ether)
	pool, _ := w.sushi.Pool(w.weth, w.dai)
	if _, err := pool.Swap(w.st, whale, w.dai, 400_000*types.Ether, 0); err != nil {
		t.Fatal(err)
	}
	arb := types.DeriveAddress("flasharb", 0)
	w.fund(arb, types.Ether) // only gas money — capital is flash-borrowed
	hops := []types.SwapHop{
		{Venue: w.uni.Addr, TokenIn: w.dai, TokenOut: w.weth},   // buy WETH cheap
		{Venue: w.sushi.Addr, TokenIn: w.weth, TokenOut: w.dai}, // sell expensive
	}
	tx := &types.Transaction{
		From: arb, GasLimit: GasFlashLoanBase + GasSwapBase + 2*GasSwapPerHop, GasPrice: types.Gwei,
		Payload: types.Payload{
			Kind:        types.TxFlashLoan,
			Protocol:    w.aave.Addr,
			FlashToken:  w.dai,
			FlashAmount: 100_000 * types.Ether,
			Inner:       &types.Payload{Kind: types.TxMultiSwap, Hops: hops, AmountIn: 100_000 * types.Ether},
		},
	}
	rcpt, err := w.ex.Apply(w.ctx(), tx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.Status != types.StatusSuccess {
		t.Fatal("flash arb should succeed")
	}
	if countLogs(rcpt.Logs, events.SigFlashLoan) != 1 {
		t.Error("want FlashLoan log")
	}
	if w.st.TokenBalance(w.dai, arb) <= 0 {
		t.Error("flash arb should leave profit")
	}
}

func TestFlashLoanUnprofitableReverts(t *testing.T) {
	w := newWorld(t)
	arb := types.DeriveAddress("flasharb", 0)
	w.fund(arb, types.Ether)
	// Balanced pools: round trip loses the fee → cannot repay → revert.
	hops := []types.SwapHop{
		{Venue: w.sushi.Addr, TokenIn: w.dai, TokenOut: w.weth},
		{Venue: w.uni.Addr, TokenIn: w.weth, TokenOut: w.dai},
	}
	tx := &types.Transaction{
		From: arb, GasLimit: GasFlashLoanBase + GasSwapBase + 2*GasSwapPerHop, GasPrice: types.Gwei,
		Payload: types.Payload{
			Kind:        types.TxFlashLoan,
			Protocol:    w.aave.Addr,
			FlashToken:  w.dai,
			FlashAmount: 100_000 * types.Ether,
			Inner:       &types.Payload{Kind: types.TxMultiSwap, Hops: hops, AmountIn: 100_000 * types.Ether},
		},
	}
	protBefore := w.st.TokenBalance(w.dai, w.aave.Addr)
	uniPool, _ := w.uni.Pool(w.weth, w.dai)
	ra0, rb0 := uniPool.Reserves(w.st)
	rcpt, err := w.ex.Apply(w.ctx(), tx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.Status != types.StatusFailed {
		t.Fatal("unprofitable flash loan must fail")
	}
	if w.st.TokenBalance(w.dai, w.aave.Addr) != protBefore {
		t.Error("protocol reserves must be restored")
	}
	ra1, rb1 := uniPool.Reserves(w.st)
	if ra0 != ra1 || rb0 != rb1 {
		t.Error("pool reserves must be restored")
	}
}

func TestOracleUpdateTx(t *testing.T) {
	w := newWorld(t)
	admin := types.DeriveAddress("admin", 0)
	w.fund(admin, types.Ether)
	tx := &types.Transaction{
		From: admin, GasLimit: GasOracleUpdate, GasPrice: types.Gwei,
		Payload: types.Payload{Kind: types.TxOracleUpdate, OracleToken: w.weth, OraclePrice: types.FromEther(0.9)},
	}
	rcpt, err := w.ex.Apply(w.ctx(), tx, 0)
	if err != nil || rcpt.Status != types.StatusSuccess {
		t.Fatalf("apply: %+v %v", rcpt, err)
	}
	if p, _ := w.ex.Env.Oracle.Price(w.weth); p != types.FromEther(0.9) {
		t.Error("oracle not updated")
	}
	if countLogs(rcpt.Logs, events.SigOracleUpdate) != 1 {
		t.Error("want oracle log")
	}
}

func TestMinerPayoutBatch(t *testing.T) {
	w := newWorld(t)
	poolOp := types.DeriveAddress("pool-op", 0)
	w.fund(poolOp, 100*types.Ether)
	entries := make([]types.PayoutEntry, 10)
	for i := range entries {
		entries[i] = types.PayoutEntry{To: types.DeriveAddress("worker", uint64(i)), Amount: types.Ether}
	}
	tx := &types.Transaction{
		From: poolOp, GasLimit: GasPayoutPer * 10, GasPrice: types.Gwei,
		Payload: types.Payload{Kind: types.TxMinerPayout, Payouts: entries},
	}
	rcpt, err := w.ex.Apply(w.ctx(), tx, 0)
	if err != nil || rcpt.Status != types.StatusSuccess {
		t.Fatalf("apply: %+v %v", rcpt, err)
	}
	for i := range entries {
		if w.st.Balance(types.DeriveAddress("worker", uint64(i))) != types.Ether {
			t.Fatalf("worker %d unpaid", i)
		}
	}
}

func TestGasForSchedule(t *testing.T) {
	if GasFor(&types.Payload{Kind: types.TxTransfer}) != GasTransfer {
		t.Error("transfer gas")
	}
	p := types.Payload{Kind: types.TxMultiSwap, Hops: make([]types.SwapHop, 3)}
	if GasFor(&p) != GasSwapBase+3*GasSwapPerHop {
		t.Error("multiswap gas")
	}
	fl := types.Payload{Kind: types.TxFlashLoan, Inner: &p}
	if GasFor(&fl) != GasFlashLoanBase+GasSwapBase+3*GasSwapPerHop {
		t.Error("flash loan gas should include inner")
	}
	pay := types.Payload{Kind: types.TxMinerPayout, Payouts: make([]types.PayoutEntry, 7)}
	if GasFor(&pay) != 7*GasPayoutPer {
		t.Error("payout gas")
	}
}

func TestQuoteDoesNotMutate(t *testing.T) {
	w := newWorld(t)
	pool, _ := w.uni.Pool(w.weth, w.dai)
	ra0, rb0 := pool.Reserves(w.st)
	hops := []types.SwapHop{{Venue: w.uni.Addr, TokenIn: w.weth, TokenOut: w.dai}}
	if _, err := w.ex.QuotePath(hops, types.Ether); err != nil {
		t.Fatal(err)
	}
	ra1, rb1 := pool.Reserves(w.st)
	if ra0 != ra1 || rb0 != rb1 {
		t.Error("quote must not move reserves")
	}
}

func TestEtherConservationAcrossTxs(t *testing.T) {
	w := newWorld(t)
	alice := types.DeriveAddress("alice", 0)
	w.fund(alice, 100*types.Ether)
	w.st.MintToken(w.weth, alice, 100*types.Ether)
	total := w.st.TotalEther()
	ctx := w.ctx() // pre-London: no burn, so total is conserved
	for i := 0; i < 20; i++ {
		tx := &types.Transaction{
			Nonce: uint64(i), From: alice, GasLimit: GasSwapBase + GasSwapPerHop, GasPrice: types.Gwei,
			Payload: types.Payload{
				Kind:     types.TxSwap,
				Hops:     []types.SwapHop{{Venue: w.uni.Addr, TokenIn: w.weth, TokenOut: w.dai}},
				AmountIn: types.Ether,
			},
		}
		if _, err := w.ex.Apply(ctx, tx, i); err != nil {
			t.Fatal(err)
		}
	}
	if w.st.TotalEther() != total {
		t.Errorf("ether not conserved: %v -> %v", total, w.st.TotalEther())
	}
}
