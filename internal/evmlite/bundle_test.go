package evmlite

import (
	"testing"

	"mevscope/internal/types"
)

func TestApplyBundleAtomicSuccess(t *testing.T) {
	w := newWorld(t)
	alice := types.DeriveAddress("alice", 0)
	bob := types.DeriveAddress("bob", 0)
	w.fund(alice, 10*types.Ether)
	mk := func(nonce uint64, amt types.Amount) *types.Transaction {
		return &types.Transaction{
			Nonce: nonce, From: alice, To: bob,
			GasLimit: GasTransfer, GasPrice: types.Gwei,
			Payload: types.Payload{Kind: types.TxTransfer, Amount: amt},
		}
	}
	receipts, ok := w.ex.ApplyBundle(w.ctx(), []*types.Transaction{mk(1, types.Ether), mk(2, 2*types.Ether)}, 5)
	if !ok || len(receipts) != 2 {
		t.Fatalf("bundle: ok=%v receipts=%d", ok, len(receipts))
	}
	if receipts[0].TxIndex != 5 || receipts[1].TxIndex != 6 {
		t.Error("indexes should start at startIndex")
	}
	if w.st.Balance(bob) != 3*types.Ether {
		t.Error("both transfers should land")
	}
}

func TestApplyBundleAtomicRevert(t *testing.T) {
	w := newWorld(t)
	alice := types.DeriveAddress("alice", 0)
	bob := types.DeriveAddress("bob", 0)
	w.fund(alice, 10*types.Ether)
	good := &types.Transaction{
		Nonce: 1, From: alice, To: bob,
		GasLimit: GasTransfer, GasPrice: types.Gwei,
		Payload: types.Payload{Kind: types.TxTransfer, Amount: types.Ether},
	}
	// Second tx is invalid (sender cannot pay): the whole bundle reverts,
	// including the first transfer and its fees.
	bad := &types.Transaction{
		Nonce: 1, From: types.DeriveAddress("broke", 0), To: bob,
		GasLimit: GasTransfer, GasPrice: types.Gwei,
		Payload: types.Payload{Kind: types.TxTransfer, Amount: 1},
	}
	before := w.st.Balance(alice)
	minerBefore := w.st.Balance(w.miner)
	receipts, ok := w.ex.ApplyBundle(w.ctx(), []*types.Transaction{good, bad}, 0)
	if ok || receipts != nil {
		t.Fatal("bundle with invalid tx must fail atomically")
	}
	if w.st.Balance(bob) != 0 {
		t.Error("first transfer must be rolled back")
	}
	if w.st.Balance(alice) != before || w.st.Balance(w.miner) != minerBefore {
		t.Error("fees must be rolled back too")
	}
}

func TestApplyBundleRevertsOnFailedTx(t *testing.T) {
	w := newWorld(t)
	alice := types.DeriveAddress("alice", 0)
	w.fund(alice, 10*types.Ether)
	w.st.MintToken(w.weth, alice, 10*types.Ether)
	failing := &types.Transaction{
		Nonce: 1, From: alice, GasLimit: GasSwapBase + GasSwapPerHop, GasPrice: types.Gwei,
		Payload: types.Payload{
			Kind:     types.TxSwap,
			Hops:     []types.SwapHop{{Venue: w.uni.Addr, TokenIn: w.weth, TokenOut: w.dai}},
			AmountIn: types.Ether, MinOut: 1 << 60, // reverts
		},
	}
	if _, ok := w.ex.ApplyBundle(w.ctx(), []*types.Transaction{failing}, 0); ok {
		t.Error("bundle containing a reverting tx must be rejected")
	}
	if w.st.TokenBalance(w.weth, alice) != 10*types.Ether {
		t.Error("state must be untouched")
	}
}
