// Package flashbots models the Flashbots ecosystem as described in the
// paper's §2.5: searchers submit immutable, atomic transaction bundles to
// a relay; the relay forwards them to authorized miners; miners include
// the most profitable bundles at the top of their blocks and are paid via
// direct coinbase transfers.
//
// The relay also publishes the "blocks API" (blocks.flashbots.net): the
// public record of every mined Flashbots block with per-transaction bundle
// labels — the dataset the paper downloads in §3.3. The measurement
// pipeline reads only this public API, never relay internals.
package flashbots

import (
	"errors"
	"fmt"
	"sort"

	"mevscope/internal/types"
)

// BundleType labels the three observed bundle flavours (§2.5).
type BundleType uint8

// Bundle types.
const (
	// TypeFlashbots is the standard searcher dataflow: MEV extraction or
	// MEV-protected order-dependent trades.
	TypeFlashbots BundleType = iota
	// TypeRogue marks transactions introduced by the miner itself and not
	// broadcast even within Flashbots.
	TypeRogue
	// TypeMinerPayout wraps mining-pool payout batches.
	TypeMinerPayout
)

// String names the bundle type using the paper's vocabulary.
func (t BundleType) String() string {
	switch t {
	case TypeFlashbots:
		return "flashbots"
	case TypeRogue:
		return "rogue"
	case TypeMinerPayout:
		return "miner-payout"
	default:
		return "unknown"
	}
}

// Bundle is an immutable, atomic, ordered set of transactions. Either all
// of its transactions are included in order, or none are.
type Bundle struct {
	ID       uint64
	Searcher types.Address
	Type     BundleType
	Txs      []*types.Transaction
	// TargetBlock restricts inclusion to one height; zero means any.
	TargetBlock uint64
	// received orders the auction deterministically.
	received uint64
}

// TipTotal sums the direct coinbase payments carried by the bundle.
func (b *Bundle) TipTotal() types.Amount {
	var sum types.Amount
	for _, tx := range b.Txs {
		sum += tx.CoinbaseTip
	}
	return sum
}

// GasTotal sums the gas limits of the bundle's transactions.
func (b *Bundle) GasTotal() uint64 {
	var sum uint64
	for _, tx := range b.Txs {
		sum += tx.GasLimit
	}
	return sum
}

// Score is the sealed-bid auction ranking: direct tips plus priced gas,
// per unit of gas — an approximation of MEV-geth's bundle scoring.
func (b *Bundle) Score(baseFee types.Amount) float64 {
	gas := b.GasTotal()
	if gas == 0 {
		return 0
	}
	var value types.Amount
	for _, tx := range b.Txs {
		value += tx.CoinbaseTip + types.Amount(tx.GasLimit)*tx.EffectiveTip(baseFee)
	}
	return float64(value) / float64(gas)
}

// Errors returned by relay operations.
var (
	ErrEmptyBundle   = errors.New("flashbots: bundle has no transactions")
	ErrNotAuthorized = errors.New("flashbots: miner not authorized")
	ErrBanned        = errors.New("flashbots: participant is banned")
)

// TxRecord is one row of the public blocks API.
type TxRecord struct {
	Hash             types.Hash
	EOA              types.Address // the searcher/submitter account
	BundleID         uint64
	BundleIndex      int // position of the bundle within the block
	BundleType       BundleType
	GasUsed          uint64
	GasPrice         types.Amount
	CoinbaseTransfer types.Amount
}

// BlockRecord is the public API's per-block entry.
type BlockRecord struct {
	BlockNumber uint64
	Miner       types.Address
	// MinerReward is the total bundle value delivered to the miner
	// (coinbase transfers plus gas tips from bundle transactions).
	MinerReward types.Amount
	Txs         []TxRecord
}

// BundleCount returns the number of distinct bundles in the block.
func (r *BlockRecord) BundleCount() int {
	seen := map[uint64]bool{}
	for _, tx := range r.Txs {
		seen[tx.BundleID] = true
	}
	return len(seen)
}

// Relay is the single operational Flashbots relay: DoS protection in front
// of the miners, bundle queue, authorization list and the public API.
type Relay struct {
	nextID     uint64
	nextSeq    uint64
	queue      map[uint64]*Bundle
	authorized map[types.Address]bool
	banned     map[types.Address]bool
	records    []BlockRecord
	byNumber   map[uint64]int // block number → records index
}

// NewRelay creates an empty relay.
func NewRelay() *Relay {
	return &Relay{
		nextID:     1,
		queue:      make(map[uint64]*Bundle),
		authorized: make(map[types.Address]bool),
		banned:     make(map[types.Address]bool),
		byNumber:   make(map[uint64]int),
	}
}

// AuthorizeMiner admits a miner after the (off-band) Flashbots review.
func (r *Relay) AuthorizeMiner(m types.Address) error {
	if r.banned[m] {
		return ErrBanned
	}
	r.authorized[m] = true
	return nil
}

// IsAuthorized reports whether the miner may receive bundles.
func (r *Relay) IsAuthorized(m types.Address) bool { return r.authorized[m] && !r.banned[m] }

// Ban permanently revokes a participant (the paper: equivocating on a
// bundle leads to a permanent ban).
func (r *Relay) Ban(m types.Address) {
	r.banned[m] = true
	delete(r.authorized, m)
}

// SubmitBundle accepts a bundle from a searcher and returns its ID.
func (r *Relay) SubmitBundle(b *Bundle) (uint64, error) {
	if len(b.Txs) == 0 {
		return 0, ErrEmptyBundle
	}
	if r.banned[b.Searcher] {
		return 0, ErrBanned
	}
	b.ID = r.nextID
	r.nextID++
	b.received = r.nextSeq
	r.nextSeq++
	r.queue[b.ID] = b
	return b.ID, nil
}

// PendingFor returns the bundles available to an authorized miner for the
// given height, best score first. Unauthorized miners see nothing.
func (r *Relay) PendingFor(miner types.Address, blockNumber uint64, baseFee types.Amount) ([]*Bundle, error) {
	if !r.IsAuthorized(miner) {
		return nil, ErrNotAuthorized
	}
	var out []*Bundle
	for _, b := range r.queue {
		if b.TargetBlock == 0 || b.TargetBlock == blockNumber {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].Score(baseFee), out[j].Score(baseFee)
		if si != sj {
			return si > sj
		}
		return out[i].received < out[j].received
	})
	return out, nil
}

// QueueLen is the number of bundles waiting at the relay.
func (r *Relay) QueueLen() int { return len(r.queue) }

// IncludedBundle reports one bundle mined into a block, with the receipts
// the block producer generated for its transactions.
type IncludedBundle struct {
	Bundle   *Bundle
	Receipts []*types.Receipt
}

// RecordBlock registers a mined Flashbots block: included bundles leave
// the queue, stale targeted bundles are dropped, and the public API gains
// a BlockRecord. Miners call this after sealing.
func (r *Relay) RecordBlock(block *types.Block, included []IncludedBundle) {
	rec := BlockRecord{BlockNumber: block.Header.Number, Miner: block.Header.Miner}
	for bi, inc := range included {
		delete(r.queue, inc.Bundle.ID)
		for ti, tx := range inc.Bundle.Txs {
			var rcpt *types.Receipt
			if ti < len(inc.Receipts) {
				rcpt = inc.Receipts[ti]
			}
			txRec := TxRecord{
				Hash:        tx.Hash(),
				EOA:         tx.From,
				BundleID:    inc.Bundle.ID,
				BundleIndex: bi,
				BundleType:  inc.Bundle.Type,
			}
			if rcpt != nil {
				txRec.GasUsed = rcpt.GasUsed
				txRec.GasPrice = rcpt.EffectiveGasPrice
				txRec.CoinbaseTransfer = rcpt.CoinbaseTransfer
				rec.MinerReward += rcpt.CoinbaseTransfer + types.Amount(rcpt.GasUsed)*tx.EffectiveTip(block.Header.BaseFee)
			}
			rec.Txs = append(rec.Txs, txRec)
		}
	}
	// Drop bundles that targeted this (now past) height.
	for id, b := range r.queue {
		if b.TargetBlock != 0 && b.TargetBlock <= block.Header.Number {
			delete(r.queue, id)
		}
	}
	if len(included) > 0 {
		r.byNumber[rec.BlockNumber] = len(r.records)
		r.records = append(r.records, rec)
	}
}

// Blocks returns the full public blocks API dataset (ascending height) —
// what the paper downloaded "until block 14,444,725".
func (r *Relay) Blocks() []BlockRecord {
	out := make([]BlockRecord, len(r.records))
	copy(out, r.records)
	// Stable: records are appended in seal order, so equal heights (if a
	// relay ever reported one twice) keep a deterministic relative order.
	sort.SliceStable(out, func(i, j int) bool { return out[i].BlockNumber < out[j].BlockNumber })
	return out
}

// BlockByNumber returns the API record for one height.
func (r *Relay) BlockByNumber(n uint64) (BlockRecord, bool) {
	i, ok := r.byNumber[n]
	if !ok {
		return BlockRecord{}, false
	}
	return r.records[i], true
}

// IsFlashbotsBlock reports whether the height carried at least one bundle.
func (r *Relay) IsFlashbotsBlock(n uint64) bool {
	_, ok := r.byNumber[n]
	return ok
}

// FlashbotsTxSet builds the hash set of every transaction that reached the
// chain inside a Flashbots bundle — how the paper marks "Flashbots
// transactions" in its analysis (§3.3).
func (r *Relay) FlashbotsTxSet() map[types.Hash]BundleType {
	out := make(map[types.Hash]BundleType)
	for _, rec := range r.records {
		for _, tx := range rec.Txs {
			out[tx.Hash] = tx.BundleType
		}
	}
	return out
}

// String renders a bundle compactly for logs.
func (b *Bundle) String() string {
	return fmt.Sprintf("bundle{id=%d type=%s txs=%d tip=%v}", b.ID, b.Type, len(b.Txs), b.TipTotal())
}

// VerifyInclusion checks the core Flashbots invariant (§2.5): a miner that
// chose to mine a bundle "cannot in any way modify that bundle" — every
// transaction must appear in the block, in the bundle's relative order.
// On violation the miner is permanently banned and false is returned.
func (r *Relay) VerifyInclusion(block *types.Block, b *Bundle) bool {
	pos := -1
	for _, tx := range b.Txs {
		i := block.TxIndex(tx.Hash())
		if i < 0 || i <= pos {
			r.Ban(block.Header.Miner)
			return false
		}
		pos = i
	}
	return true
}
