package flashbots

import (
	"testing"

	"mevscope/internal/types"
)

func addr(i uint64) types.Address { return types.DeriveAddress("fb", i) }

func mkTx(n uint64, tip types.Amount) *types.Transaction {
	return &types.Transaction{Nonce: n, From: addr(100), GasLimit: 100_000, GasPrice: types.Gwei, CoinbaseTip: tip}
}

func TestBundleTypeString(t *testing.T) {
	if TypeFlashbots.String() != "flashbots" || TypeRogue.String() != "rogue" || TypeMinerPayout.String() != "miner-payout" {
		t.Error("names")
	}
	if BundleType(99).String() != "unknown" {
		t.Error("unknown")
	}
}

func TestBundleAggregates(t *testing.T) {
	b := &Bundle{Txs: []*types.Transaction{mkTx(1, types.Ether), mkTx(2, 2*types.Ether)}}
	if b.TipTotal() != 3*types.Ether {
		t.Error("TipTotal")
	}
	if b.GasTotal() != 200_000 {
		t.Error("GasTotal")
	}
	if b.Score(0) <= 0 {
		t.Error("score should be positive")
	}
	empty := &Bundle{}
	if empty.Score(0) != 0 {
		t.Error("empty bundle score")
	}
}

func TestScoreOrdersByTip(t *testing.T) {
	lo := &Bundle{Txs: []*types.Transaction{mkTx(1, types.Milliether)}}
	hi := &Bundle{Txs: []*types.Transaction{mkTx(2, types.Ether)}}
	if hi.Score(0) <= lo.Score(0) {
		t.Error("bigger tip should score higher")
	}
}

func TestAuthorization(t *testing.T) {
	r := NewRelay()
	m := addr(1)
	if r.IsAuthorized(m) {
		t.Error("unauthorized by default")
	}
	if err := r.AuthorizeMiner(m); err != nil {
		t.Fatal(err)
	}
	if !r.IsAuthorized(m) {
		t.Error("authorized after review")
	}
	r.Ban(m)
	if r.IsAuthorized(m) {
		t.Error("banned miner must lose access")
	}
	if err := r.AuthorizeMiner(m); err != ErrBanned {
		t.Errorf("re-authorizing banned: %v", err)
	}
}

func TestSubmitBundleValidation(t *testing.T) {
	r := NewRelay()
	if _, err := r.SubmitBundle(&Bundle{Searcher: addr(1)}); err != ErrEmptyBundle {
		t.Errorf("empty: %v", err)
	}
	r.Ban(addr(2))
	if _, err := r.SubmitBundle(&Bundle{Searcher: addr(2), Txs: []*types.Transaction{mkTx(1, 0)}}); err != ErrBanned {
		t.Errorf("banned searcher: %v", err)
	}
	id, err := r.SubmitBundle(&Bundle{Searcher: addr(1), Txs: []*types.Transaction{mkTx(1, 0)}})
	if err != nil || id == 0 {
		t.Errorf("submit: id=%d err=%v", id, err)
	}
	if r.QueueLen() != 1 {
		t.Error("queue len")
	}
}

func TestPendingForRequiresAuth(t *testing.T) {
	r := NewRelay()
	if _, err := r.PendingFor(addr(1), 100, 0); err != ErrNotAuthorized {
		t.Errorf("err = %v", err)
	}
}

func TestPendingForOrdersAndTargets(t *testing.T) {
	r := NewRelay()
	m := addr(1)
	r.AuthorizeMiner(m)
	lo := &Bundle{Searcher: addr(2), Txs: []*types.Transaction{mkTx(1, types.Milliether)}}
	hi := &Bundle{Searcher: addr(3), Txs: []*types.Transaction{mkTx(2, types.Ether)}}
	targeted := &Bundle{Searcher: addr(4), Txs: []*types.Transaction{mkTx(3, 2*types.Ether)}, TargetBlock: 200}
	for _, b := range []*Bundle{lo, hi, targeted} {
		if _, err := r.SubmitBundle(b); err != nil {
			t.Fatal(err)
		}
	}
	got, err := r.PendingFor(m, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != hi || got[1] != lo {
		t.Errorf("pending@100 = %v", got)
	}
	got, _ = r.PendingFor(m, 200, 0)
	if len(got) != 3 || got[0] != targeted {
		t.Errorf("pending@200 = %v", got)
	}
}

func sealBlock(n uint64, miner types.Address, txs ...*types.Transaction) *types.Block {
	b := &types.Block{Header: types.Header{Number: n, Miner: miner}, Txs: txs}
	for _, tx := range txs {
		b.Receipts = append(b.Receipts, &types.Receipt{TxHash: tx.Hash(), GasUsed: tx.GasLimit, EffectiveGasPrice: tx.GasPrice, CoinbaseTransfer: tx.CoinbaseTip})
	}
	b.Seal()
	return b
}

func TestRecordBlockUpdatesQueueAndAPI(t *testing.T) {
	r := NewRelay()
	m := addr(1)
	r.AuthorizeMiner(m)
	tx1, tx2 := mkTx(1, types.Ether), mkTx(2, 0)
	b1 := &Bundle{Searcher: addr(2), Type: TypeFlashbots, Txs: []*types.Transaction{tx1, tx2}}
	stale := &Bundle{Searcher: addr(3), Txs: []*types.Transaction{mkTx(3, 0)}, TargetBlock: 100}
	live := &Bundle{Searcher: addr(4), Txs: []*types.Transaction{mkTx(4, 0)}, TargetBlock: 150}
	for _, b := range []*Bundle{b1, stale, live} {
		if _, err := r.SubmitBundle(b); err != nil {
			t.Fatal(err)
		}
	}

	blk := sealBlock(100, m, tx1, tx2)
	r.RecordBlock(blk, []IncludedBundle{{Bundle: b1, Receipts: blk.Receipts}})

	if r.QueueLen() != 1 { // b1 included, stale dropped, live remains
		t.Errorf("queue = %d", r.QueueLen())
	}
	if !r.IsFlashbotsBlock(100) {
		t.Error("block 100 should be a Flashbots block")
	}
	rec, ok := r.BlockByNumber(100)
	if !ok {
		t.Fatal("api record missing")
	}
	if rec.BundleCount() != 1 || len(rec.Txs) != 2 {
		t.Errorf("record = %+v", rec)
	}
	if rec.MinerReward < types.Ether {
		t.Errorf("miner reward = %v", rec.MinerReward)
	}
	set := r.FlashbotsTxSet()
	if len(set) != 2 {
		t.Errorf("tx set = %d", len(set))
	}
	if tp, ok := set[tx1.Hash()]; !ok || tp != TypeFlashbots {
		t.Error("tx1 should be marked flashbots")
	}
	if len(r.Blocks()) != 1 {
		t.Error("Blocks()")
	}
}

func TestRecordBlockWithoutBundlesIsNotFlashbots(t *testing.T) {
	r := NewRelay()
	blk := sealBlock(50, addr(1))
	r.RecordBlock(blk, nil)
	if r.IsFlashbotsBlock(50) {
		t.Error("no bundles → not a Flashbots block")
	}
	if len(r.Blocks()) != 0 {
		t.Error("no API record expected")
	}
}

func TestBundleString(t *testing.T) {
	b := &Bundle{ID: 3, Type: TypeRogue, Txs: []*types.Transaction{mkTx(1, types.Ether)}}
	if got := b.String(); got != "bundle{id=3 type=rogue txs=1 tip=1.000000000 ETH}" {
		t.Errorf("bundle string = %q", got)
	}
}

func TestVerifyInclusion(t *testing.T) {
	r := NewRelay()
	m := addr(1)
	r.AuthorizeMiner(m)
	tx1, tx2 := mkTx(1, 0), mkTx(2, 0)
	bundle := &Bundle{Searcher: addr(2), Txs: []*types.Transaction{tx1, tx2}}

	// Honest inclusion: order preserved (other txs may interleave).
	filler := mkTx(9, 0)
	good := sealBlock(100, m, tx1, filler, tx2)
	if !r.VerifyInclusion(good, bundle) {
		t.Fatal("honest inclusion should verify")
	}
	if !r.IsAuthorized(m) {
		t.Fatal("honest miner keeps access")
	}

	// Equivocation: order inverted → permanent ban (§2.5).
	bad := sealBlock(101, m, tx2, tx1)
	if r.VerifyInclusion(bad, bundle) {
		t.Fatal("reordered bundle must fail verification")
	}
	if r.IsAuthorized(m) {
		t.Fatal("equivocating miner must be banned")
	}

	// Dropped transaction is equivocation too.
	m2 := addr(2)
	r.AuthorizeMiner(m2)
	partial := sealBlock(102, m2, tx1)
	if r.VerifyInclusion(partial, bundle) || r.IsAuthorized(m2) {
		t.Fatal("partial inclusion must ban")
	}
}
