package archive_test

import (
	"os"
	"sync"
	"testing"

	"mevscope"
	"mevscope/internal/archive"
	"mevscope/internal/dataset"
	"mevscope/internal/sim"
)

// The archive benchmarks behind CI's BENCH_archive.json artifact:
// encode and decode throughput plus on-disk size for v1 (JSON lines)
// vs v2 (compressed frames) vs v3 (column chunks), single-block random
// access, and the v3 projected-read path. The acceptance bar is v3 at
// least 3× smaller than v2 on disk (pinned by
// TestArchiveV3CompressionRatio below) and a projected read decoding
// strictly fewer bytes than a full restore; the cold `mevscope serve`
// query benchmark (internal/query) rides in the same artifact so
// restore cost regressions show up where users feel them.

var (
	benchOnce sync.Once
	benchDS   *dataset.Dataset
	benchSim  *sim.Sim
	benchErr  error
)

// benchDataset simulates one shared small full-window world (the bpm-50
// world the CI load harness also uses).
func benchDataset(tb testing.TB) *dataset.Dataset {
	tb.Helper()
	benchOnce.Do(func() {
		cfg, err := mevscope.Options{Seed: 7, BlocksPerMonth: 50}.Config()
		if err != nil {
			benchErr = err
			return
		}
		benchSim, benchErr = sim.New(cfg)
		if benchErr != nil {
			return
		}
		if benchErr = benchSim.Run(); benchErr == nil {
			benchDS = dataset.FromSim(benchSim)
		}
	})
	if benchErr != nil {
		tb.Fatal(benchErr)
	}
	return benchDS
}

// benchEncode measures one format's write path, reporting the on-disk
// footprint alongside the timing.
func benchEncode(b *testing.B, format archive.Format) {
	ds := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	var man *archive.Manifest
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp("", "mevscope-bench-*")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		man, err = archive.WriteFormat(dir, ds, nil, format)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		os.RemoveAll(dir)
		b.StartTimer()
	}
	b.ReportMetric(float64(man.DataBytes()), "disk-bytes")
	b.ReportMetric(float64(ds.Chain.Len()), "blocks/op")
}

// benchDecode measures one format's full restore path.
func benchDecode(b *testing.B, format archive.Format) {
	ds := benchDataset(b)
	dir := b.TempDir()
	man, err := archive.WriteFormat(dir, ds, nil, format)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := archive.Read(dir); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(man.DataBytes()), "disk-bytes")
	b.ReportMetric(float64(ds.Chain.Len()), "blocks/op")
}

func BenchmarkArchiveEncodeV1(b *testing.B) { benchEncode(b, archive.FormatV1) }
func BenchmarkArchiveEncodeV2(b *testing.B) { benchEncode(b, archive.FormatV2) }
func BenchmarkArchiveEncodeV3(b *testing.B) { benchEncode(b, archive.FormatV3) }
func BenchmarkArchiveDecodeV1(b *testing.B) { benchDecode(b, archive.FormatV1) }
func BenchmarkArchiveDecodeV2(b *testing.B) { benchDecode(b, archive.FormatV2) }
func BenchmarkArchiveDecodeV3(b *testing.B) { benchDecode(b, archive.FormatV3) }

// benchReadBlock measures single-block random access (sparse block
// index for v2, zone-map chunk selection for v3).
func benchReadBlock(b *testing.B, format archive.Format) {
	ds := benchDataset(b)
	dir := b.TempDir()
	man, err := archive.WriteFormat(dir, ds, nil, format)
	if err != nil {
		b.Fatal(err)
	}
	start := ds.Chain.Timeline.StartBlock
	head := ds.Chain.Head().Header.Number
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := start + uint64(i)%(head-start+1)
		if _, err := archive.ReadBlockFrom(dir, man, n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArchiveReadBlockV2(b *testing.B) { benchReadBlock(b, archive.FormatV2) }
func BenchmarkArchiveReadBlockV3(b *testing.B) { benchReadBlock(b, archive.FormatV3) }

// BenchmarkArchiveProjectedReadV3 measures a projected full-window read
// of the columns the paper's headline figures need (headers +
// flashbots), reporting decoded vs skipped bytes — the byte savings a
// projected cold artifact serve sees.
func BenchmarkArchiveProjectedReadV3(b *testing.B) {
	ds := benchDataset(b)
	dir := b.TempDir()
	man, err := archive.WriteFormat(dir, ds, nil, archive.FormatV3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var stats archive.ReadStats
	for i := 0; i < b.N; i++ {
		stats = archive.ReadStats{}
		_, _, err := archive.ReadRangeWith(dir, 0, 1<<30, archive.ReadOptions{
			Columns: []string{archive.ColHeaders, archive.ColFlashbots},
			Stats:   &stats,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stats.DecodedBytes.Load()), "decoded-bytes")
	b.ReportMetric(float64(man.DataBytes()), "disk-bytes")
}

// TestArchiveV3CompressionRatio pins the v3 acceptance bar on the
// bpm-50 world: at least 3× smaller than v2 on disk, and a projected
// single-artifact read decodes strictly fewer bytes than a full
// restore.
func TestArchiveV3CompressionRatio(t *testing.T) {
	ds := benchDataset(t)
	dirV2, dirV3 := t.TempDir(), t.TempDir()
	manV2, err := archive.WriteFormat(dirV2, ds, nil, archive.FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	manV3, err := archive.WriteFormat(dirV3, ds, nil, archive.FormatV3)
	if err != nil {
		t.Fatal(err)
	}
	v2, v3 := manV2.DataBytes(), manV3.DataBytes()
	t.Logf("disk bytes: v2 %d, v3 %d (%.2fx)", v2, v3, float64(v2)/float64(v3))
	if v3*3 > v2 {
		t.Errorf("v3 archive is %d bytes, want at least 3x smaller than v2's %d", v3, v2)
	}

	var full, proj archive.ReadStats
	if _, _, err := archive.Read(dirV3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := archive.ReadRangeWith(dirV3, 0, 1<<30, archive.ReadOptions{Stats: &full}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := archive.ReadRangeWith(dirV3, 0, 1<<30, archive.ReadOptions{
		Columns: []string{archive.ColHeaders, archive.ColFlashbots},
		Stats:   &proj,
	}); err != nil {
		t.Fatal(err)
	}
	if proj.DecodedBytes.Load() >= full.DecodedBytes.Load() {
		t.Errorf("projected read decoded %d bytes, full restore %d — projection saved nothing",
			proj.DecodedBytes.Load(), full.DecodedBytes.Load())
	}
	if proj.SkippedChunks.Load() == 0 {
		t.Error("projected read skipped no chunks")
	}
}
