package archive_test

import (
	"os"
	"sync"
	"testing"

	"mevscope"
	"mevscope/internal/archive"
	"mevscope/internal/dataset"
	"mevscope/internal/sim"
)

// The archive benchmarks behind CI's BENCH_archive.json artifact:
// encode and decode throughput plus on-disk size for v1 (JSON lines)
// vs v2 (compressed frames), and the block index's random-access
// latency. The acceptance bar is v2 smaller on disk and at least as
// fast to restore as v1; the cold `mevscope serve` query benchmark
// (internal/query, which serves a v2 archive) rides in the same
// artifact so restore cost regressions show up where users feel them.

var (
	benchOnce sync.Once
	benchDS   *dataset.Dataset
	benchSim  *sim.Sim
	benchErr  error
)

// benchDataset simulates one shared small full-window world.
func benchDataset(b *testing.B) *dataset.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		cfg, err := mevscope.Options{Seed: 7, BlocksPerMonth: 50}.Config()
		if err != nil {
			benchErr = err
			return
		}
		benchSim, benchErr = sim.New(cfg)
		if benchErr != nil {
			return
		}
		if benchErr = benchSim.Run(); benchErr == nil {
			benchDS = dataset.FromSim(benchSim)
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDS
}

// diskBytes sums a manifest's data-file sizes.
func diskBytes(man *archive.Manifest) int64 {
	total := man.Prices.Bytes
	for _, seg := range man.Segments {
		total += seg.Blocks.Bytes + seg.Flashbots.Bytes + seg.Observed.Bytes
	}
	return total
}

// benchEncode measures one format's write path, reporting the on-disk
// footprint alongside the timing.
func benchEncode(b *testing.B, format archive.Format) {
	ds := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	var man *archive.Manifest
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp("", "mevscope-bench-*")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		man, err = archive.WriteFormat(dir, ds, nil, format)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		os.RemoveAll(dir)
		b.StartTimer()
	}
	b.ReportMetric(float64(diskBytes(man)), "disk-bytes")
	b.ReportMetric(float64(ds.Chain.Len()), "blocks/op")
}

// benchDecode measures one format's full restore path.
func benchDecode(b *testing.B, format archive.Format) {
	ds := benchDataset(b)
	dir := b.TempDir()
	man, err := archive.WriteFormat(dir, ds, nil, format)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := archive.Read(dir); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(diskBytes(man)), "disk-bytes")
	b.ReportMetric(float64(ds.Chain.Len()), "blocks/op")
}

func BenchmarkArchiveEncodeV1(b *testing.B) { benchEncode(b, archive.FormatV1) }
func BenchmarkArchiveEncodeV2(b *testing.B) { benchEncode(b, archive.FormatV2) }
func BenchmarkArchiveDecodeV1(b *testing.B) { benchDecode(b, archive.FormatV1) }
func BenchmarkArchiveDecodeV2(b *testing.B) { benchDecode(b, archive.FormatV2) }

// BenchmarkArchiveReadBlockV2 measures single-block random access
// through the sparse block index — decompress-and-skip to the nearest
// index point instead of decoding the whole segment.
func BenchmarkArchiveReadBlockV2(b *testing.B) {
	ds := benchDataset(b)
	dir := b.TempDir()
	man, err := archive.WriteFormat(dir, ds, nil, archive.FormatV2)
	if err != nil {
		b.Fatal(err)
	}
	start := ds.Chain.Timeline.StartBlock
	head := ds.Chain.Head().Header.Number
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := start + uint64(i)%(head-start+1)
		if _, err := archive.ReadBlockFrom(dir, man, n); err != nil {
			b.Fatal(err)
		}
	}
}
