package archive

import (
	"fmt"
	"os"
	"path/filepath"

	"mevscope/internal/store"
)

// The v1 on-disk encoding: plain JSON-lines data files written and read
// through the document store. New archives default to v2 (codec.go); this
// path stays so every archive written by earlier releases keeps reading
// transparently, and `mevscope archive -format v1` can still produce it.

// writeJSONL persists docs as <segDir>/<name>.jsonl through the document
// store and returns its integrity record with a path relative to root.
func writeJSONL[T any](root, segDir, name string, docs []T) (FileInfo, error) {
	col := store.NewCollection[T](name)
	col.InsertAll(docs...)
	if err := col.SaveFile(segDir); err != nil {
		return FileInfo{}, fmt.Errorf("archive: write %s: %w", name, err)
	}
	return fileInfoFor(root, filepath.Join(segDir, name+".jsonl"), len(docs))
}

// readJSONL loads one data file through the document store after
// verifying its checksum and document count against the manifest.
func readJSONL[T any](root string, fi FileInfo) ([]T, error) {
	path, err := verifyFile(root, fi)
	if err != nil {
		return nil, err
	}
	col := store.NewCollection[T](filepath.Base(fi.Name))
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := col.ReadJSON(f); err != nil {
		return nil, fmt.Errorf("archive: %s: %w", fi.Name, err)
	}
	if col.Count() != fi.Count {
		return nil, fmt.Errorf("archive: %s has %d documents, manifest says %d", fi.Name, col.Count(), fi.Count)
	}
	return col.All(), nil
}
