package archive

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

// The v2 codec's refusal matrix: every way a segment file can rot —
// truncated frame, bit-flipped payload, wrong version byte, wrong magic
// — must surface as an error from the codec itself, before the archive
// layer's SHA-256 pass is even consulted (a partial download or a torn
// write must not decode into a silently short dataset).

type codecDoc struct {
	N    int    `json:"n"`
	Body string `json:"body"`
}

// encodeTestDocs builds a valid v2 frame stream of count documents.
func encodeTestDocs(t *testing.T, count int) []byte {
	t.Helper()
	docs := make([]codecDoc, count)
	for i := range docs {
		docs[i] = codecDoc{N: i, Body: strings.Repeat("x", 100+i)}
	}
	var buf bytes.Buffer
	if _, err := encodeFrames(&buf, docs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeAll drives the frame reader over raw bytes to completion.
func decodeAll(raw []byte) (int, error) {
	fr, err := openFrames("test.seg", bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	n := 0
	for {
		_, err := fr.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, err
		}
		n++
	}
	return n, fr.Close()
}

func TestCodecRoundTrip(t *testing.T) {
	raw := encodeTestDocs(t, 57)
	n, err := decodeAll(raw)
	if err != nil {
		t.Fatal(err)
	}
	if n != 57 {
		t.Fatalf("decoded %d frames, want 57", n)
	}
}

func TestCodecRefusesTruncatedFrame(t *testing.T) {
	raw := encodeTestDocs(t, 57)
	// Cut the compressed stream mid-way: the decoder must error, not
	// return a short document list.
	for _, cut := range []int{len(raw) - 1, len(raw) / 2, len(raw) - len(raw)/4} {
		if _, err := decodeAll(raw[:cut]); err == nil {
			t.Errorf("truncation at %d of %d bytes decoded cleanly", cut, len(raw))
		}
	}
}

func TestCodecRefusesBitFlippedPayload(t *testing.T) {
	raw := encodeTestDocs(t, 57)
	// Flip one bit inside the compressed payload region (past the plain
	// header): the gzip CRC or the frame structure must catch it.
	flipped := 0
	for _, pos := range []int{8, len(raw) / 2, len(raw) - 8} {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0x10
		if _, err := decodeAll(bad); err != nil {
			flipped++
		}
	}
	if flipped == 0 {
		t.Error("no bit flip in the compressed stream was refused")
	}
}

func TestCodecRefusesWrongVersionByte(t *testing.T) {
	raw := encodeTestDocs(t, 3)
	bad := append([]byte(nil), raw...)
	bad[4] = 0x7f
	_, err := decodeAll(bad)
	if err == nil {
		t.Fatal("wrong version byte accepted")
	}
	if !strings.Contains(err.Error(), "unsupported segment codec version") {
		t.Errorf("wrong-version error does not name the cause: %v", err)
	}
}

func TestCodecRefusesBadMagic(t *testing.T) {
	raw := encodeTestDocs(t, 3)
	bad := append([]byte(nil), raw...)
	copy(bad, "NOPE")
	_, err := decodeAll(bad)
	if err == nil {
		t.Fatal("bad magic accepted")
	}
	if !strings.Contains(err.Error(), "not a v2 segment file") {
		t.Errorf("bad-magic error does not name the cause: %v", err)
	}
}

func TestCodecRefusesCorruptFrameLength(t *testing.T) {
	// A frame that claims an absurd payload length must be refused by the
	// sanity cap, not attempted as a multi-gigabyte allocation: hand-build
	// a stream whose first frame length decodes beyond maxFrameSize.
	var buf bytes.Buffer
	buf.WriteString(segMagic)
	buf.WriteByte(segFormatByte)
	zw := gzip.NewWriter(&buf)
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(maxFrameSize)+1)
	if _, err := zw.Write(lenBuf[:n]); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := decodeAll(buf.Bytes())
	if err == nil {
		t.Fatal("absurd frame length accepted")
	}
	if !strings.Contains(err.Error(), "corrupt length") {
		t.Errorf("corrupt-length error does not name the cause: %v", err)
	}
}
