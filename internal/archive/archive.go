// Package archive is the segmented on-disk store for collected
// measurement datasets, shaped after flashbots/mempool-dumpster: one
// directory per study month holding that month's blocks, observed
// pending transactions and Flashbots API records, plus a top-level
// manifest with per-file SHA-256 checksums and the run's price history.
//
// Three on-disk formats coexist, auto-detected through the manifest's
// version field:
//
//	v1  JSON-lines data files (one JSON document per line)
//	v2  gzip-compressed binary segment files: a 5-byte plain header
//	    (magic "MSEG" + format byte) followed by a gzip stream of
//	    length-prefixed JSON document frames, with a sparse per-segment
//	    block index in the manifest for sub-segment random access
//	v3  column-chunk files: one file per (month, column) with
//	    column-appropriate codecs (delta varints, dictionaries,
//	    presence-mask payloads) and per-chunk zone maps in the
//	    manifest, so reads decode only the columns — and touch only
//	    the chunks — a query needs (ReadOptions.Columns)
//
// The directory layout is the same shape for all three (v3 shown):
//
//	<dir>/
//	  manifest.json          version, timeline, WETH, checksums, zone maps
//	  prices.seg             token → price history (v2 frame codec)
//	  2020-05/               one segment per calendar month
//	    headers.col          block headers + per-block tx counts
//	    txs.col              transactions
//	    receipts.col         execution outcomes
//	    logs.col             event logs
//	    flashbots.col        public blocks-API records
//	    observed.col         observer pending-transaction captures
//	  2020-06/ ...
//
// A world is simulated once, archived, and re-analyzed many times: Write
// persists a dataset.Dataset (v3 by default, months encoded in
// parallel), Read/ReadRange restore one bit-compatibly (segments decoded
// in parallel, every file checksum-verified), and `mevscope analyze
// -from <dir>` reproduces the original run's report without
// re-simulating. v1 and v2 archives written by earlier releases keep
// reading transparently. StreamWriter is the live-rotation path: a
// streaming follower hands it each study month as it completes, so
// `mevscope archive -live` writes segments while the world grows instead
// of serializing everything at the end.
package archive

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"mevscope/internal/dataset"
	"mevscope/internal/flashbots"
	"mevscope/internal/obs"
	"mevscope/internal/p2p"
	"mevscope/internal/parallel"
	"mevscope/internal/prices"
	"mevscope/internal/types"
)

// Format selects the on-disk encoding of an archive.
type Format int

// Supported archive formats. The Format value doubles as the manifest's
// version field.
const (
	// FormatV1 is the original JSON-lines encoding.
	FormatV1 Format = 1
	// FormatV2 is the compressed frame encoding with a block index.
	FormatV2 Format = 2
	// FormatV3 is the column-chunk encoding with zone maps.
	FormatV3 Format = 3
)

// DefaultFormat is what Write uses: the current format.
const DefaultFormat = FormatV3

// formats is the single format registry: CLI parsing, help strings,
// error messages and manifest validation all derive from it, so adding
// a format updates every surface at once.
var formats = []struct {
	format Format
	name   string
	desc   string
}{
	{FormatV3, "v3", "column chunks with zone maps"},
	{FormatV2, "v2", "compressed frames"},
	{FormatV1, "v1", "JSON lines"},
}

// FormatNames lists the CLI spellings of every supported format,
// current first.
func FormatNames() []string {
	names := make([]string, len(formats))
	for i, f := range formats {
		names[i] = f.name
	}
	return names
}

// FormatHelp describes the supported formats for CLI flag help, e.g.
// "v3 (column chunks with zone maps), v2 (compressed frames), v1 (JSON lines)".
func FormatHelp() string {
	parts := make([]string, len(formats))
	for i, f := range formats {
		parts[i] = fmt.Sprintf("%s (%s)", f.name, f.desc)
	}
	return strings.Join(parts, ", ")
}

// ParseFormat parses a CLI-style format name ("v1", "v2", "v3").
func ParseFormat(s string) (Format, error) {
	for _, f := range formats {
		if f.name == s {
			return f.format, nil
		}
	}
	return 0, fmt.Errorf("archive: unknown format %q (want %s)", s, strings.Join(FormatNames(), ", "))
}

// String names the format like the CLI flag spells it.
func (f Format) String() string { return fmt.Sprintf("v%d", int(f)) }

func (f Format) valid() bool {
	for _, sf := range formats {
		if sf.format == f {
			return true
		}
	}
	return false
}

// ManifestName is the manifest file name inside an archive directory.
const ManifestName = "manifest.json"

// FileInfo describes one data file of the archive: its path relative to
// the archive root, document count, on-disk size and SHA-256 checksum
// (both over the stored bytes — the compressed stream for v2).
type FileInfo struct {
	Name   string `json:"name"`
	Count  int    `json:"count"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// BlockIndexEntry is one sparse block-index point of a v2 blocks file:
// frame ordinal, the block number that frame carries, and the frame's
// byte offset in the uncompressed stream. A reader seeking block n
// decompresses up to the last entry at or below n and skips those bytes
// without JSON-decoding a single frame.
type BlockIndexEntry struct {
	Frame  int    `json:"frame"`
	Block  uint64 `json:"block"`
	Offset int64  `json:"offset"`
}

// SegmentInfo describes one per-month segment.
type SegmentInfo struct {
	Month      types.Month `json:"month"`
	Label      string      `json:"label"`
	FirstBlock uint64      `json:"first_block"`
	LastBlock  uint64      `json:"last_block"`
	Blocks     FileInfo    `json:"blocks"`
	Flashbots  FileInfo    `json:"flashbots"`
	// Observed is the primary vantage's capture file.
	Observed FileInfo `json:"observed"`
	// ObservedV are the additional vantages' capture files (ObservedV[i]
	// is vantage i+1) — one frame stream per vantage. Absent for
	// single-vantage archives, which read exactly as before.
	ObservedV []FileInfo `json:"observed_v,omitempty"`
	// Index is the sparse block index of the blocks file (v2 only).
	Index []BlockIndexEntry `json:"index,omitempty"`
	// Columns are the month's column chunks with their zone maps (v3
	// only). The classic FileInfo fields above then carry logical
	// document counts with no file behind them.
	Columns []ColumnInfo `json:"columns,omitempty"`
}

// ColumnInfo describes one v3 column chunk: its integrity record plus
// the zone map readers use to skip the chunk without decoding it. The
// zone map is load-bearing — decoders recompute it from the payload and
// refuse a chunk whose stored bounds disagree.
type ColumnInfo struct {
	Name  string      `json:"name"`
	Month types.Month `json:"month"`
	File  FileInfo    `json:"file"`
	// MinBlock/MaxBlock bound the block heights the chunk's rows touch
	// (header range for block-aligned columns, record heights for
	// flashbots and observed captures). Zero for empty chunks.
	MinBlock uint64 `json:"min_block,omitempty"`
	MaxBlock uint64 `json:"max_block,omitempty"`
	// MinGas/MaxGas bound the chunk's gas prices: bid prices for the tx
	// column, effective prices for receipts. Absent elsewhere.
	MinGas types.Amount `json:"min_gas,omitempty"`
	MaxGas types.Amount `json:"max_gas,omitempty"`
}

// ObserverInfo records the observation window bounds.
type ObserverInfo struct {
	Start uint64 `json:"start"`
	Stop  uint64 `json:"stop"`
}

// VantageInfo records one observation vantage's placement — enough to
// restore p2p observers that answer Seen/Record exactly like the
// original run's.
type VantageInfo struct {
	Node     int     `json:"node"`
	MissRate float64 `json:"miss_rate,omitempty"`
}

// Manifest is the archive's index and integrity record.
type Manifest struct {
	Version     int            `json:"version"`
	Timeline    types.Timeline `json:"timeline"`
	WETH        types.Address  `json:"weth"`
	Head        uint64         `json:"head"`
	TotalBlocks int            `json:"total_blocks"`
	Observer    *ObserverInfo  `json:"observer,omitempty"`
	// Vantages describes the observation network's vantage list, in
	// configuration order. Absent on archives written before the
	// multi-vantage format (implied: one vantage at node 0).
	Vantages []VantageInfo     `json:"vantages,omitempty"`
	Prices   FileInfo          `json:"prices"`
	Segments []SegmentInfo     `json:"segments"`
	Meta     map[string]string `json:"meta,omitempty"`
}

// Format returns the archive's on-disk format.
func (m *Manifest) Format() Format { return Format(m.Version) }

// Window returns the first and last month the archive has segments for.
func (m *Manifest) Window() (first, last types.Month) {
	if len(m.Segments) == 0 {
		return 0, 0
	}
	return m.Segments[0].Month, m.Segments[len(m.Segments)-1].Month
}

// SegmentLabel names a month's segment directory, e.g. "2020-05".
func SegmentLabel(m types.Month) string { return m.Label() }

// priceDoc is the prices file's document shape: one token's full history.
type priceDoc struct {
	Token  types.Address  `json:"token"`
	Points []prices.Point `json:"points"`
}

// Write persists a dataset into dir in the current default format (v2),
// returning the manifest. meta carries free-form provenance (seed,
// scenario, scale) for the manifest; it does not affect restoration.
func Write(dir string, ds *dataset.Dataset, meta map[string]string) (*Manifest, error) {
	return WriteFormat(dir, ds, meta, DefaultFormat)
}

// WriteFormat persists a dataset into dir in the given format. Months
// are encoded in parallel — each segment's files are independent — and
// the manifest is written last, so a crashed Write leaves no manifest
// and Read refuses the directory.
func WriteFormat(dir string, ds *dataset.Dataset, meta map[string]string, format Format) (*Manifest, error) {
	if ds.Chain == nil || ds.Chain.Head() == nil {
		return nil, fmt.Errorf("archive: dataset has no blocks")
	}
	sw, err := NewStreamWriter(dir, ds.Chain.Timeline, ds.WETH, format, meta)
	if err != nil {
		return nil, err
	}
	return sw.Finalize(ds)
}

// Recompress restores the archive at src — whatever format it holds —
// and rewrites it into dst in the given format, carrying the source
// manifest's meta over. The restored dataset drives a normal
// WriteFormat, so dst is byte-identical to what archiving the original
// world directly in that format would have produced.
func Recompress(src, dst string, format Format) (*Manifest, error) {
	ds, man, err := Read(src)
	if err != nil {
		return nil, err
	}
	return WriteFormat(dst, ds, man.Meta, format)
}

// writeSegment persists one month's files in the given format and
// returns its manifest entry.
func writeSegment(dir string, format Format, seg *dataset.Segment) (SegmentInfo, error) {
	if format == FormatV3 {
		return writeSegmentV3(dir, seg)
	}
	label := SegmentLabel(seg.Month)
	segDir := filepath.Join(dir, label)
	info := SegmentInfo{
		Month:      seg.Month,
		Label:      label,
		FirstBlock: seg.Blocks[0].Header.Number,
		LastBlock:  seg.Blocks[len(seg.Blocks)-1].Header.Number,
	}
	var err error
	// writeDocs dispatches on the format; extra vantage files use it too,
	// so both encodings carry the full observation network.
	writeDocs := func(name string, docs []p2p.ObservedTx) (FileInfo, error) {
		if format == FormatV1 {
			return writeJSONL(dir, segDir, name, docs)
		}
		fi, _, err := writeSeg(dir, segDir, name, docs)
		return fi, err
	}
	if format == FormatV1 {
		if info.Blocks, err = writeJSONL(dir, segDir, "blocks", seg.Blocks); err != nil {
			return info, err
		}
		if info.Flashbots, err = writeJSONL(dir, segDir, "flashbots", seg.FBBlocks); err != nil {
			return info, err
		}
	} else {
		var offsets []int64
		if info.Blocks, offsets, err = writeSeg(dir, segDir, "blocks", seg.Blocks); err != nil {
			return info, err
		}
		info.Index = blockIndex(seg.Blocks, offsets)
		if info.Flashbots, _, err = writeSeg(dir, segDir, "flashbots", seg.FBBlocks); err != nil {
			return info, err
		}
	}
	if info.Observed, err = writeDocs("observed", seg.Observed); err != nil {
		return info, err
	}
	for i, recs := range seg.ObservedV {
		fi, err := writeDocs(fmt.Sprintf("observed_v%d", i+1), recs)
		if err != nil {
			return info, err
		}
		info.ObservedV = append(info.ObservedV, fi)
	}
	return info, nil
}

// writePrices persists the price series as the archive's prices file.
func writePrices(dir string, format Format, pr *prices.Series) (FileInfo, error) {
	var pdocs []priceDoc
	if pr != nil {
		for _, tok := range pr.Tokens() {
			pdocs = append(pdocs, priceDoc{Token: tok, Points: pr.History(tok)})
		}
	}
	if format == FormatV1 {
		return writeJSONL(dir, dir, "prices", pdocs)
	}
	fi, _, err := writeSeg(dir, dir, "prices", pdocs)
	return fi, err
}

// checksum computes the SHA-256 and size of a file.
func checksum(path string) (string, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}

// fileInfoFor builds a data file's integrity record with a path relative
// to the archive root.
func fileInfoFor(root, path string, count int) (FileInfo, error) {
	rel, err := filepath.Rel(root, path)
	if err != nil {
		return FileInfo{}, err
	}
	sum, size, err := checksum(path)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Name: filepath.ToSlash(rel), Count: count, Bytes: size, SHA256: sum}, nil
}

// verifyFile checks a data file against its manifest record before any
// decode touches it.
func verifyFile(root string, fi FileInfo) (string, error) {
	path := filepath.Join(root, filepath.FromSlash(fi.Name))
	sum, size, err := checksum(path)
	if err != nil {
		return "", fmt.Errorf("archive: %w", err)
	}
	if sum != fi.SHA256 || size != fi.Bytes {
		return "", fmt.Errorf("archive: %s is corrupt (checksum mismatch)", fi.Name)
	}
	return path, nil
}

// ReadManifest loads and sanity-checks an archive's manifest without
// touching the data files. Every format version is accepted; the
// version field routes every later read to the right decoder.
func ReadManifest(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("archive: manifest: %w", err)
	}
	if !Format(man.Version).valid() {
		return nil, fmt.Errorf("archive: unsupported version %d (want %s)",
			man.Version, strings.Join(FormatNames(), ", "))
	}
	if man.Timeline.BlocksPerMonth == 0 {
		return nil, fmt.Errorf("archive: manifest has no timeline")
	}
	return &man, nil
}

// SegmentCache caches decoded month segments across reads. internal/query
// plugs its segment-granular LRU in here so overlapping month ranges
// share decoded segments instead of re-reading the disk; a nil cache
// reads every segment fresh. Implementations must be safe for concurrent
// use — ReadRange decodes segments in parallel.
type SegmentCache interface {
	// Get returns the cached segment for (dir, month), if present.
	Get(dir string, m types.Month) (*dataset.Segment, bool)
	// Add caches a freshly decoded segment; bytes is its on-disk size,
	// for size-aware eviction policies.
	Add(dir string, m types.Month, seg *dataset.Segment, bytes int64)
}

// ChunkCache is the column-granular upgrade of SegmentCache: a
// SegmentCache that also implements it caches v3 reads per decoded
// column chunk instead of per month, so a projected read warms exactly
// the chunks it decoded and a later full read reuses them. The cached
// value is the decoder's immutable column representation — opaque to
// callers, who store and return it as-is. Implementations must be safe
// for concurrent use.
type ChunkCache interface {
	// GetChunk returns the cached decode of (dir, month, column).
	GetChunk(dir string, m types.Month, col string) (any, bool)
	// AddChunk caches a freshly decoded column chunk; bytes is its
	// on-disk size.
	AddChunk(dir string, m types.Month, col string, v any, bytes int64)
}

// ReadStats, when attached to ReadOptions, accumulates byte-level
// accounting of a read: how much stored data was decoded, and how many
// chunks the projection and zone maps skipped or the cache served. Safe
// for concurrent use (reads decode in parallel).
type ReadStats struct {
	// DecodedBytes counts stored (compressed) bytes actually decoded.
	DecodedBytes atomic.Int64
	// DecodedChunks counts chunk/segment files decoded.
	DecodedChunks atomic.Int64
	// SkippedChunks counts v3 chunks skipped without decoding.
	SkippedChunks atomic.Int64
	// CachedChunks counts chunks (or whole segments) served from cache.
	CachedChunks atomic.Int64
}

// segBytes is a segment's total on-disk size per the manifest.
func segBytes(si SegmentInfo) int64 {
	bytes := si.Blocks.Bytes + si.Flashbots.Bytes + si.Observed.Bytes
	for _, fi := range si.ObservedV {
		bytes += fi.Bytes
	}
	for _, ci := range si.Columns {
		bytes += ci.File.Bytes
	}
	return bytes
}

// DataBytes is the archive's total on-disk data size per the manifest:
// every segment's files plus the price history.
func (m *Manifest) DataBytes() int64 {
	bytes := m.Prices.Bytes
	for _, si := range m.Segments {
		bytes += segBytes(si)
	}
	return bytes
}

// ReadOptions tune a ReadRangeWith call.
type ReadOptions struct {
	// Workers sizes the parallel segment-decode pool (< 1 = all cores).
	Workers int
	// Cache, when non-nil, is consulted before and filled after each
	// segment decode. If it also implements ChunkCache, v3 reads cache
	// per column chunk instead of per month.
	Cache SegmentCache
	// Span, when non-nil, is the tracing parent the restore records
	// itself under: one "archive:restore" span with an "archive:decode"
	// child per segment actually decoded (cache hits record nothing);
	// v3 decodes additionally record one "archive:column" child per
	// chunk. Nil disables recording at zero cost (internal/obs).
	Span *obs.Span
	// Columns projects the read onto a column subset (v3 column names,
	// see ColumnNames): only the selected columns are decoded and
	// populated, and the rest of each segment's chunks are skipped on
	// disk. Nil restores everything. The set is closed over its
	// dependencies (headers always load; logs pull receipts; receipts
	// and txs travel together), a projection without "observed" skips
	// the observer restore entirely, and the resulting dataset records
	// the projection in its Projection field. On v1/v2 archives the
	// selection is honored but decodes the full segment (those formats
	// cannot skip bytes per column).
	Columns []string
	// Stats, when non-nil, accumulates decode-byte accounting.
	Stats *ReadStats
}

// Read restores the full dataset from a segmented archive, verifying
// every file against its manifest checksum. The result is bit-compatible
// with the written dataset: analyzing it reproduces the original report.
func Read(dir string) (*dataset.Dataset, *Manifest, error) {
	return ReadRange(dir, 0, types.StudyMonths-1)
}

// ReadRange restores only the segments whose month falls in [from, to]
// (inclusive) — the random-access path behind `mevscope serve`'s month
// slicing and `mevscope analyze -range`: a query for four months reads
// four segment directories, not the whole archive.
func ReadRange(dir string, from, to types.Month) (*dataset.Dataset, *Manifest, error) {
	return ReadRangeWith(dir, from, to, ReadOptions{})
}

// ReadRangeWith is ReadRange with a tunable decode pool and an optional
// segment cache. Segments decode in parallel (each month's files are
// independent) and are assembled in month order, so the result is
// identical to a sequential read. The restored chain's timeline starts
// at the first selected month, so block→month mapping stays aligned with
// the full archive, and every freshly read file is checksum-verified.
// The observer is restored only when the selected range reaches into the
// observation window; its observation log is read from every segment up
// to the slice end — not just the sliced months — because a transaction
// first seen near a month boundary can be mined in the next month, and
// dropping its record would silently flip it from public to private in
// the §6 inference (the logs are tiny next to the block files, so the
// random-access win is preserved).
func ReadRangeWith(dir string, from, to types.Month, opt ReadOptions) (*dataset.Dataset, *Manifest, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	cols, norm, err := normalizeColumns(opt.Columns)
	if err != nil {
		return nil, nil, err
	}
	var segs, preSegs []SegmentInfo
	for _, seg := range man.Segments {
		switch {
		case seg.Month >= from && seg.Month <= to:
			segs = append(segs, seg)
		case seg.Month < from:
			preSegs = append(preSegs, seg)
		}
	}
	if len(segs) == 0 {
		first, last := man.Window()
		return nil, nil, fmt.Errorf("archive: no segments in months %s..%s (archive covers %s..%s)",
			from.Label(), to.Label(), first.Label(), last.Label())
	}
	full := len(segs) == len(man.Segments)

	rsp := opt.Span.Child(obs.StageRestore)
	defer rsp.End()
	if rsp != nil {
		blocks, bytes := 0, int64(0)
		for _, si := range segs {
			blocks += si.Blocks.Count
			bytes += segBytesFor(si, cols, man.Format())
		}
		rsp.SetBlocks(blocks)
		rsp.SetBytes(bytes)
	}

	// Decode the selected segments in parallel, reusing cached decodes.
	decoded := parallel.MapSpan(rsp, len(segs), opt.Workers, func(i int) decodeResult {
		seg, err := decodeSegment(dir, man, segs[i], cols, opt, rsp)
		return decodeResult{seg: seg, err: err}
	})
	parts := make([]*dataset.Segment, len(decoded))
	for i, r := range decoded {
		if r.err != nil {
			return nil, nil, r.err
		}
		parts[i] = r.seg
	}

	// Pre-slice observation logs: reuse a cached segment's, else read just
	// the (tiny) observed files — every vantage's, so a restored slice
	// classifies against the same observation network as the full
	// archive. A projection without the observed column skips all of it.
	vinfos := man.Vantages
	if len(vinfos) == 0 {
		vinfos = []VantageInfo{{Node: 0}}
	}
	observedV := make([][]p2p.ObservedTx, len(vinfos))
	appendSeg := func(seg *dataset.Segment) {
		observedV[0] = append(observedV[0], seg.Observed...)
		for i, recs := range seg.ObservedV {
			if i+1 < len(observedV) {
				observedV[i+1] = append(observedV[i+1], recs...)
			}
		}
	}
	if cols.want(ColObserved) {
		for _, si := range preSegs {
			if opt.Cache != nil {
				if seg, ok := opt.Cache.Get(dir, si.Month); ok {
					appendSeg(seg)
					continue
				}
			}
			if man.Format() == FormatV3 {
				primary, extra, err := readObservedV3(dir, si, opt, rsp)
				if err != nil {
					return nil, nil, err
				}
				observedV[0] = append(observedV[0], primary...)
				for i, recs := range extra {
					if i+1 < len(observedV) {
						observedV[i+1] = append(observedV[i+1], recs...)
					}
				}
				continue
			}
			obs, err := readDocs[p2p.ObservedTx](dir, man.Format(), si.Observed)
			if err != nil {
				return nil, nil, err
			}
			observedV[0] = append(observedV[0], obs...)
			for i, fi := range si.ObservedV {
				recs, err := readDocs[p2p.ObservedTx](dir, man.Format(), fi)
				if err != nil {
					return nil, nil, err
				}
				if i+1 < len(observedV) {
					observedV[i+1] = append(observedV[i+1], recs...)
				}
			}
		}
	}

	tl := man.Timeline
	tl.StartBlock = man.Timeline.FirstBlockOfMonth(segs[0].Month)
	tl.FirstMonth = segs[0].Month
	ds, err := dataset.Assemble(tl, man.WETH, parts)
	if err != nil {
		return nil, nil, fmt.Errorf("archive: %w", err)
	}
	ds.Projection = norm
	for _, seg := range parts {
		appendSeg(seg)
	}

	wantBlocks, wantHead := man.TotalBlocks, man.Head
	if !full {
		wantBlocks = 0
		for _, seg := range segs {
			wantBlocks += seg.Blocks.Count
		}
		wantHead = segs[len(segs)-1].LastBlock
	}
	if ds.Chain.Len() != wantBlocks {
		return nil, nil, fmt.Errorf("archive: restored %d blocks, manifest says %d", ds.Chain.Len(), wantBlocks)
	}
	head := ds.Chain.Head()
	if head == nil || head.Header.Number != wantHead {
		return nil, nil, fmt.Errorf("archive: restored head does not match manifest head %d", wantHead)
	}
	if cols.want(ColObserved) && man.Observer != nil && man.Observer.Start <= head.Header.Number {
		for i, vi := range vinfos {
			ds.Vantages = append(ds.Vantages,
				p2p.RestoreVantage(vi.Node, observedV[i], man.Observer.Start, man.Observer.Stop))
		}
		ds.Observer = ds.Vantages[0]
	}
	ds.Prices = prices.NewSeries()
	pdocs, err := readDocs[priceDoc](dir, man.Format(), man.Prices)
	if err != nil {
		return nil, nil, err
	}
	for _, pd := range pdocs {
		if err := ds.Prices.Restore(pd.Token, pd.Points); err != nil {
			return nil, nil, fmt.Errorf("archive: %w", err)
		}
	}
	return ds, man, nil
}

// segBytesFor is the on-disk size a read of si under a projection
// actually covers: selected chunk bytes for a projected v3 read, the
// whole segment otherwise.
func segBytesFor(si SegmentInfo, cols columnSet, format Format) int64 {
	if cols == nil || format != FormatV3 {
		return segBytes(si)
	}
	var bytes int64
	for _, ci := range si.Columns {
		if cols.want(ci.Name) {
			bytes += ci.File.Bytes
		}
	}
	return bytes
}

// decodeSegment restores one selected segment, routing by format and
// reusing cached decodes. v1/v2 segments (and full v3 reads against a
// month-granular cache) cache whole months; a chunk-granular cache
// takes over inside readSegmentV3. Projected v3 reads never touch the
// month-granular cache — a partial segment must not masquerade as a
// full one.
func decodeSegment(dir string, man *Manifest, si SegmentInfo, cols columnSet, opt ReadOptions, rsp *obs.Span) (*dataset.Segment, error) {
	if man.Format() == FormatV3 {
		_, chunked := opt.Cache.(ChunkCache)
		if cols == nil && !chunked && opt.Cache != nil {
			if seg, ok := opt.Cache.Get(dir, si.Month); ok {
				if opt.Stats != nil {
					opt.Stats.CachedChunks.Add(1)
				}
				return seg, nil
			}
			seg, err := readSegmentV3(dir, si, nil, opt, rsp)
			if err != nil {
				return nil, err
			}
			opt.Cache.Add(dir, si.Month, seg, segBytes(si))
			return seg, nil
		}
		return readSegmentV3(dir, si, cols, opt, rsp)
	}
	if opt.Cache != nil {
		if seg, ok := opt.Cache.Get(dir, si.Month); ok {
			if opt.Stats != nil {
				opt.Stats.CachedChunks.Add(1)
			}
			return seg, nil
		}
	}
	dsp := rsp.Child(obs.StageDecode)
	dsp.SetLabel(si.Label)
	dsp.SetBlocks(si.Blocks.Count)
	dsp.SetBytes(segBytes(si))
	seg, err := readSegment(dir, man, si)
	dsp.End()
	if err != nil {
		return nil, err
	}
	if opt.Stats != nil {
		opt.Stats.DecodedBytes.Add(segBytes(si))
		opt.Stats.DecodedChunks.Add(int64(3 + len(si.ObservedV)))
	}
	if opt.Cache != nil {
		opt.Cache.Add(dir, si.Month, seg, segBytes(si))
	}
	return seg, nil
}

// decodeResult carries one segment decode across the parallel fan-out.
type decodeResult struct {
	seg *dataset.Segment
	err error
}

// readSegment decodes one month's files into a dataset segment, sealing
// every block and verifying transaction identity.
func readSegment(dir string, man *Manifest, si SegmentInfo) (*dataset.Segment, error) {
	format := man.Format()
	blocks, err := readDocs[*types.Block](dir, format, si.Blocks)
	if err != nil {
		return nil, err
	}
	if err := sealAndVerify(si.Label, blocks); err != nil {
		return nil, err
	}
	fb, err := readDocs[flashbots.BlockRecord](dir, format, si.Flashbots)
	if err != nil {
		return nil, err
	}
	obs, err := readDocs[p2p.ObservedTx](dir, format, si.Observed)
	if err != nil {
		return nil, err
	}
	var extra [][]p2p.ObservedTx
	for _, fi := range si.ObservedV {
		recs, err := readDocs[p2p.ObservedTx](dir, format, fi)
		if err != nil {
			return nil, err
		}
		extra = append(extra, recs)
	}
	return &dataset.Segment{Month: si.Month, Blocks: blocks, FBBlocks: fb, Observed: obs, ObservedV: extra}, nil
}

// sealAndVerify seals restored blocks and checks receipt-vs-recomputed
// transaction identity. Transaction identity is the content-derived
// hash; the stored receipts reference the identities the original run
// used. A mismatch means some transaction was mutated after hashing
// during the run — refuse rather than mis-link every record. Sealing
// also caches every transaction hash, so the segment is safe to share
// across goroutines afterwards.
func sealAndVerify(label string, blocks []*types.Block) error {
	for _, b := range blocks {
		b.Seal()
		for i, rcpt := range b.Receipts {
			if i < len(b.Txs) && rcpt.TxHash != b.Txs[i].Hash() {
				return fmt.Errorf("archive: segment %s block %d tx %d: identity drift (receipt %v vs recomputed %v)",
					label, b.Header.Number, i, rcpt.TxHash.Short(), b.Txs[i].Hash().Short())
			}
		}
	}
	return nil
}

// readDocs decodes one data file in the archive's format after verifying
// its checksum and document count against the manifest.
func readDocs[T any](root string, format Format, fi FileInfo) ([]T, error) {
	if format == FormatV1 {
		return readJSONL[T](root, fi)
	}
	return readSeg[T](root, fi)
}
