// Package archive is the segmented on-disk store for collected
// measurement datasets, shaped after flashbots/mempool-dumpster: one
// directory per study month holding that month's blocks, observed
// pending transactions and Flashbots API records as JSON-lines files,
// plus a top-level manifest with per-file SHA-256 checksums and the
// run's price history.
//
//	<dir>/
//	  manifest.json          version, timeline, WETH, checksums, metadata
//	  prices.jsonl           token → price history
//	  2020-05/               one segment per calendar month
//	    blocks.jsonl         blocks with transactions and receipts
//	    flashbots.jsonl      public blocks-API records
//	    observed.jsonl       observer pending-transaction captures
//	  2020-06/ ...
//
// A world is simulated once, archived, and re-analyzed many times:
// Write persists a dataset.Dataset, Read restores one bit-compatibly
// (verified by checksum), and `mevscope analyze -from <dir>` reproduces
// the original run's report without re-simulating.
package archive

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mevscope/internal/chain"
	"mevscope/internal/dataset"
	"mevscope/internal/flashbots"
	"mevscope/internal/p2p"
	"mevscope/internal/prices"
	"mevscope/internal/store"
	"mevscope/internal/types"
)

// Version is the on-disk format version.
const Version = 1

// ManifestName is the manifest file name inside an archive directory.
const ManifestName = "manifest.json"

// FileInfo describes one data file of the archive: its path relative to
// the archive root, document count and SHA-256 checksum.
type FileInfo struct {
	Name   string `json:"name"`
	Count  int    `json:"count"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// SegmentInfo describes one per-month segment.
type SegmentInfo struct {
	Month      types.Month `json:"month"`
	Label      string      `json:"label"`
	FirstBlock uint64      `json:"first_block"`
	LastBlock  uint64      `json:"last_block"`
	Blocks     FileInfo    `json:"blocks"`
	Flashbots  FileInfo    `json:"flashbots"`
	Observed   FileInfo    `json:"observed"`
}

// ObserverInfo records the observation window bounds.
type ObserverInfo struct {
	Start uint64 `json:"start"`
	Stop  uint64 `json:"stop"`
}

// Manifest is the archive's index and integrity record.
type Manifest struct {
	Version     int               `json:"version"`
	Timeline    types.Timeline    `json:"timeline"`
	WETH        types.Address     `json:"weth"`
	Head        uint64            `json:"head"`
	TotalBlocks int               `json:"total_blocks"`
	Observer    *ObserverInfo     `json:"observer,omitempty"`
	Prices      FileInfo          `json:"prices"`
	Segments    []SegmentInfo     `json:"segments"`
	Meta        map[string]string `json:"meta,omitempty"`
}

// SegmentLabel names a month's segment directory, e.g. "2020-05".
func SegmentLabel(m types.Month) string { return m.Label() }

// priceDoc is the prices.jsonl line shape: one token's full history.
type priceDoc struct {
	Token  types.Address  `json:"token"`
	Points []prices.Point `json:"points"`
}

// Write persists a dataset into dir as a segmented archive, returning the
// manifest. meta carries free-form provenance (seed, scenario, scale) for
// the manifest; it does not affect restoration.
func Write(dir string, ds *dataset.Dataset, meta map[string]string) (*Manifest, error) {
	if ds.Chain == nil || ds.Chain.Head() == nil {
		return nil, fmt.Errorf("archive: dataset has no blocks")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	tl := ds.Chain.Timeline
	man := &Manifest{
		Version:     Version,
		Timeline:    tl,
		WETH:        ds.WETH,
		Head:        ds.Chain.Head().Header.Number,
		TotalBlocks: ds.Chain.Len(),
		Meta:        meta,
	}

	// Partition the collected artifacts by study month.
	fbByMonth := map[types.Month][]flashbots.BlockRecord{}
	for _, rec := range ds.FBBlocks {
		m := tl.MonthOfBlock(rec.BlockNumber)
		fbByMonth[m] = append(fbByMonth[m], rec)
	}
	obsByMonth := map[types.Month][]p2p.ObservedTx{}
	if ds.Observer != nil {
		for _, rec := range ds.Observer.Records() {
			m := tl.MonthOfBlock(rec.FirstSeenBlock)
			obsByMonth[m] = append(obsByMonth[m], rec)
		}
		start, stop := ds.Observer.Window()
		man.Observer = &ObserverInfo{Start: start, Stop: stop}
	}

	for m := types.Month(0); m < types.StudyMonths; m++ {
		blocks := ds.Chain.BlocksInMonth(m)
		if len(blocks) == 0 {
			continue
		}
		label := SegmentLabel(m)
		segDir := filepath.Join(dir, label)
		seg := SegmentInfo{
			Month:      m,
			Label:      label,
			FirstBlock: blocks[0].Header.Number,
			LastBlock:  blocks[len(blocks)-1].Header.Number,
		}
		var err error
		if seg.Blocks, err = writeJSONL(dir, segDir, "blocks", blocks); err != nil {
			return nil, err
		}
		if seg.Flashbots, err = writeJSONL(dir, segDir, "flashbots", fbByMonth[m]); err != nil {
			return nil, err
		}
		if seg.Observed, err = writeJSONL(dir, segDir, "observed", obsByMonth[m]); err != nil {
			return nil, err
		}
		man.Segments = append(man.Segments, seg)
	}

	var pdocs []priceDoc
	if ds.Prices != nil {
		for _, tok := range ds.Prices.Tokens() {
			pdocs = append(pdocs, priceDoc{Token: tok, Points: ds.Prices.History(tok)})
		}
	}
	var err error
	if man.Prices, err = writeJSONL(dir, dir, "prices", pdocs); err != nil {
		return nil, err
	}

	// The manifest is written last: a crashed Write leaves no manifest and
	// Read refuses the directory.
	mf, err := os.Create(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(man); err != nil {
		mf.Close()
		return nil, fmt.Errorf("archive: manifest: %w", err)
	}
	return man, mf.Close()
}

// writeJSONL persists docs as <segDir>/<name>.jsonl through the document
// store and returns its integrity record with a path relative to root.
func writeJSONL[T any](root, segDir, name string, docs []T) (FileInfo, error) {
	col := store.NewCollection[T](name)
	col.InsertAll(docs...)
	if err := col.SaveFile(segDir); err != nil {
		return FileInfo{}, fmt.Errorf("archive: write %s: %w", name, err)
	}
	path := filepath.Join(segDir, name+".jsonl")
	rel, err := filepath.Rel(root, path)
	if err != nil {
		return FileInfo{}, err
	}
	sum, size, err := checksum(path)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Name: filepath.ToSlash(rel), Count: len(docs), Bytes: size, SHA256: sum}, nil
}

// checksum computes the SHA-256 and size of a file.
func checksum(path string) (string, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}

// ReadManifest loads and sanity-checks an archive's manifest without
// touching the data files.
func ReadManifest(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("archive: manifest: %w", err)
	}
	if man.Version != Version {
		return nil, fmt.Errorf("archive: unsupported version %d (want %d)", man.Version, Version)
	}
	if man.Timeline.BlocksPerMonth == 0 {
		return nil, fmt.Errorf("archive: manifest has no timeline")
	}
	return &man, nil
}

// Read restores the full dataset from a segmented archive, verifying
// every file against its manifest checksum. The result is bit-compatible
// with the written dataset: analyzing it reproduces the original report.
func Read(dir string) (*dataset.Dataset, *Manifest, error) {
	return ReadRange(dir, 0, types.StudyMonths-1)
}

// ReadRange restores only the segments whose month falls in [from, to]
// (inclusive) — the random-access path behind `mevscope serve`'s month
// slicing: a query for four months reads four segment directories, not
// the whole archive. The restored chain's timeline starts at the first
// selected month, so block→month mapping stays aligned with the full
// archive, and every selected file is still checksum-verified. The
// observer is restored only when the selected range reaches into the
// observation window; its observation log is read from every segment up
// to the slice end — not just the sliced months — because a transaction
// first seen near a month boundary can be mined in the next month, and
// dropping its record would silently flip it from public to private in
// the §6 inference (the logs are tiny next to the block files, so the
// random-access win is preserved).
func ReadRange(dir string, from, to types.Month) (*dataset.Dataset, *Manifest, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	var segs []SegmentInfo
	for _, seg := range man.Segments {
		if seg.Month >= from && seg.Month <= to {
			segs = append(segs, seg)
		}
	}
	if len(segs) == 0 {
		return nil, nil, fmt.Errorf("archive: no segments in months %s..%s (archive has %d segments)",
			from.Label(), to.Label(), len(man.Segments))
	}
	full := len(segs) == len(man.Segments)

	tl := man.Timeline
	tl.StartBlock = man.Timeline.FirstBlockOfMonth(segs[0].Month)
	tl.FirstMonth = segs[0].Month
	ds := &dataset.Dataset{
		Chain:  chain.New(tl),
		Prices: prices.NewSeries(),
		WETH:   man.WETH,
	}
	var observed []p2p.ObservedTx
	for _, seg := range man.Segments {
		if seg.Month >= from {
			break // in-slice logs are read with their segment below
		}
		obs, err := readJSONL[p2p.ObservedTx](dir, seg.Observed)
		if err != nil {
			return nil, nil, err
		}
		observed = append(observed, obs...)
	}
	for _, seg := range segs {
		blocks, err := readJSONL[*types.Block](dir, seg.Blocks)
		if err != nil {
			return nil, nil, err
		}
		for _, b := range blocks {
			b.Seal()
			// Transaction identity is the content-derived hash; the stored
			// receipts reference the identities the original run used. A
			// mismatch means some transaction was mutated after hashing
			// during the run — refuse rather than mis-link every record.
			for i, rcpt := range b.Receipts {
				if i < len(b.Txs) && rcpt.TxHash != b.Txs[i].Hash() {
					return nil, nil, fmt.Errorf("archive: segment %s block %d tx %d: identity drift (receipt %v vs recomputed %v)",
						seg.Label, b.Header.Number, i, rcpt.TxHash.Short(), b.Txs[i].Hash().Short())
				}
			}
			if err := ds.Chain.Append(b); err != nil {
				return nil, nil, fmt.Errorf("archive: segment %s: %w", seg.Label, err)
			}
		}
		fb, err := readJSONL[flashbots.BlockRecord](dir, seg.Flashbots)
		if err != nil {
			return nil, nil, err
		}
		ds.FBBlocks = append(ds.FBBlocks, fb...)
		obs, err := readJSONL[p2p.ObservedTx](dir, seg.Observed)
		if err != nil {
			return nil, nil, err
		}
		observed = append(observed, obs...)
	}
	wantBlocks, wantHead := man.TotalBlocks, man.Head
	if !full {
		wantBlocks = 0
		for _, seg := range segs {
			wantBlocks += seg.Blocks.Count
		}
		wantHead = segs[len(segs)-1].LastBlock
	}
	if ds.Chain.Len() != wantBlocks {
		return nil, nil, fmt.Errorf("archive: restored %d blocks, manifest says %d", ds.Chain.Len(), wantBlocks)
	}
	head := ds.Chain.Head()
	if head == nil || head.Header.Number != wantHead {
		return nil, nil, fmt.Errorf("archive: restored head does not match manifest head %d", wantHead)
	}
	ds.FBSet = dataset.FBSetOf(ds.FBBlocks)
	if man.Observer != nil && man.Observer.Start <= head.Header.Number {
		ds.Observer = p2p.RestoreObserver(observed, man.Observer.Start, man.Observer.Stop)
	}
	pdocs, err := readJSONL[priceDoc](dir, man.Prices)
	if err != nil {
		return nil, nil, err
	}
	for _, pd := range pdocs {
		if err := ds.Prices.Restore(pd.Token, pd.Points); err != nil {
			return nil, nil, fmt.Errorf("archive: %w", err)
		}
	}
	return ds, man, nil
}

// readJSONL loads one data file through the document store after
// verifying its checksum and document count against the manifest.
func readJSONL[T any](root string, fi FileInfo) ([]T, error) {
	path := filepath.Join(root, filepath.FromSlash(fi.Name))
	sum, size, err := checksum(path)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	if sum != fi.SHA256 || size != fi.Bytes {
		return nil, fmt.Errorf("archive: %s is corrupt (checksum mismatch)", fi.Name)
	}
	col := store.NewCollection[T](filepath.Base(fi.Name))
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := col.ReadJSON(f); err != nil {
		return nil, fmt.Errorf("archive: %s: %w", fi.Name, err)
	}
	if col.Count() != fi.Count {
		return nil, fmt.Errorf("archive: %s has %d documents, manifest says %d", fi.Name, col.Count(), fi.Count)
	}
	return col.All(), nil
}
