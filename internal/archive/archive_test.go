package archive_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mevscope"
	"mevscope/internal/archive"
	"mevscope/internal/dataset"
	"mevscope/internal/sim"
)

// world simulates a small full-window world (the observer window opens,
// so the archive carries observed pending transactions too).
func world(t *testing.T) *sim.Sim {
	t.Helper()
	cfg := sim.DefaultConfig(17)
	cfg.BlocksPerMonth = 25
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestArchiveRoundTrip: write → read → analyze must reproduce the
// original report byte for byte.
func TestArchiveRoundTrip(t *testing.T) {
	s := world(t)
	ds := dataset.FromSim(s)
	if ds.Observer == nil {
		t.Fatal("expected an observation window at this scale")
	}
	dir := t.TempDir()
	man, err := archive.Write(dir, ds, map[string]string{"seed": "17"})
	if err != nil {
		t.Fatal(err)
	}
	if man.TotalBlocks != s.Chain.Len() {
		t.Errorf("manifest blocks = %d, want %d", man.TotalBlocks, s.Chain.Len())
	}
	if len(man.Segments) == 0 || man.Observer == nil {
		t.Fatalf("manifest incomplete: %d segments, observer %v", len(man.Segments), man.Observer)
	}

	restored, man2, err := archive.Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man2.Head != man.Head {
		t.Errorf("restored head %d, want %d", man2.Head, man.Head)
	}
	if restored.Chain.Len() != s.Chain.Len() {
		t.Fatalf("restored %d blocks, want %d", restored.Chain.Len(), s.Chain.Len())
	}
	// Block hashes must survive the round trip (Seal is content-derived).
	for _, b := range s.Chain.Blocks() {
		rb, err := restored.Chain.ByNumber(b.Header.Number)
		if err != nil {
			t.Fatalf("block %d missing after restore: %v", b.Header.Number, err)
		}
		if rb.Hash() != b.Hash() {
			t.Fatalf("block %d hash changed across the round trip", b.Header.Number)
		}
	}
	if restored.Observer.Count() != ds.Observer.Count() {
		t.Errorf("restored observer has %d records, want %d", restored.Observer.Count(), ds.Observer.Count())
	}

	origStudy, err := mevscope.AnalyzeDataset(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	restStudy, err := mevscope.AnalyzeDataset(restored, 2)
	if err != nil {
		t.Fatal(err)
	}
	var orig, rest bytes.Buffer
	mevscope.WriteReportTo(&orig, origStudy.Report)
	mevscope.WriteReportTo(&rest, restStudy.Report)
	if !bytes.Equal(orig.Bytes(), rest.Bytes()) {
		t.Error("report over the restored archive differs from the original")
	}
}

// TestArchiveDetectsCorruption: a flipped byte in any data file must fail
// the checksum verification.
func TestArchiveDetectsCorruption(t *testing.T) {
	s := world(t)
	dir := t.TempDir()
	man, err := archive.Write(dir, dataset.FromSim(s), nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(dir, filepath.FromSlash(man.Segments[0].Blocks.Name))
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := archive.Read(dir); err == nil {
		t.Fatal("corrupted archive should fail to read")
	}
}

// TestArchiveRejectsMissingManifest: a directory without a manifest is
// not an archive.
func TestArchiveRejectsMissingManifest(t *testing.T) {
	if _, _, err := archive.Read(t.TempDir()); err == nil {
		t.Fatal("empty directory should fail to read")
	}
}
