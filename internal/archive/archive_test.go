package archive_test

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"mevscope"
	"mevscope/internal/archive"
	"mevscope/internal/dataset"
	"mevscope/internal/sim"
	"mevscope/internal/types"
)

// world simulates a small full-window world (the observer window opens,
// so the archive carries observed pending transactions too).
func world(t *testing.T) *sim.Sim {
	t.Helper()
	cfg := sim.DefaultConfig(17)
	cfg.BlocksPerMonth = 25
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestArchiveRoundTrip: write → read → analyze must reproduce the
// original report byte for byte.
func TestArchiveRoundTrip(t *testing.T) {
	s := world(t)
	ds := dataset.FromSim(s)
	if ds.Observer == nil {
		t.Fatal("expected an observation window at this scale")
	}
	dir := t.TempDir()
	man, err := archive.Write(dir, ds, map[string]string{"seed": "17"})
	if err != nil {
		t.Fatal(err)
	}
	if man.TotalBlocks != s.Chain.Len() {
		t.Errorf("manifest blocks = %d, want %d", man.TotalBlocks, s.Chain.Len())
	}
	if len(man.Segments) == 0 || man.Observer == nil {
		t.Fatalf("manifest incomplete: %d segments, observer %v", len(man.Segments), man.Observer)
	}

	restored, man2, err := archive.Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man2.Head != man.Head {
		t.Errorf("restored head %d, want %d", man2.Head, man.Head)
	}
	if restored.Chain.Len() != s.Chain.Len() {
		t.Fatalf("restored %d blocks, want %d", restored.Chain.Len(), s.Chain.Len())
	}
	// Block hashes must survive the round trip (Seal is content-derived).
	for _, b := range s.Chain.Blocks() {
		rb, err := restored.Chain.ByNumber(b.Header.Number)
		if err != nil {
			t.Fatalf("block %d missing after restore: %v", b.Header.Number, err)
		}
		if rb.Hash() != b.Hash() {
			t.Fatalf("block %d hash changed across the round trip", b.Header.Number)
		}
	}
	if restored.Observer.Count() != ds.Observer.Count() {
		t.Errorf("restored observer has %d records, want %d", restored.Observer.Count(), ds.Observer.Count())
	}

	origStudy, err := mevscope.AnalyzeDataset(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	restStudy, err := mevscope.AnalyzeDataset(restored, 2)
	if err != nil {
		t.Fatal(err)
	}
	var orig, rest bytes.Buffer
	mevscope.WriteReportTo(&orig, origStudy.Report)
	mevscope.WriteReportTo(&rest, restStudy.Report)
	if !bytes.Equal(orig.Bytes(), rest.Bytes()) {
		t.Error("report over the restored archive differs from the original")
	}
}

// TestFormatsProduceIdenticalReports is the format acceptance gate: one
// world archived in every format must restore to reports byte-identical
// to each other AND to the in-memory pipeline's — the encoding is an
// implementation detail the measurement can never see. It also pins the
// compression ladder: each format must be smaller on disk than its
// predecessor.
func TestFormatsProduceIdenticalReports(t *testing.T) {
	s := world(t)
	ds := dataset.FromSim(s)
	memStudy, err := mevscope.AnalyzeDataset(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	var mem bytes.Buffer
	mevscope.WriteReportTo(&mem, memStudy.Report)

	sizes := map[archive.Format]int64{}
	for _, format := range []archive.Format{archive.FormatV1, archive.FormatV2, archive.FormatV3} {
		dir := t.TempDir()
		man, err := archive.WriteFormat(dir, ds, map[string]string{"seed": "17"}, format)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if man.Format() != format {
			t.Fatalf("manifest format = %s, want %s", man.Format(), format)
		}
		sizes[format] = man.DataBytes()
		for _, seg := range man.Segments {
			if format == archive.FormatV2 && len(seg.Index) == 0 {
				t.Errorf("%s: v2 segment %s has no block index", format, seg.Label)
			}
			if format == archive.FormatV3 && len(seg.Columns) == 0 {
				t.Errorf("%s: v3 segment %s has no column chunks", format, seg.Label)
			}
		}
		restored, _, err := archive.Read(dir)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		st, err := mevscope.AnalyzeDataset(restored, 2)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		var got bytes.Buffer
		mevscope.WriteReportTo(&got, st.Report)
		if !bytes.Equal(got.Bytes(), mem.Bytes()) {
			t.Errorf("%s archive's report differs from the in-memory pipeline's", format)
		}
	}
	if sizes[archive.FormatV2] >= sizes[archive.FormatV1] {
		t.Errorf("v2 archive (%d bytes) is not smaller than v1 (%d bytes)",
			sizes[archive.FormatV2], sizes[archive.FormatV1])
	}
	if sizes[archive.FormatV3] >= sizes[archive.FormatV2] {
		t.Errorf("v3 archive (%d bytes) is not smaller than v2 (%d bytes)",
			sizes[archive.FormatV3], sizes[archive.FormatV2])
	}
}

// TestReadBlock: the random-access path (block index for v2, zone-map
// chunk selection for v3) returns the same sealed block a full restore
// does, for blocks on and off the sparse index points, in every format.
func TestReadBlock(t *testing.T) {
	s := world(t)
	for _, format := range []archive.Format{archive.FormatV1, archive.FormatV2, archive.FormatV3} {
		dir := t.TempDir()
		if _, err := archive.WriteFormat(dir, dataset.FromSim(s), nil, format); err != nil {
			t.Fatal(err)
		}
		head := s.Chain.Head().Header.Number
		start := s.Chain.Timeline.StartBlock
		for _, n := range []uint64{start, start + 1, start + 63, start + 64, (start + head) / 2, head} {
			got, err := archive.ReadBlock(dir, n)
			if err != nil {
				t.Fatalf("%s: ReadBlock(%d): %v", format, n, err)
			}
			want, err := s.Chain.ByNumber(n)
			if err != nil {
				t.Fatal(err)
			}
			if got.Hash() != want.Hash() {
				t.Errorf("%s: ReadBlock(%d) hash differs from the chain's", format, n)
			}
		}
		if _, err := archive.ReadBlock(dir, head+1); err == nil {
			t.Errorf("%s: block beyond the archive served", format)
		}
		// The manifest-reusing variant resolves the same blocks.
		man, err := archive.ReadManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		got, err := archive.ReadBlockFrom(dir, man, start+1)
		if err != nil || got.Header.Number != start+1 {
			t.Errorf("%s: ReadBlockFrom(%d) = (%v, %v)", format, start+1, got, err)
		}
	}
}

// countingCache wraps the SegmentCache contract with call counters, so
// the test can see which reads hit the disk.
type countingCache struct {
	mu   sync.Mutex
	segs map[string]*dataset.Segment
	hits int
	adds int
}

func (c *countingCache) Get(dir string, m types.Month) (*dataset.Segment, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	seg, ok := c.segs[dir+m.Label()]
	if ok {
		c.hits++
	}
	return seg, ok
}

func (c *countingCache) Add(dir string, m types.Month, seg *dataset.Segment, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.segs == nil {
		c.segs = map[string]*dataset.Segment{}
	}
	c.segs[dir+m.Label()] = seg
	c.adds++
}

// TestReadRangeSharedSegments: two overlapping ranges through one cache
// decode each shared month exactly once, and the cached assembly is
// byte-identical to a cold one.
func TestReadRangeSharedSegments(t *testing.T) {
	s := world(t)
	dir := t.TempDir()
	if _, err := archive.Write(dir, dataset.FromSim(s), nil); err != nil {
		t.Fatal(err)
	}
	cache := &countingCache{}
	opt := archive.ReadOptions{Workers: 2, Cache: cache}
	cold, _, err := archive.ReadRangeWith(dir, 8, 12, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cache.adds != 5 || cache.hits != 0 {
		t.Fatalf("cold read: %d adds, %d hits; want 5 adds, 0 hits", cache.adds, cache.hits)
	}
	warm, _, err := archive.ReadRangeWith(dir, 10, 14, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cache.adds != 7 {
		t.Errorf("overlap read re-decoded shared months: %d adds, want 7 (months 10-12 cached)", cache.adds)
	}
	// 3 shared selected months (10-12) plus the pre-slice observation
	// logs of cached months 8-9 come from the cache.
	if cache.hits != 5 {
		t.Errorf("overlap read hit %d cached months, want 5", cache.hits)
	}
	coldStudy, err := mevscope.AnalyzeDataset(cold, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Re-read the first range fully warm: every month cached, reports
	// byte-identical to the cold read's.
	cached, _, err := archive.ReadRangeWith(dir, 8, 12, opt)
	if err != nil {
		t.Fatal(err)
	}
	cachedStudy, err := mevscope.AnalyzeDataset(cached, 1)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	mevscope.WriteReportTo(&a, coldStudy.Report)
	mevscope.WriteReportTo(&b, cachedStudy.Report)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("cache-assembled report differs from the cold read's")
	}
	if warm.Chain.Len() == 0 {
		t.Error("warm read restored nothing")
	}
}

// TestArchiveDetectsCorruption: a flipped byte in any data file must fail
// the checksum verification.
func TestArchiveDetectsCorruption(t *testing.T) {
	s := world(t)
	dir := t.TempDir()
	man, err := archive.Write(dir, dataset.FromSim(s), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The default format is v3: the block data lives in the headers
	// column chunk (v1/v2 archives name it in Blocks instead).
	name := man.Segments[0].Blocks.Name
	if name == "" {
		for _, ci := range man.Segments[0].Columns {
			if ci.Name == archive.ColHeaders {
				name = ci.File.Name
			}
		}
	}
	victim := filepath.Join(dir, filepath.FromSlash(name))
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := archive.Read(dir); err == nil {
		t.Fatal("corrupted archive should fail to read")
	}
}

// TestArchiveRejectsMissingManifest: a directory without a manifest is
// not an archive.
func TestArchiveRejectsMissingManifest(t *testing.T) {
	if _, _, err := archive.Read(t.TempDir()); err == nil {
		t.Fatal("empty directory should fail to read")
	}
}

// TestReadRange: a month slice restores only those segments, keeps
// block→month alignment with the full archive, and its analysis matches
// the full analysis month for month.
func TestReadRange(t *testing.T) {
	s := world(t)
	full := dataset.FromSim(s)
	dir := t.TempDir()
	if _, err := archive.Write(dir, full, nil); err != nil {
		t.Fatal(err)
	}

	from, to := types.Month(10), types.Month(13)
	sliced, man, err := archive.ReadRange(dir, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if man.TotalBlocks != s.Chain.Len() {
		t.Errorf("manifest is the archive's, not the slice's: %d blocks", man.TotalBlocks)
	}
	wantBlocks := 0
	for m := from; m <= to; m++ {
		wantBlocks += len(s.Chain.BlocksInMonth(m))
	}
	if sliced.Chain.Len() != wantBlocks {
		t.Fatalf("slice restored %d blocks, want %d", sliced.Chain.Len(), wantBlocks)
	}
	if got := sliced.Chain.Timeline.FirstMonth; got != from {
		t.Errorf("slice timeline starts at month %d, want %d", got, from)
	}
	// Block→month alignment: the slice's timeline maps every restored
	// block to the same month the full timeline does.
	for _, b := range sliced.Chain.Blocks() {
		if got, want := sliced.Chain.Timeline.MonthOfBlock(b.Header.Number), s.Chain.Timeline.MonthOfBlock(b.Header.Number); got != want {
			t.Fatalf("block %d maps to month %d in the slice, %d in the full timeline", b.Header.Number, got, want)
		}
	}
	// The slice ends before the observation window: no observer.
	if sliced.Observer != nil {
		t.Error("slice below the observation window restored an observer")
	}

	fullStudy, err := mevscope.AnalyzeDataset(full, 1)
	if err != nil {
		t.Fatal(err)
	}
	sliceStudy, err := mevscope.AnalyzeDataset(sliced, 1)
	if err != nil {
		t.Fatal(err)
	}
	fullByMonth := map[types.Month]int{}
	for _, row := range fullStudy.Report.Fig3 {
		fullByMonth[row.Month] = row.FlashbotsBlocks
	}
	if got := len(sliceStudy.Report.Fig3); got != int(to-from)+1 {
		t.Fatalf("slice fig3 covers %d months, want %d", got, int(to-from)+1)
	}
	for _, row := range sliceStudy.Report.Fig3 {
		if row.Month < from || row.Month > to {
			t.Errorf("slice fig3 contains out-of-range month %s", row.Month)
		}
		if row.FlashbotsBlocks != fullByMonth[row.Month] {
			t.Errorf("month %s: slice counts %d Flashbots blocks, full %d",
				row.Month, row.FlashbotsBlocks, fullByMonth[row.Month])
		}
	}
}

// TestReadRangeObserverWindow: a slice reaching into the observation
// window restores the observer with only that slice's records.
func TestReadRangeObserverWindow(t *testing.T) {
	s := world(t)
	full := dataset.FromSim(s)
	if full.Observer == nil {
		t.Fatal("expected an observation window at this scale")
	}
	dir := t.TempDir()
	if _, err := archive.Write(dir, full, nil); err != nil {
		t.Fatal(err)
	}
	sliced, _, err := archive.ReadRange(dir, types.ObservationStartMonth, types.StudyMonths-1)
	if err != nil {
		t.Fatal(err)
	}
	if sliced.Observer == nil {
		t.Fatal("slice through the observation window lost the observer")
	}
	if sliced.Observer.Count() == 0 || sliced.Observer.Count() > full.Observer.Count() {
		t.Errorf("slice observer has %d records, full has %d", sliced.Observer.Count(), full.Observer.Count())
	}
	st, err := mevscope.AnalyzeDataset(sliced, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Report.Fig9 == nil {
		t.Error("window slice analysis produced no Figure 9")
	}

	// A slice starting inside the observation window must still carry the
	// records first seen in the earlier window months: a transaction
	// observed near a month boundary can be mined in the next month, and
	// losing its record would flip it from public to private in the §6
	// inference.
	late, _, err := archive.ReadRange(dir, types.ObservationStartMonth+1, types.StudyMonths-1)
	if err != nil {
		t.Fatal(err)
	}
	if late.Observer == nil {
		t.Fatal("late window slice lost the observer")
	}
	if late.Observer.Count() != full.Observer.Count() {
		t.Errorf("slice from month %d carries %d observations, full archive has %d (pre-slice months dropped)",
			types.ObservationStartMonth+1, late.Observer.Count(), full.Observer.Count())
	}
}

// TestReadRangeEmpty: a range with no segments errors instead of
// returning an empty dataset.
func TestReadRangeEmpty(t *testing.T) {
	s := world(t)
	dir := t.TempDir()
	if _, err := archive.Write(dir, dataset.FromSim(s), nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := archive.ReadRange(dir, 5, 3); err == nil {
		t.Error("inverted range should error")
	}
}

// TestReadEqualsFullRange: Read is ReadRange over the whole window.
func TestReadEqualsFullRange(t *testing.T) {
	s := world(t)
	dir := t.TempDir()
	if _, err := archive.Write(dir, dataset.FromSim(s), nil); err != nil {
		t.Fatal(err)
	}
	a, _, err := archive.Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := archive.ReadRange(dir, 0, types.StudyMonths-1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Chain.Len() != b.Chain.Len() || a.Chain.Timeline != b.Chain.Timeline {
		t.Errorf("Read and full ReadRange differ: %d/%d blocks", a.Chain.Len(), b.Chain.Len())
	}
}

// TestRecompressMatchesDirectWrite: migrating a v2 archive through
// Recompress must produce a v3 archive file-for-file identical to
// archiving the dataset as v3 directly — the v2→v3 migration path adds
// no drift, so a recompressed archive serves the same reports.
func TestRecompressMatchesDirectWrite(t *testing.T) {
	s := world(t)
	ds := dataset.FromSim(s)
	v2Dir, directDir, migratedDir := t.TempDir(), t.TempDir(), t.TempDir()
	if _, err := archive.WriteFormat(v2Dir, ds, map[string]string{"seed": "17"}, archive.FormatV2); err != nil {
		t.Fatal(err)
	}
	direct, err := archive.WriteFormat(directDir, ds, map[string]string{"seed": "17"}, archive.FormatV3)
	if err != nil {
		t.Fatal(err)
	}
	migrated, err := archive.Recompress(v2Dir, migratedDir, archive.FormatV3)
	if err != nil {
		t.Fatal(err)
	}
	if len(migrated.Segments) != len(direct.Segments) {
		t.Fatalf("migrated archive has %d segments, direct write has %d", len(migrated.Segments), len(direct.Segments))
	}
	for i, mseg := range migrated.Segments {
		dseg := direct.Segments[i]
		if len(mseg.Columns) != len(dseg.Columns) {
			t.Fatalf("segment %s: migrated %d columns, direct %d", mseg.Label, len(mseg.Columns), len(dseg.Columns))
		}
		for j, mc := range mseg.Columns {
			if dc := dseg.Columns[j]; mc.File.SHA256 != dc.File.SHA256 || mc != dc {
				t.Errorf("segment %s column %s: migrated chunk differs from direct write", mseg.Label, mc.Name)
			}
		}
	}
	if migrated.Prices.SHA256 != direct.Prices.SHA256 {
		t.Error("migrated prices file differs from direct write")
	}
	restored, man, err := archive.Read(migratedDir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Format() != archive.FormatV3 {
		t.Errorf("migrated archive reads back as %v, want v3", man.Format())
	}
	if restored.Chain.Len() != ds.Chain.Len() {
		t.Errorf("migrated archive restored %d blocks, want %d", restored.Chain.Len(), ds.Chain.Len())
	}
}
