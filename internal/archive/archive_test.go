package archive_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mevscope"
	"mevscope/internal/archive"
	"mevscope/internal/dataset"
	"mevscope/internal/sim"
	"mevscope/internal/types"
)

// world simulates a small full-window world (the observer window opens,
// so the archive carries observed pending transactions too).
func world(t *testing.T) *sim.Sim {
	t.Helper()
	cfg := sim.DefaultConfig(17)
	cfg.BlocksPerMonth = 25
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestArchiveRoundTrip: write → read → analyze must reproduce the
// original report byte for byte.
func TestArchiveRoundTrip(t *testing.T) {
	s := world(t)
	ds := dataset.FromSim(s)
	if ds.Observer == nil {
		t.Fatal("expected an observation window at this scale")
	}
	dir := t.TempDir()
	man, err := archive.Write(dir, ds, map[string]string{"seed": "17"})
	if err != nil {
		t.Fatal(err)
	}
	if man.TotalBlocks != s.Chain.Len() {
		t.Errorf("manifest blocks = %d, want %d", man.TotalBlocks, s.Chain.Len())
	}
	if len(man.Segments) == 0 || man.Observer == nil {
		t.Fatalf("manifest incomplete: %d segments, observer %v", len(man.Segments), man.Observer)
	}

	restored, man2, err := archive.Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man2.Head != man.Head {
		t.Errorf("restored head %d, want %d", man2.Head, man.Head)
	}
	if restored.Chain.Len() != s.Chain.Len() {
		t.Fatalf("restored %d blocks, want %d", restored.Chain.Len(), s.Chain.Len())
	}
	// Block hashes must survive the round trip (Seal is content-derived).
	for _, b := range s.Chain.Blocks() {
		rb, err := restored.Chain.ByNumber(b.Header.Number)
		if err != nil {
			t.Fatalf("block %d missing after restore: %v", b.Header.Number, err)
		}
		if rb.Hash() != b.Hash() {
			t.Fatalf("block %d hash changed across the round trip", b.Header.Number)
		}
	}
	if restored.Observer.Count() != ds.Observer.Count() {
		t.Errorf("restored observer has %d records, want %d", restored.Observer.Count(), ds.Observer.Count())
	}

	origStudy, err := mevscope.AnalyzeDataset(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	restStudy, err := mevscope.AnalyzeDataset(restored, 2)
	if err != nil {
		t.Fatal(err)
	}
	var orig, rest bytes.Buffer
	mevscope.WriteReportTo(&orig, origStudy.Report)
	mevscope.WriteReportTo(&rest, restStudy.Report)
	if !bytes.Equal(orig.Bytes(), rest.Bytes()) {
		t.Error("report over the restored archive differs from the original")
	}
}

// TestArchiveDetectsCorruption: a flipped byte in any data file must fail
// the checksum verification.
func TestArchiveDetectsCorruption(t *testing.T) {
	s := world(t)
	dir := t.TempDir()
	man, err := archive.Write(dir, dataset.FromSim(s), nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(dir, filepath.FromSlash(man.Segments[0].Blocks.Name))
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := archive.Read(dir); err == nil {
		t.Fatal("corrupted archive should fail to read")
	}
}

// TestArchiveRejectsMissingManifest: a directory without a manifest is
// not an archive.
func TestArchiveRejectsMissingManifest(t *testing.T) {
	if _, _, err := archive.Read(t.TempDir()); err == nil {
		t.Fatal("empty directory should fail to read")
	}
}

// TestReadRange: a month slice restores only those segments, keeps
// block→month alignment with the full archive, and its analysis matches
// the full analysis month for month.
func TestReadRange(t *testing.T) {
	s := world(t)
	full := dataset.FromSim(s)
	dir := t.TempDir()
	if _, err := archive.Write(dir, full, nil); err != nil {
		t.Fatal(err)
	}

	from, to := types.Month(10), types.Month(13)
	sliced, man, err := archive.ReadRange(dir, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if man.TotalBlocks != s.Chain.Len() {
		t.Errorf("manifest is the archive's, not the slice's: %d blocks", man.TotalBlocks)
	}
	wantBlocks := 0
	for m := from; m <= to; m++ {
		wantBlocks += len(s.Chain.BlocksInMonth(m))
	}
	if sliced.Chain.Len() != wantBlocks {
		t.Fatalf("slice restored %d blocks, want %d", sliced.Chain.Len(), wantBlocks)
	}
	if got := sliced.Chain.Timeline.FirstMonth; got != from {
		t.Errorf("slice timeline starts at month %d, want %d", got, from)
	}
	// Block→month alignment: the slice's timeline maps every restored
	// block to the same month the full timeline does.
	for _, b := range sliced.Chain.Blocks() {
		if got, want := sliced.Chain.Timeline.MonthOfBlock(b.Header.Number), s.Chain.Timeline.MonthOfBlock(b.Header.Number); got != want {
			t.Fatalf("block %d maps to month %d in the slice, %d in the full timeline", b.Header.Number, got, want)
		}
	}
	// The slice ends before the observation window: no observer.
	if sliced.Observer != nil {
		t.Error("slice below the observation window restored an observer")
	}

	fullStudy, err := mevscope.AnalyzeDataset(full, 1)
	if err != nil {
		t.Fatal(err)
	}
	sliceStudy, err := mevscope.AnalyzeDataset(sliced, 1)
	if err != nil {
		t.Fatal(err)
	}
	fullByMonth := map[types.Month]int{}
	for _, row := range fullStudy.Report.Fig3 {
		fullByMonth[row.Month] = row.FlashbotsBlocks
	}
	if got := len(sliceStudy.Report.Fig3); got != int(to-from)+1 {
		t.Fatalf("slice fig3 covers %d months, want %d", got, int(to-from)+1)
	}
	for _, row := range sliceStudy.Report.Fig3 {
		if row.Month < from || row.Month > to {
			t.Errorf("slice fig3 contains out-of-range month %s", row.Month)
		}
		if row.FlashbotsBlocks != fullByMonth[row.Month] {
			t.Errorf("month %s: slice counts %d Flashbots blocks, full %d",
				row.Month, row.FlashbotsBlocks, fullByMonth[row.Month])
		}
	}
}

// TestReadRangeObserverWindow: a slice reaching into the observation
// window restores the observer with only that slice's records.
func TestReadRangeObserverWindow(t *testing.T) {
	s := world(t)
	full := dataset.FromSim(s)
	if full.Observer == nil {
		t.Fatal("expected an observation window at this scale")
	}
	dir := t.TempDir()
	if _, err := archive.Write(dir, full, nil); err != nil {
		t.Fatal(err)
	}
	sliced, _, err := archive.ReadRange(dir, types.ObservationStartMonth, types.StudyMonths-1)
	if err != nil {
		t.Fatal(err)
	}
	if sliced.Observer == nil {
		t.Fatal("slice through the observation window lost the observer")
	}
	if sliced.Observer.Count() == 0 || sliced.Observer.Count() > full.Observer.Count() {
		t.Errorf("slice observer has %d records, full has %d", sliced.Observer.Count(), full.Observer.Count())
	}
	st, err := mevscope.AnalyzeDataset(sliced, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Report.Fig9 == nil {
		t.Error("window slice analysis produced no Figure 9")
	}

	// A slice starting inside the observation window must still carry the
	// records first seen in the earlier window months: a transaction
	// observed near a month boundary can be mined in the next month, and
	// losing its record would flip it from public to private in the §6
	// inference.
	late, _, err := archive.ReadRange(dir, types.ObservationStartMonth+1, types.StudyMonths-1)
	if err != nil {
		t.Fatal(err)
	}
	if late.Observer == nil {
		t.Fatal("late window slice lost the observer")
	}
	if late.Observer.Count() != full.Observer.Count() {
		t.Errorf("slice from month %d carries %d observations, full archive has %d (pre-slice months dropped)",
			types.ObservationStartMonth+1, late.Observer.Count(), full.Observer.Count())
	}
}

// TestReadRangeEmpty: a range with no segments errors instead of
// returning an empty dataset.
func TestReadRangeEmpty(t *testing.T) {
	s := world(t)
	dir := t.TempDir()
	if _, err := archive.Write(dir, dataset.FromSim(s), nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := archive.ReadRange(dir, 5, 3); err == nil {
		t.Error("inverted range should error")
	}
}

// TestReadEqualsFullRange: Read is ReadRange over the whole window.
func TestReadEqualsFullRange(t *testing.T) {
	s := world(t)
	dir := t.TempDir()
	if _, err := archive.Write(dir, dataset.FromSim(s), nil); err != nil {
		t.Fatal(err)
	}
	a, _, err := archive.Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := archive.ReadRange(dir, 0, types.StudyMonths-1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Chain.Len() != b.Chain.Len() || a.Chain.Timeline != b.Chain.Timeline {
		t.Errorf("Read and full ReadRange differ: %d/%d blocks", a.Chain.Len(), b.Chain.Len())
	}
}
