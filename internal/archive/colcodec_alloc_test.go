package archive

import (
	"path/filepath"
	"runtime"
	"testing"

	"mevscope/internal/types"
)

// The chunk-decode allocation pin. A v3 restore calls readChunk once per
// (segment, column) file, and a projected artifact serve does so for
// every month in the range — the per-chunk scratch (two 64 KiB bufio
// buffers and a gzip inflater) used to be freshly allocated on every
// call. These tests pin the pooled steady state so the scratch cannot
// quietly start re-allocating per chunk again.

// writeTestChunk persists one synthetic chunk with busy dictionaries and
// a varint-heavy body — the shape a real headers or transactions column
// has.
func writeTestChunk(tb testing.TB) (root string, fi FileInfo) {
	tb.Helper()
	root = tb.TempDir()
	w := newColWriter()
	const rows = 512
	for i := 0; i < rows; i++ {
		var a types.Address
		a[0], a[1] = byte(i), byte(i>>8)
		w.addr(a)
		var h types.Hash
		h[0], h[1] = byte(i), byte(i>>8)
		w.hash(h)
		w.uvarint(uint64(i) * 7)
		w.svarint(int64(i) - rows/2)
	}
	fi, err := writeChunk(root, filepath.Join(root, "seg-test"), ColHeaders, rows, w)
	if err != nil {
		tb.Fatal(err)
	}
	return root, fi
}

// decodeTestChunk runs one full readChunk and drains the rows, so the
// measured region covers everything a column decoder pays per chunk.
func decodeTestChunk(tb testing.TB, root string, fi FileInfo) {
	const rows = 512
	r, err := readChunk(root, fi, ColHeaders)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		r.addr()
		r.hash()
		r.uvarint()
		r.svarint()
	}
	if err := r.done(); err != nil {
		tb.Fatal(err)
	}
}

// TestChunkDecodeAllocs pins the steady-state allocation cost of one
// chunk decode. The count barely moves when the scratch pools are
// removed (a handful of extra allocations), but the bytes do: a fresh
// gzip inflater plus two fresh 64 KiB bufio readers cost over 160 KiB
// of garbage per chunk on top of the retained output — so the pin is on
// allocated bytes, with the count as a looser secondary guard.
func TestChunkDecodeAllocs(t *testing.T) {
	root, fi := writeTestChunk(t)
	decodeTestChunk(t, root, fi) // warm the scratch pools
	const runs = 200
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		decodeTestChunk(t, root, fi)
	}
	runtime.ReadMemStats(&after)
	bytesPer := float64(after.TotalAlloc-before.TotalAlloc) / runs
	allocsPer := float64(after.Mallocs-before.Mallocs) / runs
	t.Logf("per chunk decode: %.0f bytes, %.1f allocs", bytesPer, allocsPer)
	if bytesPer > 100<<10 {
		t.Errorf("chunk decode allocates %.0f bytes, want ≤ %d (is the decode scratch still pooled?)",
			bytesPer, 100<<10)
	}
	if allocsPer > 100 {
		t.Errorf("chunk decode costs %.1f allocs, want ≤ 100", allocsPer)
	}
}

// BenchmarkArchiveChunkDecode is the single-chunk decode number behind
// the pin above, in CI's BENCH_archive artifact next to the full-restore
// benchmarks.
func BenchmarkArchiveChunkDecode(b *testing.B) {
	root, fi := writeTestChunk(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decodeTestChunk(b, root, fi)
	}
}
