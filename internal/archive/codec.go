package archive

import (
	"bufio"
	"compress/gzip"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mevscope/internal/types"
)

// The v2 on-disk encoding. A segment file is:
//
//	offset 0:  magic "MSEG" (4 bytes, plain)
//	offset 4:  format byte 0x02 (plain)
//	offset 5:  gzip stream of frames
//
// Each frame is one document: uvarint payload length followed by the
// JSON-encoded payload. The header sits outside the compressed stream so
// format detection never pays a decompression; the gzip trailer CRC plus
// the manifest's SHA-256 (over the whole stored file) catch corruption,
// and the decoder additionally refuses frames that claim more bytes than
// the stream holds (truncation) or fail to decode (bit flips that
// survive framing). The manifest carries a sparse block index per
// segment — (frame, block, uncompressed offset) points — so a reader
// after one block decompresses to the nearest point and skips bytes
// without JSON-decoding frames it does not want.

const (
	// segMagic opens every v2 segment file.
	segMagic = "MSEG"
	// segFormatByte is the codec version the header carries.
	segFormatByte = byte(FormatV2)
	// segExt is the v2 data-file extension.
	segExt = ".seg"
	// maxFrameSize caps a single frame's claimed payload length; anything
	// larger is corruption, not data. The largest real document is one
	// block with its transactions and receipts — far below this — and the
	// cap is what stands between a corrupted length prefix and a
	// multi-gigabyte allocation (gzip's CRC only fires at the trailer),
	// so it must stay small enough that a bogus length cannot hurt.
	maxFrameSize = 1 << 26
	// indexStride is how many frames apart block-index points are taken.
	indexStride = 64
)

// writeSeg encodes docs into <segDir>/<name>.seg and returns the file's
// integrity record (path relative to root) plus each frame's byte offset
// in the uncompressed stream, which the blocks file turns into its index.
func writeSeg[T any](root, segDir, name string, docs []T) (FileInfo, []int64, error) {
	if err := os.MkdirAll(segDir, 0o755); err != nil {
		return FileInfo{}, nil, err
	}
	path := filepath.Join(segDir, name+segExt)
	f, err := os.Create(path)
	if err != nil {
		return FileInfo{}, nil, err
	}
	offsets, err := encodeFrames(f, docs)
	if err != nil {
		_ = f.Close() // encode error wins; the file is junk either way
		return FileInfo{}, nil, fmt.Errorf("archive: write %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return FileInfo{}, nil, err
	}
	fi, err := fileInfoFor(root, path, len(docs))
	return fi, offsets, err
}

// encodeFrames writes the segment header and one frame per document,
// returning each frame's uncompressed byte offset.
func encodeFrames[T any](w io.Writer, docs []T) ([]int64, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(segMagic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(segFormatByte); err != nil {
		return nil, err
	}
	zw, err := gzip.NewWriterLevel(bw, gzip.BestSpeed)
	if err != nil {
		return nil, err
	}
	offsets := make([]int64, 0, len(docs))
	var off int64
	var lenBuf [binary.MaxVarintLen64]byte
	for _, d := range docs {
		payload, err := json.Marshal(d)
		if err != nil {
			return nil, err
		}
		// The decoder refuses frames past maxFrameSize as corruption, so
		// writing one would produce an archive no reader accepts — fail at
		// write time, when the data still exists.
		if len(payload) > maxFrameSize {
			return nil, fmt.Errorf("document of %d bytes exceeds the %d-byte frame cap", len(payload), maxFrameSize)
		}
		offsets = append(offsets, off)
		n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
		if _, err := zw.Write(lenBuf[:n]); err != nil {
			return nil, err
		}
		if _, err := zw.Write(payload); err != nil {
			return nil, err
		}
		off += int64(n) + int64(len(payload))
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return offsets, bw.Flush()
}

// blockIndex takes sparse index points over a month's block frames:
// every indexStride-th frame plus the first. ReadBlock seeks to the last
// point at or below its target and decodes forward from there.
func blockIndex(blocks []*types.Block, offsets []int64) []BlockIndexEntry {
	var out []BlockIndexEntry
	for i := 0; i < len(blocks); i += indexStride {
		out = append(out, BlockIndexEntry{Frame: i, Block: blocks[i].Header.Number, Offset: offsets[i]})
	}
	return out
}

// frameReader walks a v2 segment file's frames.
type frameReader struct {
	br *bufio.Reader
	zr *gzip.Reader
	// buf is the reused payload buffer: a returned frame is only valid
	// until the following next call, which is all the decode loops need
	// (json.Unmarshal never retains its input).
	buf []byte
}

// openFrames validates the plain header and opens the compressed frame
// stream.
func openFrames(name string, r io.Reader) (*frameReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("archive: %s is not a v2 segment file", name)
	}
	if string(hdr[:4]) != segMagic {
		return nil, fmt.Errorf("archive: %s is not a v2 segment file (bad magic)", name)
	}
	if hdr[4] != segFormatByte {
		return nil, fmt.Errorf("archive: %s: unsupported segment codec version %d (want %d)", name, hdr[4], segFormatByte)
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, fmt.Errorf("archive: %s: %w", name, err)
	}
	return &frameReader{br: bufio.NewReaderSize(zr, 1<<16), zr: zr}, nil
}

// readFrameLen reads and validates one frame's length prefix: io.EOF at
// a clean stream end, an error for truncation or a corrupt length. Both
// decode paths (bulk payloadStream, indexed next) go through it so the
// corruption rules cannot drift apart.
func readFrameLen(br *bufio.Reader) (uint64, error) {
	n, err := binary.ReadUvarint(br)
	if err == io.EOF {
		return 0, io.EOF
	}
	if err != nil {
		return 0, fmt.Errorf("truncated frame: %w", err)
	}
	if n > maxFrameSize {
		return 0, fmt.Errorf("frame claims %d bytes (corrupt length)", n)
	}
	return n, nil
}

// next returns the next frame's payload, io.EOF at stream end. The
// gzip trailer CRC is verified when the stream drains, so a bit flip
// anywhere in the compressed bytes surfaces as an error here.
func (fr *frameReader) next() ([]byte, error) {
	n, err := readFrameLen(fr.br)
	if err != nil {
		return nil, err
	}
	if uint64(cap(fr.buf)) < n {
		fr.buf = make([]byte, n+n/4)
	}
	buf := fr.buf[:n]
	if _, err := io.ReadFull(fr.br, buf); err != nil {
		return nil, fmt.Errorf("truncated frame: %w", err)
	}
	return buf, nil
}

// skip discards n uncompressed bytes — the seek primitive behind the
// block index.
func (fr *frameReader) skip(n int64) error {
	_, err := io.CopyN(io.Discard, fr.br, n)
	return err
}

func (fr *frameReader) Close() error { return fr.zr.Close() }

// payloadStream exposes the concatenation of all frame payloads as one
// reader, consuming the length prefixes transparently. Bulk decode runs
// a single streaming json.Decoder over it — one scan per document, like
// the v1 path — while the prefixes keep serving the indexed seek path
// (frameReader.next). Truncation inside a prefix or a payload surfaces
// as an error, never as silent EOF.
type payloadStream struct {
	fr     *frameReader
	rem    uint64 // bytes left in the current frame
	frames int    // frames consumed so far
}

func (ps *payloadStream) Read(p []byte) (int, error) {
	for ps.rem == 0 {
		n, err := readFrameLen(ps.fr.br)
		if err != nil {
			return 0, err
		}
		ps.frames++
		ps.rem = n
	}
	if uint64(len(p)) > ps.rem {
		p = p[:ps.rem]
	}
	n, err := ps.fr.br.Read(p)
	ps.rem -= uint64(n)
	if err == io.EOF && ps.rem > 0 {
		err = fmt.Errorf("truncated frame: %w", io.ErrUnexpectedEOF)
	}
	return n, err
}

// readSeg decodes a whole v2 data file, verifying its checksum and
// document count against the manifest. The SHA-256 is computed on the
// fly while the decoder drains the file — one read pass, not a verify
// pass followed by a decode pass — and compared before the documents
// are released, so corruption is still refused, just cheaper.
func readSeg[T any](root string, fi FileInfo) ([]T, error) {
	path := filepath.Join(root, filepath.FromSlash(fi.Name))
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	cr := &countingReader{r: io.TeeReader(f, h)}
	fr, err := openFrames(fi.Name, cr)
	if err != nil {
		return nil, err
	}
	ps := &payloadStream{fr: fr}
	dec := json.NewDecoder(ps)
	out := make([]T, 0, fi.Count)
	for {
		var d T
		if err := dec.Decode(&d); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("archive: %s: %w", fi.Name, err)
		}
		out = append(out, d)
	}
	if err := fr.Close(); err != nil {
		return nil, fmt.Errorf("archive: %s: %w", fi.Name, err)
	}
	// Drain whatever the buffers did not consume (e.g. bytes appended
	// after the gzip stream) so the hash and size cover the whole file.
	if _, err := io.Copy(io.Discard, cr); err != nil {
		return nil, fmt.Errorf("archive: %s: %w", fi.Name, err)
	}
	if hex.EncodeToString(h.Sum(nil)) != fi.SHA256 || cr.n != fi.Bytes {
		return nil, fmt.Errorf("archive: %s is corrupt (checksum mismatch)", fi.Name)
	}
	if len(out) != fi.Count {
		return nil, fmt.Errorf("archive: %s has %d documents, manifest says %d", fi.Name, len(out), fi.Count)
	}
	if ps.frames != len(out) {
		return nil, fmt.Errorf("archive: %s framing drifted: %d frames, %d documents", fi.Name, ps.frames, len(out))
	}
	return out, nil
}

// countingReader counts the bytes drawn through it.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// ReadBlock restores a single block by number — the random-access path
// the block index exists for. On a v2 archive it decompresses its
// segment only up to the nearest index point at or below the target,
// skips those bytes without JSON-decoding a frame, and decodes forward
// until the block appears; a v1 segment is scanned linearly. The fetch
// trades the full-file checksum pass for speed — the codec's framing and
// gzip CRC still catch gross corruption, and Read/ReadRange remain the
// verified bulk paths.
func ReadBlock(dir string, number uint64) (*types.Block, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	return ReadBlockFrom(dir, man, number)
}

// ReadBlockFrom is ReadBlock against an already-loaded manifest — the
// repeated-lookup path, where re-parsing the manifest (which carries
// every segment's block index) would otherwise dominate the indexed
// decode it pays for.
func ReadBlockFrom(dir string, man *Manifest, number uint64) (*types.Block, error) {
	var si *SegmentInfo
	for i := range man.Segments {
		if s := &man.Segments[i]; s.FirstBlock <= number && number <= s.LastBlock {
			si = s
			break
		}
	}
	if si == nil {
		return nil, fmt.Errorf("archive: no segment holds block %d", number)
	}
	if man.Format() == FormatV3 {
		return readBlockV3(dir, *si, number)
	}
	if man.Format() == FormatV1 {
		blocks, err := readJSONL[*types.Block](dir, si.Blocks)
		if err != nil {
			return nil, err
		}
		for _, b := range blocks {
			if b.Header.Number == number {
				b.Seal()
				return b, nil
			}
		}
		return nil, fmt.Errorf("archive: block %d missing from segment %s", number, si.Label)
	}
	f, err := os.Open(filepath.Join(dir, filepath.FromSlash(si.Blocks.Name)))
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	defer f.Close()
	fr, err := openFrames(si.Blocks.Name, f)
	if err != nil {
		return nil, err
	}
	var seek int64
	for _, e := range si.Index {
		if e.Block <= number {
			seek = e.Offset
		}
	}
	if err := fr.skip(seek); err != nil {
		return nil, fmt.Errorf("archive: %s: seek: %w", si.Blocks.Name, err)
	}
	for {
		payload, err := fr.next()
		if err == io.EOF {
			return nil, fmt.Errorf("archive: block %d missing from segment %s", number, si.Label)
		}
		if err != nil {
			return nil, fmt.Errorf("archive: %s: %w", si.Blocks.Name, err)
		}
		var b types.Block
		if err := json.Unmarshal(payload, &b); err != nil {
			return nil, fmt.Errorf("archive: %s: %w", si.Blocks.Name, err)
		}
		if b.Header.Number == number {
			b.Seal()
			return &b, nil
		}
		if b.Header.Number > number {
			return nil, fmt.Errorf("archive: block %d missing from segment %s", number, si.Label)
		}
	}
}
