package archive_test

import (
	"bytes"
	"sync"
	"testing"

	"mevscope"
	"mevscope/internal/archive"
	"mevscope/internal/dataset"
	"mevscope/internal/sim"
	"mevscope/internal/types"
)

// Shared multi-vantage world: simulated once per test process.
var (
	mvOnce sync.Once
	mvSim  *sim.Sim
	mvErr  error
)

func multiVantageWorld(t *testing.T) *sim.Sim {
	t.Helper()
	mvOnce.Do(func() {
		cfg, err := mevscope.Options{Seed: 23, BlocksPerMonth: 25, Scenario: "multi-vantage-union"}.Config()
		if err != nil {
			mvErr = err
			return
		}
		s, err := sim.New(cfg)
		if err != nil {
			mvErr = err
			return
		}
		mvErr = s.Run()
		mvSim = s
	})
	if mvErr != nil {
		t.Fatal(mvErr)
	}
	return mvSim
}

// TestMultiVantageRoundTrip: an archive of a 4-vantage world persists
// one observation log per vantage in both formats, restores every log
// bit-compatibly, and the union-view report of the restored dataset is
// byte-identical to the in-memory one.
func TestMultiVantageRoundTrip(t *testing.T) {
	s := multiVantageWorld(t)
	ds := dataset.FromSim(s)
	ds.View = "union"
	if len(ds.Vantages) != 4 {
		t.Fatalf("world has %d vantages, want 4", len(ds.Vantages))
	}
	st, err := mevscope.AnalyzeDataset(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	st.WriteReport(&want)

	for _, format := range []archive.Format{archive.FormatV1, archive.FormatV2} {
		dir := t.TempDir()
		man, err := archive.WriteFormat(dir, ds, nil, format)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if len(man.Vantages) != 4 {
			t.Fatalf("%s: manifest records %d vantages, want 4", format, len(man.Vantages))
		}
		for _, si := range man.Segments {
			if len(si.ObservedV) != 3 {
				t.Fatalf("%s: segment %s has %d extra observation files, want 3", format, si.Label, len(si.ObservedV))
			}
		}
		restored, _, err := archive.Read(dir)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if len(restored.Vantages) != 4 {
			t.Fatalf("%s: restored %d vantages, want 4", format, len(restored.Vantages))
		}
		for vi, v := range restored.Vantages {
			orig := ds.Vantages[vi]
			if v.Node() != orig.Node() {
				t.Errorf("%s: vantage %d node %d, want %d", format, vi, v.Node(), orig.Node())
			}
			if v.Count() != orig.Count() {
				t.Errorf("%s: vantage %d restored %d records, want %d", format, vi, v.Count(), orig.Count())
			}
			for i, rec := range orig.Records() {
				if got := v.Records()[i]; got != rec {
					t.Fatalf("%s: vantage %d record %d drifted: %+v vs %+v", format, vi, i, got, rec)
				}
			}
		}
		restored.View = "union"
		rst, err := mevscope.AnalyzeDataset(restored, 2)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		var got bytes.Buffer
		rst.WriteReport(&got)
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("%s: union-view report drifted across the archive round trip", format)
		}
	}
}

// TestMultiVantageRangeKeepsAllLogs: a month-sliced restore still
// carries every vantage's pre-slice observation records (a tx first seen
// before the slice can be mined inside it).
func TestMultiVantageRangeKeepsAllLogs(t *testing.T) {
	s := multiVantageWorld(t)
	ds := dataset.FromSim(s)
	dir := t.TempDir()
	if _, err := archive.Write(dir, ds, nil); err != nil {
		t.Fatal(err)
	}
	sliced, _, err := archive.ReadRange(dir, types.ObservationStartMonth+2, types.StudyMonths-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sliced.Vantages) != 4 {
		t.Fatalf("sliced restore has %d vantages, want 4", len(sliced.Vantages))
	}
	for vi, v := range sliced.Vantages {
		if v.Count() != ds.Vantages[vi].Count() {
			t.Errorf("vantage %d: sliced restore has %d records, full log has %d",
				vi, v.Count(), ds.Vantages[vi].Count())
		}
	}
}

// TestStreamWriterFinalizeIdempotent: repeated Finalize is a no-op
// returning the already-written manifest, and WriteSegment after
// finalize stays an error.
func TestStreamWriterFinalizeIdempotent(t *testing.T) {
	s := multiVantageWorld(t)
	ds := dataset.FromSim(s)
	sw, err := archive.NewStreamWriter(t.TempDir(), s.Chain.Timeline, s.World.WETH, archive.FormatV2, nil)
	if err != nil {
		t.Fatal(err)
	}
	man, err := sw.Finalize(ds)
	if err != nil {
		t.Fatal(err)
	}
	again, err := sw.Finalize(ds)
	if err != nil {
		t.Fatalf("second Finalize should be a no-op, got %v", err)
	}
	if again != man {
		t.Error("second Finalize should hand back the same manifest")
	}
	segs := dataset.Partition(ds)
	if err := sw.WriteSegment(segs[0]); err == nil {
		t.Error("WriteSegment after finalize should error")
	}
}
