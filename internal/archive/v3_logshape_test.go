package archive

import (
	"strings"
	"testing"

	"mevscope/internal/events"
	"mevscope/internal/types"
)

func addrN(b byte) types.Address {
	var a types.Address
	for i := range a {
		a[i] = b
	}
	return a
}

// TestLogShapeRoundTrip: every structured event shape — and the raw
// fallback — must survive writeLog/readLog byte for byte. The writer
// only emits a structured shape after proving the round trip at encode
// time, so a decode mismatch here means the two codec halves disagree.
func TestLogShapeRoundTrip(t *testing.T) {
	logs := []types.Log{
		events.Transfer{Token: addrN(1), From: addrN(2), To: addrN(3), Amount: 41_000_007}.Log(),
		events.Swap{Pool: addrN(4), Sender: addrN(5), Recipient: addrN(6),
			TokenIn: addrN(1), TokenOut: addrN(7), AmountIn: 123, AmountOut: 456_789}.Log(),
		events.Sync{Pool: addrN(4), ReserveA: 1, ReserveB: 2}.Log(),
		events.Liquidation{Protocol: addrN(8), Liquidator: addrN(9), Borrower: addrN(10),
			DebtToken: addrN(1), CollateralToken: addrN(7), DebtRepaid: 77, CollateralOut: 88}.Log(),
		events.Liquidation{Protocol: addrN(8), Liquidator: addrN(9), Borrower: addrN(10),
			DebtToken: addrN(1), CollateralToken: addrN(7), DebtRepaid: 5, CollateralOut: 6,
			Compound: true}.Log(),
		events.FlashLoan{Protocol: addrN(8), Initiator: addrN(9), Token: addrN(1),
			Amount: 1 << 40, Fee: 9}.Log(),
		events.OracleUpdate{Oracle: addrN(11), Token: addrN(1), Price: 314159}.Log(),
		// Free-form log no event shape round-trips: the raw fallback.
		{Address: addrN(12), Topics: []types.Hash{types.EventSignature("Custom")}, Data: []byte("opaque")},
		// Topic-less, data-less log.
		{Address: addrN(13)},
	}
	w := newColWriter()
	for _, lg := range logs {
		w.writeLog(lg)
	}
	r := &colReader{addrs: w.addrList, hashes: w.hashList, body: w.body, rows: len(logs)}
	for i, want := range logs {
		got := r.readLog()
		if r.err != nil {
			t.Fatalf("log %d: decode failed: %v", i, r.err)
		}
		if !logEqual(got, want) {
			t.Errorf("log %d did not round-trip:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if r.off != len(r.body) {
		t.Errorf("decoder consumed %d of %d body bytes", r.off, len(r.body))
	}
}

// TestLogShapeUnknownTagRefused: a tag byte no shipped writer emits is
// corruption (or a future format read by an old binary) and must fail
// the decode, not fall through to a guessed shape.
func TestLogShapeUnknownTagRefused(t *testing.T) {
	r := &colReader{body: []byte{0x7F}, rows: 1}
	r.readLog()
	if r.err == nil || !strings.Contains(r.err.Error(), "unknown log shape") {
		t.Fatalf("unknown-tag decode error = %v; want unknown log shape refusal", r.err)
	}
}
