package archive

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mevscope/internal/dataset"
	"mevscope/internal/events"
	"mevscope/internal/flashbots"
	"mevscope/internal/obs"
	"mevscope/internal/p2p"
	"mevscope/internal/types"
)

// The v3 column layout. One month becomes one chunk file per column:
//
//	<dir>/2020-05/
//	  headers.col     block headers + per-block tx counts
//	  txs.col         transactions (dictionary senders, presence-mask payloads)
//	  receipts.col    execution outcomes (TxHash derived from txs on read)
//	  logs.col        event logs (dictionary addresses and topics)
//	  flashbots.col   public blocks-API records
//	  observed.col    primary vantage captures (observed_vN.col per extra vantage)
//
// The manifest records one ColumnInfo per chunk: the file's integrity
// record plus a zone map (month, min/max block, min/max gas price) that
// lets ReadBlock pick chunks and projection reads skip columns without
// decoding a byte. Receipt TxHash is not stored — receipts align
// positionally with transactions, so the reader derives it, and the
// writer refuses any segment where the stored receipt identity drifts
// from the recomputed transaction hash (the check v2 ran on read runs
// at write time instead).

// Column names of the v3 format. Extra vantages store under
// "observed_v1", "observed_v2", … and project under ColObserved.
const (
	ColHeaders   = "headers"
	ColTxs       = "txs"
	ColReceipts  = "receipts"
	ColLogs      = "logs"
	ColFlashbots = "flashbots"
	ColObserved  = "observed"
)

// ColumnNames lists the selectable v3 columns in storage order.
func ColumnNames() []string {
	return []string{ColHeaders, ColTxs, ColReceipts, ColLogs, ColFlashbots, ColObserved}
}

// colBase maps a chunk column name to its selectable column:
// "observed_v2" → "observed", everything else to itself.
func colBase(name string) string {
	if strings.HasPrefix(name, ColObserved+"_v") {
		return ColObserved
	}
	return name
}

// columnSet is a normalized projection: nil selects everything.
type columnSet map[string]bool

// normalizeColumns validates and closes a projection over its
// dependencies: headers are always included (they carry the block
// skeleton everything hangs off), logs need receipts, and receipts and
// transactions travel together — receipts are positionally 1:1 with
// transactions and their identity (TxHash) is derived from them.
func normalizeColumns(cols []string) (columnSet, []string, error) {
	if cols == nil {
		return nil, nil, nil
	}
	known := make(map[string]bool, 6)
	for _, c := range ColumnNames() {
		known[c] = true
	}
	set := columnSet{ColHeaders: true}
	for _, c := range cols {
		if !known[c] {
			return nil, nil, fmt.Errorf("archive: unknown column %q (want one of %s)",
				c, strings.Join(ColumnNames(), ", "))
		}
		set[c] = true
	}
	if set[ColLogs] {
		set[ColReceipts] = true
	}
	if set[ColReceipts] {
		set[ColTxs] = true
	}
	if set[ColTxs] {
		set[ColReceipts] = true
	}
	norm := make([]string, 0, len(set))
	for c := range set {
		norm = append(norm, c)
	}
	sort.Strings(norm)
	return set, norm, nil
}

// want reports whether a chunk column is selected (nil = everything).
func (s columnSet) want(name string) bool { return s == nil || s[colBase(name)] }

// findColumn locates a segment's chunk record by column name.
func findColumn(si SegmentInfo, name string) (ColumnInfo, error) {
	for _, ci := range si.Columns {
		if ci.Name == name {
			return ci, nil
		}
	}
	return ColumnInfo{}, fmt.Errorf("archive: segment %s has no %q column", si.Label, name)
}

// ---------------------------------------------------------------------------
// Encode

// writeSegmentV3 persists one month as per-column chunks and returns its
// manifest entry: chunk records with zone maps, plus logical document
// counts in the classic FileInfo slots so format-agnostic consumers
// (drift checks, span sizing) keep working.
func writeSegmentV3(root string, seg *dataset.Segment) (SegmentInfo, error) {
	label := SegmentLabel(seg.Month)
	segDir := filepath.Join(root, label)
	info := SegmentInfo{
		Month:      seg.Month,
		Label:      label,
		FirstBlock: seg.Blocks[0].Header.Number,
		LastBlock:  seg.Blocks[len(seg.Blocks)-1].Header.Number,
	}
	// Receipt identity is derived on read, so the stored archive can only
	// be faithful if it holds at write time — refuse drift here, where
	// the original data still exists.
	for _, b := range seg.Blocks {
		if len(b.Receipts) != len(b.Txs) {
			return info, fmt.Errorf("archive: segment %s block %d has %d receipts for %d txs",
				label, b.Header.Number, len(b.Receipts), len(b.Txs))
		}
		for i, rcpt := range b.Receipts {
			if rcpt.TxHash != b.Txs[i].Hash() {
				return info, fmt.Errorf("archive: segment %s block %d tx %d: identity drift (receipt %v vs recomputed %v)",
					label, b.Header.Number, i, rcpt.TxHash.Short(), b.Txs[i].Hash().Short())
			}
		}
	}
	encoders := []func() (ColumnInfo, error){
		func() (ColumnInfo, error) { return encodeHeadersCol(root, segDir, seg.Month, seg.Blocks) },
		func() (ColumnInfo, error) { return encodeTxsCol(root, segDir, seg.Month, seg.Blocks) },
		func() (ColumnInfo, error) { return encodeReceiptsCol(root, segDir, seg.Month, seg.Blocks) },
		func() (ColumnInfo, error) { return encodeLogsCol(root, segDir, seg.Month, seg.Blocks) },
		func() (ColumnInfo, error) { return encodeFlashbotsCol(root, segDir, seg.Month, seg.FBBlocks) },
		func() (ColumnInfo, error) {
			return encodeObservedCol(root, segDir, seg.Month, ColObserved, seg.Observed)
		},
	}
	for _, enc := range encoders {
		ci, err := enc()
		if err != nil {
			return info, err
		}
		info.Columns = append(info.Columns, ci)
	}
	for i, recs := range seg.ObservedV {
		ci, err := encodeObservedCol(root, segDir, seg.Month, fmt.Sprintf("%s_v%d", ColObserved, i+1), recs)
		if err != nil {
			return info, err
		}
		info.Columns = append(info.Columns, ci)
		info.ObservedV = append(info.ObservedV, FileInfo{Count: len(recs)})
	}
	// Logical counts: v3 has no monolithic per-kind files, but the counts
	// still size restore spans and back the stream/batch drift checks.
	info.Blocks.Count = len(seg.Blocks)
	info.Flashbots.Count = len(seg.FBBlocks)
	info.Observed.Count = len(seg.Observed)
	return info, nil
}

func encodeHeadersCol(root, segDir string, month types.Month, blocks []*types.Block) (ColumnInfo, error) {
	w := newColWriter()
	var prevNum uint64
	for i, b := range blocks {
		n := b.Header.Number
		if i == 0 {
			w.uvarint(n)
		} else {
			if n < prevNum {
				return ColumnInfo{}, fmt.Errorf("archive: segment %s blocks out of order (%d after %d)", segDir, n, prevNum)
			}
			w.uvarint(n - prevNum)
		}
		prevNum = n
	}
	var prevTime int64
	for i, b := range blocks {
		ns := b.Header.Time.UnixNano()
		if i == 0 {
			w.svarint(ns)
		} else {
			w.svarint(ns - prevTime)
		}
		prevTime = ns
	}
	for _, b := range blocks {
		w.raw(b.Header.ParentHash[:])
	}
	for _, b := range blocks {
		w.addr(b.Header.Miner)
	}
	var prevFee int64
	for i, b := range blocks {
		f := int64(b.Header.BaseFee)
		if i == 0 {
			w.svarint(f)
		} else {
			w.svarint(f - prevFee)
		}
		prevFee = f
	}
	var prevLimit int64
	for i, b := range blocks {
		l := int64(b.Header.GasLimit)
		if i == 0 {
			w.svarint(l)
		} else {
			w.svarint(l - prevLimit)
		}
		prevLimit = l
	}
	for _, b := range blocks {
		w.uvarint(b.Header.GasUsed)
	}
	for _, b := range blocks {
		w.uvarint(uint64(len(b.Txs)))
	}
	fi, err := writeChunk(root, segDir, ColHeaders, len(blocks), w)
	if err != nil {
		return ColumnInfo{}, err
	}
	ci := ColumnInfo{Name: ColHeaders, Month: month, File: fi}
	if len(blocks) > 0 {
		ci.MinBlock = blocks[0].Header.Number
		ci.MaxBlock = blocks[len(blocks)-1].Header.Number
	}
	return ci, nil
}

func encodeTxsCol(root, segDir string, month types.Month, blocks []*types.Block) (ColumnInfo, error) {
	var flat []*types.Transaction
	for _, b := range blocks {
		flat = append(flat, b.Txs...)
	}
	w := newColWriter()
	for _, tx := range flat {
		w.uvarint(tx.Nonce)
	}
	for _, tx := range flat {
		w.addr(tx.From)
	}
	for _, tx := range flat {
		w.addr(tx.To)
	}
	for _, tx := range flat {
		w.svarint(int64(tx.Value))
	}
	for _, tx := range flat {
		w.uvarint(tx.GasLimit)
	}
	for _, tx := range flat {
		w.svarint(int64(tx.GasPrice))
	}
	for _, tx := range flat {
		w.svarint(int64(tx.FeeCap))
	}
	for _, tx := range flat {
		w.svarint(int64(tx.TipCap))
	}
	for _, tx := range flat {
		w.svarint(int64(tx.CoinbaseTip))
	}
	for _, tx := range flat {
		w.payload(&tx.Payload)
	}
	fi, err := writeChunk(root, segDir, ColTxs, len(flat), w)
	if err != nil {
		return ColumnInfo{}, err
	}
	ci := ColumnInfo{Name: ColTxs, Month: month, File: fi}
	if len(blocks) > 0 {
		ci.MinBlock = blocks[0].Header.Number
		ci.MaxBlock = blocks[len(blocks)-1].Header.Number
	}
	for i, tx := range flat {
		p := tx.BidPrice()
		if i == 0 || p < ci.MinGas {
			ci.MinGas = p
		}
		if i == 0 || p > ci.MaxGas {
			ci.MaxGas = p
		}
	}
	return ci, nil
}

func encodeReceiptsCol(root, segDir string, month types.Month, blocks []*types.Block) (ColumnInfo, error) {
	var flat []*types.Receipt
	for _, b := range blocks {
		flat = append(flat, b.Receipts...)
	}
	w := newColWriter()
	for _, r := range flat {
		w.svarint(int64(r.TxIndex))
	}
	for _, r := range flat {
		w.byte1(byte(r.Status))
	}
	for _, r := range flat {
		w.uvarint(r.GasUsed)
	}
	for _, r := range flat {
		w.svarint(int64(r.EffectiveGasPrice))
	}
	for _, r := range flat {
		w.svarint(int64(r.CoinbaseTransfer))
	}
	fi, err := writeChunk(root, segDir, ColReceipts, len(flat), w)
	if err != nil {
		return ColumnInfo{}, err
	}
	ci := ColumnInfo{Name: ColReceipts, Month: month, File: fi}
	if len(blocks) > 0 {
		ci.MinBlock = blocks[0].Header.Number
		ci.MaxBlock = blocks[len(blocks)-1].Header.Number
	}
	for i, r := range flat {
		p := r.EffectiveGasPrice
		if i == 0 || p < ci.MinGas {
			ci.MinGas = p
		}
		if i == 0 || p > ci.MaxGas {
			ci.MaxGas = p
		}
	}
	return ci, nil
}

// Log-row shape tags. Logs emitted by the simulated protocols follow the
// typed vocabulary in internal/events, so most rows encode as a shape tag
// plus dictionary refs and varint amounts instead of raw topics+data —
// the topic hashes are recomputed from the addresses at decode. Rows that
// don't round-trip through an event shape byte-exactly fall back to
// logShapeRaw.
const (
	logShapeRaw = iota
	logShapeTransfer
	logShapeSwap
	logShapeSync
	logShapeLiqAave
	logShapeLiqCompound
	logShapeFlashLoan
	logShapeOracle
)

// logEqual reports byte-exact equality, the bar a structured shape must
// clear before replacing the raw encoding.
func logEqual(a, b types.Log) bool {
	if a.Address != b.Address || len(a.Topics) != len(b.Topics) || !bytes.Equal(a.Data, b.Data) {
		return false
	}
	for i := range a.Topics {
		if a.Topics[i] != b.Topics[i] {
			return false
		}
	}
	return true
}

// writeLog emits one log row, preferring a structured event shape.
func (w *colWriter) writeLog(lg types.Log) {
	if ev, ok := events.DecodeTransfer(lg); ok && logEqual(lg, ev.Log()) {
		w.byte1(logShapeTransfer)
		w.addr(ev.Token)
		w.addr(ev.From)
		w.addr(ev.To)
		w.uvarint(uint64(ev.Amount))
		return
	}
	if ev, ok := events.DecodeSwap(lg); ok && logEqual(lg, ev.Log()) {
		w.byte1(logShapeSwap)
		w.addr(ev.Pool)
		w.addr(ev.Sender)
		w.addr(ev.Recipient)
		w.addr(ev.TokenIn)
		w.addr(ev.TokenOut)
		w.uvarint(uint64(ev.AmountIn))
		w.uvarint(uint64(ev.AmountOut))
		return
	}
	if ev, ok := events.DecodeSync(lg); ok && logEqual(lg, ev.Log()) {
		w.byte1(logShapeSync)
		w.addr(ev.Pool)
		w.uvarint(uint64(ev.ReserveA))
		w.uvarint(uint64(ev.ReserveB))
		return
	}
	if ev, ok := events.DecodeLiquidation(lg); ok && logEqual(lg, ev.Log()) {
		if ev.Compound {
			w.byte1(logShapeLiqCompound)
		} else {
			w.byte1(logShapeLiqAave)
		}
		w.addr(ev.Protocol)
		w.addr(ev.Liquidator)
		w.addr(ev.Borrower)
		w.addr(ev.DebtToken)
		w.addr(ev.CollateralToken)
		w.uvarint(uint64(ev.DebtRepaid))
		w.uvarint(uint64(ev.CollateralOut))
		return
	}
	if ev, ok := events.DecodeFlashLoan(lg); ok && logEqual(lg, ev.Log()) {
		w.byte1(logShapeFlashLoan)
		w.addr(ev.Protocol)
		w.addr(ev.Initiator)
		w.addr(ev.Token)
		w.uvarint(uint64(ev.Amount))
		w.uvarint(uint64(ev.Fee))
		return
	}
	if ev, ok := events.DecodeOracleUpdate(lg); ok && logEqual(lg, ev.Log()) {
		w.byte1(logShapeOracle)
		w.addr(ev.Oracle)
		w.addr(ev.Token)
		w.uvarint(uint64(ev.Price))
		return
	}
	w.byte1(logShapeRaw)
	w.addr(lg.Address)
	w.uvarint(uint64(len(lg.Topics)))
	for _, t := range lg.Topics {
		w.hash(t)
	}
	w.uvarint(uint64(len(lg.Data)))
	w.raw(lg.Data)
}

// readLog decodes one log row written by writeLog.
func (r *colReader) readLog() types.Log {
	switch tag := r.byte1(); tag {
	case logShapeTransfer:
		ev := events.Transfer{Token: r.addr(), From: r.addr(), To: r.addr()}
		ev.Amount = types.Amount(r.uvarint())
		return ev.Log()
	case logShapeSwap:
		ev := events.Swap{Pool: r.addr(), Sender: r.addr(), Recipient: r.addr(),
			TokenIn: r.addr(), TokenOut: r.addr()}
		ev.AmountIn = types.Amount(r.uvarint())
		ev.AmountOut = types.Amount(r.uvarint())
		return ev.Log()
	case logShapeSync:
		ev := events.Sync{Pool: r.addr()}
		ev.ReserveA = types.Amount(r.uvarint())
		ev.ReserveB = types.Amount(r.uvarint())
		return ev.Log()
	case logShapeLiqAave, logShapeLiqCompound:
		ev := events.Liquidation{Protocol: r.addr(), Liquidator: r.addr(), Borrower: r.addr(),
			DebtToken: r.addr(), CollateralToken: r.addr(), Compound: tag == logShapeLiqCompound}
		ev.DebtRepaid = types.Amount(r.uvarint())
		ev.CollateralOut = types.Amount(r.uvarint())
		return ev.Log()
	case logShapeFlashLoan:
		ev := events.FlashLoan{Protocol: r.addr(), Initiator: r.addr(), Token: r.addr()}
		ev.Amount = types.Amount(r.uvarint())
		ev.Fee = types.Amount(r.uvarint())
		return ev.Log()
	case logShapeOracle:
		ev := events.OracleUpdate{Oracle: r.addr(), Token: r.addr()}
		ev.Price = types.Amount(r.uvarint())
		return ev.Log()
	case logShapeRaw:
		var lg types.Log
		lg.Address = r.addr()
		nt := r.uvarint()
		if nt > uint64(len(r.body)) {
			r.fail("topic count %d exceeds chunk body (corrupt)", nt)
			return types.Log{}
		}
		if nt > 0 {
			lg.Topics = make([]types.Hash, nt)
			for k := range lg.Topics {
				lg.Topics[k] = r.hash()
			}
		}
		nd := r.uvarint()
		if raw := r.raw(int(nd)); len(raw) > 0 {
			lg.Data = append([]byte(nil), raw...)
		}
		return lg
	default:
		r.fail("unknown log shape tag %d (corrupt)", tag)
		return types.Log{}
	}
}

func encodeLogsCol(root, segDir string, month types.Month, blocks []*types.Block) (ColumnInfo, error) {
	var flat []*types.Receipt
	for _, b := range blocks {
		flat = append(flat, b.Receipts...)
	}
	w := newColWriter()
	for _, r := range flat {
		w.uvarint(uint64(len(r.Logs)))
	}
	for _, r := range flat {
		for _, lg := range r.Logs {
			w.writeLog(lg)
		}
	}
	fi, err := writeChunk(root, segDir, ColLogs, len(flat), w)
	if err != nil {
		return ColumnInfo{}, err
	}
	ci := ColumnInfo{Name: ColLogs, Month: month, File: fi}
	if len(blocks) > 0 {
		ci.MinBlock = blocks[0].Header.Number
		ci.MaxBlock = blocks[len(blocks)-1].Header.Number
	}
	return ci, nil
}

func encodeFlashbotsCol(root, segDir string, month types.Month, recs []flashbots.BlockRecord) (ColumnInfo, error) {
	w := newColWriter()
	var prevNum uint64
	for i, rec := range recs {
		if i == 0 {
			w.uvarint(rec.BlockNumber)
		} else {
			if rec.BlockNumber < prevNum {
				return ColumnInfo{}, fmt.Errorf("archive: segment %s flashbots records out of order", segDir)
			}
			w.uvarint(rec.BlockNumber - prevNum)
		}
		prevNum = rec.BlockNumber
	}
	for _, rec := range recs {
		w.addr(rec.Miner)
	}
	for _, rec := range recs {
		w.svarint(int64(rec.MinerReward))
	}
	for _, rec := range recs {
		w.uvarint(uint64(len(rec.Txs)))
	}
	for _, rec := range recs {
		for _, tx := range rec.Txs {
			w.raw(tx.Hash[:])
			w.addr(tx.EOA)
			w.uvarint(tx.BundleID)
			w.svarint(int64(tx.BundleIndex))
			w.byte1(byte(tx.BundleType))
			w.uvarint(tx.GasUsed)
			w.svarint(int64(tx.GasPrice))
			w.svarint(int64(tx.CoinbaseTransfer))
		}
	}
	fi, err := writeChunk(root, segDir, ColFlashbots, len(recs), w)
	if err != nil {
		return ColumnInfo{}, err
	}
	ci := ColumnInfo{Name: ColFlashbots, Month: month, File: fi}
	if len(recs) > 0 {
		ci.MinBlock = recs[0].BlockNumber
		ci.MaxBlock = recs[len(recs)-1].BlockNumber
	}
	return ci, nil
}

func encodeObservedCol(root, segDir string, month types.Month, name string, recs []p2p.ObservedTx) (ColumnInfo, error) {
	w := newColWriter()
	for _, rec := range recs {
		w.raw(rec.Hash[:])
	}
	var prevBlock int64
	for i, rec := range recs {
		n := int64(rec.FirstSeenBlock)
		if i == 0 {
			w.svarint(n)
		} else {
			w.svarint(n - prevBlock)
		}
		prevBlock = n
	}
	var prevSeen int64
	for i, rec := range recs {
		ns := rec.FirstSeen.UnixNano()
		if i == 0 {
			w.svarint(ns)
		} else {
			w.svarint(ns - prevSeen)
		}
		prevSeen = ns
	}
	for _, rec := range recs {
		w.uvarint(uint64(rec.Hops))
	}
	fi, err := writeChunk(root, segDir, name, len(recs), w)
	if err != nil {
		return ColumnInfo{}, err
	}
	ci := ColumnInfo{Name: name, Month: month, File: fi}
	for i, rec := range recs {
		if i == 0 || rec.FirstSeenBlock < ci.MinBlock {
			ci.MinBlock = rec.FirstSeenBlock
		}
		if i == 0 || rec.FirstSeenBlock > ci.MaxBlock {
			ci.MaxBlock = rec.FirstSeenBlock
		}
	}
	return ci, nil
}

// ---------------------------------------------------------------------------
// Decode

// Decoded chunk shapes. These are what a ChunkCache holds: immutable
// after decode (transaction hashes are pre-cached, nothing is mutated on
// assembly), so one cached chunk can serve concurrent reads.
type colHeadersData struct {
	numbers   []uint64
	parents   []types.Hash
	times     []int64 // UnixNano
	miners    []types.Address
	baseFees  []types.Amount
	gasLimits []uint64
	gasUseds  []uint64
	txCounts  []int
	totalTxs  int
}

type colTxsData struct{ txs []*types.Transaction }

// colReceiptsData holds receipts by value, without TxHash or Logs —
// assembly copies them into fresh per-read receipts, deriving TxHash
// from the transaction column and attaching the log column, so cached
// chunks stay immutable.
type colReceiptsData struct{ rcpts []types.Receipt }

type colLogsData struct{ logs [][]types.Log }

type colFBData struct{ recs []flashbots.BlockRecord }

type colObsData struct{ recs []p2p.ObservedTx }

// zoneError reports a chunk whose decoded payload disagrees with the
// manifest's zone map — the zone maps steer chunk skipping, so a drifted
// one means reads would silently miss data; refuse instead.
func zoneError(ci ColumnInfo, what string, wantMin, wantMax, gotMin, gotMax int64) error {
	return fmt.Errorf("archive: %s: zone map disagrees with payload (%s %d..%d, payload %d..%d)",
		ci.File.Name, what, wantMin, wantMax, gotMin, gotMax)
}

func verifyBlockZone(ci ColumnInfo, min, max uint64, rows int) error {
	if rows == 0 {
		if ci.MinBlock != 0 || ci.MaxBlock != 0 {
			return zoneError(ci, "blocks", int64(ci.MinBlock), int64(ci.MaxBlock), 0, 0)
		}
		return nil
	}
	if ci.MinBlock != min || ci.MaxBlock != max {
		return zoneError(ci, "blocks", int64(ci.MinBlock), int64(ci.MaxBlock), int64(min), int64(max))
	}
	return nil
}

func verifyGasZone(ci ColumnInfo, min, max types.Amount, rows int) error {
	if rows == 0 {
		return nil
	}
	if ci.MinGas != min || ci.MaxGas != max {
		return zoneError(ci, "gas", int64(ci.MinGas), int64(ci.MaxGas), int64(min), int64(max))
	}
	return nil
}

func decodeHeadersCol(dir string, ci ColumnInfo) (*colHeadersData, error) {
	r, err := readChunk(dir, ci.File, ColHeaders)
	if err != nil {
		return nil, err
	}
	n := r.rows
	d := &colHeadersData{
		numbers:   make([]uint64, n),
		parents:   make([]types.Hash, n),
		times:     make([]int64, n),
		miners:    make([]types.Address, n),
		baseFees:  make([]types.Amount, n),
		gasLimits: make([]uint64, n),
		gasUseds:  make([]uint64, n),
		txCounts:  make([]int, n),
	}
	var prevNum uint64
	for i := range d.numbers {
		delta := r.uvarint()
		if i == 0 {
			prevNum = delta
		} else {
			prevNum += delta
		}
		d.numbers[i] = prevNum
	}
	var prevTime int64
	for i := range d.times {
		delta := r.svarint()
		if i == 0 {
			prevTime = delta
		} else {
			prevTime += delta
		}
		d.times[i] = prevTime
	}
	for i := range d.parents {
		d.parents[i] = r.rawHash()
	}
	for i := range d.miners {
		d.miners[i] = r.addr()
	}
	var prevFee int64
	for i := range d.baseFees {
		delta := r.svarint()
		if i == 0 {
			prevFee = delta
		} else {
			prevFee += delta
		}
		d.baseFees[i] = types.Amount(prevFee)
	}
	var prevLimit int64
	for i := range d.gasLimits {
		delta := r.svarint()
		if i == 0 {
			prevLimit = delta
		} else {
			prevLimit += delta
		}
		d.gasLimits[i] = uint64(prevLimit)
	}
	for i := range d.gasUseds {
		d.gasUseds[i] = r.uvarint()
	}
	for i := range d.txCounts {
		c := r.uvarint()
		if c > uint64(len(r.body)) {
			r.fail("tx count %d exceeds chunk body (corrupt)", c)
			break
		}
		d.txCounts[i] = int(c)
		d.totalTxs += int(c)
	}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("archive: %s: %w", ci.File.Name, err)
	}
	if n > 0 {
		if err := verifyBlockZone(ci, d.numbers[0], d.numbers[n-1], n); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func decodeTxsCol(dir string, ci ColumnInfo) (*colTxsData, error) {
	r, err := readChunk(dir, ci.File, ColTxs)
	if err != nil {
		return nil, err
	}
	n := r.rows
	txs := make([]*types.Transaction, n)
	for i := range txs {
		txs[i] = &types.Transaction{}
	}
	for _, tx := range txs {
		tx.Nonce = r.uvarint()
	}
	for _, tx := range txs {
		tx.From = r.addr()
	}
	for _, tx := range txs {
		tx.To = r.addr()
	}
	for _, tx := range txs {
		tx.Value = types.Amount(r.svarint())
	}
	for _, tx := range txs {
		tx.GasLimit = r.uvarint()
	}
	for _, tx := range txs {
		tx.GasPrice = types.Amount(r.svarint())
	}
	for _, tx := range txs {
		tx.FeeCap = types.Amount(r.svarint())
	}
	for _, tx := range txs {
		tx.TipCap = types.Amount(r.svarint())
	}
	for _, tx := range txs {
		tx.CoinbaseTip = types.Amount(r.svarint())
	}
	for _, tx := range txs {
		tx.Payload = r.payload(0)
	}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("archive: %s: %w", ci.File.Name, err)
	}
	var minGas, maxGas types.Amount
	for i, tx := range txs {
		// Cache every hash before the chunk is shared across reads.
		tx.Hash()
		p := tx.BidPrice()
		if i == 0 || p < minGas {
			minGas = p
		}
		if i == 0 || p > maxGas {
			maxGas = p
		}
	}
	if err := verifyGasZone(ci, minGas, maxGas, n); err != nil {
		return nil, err
	}
	return &colTxsData{txs: txs}, nil
}

func decodeReceiptsCol(dir string, ci ColumnInfo) (*colReceiptsData, error) {
	r, err := readChunk(dir, ci.File, ColReceipts)
	if err != nil {
		return nil, err
	}
	n := r.rows
	rcpts := make([]types.Receipt, n)
	for i := range rcpts {
		rcpts[i].TxIndex = int(r.svarint())
	}
	for i := range rcpts {
		rcpts[i].Status = types.ReceiptStatus(r.byte1())
	}
	for i := range rcpts {
		rcpts[i].GasUsed = r.uvarint()
	}
	for i := range rcpts {
		rcpts[i].EffectiveGasPrice = types.Amount(r.svarint())
	}
	for i := range rcpts {
		rcpts[i].CoinbaseTransfer = types.Amount(r.svarint())
	}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("archive: %s: %w", ci.File.Name, err)
	}
	var minGas, maxGas types.Amount
	for i := range rcpts {
		p := rcpts[i].EffectiveGasPrice
		if i == 0 || p < minGas {
			minGas = p
		}
		if i == 0 || p > maxGas {
			maxGas = p
		}
	}
	if err := verifyGasZone(ci, minGas, maxGas, n); err != nil {
		return nil, err
	}
	return &colReceiptsData{rcpts: rcpts}, nil
}

func decodeLogsCol(dir string, ci ColumnInfo) (*colLogsData, error) {
	r, err := readChunk(dir, ci.File, ColLogs)
	if err != nil {
		return nil, err
	}
	n := r.rows
	counts := make([]int, n)
	for i := range counts {
		c := r.uvarint()
		if c > uint64(len(r.body)) {
			r.fail("log count %d exceeds chunk body (corrupt)", c)
			break
		}
		counts[i] = int(c)
	}
	logs := make([][]types.Log, n)
	for i, c := range counts {
		if r.err != nil {
			break
		}
		if c == 0 {
			continue
		}
		ls := make([]types.Log, c)
		for j := range ls {
			ls[j] = r.readLog()
		}
		logs[i] = ls
	}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("archive: %s: %w", ci.File.Name, err)
	}
	return &colLogsData{logs: logs}, nil
}

func decodeFlashbotsCol(dir string, ci ColumnInfo) (*colFBData, error) {
	r, err := readChunk(dir, ci.File, ColFlashbots)
	if err != nil {
		return nil, err
	}
	n := r.rows
	recs := make([]flashbots.BlockRecord, n)
	var prevNum uint64
	for i := range recs {
		delta := r.uvarint()
		if i == 0 {
			prevNum = delta
		} else {
			prevNum += delta
		}
		recs[i].BlockNumber = prevNum
	}
	for i := range recs {
		recs[i].Miner = r.addr()
	}
	for i := range recs {
		recs[i].MinerReward = types.Amount(r.svarint())
	}
	counts := make([]int, n)
	for i := range counts {
		c := r.uvarint()
		if c > uint64(len(r.body)) {
			r.fail("bundle tx count %d exceeds chunk body (corrupt)", c)
			break
		}
		counts[i] = int(c)
	}
	for i := range recs {
		if r.err != nil {
			break
		}
		if counts[i] == 0 {
			continue
		}
		txs := make([]flashbots.TxRecord, counts[i])
		for j := range txs {
			txs[j].Hash = r.rawHash()
			txs[j].EOA = r.addr()
			txs[j].BundleID = r.uvarint()
			txs[j].BundleIndex = int(r.svarint())
			txs[j].BundleType = flashbots.BundleType(r.byte1())
			txs[j].GasUsed = r.uvarint()
			txs[j].GasPrice = types.Amount(r.svarint())
			txs[j].CoinbaseTransfer = types.Amount(r.svarint())
		}
		recs[i].Txs = txs
	}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("archive: %s: %w", ci.File.Name, err)
	}
	if n > 0 {
		min, max := recs[0].BlockNumber, recs[0].BlockNumber
		for _, rec := range recs {
			if rec.BlockNumber < min {
				min = rec.BlockNumber
			}
			if rec.BlockNumber > max {
				max = rec.BlockNumber
			}
		}
		if err := verifyBlockZone(ci, min, max, n); err != nil {
			return nil, err
		}
	}
	return &colFBData{recs: recs}, nil
}

func decodeObservedCol(dir string, ci ColumnInfo, name string) (*colObsData, error) {
	r, err := readChunk(dir, ci.File, name)
	if err != nil {
		return nil, err
	}
	n := r.rows
	recs := make([]p2p.ObservedTx, n)
	for i := range recs {
		recs[i].Hash = r.rawHash()
	}
	var prevBlock int64
	for i := range recs {
		delta := r.svarint()
		if i == 0 {
			prevBlock = delta
		} else {
			prevBlock += delta
		}
		recs[i].FirstSeenBlock = uint64(prevBlock)
	}
	var prevSeen int64
	for i := range recs {
		delta := r.svarint()
		if i == 0 {
			prevSeen = delta
		} else {
			prevSeen += delta
		}
		recs[i].FirstSeen = time.Unix(0, prevSeen).UTC()
	}
	for i := range recs {
		recs[i].Hops = int(r.uvarint())
	}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("archive: %s: %w", ci.File.Name, err)
	}
	if n > 0 {
		min, max := recs[0].FirstSeenBlock, recs[0].FirstSeenBlock
		for _, rec := range recs {
			if rec.FirstSeenBlock < min {
				min = rec.FirstSeenBlock
			}
			if rec.FirstSeenBlock > max {
				max = rec.FirstSeenBlock
			}
		}
		if err := verifyBlockZone(ci, min, max, n); err != nil {
			return nil, err
		}
	}
	return &colObsData{recs: recs}, nil
}

// ---------------------------------------------------------------------------
// Segment read

// chunkLoader fetches decoded chunks for one segment, going through the
// chunk cache when the caller's SegmentCache also implements ChunkCache,
// and recording one "archive:column" span per chunk actually decoded
// under a lazily created "archive:decode" segment span.
type chunkLoader struct {
	dir string
	si  SegmentInfo
	opt ReadOptions
	cc  ChunkCache
	rsp *obs.Span
	dsp *obs.Span
}

func (cl *chunkLoader) decodeSpan() *obs.Span {
	if cl.dsp == nil {
		cl.dsp = cl.rsp.Child(obs.StageDecode)
		cl.dsp.SetLabel(cl.si.Label)
		cl.dsp.SetBlocks(cl.si.Blocks.Count)
	}
	return cl.dsp
}

func (cl *chunkLoader) end() { cl.dsp.End() }

// load returns the decoded chunk for a column, consulting the chunk
// cache first. dec decodes a verified chunk file on a miss.
func (cl *chunkLoader) load(name string, dec func(ColumnInfo) (any, error)) (any, error) {
	if cl.cc != nil {
		if v, ok := cl.cc.GetChunk(cl.dir, cl.si.Month, name); ok {
			if cl.opt.Stats != nil {
				cl.opt.Stats.CachedChunks.Add(1)
			}
			return v, nil
		}
	}
	ci, err := findColumn(cl.si, name)
	if err != nil {
		return nil, err
	}
	if ci.Month != cl.si.Month {
		return nil, fmt.Errorf("archive: %s: zone map month %s disagrees with segment %s",
			ci.File.Name, ci.Month.Label(), cl.si.Label)
	}
	sp := cl.decodeSpan().Child(obs.StageColumn)
	sp.SetLabel(cl.si.Label + "/" + name)
	sp.SetBytes(ci.File.Bytes)
	v, err := dec(ci)
	sp.End()
	if err != nil {
		return nil, err
	}
	if cl.opt.Stats != nil {
		cl.opt.Stats.DecodedBytes.Add(ci.File.Bytes)
		cl.opt.Stats.DecodedChunks.Add(1)
	}
	if cl.cc != nil {
		cl.cc.AddChunk(cl.dir, cl.si.Month, name, v, ci.File.Bytes)
	}
	return v, nil
}

// readSegmentV3 decodes one month's selected columns into a dataset
// segment. cols == nil restores everything; a projection decodes only
// the selected chunks (and counts the rest as skipped), leaving the
// other fields zero.
func readSegmentV3(dir string, si SegmentInfo, cols columnSet, opt ReadOptions, rsp *obs.Span) (*dataset.Segment, error) {
	cc, _ := opt.Cache.(ChunkCache)
	cl := &chunkLoader{dir: dir, si: si, opt: opt, cc: cc, rsp: rsp}
	defer cl.end()

	if opt.Stats != nil {
		for _, ci := range si.Columns {
			if !cols.want(ci.Name) {
				opt.Stats.SkippedChunks.Add(1)
			}
		}
	}

	hv, err := cl.load(ColHeaders, func(ci ColumnInfo) (any, error) { return decodeHeadersCol(dir, ci) })
	if err != nil {
		return nil, err
	}
	hd := hv.(*colHeadersData)

	var txs *colTxsData
	var rcpts *colReceiptsData
	if cols.want(ColTxs) {
		tv, err := cl.load(ColTxs, func(ci ColumnInfo) (any, error) { return decodeTxsCol(dir, ci) })
		if err != nil {
			return nil, err
		}
		txs = tv.(*colTxsData)
		rv, err := cl.load(ColReceipts, func(ci ColumnInfo) (any, error) { return decodeReceiptsCol(dir, ci) })
		if err != nil {
			return nil, err
		}
		rcpts = rv.(*colReceiptsData)
		if len(txs.txs) != hd.totalTxs || len(rcpts.rcpts) != hd.totalTxs {
			return nil, fmt.Errorf("archive: segment %s has %d txs and %d receipts, headers say %d",
				si.Label, len(txs.txs), len(rcpts.rcpts), hd.totalTxs)
		}
	}
	var logs *colLogsData
	if cols.want(ColLogs) {
		lv, err := cl.load(ColLogs, func(ci ColumnInfo) (any, error) { return decodeLogsCol(dir, ci) })
		if err != nil {
			return nil, err
		}
		logs = lv.(*colLogsData)
		if len(logs.logs) != hd.totalTxs {
			return nil, fmt.Errorf("archive: segment %s has logs for %d receipts, headers say %d",
				si.Label, len(logs.logs), hd.totalTxs)
		}
	}

	seg := &dataset.Segment{Month: si.Month}
	seg.Blocks = make([]*types.Block, len(hd.numbers))
	base := 0
	for i := range seg.Blocks {
		b := &types.Block{Header: types.Header{
			Number:     hd.numbers[i],
			ParentHash: hd.parents[i],
			Time:       time.Unix(0, hd.times[i]).UTC(),
			Miner:      hd.miners[i],
			BaseFee:    hd.baseFees[i],
			GasLimit:   hd.gasLimits[i],
			GasUsed:    hd.gasUseds[i],
		}}
		cnt := hd.txCounts[i]
		if txs != nil {
			if base+cnt > len(txs.txs) {
				return nil, fmt.Errorf("archive: segment %s tx counts overrun the tx column", si.Label)
			}
			b.Txs = txs.txs[base : base+cnt : base+cnt]
			b.Receipts = make([]*types.Receipt, cnt)
			for j := 0; j < cnt; j++ {
				r := rcpts.rcpts[base+j] // copy; the cached chunk stays pristine
				r.TxHash = b.Txs[j].Hash()
				if logs != nil {
					r.Logs = logs.logs[base+j]
				}
				b.Receipts[j] = &r
			}
		}
		base += cnt
		b.Seal()
		seg.Blocks[i] = b
	}

	if cols.want(ColFlashbots) {
		fv, err := cl.load(ColFlashbots, func(ci ColumnInfo) (any, error) { return decodeFlashbotsCol(dir, ci) })
		if err != nil {
			return nil, err
		}
		seg.FBBlocks = fv.(*colFBData).recs
	}
	if cols.want(ColObserved) {
		ov, err := cl.load(ColObserved, func(ci ColumnInfo) (any, error) { return decodeObservedCol(dir, ci, ColObserved) })
		if err != nil {
			return nil, err
		}
		seg.Observed = ov.(*colObsData).recs
		for i := range si.ObservedV {
			name := fmt.Sprintf("%s_v%d", ColObserved, i+1)
			ev, err := cl.load(name, func(ci ColumnInfo) (any, error) { return decodeObservedCol(dir, ci, name) })
			if err != nil {
				return nil, err
			}
			seg.ObservedV = append(seg.ObservedV, ev.(*colObsData).recs)
		}
	}
	return seg, nil
}

// readObservedV3 reads one segment's observation columns only — the
// pre-slice path, which needs every vantage's captures but none of the
// block data.
func readObservedV3(dir string, si SegmentInfo, opt ReadOptions, rsp *obs.Span) (primary []p2p.ObservedTx, extra [][]p2p.ObservedTx, err error) {
	cc, _ := opt.Cache.(ChunkCache)
	cl := &chunkLoader{dir: dir, si: si, opt: opt, cc: cc, rsp: rsp}
	defer cl.end()
	ov, err := cl.load(ColObserved, func(ci ColumnInfo) (any, error) { return decodeObservedCol(dir, ci, ColObserved) })
	if err != nil {
		return nil, nil, err
	}
	primary = ov.(*colObsData).recs
	for i := range si.ObservedV {
		name := fmt.Sprintf("%s_v%d", ColObserved, i+1)
		ev, err := cl.load(name, func(ci ColumnInfo) (any, error) { return decodeObservedCol(dir, ci, name) })
		if err != nil {
			return nil, nil, err
		}
		extra = append(extra, ev.(*colObsData).recs)
	}
	return primary, extra, nil
}

// readBlockV3 restores a single block from a v3 segment. The zone maps
// pick exactly the chunks whose block range holds the target, so the
// flashbots, observed and price chunks are never touched, and a chunk
// whose zone excludes the block is skipped without decoding.
func readBlockV3(dir string, si SegmentInfo, number uint64) (*types.Block, error) {
	inZone := func(name string) (ColumnInfo, bool, error) {
		ci, err := findColumn(si, name)
		if err != nil {
			return ColumnInfo{}, false, err
		}
		return ci, ci.File.Count > 0 && ci.MinBlock <= number && number <= ci.MaxBlock, nil
	}
	hci, ok, err := inZone(ColHeaders)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("archive: block %d missing from segment %s", number, si.Label)
	}
	hd, err := decodeHeadersCol(dir, hci)
	if err != nil {
		return nil, err
	}
	idx := -1
	base := 0
	for i, n := range hd.numbers {
		if n == number {
			idx = i
			break
		}
		base += hd.txCounts[i]
	}
	if idx < 0 {
		return nil, fmt.Errorf("archive: block %d missing from segment %s", number, si.Label)
	}
	b := &types.Block{Header: types.Header{
		Number:     hd.numbers[idx],
		ParentHash: hd.parents[idx],
		Time:       time.Unix(0, hd.times[idx]).UTC(),
		Miner:      hd.miners[idx],
		BaseFee:    hd.baseFees[idx],
		GasLimit:   hd.gasLimits[idx],
		GasUsed:    hd.gasUseds[idx],
	}}
	cnt := hd.txCounts[idx]
	if cnt > 0 {
		tci, ok, err := inZone(ColTxs)
		if err != nil {
			return nil, err
		}
		if ok {
			txs, err := decodeTxsCol(dir, tci)
			if err != nil {
				return nil, err
			}
			if base+cnt > len(txs.txs) {
				return nil, fmt.Errorf("archive: segment %s tx counts overrun the tx column", si.Label)
			}
			b.Txs = txs.txs[base : base+cnt : base+cnt]
		}
		rci, ok, err := inZone(ColReceipts)
		if err != nil {
			return nil, err
		}
		if ok && len(b.Txs) == cnt {
			rcpts, err := decodeReceiptsCol(dir, rci)
			if err != nil {
				return nil, err
			}
			var logs *colLogsData
			if lci, lok, err := inZone(ColLogs); err != nil {
				return nil, err
			} else if lok {
				if logs, err = decodeLogsCol(dir, lci); err != nil {
					return nil, err
				}
			}
			if base+cnt > len(rcpts.rcpts) {
				return nil, fmt.Errorf("archive: segment %s receipt rows overrun the receipt column", si.Label)
			}
			b.Receipts = make([]*types.Receipt, cnt)
			for j := 0; j < cnt; j++ {
				r := rcpts.rcpts[base+j]
				r.TxHash = b.Txs[j].Hash()
				if logs != nil && base+j < len(logs.logs) {
					r.Logs = logs.logs[base+j]
				}
				b.Receipts[j] = &r
			}
		}
	}
	b.Seal()
	return b, nil
}
