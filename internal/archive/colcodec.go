package archive

import (
	"bufio"
	"compress/gzip"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"mevscope/internal/types"
)

// The v3 column-chunk encoding. Where v2 stores one gzip stream of
// whole-JSON document frames per month, v3 stores one chunk file per
// (month, column) so a reader can decode exactly the columns a query
// touches. A chunk file is:
//
//	offset 0:  magic "MCOL" (4 bytes, plain)
//	offset 4:  codec byte 0x03 (plain)
//	offset 5:  column-name length byte + column name (plain)
//	then:      gzip stream of sections:
//	             address dictionary  uvarint count, count × 20 bytes
//	             hash dictionary     uvarint count, count × 32 bytes
//	             row count           uvarint
//	             body               column-specific field streams
//
// The body uses column-appropriate codecs: delta+uvarint for block
// numbers, zigzag-delta varints for timestamps and observed-at moments,
// first-appearance dictionaries for addresses and 32-byte hashes that
// repeat (miners, senders, venues, log topics), zigzag varints for
// amounts, and raw bytes for genuinely incompressible values (parent
// hashes, observed tx hashes, log data). The plain header keeps format
// detection decompression-free, the gzip CRC plus the manifest SHA-256
// (over the stored bytes) catch corruption, and every dictionary
// reference is bounds-checked so a bit flip that survives framing is
// refused rather than mis-attributed.

const (
	// colMagic opens every v3 column-chunk file.
	colMagic = "MCOL"
	// colCodecByte is the chunk codec version the header carries.
	colCodecByte = byte(FormatV3)
	// colExt is the v3 chunk-file extension.
	colExt = ".col"
	// maxChunkSize caps a chunk's decompressed size; anything larger is
	// corruption, not data (the largest real chunk is one month of
	// transactions, far below this).
	maxChunkSize = 1 << 28
	// maxDictSize caps a dictionary's claimed entry count for the same
	// reason: a corrupt count must not turn into a giant allocation
	// before the gzip trailer CRC gets a chance to fire.
	maxDictSize = 1 << 22
)

// colWriter accumulates one chunk's body while building its address and
// hash dictionaries in first-appearance order, so encoding is fully
// deterministic: the same documents always produce the same bytes (the
// live-rotation ≡ batch file-identity pin depends on it).
type colWriter struct {
	addrIdx  map[types.Address]uint64
	addrList []types.Address
	hashIdx  map[types.Hash]uint64
	hashList []types.Hash
	body     []byte
}

func newColWriter() *colWriter {
	return &colWriter{
		addrIdx: make(map[types.Address]uint64),
		hashIdx: make(map[types.Hash]uint64),
	}
}

func (w *colWriter) uvarint(v uint64) {
	w.body = binary.AppendUvarint(w.body, v)
}

// svarint writes a zigzag-encoded signed value — small magnitudes of
// either sign stay small on disk (amounts, deltas).
func (w *colWriter) svarint(v int64) {
	w.body = binary.AppendVarint(w.body, v)
}

func (w *colWriter) byte1(b byte) { w.body = append(w.body, b) }

func (w *colWriter) raw(p []byte) { w.body = append(w.body, p...) }

// addr writes a dictionary reference for an address, adding it on first
// appearance.
func (w *colWriter) addr(a types.Address) {
	i, ok := w.addrIdx[a]
	if !ok {
		i = uint64(len(w.addrList))
		w.addrIdx[a] = i
		w.addrList = append(w.addrList, a)
	}
	w.uvarint(i)
}

// hash writes a dictionary reference for a 32-byte hash, adding it on
// first appearance. Use only for hashes that repeat (log topics); unique
// hashes go through raw.
func (w *colWriter) hash(h types.Hash) {
	i, ok := w.hashIdx[h]
	if !ok {
		i = uint64(len(w.hashList))
		w.hashIdx[h] = i
		w.hashList = append(w.hashList, h)
	}
	w.uvarint(i)
}

// writeChunk persists one column chunk into <segDir>/<col>.col: plain
// header, then the gzip stream of dictionaries, row count and body.
// Returns the file's integrity record with Count = rows.
func writeChunk(root, segDir, col string, rows int, w *colWriter) (FileInfo, error) {
	if err := os.MkdirAll(segDir, 0o755); err != nil {
		return FileInfo{}, err
	}
	if len(col) > 255 {
		return FileInfo{}, fmt.Errorf("archive: column name %q too long", col)
	}
	path := filepath.Join(segDir, col+colExt)
	f, err := os.Create(path)
	if err != nil {
		return FileInfo{}, err
	}
	err = func() error {
		bw := bufio.NewWriterSize(f, 1<<16)
		if _, err := bw.WriteString(colMagic); err != nil {
			return err
		}
		if err := bw.WriteByte(colCodecByte); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(len(col))); err != nil {
			return err
		}
		if _, err := bw.WriteString(col); err != nil {
			return err
		}
		zw, err := gzip.NewWriterLevel(bw, gzip.BestCompression)
		if err != nil {
			return err
		}
		var lenBuf [binary.MaxVarintLen64]byte
		writeUvarint := func(v uint64) error {
			n := binary.PutUvarint(lenBuf[:], v)
			_, err := zw.Write(lenBuf[:n])
			return err
		}
		if err := writeUvarint(uint64(len(w.addrList))); err != nil {
			return err
		}
		for _, a := range w.addrList {
			if _, err := zw.Write(a[:]); err != nil {
				return err
			}
		}
		if err := writeUvarint(uint64(len(w.hashList))); err != nil {
			return err
		}
		for _, h := range w.hashList {
			if _, err := zw.Write(h[:]); err != nil {
				return err
			}
		}
		if err := writeUvarint(uint64(rows)); err != nil {
			return err
		}
		if _, err := zw.Write(w.body); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		return bw.Flush()
	}()
	if err != nil {
		_ = f.Close() // encode error wins; the file is junk either way
		return FileInfo{}, fmt.Errorf("archive: write %s: %w", col, err)
	}
	if err := f.Close(); err != nil {
		return FileInfo{}, err
	}
	return fileInfoFor(root, path, rows)
}

// colReader walks a decoded chunk body with its dictionaries. Every
// accessor is bounds-checked and sets a sticky error instead of
// panicking; callers check err after (or during) their decode loops.
type colReader struct {
	addrs  []types.Address
	hashes []types.Hash
	rows   int
	body   []byte
	off    int
	err    error
}

func (r *colReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *colReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.body[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *colReader) svarint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.body[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *colReader) byte1() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.body) {
		r.fail("truncated byte at offset %d", r.off)
		return 0
	}
	b := r.body[r.off]
	r.off++
	return b
}

func (r *colReader) raw(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.body) {
		r.fail("truncated %d-byte field at offset %d", n, r.off)
		return nil
	}
	p := r.body[r.off : r.off+n]
	r.off += n
	return p
}

func (r *colReader) addr() types.Address {
	i := r.uvarint()
	if r.err != nil {
		return types.Address{}
	}
	if i >= uint64(len(r.addrs)) {
		r.fail("address dictionary reference %d out of range (dictionary has %d entries)", i, len(r.addrs))
		return types.Address{}
	}
	return r.addrs[i]
}

func (r *colReader) hash() types.Hash {
	i := r.uvarint()
	if r.err != nil {
		return types.Hash{}
	}
	if i >= uint64(len(r.hashes)) {
		r.fail("hash dictionary reference %d out of range (dictionary has %d entries)", i, len(r.hashes))
		return types.Hash{}
	}
	return r.hashes[i]
}

func (r *colReader) rawHash() types.Hash {
	var h types.Hash
	copy(h[:], r.raw(len(h)))
	return h
}

// done verifies the body was consumed exactly.
func (r *colReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.body) {
		return fmt.Errorf("%d trailing bytes after the last row", len(r.body)-r.off)
	}
	return nil
}

// Chunk-decode scratch pools. A projected v3 read decodes many small
// chunk files, and a fresh 64 KiB bufio buffer pair plus a fresh gzip
// inflater per chunk dominated its allocation profile — the readers are
// fully resettable, so they recycle across chunks and across the
// parallel segment-decode workers. Only the scratch recycles: the
// decoded body and dictionaries are retained by the returned colReader
// and must never enter a pool.
var (
	chunkBufPool  = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 1<<16) }}
	chunkGzipPool = sync.Pool{New: func() any { return new(gzip.Reader) }}
)

// readChunk opens, verifies and fully decompresses one column chunk. The
// SHA-256 is computed on the fly while the stream drains — one read
// pass — and compared against the manifest before any row is released.
// wantCol guards against a chunk file renamed or cross-linked on disk.
func readChunk(root string, fi FileInfo, wantCol string) (*colReader, error) {
	path := filepath.Join(root, filepath.FromSlash(fi.Name))
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	cr := &countingReader{r: io.TeeReader(f, h)}
	br := chunkBufPool.Get().(*bufio.Reader)
	br.Reset(cr)
	defer chunkBufPool.Put(br)
	var hdr [6]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("archive: %s is not a v3 column chunk", fi.Name)
	}
	if string(hdr[:4]) != colMagic {
		return nil, fmt.Errorf("archive: %s is not a v3 column chunk (bad magic)", fi.Name)
	}
	if hdr[4] != colCodecByte {
		return nil, fmt.Errorf("archive: %s: unsupported chunk codec version %d (want %d)", fi.Name, hdr[4], colCodecByte)
	}
	var nameArr [255]byte
	nameBuf := nameArr[:int(hdr[5])]
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("archive: %s: truncated column name", fi.Name)
	}
	if string(nameBuf) != wantCol {
		return nil, fmt.Errorf("archive: %s holds column %q, manifest says %q", fi.Name, nameBuf, wantCol)
	}
	zr := chunkGzipPool.Get().(*gzip.Reader)
	defer chunkGzipPool.Put(zr)
	if err := zr.Reset(br); err != nil {
		return nil, fmt.Errorf("archive: %s: %w", fi.Name, err)
	}
	zbr := chunkBufPool.Get().(*bufio.Reader)
	zbr.Reset(zr)
	defer chunkBufPool.Put(zbr)
	r := &colReader{}
	readDict := func(kind string) (int, error) {
		n, err := binary.ReadUvarint(zbr)
		if err != nil {
			return 0, fmt.Errorf("truncated %s dictionary: %w", kind, err)
		}
		if n > maxDictSize {
			return 0, fmt.Errorf("%s dictionary claims %d entries (corrupt count)", kind, n)
		}
		return int(n), nil
	}
	nAddrs, err := readDict("address")
	if err != nil {
		return nil, fmt.Errorf("archive: %s: %w", fi.Name, err)
	}
	r.addrs = make([]types.Address, nAddrs)
	for i := range r.addrs {
		if _, err := io.ReadFull(zbr, r.addrs[i][:]); err != nil {
			return nil, fmt.Errorf("archive: %s: truncated address dictionary: %w", fi.Name, err)
		}
	}
	nHashes, err := readDict("hash")
	if err != nil {
		return nil, fmt.Errorf("archive: %s: %w", fi.Name, err)
	}
	r.hashes = make([]types.Hash, nHashes)
	for i := range r.hashes {
		if _, err := io.ReadFull(zbr, r.hashes[i][:]); err != nil {
			return nil, fmt.Errorf("archive: %s: truncated hash dictionary: %w", fi.Name, err)
		}
	}
	rows, err := binary.ReadUvarint(zbr)
	if err != nil {
		return nil, fmt.Errorf("archive: %s: truncated row count: %w", fi.Name, err)
	}
	if rows > maxChunkSize {
		return nil, fmt.Errorf("archive: %s claims %d rows (corrupt count)", fi.Name, rows)
	}
	r.rows = int(rows)
	body, err := io.ReadAll(io.LimitReader(zbr, maxChunkSize+1))
	if err != nil {
		return nil, fmt.Errorf("archive: %s: %w", fi.Name, err)
	}
	if len(body) > maxChunkSize {
		return nil, fmt.Errorf("archive: %s body exceeds the %d-byte chunk cap (corrupt)", fi.Name, maxChunkSize)
	}
	r.body = body
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("archive: %s: %w", fi.Name, err)
	}
	// Drain whatever the buffers did not consume so the hash and size
	// cover the whole stored file.
	if _, err := io.Copy(io.Discard, cr); err != nil {
		return nil, fmt.Errorf("archive: %s: %w", fi.Name, err)
	}
	if hex.EncodeToString(h.Sum(nil)) != fi.SHA256 || cr.n != fi.Bytes {
		return nil, fmt.Errorf("archive: %s is corrupt (checksum mismatch)", fi.Name)
	}
	if r.rows != fi.Count {
		return nil, fmt.Errorf("archive: %s has %d rows, manifest says %d", fi.Name, r.rows, fi.Count)
	}
	return r, nil
}

// Payload presence-mask codec. tx.Hash() covers every payload field
// (recursively through Inner), so the encoding must be lossless: a
// uvarint bitmask records which field groups are non-zero, and only
// those are encoded. Zero-valued fields decode back to zero by omission.
const (
	pfToken = 1 << iota
	pfRecipient
	pfAmount
	pfHops
	pfAmountIn
	pfMinOut
	pfProtocol
	pfLoanID
	pfRepay
	pfFlashToken
	pfFlashAmount
	pfInner
	pfOracleToken
	pfOraclePrice
	pfPayouts
	pfVenue
	pfTokenA
	pfTokenB
	pfAmountA
	pfAmountB
)

func payloadMask(p *types.Payload) uint64 {
	var m uint64
	set := func(bit uint64, on bool) {
		if on {
			m |= bit
		}
	}
	set(pfToken, !p.Token.IsZero())
	set(pfRecipient, !p.Recipient.IsZero())
	set(pfAmount, p.Amount != 0)
	set(pfHops, len(p.Hops) > 0)
	set(pfAmountIn, p.AmountIn != 0)
	set(pfMinOut, p.MinOut != 0)
	set(pfProtocol, !p.Protocol.IsZero())
	set(pfLoanID, p.LoanID != 0)
	set(pfRepay, p.Repay != 0)
	set(pfFlashToken, !p.FlashToken.IsZero())
	set(pfFlashAmount, p.FlashAmount != 0)
	set(pfInner, p.Inner != nil)
	set(pfOracleToken, !p.OracleToken.IsZero())
	set(pfOraclePrice, p.OraclePrice != 0)
	set(pfPayouts, len(p.Payouts) > 0)
	set(pfVenue, !p.Venue.IsZero())
	set(pfTokenA, !p.TokenA.IsZero())
	set(pfTokenB, !p.TokenB.IsZero())
	set(pfAmountA, p.AmountA != 0)
	set(pfAmountB, p.AmountB != 0)
	return m
}

func (w *colWriter) payload(p *types.Payload) {
	w.byte1(byte(p.Kind))
	m := payloadMask(p)
	w.uvarint(m)
	if m&pfToken != 0 {
		w.addr(p.Token)
	}
	if m&pfRecipient != 0 {
		w.addr(p.Recipient)
	}
	if m&pfAmount != 0 {
		w.svarint(int64(p.Amount))
	}
	if m&pfHops != 0 {
		w.uvarint(uint64(len(p.Hops)))
		for _, h := range p.Hops {
			w.addr(h.Venue)
			w.addr(h.TokenIn)
			w.addr(h.TokenOut)
		}
	}
	if m&pfAmountIn != 0 {
		w.svarint(int64(p.AmountIn))
	}
	if m&pfMinOut != 0 {
		w.svarint(int64(p.MinOut))
	}
	if m&pfProtocol != 0 {
		w.addr(p.Protocol)
	}
	if m&pfLoanID != 0 {
		w.uvarint(p.LoanID)
	}
	if m&pfRepay != 0 {
		w.svarint(int64(p.Repay))
	}
	if m&pfFlashToken != 0 {
		w.addr(p.FlashToken)
	}
	if m&pfFlashAmount != 0 {
		w.svarint(int64(p.FlashAmount))
	}
	if m&pfInner != 0 {
		w.payload(p.Inner)
	}
	if m&pfOracleToken != 0 {
		w.addr(p.OracleToken)
	}
	if m&pfOraclePrice != 0 {
		w.svarint(int64(p.OraclePrice))
	}
	if m&pfPayouts != 0 {
		w.uvarint(uint64(len(p.Payouts)))
		for _, e := range p.Payouts {
			w.addr(e.To)
			w.svarint(int64(e.Amount))
		}
	}
	if m&pfVenue != 0 {
		w.addr(p.Venue)
	}
	if m&pfTokenA != 0 {
		w.addr(p.TokenA)
	}
	if m&pfTokenB != 0 {
		w.addr(p.TokenB)
	}
	if m&pfAmountA != 0 {
		w.svarint(int64(p.AmountA))
	}
	if m&pfAmountB != 0 {
		w.svarint(int64(p.AmountB))
	}
}

// maxPayloadDepth bounds Inner recursion on decode so a corrupt mask
// cannot stack-overflow the reader.
const maxPayloadDepth = 16

func (r *colReader) payload(depth int) types.Payload {
	var p types.Payload
	if depth > maxPayloadDepth {
		r.fail("payload nesting exceeds depth %d (corrupt)", maxPayloadDepth)
		return p
	}
	p.Kind = types.TxKind(r.byte1())
	m := r.uvarint()
	if m&pfToken != 0 {
		p.Token = r.addr()
	}
	if m&pfRecipient != 0 {
		p.Recipient = r.addr()
	}
	if m&pfAmount != 0 {
		p.Amount = types.Amount(r.svarint())
	}
	if m&pfHops != 0 {
		n := r.uvarint()
		if n > uint64(len(r.body)) {
			r.fail("hop count %d exceeds chunk body (corrupt)", n)
			return p
		}
		p.Hops = make([]types.SwapHop, n)
		for i := range p.Hops {
			p.Hops[i] = types.SwapHop{Venue: r.addr(), TokenIn: r.addr(), TokenOut: r.addr()}
		}
	}
	if m&pfAmountIn != 0 {
		p.AmountIn = types.Amount(r.svarint())
	}
	if m&pfMinOut != 0 {
		p.MinOut = types.Amount(r.svarint())
	}
	if m&pfProtocol != 0 {
		p.Protocol = r.addr()
	}
	if m&pfLoanID != 0 {
		p.LoanID = r.uvarint()
	}
	if m&pfRepay != 0 {
		p.Repay = types.Amount(r.svarint())
	}
	if m&pfFlashToken != 0 {
		p.FlashToken = r.addr()
	}
	if m&pfFlashAmount != 0 {
		p.FlashAmount = types.Amount(r.svarint())
	}
	if m&pfInner != 0 {
		inner := r.payload(depth + 1)
		p.Inner = &inner
	}
	if m&pfOracleToken != 0 {
		p.OracleToken = r.addr()
	}
	if m&pfOraclePrice != 0 {
		p.OraclePrice = types.Amount(r.svarint())
	}
	if m&pfPayouts != 0 {
		n := r.uvarint()
		if n > uint64(len(r.body)) {
			r.fail("payout count %d exceeds chunk body (corrupt)", n)
			return p
		}
		p.Payouts = make([]types.PayoutEntry, n)
		for i := range p.Payouts {
			p.Payouts[i] = types.PayoutEntry{To: r.addr(), Amount: types.Amount(r.svarint())}
		}
	}
	if m&pfVenue != 0 {
		p.Venue = r.addr()
	}
	if m&pfTokenA != 0 {
		p.TokenA = r.addr()
	}
	if m&pfTokenB != 0 {
		p.TokenB = r.addr()
	}
	if m&pfAmountA != 0 {
		p.AmountA = types.Amount(r.svarint())
	}
	if m&pfAmountB != 0 {
		p.AmountB = types.Amount(r.svarint())
	}
	return p
}
