package archive

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"mevscope/internal/dataset"
	"mevscope/internal/obs"
	"mevscope/internal/parallel"
	"mevscope/internal/types"
)

// StreamWriter builds an archive incrementally, one month segment at a
// time — the disk side of a streaming follower's OnMonthEnd hook.
// `mevscope archive -live` rotates each study month to disk the moment
// it completes, so a long collection run's memory-to-disk handoff is
// spread over the run instead of paid all at once at the end; Finalize
// writes whatever months remain, the price history and the manifest.
// The batch Write/WriteFormat path runs on the same writer (everything
// is "remaining" at Finalize, encoded in parallel), so a rotated archive
// is file-for-file identical to a batch one.
//
// A StreamWriter is not safe for concurrent use; the follower's
// OnMonthEnd hook already serializes months in ascending order.
//
// Lifecycle guards: WriteSegment refuses non-ascending months (an
// out-of-order rotation would silently shadow an earlier month) and
// anything after finalize; Finalize itself is idempotent — a second call
// is a no-op returning the already-written manifest, so callers layering
// defer-style cleanup over an explicit finalize never double-write.
type StreamWriter struct {
	dir    string
	format Format
	man    *Manifest
	done   bool
	span   *obs.Span
}

// SetSpan attaches a tracing parent: each segment written — rotated or
// finalized — records an "archive:encode" span under it (internal/obs).
// A nil span (the default) disables recording at zero cost.
func (w *StreamWriter) SetSpan(sp *obs.Span) { w.span = sp }

// NewStreamWriter creates the archive directory and an empty manifest in
// the given format. The manifest is only written by Finalize: a run that
// dies mid-stream leaves no manifest, and Read refuses the directory.
func NewStreamWriter(dir string, tl types.Timeline, weth types.Address, format Format, meta map[string]string) (*StreamWriter, error) {
	if !format.valid() {
		return nil, fmt.Errorf("archive: unknown format %d", format)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &StreamWriter{
		dir:    dir,
		format: format,
		man:    &Manifest{Version: int(format), Timeline: tl, WETH: weth, Meta: meta},
	}, nil
}

// Segments returns how many month segments have been written so far.
func (w *StreamWriter) Segments() int { return len(w.man.Segments) }

// WriteSegment persists one completed month. Months must arrive in
// ascending order with at least one block each.
func (w *StreamWriter) WriteSegment(seg *dataset.Segment) error {
	if w.done {
		return fmt.Errorf("archive: stream writer already finalized")
	}
	if len(seg.Blocks) == 0 {
		return fmt.Errorf("archive: segment %s has no blocks", seg.Month.Label())
	}
	if n := len(w.man.Segments); n > 0 && seg.Month <= w.man.Segments[n-1].Month {
		return fmt.Errorf("archive: segment %s arrived after %s (months must ascend)",
			seg.Month.Label(), w.man.Segments[n-1].Label)
	}
	info, err := w.writeSegmentSpan(w.span, seg)
	if err != nil {
		return err
	}
	w.man.Segments = append(w.man.Segments, info)
	return nil
}

// writeSegmentSpan encodes one segment under an "archive:encode" span
// carrying the month, block count and bytes landed on disk.
func (w *StreamWriter) writeSegmentSpan(parent *obs.Span, seg *dataset.Segment) (SegmentInfo, error) {
	sp := parent.Child(obs.StageEncode)
	defer sp.End()
	sp.SetLabel(seg.Month.Label())
	sp.SetBlocks(len(seg.Blocks))
	info, err := writeSegment(w.dir, w.format, seg)
	if err == nil {
		sp.SetBytes(segBytes(info))
	}
	return info, err
}

// Finalize writes every month not yet rotated (encoded in parallel),
// the price history, the observer window and the manifest, completing
// the archive. ds is the full collected dataset; months already written
// by WriteSegment are skipped, so the streaming and batch paths produce
// identical archives.
func (w *StreamWriter) Finalize(ds *dataset.Dataset) (*Manifest, error) {
	if w.done {
		// Repeated finalize is a no-op: the archive on disk is complete and
		// the manifest already written — hand it back instead of erroring,
		// so an explicit Finalize plus a deferred one compose safely.
		return w.man, nil
	}
	head := ds.Chain.Head()
	if head == nil {
		return nil, fmt.Errorf("archive: dataset has no blocks")
	}
	last := types.Month(-1)
	if n := len(w.man.Segments); n > 0 {
		last = w.man.Segments[n-1].Month
	}
	var pending []*dataset.Segment
	for _, seg := range dataset.Partition(ds) {
		if seg.Month > last {
			pending = append(pending, seg)
		}
	}
	type segResult struct {
		info SegmentInfo
		err  error
	}
	results := parallel.Map(len(pending), 0, func(i int) segResult {
		info, err := w.writeSegmentSpan(w.span, pending[i])
		return segResult{info, err}
	})
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		w.man.Segments = append(w.man.Segments, r.info)
	}

	w.man.Head = head.Header.Number
	w.man.TotalBlocks = ds.Chain.Len()
	vantages := ds.VantageList()
	// Rebuilt from scratch (not appended) so a retry after a transient
	// failure later in this call cannot leave duplicate entries behind.
	w.man.Observer = nil
	w.man.Vantages = nil
	if ds.Observer != nil {
		start, stop := ds.Observer.Window()
		w.man.Observer = &ObserverInfo{Start: start, Stop: stop}
		for _, v := range vantages {
			w.man.Vantages = append(w.man.Vantages, VantageInfo{Node: v.Node(), MissRate: v.MissRate()})
		}
	}
	// Drift check: everything the dataset holds must be inside some
	// segment. A record whose month was already rotated but which entered
	// the dataset afterwards would be in neither the rotated file nor a
	// pending segment — refuse rather than archive a silently thinner
	// world. Observation logs are checked per vantage.
	var blocks, fb int
	obsV := make([]int, len(vantages))
	for _, si := range w.man.Segments {
		blocks += si.Blocks.Count
		fb += si.Flashbots.Count
		if len(obsV) > 0 {
			obsV[0] += si.Observed.Count
		}
		for i, fi := range si.ObservedV {
			if i+1 < len(obsV) {
				obsV[i+1] += fi.Count
			}
		}
	}
	if blocks != w.man.TotalBlocks {
		return nil, fmt.Errorf("archive: segments hold %d blocks, dataset has %d (rotated months drifted from the chain)",
			blocks, w.man.TotalBlocks)
	}
	if fb != len(ds.FBBlocks) {
		return nil, fmt.Errorf("archive: segments hold %d Flashbots records, dataset has %d (records arrived after their month rotated)",
			fb, len(ds.FBBlocks))
	}
	for i, v := range vantages {
		if obsV[i] != v.Count() {
			return nil, fmt.Errorf("archive: segments hold %d observation records for vantage %d, dataset has %d (records arrived after their month rotated)",
				obsV[i], i, v.Count())
		}
	}
	var err error
	if w.man.Prices, err = writePrices(w.dir, w.format, ds.Prices); err != nil {
		return nil, err
	}

	mf, err := os.Create(filepath.Join(w.dir, ManifestName))
	if err != nil {
		return nil, err
	}
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(w.man); err != nil {
		_ = mf.Close() // encode error wins; the manifest is junk either way
		return nil, fmt.Errorf("archive: manifest: %w", err)
	}
	if err := mf.Close(); err != nil {
		return nil, err
	}
	w.done = true
	return w.man, nil
}
