package archive_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"mevscope/internal/archive"
	"mevscope/internal/dataset"
	"mevscope/internal/types"
)

// TestProjectionMatchesFullRead is the projection property pin: for
// random month ranges and random column subsets, a projected read must
// restore exactly the data a full read of the same range restores on
// every projected column — in all three formats. v1/v2 cannot skip
// decoding, v3 skips whole chunks; the caller-visible contract is the
// same either way.
func TestProjectionMatchesFullRead(t *testing.T) {
	s := world(t)
	ds := dataset.FromSim(s)
	dirs := map[archive.Format]string{}
	for _, f := range []archive.Format{archive.FormatV1, archive.FormatV2, archive.FormatV3} {
		dir := t.TempDir()
		if _, err := archive.WriteFormat(dir, ds, nil, f); err != nil {
			t.Fatal(err)
		}
		dirs[f] = dir
	}
	man, err := archive.ReadManifest(dirs[archive.FormatV3])
	if err != nil {
		t.Fatal(err)
	}
	first, last := man.Window()
	span := int(last-first) + 1
	names := archive.ColumnNames()

	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 6; trial++ {
		lo := first + types.Month(rng.Intn(span))
		hi := lo + types.Month(rng.Intn(int(last-lo)+1))
		var subset []string
		for _, name := range names {
			if rng.Intn(2) == 1 {
				subset = append(subset, name)
			}
		}
		if len(subset) == 0 {
			subset = []string{archive.ColFlashbots}
		}
		for _, f := range []archive.Format{archive.FormatV1, archive.FormatV2, archive.FormatV3} {
			t.Run(fmt.Sprintf("trial%d/%v/%s..%s/%v", trial, f, lo.Label(), hi.Label(), subset), func(t *testing.T) {
				full, _, err := archive.ReadRange(dirs[f], lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				proj, _, err := archive.ReadRangeWith(dirs[f], lo, hi, archive.ReadOptions{Columns: subset})
				if err != nil {
					t.Fatal(err)
				}
				compareProjection(t, full, proj, subset)
			})
		}
	}
}

// compareProjection asserts proj carries exactly full's data on every
// projected column (after dependency closure), and — for datasets that
// can actually skip — nothing beyond the closure.
func compareProjection(t *testing.T, full, proj *dataset.Dataset, subset []string) {
	t.Helper()
	if len(proj.Projection) == 0 {
		t.Fatal("projected dataset has no Projection marker")
	}
	has := func(name string) bool {
		for _, c := range proj.Projection {
			if c == name {
				return true
			}
		}
		return false
	}
	// The closure invariants: headers always restore; logs need their
	// receipts; receipts and txs travel together.
	if !has(archive.ColHeaders) {
		t.Errorf("projection %v does not include headers", proj.Projection)
	}
	for _, name := range subset {
		if !has(name) {
			t.Errorf("requested column %q missing from projection %v", name, proj.Projection)
		}
	}
	if has(archive.ColLogs) && !has(archive.ColReceipts) {
		t.Errorf("projection %v has logs without receipts", proj.Projection)
	}
	if has(archive.ColReceipts) != has(archive.ColTxs) {
		t.Errorf("projection %v splits receipts from txs", proj.Projection)
	}

	if full.Chain.Len() != proj.Chain.Len() {
		t.Fatalf("projected chain has %d blocks, full has %d", proj.Chain.Len(), full.Chain.Len())
	}
	head := full.Chain.Head().Header.Number
	for n := head + 1 - uint64(full.Chain.Len()); n <= head; n++ {
		fb, err := full.Chain.ByNumber(n)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := proj.Chain.ByNumber(n)
		if err != nil {
			t.Fatal(err)
		}
		if fb.Header != pb.Header {
			t.Fatalf("block %d header differs:\n full %+v\n proj %+v", n, fb.Header, pb.Header)
		}
		if !has(archive.ColTxs) {
			continue
		}
		if len(fb.Txs) != len(pb.Txs) || len(fb.Receipts) != len(pb.Receipts) {
			t.Fatalf("block %d: projected %d txs/%d receipts, full %d/%d",
				n, len(pb.Txs), len(pb.Receipts), len(fb.Txs), len(fb.Receipts))
		}
		for i := range fb.Txs {
			if fb.Txs[i].Hash() != pb.Txs[i].Hash() {
				t.Fatalf("block %d tx %d hash differs", n, i)
			}
			fr, pr := fb.Receipts[i], pb.Receipts[i]
			if fr.TxHash != pr.TxHash || fr.Status != pr.Status || fr.GasUsed != pr.GasUsed ||
				fr.EffectiveGasPrice != pr.EffectiveGasPrice || fr.CoinbaseTransfer != pr.CoinbaseTransfer {
				t.Fatalf("block %d receipt %d differs:\n full %+v\n proj %+v", n, i, fr, pr)
			}
			if has(archive.ColLogs) && !reflect.DeepEqual(fr.Logs, pr.Logs) {
				t.Fatalf("block %d receipt %d logs differ:\n full %+v\n proj %+v", n, i, fr.Logs, pr.Logs)
			}
		}
	}

	if has(archive.ColFlashbots) && !reflect.DeepEqual(full.FBBlocks, proj.FBBlocks) {
		t.Errorf("projected FBBlocks differ from full read (%d vs %d records)",
			len(proj.FBBlocks), len(full.FBBlocks))
	}
	if has(archive.ColObserved) {
		if (full.Observer == nil) != (proj.Observer == nil) {
			t.Fatalf("observer presence differs: full %v, proj %v", full.Observer != nil, proj.Observer != nil)
		}
		if full.Observer != nil && !reflect.DeepEqual(full.Observer.Records(), proj.Observer.Records()) {
			t.Errorf("projected observer records differ from full read")
		}
		if len(full.Vantages) != len(proj.Vantages) {
			t.Errorf("projected %d vantages, full %d", len(proj.Vantages), len(full.Vantages))
		}
	} else if proj.Observer != nil {
		t.Error("observed column not projected but the observer was restored")
	}
}
