package archive_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mevscope/internal/archive"
	"mevscope/internal/dataset"
)

// The v3 refusal matrix: every way a column chunk or its manifest record
// can rot — truncation, flipped dictionary bytes, a stale codec version,
// foreign magic, a cross-linked column file, a zone map that disagrees
// with the payload it summarizes — must surface as an error from Read,
// never as a silently wrong dataset. The zone maps steer chunk skipping,
// so zone/payload drift in particular would corrupt query results
// without tripping any checksum.
func TestArchiveV3RefusesCorruption(t *testing.T) {
	s := world(t)
	ds := dataset.FromSim(s)

	// write lays down a pristine v3 archive for one subtest to break.
	write := func(t *testing.T) (string, *archive.Manifest) {
		t.Helper()
		dir := t.TempDir()
		man, err := archive.WriteFormat(dir, ds, nil, archive.FormatV3)
		if err != nil {
			t.Fatal(err)
		}
		return dir, man
	}

	// column finds the first non-empty chunk of the named column.
	column := func(t *testing.T, man *archive.Manifest, name string) archive.ColumnInfo {
		t.Helper()
		for _, seg := range man.Segments {
			for _, ci := range seg.Columns {
				if ci.Name == name && ci.File.Count > 0 {
					return ci
				}
			}
		}
		t.Fatalf("archive has no non-empty %q chunk", name)
		return archive.ColumnInfo{}
	}

	// tamper rewrites a chunk file in place through fn.
	tamper := func(t *testing.T, dir string, ci archive.ColumnInfo, fn func([]byte) []byte) {
		t.Helper()
		path := filepath.Join(dir, filepath.FromSlash(ci.File.Name))
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, fn(raw), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// rewriteManifest round-trips manifest.json through fn, so a subtest
	// can drift a zone map or cross-link a chunk record while every file
	// on disk stays bit-perfect.
	rewriteManifest := func(t *testing.T, dir string, fn func(*archive.Manifest)) {
		t.Helper()
		path := filepath.Join(dir, archive.ManifestName)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var man archive.Manifest
		if err := json.Unmarshal(raw, &man); err != nil {
			t.Fatal(err)
		}
		fn(&man)
		out, err := json.Marshal(&man)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// mutateColumn applies fn to the manifest record rewriteManifest
	// loaded that matches the given chunk.
	mutateColumn := func(man *archive.Manifest, ci archive.ColumnInfo, fn func(*archive.ColumnInfo)) {
		for i := range man.Segments {
			for j := range man.Segments[i].Columns {
				if man.Segments[i].Columns[j].File.Name == ci.File.Name {
					fn(&man.Segments[i].Columns[j])
					return
				}
			}
		}
	}

	refuse := func(t *testing.T, dir, want string) {
		t.Helper()
		_, _, err := archive.Read(dir)
		if err == nil {
			t.Fatal("corrupted v3 archive read succeeded")
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("refusal error = %v; want mention of %q", err, want)
		}
	}

	t.Run("truncated chunk", func(t *testing.T) {
		dir, man := write(t)
		tamper(t, dir, column(t, man, archive.ColHeaders), func(raw []byte) []byte {
			return raw[:len(raw)*2/3]
		})
		refuse(t, dir, "archive:")
	})

	t.Run("bit-flipped dictionary", func(t *testing.T) {
		dir, man := write(t)
		ci := column(t, man, archive.ColTxs)
		tamper(t, dir, ci, func(raw []byte) []byte {
			// Past the plain chunk header and the gzip header: deflate
			// data whose first bytes encode the address dictionary.
			raw[6+len(archive.ColTxs)+16] ^= 0x10
			return raw
		})
		refuse(t, dir, "archive:")
	})

	t.Run("stale codec version byte", func(t *testing.T) {
		dir, man := write(t)
		tamper(t, dir, column(t, man, archive.ColFlashbots), func(raw []byte) []byte {
			raw[4] = 0x02
			return raw
		})
		refuse(t, dir, "unsupported chunk codec version")
	})

	t.Run("bad magic", func(t *testing.T) {
		dir, man := write(t)
		tamper(t, dir, column(t, man, archive.ColLogs), func(raw []byte) []byte {
			copy(raw, "XCOL")
			return raw
		})
		refuse(t, dir, "not a v3 column chunk")
	})

	t.Run("cross-linked column file", func(t *testing.T) {
		// The manifest's headers record pointed at the (intact, checksum-
		// clean) txs chunk: the embedded column name is the only guard.
		dir, man := write(t)
		hdr := column(t, man, archive.ColHeaders)
		txs := column(t, man, archive.ColTxs)
		rewriteManifest(t, dir, func(m *archive.Manifest) {
			mutateColumn(m, hdr, func(ci *archive.ColumnInfo) { ci.File = txs.File })
		})
		refuse(t, dir, `holds column "txs"`)
	})

	t.Run("zone map block disagreement", func(t *testing.T) {
		dir, man := write(t)
		hdr := column(t, man, archive.ColHeaders)
		rewriteManifest(t, dir, func(m *archive.Manifest) {
			mutateColumn(m, hdr, func(ci *archive.ColumnInfo) { ci.MinBlock++ })
		})
		refuse(t, dir, "zone map disagrees with payload")
	})

	t.Run("zone map gas disagreement", func(t *testing.T) {
		dir, man := write(t)
		txs := column(t, man, archive.ColTxs)
		rewriteManifest(t, dir, func(m *archive.Manifest) {
			mutateColumn(m, txs, func(ci *archive.ColumnInfo) { ci.MaxGas++ })
		})
		refuse(t, dir, "zone map disagrees with payload")
	})

	t.Run("zone map month disagreement", func(t *testing.T) {
		dir, man := write(t)
		hdr := column(t, man, archive.ColHeaders)
		rewriteManifest(t, dir, func(m *archive.Manifest) {
			mutateColumn(m, hdr, func(ci *archive.ColumnInfo) { ci.Month++ })
		})
		refuse(t, dir, "disagrees with segment")
	})

	t.Run("projection skips the corrupt chunk", func(t *testing.T) {
		// The flip side of refusal: a projected read never decodes the
		// columns it skips, so corruption there is invisible to it while
		// the full restore still refuses.
		dir, man := write(t)
		tamper(t, dir, column(t, man, archive.ColTxs), func(raw []byte) []byte {
			raw[len(raw)/2] ^= 0x40
			return raw
		})
		first, last := man.Window()
		_, _, err := archive.ReadRangeWith(dir, first, last, archive.ReadOptions{
			Columns: []string{archive.ColHeaders, archive.ColFlashbots},
		})
		if err != nil {
			t.Errorf("projected read decoded the corrupt txs chunk: %v", err)
		}
		refuse(t, dir, "archive:")
	})
}
