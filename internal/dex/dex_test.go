package dex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mevscope/internal/state"
	"mevscope/internal/types"
)

func setup(t *testing.T) (*state.State, *Venue, *Pool, types.Address, types.Address, types.Address) {
	t.Helper()
	st := state.New()
	weth := st.RegisterToken("WETH", 18)
	dai := st.RegisterToken("DAI", 18)
	v := NewVenue("UniswapV2", 30)
	p := v.EnsurePool(weth, dai)
	lp := types.DeriveAddress("lp", 0)
	st.MintToken(weth, lp, 1_000*types.Ether)
	st.MintToken(dai, lp, 2_000_000*types.Ether)
	if err := p.AddLiquidity(st, lp, 1_000*types.Ether, 2_000_000*types.Ether); err != nil {
		t.Fatal(err)
	}
	return st, v, p, weth, dai, lp
}

func TestEnsurePoolSymmetric(t *testing.T) {
	st := state.New()
	x := st.RegisterToken("A", 18)
	y := st.RegisterToken("B", 18)
	v := NewVenue("V", 30)
	p1 := v.EnsurePool(x, y)
	p2 := v.EnsurePool(y, x)
	if p1 != p2 {
		t.Error("pair ordering should not matter")
	}
	if got, ok := v.Pool(y, x); !ok || got != p1 {
		t.Error("Pool lookup")
	}
	if len(v.Pools()) != 1 {
		t.Error("Pools count")
	}
}

func TestPoolAddressesDistinctAcrossVenues(t *testing.T) {
	st := state.New()
	x := st.RegisterToken("A", 18)
	y := st.RegisterToken("B", 18)
	v1 := NewVenue("V1", 30)
	v2 := NewVenue("V2", 30)
	if v1.EnsurePool(x, y).Addr == v2.EnsurePool(x, y).Addr {
		t.Error("same pair on different venues must have distinct addresses")
	}
}

func TestAmountOutBasics(t *testing.T) {
	st, _, p, weth, _, _ := setup(t)
	out, err := p.AmountOut(st, weth, types.Ether)
	if err != nil {
		t.Fatal(err)
	}
	// 1 ETH into a 1000/2,000,000 pool at 0.30% fee ≈ 1994 DAI.
	if out < 1_990*types.Ether || out > 1_996*types.Ether {
		t.Errorf("out = %v", out)
	}
	if _, err := p.AmountOut(st, weth, 0); err != ErrInsufficientInput {
		t.Error("zero input should fail")
	}
	if _, err := p.AmountOut(st, types.DeriveAddress("x", 9), types.Ether); err == nil {
		t.Error("foreign token should fail")
	}
}

func TestAmountOutEmptyPool(t *testing.T) {
	st := state.New()
	x := st.RegisterToken("A", 18)
	y := st.RegisterToken("B", 18)
	p := NewVenue("V", 30).EnsurePool(x, y)
	if _, err := p.AmountOut(st, x, types.Ether); err != ErrEmptyPool {
		t.Errorf("err = %v", err)
	}
}

func TestSwapMovesTokens(t *testing.T) {
	st, _, p, weth, dai, _ := setup(t)
	trader := types.DeriveAddress("trader", 1)
	st.MintToken(weth, trader, 10*types.Ether)

	ra0, rb0 := p.Reserves(st)
	res, err := p.Swap(st, trader, weth, types.Ether, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TokenOut != dai {
		t.Error("wrong output token")
	}
	if st.TokenBalance(weth, trader) != 9*types.Ether {
		t.Error("input not debited")
	}
	if st.TokenBalance(dai, trader) != res.AmountOut {
		t.Error("output not credited")
	}
	ra1, rb1 := p.Reserves(st)
	if ra1 != ra0+types.Ether || rb1 != rb0-res.AmountOut {
		t.Error("reserves not updated")
	}
}

func TestSwapSlippageGuard(t *testing.T) {
	st, _, p, weth, _, _ := setup(t)
	trader := types.DeriveAddress("trader", 1)
	st.MintToken(weth, trader, 10*types.Ether)
	if _, err := p.Swap(st, trader, weth, types.Ether, 3_000*types.Ether); err != ErrSlippage {
		t.Errorf("err = %v", err)
	}
	if st.TokenBalance(weth, trader) != 10*types.Ether {
		t.Error("failed swap must not move tokens")
	}
}

func TestSwapInsufficientTraderBalance(t *testing.T) {
	st, _, p, weth, _, _ := setup(t)
	trader := types.DeriveAddress("broke", 1)
	if _, err := p.Swap(st, trader, weth, types.Ether, 0); err == nil {
		t.Error("swap without balance should fail")
	}
}

func TestConstantProductInvariant(t *testing.T) {
	st, _, p, weth, _, _ := setup(t)
	trader := types.DeriveAddress("trader", 1)
	st.MintToken(weth, trader, 100*types.Ether)

	ra0, rb0 := p.Reserves(st)
	k0 := float64(ra0) * float64(rb0)
	for i := 0; i < 10; i++ {
		if _, err := p.Swap(st, trader, weth, types.Ether, 0); err != nil {
			t.Fatal(err)
		}
		ra, rb := p.Reserves(st)
		k := float64(ra) * float64(rb)
		if k < k0*0.9999 { // k must never decrease (fees make it grow)
			t.Fatalf("k decreased: %.0f -> %.0f", k0, k)
		}
		k0 = k
	}
}

func TestSpotPriceMovesAgainstTrader(t *testing.T) {
	st, _, p, weth, _, _ := setup(t)
	trader := types.DeriveAddress("trader", 1)
	st.MintToken(weth, trader, 100*types.Ether)

	before := p.SpotPrice(st, weth)
	if _, err := p.Swap(st, trader, weth, 50*types.Ether, 0); err != nil {
		t.Fatal(err)
	}
	after := p.SpotPrice(st, weth)
	if after >= before {
		t.Errorf("buying DAI with WETH should lower DAI-per-WETH price: %f -> %f", before, after)
	}
}

func TestSandwichProfitability(t *testing.T) {
	// The economic core of the paper: front-running a large trade and
	// selling back after it is profitable for the attacker.
	st, _, p, weth, dai, _ := setup(t)
	victim := types.DeriveAddress("victim", 1)
	attacker := types.DeriveAddress("attacker", 1)
	st.MintToken(weth, victim, 200*types.Ether)
	st.MintToken(weth, attacker, 50*types.Ether)

	start := st.TokenBalance(weth, attacker)
	front, err := p.Swap(st, attacker, weth, 10*types.Ether, 0) // buy DAI first
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Swap(st, victim, weth, 100*types.Ether, 0); err != nil { // victim's big buy
		t.Fatal(err)
	}
	if _, err := p.Swap(st, attacker, dai, front.AmountOut, 0); err != nil { // sell back
		t.Fatal(err)
	}
	end := st.TokenBalance(weth, attacker)
	if end <= start {
		t.Errorf("sandwich should profit: start %v end %v", start, end)
	}
}

func TestRegistry(t *testing.T) {
	st := state.New()
	x := st.RegisterToken("A", 18)
	y := st.RegisterToken("B", 18)
	r := NewRegistry()
	v := NewVenue("Uni", 30)
	r.Add(v)
	r.Add(v) // duplicate is a no-op
	if len(r.Venues()) != 1 {
		t.Error("duplicate add")
	}
	if got, ok := r.ByAddr(v.Addr); !ok || got != v {
		t.Error("ByAddr")
	}
	if got, ok := r.ByName("Uni"); !ok || got != v {
		t.Error("ByName")
	}
	p := v.EnsurePool(x, y)
	if got, ok := r.PoolByAddr(p.Addr); !ok || got != p {
		t.Error("PoolByAddr")
	}
	if _, ok := r.PoolByAddr(types.DeriveAddress("nope", 0)); ok {
		t.Error("PoolByAddr miss")
	}
}

// Property: for random pool depths and trade sizes, output never exceeds
// the output reserve and token conservation holds across the swap.
func TestSwapConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := state.New()
		x := st.RegisterToken("X", 18)
		y := st.RegisterToken("Y", 18)
		p := NewVenue("V", 30).EnsurePool(x, y)
		lp := types.DeriveAddress("lp", 0)
		depthX := types.Amount(rng.Int63n(int64(1000*types.Ether)) + 1000)
		depthY := types.Amount(rng.Int63n(int64(1000*types.Ether)) + 1000)
		st.MintToken(x, lp, depthX)
		st.MintToken(y, lp, depthY)
		if err := p.AddLiquidity(st, lp, depthX, depthY); err != nil {
			return false
		}
		trader := types.DeriveAddress("t", 1)
		in := types.Amount(rng.Int63n(int64(100*types.Ether)) + 1)
		st.MintToken(x, trader, in)
		totX, totY := st.TotalToken(x), st.TotalToken(y)
		res, err := p.Swap(st, trader, x, in, 0)
		if err != nil {
			return true // e.g. rounding to zero output on tiny pools — fine
		}
		if res.AmountOut >= depthY {
			return false
		}
		return st.TotalToken(x) == totX && st.TotalToken(y) == totY
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: AmountOut is monotonically non-decreasing in the input amount
// and always positive-slippage (out per in falls as in grows).
func TestAmountOutMonotonicProperty(t *testing.T) {
	st := state.New()
	x := st.RegisterToken("X", 18)
	y := st.RegisterToken("Y", 18)
	p := NewVenue("V", 30).EnsurePool(x, y)
	lp := types.DeriveAddress("lp", 0)
	st.MintToken(x, lp, 10_000*types.Ether)
	st.MintToken(y, lp, 20_000*types.Ether)
	if err := p.AddLiquidity(st, lp, 10_000*types.Ether, 20_000*types.Ether); err != nil {
		t.Fatal(err)
	}
	f := func(rawA, rawB uint32) bool {
		a := types.Amount(rawA%1_000_000) * types.Gwei * 1000
		b := types.Amount(rawB%1_000_000) * types.Gwei * 1000
		if a == 0 || b == 0 {
			return true
		}
		if a > b {
			a, b = b, a
		}
		outA, errA := p.AmountOut(st, x, a)
		outB, errB := p.AmountOut(st, x, b)
		if errA != nil || errB != nil {
			return false
		}
		if outA > outB {
			return false // monotonicity
		}
		// Average price worsens with size (convexity of x*y=k).
		return float64(outA)/float64(a) >= float64(outB)/float64(b)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a round trip (buy then sell everything) never profits — the
// pool fee guarantees it.
func TestRoundTripNeverProfitsProperty(t *testing.T) {
	f := func(seed int64, rawIn uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		st := state.New()
		x := st.RegisterToken("X", 18)
		y := st.RegisterToken("Y", 18)
		p := NewVenue("V", 30).EnsurePool(x, y)
		lp := types.DeriveAddress("lp", 0)
		dx := types.Amount(rng.Int63n(int64(5_000*types.Ether))) + types.Ether
		dy := types.Amount(rng.Int63n(int64(5_000*types.Ether))) + types.Ether
		st.MintToken(x, lp, dx)
		st.MintToken(y, lp, dy)
		if err := p.AddLiquidity(st, lp, dx, dy); err != nil {
			return false
		}
		trader := types.DeriveAddress("t", 1)
		in := types.Amount(rawIn%1_000_000)*types.Gwei*100 + types.Gwei
		st.MintToken(x, trader, in)
		res1, err := p.Swap(st, trader, x, in, 0)
		if err != nil {
			return true // dust rounding: fine
		}
		res2, err := p.Swap(st, trader, y, res1.AmountOut, 0)
		if err != nil {
			return true
		}
		return res2.AmountOut <= in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
