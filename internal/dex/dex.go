// Package dex implements constant-product automated market makers across
// multiple exchange venues, mirroring the exchanges the paper crawls
// (Uniswap V2/V3, SushiSwap, Bancor, …).
//
// Pool reserves are held in the state ledger under the pool's address, the
// way real AMM contracts custody their tokens; reverting a transaction via
// state snapshots therefore restores pool reserves automatically.
//
// Swaps emit Swap and Sync events plus the underlying ERC-20 Transfer
// events, which is all the detection heuristics in internal/core/detect
// get to see.
package dex

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"mevscope/internal/state"
	"mevscope/internal/types"
)

// Errors returned by swap execution.
var (
	ErrNoPool            = errors.New("dex: no pool for pair")
	ErrInsufficientInput = errors.New("dex: insufficient input amount")
	ErrSlippage          = errors.New("dex: output below minimum (slippage)")
	ErrEmptyPool         = errors.New("dex: pool has no liquidity")
)

// Venue is one exchange deployment (e.g. "UniswapV2") holding many pools.
type Venue struct {
	Name   string
	Addr   types.Address
	FeeBps int // swap fee in basis points, e.g. 30 = 0.30 %

	pools map[pairKey]*Pool
}

type pairKey struct{ a, b types.Address }

func keyFor(x, y types.Address) pairKey {
	if lessAddr(y, x) {
		x, y = y, x
	}
	return pairKey{x, y}
}

func lessAddr(a, b types.Address) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// NewVenue creates an exchange venue with the given swap fee.
func NewVenue(name string, feeBps int) *Venue {
	return &Venue{
		Name:   name,
		Addr:   types.DeriveAddress("venue:"+name, 0),
		FeeBps: feeBps,
		pools:  make(map[pairKey]*Pool),
	}
}

// Pool is a constant-product pair on a venue. Reserves are read from the
// ledger at the pool address.
type Pool struct {
	Venue          *Venue
	Addr           types.Address
	TokenA, TokenB types.Address // sorted
}

// EnsurePool returns the venue's pool for the token pair, creating the
// (empty) pool on first use.
func (v *Venue) EnsurePool(x, y types.Address) *Pool {
	k := keyFor(x, y)
	if p, ok := v.pools[k]; ok {
		return p
	}
	p := &Pool{
		Venue:  v,
		Addr:   types.DeriveAddress("pool:"+v.Name, poolIndex(k)),
		TokenA: k.a,
		TokenB: k.b,
	}
	v.pools[k] = p
	return p
}

func poolIndex(k pairKey) uint64 {
	h := types.HashData(k.a[:], k.b[:])
	var idx uint64
	for i := 0; i < 8; i++ {
		idx = idx<<8 | uint64(h[i])
	}
	return idx
}

// Pool returns the existing pool for a pair, if any.
func (v *Venue) Pool(x, y types.Address) (*Pool, bool) {
	p, ok := v.pools[keyFor(x, y)]
	return p, ok
}

// Pools lists the venue's pools in deterministic order.
func (v *Venue) Pools() []*Pool {
	out := make([]*Pool, 0, len(v.pools))
	for _, p := range v.pools {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return lessAddr(out[i].Addr, out[j].Addr) })
	return out
}

// Reserves returns the current ledger balances of both pool tokens.
func (p *Pool) Reserves(st *state.State) (ra, rb types.Amount) {
	return st.TokenBalance(p.TokenA, p.Addr), st.TokenBalance(p.TokenB, p.Addr)
}

// Reserve returns the reserve of one token (which must be TokenA or TokenB).
func (p *Pool) Reserve(st *state.State, token types.Address) types.Amount {
	return st.TokenBalance(token, p.Addr)
}

// Other returns the counterpart token of the pair.
func (p *Pool) Other(token types.Address) types.Address {
	if token == p.TokenA {
		return p.TokenB
	}
	return p.TokenA
}

// Has reports whether token is one side of the pair.
func (p *Pool) Has(token types.Address) bool { return token == p.TokenA || token == p.TokenB }

// AmountOut computes the constant-product output for an exact input,
// after the venue fee. It uses big.Int internally to avoid overflow.
func (p *Pool) AmountOut(st *state.State, tokenIn types.Address, in types.Amount) (types.Amount, error) {
	if in <= 0 {
		return 0, ErrInsufficientInput
	}
	if !p.Has(tokenIn) {
		return 0, fmt.Errorf("dex: token %v not in pool", tokenIn.Short())
	}
	rin := p.Reserve(st, tokenIn)
	rout := p.Reserve(st, p.Other(tokenIn))
	if rin <= 0 || rout <= 0 {
		return 0, ErrEmptyPool
	}
	// out = rout * in*(10000-fee) / (rin*10000 + in*(10000-fee))
	feeNum := big.NewInt(int64(10000 - p.Venue.FeeBps))
	inF := new(big.Int).Mul(big.NewInt(int64(in)), feeNum)
	num := new(big.Int).Mul(big.NewInt(int64(rout)), inF)
	den := new(big.Int).Mul(big.NewInt(int64(rin)), big.NewInt(10000))
	den.Add(den, inF)
	out := num.Div(num, den)
	return types.Amount(out.Int64()), nil
}

// SpotPrice returns the marginal price of tokenOut per tokenIn as a float,
// ignoring fees. Zero if the pool is empty.
func (p *Pool) SpotPrice(st *state.State, tokenIn types.Address) float64 {
	rin := p.Reserve(st, tokenIn)
	rout := p.Reserve(st, p.Other(tokenIn))
	if rin <= 0 {
		return 0
	}
	return float64(rout) / float64(rin)
}

// SwapResult reports a completed swap for event emission and callers.
type SwapResult struct {
	Pool      *Pool
	TokenIn   types.Address
	TokenOut  types.Address
	AmountIn  types.Amount
	AmountOut types.Amount
}

// Swap executes an exact-input swap by trader against the pool, moving
// tokens through the ledger. minOut of zero disables slippage protection.
func (p *Pool) Swap(st *state.State, trader, tokenIn types.Address, in, minOut types.Amount) (SwapResult, error) {
	out, err := p.AmountOut(st, tokenIn, in)
	if err != nil {
		return SwapResult{}, err
	}
	if out <= 0 {
		return SwapResult{}, ErrInsufficientInput
	}
	if minOut > 0 && out < minOut {
		return SwapResult{}, ErrSlippage
	}
	tokenOut := p.Other(tokenIn)
	if err := st.TransferToken(tokenIn, trader, p.Addr, in); err != nil {
		return SwapResult{}, err
	}
	if err := st.TransferToken(tokenOut, p.Addr, trader, out); err != nil {
		return SwapResult{}, err
	}
	return SwapResult{Pool: p, TokenIn: tokenIn, TokenOut: tokenOut, AmountIn: in, AmountOut: out}, nil
}

// AddLiquidity deposits both tokens into the pool from provider. It does
// not mint LP shares — liquidity provision bookkeeping is out of scope for
// the measurements, only reserve depth matters.
func (p *Pool) AddLiquidity(st *state.State, provider types.Address, amtA, amtB types.Amount) error {
	if err := st.TransferToken(p.TokenA, provider, p.Addr, amtA); err != nil {
		return err
	}
	return st.TransferToken(p.TokenB, provider, p.Addr, amtB)
}

// Registry resolves venues by address and name for the whole world.
type Registry struct {
	byAddr map[types.Address]*Venue
	byName map[string]*Venue
	order  []*Venue
}

// NewRegistry creates an empty venue registry.
func NewRegistry() *Registry {
	return &Registry{byAddr: make(map[types.Address]*Venue), byName: make(map[string]*Venue)}
}

// Add registers a venue.
func (r *Registry) Add(v *Venue) {
	if _, dup := r.byAddr[v.Addr]; dup {
		return
	}
	r.byAddr[v.Addr] = v
	r.byName[v.Name] = v
	r.order = append(r.order, v)
}

// ByAddr resolves a venue by its address.
func (r *Registry) ByAddr(a types.Address) (*Venue, bool) {
	v, ok := r.byAddr[a]
	return v, ok
}

// ByName resolves a venue by name.
func (r *Registry) ByName(n string) (*Venue, bool) {
	v, ok := r.byName[n]
	return v, ok
}

// Venues lists venues in registration order.
func (r *Registry) Venues() []*Venue { return r.order }

// PoolByAddr finds a pool anywhere in the registry by its address.
func (r *Registry) PoolByAddr(a types.Address) (*Pool, bool) {
	for _, v := range r.order {
		for _, p := range v.pools {
			if p.Addr == a {
				return p, true
			}
		}
	}
	return nil, false
}
