package parallel

import (
	"sync/atomic"
	"testing"
	"time"

	"mevscope/internal/obs"
)

func TestMapOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		out := Map(100, workers, func(i int) int { return i * i })
		if len(out) != 100 {
			t.Fatalf("workers=%d: len=%d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d]=%d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if out := Map(0, 4, func(i int) int { return i }); out != nil {
		t.Errorf("empty map = %v", out)
	}
}

func TestMapRunsEachOnce(t *testing.T) {
	var calls atomic.Int64
	Map(57, 5, func(i int) struct{} {
		calls.Add(1)
		return struct{}{}
	})
	if calls.Load() != 57 {
		t.Errorf("calls = %d, want 57", calls.Load())
	}
}

func TestMapChunksCoverExactly(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{10, 3}, {10, 1}, {3, 10}, {1, 1}, {100, 16}, {7, 7},
	} {
		parts := MapChunks(tc.n, tc.workers, func(lo, hi int) [2]int { return [2]int{lo, hi} })
		prev := 0
		for _, p := range parts {
			if p[0] != prev {
				t.Fatalf("n=%d workers=%d: chunk starts at %d, want %d", tc.n, tc.workers, p[0], prev)
			}
			if p[1] <= p[0] {
				t.Fatalf("n=%d workers=%d: empty chunk %v", tc.n, tc.workers, p)
			}
			prev = p[1]
		}
		if prev != tc.n {
			t.Fatalf("n=%d workers=%d: chunks end at %d", tc.n, tc.workers, prev)
		}
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit count should pass through")
	}
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Error("non-positive should select at least one worker")
	}
}

// TestMapSpanMatchesMap: instrumentation must not perturb results —
// the span variants return exactly what the plain variants do at every
// worker count.
func TestMapSpanMatchesMap(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		tr := obs.New("test")
		sp := tr.Root().Child("stage")
		got := MapSpan(sp, 50, workers, func(i int) int { return i * 3 })
		sp.End()
		for i, v := range got {
			if v != i*3 {
				t.Fatalf("workers=%d: out[%d]=%d", workers, i, v)
			}
		}
		parts := MapChunksSpan(sp, 50, workers, func(lo, hi int) int { return hi - lo })
		sum := 0
		for _, p := range parts {
			sum += p
		}
		if sum != 50 {
			t.Fatalf("workers=%d: chunk coverage = %d", workers, sum)
		}
	}
}

// TestMapSpanRecordsPool: a traced fan-out records the pool size and
// accumulates busy time bounded by wall×workers (modulo clamping).
func TestMapSpanRecordsPool(t *testing.T) {
	tr := obs.New("test")
	sp := tr.Root().Child("stage")
	MapSpan(sp, 64, 4, func(i int) int {
		time.Sleep(100 * time.Microsecond)
		return i
	})
	sp.End()
	if sp.Workers() != 4 {
		t.Errorf("workers = %d; want 4", sp.Workers())
	}
	if sp.Busy() <= 0 {
		t.Error("no busy time recorded")
	}
	if u := sp.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization = %v; want (0, 1]", u)
	}
}

// TestDisabledTracerZeroAllocs pins the disabled-tracer contract from
// the flight-recorder work: Map with a nil span must allocate exactly
// what the uninstrumented implementation did — one slice for the
// sequential path (the result) — and enabling the span on that path
// must add nothing either (attrs are plain fields, busy is an atomic).
func TestDisabledTracerZeroAllocs(t *testing.T) {
	fn := func(i int) int { return i }
	if got := testing.AllocsPerRun(100, func() { Map(64, 1, fn) }); got != 1 {
		t.Errorf("sequential Map allocates %v per run; want 1 (result slice)", got)
	}
	if got := testing.AllocsPerRun(100, func() { MapSpan(nil, 64, 1, fn) }); got != 1 {
		t.Errorf("sequential MapSpan(nil) allocates %v per run; want 1", got)
	}
	tr := obs.New("test")
	sp := tr.Root().Child("stage")
	if got := testing.AllocsPerRun(100, func() { MapSpan(sp, 64, 1, fn) }); got != 1 {
		t.Errorf("sequential MapSpan(live) allocates %v per run; want 1", got)
	}
	cfn := func(lo, hi int) int { return hi - lo }
	base := testing.AllocsPerRun(100, func() { MapChunks(64, 1, cfn) })
	if got := testing.AllocsPerRun(100, func() { MapChunksSpan(nil, 64, 1, cfn) }); got != base {
		t.Errorf("MapChunksSpan(nil) allocates %v per run; want %v (same as MapChunks)", got, base)
	}
}

// BenchmarkMapDisabledTracer is the allocs-pinning benchmark for the
// nil-span fast path; run with -benchmem and compare allocs/op against
// BenchmarkMapTraced to see the disabled tracer's zero overhead.
func BenchmarkMapDisabledTracer(b *testing.B) {
	fn := func(i int) int { return i * i }
	b.ReportAllocs()
	for b.Loop() {
		MapSpan(nil, 256, 1, fn)
	}
}

// BenchmarkMapTraced measures the enabled path at one worker: the only
// addition over the disabled path is two clock reads and one atomic add
// per Map call.
func BenchmarkMapTraced(b *testing.B) {
	tr := obs.New("bench")
	sp := tr.Root().Child("stage")
	fn := func(i int) int { return i * i }
	b.ReportAllocs()
	for b.Loop() {
		MapSpan(sp, 256, 1, fn)
	}
}
