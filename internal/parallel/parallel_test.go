package parallel

import (
	"sync/atomic"
	"testing"
)

func TestMapOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		out := Map(100, workers, func(i int) int { return i * i })
		if len(out) != 100 {
			t.Fatalf("workers=%d: len=%d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d]=%d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if out := Map(0, 4, func(i int) int { return i }); out != nil {
		t.Errorf("empty map = %v", out)
	}
}

func TestMapRunsEachOnce(t *testing.T) {
	var calls atomic.Int64
	Map(57, 5, func(i int) struct{} {
		calls.Add(1)
		return struct{}{}
	})
	if calls.Load() != 57 {
		t.Errorf("calls = %d, want 57", calls.Load())
	}
}

func TestMapChunksCoverExactly(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{10, 3}, {10, 1}, {3, 10}, {1, 1}, {100, 16}, {7, 7},
	} {
		parts := MapChunks(tc.n, tc.workers, func(lo, hi int) [2]int { return [2]int{lo, hi} })
		prev := 0
		for _, p := range parts {
			if p[0] != prev {
				t.Fatalf("n=%d workers=%d: chunk starts at %d, want %d", tc.n, tc.workers, p[0], prev)
			}
			if p[1] <= p[0] {
				t.Fatalf("n=%d workers=%d: empty chunk %v", tc.n, tc.workers, p)
			}
			prev = p[1]
		}
		if prev != tc.n {
			t.Fatalf("n=%d workers=%d: chunks end at %d", tc.n, tc.workers, prev)
		}
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit count should pass through")
	}
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Error("non-positive should select at least one worker")
	}
}
