// Package parallel is the worker-pool plumbing behind the measurement
// pipeline: it fans independent units of work (blocks, profit records,
// inference classifications, whole simulations) across a bounded set of
// goroutines and hands results back in input order, so parallel runs are
// byte-identical to sequential ones.
package parallel

import (
	"runtime"
	"sync"
)

// Workers normalizes a requested worker count: values below 1 select
// runtime.NumCPU(), everything else passes through.
func Workers(n int) int {
	if n < 1 {
		return runtime.NumCPU()
	}
	return n
}

// Map computes fn(i) for every i in [0, n) across the given number of
// workers and returns the results indexed by i. Results are written into
// pre-assigned slots, so the output is identical to a sequential loop
// regardless of scheduling. fn must be safe to call concurrently.
func Map[T any](n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers = Workers(workers)
	if workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// MapChunks splits [0, n) into contiguous chunks of roughly equal size —
// one per worker — and calls fn(lo, hi) for each, returning the per-chunk
// results in ascending chunk order. Chunked fan-out amortizes scheduling
// overhead when per-item work is small (e.g. per-block detector sweeps);
// merging the returned slice in order reproduces the sequential result.
func MapChunks[T any](n, workers int, fn func(lo, hi int) T) []T {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	bounds := chunkBounds(n, workers)
	if workers == 1 {
		return []T{fn(0, n)}
	}
	out := make([]T, len(bounds))
	var wg sync.WaitGroup
	wg.Add(len(bounds))
	for c, b := range bounds {
		go func(c int, lo, hi int) {
			defer wg.Done()
			out[c] = fn(lo, hi)
		}(c, b[0], b[1])
	}
	wg.Wait()
	return out
}

// chunkBounds returns the [lo, hi) bounds of k near-equal chunks of [0, n).
func chunkBounds(n, k int) [][2]int {
	out := make([][2]int, 0, k)
	base, rem := n/k, n%k
	lo := 0
	for c := 0; c < k; c++ {
		size := base
		if c < rem {
			size++
		}
		if size == 0 {
			continue
		}
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	return out
}
