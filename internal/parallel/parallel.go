// Package parallel is the worker-pool plumbing behind the measurement
// pipeline: it fans independent units of work (blocks, profit records,
// inference classifications, whole simulations) across a bounded set of
// goroutines and hands results back in input order, so parallel runs are
// byte-identical to sequential ones.
//
// The Span variants accept an obs.Span and record the pool's size and
// per-worker busy time on it, so traces can report pool utilization as
// busy/(wall×workers). A nil span selects the exact uninstrumented
// code path — zero extra allocations, no clock reads.
package parallel

import (
	"runtime"
	"sync"
	"time"

	"mevscope/internal/obs"
)

// Workers normalizes a requested worker count: values below 1 select
// runtime.NumCPU(), everything else passes through.
func Workers(n int) int {
	if n < 1 {
		return runtime.NumCPU()
	}
	return n
}

// Map computes fn(i) for every i in [0, n) across the given number of
// workers and returns the results indexed by i. Results are written into
// pre-assigned slots, so the output is identical to a sequential loop
// regardless of scheduling. fn must be safe to call concurrently.
func Map[T any](n, workers int, fn func(i int) T) []T {
	return MapSpan(nil, n, workers, fn)
}

// MapSpan is Map with pool instrumentation: the span (when non-nil)
// records the worker count and accumulates each worker's busy time —
// the time spent inside fn, excluding hand-off waits. Scheduling and
// output are identical to Map; tracing never perturbs results.
func MapSpan[T any](sp *obs.Span, n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers = Workers(workers)
	if workers == 1 || n == 1 {
		if sp == nil {
			for i := 0; i < n; i++ {
				out[i] = fn(i)
			}
			return out
		}
		sp.SetWorkers(1)
		t0 := time.Now()
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		sp.AddBusy(time.Since(t0))
		return out
	}
	if workers > n {
		workers = n
	}
	sp.SetWorkers(workers)
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			if sp == nil {
				for i := range next {
					out[i] = fn(i)
				}
				return
			}
			var busy time.Duration
			for i := range next {
				t0 := time.Now()
				out[i] = fn(i)
				busy += time.Since(t0)
			}
			sp.AddBusy(busy)
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// MapChunks splits [0, n) into contiguous chunks of roughly equal size —
// one per worker — and calls fn(lo, hi) for each, returning the per-chunk
// results in ascending chunk order. Chunked fan-out amortizes scheduling
// overhead when per-item work is small (e.g. per-block detector sweeps);
// merging the returned slice in order reproduces the sequential result.
func MapChunks[T any](n, workers int, fn func(lo, hi int) T) []T {
	return MapChunksSpan(nil, n, workers, fn)
}

// MapChunksSpan is MapChunks with pool instrumentation; see MapSpan.
func MapChunksSpan[T any](sp *obs.Span, n, workers int, fn func(lo, hi int) T) []T {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	bounds := chunkBounds(n, workers)
	if workers == 1 {
		if sp == nil {
			return []T{fn(0, n)}
		}
		sp.SetWorkers(1)
		t0 := time.Now()
		out := []T{fn(0, n)}
		sp.AddBusy(time.Since(t0))
		return out
	}
	sp.SetWorkers(len(bounds))
	out := make([]T, len(bounds))
	var wg sync.WaitGroup
	wg.Add(len(bounds))
	for c, b := range bounds {
		go func(c int, lo, hi int) {
			defer wg.Done()
			if sp == nil {
				out[c] = fn(lo, hi)
				return
			}
			t0 := time.Now()
			out[c] = fn(lo, hi)
			sp.AddBusy(time.Since(t0))
		}(c, b[0], b[1])
	}
	wg.Wait()
	return out
}

// chunkBounds returns the [lo, hi) bounds of k near-equal chunks of [0, n).
func chunkBounds(n, k int) [][2]int {
	out := make([][2]int, 0, k)
	base, rem := n/k, n%k
	lo := 0
	for c := 0; c < k; c++ {
		size := base
		if c < rem {
			size++
		}
		if size == 0 {
			continue
		}
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	return out
}
