package lending

import (
	"testing"

	"mevscope/internal/state"
	"mevscope/internal/types"
)

func setup(t *testing.T) (*state.State, *Protocol, *Oracle, types.Address, types.Address) {
	t.Helper()
	st := state.New()
	weth := st.RegisterToken("WETH", 18)
	dai := st.RegisterToken("DAI", 18)
	o := NewOracle("chainlink")
	o.SetPrice(weth, types.Ether)     // 1 WETH = 1 ETH
	o.SetPrice(dai, types.Ether/2000) // 2000 DAI per ETH
	p := New(Config{
		Name:            "AaveV2",
		LiqThresholdBps: 8000,
		LiqBonusBps:     500,
		CloseFactorBps:  5000,
		FlashLoanFeeBps: 9,
	}, o)
	if err := p.SeedReserves(st, dai, 10_000_000*types.Ether); err != nil {
		t.Fatal(err)
	}
	return st, p, o, weth, dai
}

func openLoan(t *testing.T, st *state.State, p *Protocol, weth, dai types.Address) *Loan {
	t.Helper()
	borrower := types.DeriveAddress("borrower", 1)
	st.MintToken(weth, borrower, 10*types.Ether)
	// 10 WETH collateral (10 ETH), borrow 14000 DAI (7 ETH): health 70% < 80%.
	l, err := p.OpenLoan(st, borrower, weth, 10*types.Ether, dai, 14_000*types.Ether)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestOracle(t *testing.T) {
	_, _, o, weth, dai := setup(t)
	v, err := o.Value(weth, 3*types.Ether)
	if err != nil || v != 3*types.Ether {
		t.Errorf("weth value = %v, %v", v, err)
	}
	v, err = o.Value(dai, 2000*types.Ether)
	if err != nil || v != types.Ether {
		t.Errorf("dai value = %v, %v", v, err)
	}
	if _, err := o.Value(types.DeriveAddress("x", 0), 1); err == nil {
		t.Error("unknown token should error")
	}
}

func TestOracleSnapshotRevert(t *testing.T) {
	_, _, o, weth, _ := setup(t)
	o.Snapshot()
	o.SetPrice(weth, types.Ether*2)
	o.Revert()
	if p, _ := o.Price(weth); p != types.Ether {
		t.Errorf("price not reverted: %v", p)
	}
	o.Snapshot()
	o.SetPrice(weth, types.Ether*3)
	o.Commit()
	if p, _ := o.Price(weth); p != 3*types.Ether {
		t.Errorf("price not committed: %v", p)
	}
}

func TestOpenLoanMovesTokens(t *testing.T) {
	st, p, _, weth, dai := setup(t)
	l := openLoan(t, st, p, weth, dai)
	borrower := l.Borrower
	if st.TokenBalance(weth, borrower) != 0 {
		t.Error("collateral not locked")
	}
	if st.TokenBalance(dai, borrower) != 14_000*types.Ether {
		t.Error("debt not drawn")
	}
	if st.TokenBalance(weth, p.Addr) != 10*types.Ether {
		t.Error("protocol should hold collateral")
	}
	got, ok := p.Loan(l.ID)
	if !ok || !got.Open || got.DebtAmount != 14_000*types.Ether {
		t.Errorf("loan record: %+v ok=%v", got, ok)
	}
}

func TestOpenLoanInsufficientReserves(t *testing.T) {
	st, p, _, weth, dai := setup(t)
	b := types.DeriveAddress("b", 2)
	st.MintToken(weth, b, types.Ether)
	if _, err := p.OpenLoan(st, b, weth, types.Ether, dai, 100_000_000*types.Ether); err != ErrNoReserves {
		t.Errorf("err = %v", err)
	}
}

func TestHealthyLoanNotLiquidatable(t *testing.T) {
	st, p, _, weth, dai := setup(t)
	l := openLoan(t, st, p, weth, dai)
	liq, err := p.IsLiquidatable(l.ID)
	if err != nil || liq {
		t.Errorf("healthy loan liquidatable=%v err=%v", liq, err)
	}
	if ids := p.LiquidatableLoans(); len(ids) != 0 {
		t.Errorf("liquidatable ids = %v", ids)
	}
	liquidator := types.DeriveAddress("liq", 1)
	st.MintToken(dai, liquidator, 10_000*types.Ether)
	if _, err := p.Liquidate(st, liquidator, l.ID, 1000*types.Ether); err != ErrHealthy {
		t.Errorf("liquidate healthy: %v", err)
	}
}

func TestPriceDropMakesLiquidatable(t *testing.T) {
	st, p, o, weth, dai := setup(t)
	l := openLoan(t, st, p, weth, dai)
	// WETH drops to 0.8 ETH: collateral 8 ETH, debt 7 ETH → 87.5% > 80%.
	o.SetPrice(weth, types.FromEther(0.8))
	liq, err := p.IsLiquidatable(l.ID)
	if err != nil || !liq {
		t.Fatalf("should be liquidatable: %v %v", liq, err)
	}
	if ids := p.LiquidatableLoans(); len(ids) != 1 || ids[0] != l.ID {
		t.Errorf("ids = %v", ids)
	}
	_ = st
}

func TestLiquidationPaysFixedSpread(t *testing.T) {
	st, p, o, weth, dai := setup(t)
	l := openLoan(t, st, p, weth, dai)
	o.SetPrice(weth, types.FromEther(0.8))

	liquidator := types.DeriveAddress("liq", 1)
	st.MintToken(dai, liquidator, 10_000*types.Ether)

	maxRepay, err := p.MaxRepay(l.ID)
	if err != nil {
		t.Fatal(err)
	}
	if maxRepay != 7_000*types.Ether {
		t.Errorf("maxRepay = %v", maxRepay)
	}
	res, err := p.Liquidate(st, liquidator, l.ID, 7_000*types.Ether)
	if err != nil {
		t.Fatal(err)
	}
	// Repaid 7000 DAI = 3.5 ETH value; seize 3.5*1.05 = 3.675 ETH of WETH
	// at 0.8 ETH/WETH = 4.59375 WETH.
	wantSeize := types.FromEther(3.5 * 1.05 / 0.8)
	if diff := (res.CollateralOut - wantSeize).Abs(); diff > types.Milliether {
		t.Errorf("seize = %v want ≈ %v", res.CollateralOut, wantSeize)
	}
	if st.TokenBalance(weth, liquidator) != res.CollateralOut {
		t.Error("collateral not delivered")
	}
	if st.TokenBalance(dai, liquidator) != 3_000*types.Ether {
		t.Error("repay not debited")
	}
	got, _ := p.Loan(l.ID)
	if got.DebtAmount != 7_000*types.Ether {
		t.Errorf("debt after = %v", got.DebtAmount)
	}
	// Liquidation is profitable for the liquidator at oracle prices.
	repaidVal, _ := o.Value(dai, res.DebtRepaid)
	seizedVal, _ := o.Value(weth, res.CollateralOut)
	if seizedVal <= repaidVal {
		t.Error("fixed spread should make liquidation profitable")
	}
}

func TestLiquidateRespectsCloseFactor(t *testing.T) {
	st, p, o, weth, dai := setup(t)
	l := openLoan(t, st, p, weth, dai)
	o.SetPrice(weth, types.FromEther(0.8))
	liquidator := types.DeriveAddress("liq", 1)
	st.MintToken(dai, liquidator, 20_000*types.Ether)
	if _, err := p.Liquidate(st, liquidator, l.ID, 8_000*types.Ether); err != ErrCloseFactor {
		t.Errorf("err = %v", err)
	}
	if _, err := p.Liquidate(st, liquidator, l.ID, 0); err != ErrCloseFactor {
		t.Errorf("zero repay err = %v", err)
	}
}

func TestLiquidateMissingLoan(t *testing.T) {
	st, p, _, _, _ := setup(t)
	if _, err := p.Liquidate(st, types.DeriveAddress("liq", 1), 999, 1); err != ErrLoanNotFound {
		t.Errorf("err = %v", err)
	}
	if _, err := p.IsLiquidatable(999); err != ErrLoanNotFound {
		t.Errorf("err = %v", err)
	}
}

func TestLoanJournalRevert(t *testing.T) {
	st, p, o, weth, dai := setup(t)
	l := openLoan(t, st, p, weth, dai)
	o.SetPrice(weth, types.FromEther(0.8))
	liquidator := types.DeriveAddress("liq", 1)
	st.MintToken(dai, liquidator, 10_000*types.Ether)

	p.Snapshot()
	st.Snapshot()
	if _, err := p.Liquidate(st, liquidator, l.ID, 7_000*types.Ether); err != nil {
		t.Fatal(err)
	}
	st.Revert()
	p.Revert()

	got, _ := p.Loan(l.ID)
	if got.DebtAmount != 14_000*types.Ether || got.CollateralAmount != 10*types.Ether {
		t.Errorf("loan not reverted: %+v", got)
	}
	if st.TokenBalance(dai, liquidator) != 10_000*types.Ether {
		t.Error("ledger not reverted")
	}
}

func TestLoanJournalRevertRemovesNewLoans(t *testing.T) {
	st, p, _, weth, dai := setup(t)
	b := types.DeriveAddress("b", 5)
	st.MintToken(weth, b, 10*types.Ether)
	p.Snapshot()
	l, err := p.OpenLoan(st, b, weth, 5*types.Ether, dai, 1000*types.Ether)
	if err != nil {
		t.Fatal(err)
	}
	p.Revert()
	if _, ok := p.Loan(l.ID); ok {
		t.Error("reverted loan should not exist")
	}
	if len(p.Loans()) != 0 {
		t.Error("Loans should be empty after revert")
	}
}

func TestFlashLoanLifecycle(t *testing.T) {
	st, p, _, _, dai := setup(t)
	borrower := types.DeriveAddress("fb", 1)
	fee, err := p.FlashFee(1_000_000 * types.Ether)
	if err != nil {
		t.Fatal(err)
	}
	if fee != types.FromEther(900) { // 9 bps of 1M
		t.Errorf("fee = %v", fee)
	}
	if err := p.FlashBorrow(st, borrower, dai, 1_000_000*types.Ether); err != nil {
		t.Fatal(err)
	}
	if st.TokenBalance(dai, borrower) != 1_000_000*types.Ether {
		t.Error("principal not delivered")
	}
	st.MintToken(dai, borrower, fee) // borrower earns the fee elsewhere
	if err := p.FlashRepay(st, borrower, dai, 1_000_000*types.Ether, fee); err != nil {
		t.Fatal(err)
	}
	if st.TokenBalance(dai, borrower) != 0 {
		t.Error("repay wrong")
	}
}

func TestFlashLoanDisabled(t *testing.T) {
	st, _, o, _, dai := setup(t)
	p2 := New(Config{Name: "NoFlash", LiqThresholdBps: 8000, LiqBonusBps: 500, CloseFactorBps: 5000, FlashLoanFeeBps: -1}, o)
	if _, err := p2.FlashFee(100); err != ErrFlashNotEnabled {
		t.Errorf("err = %v", err)
	}
	if err := p2.FlashBorrow(st, types.DeriveAddress("x", 0), dai, 1); err != ErrFlashNotEnabled {
		t.Errorf("err = %v", err)
	}
}

func TestFlashBorrowInsufficientReserves(t *testing.T) {
	st, p, _, weth, _ := setup(t)
	if err := p.FlashBorrow(st, types.DeriveAddress("x", 0), weth, types.Ether); err != ErrNoReserves {
		t.Errorf("err = %v", err)
	}
}

func TestRegistry(t *testing.T) {
	_, p, o, _, _ := setup(t)
	r := NewRegistry()
	r.Add(p)
	r.Add(p)
	if len(r.Protocols()) != 1 {
		t.Error("duplicate add")
	}
	if got, ok := r.ByAddr(p.Addr); !ok || got != p {
		t.Error("ByAddr")
	}
	_ = o
}

func TestFullLiquidationClosesLoan(t *testing.T) {
	st, p, o, weth, dai := setup(t)
	b := types.DeriveAddress("b", 9)
	st.MintToken(weth, b, types.Ether)
	l, err := p.OpenLoan(st, b, weth, types.Ether, dai, 1_500*types.Ether)
	if err != nil {
		t.Fatal(err)
	}
	// Crash collateral so hard the close factor seizes everything.
	o.SetPrice(weth, types.FromEther(0.3))
	liquidator := types.DeriveAddress("liq", 2)
	st.MintToken(dai, liquidator, 1_000*types.Ether)
	res, err := p.Liquidate(st, liquidator, l.ID, 750*types.Ether)
	if err != nil {
		t.Fatal(err)
	}
	if res.CollateralOut != types.Ether {
		t.Errorf("seize should cap at collateral: %v", res.CollateralOut)
	}
	got, _ := p.Loan(l.ID)
	if got.Open {
		t.Error("loan with zero collateral should close")
	}
	if _, err := p.Liquidate(st, liquidator, l.ID, 1); err != ErrLoanClosed {
		t.Errorf("closed loan liquidation: %v", err)
	}
}
