// Package lending implements collateralised lending protocols in the style
// of Aave and Compound: over-collateralised loans priced by an oracle,
// fixed-spread liquidations (first-come-first-served, settled in a single
// transaction) and flash loans.
//
// Token custody goes through the state ledger under the protocol address.
// Loan bookkeeping lives in the protocol and is journaled so the executor
// can revert it together with the ledger when a transaction (for example a
// flash loan that cannot repay) fails.
package lending

import (
	"errors"
	"fmt"
	"sort"

	"mevscope/internal/state"
	"mevscope/internal/types"
)

// Errors returned by lending operations.
var (
	ErrLoanNotFound    = errors.New("lending: loan not found")
	ErrLoanClosed      = errors.New("lending: loan already closed")
	ErrHealthy         = errors.New("lending: loan is healthy, not liquidatable")
	ErrCloseFactor     = errors.New("lending: repay amount exceeds close factor")
	ErrNoReserves      = errors.New("lending: insufficient protocol reserves")
	ErrNoPrice         = errors.New("lending: oracle has no price for token")
	ErrFlashNotEnabled = errors.New("lending: protocol does not offer flash loans")
)

// Oracle is a price feed mapping tokens to their ETH value. Prices are
// expressed as ETH (Amount base units) per whole token (1e9 base units).
type Oracle struct {
	Addr   types.Address
	prices map[types.Address]types.Amount

	journal []oracleEntry
	snaps   []int
}

type oracleEntry struct {
	token types.Address
	prev  types.Amount
	had   bool
}

// NewOracle creates an empty price oracle.
func NewOracle(name string) *Oracle {
	return &Oracle{
		Addr:   types.DeriveAddress("oracle:"+name, 0),
		prices: make(map[types.Address]types.Amount),
	}
}

// SetPrice updates a token's ETH price.
func (o *Oracle) SetPrice(token types.Address, price types.Amount) {
	if len(o.snaps) > 0 {
		prev, had := o.prices[token]
		o.journal = append(o.journal, oracleEntry{token: token, prev: prev, had: had})
	}
	o.prices[token] = price
}

// Price returns the ETH price per whole token.
func (o *Oracle) Price(token types.Address) (types.Amount, bool) {
	p, ok := o.prices[token]
	return p, ok
}

// Value converts a token quantity (base units) to its ETH value.
func (o *Oracle) Value(token types.Address, amount types.Amount) (types.Amount, error) {
	p, ok := o.prices[token]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrNoPrice, token.Short())
	}
	return amount.MulDiv(p, types.Ether), nil
}

// Snapshot opens a revert point for oracle prices.
func (o *Oracle) Snapshot() { o.snaps = append(o.snaps, len(o.journal)) }

// Revert undoes price changes since the last snapshot.
func (o *Oracle) Revert() {
	if len(o.snaps) == 0 {
		panic("lending: oracle Revert without Snapshot")
	}
	mark := o.snaps[len(o.snaps)-1]
	o.snaps = o.snaps[:len(o.snaps)-1]
	for i := len(o.journal) - 1; i >= mark; i-- {
		e := o.journal[i]
		if e.had {
			o.prices[e.token] = e.prev
		} else {
			delete(o.prices, e.token)
		}
	}
	o.journal = o.journal[:mark]
}

// Commit closes the last snapshot keeping changes.
func (o *Oracle) Commit() {
	if len(o.snaps) == 0 {
		panic("lending: oracle Commit without Snapshot")
	}
	o.snaps = o.snaps[:len(o.snaps)-1]
	if len(o.snaps) == 0 {
		o.journal = o.journal[:0]
	}
}

// Loan is one collateralised borrow position.
type Loan struct {
	ID               uint64
	Borrower         types.Address
	CollateralToken  types.Address
	CollateralAmount types.Amount
	DebtToken        types.Address
	DebtAmount       types.Amount
	Open             bool
}

// Protocol is one lending deployment (e.g. "AaveV2" or "Compound").
type Protocol struct {
	Name string
	Addr types.Address
	// Compound protocols emit LiquidateBorrow events; others emit Aave's
	// LiquidationCall.
	Compound bool
	// LiqThresholdBps: the loan becomes liquidatable when
	// debtValue*10000 > collateralValue*LiqThresholdBps.
	LiqThresholdBps int
	// LiqBonusBps is the fixed spread: the liquidator receives collateral
	// worth (1 + bonus) times the repaid debt value.
	LiqBonusBps int
	// CloseFactorBps caps how much of the outstanding debt one liquidation
	// may repay.
	CloseFactorBps int
	// FlashLoanFeeBps is charged on flash-loan principal; negative means
	// flash loans are not offered.
	FlashLoanFeeBps int

	Oracle *Oracle

	loans  map[uint64]*Loan
	nextID uint64

	journal []loanEntry
	snaps   []int
}

type loanEntry struct {
	id   uint64
	prev Loan // by value
	had  bool
}

// Config bundles protocol parameters for New.
type Config struct {
	Name            string
	Compound        bool
	LiqThresholdBps int
	LiqBonusBps     int
	CloseFactorBps  int
	FlashLoanFeeBps int // negative disables flash loans
}

// New creates a lending protocol using the given oracle.
func New(cfg Config, oracle *Oracle) *Protocol {
	return &Protocol{
		Name:            cfg.Name,
		Addr:            types.DeriveAddress("lending:"+cfg.Name, 0),
		Compound:        cfg.Compound,
		LiqThresholdBps: cfg.LiqThresholdBps,
		LiqBonusBps:     cfg.LiqBonusBps,
		CloseFactorBps:  cfg.CloseFactorBps,
		FlashLoanFeeBps: cfg.FlashLoanFeeBps,
		Oracle:          oracle,
		loans:           make(map[uint64]*Loan),
		nextID:          1,
	}
}

func (p *Protocol) record(id uint64) {
	if len(p.snaps) == 0 {
		return
	}
	if l, ok := p.loans[id]; ok {
		p.journal = append(p.journal, loanEntry{id: id, prev: *l, had: true})
	} else {
		p.journal = append(p.journal, loanEntry{id: id, had: false})
	}
}

// Snapshot opens a revert point for loan bookkeeping.
func (p *Protocol) Snapshot() { p.snaps = append(p.snaps, len(p.journal)) }

// Revert undoes loan changes since the last snapshot.
func (p *Protocol) Revert() {
	if len(p.snaps) == 0 {
		panic("lending: Revert without Snapshot")
	}
	mark := p.snaps[len(p.snaps)-1]
	p.snaps = p.snaps[:len(p.snaps)-1]
	for i := len(p.journal) - 1; i >= mark; i-- {
		e := p.journal[i]
		if e.had {
			cp := e.prev
			p.loans[e.id] = &cp
		} else {
			delete(p.loans, e.id)
			if e.id == p.nextID-1 {
				p.nextID--
			}
		}
	}
	p.journal = p.journal[:mark]
}

// Commit closes the last snapshot keeping changes.
func (p *Protocol) Commit() {
	if len(p.snaps) == 0 {
		panic("lending: Commit without Snapshot")
	}
	p.snaps = p.snaps[:len(p.snaps)-1]
	if len(p.snaps) == 0 {
		p.journal = p.journal[:0]
	}
}

// SeedReserves credits lendable tokens to the protocol treasury.
func (p *Protocol) SeedReserves(st *state.State, token types.Address, amount types.Amount) error {
	return st.MintToken(token, p.Addr, amount)
}

// OpenLoan locks the borrower's collateral and draws debt tokens from the
// protocol reserves. It does not check collateralisation — the simulation
// opens loans at safe ratios and lets oracle moves make them unhealthy.
func (p *Protocol) OpenLoan(st *state.State, borrower, collToken types.Address, collAmt types.Amount, debtToken types.Address, debtAmt types.Amount) (*Loan, error) {
	if st.TokenBalance(debtToken, p.Addr) < debtAmt {
		return nil, ErrNoReserves
	}
	if err := st.TransferToken(collToken, borrower, p.Addr, collAmt); err != nil {
		return nil, err
	}
	if err := st.TransferToken(debtToken, p.Addr, borrower, debtAmt); err != nil {
		return nil, err
	}
	id := p.nextID
	p.nextID++
	p.record(id)
	l := &Loan{
		ID: id, Borrower: borrower,
		CollateralToken: collToken, CollateralAmount: collAmt,
		DebtToken: debtToken, DebtAmount: debtAmt,
		Open: true,
	}
	p.loans[id] = l
	return l, nil
}

// Loan returns a copy of the loan with the given ID.
func (p *Protocol) Loan(id uint64) (Loan, bool) {
	l, ok := p.loans[id]
	if !ok {
		return Loan{}, false
	}
	return *l, true
}

// Loans returns copies of all loans in ID order.
func (p *Protocol) Loans() []Loan {
	out := make([]Loan, 0, len(p.loans))
	for _, l := range p.loans {
		out = append(out, *l)
	}
	//lint:ignore unstablesort loans are stored keyed by ID, so the sort key is unique
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IsLiquidatable reports whether the loan is unhealthy at current oracle
// prices.
func (p *Protocol) IsLiquidatable(id uint64) (bool, error) {
	l, ok := p.loans[id]
	if !ok {
		return false, ErrLoanNotFound
	}
	if !l.Open {
		return false, ErrLoanClosed
	}
	debtVal, err := p.Oracle.Value(l.DebtToken, l.DebtAmount)
	if err != nil {
		return false, err
	}
	collVal, err := p.Oracle.Value(l.CollateralToken, l.CollateralAmount)
	if err != nil {
		return false, err
	}
	return debtVal.MulDiv(10000, 1) > collVal.MulDiv(types.Amount(p.LiqThresholdBps), 1), nil
}

// LiquidatableLoans lists the IDs of all currently unhealthy loans.
func (p *Protocol) LiquidatableLoans() []uint64 {
	var out []uint64
	for id := range p.loans {
		if ok, err := p.IsLiquidatable(id); err == nil && ok {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LiquidationResult reports a completed liquidation for event emission.
type LiquidationResult struct {
	Protocol        types.Address
	Liquidator      types.Address
	Borrower        types.Address
	DebtToken       types.Address
	CollateralToken types.Address
	DebtRepaid      types.Amount
	CollateralOut   types.Amount
	Compound        bool
}

// MaxRepay returns the most debt a single liquidation may repay now.
func (p *Protocol) MaxRepay(id uint64) (types.Amount, error) {
	l, ok := p.loans[id]
	if !ok {
		return 0, ErrLoanNotFound
	}
	return l.DebtAmount.MulDiv(types.Amount(p.CloseFactorBps), 10000), nil
}

// Liquidate executes a fixed-spread liquidation: the liquidator repays part
// of the borrower's debt and seizes discounted collateral.
func (p *Protocol) Liquidate(st *state.State, liquidator types.Address, id uint64, repay types.Amount) (LiquidationResult, error) {
	l, ok := p.loans[id]
	if !ok {
		return LiquidationResult{}, ErrLoanNotFound
	}
	if !l.Open {
		return LiquidationResult{}, ErrLoanClosed
	}
	liq, err := p.IsLiquidatable(id)
	if err != nil {
		return LiquidationResult{}, err
	}
	if !liq {
		return LiquidationResult{}, ErrHealthy
	}
	maxRepay, _ := p.MaxRepay(id)
	if repay <= 0 || repay > maxRepay {
		return LiquidationResult{}, ErrCloseFactor
	}
	repayVal, err := p.Oracle.Value(l.DebtToken, repay)
	if err != nil {
		return LiquidationResult{}, err
	}
	collPrice, ok2 := p.Oracle.Price(l.CollateralToken)
	if !ok2 || collPrice == 0 {
		return LiquidationResult{}, ErrNoPrice
	}
	// Collateral units worth repayVal*(1+bonus) ETH.
	seizeVal := repayVal.MulDiv(types.Amount(10000+p.LiqBonusBps), 10000)
	seize := seizeVal.MulDiv(types.Ether, collPrice)
	if seize > l.CollateralAmount {
		seize = l.CollateralAmount
	}
	if err := st.TransferToken(l.DebtToken, liquidator, p.Addr, repay); err != nil {
		return LiquidationResult{}, err
	}
	if err := st.TransferToken(l.CollateralToken, p.Addr, liquidator, seize); err != nil {
		return LiquidationResult{}, err
	}
	p.record(id)
	l.DebtAmount -= repay
	l.CollateralAmount -= seize
	if l.DebtAmount <= 0 || l.CollateralAmount <= 0 {
		l.Open = false
	}
	return LiquidationResult{
		Protocol:   p.Addr,
		Liquidator: liquidator, Borrower: l.Borrower,
		DebtToken: l.DebtToken, CollateralToken: l.CollateralToken,
		DebtRepaid: repay, CollateralOut: seize,
		Compound: p.Compound,
	}, nil
}

// FlashFee returns the fee for flash-borrowing amount, or an error if the
// protocol does not offer flash loans.
func (p *Protocol) FlashFee(amount types.Amount) (types.Amount, error) {
	if p.FlashLoanFeeBps < 0 {
		return 0, ErrFlashNotEnabled
	}
	return amount.MulDiv(types.Amount(p.FlashLoanFeeBps), 10000), nil
}

// FlashBorrow moves principal to the borrower. The executor must call
// FlashRepay before the transaction commits or revert everything.
func (p *Protocol) FlashBorrow(st *state.State, borrower, token types.Address, amount types.Amount) error {
	if p.FlashLoanFeeBps < 0 {
		return ErrFlashNotEnabled
	}
	if st.TokenBalance(token, p.Addr) < amount {
		return ErrNoReserves
	}
	return st.TransferToken(token, p.Addr, borrower, amount)
}

// FlashRepay returns principal plus fee to the protocol.
func (p *Protocol) FlashRepay(st *state.State, borrower, token types.Address, amount, fee types.Amount) error {
	return st.TransferToken(token, borrower, p.Addr, amount+fee)
}

// Registry resolves lending protocols by address.
type Registry struct {
	byAddr map[types.Address]*Protocol
	order  []*Protocol
}

// NewRegistry creates an empty protocol registry.
func NewRegistry() *Registry {
	return &Registry{byAddr: make(map[types.Address]*Protocol)}
}

// Add registers a protocol.
func (r *Registry) Add(p *Protocol) {
	if _, dup := r.byAddr[p.Addr]; dup {
		return
	}
	r.byAddr[p.Addr] = p
	r.order = append(r.order, p)
}

// ByAddr resolves a protocol by address.
func (r *Registry) ByAddr(a types.Address) (*Protocol, bool) {
	p, ok := r.byAddr[a]
	return p, ok
}

// Protocols lists protocols in registration order.
func (r *Registry) Protocols() []*Protocol { return r.order }
