package ablate

import (
	"math"
	"testing"

	"mevscope/internal/chain"
	"mevscope/internal/core/detect"
	"mevscope/internal/core/profit"
	"mevscope/internal/types"
)

// buildBlock creates a sealed block of n no-op transactions.
func buildBlock(t *testing.T, c *chain.Chain, n int) *types.Block {
	t.Helper()
	b := &types.Block{Header: types.Header{Number: c.NextNumber(), Time: types.Month(10).Date()}}
	for i := 0; i < n; i++ {
		tx := &types.Transaction{Nonce: uint64(i), From: types.DeriveAddress("a", uint64(i))}
		b.Txs = append(b.Txs, tx)
		b.Receipts = append(b.Receipts, &types.Receipt{TxHash: tx.Hash(), Status: types.StatusSuccess, TxIndex: i})
	}
	b.Seal()
	if err := c.Append(b); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRandomOrderingMatchesTheory(t *testing.T) {
	c := chain.New(types.DefaultTimeline(100))
	b := buildBlock(t, c, 12)
	sandwiches := []detect.Sandwich{{
		Block: b.Header.Number, FrontIndex: 0, VictimIndex: 1, BackIndex: 2,
	}}
	res := RandomOrdering(c, sandwiches, 200_000, 7)
	if res.Sandwiches != 1 || res.Trials != 200_000 {
		t.Fatalf("setup: %+v", res)
	}
	// §8.3: full sandwich survives 1/6 of permutations of 3 ordered items
	// — wait, no: front<victim (1/2) AND victim<back given front<victim.
	// Among the 6 orderings of three distinct positions, exactly one is
	// front<victim<back → 1/6? The paper reasons 1/2 × 1/2 = 1/4 treating
	// the two constraints independently; the exact uniform-permutation
	// answer is 1/6 for the strict triple and 1/2 for the single
	// constraint. Assert the exact values.
	if got := res.SurvivalRate(); math.Abs(got-1.0/6) > 0.01 {
		t.Errorf("sandwich survival = %.4f want ≈ 1/6", got)
	}
	if got := res.SingleSurvivalRate(); math.Abs(got-0.5) > 0.01 {
		t.Errorf("single survival = %.4f want ≈ 1/2", got)
	}
}

func TestRandomOrderingSkipsDegenerateBlocks(t *testing.T) {
	c := chain.New(types.DefaultTimeline(100))
	b := buildBlock(t, c, 2) // too small for a sandwich
	res := RandomOrdering(c, []detect.Sandwich{{Block: b.Header.Number}}, 10, 1)
	if res.Sandwiches != 0 || res.SurvivalRate() != 0 {
		t.Errorf("degenerate block should be skipped: %+v", res)
	}
	// Unknown block: skipped.
	res = RandomOrdering(c, []detect.Sandwich{{Block: 999}}, 10, 1)
	if res.Sandwiches != 0 {
		t.Error("missing block should be skipped")
	}
}

func TestRandomOrderingDeterministic(t *testing.T) {
	c := chain.New(types.DefaultTimeline(100))
	b := buildBlock(t, c, 8)
	s := []detect.Sandwich{{Block: b.Header.Number, FrontIndex: 1, VictimIndex: 3, BackIndex: 5}}
	a := RandomOrdering(c, s, 1000, 42)
	bres := RandomOrdering(c, s, 1000, 42)
	if a != bres {
		t.Error("same seed should reproduce")
	}
}

func TestExpectedIncomeRetention(t *testing.T) {
	// Full survival keeps everything.
	if got := ExpectedIncomeRetention(1.0, 0.1, 1.0); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("full survival = %f", got)
	}
	// 25% survival of a high-margin attack keeps a positive fraction —
	// the paper's "expected income would still be positive" point.
	got := ExpectedIncomeRetention(1.0, 0.05, 0.25)
	if got <= 0 || got >= 1 {
		t.Errorf("retention = %f", got)
	}
	// Thin-margin attacks become losing: retention floors at zero.
	if got := ExpectedIncomeRetention(1.0, 0.5, 0.25); got != 0 {
		t.Errorf("losing attack retention = %f", got)
	}
	// Degenerate base.
	if ExpectedIncomeRetention(0.1, 0.2, 0.5) != 0 {
		t.Error("negative base should be 0")
	}
}

func TestTipSensitivity(t *testing.T) {
	c := chain.New(types.DefaultTimeline(100))
	tx := &types.Transaction{Nonce: 1}
	rcpt := &types.Receipt{TxHash: tx.Hash(), Status: types.StatusSuccess,
		GasUsed: 100_000, EffectiveGasPrice: types.Gwei, CoinbaseTransfer: types.FromEther(0.08)}
	b := &types.Block{Header: types.Header{Number: c.NextNumber()},
		Txs: []*types.Transaction{tx}, Receipts: []*types.Receipt{rcpt}}
	b.Seal()
	if err := c.Append(b); err != nil {
		t.Fatal(err)
	}
	records := []profit.Record{
		{ViaFlashbots: true, Txs: []types.Hash{tx.Hash()},
			GainETH: types.FromEther(0.1),
			CostETH: types.FromEther(0.08) + rcpt.Fee()},
		{ViaFlashbots: false, GainETH: types.Ether}, // excluded: not FB
	}
	points := TipSensitivity(c, records, []float64{0, 0.5, 1.0})
	if len(points) != 3 {
		t.Fatal("points")
	}
	// Zero tip: net = gross - fee only (≈ 0.1 - 0.0001).
	if points[0].MeanNetETH < 0.09 || points[0].MeanNetETH > 0.1 {
		t.Errorf("tip=0 net = %f", points[0].MeanNetETH)
	}
	// Net falls monotonically as the tip fraction rises.
	if !(points[0].MeanNetETH > points[1].MeanNetETH && points[1].MeanNetETH > points[2].MeanNetETH) {
		t.Error("net should fall with tip fraction")
	}
	// At a 100% tip only the gas fee remains: the record turns negative.
	if points[2].NegativeShare != 1 {
		t.Errorf("negative share at full tip = %f", points[2].NegativeShare)
	}
	if points[0].NegativeShare != 0 {
		t.Error("no negatives at zero tip")
	}
}
