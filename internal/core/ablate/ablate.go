// Package ablate implements the paper's §8.3 what-if analysis: would
// randomizing intra-block transaction order (the countermeasure Piet et
// al. propose) stop sandwich MEV?
//
// The paper argues it would not: after a uniform shuffle the victim lands
// between the two attacker transactions with probability 1/4, so a
// sandwich still succeeds 25 % of the time — and single-position attacks
// (a frontrun or backrun relative to one victim) survive 50 % of the
// time. This package verifies both numbers empirically over detected MEV
// by re-shuffling the actual blocks.
package ablate

import (
	"math/rand"

	"mevscope/internal/chain"
	"mevscope/internal/core/detect"
	"mevscope/internal/core/profit"
)

// OrderingResult is the outcome of the random-ordering experiment.
type OrderingResult struct {
	// Sandwiches is the number of detected sandwiches examined.
	Sandwiches int
	// Trials is the number of shuffles per sandwich.
	Trials int
	// Survived counts (sandwich, trial) pairs where the shuffled order
	// kept front < victim < back.
	Survived int
	// SingleSurvived counts pairs where the shuffled order kept the
	// front before the victim (the frontrun-only success condition, which
	// also models arbitrage/liquidation frontruns).
	SingleSurvived int
}

// SurvivalRate is the empirical probability a full sandwich survives a
// uniform shuffle (paper: 25 %).
func (r OrderingResult) SurvivalRate() float64 {
	n := r.Sandwiches * r.Trials
	if n == 0 {
		return 0
	}
	return float64(r.Survived) / float64(n)
}

// SingleSurvivalRate is the empirical probability a single frontrun
// survives (paper: 50 %).
func (r OrderingResult) SingleSurvivalRate() float64 {
	n := r.Sandwiches * r.Trials
	if n == 0 {
		return 0
	}
	return float64(r.SingleSurvived) / float64(n)
}

// RandomOrdering replays every detected sandwich under `trials` uniform
// shuffles of its enclosing block and reports how often the attack
// ordering survives. The shuffle permutes transaction positions exactly as
// the §8.3 countermeasure would (a random seed derived from the previous
// block).
func RandomOrdering(c *chain.Chain, sandwiches []detect.Sandwich, trials int, seed int64) OrderingResult {
	rng := rand.New(rand.NewSource(seed))
	res := OrderingResult{Trials: trials}
	for _, s := range sandwiches {
		blk, err := c.ByNumber(s.Block)
		if err != nil {
			continue
		}
		n := len(blk.Txs)
		if n < 3 {
			continue
		}
		res.Sandwiches++
		perm := make([]int, n)
		for t := 0; t < trials; t++ {
			// Sample positions of the three transactions under a uniform
			// permutation of the block.
			for i := range perm {
				perm[i] = i
			}
			rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			fPos, vPos, bPos := perm[s.FrontIndex], perm[s.VictimIndex], perm[s.BackIndex]
			if fPos < vPos {
				res.SingleSurvived++
				if vPos < bPos {
					res.Survived++
				}
			}
		}
	}
	return res
}

// TipPoint is one counterfactual of the sealed-bid tip sensitivity.
type TipPoint struct {
	// TipFrac is the counterfactual tip as a fraction of gross gain.
	TipFrac float64
	// MeanNetETH is the searchers' mean net profit under that tip level.
	MeanNetETH float64
	// NegativeShare is the fraction of extractions that turn unprofitable.
	NegativeShare float64
}

// TipSensitivity replays Flashbots sandwich economics under
// counterfactual tip fractions — the §8.2 analysis that sealed-bid
// auctions "indirectly force searchers to pay higher fees". For each
// Flashbots sandwich the actual tip (the coinbase transfers of its
// transactions) is removed from the costs and replaced by frac·gross.
// Only sandwiches qualify: their gross gain IS the extraction margin,
// whereas liquidation gains are offset by the repaid debt inside CostETH.
func TipSensitivity(c *chain.Chain, records []profit.Record, fracs []float64) []TipPoint {
	type econ struct{ gross, feeOnly float64 }
	var rows []econ
	for _, r := range records {
		if !r.ViaFlashbots || r.Kind != profit.KindSandwich {
			continue
		}
		var tip float64
		for _, h := range r.Txs {
			if rcpt, err := c.Receipt(h); err == nil {
				tip += rcpt.CoinbaseTransfer.Ether()
			}
		}
		rows = append(rows, econ{gross: r.GainETH.Ether(), feeOnly: r.CostETH.Ether() - tip})
	}
	out := make([]TipPoint, 0, len(fracs))
	for _, frac := range fracs {
		var sum float64
		neg := 0
		for _, e := range rows {
			net := e.gross - e.feeOnly - frac*e.gross
			sum += net
			if net < 0 {
				neg++
			}
		}
		p := TipPoint{TipFrac: frac}
		if len(rows) > 0 {
			p.MeanNetETH = sum / float64(len(rows))
			p.NegativeShare = float64(neg) / float64(len(rows))
		}
		out = append(out, p)
	}
	return out
}

// ExpectedIncomeRetention returns the fraction of sandwich income an
// extractor keeps under random ordering, assuming it can re-submit freely
// and only pays gas for landed attacks — the paper's "expected income
// would still be positive" argument. With survival probability p and the
// attacker's two transactions always charged, retention is
// p·gross − cost versus gross − cost.
func ExpectedIncomeRetention(grossETH, costETH, survival float64) float64 {
	base := grossETH - costETH
	if base <= 0 {
		return 0
	}
	randomized := survival*grossETH - costETH
	if randomized < 0 {
		return 0
	}
	return randomized / base
}
