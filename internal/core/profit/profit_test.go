package profit

import (
	"testing"

	"mevscope/internal/chain"
	"mevscope/internal/core/detect"
	"mevscope/internal/flashbots"
	"mevscope/internal/prices"
	"mevscope/internal/types"
)

var (
	weth = types.DeriveAddress("tok", 0)
	dai  = types.DeriveAddress("tok", 1)
)

// world builds a chain with one block containing receipts for given txs.
func world(t *testing.T, txs []*types.Transaction, rcpts []*types.Receipt) *chain.Chain {
	t.Helper()
	c := chain.New(types.DefaultTimeline(100))
	b := &types.Block{Header: types.Header{Number: c.NextNumber(), Time: types.Month(12).Date()}, Txs: txs, Receipts: rcpts}
	for i, r := range rcpts {
		r.TxIndex = i
	}
	b.Seal()
	if err := c.Append(b); err != nil {
		t.Fatal(err)
	}
	return c
}

func priceSeries() *prices.Series {
	s := prices.NewSeries()
	s.Record(dai, 1, types.Ether/2000) // 2000 DAI per ETH from block 1
	return s
}

func TestKindString(t *testing.T) {
	if KindSandwich.String() != "sandwich" || KindArbitrage.String() != "arbitrage" || KindLiquidation.String() != "liquidation" {
		t.Error("names")
	}
	if Kind(9).String() != "unknown" {
		t.Error("unknown")
	}
}

func TestSandwichProfit(t *testing.T) {
	attacker := types.DeriveAddress("attacker", 1)
	front := &types.Transaction{Nonce: 1, From: attacker}
	back := &types.Transaction{Nonce: 2, From: attacker}
	victim := &types.Transaction{Nonce: 1, From: types.DeriveAddress("v", 1)}
	rf := &types.Receipt{TxHash: front.Hash(), Status: types.StatusSuccess, GasUsed: 100_000, EffectiveGasPrice: 10 * types.Gwei}
	rb := &types.Receipt{TxHash: back.Hash(), Status: types.StatusSuccess, GasUsed: 100_000, EffectiveGasPrice: 10 * types.Gwei, CoinbaseTransfer: types.Milliether}
	rv := &types.Receipt{TxHash: victim.Hash(), Status: types.StatusSuccess}
	c := world(t, []*types.Transaction{front, victim, back}, []*types.Receipt{rf, rv, rb})

	fbset := map[types.Hash]flashbots.BundleType{back.Hash(): flashbots.TypeFlashbots}
	comp := New(c, priceSeries(), weth, fbset)
	s := detect.Sandwich{
		Block: c.Head().Header.Number, Month: 12,
		Attacker: attacker, FrontTx: front.Hash(), VictimTx: victim.Hash(), BackTx: back.Hash(),
		FrontIn: 10 * types.Ether, BackOut: 10*types.Ether + 10*types.Milliether,
	}
	rec, err := comp.Sandwich(s)
	if err != nil {
		t.Fatal(err)
	}
	if rec.GainETH != 10*types.Milliether {
		t.Errorf("gain = %v", rec.GainETH)
	}
	wantCost := types.Amount(200_000)*10*types.Gwei + types.Milliether
	if rec.CostETH != wantCost {
		t.Errorf("cost = %v want %v", rec.CostETH, wantCost)
	}
	if rec.NetETH != rec.GainETH-wantCost {
		t.Error("net")
	}
	if !rec.ViaFlashbots {
		t.Error("flashbots flag (back tx in set)")
	}
}

// TestTrackerMatchesResolveAll: resolving a sweep incrementally — as
// detections trickle in block by block — must yield exactly the records
// (and order) of a one-shot batch ResolveAll, including skipping
// unresolvable detections.
func TestTrackerMatchesResolveAll(t *testing.T) {
	attacker := types.DeriveAddress("attacker", 1)
	front := &types.Transaction{Nonce: 1, From: attacker}
	back := &types.Transaction{Nonce: 2, From: attacker}
	victim := &types.Transaction{Nonce: 1, From: types.DeriveAddress("v", 1)}
	arbTx := &types.Transaction{Nonce: 3, From: attacker}
	rf := &types.Receipt{TxHash: front.Hash(), Status: types.StatusSuccess, GasUsed: 100_000, EffectiveGasPrice: 10 * types.Gwei}
	rb := &types.Receipt{TxHash: back.Hash(), Status: types.StatusSuccess, GasUsed: 100_000, EffectiveGasPrice: 10 * types.Gwei}
	rv := &types.Receipt{TxHash: victim.Hash(), Status: types.StatusSuccess}
	ra := &types.Receipt{TxHash: arbTx.Hash(), Status: types.StatusSuccess, GasUsed: 300_000, EffectiveGasPrice: types.Gwei}
	c := world(t, []*types.Transaction{front, victim, back, arbTx}, []*types.Receipt{rf, rv, rb, ra})
	comp := New(c, priceSeries(), weth, map[types.Hash]flashbots.BundleType{back.Hash(): flashbots.TypeFlashbots})

	n := c.Head().Header.Number
	sweep := &detect.Result{}
	tracker := NewTracker(comp)

	// Block 1 worth of detections: a sandwich.
	sweep.Sandwiches = append(sweep.Sandwiches, detect.Sandwich{
		Block: n, Month: 12, Attacker: attacker,
		FrontTx: front.Hash(), VictimTx: victim.Hash(), BackTx: back.Hash(),
		FrontIn: 10 * types.Ether, BackOut: 10*types.Ether + 10*types.Milliether,
	})
	tracker.Sync(sweep)
	if tracker.Resolved() != 1 {
		t.Fatalf("resolved = %d after first sync", tracker.Resolved())
	}

	// Block 2 worth: a DAI arbitrage, plus one with an unpriced token that
	// batch resolution also skips.
	sweep.Arbitrages = append(sweep.Arbitrages,
		detect.Arbitrage{Block: n, Month: 12, Extractor: attacker, Tx: arbTx.Hash(),
			Token: dai, AmountIn: 100_000 * types.Ether, AmountOut: 104_000 * types.Ether},
		detect.Arbitrage{Block: n, Month: 12, Extractor: attacker, Tx: arbTx.Hash(),
			Token: types.DeriveAddress("tok", 9), AmountIn: 1, AmountOut: 2},
	)
	tracker.Sync(sweep)

	inc := tracker.Records()
	batch := comp.ResolveAll(sweep)
	if len(inc) != len(batch) {
		t.Fatalf("incremental %d records, batch %d", len(inc), len(batch))
	}
	for i := range batch {
		if inc[i].Kind != batch[i].Kind || inc[i].NetETH != batch[i].NetETH ||
			inc[i].GainETH != batch[i].GainETH || inc[i].ViaFlashbots != batch[i].ViaFlashbots {
			t.Fatalf("record %d differs: %+v vs %+v", i, inc[i], batch[i])
		}
	}
	// Parallel resolution over the same sweep agrees too.
	par := comp.ResolveAllParallel(sweep, 4)
	if len(par) != len(inc) {
		t.Fatalf("parallel %d records, incremental %d", len(par), len(inc))
	}
	// A redundant sync is a no-op.
	tracker.Sync(sweep)
	if tracker.Resolved() != len(inc) {
		t.Error("redundant sync changed the record set")
	}
}

func TestArbitrageProfitTokenConversion(t *testing.T) {
	arber := types.DeriveAddress("arber", 1)
	tx := &types.Transaction{Nonce: 1, From: arber}
	r := &types.Receipt{TxHash: tx.Hash(), Status: types.StatusSuccess, GasUsed: 300_000, EffectiveGasPrice: types.Gwei}
	c := world(t, []*types.Transaction{tx}, []*types.Receipt{r})
	comp := New(c, priceSeries(), weth, nil)
	a := detect.Arbitrage{
		Block: c.Head().Header.Number, Month: 12, Extractor: arber, Tx: tx.Hash(),
		Token: dai, AmountIn: 100_000 * types.Ether, AmountOut: 104_000 * types.Ether,
	}
	rec, err := comp.Arbitrage(a)
	if err != nil {
		t.Fatal(err)
	}
	// 4000 DAI gain = 2 ETH.
	if rec.GainETH != 2*types.Ether {
		t.Errorf("gain = %v", rec.GainETH)
	}
	if rec.ViaFlashbots || rec.ViaFlashLoan {
		t.Error("flags")
	}
}

func TestArbitrageFlashFeeCost(t *testing.T) {
	arber := types.DeriveAddress("arber", 1)
	tx := &types.Transaction{Nonce: 1, From: arber}
	r := &types.Receipt{TxHash: tx.Hash(), Status: types.StatusSuccess, GasUsed: 300_000, EffectiveGasPrice: types.Gwei}
	c := world(t, []*types.Transaction{tx}, []*types.Receipt{r})
	comp := New(c, priceSeries(), weth, nil)
	a := detect.Arbitrage{
		Block: c.Head().Header.Number, Extractor: arber, Tx: tx.Hash(),
		Token: dai, AmountIn: 100_000 * types.Ether, AmountOut: 104_000 * types.Ether,
		FlashLoan: true, FlashFee: 2_000 * types.Ether, // 1 ETH worth
	}
	rec, err := comp.Arbitrage(a)
	if err != nil {
		t.Fatal(err)
	}
	wantCost := types.Amount(300_000)*types.Gwei + types.Ether
	if rec.CostETH != wantCost {
		t.Errorf("cost = %v want %v", rec.CostETH, wantCost)
	}
	if !rec.ViaFlashLoan {
		t.Error("flash flag")
	}
}

func TestLiquidationProfit(t *testing.T) {
	liq := types.DeriveAddress("liq", 1)
	tx := &types.Transaction{Nonce: 1, From: liq}
	r := &types.Receipt{TxHash: tx.Hash(), Status: types.StatusSuccess, GasUsed: 400_000, EffectiveGasPrice: types.Gwei}
	c := world(t, []*types.Transaction{tx}, []*types.Receipt{r})
	comp := New(c, priceSeries(), weth, nil)
	l := detect.Liquidation{
		Block: c.Head().Header.Number, Liquidator: liq, Tx: tx.Hash(),
		DebtToken: dai, CollateralToken: weth,
		DebtRepaid: 2_000 * types.Ether, CollateralOut: types.Ether + 50*types.Milliether,
	}
	rec, err := comp.Liquidation(l)
	if err != nil {
		t.Fatal(err)
	}
	if rec.GainETH != types.Ether+50*types.Milliether {
		t.Errorf("gain = %v", rec.GainETH)
	}
	// cost = fee + repaid debt (1 ETH worth).
	wantCost := types.Amount(400_000)*types.Gwei + types.Ether
	if rec.CostETH != wantCost {
		t.Errorf("cost = %v", rec.CostETH)
	}
	if rec.NetETH <= 0 {
		t.Error("fixed spread should net positive")
	}
}

func TestMissingPriceFailsGracefully(t *testing.T) {
	arber := types.DeriveAddress("arber", 1)
	tx := &types.Transaction{Nonce: 1, From: arber}
	r := &types.Receipt{TxHash: tx.Hash(), Status: types.StatusSuccess}
	c := world(t, []*types.Transaction{tx}, []*types.Receipt{r})
	comp := New(c, prices.NewSeries(), weth, nil) // empty series
	a := detect.Arbitrage{Block: c.Head().Header.Number, Tx: tx.Hash(), Token: dai, AmountIn: 1, AmountOut: 2}
	if _, err := comp.Arbitrage(a); err == nil {
		t.Error("unknown token price should error")
	}
	// ResolveAll skips it silently.
	res := &detect.Result{Arbitrages: []detect.Arbitrage{a}}
	if got := comp.ResolveAll(res); len(got) != 0 {
		t.Error("unresolvable records should be skipped")
	}
}

func TestMissingReceiptErrors(t *testing.T) {
	c := world(t, nil, nil)
	comp := New(c, priceSeries(), weth, nil)
	s := detect.Sandwich{Block: c.Head().Header.Number, FrontTx: types.Hash{1}, BackTx: types.Hash{2}}
	if _, err := comp.Sandwich(s); err == nil {
		t.Error("missing receipts should error")
	}
}
