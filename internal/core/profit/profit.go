// Package profit computes extractor profit for detected MEV following the
// paper's §3.1 methodology: gain minus costs, where costs are transaction
// fees plus any coinbase tips paid to the miner, and token gains are
// converted to ETH through the historical price series (the CoinGecko
// substitute).
package profit

import (
	"fmt"
	"time"

	"mevscope/internal/chain"
	"mevscope/internal/core/detect"
	"mevscope/internal/flashbots"
	"mevscope/internal/obs"
	"mevscope/internal/parallel"
	"mevscope/internal/prices"
	"mevscope/internal/types"
)

// Kind labels the MEV strategy of a profit record.
type Kind uint8

// MEV strategies.
const (
	KindSandwich Kind = iota
	KindArbitrage
	KindLiquidation
)

// String names the kind with the paper's vocabulary.
func (k Kind) String() string {
	switch k {
	case KindSandwich:
		return "sandwich"
	case KindArbitrage:
		return "arbitrage"
	case KindLiquidation:
		return "liquidation"
	default:
		return "unknown"
	}
}

// Record is one MEV extraction with its economics resolved.
type Record struct {
	Kind  Kind
	Block uint64
	Month types.Month

	Extractor types.Address
	// Txs are the extractor's transactions (front and back for
	// sandwiches).
	Txs []types.Hash
	// VictimTx is set for sandwiches.
	VictimTx types.Hash

	// GainETH is the gross gain; CostETH sums fees, coinbase tips and
	// flash-loan fees; NetETH = GainETH - CostETH.
	GainETH types.Amount
	CostETH types.Amount
	NetETH  types.Amount

	// ViaFlashbots is true when any extractor transaction appears in the
	// Flashbots blocks API; BundleType is its label there.
	ViaFlashbots bool
	BundleType   flashbots.BundleType
	// ViaFlashLoan is true when a FlashLoan event funded the extraction.
	ViaFlashLoan bool
}

// Computer resolves record economics against the chain, the price series
// and the public Flashbots dataset.
type Computer struct {
	Chain  *chain.Chain
	Prices *prices.Series
	WETH   types.Address
	// FBSet maps transaction hashes to bundle types per the Flashbots
	// public API (§3.3).
	FBSet map[types.Hash]flashbots.BundleType
}

// New creates a Computer.
func New(c *chain.Chain, p *prices.Series, weth types.Address, fbset map[types.Hash]flashbots.BundleType) *Computer {
	if fbset == nil {
		fbset = map[types.Hash]flashbots.BundleType{}
	}
	return &Computer{Chain: c, Prices: p, WETH: weth, FBSet: fbset}
}

// txCost returns fee + coinbase tip for one mined transaction.
func (c *Computer) txCost(h types.Hash) (types.Amount, error) {
	rcpt, err := c.Chain.Receipt(h)
	if err != nil {
		return 0, fmt.Errorf("profit: receipt for %v: %w", h.Short(), err)
	}
	return rcpt.Fee() + rcpt.CoinbaseTransfer, nil
}

func (c *Computer) fbType(hashes ...types.Hash) (bool, flashbots.BundleType) {
	for _, h := range hashes {
		if t, ok := c.FBSet[h]; ok {
			return true, t
		}
	}
	return false, flashbots.TypeFlashbots
}

// valueETH converts a token amount into ETH at the price in effect at the
// block; WETH converts 1:1.
func (c *Computer) valueETH(token types.Address, amount types.Amount, block uint64) (types.Amount, error) {
	if token == c.WETH {
		return amount, nil
	}
	v, ok := c.Prices.ValueInETH(token, amount, block)
	if !ok {
		return 0, fmt.Errorf("profit: no price for token %v at block %d", token.Short(), block)
	}
	return v, nil
}

// Sandwich resolves a detected sandwich (§3.1.1): gain is the ether
// difference between the sell-back and the purchase; costs are both
// transaction fees plus coinbase tips.
func (c *Computer) Sandwich(s detect.Sandwich) (Record, error) {
	rec := Record{
		Kind: KindSandwich, Block: s.Block, Month: s.Month,
		Extractor: s.Attacker,
		Txs:       []types.Hash{s.FrontTx, s.BackTx},
		VictimTx:  s.VictimTx,
		GainETH:   s.Gain(),
	}
	for _, h := range rec.Txs {
		cost, err := c.txCost(h)
		if err != nil {
			return rec, err
		}
		rec.CostETH += cost
	}
	rec.NetETH = rec.GainETH - rec.CostETH
	rec.ViaFlashbots, rec.BundleType = c.fbType(rec.Txs...)
	return rec, nil
}

// Arbitrage resolves a detected arbitrage (§3.1.2): gain is the loop
// surplus converted to ETH; costs are the transaction fee, coinbase tips
// and the flash-loan fee if one funded it.
func (c *Computer) Arbitrage(a detect.Arbitrage) (Record, error) {
	rec := Record{
		Kind: KindArbitrage, Block: a.Block, Month: a.Month,
		Extractor:    a.Extractor,
		Txs:          []types.Hash{a.Tx},
		ViaFlashLoan: a.FlashLoan,
	}
	gain, err := c.valueETH(a.Token, a.Gain(), a.Block)
	if err != nil {
		return rec, err
	}
	rec.GainETH = gain
	cost, err := c.txCost(a.Tx)
	if err != nil {
		return rec, err
	}
	rec.CostETH = cost
	if a.FlashLoan {
		fee, err := c.valueETH(a.Token, a.FlashFee, a.Block)
		if err == nil {
			rec.CostETH += fee
		}
	}
	rec.NetETH = rec.GainETH - rec.CostETH
	rec.ViaFlashbots, rec.BundleType = c.fbType(a.Tx)
	return rec, nil
}

// Liquidation resolves a detected liquidation (§3.1.3): gain is the
// received collateral value; costs are the fee, tips, the repaid debt
// value and the flash-loan fee when used.
func (c *Computer) Liquidation(l detect.Liquidation) (Record, error) {
	rec := Record{
		Kind: KindLiquidation, Block: l.Block, Month: l.Month,
		Extractor:    l.Liquidator,
		Txs:          []types.Hash{l.Tx},
		ViaFlashLoan: l.FlashLoan,
	}
	collVal, err := c.valueETH(l.CollateralToken, l.CollateralOut, l.Block)
	if err != nil {
		return rec, err
	}
	debtVal, err := c.valueETH(l.DebtToken, l.DebtRepaid, l.Block)
	if err != nil {
		return rec, err
	}
	rec.GainETH = collVal
	cost, err := c.txCost(l.Tx)
	if err != nil {
		return rec, err
	}
	rec.CostETH = cost + debtVal
	if l.FlashLoan {
		fee, err := c.valueETH(l.DebtToken, l.FlashFee, l.Block)
		if err == nil {
			rec.CostETH += fee
		}
	}
	rec.NetETH = rec.GainETH - rec.CostETH
	rec.ViaFlashbots, rec.BundleType = c.fbType(l.Tx)
	return rec, nil
}

// Tracker resolves detections incrementally as a detector sweep grows: a
// streaming consumer calls Sync after each fed block and the tracker
// resolves only the detections appended since the previous call. Records
// are kept per kind and concatenated sandwiches-then-arbitrages-then-
// liquidations, so Records returns exactly the slice a batch ResolveAll
// over the same sweep produces — whatever block order the detections
// arrived in.
type Tracker struct {
	comp       *Computer
	nS, nA, nL int // consumed detection counts
	sand       []Record
	arb        []Record
	liq        []Record
}

// NewTracker creates an empty tracker over the computer.
func NewTracker(c *Computer) *Tracker { return &Tracker{comp: c} }

// Sync resolves every detection appended to res since the last call,
// skipping records whose economics cannot be resolved. res must be the
// same logically-growing sweep between calls (detections are never
// removed or reordered; detect.Scanner guarantees this).
func (t *Tracker) Sync(res *detect.Result) {
	for ; t.nS < len(res.Sandwiches); t.nS++ {
		if rec, err := t.comp.Sandwich(res.Sandwiches[t.nS]); err == nil {
			t.sand = append(t.sand, rec)
		}
	}
	for ; t.nA < len(res.Arbitrages); t.nA++ {
		if rec, err := t.comp.Arbitrage(res.Arbitrages[t.nA]); err == nil {
			t.arb = append(t.arb, rec)
		}
	}
	for ; t.nL < len(res.Liquidations); t.nL++ {
		if rec, err := t.comp.Liquidation(res.Liquidations[t.nL]); err == nil {
			t.liq = append(t.liq, rec)
		}
	}
}

// Resolved returns the number of resolved records so far.
func (t *Tracker) Resolved() int { return len(t.sand) + len(t.arb) + len(t.liq) }

// Records returns the resolved records in batch order: sandwiches, then
// arbitrages, then liquidations, each in detection order. The slice is a
// fresh copy safe to hold across further Sync calls.
func (t *Tracker) Records() []Record {
	out := make([]Record, 0, t.Resolved())
	out = append(out, t.sand...)
	out = append(out, t.arb...)
	out = append(out, t.liq...)
	return out
}

// ResolveAll converts a full detector sweep into profit records, skipping
// records whose economics cannot be resolved (e.g. missing price history).
// It is the sequential batch path, implemented on the incremental Tracker
// seam: one Sync over the complete sweep.
func (c *Computer) ResolveAll(res *detect.Result) []Record {
	t := NewTracker(c)
	t.Sync(res)
	return t.Records()
}

// ResolveAllParallel resolves the sweep across a worker pool. Every
// detection is independent, so records are computed into index-assigned
// slots and compacted in detector order — the output matches ResolveAll
// exactly for any worker count. workers < 1 selects runtime.NumCPU().
func (c *Computer) ResolveAllParallel(res *detect.Result, workers int) []Record {
	return c.ResolveAllParallelSpan(res, workers, nil)
}

// ResolveAllParallelSpan is ResolveAllParallel recorded as a "profit"
// stage under the given parent span (detection count, pool size,
// per-worker busy time). A nil parent disables recording at zero cost.
func (c *Computer) ResolveAllParallelSpan(res *detect.Result, workers int, parent *obs.Span) []Record {
	sp := parent.Child(obs.StageProfit)
	defer sp.End()
	nS, nA := len(res.Sandwiches), len(res.Arbitrages)
	total := nS + nA + len(res.Liquidations)
	sp.SetTxs(total)
	if workers == 1 {
		if sp == nil {
			return c.ResolveAll(res)
		}
		sp.SetWorkers(1)
		t0 := time.Now() //lint:timing pool-utilization span for the flight recorder, never enters results
		out := c.ResolveAll(res)
		sp.AddBusy(time.Since(t0)) //lint:timing pool-utilization span for the flight recorder, never enters results
		return out
	}
	type slot struct {
		rec Record
		ok  bool
	}
	slots := parallel.MapSpan(sp, total, workers, func(i int) slot {
		var (
			rec Record
			err error
		)
		switch {
		case i < nS:
			rec, err = c.Sandwich(res.Sandwiches[i])
		case i < nS+nA:
			rec, err = c.Arbitrage(res.Arbitrages[i-nS])
		default:
			rec, err = c.Liquidation(res.Liquidations[i-nS-nA])
		}
		return slot{rec: rec, ok: err == nil}
	})
	out := make([]Record, 0, total)
	for _, s := range slots {
		if s.ok {
			out = append(out, s.rec)
		}
	}
	return out
}
