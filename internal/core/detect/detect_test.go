package detect

import (
	"testing"

	"mevscope/internal/chain"
	"mevscope/internal/events"
	"mevscope/internal/types"
)

var (
	weth  = types.DeriveAddress("tok", 0)
	dai   = types.DeriveAddress("tok", 1)
	usdc  = types.DeriveAddress("tok", 2)
	pool  = types.DeriveAddress("pool", 1)
	pool2 = types.DeriveAddress("pool", 2)
)

// swapTx builds a mined transaction with one swap event.
func swapTx(nonce uint64, from types.Address, p types.Address, in, out types.Address, amtIn, amtOut types.Amount, gasPrice types.Amount) (*types.Transaction, *types.Receipt) {
	tx := &types.Transaction{Nonce: nonce, From: from, GasPrice: gasPrice, GasLimit: 160_000}
	rcpt := &types.Receipt{
		TxHash: tx.Hash(), Status: types.StatusSuccess, GasUsed: 160_000, EffectiveGasPrice: gasPrice,
		Logs: []types.Log{events.Swap{
			Pool: p, Sender: from, Recipient: from,
			TokenIn: in, TokenOut: out, AmountIn: amtIn, AmountOut: amtOut,
		}.Log()},
	}
	return tx, rcpt
}

func mkBlock(n uint64, pairs ...any) *types.Block {
	b := &types.Block{Header: types.Header{Number: n, Time: types.Month(10).Date()}}
	for i := 0; i < len(pairs); i += 2 {
		b.Txs = append(b.Txs, pairs[i].(*types.Transaction))
		b.Receipts = append(b.Receipts, pairs[i+1].(*types.Receipt))
	}
	for i, r := range b.Receipts {
		r.TxIndex = i
	}
	b.Seal()
	return b
}

func TestSandwichDetected(t *testing.T) {
	attacker := types.DeriveAddress("attacker", 1)
	victim := types.DeriveAddress("victim", 1)
	f, fr := swapTx(1, attacker, pool, weth, dai, 10_000, 20_000, 100*types.Gwei)
	v, vr := swapTx(1, victim, pool, weth, dai, 50_000, 99_000, 80*types.Gwei)
	bk, br := swapTx(2, attacker, pool, dai, weth, 20_000, 10_400, 60*types.Gwei)
	b := mkBlock(1, f, fr, v, vr, bk, br)

	got := SandwichesInBlock(b, weth)
	if len(got) != 1 {
		t.Fatalf("detected %d sandwiches", len(got))
	}
	s := got[0]
	if s.Attacker != attacker || s.Victim != victim {
		t.Error("parties")
	}
	if s.FrontIn != 10_000 || s.BackOut != 10_400 || s.Gain() != 400 {
		t.Errorf("amounts: %+v", s)
	}
	if !s.GasPriceOrdered {
		t.Error("gas price condition should hold")
	}
	if s.Token != dai || s.Pool != pool {
		t.Error("asset/pool")
	}
}

func TestSandwichOrderMatters(t *testing.T) {
	attacker := types.DeriveAddress("attacker", 1)
	victim := types.DeriveAddress("victim", 1)
	// Victim BEFORE the front: not a sandwich.
	v, vr := swapTx(1, victim, pool, weth, dai, 50_000, 99_000, 80*types.Gwei)
	f, fr := swapTx(1, attacker, pool, weth, dai, 10_000, 20_000, 100*types.Gwei)
	bk, br := swapTx(2, attacker, pool, dai, weth, 20_000, 10_400, 60*types.Gwei)
	b := mkBlock(1, v, vr, f, fr, bk, br)
	if got := SandwichesInBlock(b, weth); len(got) != 0 {
		t.Errorf("false positive: %+v", got)
	}
}

func TestSandwichAmountToleranceEnforced(t *testing.T) {
	attacker := types.DeriveAddress("attacker", 1)
	victim := types.DeriveAddress("victim", 1)
	f, fr := swapTx(1, attacker, pool, weth, dai, 10_000, 20_000, 100*types.Gwei)
	v, vr := swapTx(1, victim, pool, weth, dai, 50_000, 99_000, 80*types.Gwei)
	// Sells 5% more than bought: unrelated trade, not a backrun.
	bk, br := swapTx(2, attacker, pool, dai, weth, 21_000, 10_900, 60*types.Gwei)
	b := mkBlock(1, f, fr, v, vr, bk, br)
	if got := SandwichesInBlock(b, weth); len(got) != 0 {
		t.Errorf("tolerance violated: %+v", got)
	}
}

func TestSandwichRequiresSamePool(t *testing.T) {
	attacker := types.DeriveAddress("attacker", 1)
	victim := types.DeriveAddress("victim", 1)
	f, fr := swapTx(1, attacker, pool, weth, dai, 10_000, 20_000, 100*types.Gwei)
	v, vr := swapTx(1, victim, pool2, weth, dai, 50_000, 99_000, 80*types.Gwei) // other pool
	bk, br := swapTx(2, attacker, pool, dai, weth, 20_000, 10_400, 60*types.Gwei)
	b := mkBlock(1, f, fr, v, vr, bk, br)
	if got := SandwichesInBlock(b, weth); len(got) != 0 {
		t.Errorf("cross-pool false positive: %+v", got)
	}
}

func TestSandwichIgnoresSelfTrading(t *testing.T) {
	attacker := types.DeriveAddress("attacker", 1)
	f, fr := swapTx(1, attacker, pool, weth, dai, 10_000, 20_000, 100*types.Gwei)
	v, vr := swapTx(2, attacker, pool, weth, dai, 50_000, 99_000, 80*types.Gwei) // same address
	bk, br := swapTx(3, attacker, pool, dai, weth, 20_000, 10_400, 60*types.Gwei)
	b := mkBlock(1, f, fr, v, vr, bk, br)
	if got := SandwichesInBlock(b, weth); len(got) != 0 {
		t.Errorf("self-trade false positive: %+v", got)
	}
}

func TestSandwichSkipsFailedTxs(t *testing.T) {
	attacker := types.DeriveAddress("attacker", 1)
	victim := types.DeriveAddress("victim", 1)
	f, fr := swapTx(1, attacker, pool, weth, dai, 10_000, 20_000, 100*types.Gwei)
	v, vr := swapTx(1, victim, pool, weth, dai, 50_000, 99_000, 80*types.Gwei)
	bk, br := swapTx(2, attacker, pool, dai, weth, 20_000, 10_400, 60*types.Gwei)
	br.Status = types.StatusFailed
	br.Logs = nil
	b := mkBlock(1, f, fr, v, vr, bk, br)
	if got := SandwichesInBlock(b, weth); len(got) != 0 {
		t.Error("failed back tx must not complete a sandwich")
	}
}

func TestSandwichGasPriceOrderedFalseForBundles(t *testing.T) {
	attacker := types.DeriveAddress("attacker", 1)
	victim := types.DeriveAddress("victim", 1)
	// Bundle-style: attacker pays minimal gas, still ordered around victim.
	f, fr := swapTx(1, attacker, pool, weth, dai, 10_000, 20_000, types.Gwei)
	v, vr := swapTx(1, victim, pool, weth, dai, 50_000, 99_000, 80*types.Gwei)
	bk, br := swapTx(2, attacker, pool, dai, weth, 20_000, 10_400, types.Gwei)
	b := mkBlock(1, f, fr, v, vr, bk, br)
	got := SandwichesInBlock(b, weth)
	if len(got) != 1 {
		t.Fatal("bundle sandwich should still be detected")
	}
	if got[0].GasPriceOrdered {
		t.Error("gas condition should be false for bundle ordering")
	}
}

// multiSwapTx builds a transaction carrying several chained swap events.
func multiSwapTx(nonce uint64, from types.Address, hops [][2]types.Address, pools []types.Address, amounts []types.Amount, flash bool) (*types.Transaction, *types.Receipt) {
	tx := &types.Transaction{Nonce: nonce, From: from, GasPrice: types.Gwei, GasLimit: 400_000}
	rcpt := &types.Receipt{TxHash: tx.Hash(), Status: types.StatusSuccess, GasUsed: 400_000, EffectiveGasPrice: types.Gwei}
	for i, h := range hops {
		rcpt.Logs = append(rcpt.Logs, events.Swap{
			Pool: pools[i], Sender: from, Recipient: from,
			TokenIn: h[0], TokenOut: h[1],
			AmountIn: amounts[i], AmountOut: amounts[i+1],
		}.Log())
	}
	if flash {
		rcpt.Logs = append(rcpt.Logs, events.FlashLoan{
			Protocol: types.DeriveAddress("prot", 1), Initiator: from,
			Token: hops[0][0], Amount: amounts[0], Fee: 9,
		}.Log())
	}
	return tx, rcpt
}

func TestArbitrageDetected(t *testing.T) {
	arber := types.DeriveAddress("arber", 1)
	tx, rcpt := multiSwapTx(1, arber,
		[][2]types.Address{{weth, dai}, {dai, weth}},
		[]types.Address{pool, pool2},
		[]types.Amount{10_000, 20_000, 10_300}, false)
	b := mkBlock(1, tx, rcpt)
	got := ArbitragesInBlock(b)
	if len(got) != 1 {
		t.Fatalf("detected %d arbs", len(got))
	}
	a := got[0]
	if a.Extractor != arber || a.Hops != 2 || a.Token != weth {
		t.Errorf("arb = %+v", a)
	}
	if a.Gain() != 300 {
		t.Errorf("gain = %d", a.Gain())
	}
	if a.FlashLoan {
		t.Error("no flash loan here")
	}
	if len(a.Pools) != 2 || a.Pools[0] != pool {
		t.Error("pools")
	}
}

func TestArbitrageRequiresClosedLoop(t *testing.T) {
	arber := types.DeriveAddress("arber", 1)
	// weth → dai → usdc: chained but open.
	tx, rcpt := multiSwapTx(1, arber,
		[][2]types.Address{{weth, dai}, {dai, usdc}},
		[]types.Address{pool, pool2},
		[]types.Amount{10_000, 20_000, 9_900}, false)
	b := mkBlock(1, tx, rcpt)
	if got := ArbitragesInBlock(b); len(got) != 0 {
		t.Errorf("open loop false positive: %+v", got)
	}
}

func TestArbitrageRequiresChainedHops(t *testing.T) {
	arber := types.DeriveAddress("arber", 1)
	// Two unrelated swaps in one tx: out of hop 1 ≠ in of hop 2.
	tx, rcpt := multiSwapTx(1, arber,
		[][2]types.Address{{weth, dai}, {usdc, weth}},
		[]types.Address{pool, pool2},
		[]types.Amount{10_000, 20_000, 10_300}, false)
	b := mkBlock(1, tx, rcpt)
	if got := ArbitragesInBlock(b); len(got) != 0 {
		t.Errorf("unchained false positive: %+v", got)
	}
}

func TestArbitrageSingleSwapIgnored(t *testing.T) {
	trader := types.DeriveAddress("trader", 1)
	tx, rcpt := swapTx(1, trader, pool, weth, dai, 10_000, 20_000, types.Gwei)
	b := mkBlock(1, tx, rcpt)
	if got := ArbitragesInBlock(b); len(got) != 0 {
		t.Error("plain swap is not an arb")
	}
}

func TestArbitrageFlashLoanFlag(t *testing.T) {
	arber := types.DeriveAddress("arber", 1)
	tx, rcpt := multiSwapTx(1, arber,
		[][2]types.Address{{dai, weth}, {weth, dai}},
		[]types.Address{pool, pool2},
		[]types.Amount{100_000, 50, 100_300}, true)
	b := mkBlock(1, tx, rcpt)
	got := ArbitragesInBlock(b)
	if len(got) != 1 || !got[0].FlashLoan || got[0].FlashFee != 9 {
		t.Errorf("flash arb = %+v", got)
	}
}

func TestLiquidationDetected(t *testing.T) {
	liq := types.DeriveAddress("liq", 1)
	borrower := types.DeriveAddress("borrower", 1)
	prot := types.DeriveAddress("prot", 1)
	tx := &types.Transaction{Nonce: 1, From: liq, GasPrice: types.Gwei, GasLimit: 400_000}
	rcpt := &types.Receipt{TxHash: tx.Hash(), Status: types.StatusSuccess, GasUsed: 400_000, EffectiveGasPrice: types.Gwei,
		Logs: []types.Log{events.Liquidation{
			Protocol: prot, Liquidator: liq, Borrower: borrower,
			DebtToken: dai, CollateralToken: weth,
			DebtRepaid: 10_000, CollateralOut: 11_000, Compound: true,
		}.Log()},
	}
	b := mkBlock(1, tx, rcpt)
	got := LiquidationsInBlock(b)
	if len(got) != 1 {
		t.Fatalf("detected %d liquidations", len(got))
	}
	l := got[0]
	if l.Liquidator != liq || l.Borrower != borrower || !l.Compound {
		t.Errorf("liq = %+v", l)
	}
	if l.DebtRepaid != 10_000 || l.CollateralOut != 11_000 {
		t.Error("amounts")
	}
}

func TestScanAggregates(t *testing.T) {
	// One block with a sandwich and one with a flash arb, via Scan.
	attacker := types.DeriveAddress("attacker", 1)
	victim := types.DeriveAddress("victim", 1)
	f, fr := swapTx(1, attacker, pool, weth, dai, 10_000, 20_000, 100*types.Gwei)
	v, vr := swapTx(1, victim, pool, weth, dai, 50_000, 99_000, 80*types.Gwei)
	bk, br := swapTx(2, attacker, pool, dai, weth, 20_000, 10_400, 60*types.Gwei)
	arbTx, arbR := multiSwapTx(3, attacker,
		[][2]types.Address{{weth, dai}, {dai, weth}},
		[]types.Address{pool, pool2},
		[]types.Amount{10_000, 20_000, 10_300}, true)

	c := newTestChain(t)
	b1 := &types.Block{Header: types.Header{Number: c.NextNumber(), Time: types.Month(10).Date()},
		Txs: []*types.Transaction{f, v, bk}, Receipts: []*types.Receipt{fr, vr, br}}
	b1.Seal()
	if err := c.Append(b1); err != nil {
		t.Fatal(err)
	}
	b2 := &types.Block{Header: types.Header{Number: c.NextNumber(), Time: types.Month(10).Date()},
		Txs: []*types.Transaction{arbTx}, Receipts: []*types.Receipt{arbR}}
	b2.Seal()
	if err := c.Append(b2); err != nil {
		t.Fatal(err)
	}

	res := ScanAll(c, weth)
	if len(res.Sandwiches) != 1 || len(res.Arbitrages) != 1 {
		t.Fatalf("scan: %d sandwiches %d arbs", len(res.Sandwiches), len(res.Arbitrages))
	}
	if !res.FlashLoanTxs[arbTx.Hash()] {
		t.Error("flash loan tx set")
	}
}

func newTestChain(t *testing.T) *chain.Chain {
	t.Helper()
	return chain.New(types.DefaultTimeline(100))
}

// TestScannerMatchesScan: feeding blocks one at a time through a Scanner
// must accumulate exactly what a batch Scan over the same range produces
// — the streaming/batch seam contract.
func TestScannerMatchesScan(t *testing.T) {
	attacker := types.DeriveAddress("attacker", 2)
	victim := types.DeriveAddress("victim", 2)
	c := newTestChain(t)
	sc := NewScanner(weth)
	for i := 0; i < 6; i++ {
		f, fr := swapTx(uint64(10+i), attacker, pool, weth, dai, 10_000, 20_000, 100*types.Gwei)
		v, vr := swapTx(uint64(10+i), victim, pool, weth, dai, 50_000, 99_000, 80*types.Gwei)
		bk, br := swapTx(uint64(20+i), attacker, pool, dai, weth, 20_000, 10_400, 60*types.Gwei)
		arbTx, arbR := multiSwapTx(uint64(30+i), attacker,
			[][2]types.Address{{weth, dai}, {dai, weth}},
			[]types.Address{pool, pool2},
			[]types.Amount{10_000, 20_000, 10_300}, i%2 == 0)
		b := &types.Block{Header: types.Header{Number: c.NextNumber(), Time: types.Month(10).Date()},
			Txs:      []*types.Transaction{f, v, bk, arbTx},
			Receipts: []*types.Receipt{fr, vr, br, arbR}}
		b.Seal()
		if err := c.Append(b); err != nil {
			t.Fatal(err)
		}
		sc.Feed(b)
		nS, nA, _ := sc.Counts()
		if nS != i+1 || nA != i+1 {
			t.Fatalf("after block %d: counts = (%d, %d)", i, nS, nA)
		}
	}
	batch := ScanAll(c, weth)
	inc := sc.Result()
	if len(inc.Sandwiches) != len(batch.Sandwiches) ||
		len(inc.Arbitrages) != len(batch.Arbitrages) ||
		len(inc.Liquidations) != len(batch.Liquidations) {
		t.Fatalf("incremental sweep differs from batch: %d/%d/%d vs %d/%d/%d",
			len(inc.Sandwiches), len(inc.Arbitrages), len(inc.Liquidations),
			len(batch.Sandwiches), len(batch.Arbitrages), len(batch.Liquidations))
	}
	for i := range batch.Sandwiches {
		if inc.Sandwiches[i] != batch.Sandwiches[i] {
			t.Fatalf("sandwich %d differs", i)
		}
	}
	if len(inc.FlashLoanTxs) != len(batch.FlashLoanTxs) {
		t.Error("flash-loan tx sets differ")
	}
	for h := range batch.FlashLoanTxs {
		if !inc.FlashLoanTxs[h] {
			t.Error("flash-loan tx missing from incremental sweep")
		}
	}
}
